(* The experiment harness: regenerates every quantitative claim of the
   paper (see EXPERIMENTS.md for the claim-by-claim index).

     E1  label size vs n      — Theorem 1 O(log n) vs FMR O(log² n) vs the
                                universal scheme (Θ((n+m) log n))
     E2  Prop 4.6 bounds      — lanes ≤ f(w), congestion ≤ g/h(w)
     E3  Obs 5.5 bounds       — hierarchy depth and edge congestion ≤ 2k
     E5  soundness            — mutation detection rates
     E6  property catalogue   — certify + verify across MSO₂ properties
     E7  ablation             — Prop 4.6 partition vs greedy Obs 4.3
     E8 (service)             — batch throughput through the certification
                                service: cold vs warm certificate cache
     E9 (recovery)            — crash-safety campaign against the storage
                                layer: torn writes at every byte offset of
                                every record, bit rot, ENOSPC degradation,
                                and crash points with reopen-and-recover
     timing                   — bechamel micro-benchmarks (prover, verifier,
                                baseline; one Test.make per reported table)

     E12 (chaos)              — the persistent daemon under concurrent
                                fault-injected clients: admission
                                backpressure, worker crash/respawn,
                                degraded-mode serving, clean SIGTERM drain

     E13 (incr)               — incremental re-certification of edit
                                streams (transplant + splice + warm memo +
                                localized verify) vs full reproof per step

   Usage: main.exe [e1|e2|e3|e5|e6|e7|faults|service|recovery|chaos|timing|incr|all]
   (default: all; `chaos quick` / `scale quick` / `incr quick` shrink for CI). *)

module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module Rep = Lcp_interval.Representation
module PW = Lcp_interval.Pathwidth
module B = Lcp_lanes.Bounds
module LC = Lcp_lanes.Low_congestion
module H = Lcp_lanewidth.Hierarchy
module Tr = Lcp_lanewidth.Trace
module Bld = Lcp_lanewidth.Builder
module PLS = Lcp_pls
module S = PLS.Scheme
module EM = S.Edge_map
module A = Lcp_algebra
module Cert = Lcp_cert.Certificate

module T1conn = Lcp_cert.Theorem1.Make (A.Connectivity)
module T1acy = Lcp_cert.Theorem1.Make (A.Acyclicity)
module T1bip = Lcp_cert.Theorem1.Make (A.Bipartite)
module T1path = Lcp_cert.Theorem1.Make (A.Combinators.Is_path_graph)
module T1cyc = Lcp_cert.Theorem1.Make (A.Combinators.Is_cycle_graph)
module T1tri = Lcp_cert.Theorem1.Make (A.Triangle_free)
module T1pm = Lcp_cert.Theorem1.Make (A.Matching)
module T1ham = Lcp_cert.Theorem1.Make (A.Hamiltonian.Path_alg)
module Fconn = Lcp_cert.Baseline_fmr.Make (A.Connectivity)

let rng = Random.State.make [| 20250705 |]
let log2 x = log (float_of_int x) /. log 2.0
let line () = print_endline (String.make 78 '-')

let header title =
  line ();
  Printf.printf "%s\n" title;
  line ()

(* ------------------------------------------------------------------ *)
(* E1: label size as a function of n                                    *)

let e1 () =
  header
    "E1  Proof size vs n  (Theorem 1 claim: O(log n); FMR+24 baseline: \
     O(log^2 n))";
  Printf.printf
    "family=path (pw 1), property=connectivity; bits = max label length\n\n";
  Printf.printf "%8s %12s %14s %12s %14s %12s\n" "n" "T1 bits" "T1/log2(n)"
    "FMR bits" "FMR/log2^2(n)" "universal";
  let universal =
    PLS.Universal.scheme ~name:"universal" ~property:(fun _ -> true)
  in
  let heur c =
    Some (PW.heuristic_interval_representation (PLS.Config.graph c))
  in
  List.iter
    (fun n ->
      let g = Gen.path n in
      let cfg = PLS.Config.make g in
      let t1 = T1conn.edge_scheme ~rep:heur ~k:1 () in
      let t1_bits = S.max_edge_label_bits t1 (Option.get (t1.S.es_prove cfg)) in
      let fmr = Fconn.scheme ~rep:heur ~k:1 () in
      let fmr_bits =
        S.max_vertex_label_bits fmr (Option.get (fmr.S.vs_prove cfg))
      in
      let uni_bits =
        S.max_vertex_label_bits universal
          (Option.get (universal.S.vs_prove cfg))
      in
      Printf.printf "%8d %12d %14.1f %12d %14.1f %12d\n" n t1_bits
        (float_of_int t1_bits /. log2 n)
        fmr_bits
        (float_of_int fmr_bits /. (log2 n *. log2 n))
        uni_bits)
    [ 16; 32; 64; 128; 256; 512; 1024; 2048 ];
  Printf.printf
    "\nShape check: T1/log2(n) must flatten (O(log n)); FMR/log2^2(n) must\n\
     flatten (O(log^2 n)); the universal column grows superlinearly.\n\n";
  Printf.printf "family=cycle (pw 2), property=connectivity\n\n";
  Printf.printf "%8s %12s %14s %12s %14s\n" "n" "T1 bits" "T1/log2(n)"
    "FMR bits" "FMR/log2^2(n)";
  List.iter
    (fun n ->
      let g = Gen.cycle n in
      let cfg = PLS.Config.make g in
      let t1 = T1conn.edge_scheme ~rep:heur ~k:2 () in
      let t1_bits = S.max_edge_label_bits t1 (Option.get (t1.S.es_prove cfg)) in
      let fmr = Fconn.scheme ~rep:heur ~k:2 () in
      let fmr_bits =
        S.max_vertex_label_bits fmr (Option.get (fmr.S.vs_prove cfg))
      in
      Printf.printf "%8d %12d %14.1f %12d %14.1f\n" n t1_bits
        (float_of_int t1_bits /. log2 n)
        fmr_bits
        (float_of_int fmr_bits /. (log2 n *. log2 n)))
    [ 16; 32; 64; 128; 256; 512 ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E2: the Prop 4.6 bounds                                              *)

let e2 () =
  header "E2  Prop 4.6: lanes <= f(w), congestion <= g(w)/h(w)";
  Printf.printf "%4s %6s | %10s %8s | %10s %8s | %10s %8s\n" "k" "width"
    "lanes(max)" "f(w)" "weak(max)" "g(w)" "full(max)" "h(w)";
  List.iter
    (fun k ->
      let trials = 40 in
      let max_lanes = ref 0 and max_weak = ref 0 and max_full = ref 0 in
      let max_w = ref 0 in
      for _ = 1 to trials do
        let n = 60 + Random.State.int rng 120 in
        let g, ivs = Gen.random_pathwidth rng ~n ~k () in
        let rep = Rep.of_pairs g ivs in
        let w = Rep.width rep in
        max_w := max !max_w w;
        let r = LC.construct rep in
        max_lanes := max !max_lanes (LC.lane_count r);
        max_weak := max !max_weak (LC.congestion_weak r);
        max_full := max !max_full (LC.congestion_full r)
      done;
      let w = !max_w in
      Printf.printf "%4d %6d | %10d %8d | %10d %8d | %10d %8d\n" k w !max_lanes
        (B.f w) !max_weak (B.g w) !max_full (B.h w))
    [ 1; 2; 3; 4 ];
  Printf.printf
    "\nEvery measured column must stay within its bound column (the paper\n\
     proves worst cases; measured values are typically far below).\n\n"

(* ------------------------------------------------------------------ *)
(* E3: Obs 5.5                                                          *)

let e3 () =
  header "E3  Obs 5.5: hierarchical decompositions have depth <= 2k";
  Printf.printf "%4s | %10s %8s | %12s %8s\n" "k" "depth(max)" "2k"
    "edge-cong." "2k";
  List.iter
    (fun k ->
      let max_depth = ref 0 and max_cong = ref 0 in
      for _ = 1 to 60 do
        let tr = Tr.random rng ~k ~ops:(40 + Random.State.int rng 80) in
        let h = Bld.of_trace tr in
        max_depth := max !max_depth (H.depth h);
        max_cong := max !max_cong (H.edge_congestion h)
      done;
      Printf.printf "%4d | %10d %8d | %12d %8d\n" k !max_depth (2 * k)
        !max_cong (2 * k))
    [ 1; 2; 3; 4; 5; 6 ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E5: soundness under mutation                                         *)

let e5 () =
  header "E5  Soundness: corrupted certificates must be rejected somewhere";
  let kinds =
    [ "stack swap"; "transport drop"; "rank shift"; "pointer"; "truncate" ]
  in
  let attempts = Hashtbl.create 8 and caught = Hashtbl.create 8 in
  List.iter
    (fun k ->
      Hashtbl.replace attempts k 0;
      Hashtbl.replace caught k 0)
    kinds;
  let bump tbl k = Hashtbl.replace tbl k (Hashtbl.find tbl k + 1) in
  for _ = 1 to 25 do
    let k = 1 + Random.State.int rng 2 in
    let n = 8 + Random.State.int rng 30 in
    let g, ivs = Gen.random_pathwidth rng ~n ~k () in
    let cfg = PLS.Config.random_ids rng g in
    let rep = Rep.of_pairs g ivs in
    let scheme = T1conn.edge_scheme ~rep:(fun _ -> Some rep) ~k () in
    match scheme.S.es_prove cfg with
    | None -> ()
    | Some labels ->
        let edges = List.map fst (EM.bindings labels) in
        let pick () =
          List.nth edges (Random.State.int rng (List.length edges))
        in
        let try_mut kind forged =
          bump attempts kind;
          if not (S.accepted (S.run_edge cfg scheme forged)) then
            bump caught kind
        in
        let e1 = pick () and e2 = pick () in
        let l1 = Option.get (EM.find labels e1) in
        let l2 = Option.get (EM.find labels e2) in
        if e1 <> e2 && l1.Cert.frames <> l2.Cert.frames then
          try_mut "stack swap"
            (EM.add
               (EM.add labels e1 { l1 with Cert.frames = l2.Cert.frames })
               e2
               { l2 with Cert.frames = l1.Cert.frames });
        let e = pick () in
        let l = Option.get (EM.find labels e) in
        if l.Cert.transported <> [] then
          try_mut "transport drop"
            (EM.add labels e { l with Cert.transported = [] });
        let e = pick () in
        let l = Option.get (EM.find labels e) in
        (match l.Cert.transported with
        | r :: rest ->
            try_mut "rank shift"
              (EM.add labels e
                 {
                   l with
                   Cert.transported =
                     { r with Cert.rank_fwd = r.Cert.rank_fwd + 1 } :: rest;
                 })
        | [] -> ());
        let e = pick () in
        let l = Option.get (EM.find labels e) in
        try_mut "pointer"
          (EM.add labels e
             {
               l with
               Cert.global_ptr =
                 {
                   l.Cert.global_ptr with
                   PLS.Spanning_tree.target =
                     l.Cert.global_ptr.PLS.Spanning_tree.target + 1;
                 };
             });
        let e = pick () in
        let l = Option.get (EM.find labels e) in
        (match l.Cert.frames with
        | _ :: (_ :: _ as rest) ->
            try_mut "truncate" (EM.add labels e { l with Cert.frames = rest })
        | _ -> ())
  done;
  Printf.printf "%-16s %10s %10s %10s\n" "mutation" "attempts" "caught" "rate";
  List.iter
    (fun k ->
      let a = Hashtbl.find attempts k and c = Hashtbl.find caught k in
      Printf.printf "%-16s %10d %10d %9.0f%%\n" k a c
        (if a = 0 then 100.0 else 100.0 *. float_of_int c /. float_of_int a))
    kinds;
  (* bit-level corruption: flip one bit of a real encoded label *)
  let module B = Lcp_util.Bitenc in
  let dfail = ref 0 and rej = ref 0 and acc = ref 0 in
  for _ = 1 to 15 do
    let k = 1 + Random.State.int rng 2 in
    let n = 8 + Random.State.int rng 25 in
    let g, ivs = Gen.random_pathwidth rng ~n ~k () in
    let cfg = PLS.Config.random_ids rng g in
    let rep = Rep.of_pairs g ivs in
    let scheme = T1conn.edge_scheme ~rep:(fun _ -> Some rep) ~k () in
    match scheme.S.es_prove cfg with
    | None -> ()
    | Some labels ->
        let edges = List.map fst (EM.bindings labels) in
        for _ = 1 to 4 do
          let e = List.nth edges (Random.State.int rng (List.length edges)) in
          let l = Option.get (EM.find labels e) in
          let w = B.writer () in
          Cert.encode ~encode_state:A.Connectivity.encode w l;
          let bits = B.length_bits w in
          let bytes = B.to_bytes w in
          B.flip_bit bytes (Random.State.int rng bits);
          match
            try
              Some
                (Cert.decode ~decode_state:A.Connectivity.decode
                   (B.reader bytes))
            with _ -> None
          with
          | None -> incr dfail
          | Some l' when l' = l -> ()
          | Some l' -> (
              match S.run_edge cfg scheme (EM.add labels e l') with
              | S.Accepted -> incr acc
              | S.Rejected _ -> incr rej)
        done
  done;
  Printf.printf "%-16s %10d %10d %9.0f%%   (+%d broke decoding)\n" "bit flip"
    (!dfail + !rej + !acc)
    (!dfail + !rej)
    (100.0
    *. float_of_int (!dfail + !rej)
    /. float_of_int (max 1 (!dfail + !rej + !acc)))
    !dfail;
  Printf.printf "\nEvery rate must be 100%% (soundness).\n\n"

(* ------------------------------------------------------------------ *)
(* E6: the property catalogue                                           *)

let e6 () =
  header
    "E6  MSO2 catalogue: certify positive instances, decline negative ones";
  Printf.printf "%-18s %-16s %-10s %-10s %10s\n" "property" "instance"
    "expected" "outcome" "bits";
  let row name scheme g expected =
    let cfg = PLS.Config.random_ids rng g in
    match scheme.S.es_prove cfg with
    | None ->
        Printf.printf "%-18s %-16s %-10s %-10s %10s\n" name
          (Printf.sprintf "n=%d m=%d" (G.n g) (G.m g))
          expected "declined" "-"
    | Some labels ->
        let ok = S.accepted (S.run_edge cfg scheme labels) in
        Printf.printf "%-18s %-16s %-10s %-10s %10d\n" name
          (Printf.sprintf "n=%d m=%d" (G.n g) (G.m g))
          expected
          (if ok then "accepted" else "REJECTED")
          (S.max_edge_label_bits scheme labels)
  in
  row "connected" (T1conn.edge_scheme ~k:2 ()) (Gen.cycle 16) "accepted";
  row "acyclic" (T1acy.edge_scheme ~k:1 ()) (Gen.caterpillar ~spine:5 ~legs:2)
    "accepted";
  row "acyclic" (T1acy.edge_scheme ~k:2 ()) (Gen.cycle 12) "declined";
  row "bipartite" (T1bip.edge_scheme ~k:2 ()) (Gen.cycle 12) "accepted";
  row "bipartite" (T1bip.edge_scheme ~k:2 ()) (Gen.cycle 11) "declined";
  row "is_path" (T1path.edge_scheme ~k:1 ()) (Gen.path 16) "accepted";
  row "is_path" (T1path.edge_scheme ~k:2 ()) (Gen.cycle 16) "declined";
  row "is_cycle" (T1cyc.edge_scheme ~k:2 ()) (Gen.cycle 16) "accepted";
  row "is_cycle" (T1cyc.edge_scheme ~k:1 ()) (Gen.path 16) "declined";
  row "triangle_free" (T1tri.edge_scheme ~k:2 ()) (Gen.cycle 14) "accepted";
  row "triangle_free" (T1tri.edge_scheme ~k:3 ()) (Gen.complete 4) "declined";
  row "perfect_matching" (T1pm.edge_scheme ~k:1 ()) (Gen.path 12) "accepted";
  row "perfect_matching" (T1pm.edge_scheme ~k:1 ()) (Gen.path 11) "declined";
  row "hamiltonian_path" (T1ham.edge_scheme ~k:2 ()) (Gen.cycle 10) "accepted";
  row "hamiltonian_path" (T1ham.edge_scheme ~k:1 ()) (Gen.star 5) "declined";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* FAULTS: the adversarial soundness campaign (the systematic version of
   E5's spot checks — see lib/core/faultsim.ml and EXPERIMENTS.md §E5)   *)

let faults () =
  header
    "FAULTS  adversarial soundness campaign (scheme x fault model, seeded)";
  let report = Lcp_cert.Faultsim.run ~seed:20250806 ~trials:30 () in
  Lcp_cert.Faultsim.print_matrix report;
  print_newline ();
  if report.Lcp_cert.Faultsim.total_escapes > 0 then begin
    Printf.eprintf "FAULTS: %d soundness escape(s) — see the matrix above\n"
      report.Lcp_cert.Faultsim.total_escapes;
    exit 1
  end
  else Printf.printf "No soundness escapes: every effective fault detected.\n\n"

(* ------------------------------------------------------------------ *)
(* E7: ablation — Prop 4.6 vs greedy lane partition                     *)

let e7 () =
  header
    "E7  Ablation: Prop 4.6 partition (guaranteed congestion) vs greedy \
     Obs 4.3 partition";
  Printf.printf "%4s | %10s %10s | %12s %12s | %12s %12s\n" "k" "lanes(46)"
    "lanes(gr)" "cong(46)" "cong(gr)" "bits(46)" "bits(gr)";
  List.iter
    (fun k ->
      let lanes46 = ref 0 and lanesgr = ref 0 in
      let cong46 = ref 0 and conggr = ref 0 in
      let bits46 = ref 0 and bitsgr = ref 0 in
      for _ = 1 to 12 do
        let n = 80 + Random.State.int rng 60 in
        let g, ivs = Gen.random_pathwidth rng ~n ~k () in
        let cfg = PLS.Config.random_ids rng g in
        let rep = Rep.of_pairs g ivs in
        List.iter
          (fun (strategy, lanes, cong, bits) ->
            match T1conn.P.prepare ~strategy ~rep cfg with
            | Error _ -> ()
            | Ok art ->
                lanes := max !lanes art.T1conn.P.lane_count;
                cong := max !cong art.T1conn.P.congestion;
                let scheme = T1conn.edge_scheme ~k () in
                bits :=
                  max !bits (S.max_edge_label_bits scheme art.T1conn.P.labels))
          [
            (`Prop46, lanes46, cong46, bits46);
            (`Greedy, lanesgr, conggr, bitsgr);
          ]
      done;
      Printf.printf "%4d | %10d %10d | %12d %12d | %12d %12d\n" k !lanes46
        !lanesgr !cong46 !conggr !bits46 !bitsgr)
    [ 1; 2; 3 ];
  Printf.printf
    "\nGreedy uses fewer lanes (cheaper DP states, smaller labels) but its\n\
     congestion is unbounded in theory; Prop 4.6 trades label size for the\n\
     worst-case guarantee the O(log n) proof needs.\n\n"

(* ------------------------------------------------------------------ *)
(* SERVICE: batch throughput through the certification service          *)

(* the shared service workload: [size] (graph, property, k) instances
   with distinct generator seeds, sized so that proving runs the exact
   interval-representation DP (n <= 20) — the expensive stage a warm
   cache skips. Trees are the workhorse positive instance for acyclic /
   bipartite / triangle_free, and three jobs come from real graph files
   so the sweep also exercises the I/O layer. Two seeds may still
   produce the same graph; content addressing detects that as a
   cold-pass hit. Returns the scratch dir (also the manifest base dir)
   and the parsed jobs. Used by both [service] (cold/warm sweep) and
   [scale] (E10 pool sweep). *)
let build_corpus ~tag ~size () =
  let module Svc = Lcp_service in
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "lcp_%s_bench_%d" tag (Unix.getpid ()))
    in
    if not (Sys.file_exists d) then Sys.mkdir d 0o755;
    d
  in
  let file name fmt g =
    match Svc.Graph_io.save_file (Filename.concat dir name) g with
    | Ok () -> ignore fmt
    | Error e -> failwith e
  in
  file "c14.g6" `G6 (Gen.cycle 14);
  file "p16.dimacs" `Dimacs (Gen.path 16);
  file "l8.adj" `Adj (Gen.ladder 8);
  (* band boundaries scale with [size] so any corpus size keeps the
     same property mix as the canonical 200-job corpus *)
  let at frac = frac * size / 200 in
  let jobs =
    List.init size (fun i ->
        let n = 14 + (i mod 7) in
        match i with
        | i when i = at 50 -> "id=f50 file=c14.g6 property=connected k=2"
        | i when i = at 100 ->
            "id=f100 file=p16.dimacs property=perfect_matching k=1"
        | i when i = at 150 -> "id=f150 file=l8.adj property=bipartite k=2"
        | i when i < at 60 || i >= at 198 ->
            Printf.sprintf
              "id=g%d gen=random n=%d gseed=%d property=connected k=%d" i n i
              (1 + (i mod 2))
        | i when i < at 110 ->
            Printf.sprintf "id=g%d gen=tree n=%d gseed=%d property=acyclic k=3"
              i n i
        | i when i < at 150 ->
            Printf.sprintf
              "id=g%d gen=tree n=%d gseed=%d property=bipartite k=3" i n
              (1000 + i)
        | i when i < at 190 ->
            Printf.sprintf
              "id=g%d gen=tree n=%d gseed=%d property=triangle_free k=3" i n
              (2000 + i)
        | i ->
            Printf.sprintf
              "id=g%d gen=path n=%d property=perfect_matching k=%d" i
              (10 + (2 * ((i - at 190) mod 4)))
              (1 + ((i - at 190) / 4)))
  in
  let manifest_path = Filename.concat dir "corpus.manifest" in
  let oc = open_out manifest_path in
  List.iter (fun l -> output_string oc (l ^ "\n")) jobs;
  close_out oc;
  match Svc.Manifest.load_file manifest_path with
  | Ok jobs -> (dir, jobs)
  | Error e -> failwith e

let service () =
  header
    "SERVICE  batch throughput: cold vs warm certificate cache (200-job \
     corpus)";
  let module Svc = Lcp_service in
  let dir, jobs = build_corpus ~tag:"service" ~size:200 () in
  let engine = Svc.Engine.create ~cache_cap:1024 ~base_dir:dir () in
  let pass name =
    let reports, summary = Svc.Engine.run_jobs engine jobs in
    Printf.printf "%s pass:\n" name;
    Format.printf "  %a@." Svc.Stats.pp_summary summary;
    (reports, summary)
  in
  let _, cold = pass "cold" in
  let _, warm = pass "warm" in
  Format.printf "store: %a@." Svc.Cert_store.pp_stats
    (Svc.Cert_store.stats (Svc.Engine.store engine));
  let speedup = cold.Svc.Stats.s_total_ms /. warm.Svc.Stats.s_total_ms in
  Printf.printf
    "\nthroughput: cold %.1f jobs/sec, warm %.1f jobs/sec  (speedup %.1fx)\n"
    cold.Svc.Stats.s_jobs_per_sec warm.Svc.Stats.s_jobs_per_sec speedup;
  let fail = ref [] in
  let check cond msg = if not cond then fail := msg :: !fail in
  check
    (cold.Svc.Stats.s_served = cold.Svc.Stats.s_jobs)
    "cold pass: not every job was served";
  check
    (cold.Svc.Stats.s_unsound = 0 && warm.Svc.Stats.s_unsound = 0)
    "a served bundle failed local re-verification";
  check
    (warm.Svc.Stats.s_cached = warm.Svc.Stats.s_served
    && warm.Svc.Stats.s_served = warm.Svc.Stats.s_jobs)
    "warm pass: cache hit rate below 100%";
  check (speedup >= 5.0) "warm-cache speedup below 5x";
  if !fail <> [] then begin
    List.iter (fun m -> Printf.eprintf "SERVICE: FAIL — %s\n" m) !fail;
    exit 1
  end
  else
    Printf.printf
      "All checks hold: 100%% warm hit rate, every served bundle locally \
       re-verified, speedup >= 5x.\n\n"

(* ------------------------------------------------------------------ *)
(* SCALE: E10 — sharded pool speedup + determinism sweep over --jobs N  *)

(* `bench scale` sweeps the pool over N workers on the service corpus
   and holds two different kinds of result to two different standards:
   - determinism is asserted unconditionally and hard: every N must
     produce byte-identical canonical stats and an identical disk-tier
     snapshot. A violation is a sharding bug, never an artifact of the
     host.
   - speedup is asserted only when the host can physically provide it:
     on a box with < 4 cores the N=4 wall-clock target is unreachable
     by construction (fork adds overhead, removes no work), so the
     sweep records the honest numbers and says why the assertion was
     skipped rather than encoding a vacuously green or always-red
     check. `scale quick` shrinks the corpus and the sweep for CI. *)
(* ------------------------------------------------------------------ *)
(* SCALE E16: million-job streaming corpus                             *)

(* peak resident set (kB) from the kernel's accounting; None off-Linux *)
let read_vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go () =
            match input_line ic with
            | exception End_of_file -> None
            | l -> (
                match Scanf.sscanf_opt l "VmHWM: %d kB" (fun k -> k) with
                | Some k -> Some k
                | None -> go ())
          in
          go ())

let parse_scale_baseline file =
  match open_in_bin file with
  | exception Sys_error _ -> None
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let key = "\"jobs_per_sec\":" in
      let klen = String.length key in
      let rec find i =
        if i + klen > String.length s then None
        else if String.sub s i klen = key then Some (i + klen)
        else find (i + 1)
      in
      Option.bind (find 0) (fun i ->
          let j = ref i in
          while
            !j < String.length s
            && (match s.[!j] with
               | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' | ' ' -> true
               | _ -> false)
          do
            incr j
          done;
          float_of_string_opt (String.trim (String.sub s i (!j - i))))

(* The E16 campaign. [quick] is the check.sh tier (10^4 jobs, seconds);
   full replays >= 10^6 jobs and takes minutes. [update] rewrites the
   committed BENCH_SCALE.json throughput baseline. Returns the failure
   list so [scale] can merge it with E10's. *)
let e16_stream ~quick ~update =
  let module Svc = Lcp_service in
  let total = if quick then 10_000 else 1_000_000 in
  header
    (Printf.sprintf
       "SCALE  E16: streaming corpus — %d jobs, constant memory, Zipf \
        replay, negative-lookup filter, group commit"
       total)
  ;
  let fail = ref [] in
  let check cond msg = if not cond then fail := msg :: !fail in
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "lcp_e16_bench_%d" (Unix.getpid ()))
    in
    if not (Sys.file_exists d) then Sys.mkdir d 0o755;
    d
  in
  (* -- a) sustained throughput, N=1, fixed heap ------------------- *)
  (* The workload generator and the streaming driver are both O(1) per
     job; the only state allowed to grow is the bounded store (LRU cap
     + dirty set). The heap assertion is on top_heap_words GROWTH over
     the replay: materializing the 10^6-job corpus as a report list
     (100+ words each, 100M+ total) trips it by an order of magnitude.
     The full-mode budget leaves headroom for major-heap churn from
     ~400k disk-tier round trips (measured ~24M words at 10^6 jobs);
     quick mode stays under a tenth of its budget. *)
  let heap_budget = if quick then 8_000_000 else 48_000_000 in
  let spec = { Svc.Workload.default with total; mix = Svc.Workload.Light } in
  Printf.printf "workload: %s\n" (Svc.Workload.to_string spec);
  let cache = Filename.concat dir "cache_head" in
  let timing = Svc.Timing.create () in
  let make_engine wt =
    Svc.Engine.create ~cache_cap:4096 ~cache_dir:cache ~base_dir:dir
      ~write_batch:64 ?timing:wt ()
  in
  let heap0 = (Gc.quick_stat ()).Gc.top_heap_words in
  let served = ref 0 and errors = ref 0 in
  let t0 = Unix.gettimeofday () in
  let outcome =
    Svc.Pool.run_stream
      ~emit:(fun r ->
        match r.Svc.Stats.r_status with
        | Svc.Stats.Served_fresh | Svc.Stats.Served_cached
        | Svc.Stats.Served_degraded ->
            incr served
        | _ -> incr errors)
      ~timing ~workers:1 ~make_engine
      (fun feed -> Svc.Workload.iter spec ~f:feed)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let heap_growth = (Gc.quick_stat ()).Gc.top_heap_words - heap0 in
  let jps = float_of_int total /. wall_s in
  Printf.printf
    "headline: %d jobs in %.1f s — %.0f jobs/sec (served %d, rejected %d)\n"
    total wall_s jps !served !errors;
  Printf.printf "heap: top_heap_words growth %d words (budget %d)%s\n"
    heap_growth heap_budget
    (match read_vm_hwm_kb () with
    | Some k -> Printf.sprintf "; VmHWM %d kB" k
    | None -> "");
  let s = outcome.Svc.Pool.stream_summary in
  check
    (s.Svc.Stats.s_jobs = total)
    (Printf.sprintf "E16a: stream lost jobs (%d of %d)" s.Svc.Stats.s_jobs
       total);
  check
    (heap_growth < heap_budget)
    "E16a: heap grew past the fixed budget — something materialized the \
     corpus";
  let st = outcome.Svc.Pool.stream_store in
  Printf.printf
    "store: insertions=%d filter_skips=%d filter_hits=%d filter_fps=%d \
     flushes=%d\n"
    st.Svc.Cert_store.insertions st.Svc.Cert_store.filter_skips
    st.Svc.Cert_store.filter_hits st.Svc.Cert_store.filter_fps
    st.Svc.Cert_store.flushes;
  check (st.Svc.Cert_store.flushes > 0) "E16a: group commit never flushed";
  let baseline_file = "BENCH_SCALE.json" in
  (if quick then
     Printf.printf "throughput gate skipped in quick mode (noise)\n"
   else
     match parse_scale_baseline baseline_file with
     | None ->
         Printf.printf "no committed %s; throughput gate skipped\n"
           baseline_file
     | Some base ->
         (* shared-container wall clock swings wildly; the gate only
            catches catastrophic (~3x) throughput collapses *)
         Printf.printf "gate vs %s: %.0f -> %.0f jobs/sec (floor 35%%)\n"
           baseline_file base jps;
         check
           (jps >= base *. 0.35)
           (Printf.sprintf "E16a: %.0f jobs/sec under 35%% of baseline %.0f"
              jps base));
  (if update && not quick then
     let oc = open_out baseline_file in
     Printf.fprintf oc
       "{\n  \"mode\": \"full\",\n  \"jobs\": %d,\n  \"jobs_per_sec\": %.1f\n}\n"
       total jps;
     close_out oc;
     Printf.printf "wrote %s\n" baseline_file);
  print_newline ();
  (* -- b) cross-N determinism: stream == batch, any worker count -- *)
  let totalb = if quick then 3_000 else 20_000 in
  let specb = { spec with Svc.Workload.total = totalb } in
  let manifest_path = Filename.concat dir "stream.manifest" in
  let written = Svc.Workload.write_manifest specb manifest_path in
  check (written = totalb) "E16b: write_manifest lost jobs";
  let batch_jobs =
    match Svc.Manifest.load_file manifest_path with
    | Ok jobs -> jobs
    | Error e -> failwith e
  in
  let fresh_engine tag wt =
    Svc.Engine.create ~cache_cap:2048
      ~cache_dir:(Filename.concat dir ("cache_" ^ tag))
      ~base_dir:dir ~write_batch:16 ?timing:wt ()
  in
  let batch_outcome =
    Svc.Pool.run ~workers:1 ~make_engine:(fresh_engine "b1") batch_jobs
  in
  let batch_digest =
    Digest.string (Svc.Stats.canonical_lines batch_outcome.Svc.Pool.reports)
  in
  let sweep = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  List.iter
    (fun n ->
      let buf = Buffer.create (totalb * 64) in
      let outcome =
        Svc.Pool.run_stream
          ~emit:(fun r ->
            if Buffer.length buf > 0 then Buffer.add_char buf '\n';
            Buffer.add_string buf (Svc.Stats.to_canonical_json r))
          ~workers:n
          ~make_engine:(fresh_engine (Printf.sprintf "s%d" n))
          (fun feed -> Svc.Workload.iter specb ~f:feed)
      in
      let d = Digest.string (Buffer.contents buf) in
      Printf.printf "N=%d: %d jobs, canonical digest %s %s\n" n
        outcome.Svc.Pool.stream_summary.Svc.Stats.s_jobs (Digest.to_hex d)
        (if d = batch_digest then "== batch" else "DIFFERS from batch");
      check (d = batch_digest)
        (Printf.sprintf
           "E16b: streamed canonical output at N=%d differs from the batch \
            driver"
           n);
      (* a manifest replay through the file reader must agree too *)
      if n = 1 then begin
        let buf2 = Buffer.create (totalb * 64) in
        let outcome2 =
          Svc.Pool.run_stream
            ~emit:(fun r ->
              if Buffer.length buf2 > 0 then Buffer.add_char buf2 '\n';
              Buffer.add_string buf2 (Svc.Stats.to_canonical_json r))
            ~workers:1
            ~make_engine:(fresh_engine "m1")
            (fun feed ->
              match Svc.Manifest.iter_file manifest_path ~f:feed with
              | Ok () -> ()
              | Error e -> failwith e)
        in
        ignore outcome2;
        check
          (Digest.string (Buffer.contents buf2) = batch_digest)
          "E16b: streaming the manifest file differs from generating the \
           workload"
      end)
    sweep;
  print_newline ();
  (* -- c) daemon byte-identity (full only: forks a real server) ---- *)
  (if not quick then begin
     let totalc = 300 in
     let specc = { spec with Svc.Workload.total = totalc } in
     let mpath = Filename.concat dir "daemon.manifest" in
     ignore (Svc.Workload.write_manifest specc mpath);
     let cjobs =
       match Svc.Manifest.load_file mpath with
       | Ok jobs -> jobs
       | Error e -> failwith e
     in
     let batch =
       Svc.Pool.run ~workers:1 ~make_engine:(fresh_engine "c1") cjobs
     in
     let batch_lines = Svc.Stats.canonical_lines batch.Svc.Pool.reports in
     let socket_path = Filename.concat dir "e16.sock" in
     let cfg =
       {
         Svc.Server.socket_path;
         workers = 2;
         queue_cap = 64;
         client_cap = 64;
         make_engine =
           (fun ~worker:_ wt ->
             Svc.Engine.create ~cache_cap:2048
               ~cache_dir:(Filename.concat dir "cache_daemon")
               ~base_dir:dir ~write_batch:16 ?timing:wt ());
         timed = false;
         verbose = false;
         journal_dir = None;
         journal_fsync = `Every 8;
         journal_checkpoint = 256;
       }
     in
     flush stdout;
     flush stderr;
     let pid =
       match Unix.fork () with
       | 0 ->
           (try Svc.Server.run cfg with _ -> Unix._exit 1);
           Unix._exit 0
       | pid -> pid
     in
     let deadline = Unix.gettimeofday () +. 10.0 in
     let rec wait_up () =
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
       | () -> Unix.close fd
       | exception Unix.Unix_error _ ->
           Unix.close fd;
           if Unix.gettimeofday () > deadline then begin
             Unix.kill pid Sys.sigkill;
             ignore (Unix.waitpid [] pid);
             failwith "E16c: server did not come up"
           end;
           Unix.sleepf 0.02;
           wait_up ()
     in
     wait_up ();
     let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     Unix.connect fd (Unix.ADDR_UNIX socket_path);
     Svc.Wire.write_frame fd
       (Svc.Wire.encode_request
          (Svc.Wire.Hello { version = Svc.Wire.protocol_version }));
     (match Svc.Wire.read_frame fd with
     | Some p -> (
         match Svc.Wire.decode_response p with
         | Ok (Svc.Wire.Hello_ok _) -> ()
         | _ -> failwith "E16c: handshake refused")
     | None -> failwith "E16c: server closed during handshake");
     (* sliding window with Overloaded retry: admission control
        (queue_cap / client_cap) legitimately bounces a client that
        submits faster than the workers drain *)
     let lines =
       Array.of_list (List.map Svc.Manifest.print_job cjobs)
     in
     let results = Array.make totalc ("", "") in
     let pending = Queue.create () in
     List.iteri (fun i _ -> Queue.add i pending) cjobs;
     let inflight = ref 0 and answered = ref 0 in
     let window = 32 in
     while !answered < totalc do
       while !inflight < window && not (Queue.is_empty pending) do
         let serial = Queue.pop pending in
         Svc.Wire.write_frame fd
           (Svc.Wire.encode_request
              (Svc.Wire.Submit
                 {
                   serial;
                   canonical = true;
                   deadline_ms = 0.0;
                   line = lines.(serial);
                 }));
         incr inflight
       done;
       match Svc.Wire.read_frame fd with
       | None -> failwith "E16c: server closed mid-stream"
       | Some p -> (
           match Svc.Wire.decode_response p with
           | Ok (Svc.Wire.Report { serial; id; canonical; _ }) ->
               decr inflight;
               incr answered;
               results.(serial) <- (id, canonical)
           | Ok (Svc.Wire.Overloaded { serial; _ }) ->
               decr inflight;
               Queue.add serial pending;
               Unix.sleepf 0.002
           | Ok _ | Error _ -> failwith "E16c: unexpected reply")
     done;
     Unix.close fd;
     Unix.kill pid Sys.sigterm;
     ignore (Unix.waitpid [] pid);
     let daemon_lines =
       Array.to_list results
       |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
       |> List.map snd |> String.concat "\n"
     in
     Printf.printf "daemon: %d jobs round-tripped, %s\n" totalc
       (if daemon_lines = batch_lines then "canonical output == batch"
        else "canonical output DIFFERS from batch");
     check (daemon_lines = batch_lines)
       "E16c: daemon canonical output differs from the batch driver";
     print_newline ()
   end);
  (* -- d) store pressure: the filter in front of a thrashing disk tier *)
  let totald = if quick then 4_000 else 30_000 in
  let specd =
    {
      spec with
      Svc.Workload.total = totald;
      universe = (if quick then 3_000 else 6_000);
      corrupt = 0.0;
    }
  in
  let timing_d = Svc.Timing.create () in
  let outcome_d =
    Svc.Pool.run_stream ~timing:timing_d ~workers:1
      ~make_engine:(fun wt ->
        Svc.Engine.create ~cache_cap:256
          ~cache_dir:(Filename.concat dir "cache_pressure")
          ~base_dir:dir ~write_batch:16 ?timing:wt ())
      (fun feed -> Svc.Workload.iter specd ~f:feed)
  in
  let sd = outcome_d.Svc.Pool.stream_store in
  let negatives = sd.Svc.Cert_store.filter_skips + sd.Svc.Cert_store.filter_fps in
  Printf.printf
    "pressure (cap=256, u=%d, t=%d): disk_loads=%d filter_hits=%d \
     filter_skips=%d filter_fps=%d flushes=%d\n"
    specd.Svc.Workload.universe totald sd.Svc.Cert_store.disk_loads
    sd.Svc.Cert_store.filter_hits sd.Svc.Cert_store.filter_skips
    sd.Svc.Cert_store.filter_fps sd.Svc.Cert_store.flushes;
  check
    (sd.Svc.Cert_store.filter_skips > 0)
    "E16d: the filter never short-circuited a disk probe";
  check
    (sd.Svc.Cert_store.filter_hits > 0)
    "E16d: the disk tier never served under pressure";
  check
    (negatives = 0
    || float_of_int sd.Svc.Cert_store.filter_fps /. float_of_int negatives
       < 0.05)
    "E16d: filter false-positive rate above 5%";
  check
    (outcome_d.Svc.Pool.stream_summary.Svc.Stats.s_jobs = totald)
    "E16d: pressure run lost jobs";
  print_newline ();
  !fail

let scale () =
  let module Svc = Lcp_service in
  let quick = Array.length Sys.argv > 2 && Sys.argv.(2) = "quick" in
  let update = Array.length Sys.argv > 2 && Sys.argv.(2) = "update" in
  (* E16 first: its heap-growth assertion is sharpest in a cold process *)
  let e16_fail = e16_stream ~quick ~update in
  let size = if quick then 60 else 200 in
  let sweep = if quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  header
    (Printf.sprintf
       "SCALE  E10: sharded pool determinism + speedup (%d-job corpus, N in \
        {%s})"
       size
       (String.concat "," (List.map string_of_int sweep)));
  let dir, jobs = build_corpus ~tag:"scale" ~size () in
  let cores = Svc.Pool.default_workers () in
  Printf.printf "host: %d core%s detected\n\n" cores
    (if cores = 1 then "" else "s");
  let run_at n =
    let cache_dir = Filename.concat dir (Printf.sprintf "cache_w%d" n) in
    let timing = Svc.Timing.create () in
    let make_engine wt =
      Svc.Engine.create ~cache_cap:1024 ~cache_dir ~base_dir:dir ?timing:wt ()
    in
    let t0 = Unix.gettimeofday () in
    let outcome = Svc.Pool.run ~timing ~workers:n ~make_engine jobs in
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let snap =
      Svc.Cert_store.disk_snapshot (Svc.Cert_store.create ~dir:cache_dir ())
    in
    (n, wall_ms, outcome, Svc.Stats.canonical_lines outcome.Svc.Pool.reports,
     snap, Svc.Timing.report timing)
  in
  let results = List.map run_at sweep in
  let _, base_wall, _, base_lines, base_snap, _ = List.hd results in
  (* the table *)
  Printf.printf "%4s %12s %9s %12s %12s %12s\n" "N" "wall ms" "speedup"
    "prove p50/p99" "verify p50/p99" "store p50/p99";
  let pct lines stage =
    match List.find_opt (fun l -> l.Svc.Timing.l_stage = stage) lines with
    | Some l -> Printf.sprintf "%.2f/%.2f" l.Svc.Timing.l_p50 l.Svc.Timing.l_p99
    | None -> "-"
  in
  List.iter
    (fun (n, wall, _, _, _, tl) ->
      Printf.printf "%4d %12.1f %8.2fx %12s %12s %12s\n" n wall
        (base_wall /. wall) (pct tl "prove") (pct tl "verify") (pct tl "store"))
    results;
  print_newline ();
  (* determinism: hard, unconditional (E16 failures merge in here) *)
  let fail = ref e16_fail in
  let check cond msg = if not cond then fail := msg :: !fail in
  check (base_snap <> []) "N=1 stored nothing: the determinism check is vacuous";
  List.iter
    (fun (n, _, outcome, lines, snap, _) ->
      check
        (outcome.Svc.Pool.summary.Svc.Stats.s_jobs = List.length jobs)
        (Printf.sprintf "N=%d: lost jobs in the merge" n);
      check (lines = base_lines)
        (Printf.sprintf "N=%d: canonical stats differ from N=1" n);
      check (snap = base_snap)
        (Printf.sprintf "N=%d: disk-tier snapshot differs from N=1" n))
    (List.tl results);
  (* speedup: hard only where the host can deliver it *)
  (match
     (List.find_opt (fun (n, _, _, _, _, _) -> n = 4) results, cores >= 4)
   with
  | Some (_, wall4, _, _, _, _), true ->
      let sp = base_wall /. wall4 in
      Printf.printf "speedup at N=4: %.2fx (target >= 2.5x)\n" sp;
      check (sp >= 2.5) "speedup at N=4 below 2.5x on a >= 4-core host"
  | Some (_, wall4, _, _, _, _), false ->
      Printf.printf
        "speedup at N=4: %.2fx — assertion SKIPPED (host has %d core%s; the \
         2.5x target needs >= 4)\n"
        (base_wall /. wall4) cores
        (if cores = 1 then "" else "s")
  | None, _ -> Printf.printf "speedup assertion skipped (quick sweep)\n");
  if !fail <> [] then begin
    List.iter (fun m -> Printf.eprintf "SCALE: FAIL — %s\n" m) !fail;
    exit 1
  end
  else
    Printf.printf
      "All determinism checks hold: canonical stats and disk tier identical \
       across N in {%s}.\n\n"
      (String.concat "," (List.map string_of_int sweep))

(* ------------------------------------------------------------------ *)
(* RECOVERY: the E9 crash-safety campaign against the storage layer      *)

let recovery () =
  header
    "E9  RECOVERY  crash-safety: torn writes at every byte offset, bit rot, \
     ENOSPC degradation, crash points";
  let module Svc = Lcp_service in
  let module Blob = Svc.Blob_io in
  let module Store = Svc.Cert_store in
  let module Stats = Svc.Stats in
  let fail = ref [] in
  let check cond msg =
    if (not cond) && not (List.mem msg !fail) then fail := msg :: !fail
  in
  let rec rm_rf p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  let fresh_dir name =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "lcp_recovery_%s_%d" name (Unix.getpid ()))
    in
    rm_rf d;
    Sys.mkdir d 0o755;
    d
  in
  let plan1 on = [ { Blob.at = 1; repeat = false; on } ] in

  (* corpus: 120 jobs over 60 distinct (property, k, graph) instances —
     every instance appears twice so content addressing is live — small
     enough (n in 10..16) that each record is a few hundred bytes and the
     byte-offset sweep below stays exhaustive *)
  let corpus =
    List.init 120 (fun i ->
        let gseed = i mod 60 in
        let n = 10 + (gseed mod 7) in
        let mk family property k g =
          ( {
              Svc.Manifest.job_id = Printf.sprintf "r%d" i;
              source = Svc.Manifest.Generated { family; n; gen_seed = gseed };
              property;
              k;
              seed = 0;
            },
            g )
        in
        match gseed mod 3 with
        | 0 ->
            mk "tree" "acyclic" 3
              (Gen.random_tree (Random.State.make [| gseed |]) n)
        | 1 -> mk "path" "connected" 1 (Gen.path n)
        | _ ->
            mk "tree" "bipartite" 3
              (Gen.random_tree (Random.State.make [| gseed |]) n))
  in
  let jobs = List.map fst corpus in
  let njobs = List.length jobs in

  (* ---- phase 0: clean pass, collect every record the store wrote ---- *)
  let dir0 = fresh_dir "clean" in
  let engine0 = Svc.Engine.create ~cache_cap:2048 ~cache_dir:dir0 () in
  let _, clean = Svc.Engine.run_jobs engine0 jobs in
  check (clean.Stats.s_served = njobs) "clean pass: not every job served";
  check (clean.Stats.s_unsound = 0) "clean pass: unsound bundle";
  let records =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun ((job : Svc.Manifest.job), g) ->
        let key = Store.key ~property:job.Svc.Manifest.property ~k:job.k g in
        let hex = Store.key_hex key in
        let path = Filename.concat dir0 (hex ^ ".cert") in
        if (not (Hashtbl.mem tbl hex)) && Sys.file_exists path then
          Hashtbl.replace tbl hex (key, Blob.real.Blob.read_file path))
      corpus;
    Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  in
  check (List.length records >= 40) "clean pass: too few records on disk";

  (* ---- phase 1a: torn records, EVERY byte offset of every record.
     A truncation at any prefix must be rejected by the record parser
     (length/checksum guard) before any decoder runs. Truncations fail
     the length check in O(1), so this sweep is exhaustive and cheap. *)
  let offsets = ref 0 in
  let torn_served = ref 0 in
  List.iter
    (fun (key, content) ->
      for b = 0 to String.length content - 1 do
        incr offsets;
        match Store.parse_record key (String.sub content 0 b) with
        | Ok (Some _) -> incr torn_served
        | Ok None | Error _ -> ()
      done)
    records;

  (* ---- phase 1b: the same torn writes through the real disk
     machinery at sampled offsets: crash mid-tmp-write (orphan sweep)
     and truncated-in-place records (corrupt + quarantine) ---- *)
  let scratch = fresh_dir "torn" in
  let clean_scratch () =
    Array.iter (fun f -> rm_rf (Filename.concat scratch f)) (Sys.readdir scratch)
  in
  let disk_offsets = ref 0 in
  let orphans_swept = ref 0 in
  let corrupt_detected = ref 0 in
  let quarantined = ref 0 in
  List.iter
    (fun (key, content) ->
      let len = String.length content in
      let path = Filename.concat scratch (Store.key_hex key ^ ".cert") in
      let sample =
        List.sort_uniq compare
          [ 0; 1; 9; len / 4; len / 2; 3 * len / 4; len - 2; len - 1 ]
        |> List.filter (fun b -> b >= 0 && b < len)
      in
      List.iter
        (fun b ->
          incr disk_offsets;
          (* A: the process dies while writing the tmp file (before the
             atomic rename): reopen must sweep the orphan and miss *)
          clean_scratch ();
          let io, _ = Blob.inject ~plan:(plan1 (Blob.Torn b)) Blob.real in
          (try
             io.Blob.write_file (path ^ ".tmp") content;
             io.Blob.rename (path ^ ".tmp") path
           with Blob.Crashed _ -> ());
          let st = Store.create ~cap:8 ~dir:scratch () in
          let s = Store.stats st in
          orphans_swept := !orphans_swept + s.Store.orphans_swept;
          check (s.Store.orphans_swept = 1) "torn/A: orphan .tmp not swept";
          check
            (not (Sys.file_exists (path ^ ".tmp")))
            "torn/A: orphan .tmp still on disk after reopen";
          (match Store.find st key with
          | Some _ -> incr torn_served
          | None -> ());
          (* B: a truncated record sits fully renamed in place (partial
             flush / bit rot): the checksum must catch it before decode,
             and the file must land in quarantine/ *)
          clean_scratch ();
          Blob.real.Blob.write_file path (String.sub content 0 b);
          let st2 = Store.create ~cap:8 ~dir:scratch () in
          (match Store.find st2 key with
          | Some _ -> incr torn_served
          | None -> ());
          let s2 = Store.stats st2 in
          corrupt_detected := !corrupt_detected + s2.Store.corrupt;
          quarantined := !quarantined + s2.Store.quarantined;
          check (s2.Store.corrupt = 1)
            "torn/B: truncated record not flagged corrupt";
          check (s2.Store.quarantined = 1)
            "torn/B: truncated record not quarantined")
        sample)
    records;

  (* ---- phase 2: bit rot. Sampled single-bit flips checked at the
     parser (checksum) level across every record, plus a handful pushed
     through the real disk path per record. ---- *)
  let frng = Random.State.make [| 0xE9 |] in
  let flips = ref 0 and flips_served = ref 0 in
  let flip_of content b =
    let bytes = Bytes.of_string content in
    Bytes.set bytes (b / 8)
      (Char.chr (Char.code (Bytes.get bytes (b / 8)) lxor (1 lsl (b mod 8))));
    Bytes.unsafe_to_string bytes
  in
  List.iter
    (fun (key, content) ->
      let bits = 8 * String.length content in
      for _ = 1 to 192 do
        incr flips;
        let b = Random.State.int frng bits in
        match Store.parse_record key (flip_of content b) with
        | Ok (Some _) -> incr flips_served
        | Ok None | Error _ -> ()
      done;
      let path = Filename.concat scratch (Store.key_hex key ^ ".cert") in
      for _ = 1 to 4 do
        incr flips;
        clean_scratch ();
        let b = Random.State.int frng bits in
        let io, _ = Blob.inject ~plan:(plan1 (Blob.Flip b)) Blob.real in
        io.Blob.write_file path content;
        match Store.find (Store.create ~cap:8 ~dir:scratch ()) key with
        | Some _ -> incr flips_served
        | None -> ()
      done)
    records;

  (* ---- phase 3: every write fails with ENOSPC -> degraded mode ---- *)
  let dir3 = fresh_dir "enospc" in
  let io3, _ =
    Blob.inject
      ~plan:[ { Blob.at = 1; repeat = true; on = Blob.Fail "ENOSPC" } ]
      Blob.real
  in
  let engine3 = Svc.Engine.create ~cache_cap:2048 ~cache_dir:dir3 ~io:io3 () in
  let _, enospc = Svc.Engine.run_jobs engine3 jobs in
  let st3 = Store.stats (Svc.Engine.store engine3) in
  check (enospc.Stats.s_failed = 0) "ENOSPC: a job failed (batch not total)";
  check (enospc.Stats.s_served = njobs) "ENOSPC: not every job served";
  check
    (Store.degraded (Svc.Engine.store engine3))
    "ENOSPC: store did not demote itself to memory-only";
  check (enospc.Stats.s_degraded > 0) "ENOSPC: no job reported served_degraded";
  check (st3.Store.disk_errors >= 3) "ENOSPC: disk errors not counted";
  let _, enospc_warm = Svc.Engine.run_jobs engine3 jobs in
  check
    (enospc_warm.Stats.s_degraded = njobs)
    "ENOSPC warm: memory tier did not carry the degraded store";
  check (enospc_warm.Stats.s_hit_rate = 1.0) "ENOSPC warm: hit rate below 100%";

  (* ---- phase 4: crash points across the batch, reopen, recover ---- *)
  let total_ops = 2 * List.length records in
  let crash_points =
    List.filter
      (fun w -> w < total_ops)
      [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 89 ]
    @ [ total_ops - 1 ]
  in
  let crash_runs = ref 0 and crashes_fired = ref 0 in
  List.iter
    (fun w ->
      List.iter
        (fun kind ->
          incr crash_runs;
          let d = fresh_dir "crash" in
          let io, c =
            Blob.inject ~plan:[ { Blob.at = w; repeat = false; on = kind } ]
              Blob.real
          in
          let engine = Svc.Engine.create ~cache_cap:2048 ~cache_dir:d ~io () in
          (match Svc.Engine.run_jobs engine jobs with
          | _ -> ()
          | exception Blob.Crashed _ -> incr crashes_fired);
          check c.Blob.crashed "crash: fault point never fired";
          (* reboot: fresh engine over the surviving directory, real io *)
          let engine' = Svc.Engine.create ~cache_cap:2048 ~cache_dir:d () in
          orphans_swept :=
            !orphans_swept
            + (Store.stats (Svc.Engine.store engine')).Store.orphans_swept;
          (match Svc.Engine.run_jobs engine' jobs with
          | _, s ->
              check
                (s.Stats.s_failed = 0 && s.Stats.s_unsound = 0)
                "recovery pass: a job failed or went unsound";
              check (s.Stats.s_served = njobs)
                "recovery pass: not every job served after reboot"
          | exception _ ->
              check false "recovery pass aborted (exception escaped)");
          rm_rf d)
        [ Blob.Crash; Blob.Torn 7 ])
    crash_points;

  rm_rf dir0;
  rm_rf scratch;
  rm_rf dir3;
  Printf.printf "%-52s %12s\n" "measure" "value";
  let row fmt = Printf.printf "%-52s %12s\n" fmt in
  row "corpus jobs (distinct records)"
    (Printf.sprintf "%d (%d)" njobs (List.length records));
  row "torn prefixes checked (every byte offset)" (string_of_int !offsets);
  row "torn writes through disk machinery (sampled, x2 modes)"
    (string_of_int !disk_offsets);
  row "truncated records detected as corrupt" (string_of_int !corrupt_detected);
  row "corrupt records quarantined" (string_of_int !quarantined);
  row "orphaned .tmp files swept on reopen" (string_of_int !orphans_swept);
  row "single-bit flips checked" (string_of_int !flips);
  row "torn/flipped records served (must be 0)"
    (string_of_int (!torn_served + !flips_served));
  row "ENOSPC batch: jobs served / failed"
    (Printf.sprintf "%d / %d" enospc.Stats.s_served enospc.Stats.s_failed);
  row "crash-point runs (crashed, then recovered)"
    (Printf.sprintf "%d (%d)" !crash_runs !crashes_fired);
  check (!torn_served = 0) "a torn record was served";
  check (!flips_served = 0) "a bit-flipped record was served";
  if !fail <> [] then begin
    List.iter (fun m -> Printf.eprintf "RECOVERY: FAIL — %s\n" m) !fail;
    exit 1
  end
  else
    Printf.printf
      "\nAll invariants hold: zero torn records served, zero batch aborts \
       under non-crash faults,\nevery job reached a terminal status, all \
       orphans swept on reopen.\n\n"

(* ------------------------------------------------------------------ *)
(* CHAOS: E12 — the persistent daemon under sustained fault injection   *)

(* `bench chaos` treats the daemon the way E9 treats the storage layer:
   as a system that must keep its invariants while everything around it
   misbehaves. It forks a certd server whose worker slots carry per-slot
   fault plans (one slot degrades to memory-only under persistent
   ENOSPC, the others crash every few store writes, one also silently
   bit-flips a record on the shared disk tier), then floods it from
   several concurrent client connections — deliberately past the
   admission caps, so backpressure is exercised rather than avoided.

   Invariants asserted, all hard:
   - every accepted submission ends in exactly one terminal reply;
   - zero corrupt certificates served (no [unsound] status anywhere —
     bit rot is caught by the record checksum and re-proved);
   - the admission queue never exceeds its configured cap;
   - every induced worker death is followed by a respawn: the pool is
     fully live at the end, no slot permanently stopped;
   - client-observed rejections equal the server's rejection counters;
   - SIGTERM after the storm drains and exits 0, unlinking the socket.

   `bench chaos quick` is the check.sh-sized variant (same invariants,
   ~30 jobs, >= 1 induced crash instead of >= 20). *)

let chaos () =
  let module Svc = Lcp_service in
  let module Wire = Svc.Wire in
  let module Server = Svc.Server in
  let module Blob = Svc.Blob_io in
  let quick = Array.length Sys.argv > 2 && Sys.argv.(2) = "quick" in
  header
    (if quick then
       "E12  CHAOS (quick)  daemon under fault-injected concurrent clients"
     else
       "E12  CHAOS  daemon under fault-injected concurrent clients (>= 500 \
        jobs, >= 20 induced crashes)");
  let fail = ref [] in
  let check cond msg =
    if (not cond) && not (List.mem msg !fail) then fail := msg :: !fail
  in
  let rec rm_rf p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "lcp_chaos_%d" (Unix.getpid ()))
    in
    rm_rf d;
    Sys.mkdir d 0o755;
    d
  in
  let socket_path = Filename.concat dir "certd.sock" in
  let cache = Filename.concat dir "cache" in
  (* pre-create the shared disk tier so each plan's op counter starts
     at the record writes, not the mkdir *)
  Sys.mkdir cache 0o755;
  (* campaign shape: past the caps by construction, so both the global
     and the per-client admission gates fire *)
  let n_clients = if quick then 2 else 4 in
  let per_client = if quick then 15 else 140 in
  let workers = if quick then 2 else 3 in
  let queue_cap = if quick then 4 else 24 in
  let client_cap = if quick then 3 else 8 in
  let window = client_cap + 1 (* one past the quota: rejections are a goal *)
  and min_restarts = if quick then 1 else 20 in
  (* per-slot fault plans, reloaded on every respawn (a fresh
     incarnation gets a fresh op counter — so a crashing slot keeps
     crashing for the whole campaign):
     - slot 0 (full mode): persistent ENOSPC after a warm-up — the
       store degrades to memory-only and the slot keeps serving, as
       [served_degraded];
     - crash slots: a couple of records, then a simulated process
       death on the next store write;
     - the flip slot silently corrupts one record on the shared tier
       before its crash, so readers must catch it by checksum. *)
  let plans =
    if quick then [| "crash@6"; "fail@6+:ENOSPC" |]
    else [| "fail@40+:ENOSPC"; "crash@6"; "flip@5:3,crash@12" |]
  in
  let make_engine ~worker timing =
    let plan =
      match Blob.parse_plan plans.(worker mod Array.length plans) with
      | Ok p -> p
      | Error e -> failwith e
    in
    let io = fst (Blob.inject ~plan Blob.real) in
    Svc.Engine.create ~cache_dir:cache ~io ?timing ()
  in
  let cfg =
    {
      Server.socket_path;
      workers;
      queue_cap;
      client_cap;
      make_engine;
      timed = true;
      verbose = false;
      journal_dir = None;
      journal_fsync = `Every 8;
      journal_checkpoint = 256;
    }
  in
  (* fork the daemon, wait for the socket to accept *)
  flush stdout;
  flush stderr;
  let pid =
    match Unix.fork () with
    | 0 ->
        (try Server.run cfg with _ -> Unix._exit 1);
        Unix._exit 0
    | pid -> pid
  in
  let dial () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket_path);
    Wire.write_frame fd
      (Wire.encode_request (Wire.Hello { version = Wire.protocol_version }));
    (match Wire.read_frame fd with
    | Some payload -> (
        match Wire.decode_response payload with
        | Ok (Wire.Hello_ok _) -> ()
        | _ -> failwith "chaos: handshake refused")
    | None -> failwith "chaos: connection closed during handshake");
    fd
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait_up () =
    match dial () with
    | fd -> Unix.close fd
    | exception Unix.Unix_error _ ->
        if Unix.gettimeofday () > deadline then begin
          Unix.kill pid Sys.sigkill;
          failwith "chaos: daemon did not come up within 10s"
        end;
        Unix.sleepf 0.02;
        wait_up ()
  in
  wait_up ();
  (* the workload: mostly distinct instances (tree + distinct gseed),
     so nearly every job wants a store write and the crash plans keep
     firing; the paths recur across clients, so the shared cache tier
     is live too *)
  let job_line c i =
    match i mod 4 with
    | 0 ->
        Printf.sprintf
          "id=chaos-c%d-%d gen=tree n=%d gseed=%d property=acyclic k=2 seed=7"
          c i
          (8 + (i mod 9))
          ((c * 1009) + i)
    | 1 ->
        Printf.sprintf
          "id=chaos-c%d-%d gen=tree n=%d gseed=%d property=bipartite k=2 \
           seed=7"
          c i
          (8 + (i mod 9))
          ((c * 2003) + i)
    | 2 ->
        Printf.sprintf
          "id=chaos-c%d-%d gen=path n=%d property=connected k=2 seed=7" c i
          (6 + (i mod 20))
    | _ ->
        Printf.sprintf
          "id=chaos-c%d-%d gen=tree n=%d gseed=%d property=triangle_free \
           k=2 seed=7"
          c i
          (8 + (i mod 9))
          ((c * 4001) + i)
  in
  let submit fd serial line =
    Wire.write_frame fd
      (Wire.encode_request
         (Wire.Submit { serial; canonical = true; deadline_ms = 0.0; line }))
  in
  (* one multiplexed driver for all the client connections: keep each
     window full, requeue on Overloaded, demand exactly one terminal
     reply per serial *)
  let total = n_clients * per_client in
  let clients =
    Array.init n_clients (fun c ->
        ( dial (),
          ref (List.init per_client (fun i -> (i, job_line c i))),
          ref 0 (* in flight *),
          Array.make per_client 0 (* terminal replies per serial *) ))
  in
  let answered = ref 0 in
  let overloaded = ref 0 in
  let by_status = Hashtbl.create 8 in
  let tally s =
    Hashtbl.replace by_status s (1 + Option.value ~default:0 (Hashtbl.find_opt by_status s))
  in
  while !answered < total do
    Array.iter
      (fun (fd, pending, inflight, _) ->
        while !inflight < window && !pending <> [] do
          let (serial, line), rest =
            (List.hd !pending, List.tl !pending)
          in
          pending := rest;
          submit fd serial line;
          incr inflight
        done)
      clients;
    let fds =
      Array.to_list clients |> List.map (fun (fd, _, _, _) -> fd)
    in
    let progressed = ref false in
    (match Unix.select fds [] [] 30.0 with
    | [], _, _ -> failwith "chaos: daemon went quiet for 30s mid-campaign"
    | readable, _, _ ->
        Array.iteri
          (fun c (fd, pending, inflight, replies) ->
            if List.mem fd readable then
              match Wire.read_frame fd with
              | None ->
                  failwith "chaos: daemon closed a connection mid-campaign"
              | Some payload -> (
                  match Wire.decode_response payload with
                  | Ok (Wire.Report { serial; status; _ }) ->
                      decr inflight;
                      replies.(serial) <- replies.(serial) + 1;
                      incr answered;
                      progressed := true;
                      tally status
                  | Ok (Wire.Overloaded { serial; _ }) ->
                      decr inflight;
                      incr overloaded;
                      pending := !pending @ [ (serial, job_line c serial) ]
                  | Ok r ->
                      failwith
                        (Printf.sprintf "chaos: unexpected reply %s"
                           (Wire.encode_response r))
                  | Error e -> failwith ("chaos: undecodable reply: " ^ e)))
          clients);
    (* a round that was pure backpressure: yield so the workers can
       drain a slot before the next submission burst *)
    if not !progressed then Unix.sleepf 0.002
  done;
  Array.iter
    (fun (_, _, _, replies) ->
      Array.iteri
        (fun serial n ->
          check (n = 1)
            (Printf.sprintf
               "a submission got %d terminal replies (serial %d), want \
                exactly 1"
               n serial))
        replies)
    clients;
  (* recovery wave: the storm is over; the pool must still answer *)
  let final_answered = ref 0 in
  Array.iteri
    (fun c (fd, _, _, _) ->
      submit fd per_client
        (Printf.sprintf
           "id=chaos-final-%d gen=tree n=10 gseed=%d property=acyclic k=2 \
            seed=7"
           c (90000 + c));
      let rec await () =
        match Wire.read_frame fd with
        | None -> check false "recovery wave: connection closed"
        | Some payload -> (
            match Wire.decode_response payload with
            | Ok (Wire.Report { status; _ }) ->
                incr final_answered;
                tally status
            | Ok (Wire.Overloaded _) ->
                (* the queue is empty now, but a slot may still be
                   rebooting; retry *)
                Unix.sleepf 0.01;
                submit fd per_client
                  (Printf.sprintf
                     "id=chaos-final-%d gen=tree n=10 gseed=%d \
                      property=acyclic k=2 seed=7"
                     c (90000 + c));
                await ()
            | Ok _ | Error _ -> check false "recovery wave: bad reply")
      in
      await ())
    clients;
  check (!final_answered = n_clients) "recovery wave: not every job answered";
  (* the live stats endpoint is the campaign's scoreboard *)
  let stats_fd = dial () in
  Wire.write_frame stats_fd (Wire.encode_request Wire.Stats_req);
  let stats_json =
    match Wire.read_frame stats_fd with
    | Some payload -> (
        match Wire.decode_response payload with
        | Ok (Wire.Stats_reply json) -> json
        | _ -> failwith "chaos: stats endpoint gave a non-stats reply")
    | None -> failwith "chaos: stats connection closed"
  in
  Unix.close stats_fd;
  let json_int field =
    let tag = "\"" ^ field ^ "\":" in
    let rec find i =
      if i + String.length tag > String.length stats_json then
        failwith (Printf.sprintf "chaos: field %s missing from stats" field)
      else if String.sub stats_json i (String.length tag) = tag then begin
        let j = ref (i + String.length tag) in
        let start = !j in
        while
          !j < String.length stats_json
          &&
          match stats_json.[!j] with '0' .. '9' | '-' -> true | _ -> false
        do
          incr j
        done;
        int_of_string (String.sub stats_json start (!j - start))
      end
      else find (i + 1)
    in
    find 0
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let restarts = json_int "restarts" in
  let status_count s = Option.value ~default:0 (Hashtbl.find_opt by_status s) in
  Printf.printf
    "%d jobs over %d clients (window %d, queue cap %d, client cap %d, %d \
     workers)\n"
    total n_clients window queue_cap client_cap workers;
  Printf.printf
    "  terminal replies: %d  (served_fresh %d, served_cached %d, \
     served_degraded %d, failed %d)\n"
    (!answered + !final_answered)
    (status_count "served_fresh")
    (status_count "served_cached")
    (status_count "served_degraded")
    (status_count "failed");
  Printf.printf
    "  backpressure: %d client-observed rejections (server: %d overload + \
     %d quota)\n"
    !overloaded
    (json_int "rejected_overload")
    (json_int "rejected_quota");
  Printf.printf
    "  supervision: %d induced worker deaths survived, %d live / %d \
     stopped slots, %d jobs requeued\n"
    restarts (json_int "live") (json_int "stopped") (json_int "requeued");
  Printf.printf
    "  store under fire: %d corrupt caught, %d quarantined (%d evicted), \
     %d disk errors, max queue depth %d/%d\n"
    (json_int "corrupt") (json_int "quarantined")
    (json_int "quarantine_evictions")
    (json_int "disk_errors") (json_int "max_depth") queue_cap;
  check (json_int "unsound" = 0) "a corrupt certificate was served (unsound > 0)";
  check (status_count "unsound" = 0) "a client saw an unsound reply";
  check (restarts >= min_restarts)
    (Printf.sprintf "too few induced worker crashes (%d, want >= %d)"
       restarts min_restarts);
  check (json_int "stopped" = 0) "a worker slot was permanently stopped";
  check (json_int "live" = workers) "the pool is not fully live after the storm";
  check (json_int "max_depth" <= queue_cap) "the queue exceeded its cap";
  check (!overloaded > 0) "backpressure was never exercised";
  check
    (json_int "rejected_overload" + json_int "rejected_quota" = !overloaded)
    "server rejection counters disagree with client-observed rejections";
  check
    (json_int "submitted" = json_int "completed")
    "accepted and completed job counts disagree";
  check
    (json_int "submitted" = total + n_clients)
    "the server accepted a different number of jobs than were submitted";
  check
    (contains stats_json "\"stage\":\"prove\"")
    "the stats endpoint reports no prove-stage percentiles";
  (if not quick then
     check (total >= 500) "full campaign must push >= 500 jobs");
  (* clean drain: SIGTERM, every connection must end in EOF, exit 0,
     socket unlinked *)
  Unix.kill pid Sys.sigterm;
  Array.iter
    (fun (fd, _, _, _) ->
      let rec drain_eof () =
        match Wire.read_frame fd with
        | None -> ()
        | Some _ -> drain_eof ()
        | exception (Sys_error _ | Unix.Unix_error _) ->
            check false "drain: connection did not end in a clean EOF"
      in
      drain_eof ();
      Unix.close fd)
    clients;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c ->
      check false (Printf.sprintf "drain: daemon exited %d, want 0" c)
  | _ -> check false "drain: daemon was killed by a signal");
  check (not (Sys.file_exists socket_path)) "drain: socket not unlinked";
  rm_rf dir;
  if !fail <> [] then begin
    List.iter (fun m -> Printf.eprintf "CHAOS: FAIL — %s\n" m) !fail;
    exit 1
  end
  else
    Printf.printf
      "\nAll invariants hold: every submission answered exactly once, zero \
       corrupt certificates served,\nqueue bounded by its cap, every \
       induced death respawned, clean SIGTERM drain.\n\n"

(* ------------------------------------------------------------------ *)
(* E14: crash-recovery campaign — SIGKILL the daemon during streaming
   edits, restart it on the same socket and journal, resume, and demand
   that the final canonical JSONL is byte-identical to an uninterrupted
   run of the same edit script.

   Each trial plays one edit stream (open + E edits) against a
   journal-backed daemon and kills it with SIGKILL at randomized
   points — half of them before a request is sent, half with the
   request already in flight, so both the crash-before-journal-append
   and the crash-after-append arms of the exactly-once argument are
   exercised. After every kill the daemon is restarted cold and the
   client resumes (resume=1 re-open, then resend of the in-flight
   serial); recovery latency (SIGKILL to resumed-open reply, including
   respawn, journal replay, and the whole-graph re-verification of the
   rebuilt session) is measured per kill.

   Invariants, all hard:
   - the concatenated canonical JSONL of every trial is byte-identical
     to the uninterrupted baseline (nothing lost, duplicated, or
     recomputed differently);
   - zero unsound serves, in the replies and in the daemon's counters;
   - every rebuilt step re-verified (resume_mismatch = 0 with
     rebuilt_steps > 0);
   - every trial drains cleanly on SIGTERM afterwards.

   Full: >= 200 SIGKILL points. `bench crash quick`: 12. *)

let e14_crash () =
  let module Svc = Lcp_service in
  let module Wire = Svc.Wire in
  let module Server = Svc.Server in
  let quick = Array.length Sys.argv > 2 && Sys.argv.(2) = "quick" in
  header
    (if quick then "E14  CRASH (quick)  SIGKILL + journal resume, 12 kills"
     else
       "E14  CRASH  SIGKILL during streaming edits, journal resume (>= 200 \
        kills)");
  let fail = ref [] in
  let check cond msg =
    if (not cond) && not (List.mem msg !fail) then fail := msg :: !fail
  in
  let rec rm_rf p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  let root =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "lcp_crash_%d" (Unix.getpid ()))
    in
    rm_rf d;
    Sys.mkdir d 0o755;
    d
  in
  let trials = if quick then 3 else 25 in
  let edits = if quick then 10 else 20 in
  let kills_per_trial = if quick then 4 else 8 in
  let base_line = "id=dyn gen=path n=24 property=connected k=2 seed=7" in
  let ops_of i =
    match i mod 4 with
    | 0 -> Printf.sprintf "del=%d-%d" (i mod 20) ((i mod 20) + 1)
    | 1 -> Printf.sprintf "add=%d-%d" (i mod 20) ((i mod 20) + 1)
    | 2 -> Printf.sprintf "add=%d-%d del=%d-%d" (i mod 6) (17 + (i mod 6)) (i mod 12) ((i mod 12) + 1)
    | _ -> ""
  in
  let mk_cfg trial =
    let dir = Filename.concat root (Printf.sprintf "t%d" trial) in
    Sys.mkdir dir 0o755;
    ( dir,
      {
        Server.socket_path = Filename.concat dir "certd.sock";
        workers = 1;
        queue_cap = 64;
        client_cap = 48;
        make_engine = (fun ~worker:_ timing -> Svc.Engine.create ?timing ());
        timed = false;
        verbose = false;
        journal_dir = Some (Filename.concat dir "journal");
        journal_fsync = `Always;
        journal_checkpoint = 256;
      } )
  in
  let start_server cfg =
    flush stdout;
    flush stderr;
    let pid =
      match Unix.fork () with
      | 0 ->
          (try Server.run cfg with _ -> Unix._exit 1);
          Unix._exit 0
      | pid -> pid
    in
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec wait_up () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX cfg.Server.socket_path) with
      | () -> Unix.close fd
      | exception Unix.Unix_error _ ->
          Unix.close fd;
          if Unix.gettimeofday () > deadline then begin
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            failwith "crash: daemon did not come up within 10s"
          end;
          Unix.sleepf 0.005;
          wait_up ()
    in
    wait_up ();
    pid
  in
  let dial cfg =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX cfg.Server.socket_path);
    Wire.write_frame fd
      (Wire.encode_request (Wire.Hello { version = Wire.protocol_version }));
    (match Wire.read_frame fd with
    | Some payload -> (
        match Wire.decode_response payload with
        | Ok (Wire.Hello_ok _) -> ()
        | _ -> failwith "crash: handshake refused")
    | None -> failwith "crash: connection closed during handshake");
    fd
  in
  let read_dreport fd =
    match Wire.read_frame fd with
    | None -> None
    | Some payload -> (
        match Wire.decode_response payload with
        | Ok (Wire.Dreport { serial; status; canonical; _ }) ->
            Some (`Dreport (serial, status, canonical))
        | Ok (Wire.Overloaded _) -> Some `Overloaded
        | Ok r ->
            failwith
              (Printf.sprintf "crash: unexpected reply %s"
                 (Wire.encode_response r))
        | Error e -> failwith ("crash: undecodable reply: " ^ e))
    | exception (Sys_error _ | Unix.Unix_error _) -> None
  in
  let req_of serial =
    if serial = 0 then
      Wire.Delta_open
        { serial = 0; deadline_ms = 0.0; sid = "e14"; resume = false;
          line = base_line }
    else
      Wire.Delta_edit
        { serial; deadline_ms = 0.0; full = false; ops = ops_of serial }
  in
  (* one full stream against a server we may kill under it; returns the
     canonical line per serial plus the measured resume latencies *)
  let play cfg ~kills =
    let pid = ref (start_server cfg) in
    let fd = ref (dial cfg) in
    let canon = Array.make (edits + 1) "" in
    let latencies = ref [] in
    let resumed = ref 0 in
    let kill_now () =
      Unix.kill !pid Sys.sigkill;
      ignore (Unix.waitpid [] !pid);
      (try Unix.close !fd with Unix.Unix_error _ -> ());
      let t0 = Unix.gettimeofday () in
      pid := start_server cfg;
      fd := dial cfg;
      (* resume; the re-open reply must be the journaled serial-0 line *)
      let rec await attempts =
        Wire.write_frame !fd
          (Wire.encode_request
             (Wire.Delta_open
                { serial = 0; deadline_ms = 0.0; sid = "e14"; resume = true;
                  line = "" }));
        match read_dreport !fd with
        | Some (`Dreport (0, _, c)) ->
            latencies := (Unix.gettimeofday () -. t0) :: !latencies;
            incr resumed;
            check
              (canon.(0) = "" || canon.(0) = c)
              "resumed open reply differs from the original open reply"
        | Some `Overloaded ->
            if attempts > 600 then failwith "crash: resume refused 600 times";
            Unix.sleepf 0.02;
            await (attempts + 1)
        | Some (`Dreport _) -> failwith "crash: resume answered a wrong serial"
        | None -> failwith "crash: connection lost during resume"
      in
      await 0
    in
    for serial = 0 to edits do
      (match List.assoc_opt serial kills with
      | Some `Before -> kill_now ()
      | Some `Inflight | None -> ());
      (* send, then (for an in-flight kill) shoot the server before
         reading the reply — the resend after resume must come back
         byte-identical, recomputed or deduplicated from the journal *)
      let inflight_pending =
        ref (List.assoc_opt serial kills = Some `Inflight)
      in
      let rec exchange attempts =
        if attempts > 600 then failwith "crash: no terminal reply in 600 tries";
        Wire.write_frame !fd (Wire.encode_request (req_of serial));
        if !inflight_pending then begin
          (* the request is on the wire: shoot the server now, resume,
             and resend — the journal must dedup or recompute to the
             same bytes whether or not the edit landed before death *)
          inflight_pending := false;
          kill_now ();
          exchange (attempts + 1)
        end
        else
          match read_dreport !fd with
          | Some (`Dreport (s, status, c)) ->
              if s <> serial then
                failwith
                  (Printf.sprintf "crash: reply serial %d, want %d" s serial);
              check
                (status <> "unsound")
                "an unsound report was served after recovery";
              if canon.(serial) = "" then canon.(serial) <- c
              else
                check
                  (canon.(serial) = c)
                  "a resent serial got a different reply than the original"
          | Some `Overloaded ->
              Unix.sleepf 0.02;
              exchange (attempts + 1)
          | None ->
              (* the kill landed between send and reply *)
              kill_now ();
              exchange (attempts + 1)
      in
      (try exchange 0
       with Sys_error _ | Unix.Unix_error _ ->
         kill_now ();
         exchange 1)
    done;
    (* counters: every rebuilt step re-verified, none diverged *)
    let stats_fd = dial cfg in
    Wire.write_frame stats_fd (Wire.encode_request Wire.Stats_req);
    let stats_json =
      match Wire.read_frame stats_fd with
      | Some payload -> (
          match Wire.decode_response payload with
          | Ok (Wire.Stats_reply json) -> json
          | _ -> failwith "crash: non-stats reply")
      | None -> failwith "crash: stats connection closed"
    in
    Unix.close stats_fd;
    let json_int field =
      let tag = "\"" ^ field ^ "\":" in
      let rec find i =
        if i + String.length tag > String.length stats_json then
          failwith (Printf.sprintf "crash: field %s missing" field)
        else if String.sub stats_json i (String.length tag) = tag then begin
          let j = ref (i + String.length tag) in
          let start = !j in
          while
            !j < String.length stats_json
            &&
            match stats_json.[!j] with '0' .. '9' | '-' -> true | _ -> false
          do
            incr j
          done;
          int_of_string (String.sub stats_json start (!j - start))
        end
        else find (i + 1)
      in
      find 0
    in
    if kills <> [] then begin
      check (json_int "resumed" >= 1) "a killed trial never resumed";
      check
        (json_int "rebuilt_steps" >= 1 || List.for_all (fun (s, _) -> s = 0) kills)
        "a resume rebuilt no steps";
      check
        (json_int "resume_mismatch" = 0)
        "a rebuilt step diverged from its journaled reply (resume_mismatch)"
    end;
    check (json_int "unsound" = 0) "the daemon counted an unsound serve";
    (* clean drain *)
    Unix.kill !pid Sys.sigterm;
    (match Unix.waitpid [] !pid with
    | _, Unix.WEXITED 0 -> ()
    | _ -> check false "a trial's daemon did not drain cleanly on SIGTERM");
    (try Unix.close !fd with Unix.Unix_error _ -> ());
    (canon, !latencies, !resumed)
  in
  (* the uninterrupted baseline this whole campaign is measured against *)
  let baseline, _, _ =
    let _, cfg = mk_cfg 0 in
    play cfg ~kills:[]
  in
  let total_kills = ref 0 in
  let all_latencies = ref [] in
  let t_start = Unix.gettimeofday () in
  for trial = 1 to trials do
    let _, cfg = mk_cfg trial in
    let st = Random.State.make [| 0xE14; trial |] in
    (* distinct kill serials, half before-send and half in-flight *)
    (* distinct serials in 1..edits: the open itself is never a kill
       point (there is nothing journaled to resume before it), but
       every later point — before-send or in-flight — is fair game *)
    let rec pick acc =
      if List.length acc >= kills_per_trial then acc
      else
        let s = 1 + Random.State.int st edits in
        if List.mem_assoc s acc then pick acc
        else
          pick
            ((s, if Random.State.bool st then `Before else `Inflight) :: acc)
    in
    let kills = pick [] in
    let canon, latencies, resumed = play cfg ~kills in
    total_kills := !total_kills + List.length kills;
    all_latencies := latencies @ !all_latencies;
    check
      (resumed = List.length kills)
      "a trial resumed a different number of times than it was killed";
    check
      (Array.to_list canon = Array.to_list baseline)
      (Printf.sprintf
         "trial %d: canonical JSONL differs from the uninterrupted baseline"
         trial)
  done;
  let wall = Unix.gettimeofday () -. t_start in
  let lat = List.sort compare !all_latencies in
  let n_lat = List.length lat in
  let pct p =
    if n_lat = 0 then 0.0
    else List.nth lat (min (n_lat - 1) (p * n_lat / 100))
  in
  Printf.printf
    "%d trials x (1 open + %d edits), %d SIGKILLs (before-send and \
     in-flight), %.1fs wall\n"
    trials edits !total_kills wall;
  Printf.printf
    "  recovery latency (SIGKILL -> resumed-open reply, incl. respawn + \
     journal replay + whole-graph re-verify):\n";
  Printf.printf "    min %.1f ms   p50 %.1f ms   p90 %.1f ms   max %.1f ms\n"
    (1000.0 *. pct 0) (1000.0 *. pct 50) (1000.0 *. pct 90)
    (1000.0 *. List.fold_left Float.max 0.0 lat);
  check
    (!total_kills >= if quick then 12 else 200)
    (Printf.sprintf "too few kill points (%d)" !total_kills);
  rm_rf root;
  if !fail <> [] then begin
    List.iter (fun m -> Printf.eprintf "CRASH: FAIL — %s\n" m) !fail;
    exit 1
  end
  else
    Printf.printf
      "\nAll invariants hold: every trial's canonical JSONL byte-identical \
       to the uninterrupted run,\nzero unsound serves, every rebuilt step \
       re-verified against its journaled reply, clean drains.\n\n"

(* ------------------------------------------------------------------ *)
(* timing: bechamel micro-benchmarks                                    *)

let timing () =
  header "Timing (bechamel): prover and verifier costs";
  let open Bechamel in
  let n = 128 in
  let g, ivs = Gen.random_pathwidth rng ~n ~k:2 () in
  let cfg = PLS.Config.random_ids rng g in
  let rep = Rep.of_pairs g ivs in
  let t1 = T1conn.edge_scheme ~rep:(fun _ -> Some rep) ~k:2 () in
  let labels = Option.get (t1.PLS.Scheme.es_prove cfg) in
  let fmr = Fconn.scheme ~rep:(fun _ -> Some rep) ~k:2 () in
  let fmr_labels = Option.get (fmr.PLS.Scheme.vs_prove cfg) in
  let path_g = Gen.path 256 in
  let path_cfg = PLS.Config.make path_g in
  let heur c =
    Some (PW.heuristic_interval_representation (PLS.Config.graph c))
  in
  let t1_path = T1conn.edge_scheme ~rep:heur ~k:1 () in
  let tests =
    Test.make_grouped ~name:"lcp"
      [
        Test.make ~name:"theorem1 prover (path n=256)"
          (Staged.stage (fun () -> ignore (t1_path.PLS.Scheme.es_prove path_cfg)));
        Test.make ~name:"theorem1 prover (random pw2 n=128)"
          (Staged.stage (fun () -> ignore (t1.PLS.Scheme.es_prove cfg)));
        Test.make ~name:"fmr baseline prover (random pw2 n=128)"
          (Staged.stage (fun () -> ignore (fmr.PLS.Scheme.vs_prove cfg)));
        Test.make ~name:"theorem1 full verification (n=128)"
          (Staged.stage (fun () -> ignore (PLS.Scheme.run_edge cfg t1 labels)));
        Test.make ~name:"fmr full verification (n=128)"
          (Staged.stage (fun () -> ignore (PLS.Scheme.run_vertex cfg fmr fmr_labels)));
        Test.make ~name:"Prop 4.6 construction (n=128)"
          (Staged.stage (fun () -> ignore (LC.construct rep)));
        Test.make ~name:"hierarchy build (n=128)"
          (Staged.stage (fun () ->
               let r = LC.construct rep in
               let part = r.LC.partition in
               let tr, to_host =
                 Lcp_lanewidth.Prop52.trace_of_partition part
               in
               let host = Lcp_lanes.Completion.completion part in
               ignore (Bld.of_trace_on ~host ~to_host tr)));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg_b =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg_b instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "%-50s %15s\n" "benchmark" "time/run";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] ->
          let human =
            if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
            else Printf.sprintf "%.0f ns" est
          in
          Printf.printf "%-50s %15s\n" name human
      | _ -> Printf.printf "%-50s %15s\n" name "?")
    results;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E13: incremental re-certification vs full reproof                   *)

let e13_incr () =
  header "E13: incremental re-certification vs full reproof (dynamic graphs)";
  let quick = Array.length Sys.argv > 2 && Sys.argv.(2) = "quick" in
  let module Svc = Lcp_service in
  let module Inc = Lcp_cert.Incremental in
  let now () = Unix.gettimeofday () in
  Printf.printf
    "  random single-edge edit streams against live delta sessions: a small\n\
    \  volatile pool of chord edges toggles on and off, so every state stays\n\
    \  connected and certifiable and revisited states are real.  incr = the\n\
    \  certd session path (content-addressed store, hits decoded and fully\n\
    \  re-verified before serving; misses transplant + splice + localized\n\
    \  verify).  full = the same session code forced to from-scratch\n\
    \  recompute each step on a storeless engine.  Verdicts must agree on\n\
    \  every step.\n\n";
  Printf.printf "  %-12s %6s %7s %6s | %10s %10s %8s | %6s %7s %9s\n" "family"
    "n" "m0" "steps" "full ms/st" "incr ms/st" "speedup" "hit%" "reuse%"
    "memo hit%";
  line ();
  let open_session ~cache line =
    let job =
      match Svc.Manifest.parse line with
      | Ok [ j ] -> j
      | Ok _ -> failwith "e13: expected one job"
      | Error e -> failwith e
    in
    let engine =
      if cache then Svc.Engine.create ()
      else Svc.Engine.create ~cache_cap:1 ()
    in
    match Svc.Delta.create engine job with
    | Ok (s, r, _) ->
        (match r.Svc.Stats.r_status with
        | Svc.Stats.Served_fresh | Svc.Stats.Served_cached -> s
        | _ ->
            failwith
              (Printf.sprintf "e13: base instance not certifiable: %s"
                 (Svc.Stats.to_canonical_json r)))
    | Error (r, _) -> failwith (Svc.Stats.to_canonical_json r)
  in
  let verdict_class r =
    match r.Svc.Stats.r_status with
    | Svc.Stats.Served_fresh | Svc.Stats.Served_cached
    | Svc.Stats.Served_degraded -> `Served
    | Svc.Stats.Declined -> `Declined
    | Svc.Stats.Input_error _ -> `Input_error
    | Svc.Stats.Unsound _ | Svc.Stats.Failed _ -> `Broken
  in
  let stream ~family ~n ~steps =
    let gen = match family with "dense" -> "random" | f -> f in
    let line_of id =
      Printf.sprintf "id=%s gen=%s n=%d gseed=13 property=connected k=2 seed=11"
        id gen n
    in
    let s_inc = open_session ~cache:true (line_of ("e13i-" ^ family)) in
    let s_full = open_session ~cache:false (line_of ("e13f-" ^ family)) in
    let g0 = Svc.Delta.graph s_inc in
    let nb = G.n g0 and m0 = G.m g0 in
    (* the volatile pool: a handful of short chords (cycle edges), so a
       deletion never disconnects and both pipelines certify every
       state; 2^|pool| possible states keeps revisits honest, not
       guaranteed *)
    let srng = Random.State.make [| 0xE13; n; Hashtbl.hash family |] in
    let pool =
      let rec draw acc tries =
        if List.length acc >= 4 || tries > 200 then acc
        else
          let u = Random.State.int srng (nb - 7) in
          let e = (u, u + 2 + Random.State.int srng 5) in
          if List.mem e acc || G.mem_edge g0 (fst e) (snd e) then
            draw acc (tries + 1)
          else draw (e :: acc) (tries + 1)
      in
      Array.of_list (draw [] 0)
    in
    let t_full = ref 0.0 and t_inc = ref 0.0 in
    let hits = ref 0 and reused = ref 0 and changed = ref 0 in
    let memo_h = ref 0 and memo_m = ref 0 in
    let total = ref 0 in
    let run_step ops =
      incr total;
      let t0 = now () in
      let ri, ii = Svc.Delta.step s_inc ~full:false ops in
      t_inc := !t_inc +. (now () -. t0);
      let t1 = now () in
      let rf, _ = Svc.Delta.step s_full ~full:true ops in
      t_full := !t_full +. (now () -. t1);
      if verdict_class ri <> verdict_class rf then
        failwith
          (Printf.sprintf "e13: verdict divergence on %s:\n  %s\n  %s" ops
             (Svc.Stats.to_canonical_json ri)
             (Svc.Stats.to_canonical_json rf));
      (match verdict_class ri with
      | `Served | `Declined -> ()
      | _ -> failwith ("e13: broken step: " ^ Svc.Stats.to_canonical_json ri));
      if ii.Svc.Delta.pi_mode = "cached" then incr hits;
      reused := !reused + ii.Svc.Delta.pi_reused;
      changed := !changed + ii.Svc.Delta.pi_changed;
      memo_h := !memo_h + ii.Svc.Delta.pi_memo_hits;
      memo_m := !memo_m + ii.Svc.Delta.pi_memo_misses
    in
    (* warm-in: place the pool edges (timed; these are real misses) *)
    Array.iter
      (fun (u, v) -> run_step (Printf.sprintf "add=%d-%d" u v))
      pool;
    for _ = 1 to steps do
      let u, v = pool.(Random.State.int srng (Array.length pool)) in
      let g = Svc.Delta.graph s_inc in
      let ops =
        if G.mem_edge g u v then Printf.sprintf "del=%d-%d" u v
        else Printf.sprintf "add=%d-%d" u v
      in
      run_step ops
    done;
    Printf.printf
      "  %-12s %6d %7d %6d | %10.2f %10.2f %7.1fx | %5.1f%% %6.1f%% %8.1f%%\n%!"
      family nb m0 !total
      (1000.0 *. !t_full /. float_of_int !total)
      (1000.0 *. !t_inc /. float_of_int !total)
      (!t_full /. !t_inc)
      (100.0 *. float_of_int !hits /. float_of_int !total)
      (100.0 *. float_of_int !reused
      /. float_of_int (max 1 (!reused + !changed)))
      (100.0 *. float_of_int !memo_h
      /. float_of_int (max 1 (!memo_h + !memo_m)))
  in
  let ns = if quick then [ 1024 ] else [ 1024; 2048 ] in
  let steps = if quick then 20 else 60 in
  List.iter
    (fun family -> List.iter (fun n -> stream ~family ~n ~steps) ns)
    [ "path"; "caterpillar"; "dense" ];
  line ()

(* ------------------------------------------------------------------ *)
(* perf (E11): hot-path microbenchmarks with a committed-baseline gate   *)

module Gref = Lcp_graph.Graph_ref
module Bitenc = Lcp_util.Bitenc
module Memo = Lcp_cert.Memo

(* min over batches of the mean ns/op — the most noise-robust cheap
   estimator on a shared 1-core container (noise only ever adds time).
   Minor words are averaged the same way; they are deterministic. *)
let measure ?(batches = 5) ~iters f =
  f ();
  (* warmup *)
  let best_ns = ref infinity and best_w = ref infinity in
  for _ = 1 to batches do
    let w0 = Gc.minor_words () in
    let t0 = Monotonic_clock.now () in
    for _ = 1 to iters do
      f ()
    done;
    let ns =
      Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0)
      /. float_of_int iters
    in
    let w = (Gc.minor_words () -. w0) /. float_of_int iters in
    if ns < !best_ns then best_ns := ns;
    if w < !best_w then best_w := w
  done;
  (!best_ns, !best_w)

(* one line per op so the baseline parser can stay line-based *)
let perf_json ~mode ops derived =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": 1,\n";
  Buffer.add_string b (Printf.sprintf "  \"mode\": %S,\n" mode);
  Buffer.add_string b "  \"ops\": {\n";
  let nops = List.length ops in
  List.iteri
    (fun i (name, ns, w) ->
      Buffer.add_string b
        (Printf.sprintf
           "    %S: {\"ns_per_op\": %.1f, \"minor_words_per_op\": %.1f}%s\n"
           name ns w
           (if i = nops - 1 then "" else ",")))
    ops;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"derived\": {\n";
  let nd = List.length derived in
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "    %S: %.2f%s\n" name v
           (if i = nd - 1 then "" else ",")))
    derived;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

(* baseline parser: one op / one derived ratio per line, exactly as
   perf_json prints them *)
let parse_baseline file =
  if not (Sys.file_exists file) then None
  else begin
    let ic = open_in file in
    let ops = ref [] and derived = ref [] in
    (try
       while true do
         let line = input_line ic in
         (try
            Scanf.sscanf (String.trim line)
              "%S: {\"ns_per_op\": %f, \"minor_words_per_op\": %f"
              (fun name ns w -> ops := (name, ns, w) :: !ops)
          with Scanf.Scan_failure _ | Failure _ | End_of_file -> (
            try
              Scanf.sscanf (String.trim line) "%S: %f" (fun name v ->
                  derived := (name, v) :: !derived)
            with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()))
       done
     with End_of_file -> ());
    close_in ic;
    Some (List.rev !ops, List.rev !derived)
  end

let perf () =
  header "E11: hot-path microbenchmarks (CSR graph, memoized joins, bitenc)";
  let args = Array.to_list Sys.argv in
  let quick = List.mem "quick" args in
  let update = List.mem "update" args in
  let batches = if quick then 3 else 7 in
  let prng = Random.State.make [| 20250806 |] in
  (* -- corpora (identical in quick and full mode: numbers must be
        comparable against the committed baseline either way) -- *)
  let dense_n = 512 in
  let dense_edges =
    List.concat_map
      (fun u ->
        List.filter_map
          (fun v ->
            if Random.State.float prng 1.0 < 0.25 then Some (u, v) else None)
          (List.init (dense_n - u - 1) (fun i -> u + 1 + i)))
      (List.init dense_n (fun u -> u))
  in
  let dense_csr = G.of_edges ~n:dense_n dense_edges in
  let dense_ref = Gref.of_edges ~n:dense_n dense_edges in
  let sparse_g, _ = Gen.random_pathwidth prng ~n:1024 ~k:2 () in
  let sparse_edges = G.edges sparse_g in
  let sparse_ref = Gref.of_edges ~n:1024 sparse_edges in
  let nq = 8192 in
  let queries =
    Array.init nq (fun _ ->
        (Random.State.int prng dense_n, Random.State.int prng dense_n))
  in
  let queries_sparse =
    Array.init nq (fun _ ->
        (Random.State.int prng 1024, Random.State.int prng 1024))
  in
  (* 10k-edge graph for the incremental add/remove ops *)
  let big_n = 2000 in
  let big_edges =
    let seen = Hashtbl.create 20011 in
    let acc = ref [] in
    while Hashtbl.length seen < 10_000 do
      let u = Random.State.int prng big_n and v = Random.State.int prng big_n in
      if u <> v && not (Hashtbl.mem seen (min u v, max u v)) then begin
        Hashtbl.add seen (min u v, max u v) ();
        acc := (u, v) :: !acc
      end
    done;
    !acc
  in
  let big = G.of_edges ~n:big_n big_edges in
  let fresh64 =
    let acc = ref [] and k = ref 0 in
    while !k < 64 do
      let u = Random.State.int prng big_n and v = Random.State.int prng big_n in
      if u <> v && not (G.mem_edge big u v) then begin
        acc := (u, v) :: !acc;
        incr k
      end
    done;
    !acc
  in
  let some_edges = Array.of_list (List.filteri (fun i _ -> i < 64) big_edges) in
  (* prover/verifier workload: the n=128 pw-2 instance of `timing` *)
  let n128 = 128 in
  let g128, ivs128 = Gen.random_pathwidth prng ~n:n128 ~k:2 () in
  let cfg128 = PLS.Config.random_ids prng g128 in
  let rep128 = Rep.of_pairs g128 ivs128 in
  let t1_128 = T1conn.edge_scheme ~rep:(fun _ -> Some rep128) ~k:2 () in
  let labels128 = Option.get (t1_128.PLS.Scheme.es_prove cfg128) in
  let heur c =
    Some (PW.heuristic_interval_representation (PLS.Config.graph c))
  in
  let path_g = Gen.path 256 in
  let path_cfg = PLS.Config.make path_g in
  let t1_path = T1conn.edge_scheme ~rep:heur ~k:1 () in
  let cyc_g = Gen.cycle 256 in
  let cyc_cfg = PLS.Config.make cyc_g in
  let t1_cyc = T1conn.edge_scheme ~rep:heur ~k:2 () in
  (* -- the ops -- *)
  let sink = ref 0 in
  let ops = ref [] in
  let op name ?batches:(b = batches) ~iters ~per f =
    let ns, w = measure ~batches:b ~iters f in
    let ns = ns /. float_of_int per and w = w /. float_of_int per in
    ops := (name, ns, w) :: !ops;
    Printf.printf "%-32s %12.1f ns/op %12.1f words/op\n%!" name ns w
  in
  op "graph.mem_edge.dense.csr" ~iters:20 ~per:nq (fun () ->
      Array.iter
        (fun (u, v) -> if G.mem_edge dense_csr u v then incr sink)
        queries);
  op "graph.mem_edge.dense.ref" ~iters:2 ~per:nq (fun () ->
      Array.iter
        (fun (u, v) -> if Gref.mem_edge dense_ref u v then incr sink)
        queries);
  op "graph.mem_edge.pw2.csr" ~iters:20 ~per:nq (fun () ->
      Array.iter
        (fun (u, v) -> if G.mem_edge sparse_g u v then incr sink)
        queries_sparse);
  op "graph.mem_edge.pw2.ref" ~iters:20 ~per:nq (fun () ->
      Array.iter
        (fun (u, v) -> if Gref.mem_edge sparse_ref u v then incr sink)
        queries_sparse);
  op "graph.degree.sum.csr" ~iters:200 ~per:big_n (fun () ->
      for v = 0 to big_n - 1 do
        sink := !sink + G.degree big v
      done);
  op "graph.add_edges.10k+64" ~iters:20 ~per:1 (fun () ->
      ignore (G.add_edges big fresh64));
  op "graph.remove_edge.10k" ~iters:20 ~per:1 (fun () ->
      let u, v = some_edges.(0) in
      ignore (G.remove_edge big u v));
  let bits_payload = Array.init 1000 (fun i -> (i * 2654435761) land 0x1fff) in
  let w = Bitenc.writer ~capacity:8192 () in
  let encode () =
    Bitenc.reset w;
    Array.iter (fun x -> Bitenc.bits w ~width:13 x) bits_payload;
    Array.iter (fun x -> Bitenc.varint w x) bits_payload
  in
  op "bitenc.write.13b+varint" ~iters:200 ~per:2000 encode;
  encode ();
  let payload_bytes = Bitenc.to_bytes w in
  let r = Bitenc.reader payload_bytes in
  op "bitenc.read.13b+varint" ~iters:200 ~per:2000 (fun () ->
      Bitenc.reset_reader r payload_bytes;
      for _ = 1 to 1000 do
        sink := !sink + Bitenc.read_bits r ~width:13
      done;
      for _ = 1 to 1000 do
        sink := !sink + Bitenc.read_varint r
      done);
  Memo.enabled := false;
  op "prove.pw2_128.memo_off" ~iters:1 ~per:1 (fun () ->
      ignore (t1_128.PLS.Scheme.es_prove cfg128));
  op "verify.pw2_128.memo_off" ~iters:1 ~per:1 (fun () ->
      ignore (PLS.Scheme.run_edge cfg128 t1_128 labels128));
  Memo.enabled := true;
  (* memo-counter probe: hit rates explain the speedup asymmetry (see
     DESIGN.md "Why the prover barely feels the memo") — the prover
     builds each distinct composition once, the verifier replays the
     same compositions edge after edge *)
  let memo_probe name f =
    Memo.reset_counters ();
    f ();
    let c = Memo.counters () in
    let hit = float_of_int (List.assoc "memo_hit" c) in
    let miss = float_of_int (List.assoc "memo_miss" c) in
    Printf.printf "%-32s memo hit rate %5.1f%% (%d hit / %d miss)\n" name
      (if hit +. miss > 0.0 then 100.0 *. hit /. (hit +. miss) else 0.0)
      (int_of_float hit) (int_of_float miss)
  in
  memo_probe "prove.pw2_128.memo_on" (fun () ->
      ignore (t1_128.PLS.Scheme.es_prove cfg128));
  op "prove.pw2_128.memo_on" ~iters:1 ~per:1 (fun () ->
      ignore (t1_128.PLS.Scheme.es_prove cfg128));
  memo_probe "verify.pw2_128.memo_on" (fun () ->
      ignore (PLS.Scheme.run_edge cfg128 t1_128 labels128));
  op "verify.pw2_128.memo_on" ~iters:1 ~per:1 (fun () ->
      ignore (PLS.Scheme.run_edge cfg128 t1_128 labels128));
  op "e2e.path256.prove_verify" ~iters:1 ~per:1 (fun () ->
      let labels = Option.get (t1_path.PLS.Scheme.es_prove path_cfg) in
      ignore (PLS.Scheme.run_edge path_cfg t1_path labels));
  op "e2e.cycle256.prove_verify" ~iters:1 ~per:1 (fun () ->
      let labels = Option.get (t1_cyc.PLS.Scheme.es_prove cyc_cfg) in
      ignore (PLS.Scheme.run_edge cyc_cfg t1_cyc labels));
  op "e2e.pw2_128.prove_verify" ~iters:1 ~per:1 (fun () ->
      let labels = Option.get (t1_128.PLS.Scheme.es_prove cfg128) in
      ignore (PLS.Scheme.run_edge cfg128 t1_128 labels));
  ignore !sink;
  let ops = List.rev !ops in
  let find name = let _, ns, _ = List.find (fun (n, _, _) -> n = name) ops in ns in
  let derived =
    [
      ("mem_edge_dense_speedup_x",
       find "graph.mem_edge.dense.ref" /. find "graph.mem_edge.dense.csr");
      ("mem_edge_pw2_speedup_x",
       find "graph.mem_edge.pw2.ref" /. find "graph.mem_edge.pw2.csr");
      ("prove_memo_speedup_x",
       find "prove.pw2_128.memo_off" /. find "prove.pw2_128.memo_on");
      ("verify_memo_speedup_x",
       find "verify.pw2_128.memo_off" /. find "verify.pw2_128.memo_on");
    ]
  in
  line ();
  List.iter (fun (n, v) -> Printf.printf "%-32s %12.2fx\n" n v) derived;
  let fail = ref [] in
  let check cond msg = if not cond then fail := msg :: !fail in
  check
    (List.assoc "mem_edge_dense_speedup_x" derived >= 3.0)
    "mem_edge dense speedup below the 3x target";
  (* the prover's memo speedup is structurally ~1.0x, not a perf bug
     (DESIGN.md "Why the prover barely feels the memo"): gate only
     that the memo never makes proving meaningfully SLOWER *)
  check
    (List.assoc "prove_memo_speedup_x" derived >= 0.9)
    "prove with memo on is >10% slower than memo off";
  check
    (List.assoc "verify_memo_speedup_x" derived >= 1.5)
    "verify memo speedup below the 1.5x floor";
  (* -- gate against the committed baseline --
     Wall-clock on this class of shared 1-core container swings ~2x
     between identical back-to-back runs, so a tight ns gate would be
     pure noise. The tight 25% gates sit on the load-invariant signals:
     allocated minor words per op (deterministic for a given build) and
     the in-run speedup ratios (both sides of a ratio feel the same
     machine load). ns/op keeps only a catastrophic 2.5x backstop. *)
  let baseline_file = "BENCH_PERF.json" in
  (match parse_baseline baseline_file with
  | None -> Printf.printf "\nno committed %s; gate skipped\n" baseline_file
  | Some (base, base_derived) ->
      Printf.printf
        "\ngate vs %s (+25%% words, +150%% ns backstop, ratios >= 75%%):\n"
        baseline_file;
      List.iter
        (fun (name, bns, bw) ->
          match List.find_opt (fun (n, _, _) -> n = name) ops with
          | None -> ()
          | Some (_, ns, w) ->
              let ns_ok = ns <= (bns *. 2.5) +. 100.0 in
              let w_ok = w <= (bw *. 1.25) +. 16.0 in
              Printf.printf "  %-32s %s (%.1f -> %.1f ns, %.1f -> %.1f words)\n"
                name
                (if ns_ok && w_ok then "ok" else "REGRESSED")
                bns ns bw w;
              if not ns_ok then
                check false (Printf.sprintf "%s: ns/op regressed >150%%" name);
              if not w_ok then
                check false
                  (Printf.sprintf "%s: minor words/op regressed >25%%" name))
        base;
      List.iter
        (fun (name, bv) ->
          match List.assoc_opt name derived with
          | None -> ()
          | Some v ->
              let ok = v >= bv *. 0.75 in
              Printf.printf "  %-32s %s (%.2fx -> %.2fx)\n" name
                (if ok then "ok" else "REGRESSED")
                bv v;
              if not ok then
                check false
                  (Printf.sprintf "%s: speedup ratio dropped >25%%" name))
        base_derived);
  let out = perf_json ~mode:(if quick then "quick" else "full") ops derived in
  let out_file = if update then baseline_file else "BENCH_PERF.current.json" in
  let oc = open_out out_file in
  output_string oc out;
  close_out oc;
  Printf.printf "\nwrote %s\n" out_file;
  if !fail <> [] then begin
    List.iter (fun m -> Printf.eprintf "PERF: FAIL — %s\n" m) !fail;
    exit 1
  end
  else Printf.printf "PERF: all gates passed\n\n"

(* ------------------------------------------------------------------ *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let all =
    [
      ("e1", e1); ("e2", e2); ("e3", e3); ("e5", e5); ("e6", e6); ("e7", e7);
      ("faults", faults); ("service", service); ("scale", scale);
      ("recovery", recovery); ("chaos", chaos); ("crash", e14_crash);
      ("timing", timing); ("incr", e13_incr);
    ]
  in
  (* perf is the regression *gate*, not an experiment: it is run
     explicitly (check.sh) and deliberately excluded from "all" *)
  match List.assoc_opt what (("perf", perf) :: all) with
  | Some f -> f ()
  | None ->
      if what = "all" then List.iter (fun (_, f) -> f ()) all
      else begin
        Printf.eprintf "unknown experiment %S; known: perf %s all\n" what
          (String.concat " " (List.map fst all));
        exit 1
      end

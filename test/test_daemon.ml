(* Daemon-layer tests: the wire protocol (framing, incremental
   reassembly, codec round-trips), the Timing percentile-merge edge
   cases a long-lived multi-process daemon exercises (empty sample
   sets, single-sample stages, workers that recorded nothing for a
   stage), and end-to-end tests of the server itself — a real forked
   certd-server on a tmp socket: canonical output byte-identical to a
   batch run, admission-control rejections, the live stats endpoint,
   worker crash/respawn with single-retry semantics, and SIGTERM
   drain.

   Runs as its own executable; `dune build @daemon` runs it in
   isolation. *)

module Wire = Lcp_service.Wire
module Server = Lcp_service.Server
module Engine = Lcp_service.Engine
module Manifest = Lcp_service.Manifest
module Stats = Lcp_service.Stats
module Timing = Lcp_service.Timing
module Blob = Lcp_service.Blob_io

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let test name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let contains s frag =
  let ls = String.length s and lf = String.length frag in
  let rec go i = i + lf <= ls && (String.sub s i lf = frag || go (i + 1)) in
  go 0

let rec rm_rf p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcp_test_daemon_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---------------------------------------------------------------- *)
(* framing                                                           *)

let frame_roundtrip () =
  let rfd, wfd = Unix.pipe () in
  (* total must fit the pipe buffer (64 KiB): these writes have no
     concurrent reader *)
  let payloads = [ ""; "x"; "hello\nworld"; String.make 40_000 'q' ] in
  List.iter (fun p -> Wire.write_frame wfd p) payloads;
  Unix.close wfd;
  List.iter
    (fun expected ->
      match Wire.read_frame rfd with
      | Some got -> check_str "frame round-trips" expected got
      | None -> Alcotest.fail "premature EOF")
    payloads;
  check "clean EOF reads as None" true (Wire.read_frame rfd = None);
  Unix.close rfd;
  (* a torn frame — EOF inside the payload — is an error, not an end *)
  let rfd, wfd = Unix.pipe () in
  let b = Bytes.of_string "\x00\x00\x00\x10abc" in
  ignore (Unix.write wfd b 0 (Bytes.length b));
  Unix.close wfd;
  (match Wire.read_frame rfd with
  | exception Sys_error e -> check "says mid-frame" true (contains e "mid-frame")
  | Some _ | None -> Alcotest.fail "torn frame must raise");
  Unix.close rfd;
  (* the length cap guards both directions *)
  let rfd, wfd = Unix.pipe () in
  (match Wire.write_frame wfd (String.make (Wire.max_frame + 1) 'z') with
  | exception Sys_error e -> check "cap named" true (contains e "cap")
  | () -> Alcotest.fail "over-cap write must raise");
  let b = Bytes.of_string "\xff\xff\xff\xff" in
  ignore (Unix.write wfd b 0 4);
  (match Wire.read_frame rfd with
  | exception Sys_error e -> check "cap named" true (contains e "cap")
  | _ -> Alcotest.fail "over-cap length prefix must raise");
  Unix.close rfd;
  Unix.close wfd

let conn_reassembly () =
  (* one byte at a time: frames must pop out whole, exactly once *)
  let c = Wire.conn_create () in
  let payloads = [ "alpha"; ""; "beta\ngamma" ] in
  let stream = Buffer.create 64 in
  List.iter
    (fun p ->
      let rfd, wfd = Unix.pipe () in
      Wire.write_frame wfd p;
      Unix.close wfd;
      let chunk = Bytes.create 4096 in
      let n = Unix.read rfd chunk 0 4096 in
      Buffer.add_subbytes stream chunk 0 n;
      Unix.close rfd)
    payloads;
  let bytes = Buffer.to_bytes stream in
  let got = ref [] in
  Bytes.iter
    (fun ch ->
      Wire.conn_feed c (Bytes.make 1 ch) 1;
      let rec drain () =
        match Wire.conn_next c with
        | Some p ->
            got := p :: !got;
            drain ()
        | None -> ()
      in
      drain ())
    bytes;
  check "drip-fed frames arrive in order" true (List.rev !got = payloads);
  check_int "no residue" 0 (Wire.conn_buffered c);
  (* all at once: every frame pops from a single feed *)
  let c = Wire.conn_create () in
  Wire.conn_feed c bytes (Bytes.length bytes);
  List.iter
    (fun expected ->
      match Wire.conn_next c with
      | Some got -> check_str "bulk-fed frame" expected got
      | None -> Alcotest.fail "frame missing from bulk feed")
    payloads;
  check "no phantom frame" true (Wire.conn_next c = None)

let conn_frame_limits () =
  (* a payload of exactly [max_frame] bytes is legal and must
     reassemble whole; zero-length frames on both sides must pop as
     their own (empty) payloads, not be absorbed into it *)
  let big = String.make Wire.max_frame 'x' in
  let stream =
    Bytes.of_string (Wire.frame "" ^ Wire.frame big ^ Wire.frame "")
  in
  let c = Wire.conn_create () in
  (* feed in socket-read-sized chunks so the cap-sized frame is split
     across many feeds *)
  let chunk = 65536 in
  let off = ref 0 and got = ref [] in
  while !off < Bytes.length stream do
    let n = min chunk (Bytes.length stream - !off) in
    Wire.conn_feed c (Bytes.sub stream !off n) n;
    let rec drain () =
      match Wire.conn_next c with
      | Some p ->
          got := p :: !got;
          drain ()
      | None -> ()
    in
    drain ();
    off := !off + n
  done;
  (match List.rev !got with
  | [ ""; p; "" ] ->
      check_int "cap-sized payload intact" Wire.max_frame (String.length p);
      check "cap-sized payload unmangled" true (String.equal p big)
  | fs -> Alcotest.failf "expected 3 frames, got %d" (List.length fs));
  check_int "no residue" 0 (Wire.conn_buffered c);
  (* one byte over the cap refuses at encode time... *)
  (match Wire.frame (String.make (Wire.max_frame + 1) 'z') with
  | exception Sys_error e -> check "cap named" true (contains e "cap")
  | _ -> Alcotest.fail "over-cap frame must raise");
  (* ...and a hostile length prefix poisons the connection in conn_next
     rather than provoking a giant allocation *)
  let c = Wire.conn_create () in
  Wire.conn_feed c (Bytes.of_string "\xff\x00\x00\x00rest") 8;
  match Wire.conn_next c with
  | exception Sys_error e -> check "cap named" true (contains e "cap")
  | _ -> Alcotest.fail "over-cap prefix must raise in conn_next"

(* ---------------------------------------------------------------- *)
(* codec round-trips                                                 *)

(* single-space-separated words: the codec's reason fields live on the
   head line where runs of spaces collapse, so the generator avoids
   them (real reasons are printf-built and single-spaced) *)
let words_gen =
  QCheck.Gen.(
    map (String.concat " ")
      (list_size (int_range 1 6)
         (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))))

let line_gen =
  QCheck.Gen.(
    map
      (fun (id, n) -> Printf.sprintf "id=%s gen=path n=%d property=connected k=2 seed=1" id n)
      (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 12)) (int_range 1 50)))

let request_gen =
  QCheck.Gen.(
    frequency
      [
        ( 6,
          map
            (fun (serial, canonical, deadline, line) ->
              Wire.Submit
                {
                  serial = abs serial;
                  canonical;
                  deadline_ms = Float.of_int (abs deadline);
                  line;
                })
            (quad small_signed_int bool small_signed_int line_gen) );
        ( 2,
          map
            (fun (serial, deadline, (sid, resume), line) ->
              Wire.Delta_open
                {
                  serial = abs serial;
                  deadline_ms = Float.of_int (abs deadline);
                  sid;
                  resume;
                  line;
                })
            (quad small_signed_int small_signed_int
               (pair
                  (string_size ~gen:(char_range 'a' 'z') (int_range 1 16))
                  bool)
               line_gen) );
        ( 1,
          map
            (fun v -> Wire.Hello { version = 1 + abs v })
            small_signed_int );
        ( 2,
          map
            (fun (serial, deadline, full, ops) ->
              Wire.Delta_edit
                {
                  serial = abs serial;
                  deadline_ms = Float.of_int (abs deadline);
                  full;
                  ops;
                })
            (quad small_signed_int small_signed_int bool
               (* an empty edit line is a legal no-op batch and must
                  survive the trip distinctly from "no body" *)
               (oneof [ return ""; return "add=0-1,2-3 del=4-5"; words_gen ])) );
        (1, return Wire.Stats_req);
        (1, return Wire.Ping);
        (1, return Wire.Shutdown);
      ])

let request_arb = QCheck.make ~print:Wire.encode_request request_gen

let request_roundtrip =
  qcheck "decode_request inverts encode_request" request_arb (fun req ->
      match Wire.decode_request (Wire.encode_request req) with
      | Ok req' -> req' = req
      | Error _ -> false)

let response_gen =
  QCheck.Gen.(
    frequency
      [
        ( 4,
          map
            (fun (serial, id, status) ->
              Wire.Report
                {
                  serial = abs serial;
                  id;
                  status;
                  json = Printf.sprintf "{\"id\":\"%s\"}" id;
                  canonical = Printf.sprintf "{\"id\":\"%s\",\"verdict\":\"served\"}" id;
                })
            (triple small_signed_int
               (string_size ~gen:(char_range 'a' 'z') (int_range 1 12))
               (oneofl [ "served_fresh"; "served_cached"; "failed" ])) );
        ( 2,
          map
            (fun (serial, reason) ->
              Wire.Overloaded { serial = abs serial; reason })
            (pair small_signed_int words_gen) );
        ( 2,
          map
            (fun (serial, reason) -> Wire.Err { serial = abs serial; reason })
            (pair small_signed_int words_gen) );
        ( 2,
          map
            (fun (serial, id, status) ->
              Wire.Dreport
                {
                  serial = abs serial;
                  id;
                  status;
                  json = Printf.sprintf "{\"id\":\"%s\"}" id;
                  canonical =
                    Printf.sprintf "{\"id\":\"%s\",\"verdict\":\"served\"}" id;
                  patch = "{\"mode\":\"patched\",\"edits\":1,\"reused\":7}";
                })
            (triple small_signed_int
               (string_size ~gen:(char_range 'a' 'z') (int_range 1 12))
               (oneofl [ "served_fresh"; "served_cached"; "declined"; "unsound" ])) );
        (1, map (fun s -> Wire.Stats_reply ("{\"x\":" ^ string_of_int (abs s) ^ "}")) small_signed_int);
        (1, return Wire.Pong);
        (1, map (fun v -> Wire.Hello_ok { version = 1 + abs v }) small_signed_int);
      ])

let response_arb = QCheck.make ~print:Wire.encode_response response_gen

let response_roundtrip =
  qcheck "decode_response inverts encode_response" response_arb (fun resp ->
      match Wire.decode_response (Wire.encode_response resp) with
      | Ok resp' -> resp' = resp
      | Error _ -> false)

let decoder_is_total =
  qcheck ~count:500 "decoders never raise on junk" QCheck.(string)
    (fun payload ->
      (match Wire.decode_request payload with Ok _ | Error _ -> true)
      && match Wire.decode_response payload with Ok _ | Error _ -> true)

let delta_codec_rejects_malformed () =
  let req p = match Wire.decode_request p with Ok _ -> true | Error _ -> false in
  let resp p =
    match Wire.decode_response p with Ok _ -> true | Error _ -> false
  in
  check "dopen without body" false (req "dopen 1 0.0 0 s");
  check "dopen negative deadline" false
    (req "dopen 1 -5.0 0 s\nid=x gen=path n=4 property=connected k=1 seed=1");
  (* the protocol-1 dopen shape (no sid, no resume flag) must no longer
     decode: an old client gets a descriptive error, not a silently
     un-resumable session *)
  check "v1 dopen frame rejected" false
    (req "dopen 1 0.0\nid=x gen=path n=4 property=connected k=1 seed=1");
  check "v2 dopen frame accepted" true
    (req "dopen 1 0.0 0 s7\nid=x gen=path n=4 property=connected k=1 seed=1");
  check "dopen resume flag out of range" false
    (req "dopen 1 0.0 2 s7\nid=x gen=path n=4 property=connected k=1 seed=1");
  check "dopen empty sid" false
    (req "dopen 1 0.0 0 \nid=x gen=path n=4 property=connected k=1 seed=1");
  check "hello accepted" true (req "hello 2");
  check "hello needs a version" false (req "hello");
  check "hello non-numeric version" false (req "hello two");
  check "hello with body" false (req "hello 2\nx");
  check "hello-ok accepted" true (resp "hello-ok 2");
  check "hello-ok with body" false (resp "hello-ok 2\nx");
  check "dedit full flag out of range" false (req "dedit 1 2 0.0\nadd=0-1");
  check "dedit without body" false (req "dedit 1 1 0.0");
  check "dedit non-numeric serial" false (req "dedit one 0 0.0\nadd=0-1");
  check "dedit empty ops is a legal no-op batch" true (req "dedit 1 0 0.0\n");
  check "dreport three-line body" false (resp "dreport 1 ok\nid\njson\ncanon");
  check "dreport five-line body" false (resp "dreport 1 ok\na\nb\nc\nd\ne");
  check "dreport trailing header garbage" false
    (resp "dreport 1 ok extra\na\nb\nc\nd");
  check "dreport well-formed accepted" true (resp "dreport 1 ok\na\nb\nc\nd")

(* ---------------------------------------------------------------- *)
(* Timing percentile merges (the daemon's cross-process cases)       *)

let find_line t stage =
  List.find_opt (fun l -> l.Timing.l_stage = stage) (Timing.report t)

let timing_empty_merge () =
  let parent = Timing.create () in
  (* absorbing a worker that recorded nothing changes nothing *)
  Timing.absorb parent (Timing.samples (Timing.create ()));
  check "still no lines" true (Timing.report parent = []);
  Timing.record parent Timing.Prove 2.0;
  Timing.absorb parent (Timing.samples (Timing.create ()));
  match find_line parent "prove" with
  | Some l ->
      check_int "count unchanged by empty merge" 1 l.Timing.l_count;
      check "p50 is the sample" true (l.Timing.l_p50 = 2.0)
  | None -> Alcotest.fail "prove line vanished"

let timing_single_sample () =
  let t = Timing.create () in
  Timing.record t Timing.Verify 7.5;
  match find_line t "verify" with
  | Some l ->
      check_int "count 1" 1 l.Timing.l_count;
      check "all percentiles equal the one sample" true
        (l.Timing.l_p50 = 7.5 && l.Timing.l_p90 = 7.5 && l.Timing.l_p99 = 7.5
       && l.Timing.l_max = 7.5 && l.Timing.l_total_ms = 7.5)
  | None -> Alcotest.fail "single sample produced no line"

let timing_partial_worker_merge () =
  (* worker 1 recorded prove only; worker 2 recorded verify only; the
     merged report must treat each stage as the exact union — a stage
     one worker never saw must not dilute the other's percentiles *)
  let w1 = Timing.create () and w2 = Timing.create () in
  List.iter (fun v -> Timing.record w1 Timing.Prove v)
    [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0 ];
  Timing.record w2 Timing.Verify 42.0;
  let parent = Timing.create () in
  Timing.absorb parent (Timing.samples w1);
  Timing.absorb parent (Timing.samples w2);
  (match find_line parent "prove" with
  | Some l ->
      check_int "prove count is w1's alone" 9 l.Timing.l_count;
      check "prove p50 exact" true (l.Timing.l_p50 = 5.0);
      check "prove p99 exact" true (l.Timing.l_p99 = 9.0)
  | None -> Alcotest.fail "prove line missing");
  (match find_line parent "verify" with
  | Some l ->
      check_int "verify count is w2's alone" 1 l.Timing.l_count;
      check "verify percentiles undiluted" true
        (l.Timing.l_p50 = 42.0 && l.Timing.l_p99 = 42.0)
  | None -> Alcotest.fail "verify line missing");
  check "unrecorded stages stay absent" true (find_line parent "parse" = None)

let timing_merge_equals_sequential () =
  (* absorbing shards must give byte-for-byte the percentiles of one
     sink holding every sample *)
  let values = List.init 101 (fun i -> float_of_int ((i * 37) mod 101)) in
  let whole = Timing.create () in
  List.iter (fun v -> Timing.record whole Timing.Encode v) values;
  let parent = Timing.create () in
  let shard = Timing.create () in
  List.iteri
    (fun i v ->
      Timing.record shard Timing.Encode v;
      if i mod 7 = 0 then Timing.absorb parent (Timing.flush shard))
    values;
  Timing.absorb parent (Timing.flush shard);
  match (find_line whole "encode", find_line parent "encode") with
  | Some a, Some b -> check "sharded merge = sequential" true (a = b)
  | _ -> Alcotest.fail "encode line missing"

let timing_flush_discipline () =
  (* flush hands over each sample exactly once — the invariant that
     stops a long-lived worker double-counting its history *)
  let w = Timing.create () in
  Timing.record w Timing.Store 1.0;
  Timing.add_counter w "memo_hits" 3;
  let first = Timing.flush w in
  check "flush carries the sample" true
    (List.assoc "store" first.Timing.w_stages = [ 1.0 ]);
  check "flush carries counters" true
    (List.assoc "memo_hits" first.Timing.w_ctrs = 3);
  let second = Timing.flush w in
  check "second flush is empty" true
    (List.for_all (fun (_, vs) -> vs = []) second.Timing.w_stages
    && second.Timing.w_ctrs = []);
  Timing.record w Timing.Store 9.0;
  let third = Timing.flush w in
  check "post-flush samples are fresh" true
    (List.assoc "store" third.Timing.w_stages = [ 9.0 ])

(* ---------------------------------------------------------------- *)
(* end-to-end: a real daemon on a tmp socket                         *)

let jobs_lines =
  [
    "id=e2e-ring gen=cycle n=12 property=connected k=2 seed=1";
    "id=e2e-tree gen=tree n=16 gseed=5 property=acyclic k=2 seed=2";
    "id=e2e-ladder gen=ladder n=12 property=bipartite k=2 seed=3";
    "id=e2e-star gen=star n=9 property=triangle_free k=2 seed=4";
    "id=e2e-path gen=path n=10 property=perfect_matching k=1 seed=5";
  ]

let parse_lines lines =
  List.map
    (fun l ->
      match Manifest.parse l with
      | Ok [ j ] -> j
      | _ -> Alcotest.failf "bad test job line %S" l)
    lines

(* fork a server; wait until its socket accepts *)
let start_server cfg =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (try Server.run cfg with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect fd (Unix.ADDR_UNIX cfg.Server.socket_path) with
        | () ->
            Unix.close fd;
            ()
        | exception Unix.Unix_error _ ->
            Unix.close fd;
            if Unix.gettimeofday () > deadline then begin
              Unix.kill pid Sys.sigkill;
              ignore (Unix.waitpid [] pid);
              Alcotest.fail "server did not come up"
            end;
            Unix.sleepf 0.02;
            wait ()
      in
      wait ();
      pid

(* a connection that has not yet said hello — only the handshake tests
   want one of these *)
let dial_raw path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let read_response fd =
  match Wire.read_frame fd with
  | None -> Alcotest.fail "server closed the connection"
  | Some p -> (
      match Wire.decode_response p with
      | Ok r -> r
      | Error e -> Alcotest.failf "bad response: %s" e)

let dial path =
  let fd = dial_raw path in
  Wire.write_frame fd
    (Wire.encode_request (Wire.Hello { version = Wire.protocol_version }));
  (match read_response fd with
  | Wire.Hello_ok _ -> ()
  | r -> Alcotest.failf "handshake refused: %s" (Wire.encode_response r));
  fd

let submit fd serial line =
  Wire.write_frame fd
    (Wire.encode_request
       (Wire.Submit { serial; canonical = true; deadline_ms = 0.0; line }))

let stop_server ?(signal = Sys.sigterm) pid =
  Unix.kill pid signal;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED code -> code
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
      Alcotest.fail "server killed by signal instead of draining"

let base_cfg ~socket_path ~workers =
  {
    Server.socket_path;
    workers;
    queue_cap = 16;
    client_cap = 8;
    make_engine = (fun ~worker:_ timing -> Engine.create ?timing ());
    timed = true;
    verbose = false;
    journal_dir = None;
    journal_fsync = `Every 8;
    journal_checkpoint = 256;
  }

let daemon_matches_batch () =
  with_temp_dir (fun dir ->
      let socket_path = Filename.concat dir "d.sock" in
      let pid = start_server (base_cfg ~socket_path ~workers:2) in
      let fd = dial socket_path in
      List.iteri (fun i line -> submit fd i line) jobs_lines;
      let results = Array.make (List.length jobs_lines) ("", "") in
      List.iter
        (fun _ ->
          match read_response fd with
          | Wire.Report { serial; id; canonical; _ } ->
              results.(serial) <- (id, canonical)
          | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r))
        jobs_lines;
      Unix.close fd;
      (* the client-side canonical order: stable sort by id over
         submission order *)
      let daemon_lines =
        Array.to_list results
        |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
        |> List.map snd |> String.concat "\n"
      in
      let reports, _ =
        Engine.run_jobs (Engine.create ()) (parse_lines jobs_lines)
      in
      check_str "daemon canonical output = batch canonical output"
        (Stats.canonical_lines reports)
        daemon_lines;
      check_int "clean SIGTERM drain" 0 (stop_server pid);
      check "socket unlinked after drain" true
        (not (Sys.file_exists socket_path)))

let daemon_backpressure () =
  with_temp_dir (fun dir ->
      let socket_path = Filename.concat dir "d.sock" in
      let cfg =
        { (base_cfg ~socket_path ~workers:1) with queue_cap = 1; client_cap = 1 }
      in
      let pid = start_server cfg in
      let fd = dial socket_path in
      (* a burst far over both caps: the excess must be refused with
         Overloaded, not buffered *)
      let burst = 10 in
      for i = 0 to burst - 1 do
        submit fd i "id=burst gen=tree n=40 gseed=7 property=acyclic k=3 seed=9"
      done;
      let reports = ref 0 and refused = ref 0 in
      for _ = 1 to burst do
        match read_response fd with
        | Wire.Report _ -> incr reports
        | Wire.Overloaded { reason; _ } ->
            incr refused;
            check "reason names a cap" true
              (contains reason "cap" || contains reason "draining")
        | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r)
      done;
      check "some jobs served" true (!reports >= 1);
      check "excess refused, not buffered" true (!refused >= 1);
      check_int "every submission answered" burst (!reports + !refused);
      (* the stats endpoint must agree *)
      Wire.write_frame fd (Wire.encode_request Wire.Stats_req);
      (match read_response fd with
      | Wire.Stats_reply json ->
          check "stats counts refusals" true
            (contains json "\"rejected_overload\":"
            && contains json "\"rejected_quota\":")
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      Unix.close fd;
      check_int "clean drain" 0 (stop_server pid))

let daemon_stats_endpoint () =
  with_temp_dir (fun dir ->
      let socket_path = Filename.concat dir "d.sock" in
      let pid = start_server (base_cfg ~socket_path ~workers:2) in
      let fd = dial socket_path in
      List.iteri (fun i line -> submit fd i line) jobs_lines;
      List.iter (fun _ -> ignore (read_response fd)) jobs_lines;
      Wire.write_frame fd (Wire.encode_request Wire.Stats_req);
      (match read_response fd with
      | Wire.Stats_reply json ->
          check "submitted counted" true (contains json "\"submitted\":5");
          check "completed counted" true (contains json "\"completed\":5");
          check "workers reported" true (contains json "\"configured\":2");
          check "queue cap surfaced" true (contains json "\"cap\":16");
          (* timed=true: worker samples reach the endpoint's percentiles *)
          check "stage percentiles present" true
            (contains json "\"stage\":\"prove\"" && contains json "\"p99_ms\":")
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      (* ping still answered while idle *)
      Wire.write_frame fd (Wire.encode_request Wire.Ping);
      (match read_response fd with
      | Wire.Pong -> ()
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      Unix.close fd;
      check_int "clean drain" 0 (stop_server pid))

(* substring-scan an int field out of the stats JSON *)
let json_int json field =
  let tag = "\"" ^ field ^ "\":" in
  let rec find i =
    if i + String.length tag > String.length json then
      Alcotest.failf "field %s missing from %s" field json
    else if String.sub json i (String.length tag) = tag then begin
      let j = ref (i + String.length tag) in
      let start = !j in
      while
        !j < String.length json
        && match json.[!j] with '0' .. '9' | '-' -> true | _ -> false
      do
        incr j
      done;
      int_of_string (String.sub json start (!j - start))
    end
    else find (i + 1)
  in
  find 0

let daemon_crash_respawn () =
  with_temp_dir (fun dir ->
      let socket_path = Filename.concat dir "d.sock" in
      let cache = Filename.concat dir "cache" in
      (* pre-create the shared disk tier so the fault plan's op counter
         starts at the record writes, not the mkdir *)
      Sys.mkdir cache 0o755;
      let plan =
        match Blob.parse_plan "crash@3" with
        | Ok p -> p
        | Error e -> Alcotest.fail e
      in
      let cfg =
        {
          (base_cfg ~socket_path ~workers:2) with
          make_engine =
            (fun ~worker:_ timing ->
              (* every worker incarnation: two mutating ops succeed (one
                 record = tmp write + rename), then the process dies on
                 the next store write *)
              let io = fst (Blob.inject ~plan Blob.real) in
              Engine.create ~cache_dir:cache ~io ?timing ());
        }
      in
      let pid = start_server cfg in
      let fd = dial socket_path in
      (* distinct instances: every job is a cache miss, so each wants a
         store write and the workers keep crashing and respawning *)
      let lines =
        List.init 8 (fun i ->
            Printf.sprintf
              "id=c%d gen=path n=%d property=connected k=2 seed=1" i (6 + i))
      in
      List.iteri (fun i line -> submit fd i line) lines;
      let served = ref 0 and failed = ref 0 in
      List.iter
        (fun _ ->
          match read_response fd with
          | Wire.Report { status; _ } ->
              if
                List.mem status
                  [ "served_fresh"; "served_cached"; "served_degraded" ]
              then incr served
              else incr failed
          | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r))
        lines;
      check_int "every job reached a terminal reply" 8 (!served + !failed);
      check "most jobs served despite crashes" true (!served >= 6);
      Wire.write_frame fd (Wire.encode_request Wire.Stats_req);
      (match read_response fd with
      | Wire.Stats_reply json ->
          check "workers died and were respawned" true
            (json_int json "restarts" >= 2);
          check "crashed jobs were requeued" true
            (json_int json "requeued" >= 1);
          check_int "no slot permanently stopped" 0 (json_int json "stopped");
          check_int "full pool alive after every crash" 2
            (json_int json "live")
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      Unix.close fd;
      check_int "clean drain after crashes" 0 (stop_server pid))

(* the server's worker pids are not on the wire; on Linux /proc names a
   process's children, which is exactly the external-kill (OOM, admin)
   scenario the supervisor must survive *)
let children_of pid =
  let path = Printf.sprintf "/proc/%d/task/%d/children" pid pid in
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      Some
        (String.split_on_char ' ' line
        |> List.filter_map int_of_string_opt)

let daemon_idle_worker_death () =
  with_temp_dir (fun dir ->
      let socket_path = Filename.concat dir "d.sock" in
      let pid = start_server (base_cfg ~socket_path ~workers:1) in
      let fd = dial socket_path in
      (* prove the worker serves, then kill it while it sits idle *)
      submit fd 0 (List.hd jobs_lines);
      (match read_response fd with
      | Wire.Report _ -> ()
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      (match children_of pid with
      | None | Some [] -> () (* no /proc children file: cannot stage it *)
      | Some kids ->
          List.iter
            (fun k ->
              try Unix.kill k Sys.sigkill with Unix.Unix_error _ -> ())
            kids;
          Unix.sleepf 0.05;
          (* a submission against the dead slot must not wedge dispatch:
             the daemon has to notice the EOF, respawn, and answer *)
          submit fd 1 (List.nth jobs_lines 1);
          (match Unix.select [ fd ] [] [] 30.0 with
          | [], _, _ ->
              Alcotest.fail "daemon wedged after an idle worker death"
          | _ -> ());
          (match read_response fd with
          | Wire.Report { serial; _ } ->
              check_int "answered after respawn" 1 serial
          | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
          Wire.write_frame fd (Wire.encode_request Wire.Stats_req);
          (match read_response fd with
          | Wire.Stats_reply json ->
              check "the death was counted as a restart" true
                (json_int json "restarts" >= 1)
          | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r)));
      Unix.close fd;
      check_int "clean drain" 0 (stop_server pid))

let daemon_sigterm_drains_inflight () =
  with_temp_dir (fun dir ->
      let socket_path = Filename.concat dir "d.sock" in
      let pid = start_server (base_cfg ~socket_path ~workers:1) in
      let fd = dial socket_path in
      (* queue several slow-ish jobs, then fire SIGTERM immediately:
         every accepted job must still be answered before the close *)
      let lines =
        List.init 4 (fun i ->
            Printf.sprintf
              "id=drain%d gen=tree n=%d gseed=%d property=acyclic k=3 seed=2" i
              (30 + i) i)
      in
      List.iteri (fun i line -> submit fd i line) lines;
      Unix.kill pid Sys.sigterm;
      let answered = ref 0 in
      List.iter
        (fun _ ->
          match read_response fd with
          | Wire.Report _ -> incr answered
          | Wire.Overloaded _ ->
              (* a job that raced the drain gate: refused, not dropped *)
              incr answered
          | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r))
        lines;
      check_int "every accepted job answered during drain" 4 !answered;
      check "connection closed after drain" true (Wire.read_frame fd = None);
      Unix.close fd;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED c -> Alcotest.failf "drain exited %d" c
      | _ -> Alcotest.fail "server killed by signal");
      check "socket unlinked" true (not (Sys.file_exists socket_path)))

let daemon_rejects_garbage () =
  with_temp_dir (fun dir ->
      let socket_path = Filename.concat dir "d.sock" in
      let pid = start_server (base_cfg ~socket_path ~workers:1) in
      let fd = dial socket_path in
      Wire.write_frame fd "frobnicate 7";
      (match read_response fd with
      | Wire.Err { reason; _ } ->
          check "names the bad verb" true (contains reason "frobnicate")
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      (* a bad job line is an Err tied to its serial, and the
         connection keeps working afterwards *)
      Wire.write_frame fd
        (Wire.encode_request
           (Wire.Submit
              { serial = 3; canonical = false; deadline_ms = 0.0; line = "nonsense" }));
      (match read_response fd with
      | Wire.Err { serial; _ } -> check_int "serial echoed" 3 serial
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      submit fd 4 (List.hd jobs_lines);
      (match read_response fd with
      | Wire.Report { serial; _ } -> check_int "connection survives" 4 serial
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      Unix.close fd;
      check_int "clean drain" 0 (stop_server pid))

let daemon_delta_session () =
  with_temp_dir (fun dir ->
      let socket_path = Filename.concat dir "d.sock" in
      let pid = start_server (base_cfg ~socket_path ~workers:2) in
      let fd = dial socket_path in
      (* an edit before any open is a protocol error, not a crash *)
      Wire.write_frame fd
        (Wire.encode_request
           (Wire.Delta_edit
              { serial = 0; deadline_ms = 0.0; full = false; ops = "add=0-1" }));
      (match read_response fd with
      | Wire.Err { serial; reason } ->
          check_int "serial echoed" 0 serial;
          check "asks for a dopen" true (contains reason "dopen")
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      (* open a session, then stream edits: replies must be Dreports in
         submission order, ids suffixed per edit, patch info attached *)
      Wire.write_frame fd
        (Wire.encode_request
           (Wire.Delta_open
              {
                serial = 1;
                deadline_ms = 0.0;
                sid = "t-dyn";
                resume = false;
                line = "id=dyn gen=path n=24 property=connected k=2 seed=7";
              }));
      (match read_response fd with
      | Wire.Dreport { serial; id; status; patch; _ } ->
          check_int "open serial" 1 serial;
          check_str "open id" "dyn" id;
          check_str "open served" "served_fresh" status;
          check "open patch mode" true (contains patch "\"mode\":\"open\"")
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      let edits = [ "del=3-4"; "add=3-4"; "add=0-5 del=5-6"; "" ] in
      List.iteri
        (fun i ops ->
          Wire.write_frame fd
            (Wire.encode_request
               (Wire.Delta_edit
                  { serial = 2 + i; deadline_ms = 0.0; full = false; ops })))
        edits;
      List.iteri
        (fun i _ ->
          match read_response fd with
          | Wire.Dreport { serial; id; status; patch; canonical; _ } ->
              check_int "edit serial in stream order" (2 + i) serial;
              check_str "edit id suffixed"
                (Printf.sprintf "dyn#e%04d" (i + 1))
                id;
              check "edit reached a verdict" true
                (status <> "failed" && status <> "input_error");
              check "patch info is json" true (contains patch "\"mode\":");
              check "canonical line carries the verdict" true
                (contains canonical "\"verdict\":")
          | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r))
        edits;
      (* a malformed edit line is an input error pinned to its serial,
         and the session survives it *)
      Wire.write_frame fd
        (Wire.encode_request
           (Wire.Delta_edit
              { serial = 6; deadline_ms = 0.0; full = false; ops = "frob=1-2" }));
      (match read_response fd with
      | Wire.Dreport { serial; status; _ } ->
          check_int "bad edit serial" 6 serial;
          check_str "bad edit is an input error" "input_error" status
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      Wire.write_frame fd
        (Wire.encode_request
           (Wire.Delta_edit
              { serial = 7; deadline_ms = 0.0; full = true; ops = "add=3-4" }));
      (match read_response fd with
      | Wire.Dreport { serial; patch; _ } ->
          check_int "session survives a bad edit" 7 serial;
          check "forced full recompute labelled" true
            (contains patch "\"mode\":\"full\""
            || contains patch "\"mode\":\"cached\"")
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      (* memo hit/miss counters ride the live stats endpoint *)
      Wire.write_frame fd (Wire.encode_request Wire.Stats_req);
      (match read_response fd with
      | Wire.Stats_reply json ->
          check "counters object present" true (contains json "\"counters\":{");
          check "memo misses surfaced" true (json_int json "memo_miss" >= 1);
          check "memo hits surfaced" true (json_int json "memo_hit" >= 0)
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      Unix.close fd;
      check_int "clean drain" 0 (stop_server pid))

(* the mandatory handshake: a frame before hello — garbage, an honest
   v1 frame, anything — gets one descriptive error naming the expected
   exchange, then the connection is closed; a wrong version gets a
   mismatch error naming both versions *)
let daemon_requires_hello () =
  with_temp_dir (fun dir ->
      let socket_path = Filename.concat dir "d.sock" in
      let pid = start_server (base_cfg ~socket_path ~workers:1) in
      (* an old (protocol-1) client submitting straight away *)
      let fd = dial_raw socket_path in
      submit fd 0 (List.hd jobs_lines);
      (match read_response fd with
      | Wire.Err { reason; _ } ->
          check "error names the handshake" true (contains reason "hello");
          check "error names the server version" true
            (contains reason (string_of_int Wire.protocol_version))
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      check "connection closed after the error" true (Wire.read_frame fd = None);
      Unix.close fd;
      (* a future client speaking a version we do not *)
      let fd = dial_raw socket_path in
      Wire.write_frame fd
        (Wire.encode_request
           (Wire.Hello { version = Wire.protocol_version + 1 }));
      (match read_response fd with
      | Wire.Err { reason; _ } ->
          check "mismatch error names both versions" true
            (contains reason "mismatch"
            && contains reason (string_of_int (Wire.protocol_version + 1)))
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      check "mismatched client hung up on" true (Wire.read_frame fd = None);
      Unix.close fd;
      (* an undecodable first frame, ditto: the decode error is served,
         then the connection is cut instead of waiting for more junk *)
      let fd = dial_raw socket_path in
      Wire.write_frame fd "frobnicate 7";
      (match read_response fd with
      | Wire.Err { reason; _ } ->
          check "garbage pre-hello named" true (contains reason "frobnicate")
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      check "garbage client hung up on" true (Wire.read_frame fd = None);
      Unix.close fd;
      (* and none of it hurt a well-behaved client *)
      let fd = dial socket_path in
      submit fd 9 (List.hd jobs_lines);
      (match read_response fd with
      | Wire.Report { serial; _ } -> check_int "server still serves" 9 serial
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      Unix.close fd;
      check_int "clean drain" 0 (stop_server pid))

(* a second server on a live socket must refuse to start (the pidfile
   lock), and a server started over a SIGKILLed predecessor's leftovers
   must take over the stale socket *)
let daemon_pidfile_lock () =
  with_temp_dir (fun dir ->
      let socket_path = Filename.concat dir "d.sock" in
      let pid = start_server (base_cfg ~socket_path ~workers:1) in
      (* the contender must lose while the first server holds the lock *)
      flush stdout;
      flush stderr;
      (match Unix.fork () with
      | 0 ->
          Unix.close Unix.stderr;
          (try Server.run (base_cfg ~socket_path ~workers:1)
           with Sys_error _ -> Unix._exit 2);
          Unix._exit 0
      | contender -> (
          match Unix.waitpid [] contender with
          | _, Unix.WEXITED 2 -> ()
          | _, s ->
              Alcotest.failf "contender did not lose the lock race (%s)"
                (match s with
                | Unix.WEXITED n -> Printf.sprintf "exit %d" n
                | _ -> "signal")));
      (* the incumbent is unharmed by the contender's attempt *)
      let fd = dial socket_path in
      submit fd 0 (List.hd jobs_lines);
      (match read_response fd with
      | Wire.Report _ -> ()
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      Unix.close fd;
      (* SIGKILL the incumbent: socket + pidfile left behind, lock
         released by the kernel — a new server must take over *)
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      check "socket left behind by SIGKILL" true (Sys.file_exists socket_path);
      let pid = start_server (base_cfg ~socket_path ~workers:1) in
      let fd = dial socket_path in
      submit fd 1 (List.hd jobs_lines);
      (match read_response fd with
      | Wire.Report _ -> ()
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      Unix.close fd;
      check_int "takeover server drains cleanly" 0 (stop_server pid))

(* the tentpole end-to-end: open a journaled session, apply edits,
   SIGKILL the daemon mid-life, restart it on the same socket+journal,
   resume — the journaled replies dedup byte-for-byte and the stream
   continues where it left off *)
let daemon_journal_resume () =
  with_temp_dir (fun dir ->
      let socket_path = Filename.concat dir "d.sock" in
      let cfg =
        {
          (base_cfg ~socket_path ~workers:1) with
          journal_dir = Some (Filename.concat dir "journal");
          journal_fsync = `Always;
        }
      in
      let pid = start_server cfg in
      let fd = dial socket_path in
      let dopen ~resume serial =
        Wire.write_frame fd
          (Wire.encode_request
             (Wire.Delta_open
                {
                  serial;
                  deadline_ms = 0.0;
                  sid = "t-resume";
                  resume;
                  line =
                    (if resume then ""
                     else "id=dyn gen=path n=24 property=connected k=2 seed=7");
                }))
      in
      let dedit serial ops =
        Wire.write_frame fd
          (Wire.encode_request
             (Wire.Delta_edit { serial; deadline_ms = 0.0; full = false; ops }))
      in
      let dreport what =
        match read_response fd with
        | Wire.Dreport { serial; canonical; _ } -> (serial, canonical)
        | r ->
            Alcotest.failf "unexpected reply to %s: %s" what
              (Wire.encode_response r)
      in
      dopen ~resume:false 0;
      let _, open_canonical = dreport "open" in
      let edits = [ "del=3-4"; "add=3-4"; "add=0-5 del=5-6" ] in
      let firsts =
        List.mapi
          (fun i ops ->
            dedit (i + 1) ops;
            dreport "edit")
          edits
      in
      (* die without warning; socket, pidfile, journal all left behind *)
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      Unix.close fd;
      let pid = start_server cfg in
      let fd = dial socket_path in
      dopen ~resume:true 0;
      let _, resumed_open = dreport "resumed open" in
      check_str "resumed open reply is the journaled one byte-for-byte"
        open_canonical resumed_open;
      (* a client that never saw its last reply resends it: the journal
         answers, byte-identical, without recomputing *)
      dedit 3 "add=0-5 del=5-6";
      let s, dedup_canonical = dreport "deduplicated resend" in
      check_int "resent serial echoed" 3 s;
      check_str "journal-dedup reply byte-identical"
        (snd (List.nth firsts 2))
        dedup_canonical;
      (* ... and the stream continues against the rebuilt graph *)
      dedit 4 "add=7-9";
      let s, _ = dreport "post-resume edit" in
      check_int "stream continues past the crash" 4 s;
      (* a serial further ahead than the journal is a lost edit: the
         daemon must refuse it descriptively, not diverge silently *)
      dedit 9 "add=0-1";
      (match read_response fd with
      | Wire.Err { serial; reason } ->
          check_int "gap serial echoed" 9 serial;
          check "gap named" true (contains reason "serial gap")
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      (* resumption is single-writer: a second connection is refused
         while this one holds the session *)
      let fd2 = dial socket_path in
      Wire.write_frame fd2
        (Wire.encode_request
           (Wire.Delta_open
              {
                serial = 0;
                deadline_ms = 0.0;
                sid = "t-resume";
                resume = true;
                line = "";
              }));
      (match read_response fd2 with
      | Wire.Err { reason; _ } -> check "busy named" true (contains reason "busy")
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      Unix.close fd2;
      (* durability counters ride the stats endpoint *)
      Wire.write_frame fd (Wire.encode_request Wire.Stats_req);
      (match read_response fd with
      | Wire.Stats_reply json ->
          check "resumed counted" true (json_int json "resumed" >= 1);
          check "rebuilt steps counted" true (json_int json "rebuilt_steps" >= 3);
          check "no resume mismatches" true (json_int json "resume_mismatch" = 0);
          check "dedup served counted" true (json_int json "dedup_served" >= 1)
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      Unix.close fd;
      check_int "clean drain" 0 (stop_server pid);
      (* an unknown session stays unknown after everything *)
      let pid = start_server cfg in
      let fd = dial socket_path in
      Wire.write_frame fd
        (Wire.encode_request
           (Wire.Delta_open
              {
                serial = 0;
                deadline_ms = 0.0;
                sid = "never-opened";
                resume = true;
                line = "";
              }));
      (match read_response fd with
      | Wire.Err { reason; _ } ->
          check "unknown sid named" true (contains reason "never-opened")
      | r -> Alcotest.failf "unexpected reply %s" (Wire.encode_response r));
      Unix.close fd;
      check_int "clean drain" 0 (stop_server pid))

let suite =
  ( "daemon",
    [
      test "frame round-trip, torn frames, length cap" frame_roundtrip;
      test "incremental reassembly" conn_reassembly;
      test "zero-length and cap-sized frames" conn_frame_limits;
      request_roundtrip;
      response_roundtrip;
      decoder_is_total;
      test "delta codec rejects malformed payloads" delta_codec_rejects_malformed;
      test "timing: empty-sample merges" timing_empty_merge;
      test "timing: single-sample stage" timing_single_sample;
      test "timing: partial-worker merge" timing_partial_worker_merge;
      test "timing: sharded merge = sequential" timing_merge_equals_sequential;
      test "timing: flush ships each sample once" timing_flush_discipline;
      test "daemon output = batch output" daemon_matches_batch;
      test "admission control refuses the excess" daemon_backpressure;
      test "live stats endpoint" daemon_stats_endpoint;
      test "worker crash, respawn, single retry" daemon_crash_respawn;
      test "idle worker killed externally, daemon recovers"
        daemon_idle_worker_death;
      test "SIGTERM drains in-flight jobs" daemon_sigterm_drains_inflight;
      test "garbage requests answered, connection survives" daemon_rejects_garbage;
      test "delta session: open, edit stream, memo counters" daemon_delta_session;
      test "hello handshake enforced, old frames rejected" daemon_requires_hello;
      test "pidfile lock: contender loses, stale socket taken over"
        daemon_pidfile_lock;
      test "journal: SIGKILL, restart, resume, dedup byte-identical"
        daemon_journal_resume;
    ] )

let () = Alcotest.run "lcp-daemon" [ suite ]

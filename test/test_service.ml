(* Tests for the certification service layer (lib/service): graph I/O
   round-trips and strict error reporting, manifest parsing, the FNV-1a
   hash, certificate bundles, the content-addressed LRU store (memory
   and disk tiers), and the cold/warm behavior of the batch engine.

   Runs as its own executable so `dune build @service` exercises just
   this suite; it is also part of the default runtest alias. *)

module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module Bitenc = Lcp_util.Bitenc
module Hash64 = Lcp_util.Hash64
module Io = Lcp_service.Graph_io
module Manifest = Lcp_service.Manifest
module Bundle = Lcp_service.Bundle
module Store = Lcp_service.Cert_store
module Engine = Lcp_service.Engine
module Stats = Lcp_service.Stats
module EM = Lcp_pls.Scheme.Edge_map

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let test name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let contains s frag =
  let ls = String.length s and lf = String.length frag in
  let rec go i = i + lf <= ls && (String.sub s i lf = frag || go (i + 1)) in
  go 0

(* A random simple graph that, unlike the bounded-pathwidth generator,
   routinely has isolated vertices and may be the empty graph: the
   round-trip properties must hold for those too. *)
let arb_any_graph =
  let open QCheck in
  let gen st =
    let n = Random.State.int st 26 in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Random.State.int st 100 < 15 then edges := (u, v) :: !edges
      done
    done;
    G.of_edges ~n !edges
  in
  make ~print:G.to_string gen

let roundtrips fmt g =
  match Io.parse fmt (Io.print fmt g) with
  | Ok h -> G.equal g h
  | Error _ -> false

(* ---------------------------------------------------------------- *)
(* graph I/O                                                         *)

let prop_roundtrip fmt =
  qcheck ~count:200
    (Printf.sprintf "%s: parse (print g) = g" (Io.format_name fmt))
    arb_any_graph (roundtrips fmt)

let io_edge_cases () =
  List.iter
    (fun fmt ->
      let name g = Printf.sprintf "%s/%s" (Io.format_name fmt) g in
      check (name "empty graph") true (roundtrips fmt (G.empty ~n:0));
      check (name "single vertex") true (roundtrips fmt (G.empty ~n:1));
      check (name "isolated vertices") true (roundtrips fmt (G.empty ~n:7));
      check (name "edge + isolated") true
        (roundtrips fmt (G.of_edges ~n:4 [ (1, 3) ]));
      check (name "K4") true (roundtrips fmt (Gen.complete 4)))
    [ Io.Dimacs; Io.Graph6; Io.Adjacency ]

let graph6_specifics () =
  (* the 4-byte size form kicks in above n = 62 *)
  check "graph6/n=100 long size form" true (roundtrips Io.Graph6 (Gen.path 100));
  (match Io.parse Io.Graph6 (">>graph6<<" ^ Io.print Io.Graph6 (Gen.cycle 5)) with
  | Ok h -> check "graph6/optional header" true (G.equal h (Gen.cycle 5))
  | Error e -> Alcotest.failf "header rejected: %s" e);
  check "graph6/trailing newline" true
    (match Io.parse Io.Graph6 (Io.print Io.Graph6 (Gen.path 3) ^ "\n") with
    | Ok h -> G.equal h (Gen.path 3)
    | Error _ -> false)

let expect_error fmt input msg =
  match Io.parse fmt input with
  | Ok g ->
      Alcotest.failf "%s: expected %S, parsed %s" (Io.format_name fmt) msg
        (G.to_string g)
  | Error e -> check_str (Io.format_name fmt) msg e

let dimacs_errors () =
  expect_error Io.Dimacs "c nothing else\n"
    "dimacs: missing 'p edge <n> <m>' header line";
  expect_error Io.Dimacs "e 1 2\np edge 2 1\n"
    "dimacs, line 1: 'e' line before the 'p edge <n> <m>' header";
  expect_error Io.Dimacs "p edge 3 2\ne 1 2\n"
    "dimacs: header declares 2 edges but the file lists 1";
  expect_error Io.Dimacs "p edge 3 1\ne 2 2\n"
    "dimacs, line 2: self-loop 'e 2 2'";
  expect_error Io.Dimacs "p edge 3 2\ne 1 2\ne 2 1\n"
    "dimacs, line 3: duplicate edge 'e 2 1'";
  expect_error Io.Dimacs "p edge 3 1\ne 1 4\n"
    "dimacs, line 2: endpoint out of range [1,3] in 'e 1 4'";
  expect_error Io.Dimacs "p edge 2 1\np edge 2 1\ne 1 2\n"
    "dimacs, line 2: duplicate 'p' header";
  expect_error Io.Dimacs "p edge two 1\n"
    "dimacs, line 1: expected an integer, got \"two\"";
  expect_error Io.Dimacs "q edge 2 1\n"
    "dimacs, line 1: unknown line type \"q\" (expected c, p or e)"

let graph6_errors () =
  expect_error Io.Graph6 "" "graph6: empty input";
  expect_error Io.Graph6 "*" "graph6, byte 1: invalid character '*' (code 42)";
  (* P5 encodes as 'D' + 2 payload bytes; chop one off *)
  let p5 = String.trim (Io.print Io.Graph6 (Gen.path 5)) in
  expect_error Io.Graph6
    (String.sub p5 0 (String.length p5 - 1))
    "graph6: n = 5 needs 2 encoding bytes after the size field, got 1";
  (* n = 2 uses 1 payload bit; '@' = 000001 sets a padding bit *)
  expect_error Io.Graph6 "A@" "graph6, byte 2: nonzero padding bit";
  expect_error Io.Graph6 "~~~~~"
    "graph6: n > 258047 (the 8-byte size form) is unsupported"

let adjacency_errors () =
  expect_error Io.Adjacency "0: 1\n"
    "adjacency, line 1: expected the header 'lcpadj <n>'";
  expect_error Io.Adjacency "lcpadj 3\n1: 0\n"
    "adjacency, line 2: neighbor 0 of 1 is not a forward neighbor (need v > u)";
  expect_error Io.Adjacency "lcpadj 3\n0: 1\n0: 2\n"
    "adjacency, line 3: duplicate adjacency row for 0";
  expect_error Io.Adjacency "lcpadj 4\n0: 2 1\n"
    "adjacency, line 2: neighbors of 0 must be strictly increasing (1 after 2)";
  expect_error Io.Adjacency "lcpadj 3\n0: 5\n"
    "adjacency, line 2: vertex 5 out of [0,3)";
  expect_error Io.Adjacency "lcpadj 3\n0 1\n"
    "adjacency, line 2: expected 'u: v1 v2 ...' (missing ':')"

let format_inference () =
  (match Io.format_of_filename "nets/big.G6" with
  | Ok f -> check_str "case-insensitive .g6" "graph6" (Io.format_name f)
  | Error e -> Alcotest.fail e);
  match Io.format_of_filename "graph.xyz" with
  | Ok _ -> Alcotest.fail "unknown extension must not resolve"
  | Error e ->
      check "mentions inference failure" true
        (String.length e > 0
        && contains e "cannot infer graph format"
        && contains e "supported:")

(* ---------------------------------------------------------------- *)
(* manifests                                                         *)

let manifest_roundtrip () =
  let jobs =
    [
      {
        Manifest.job_id = "j0";
        source = Manifest.File "nets/ring.g6";
        property = "connected";
        k = 2;
        seed = 7;
      };
      {
        Manifest.job_id = "j1";
        source = Manifest.Generated { family = "tree"; n = 18; gen_seed = 3 };
        property = "acyclic";
        k = 3;
        seed = 1;
      };
    ]
  in
  match Manifest.parse (Manifest.print jobs) with
  | Ok jobs' -> check "manifest roundtrip" true (jobs = jobs')
  | Error e -> Alcotest.fail e

let expect_manifest_error input msg =
  match Manifest.parse input with
  | Ok _ -> Alcotest.failf "manifest: expected error %S" msg
  | Error e -> check_str "manifest error" msg e

let manifest_errors () =
  expect_manifest_error "gen=path n=5 property=connected\n"
    "manifest, line 1: missing k= (the promised pathwidth bound)";
  expect_manifest_error "# c\n\nfile=a.g6 gen=path n=4 property=connected k=1\n"
    "manifest, line 3: both file= and gen= given; pick one";
  expect_manifest_error "gen=path n=4 property=connected k=0\n"
    "manifest, line 1: k= must be >= 1";
  expect_manifest_error "gen=path n=4 k=1\n"
    "manifest, line 1: missing property= (see Registry.names ())";
  expect_manifest_error "gen=path n=4 property=connected k=1 k=2\n"
    "manifest, line 1: duplicate key \"k\"";
  expect_manifest_error "gen=path n=4 property=connected k=1 bogus\n"
    "manifest, line 1: token \"bogus\" is not of the form key=value";
  expect_manifest_error "gen=path n=four property=connected k=1\n"
    "manifest, line 1: n=\"four\" is not an integer"

(* ---------------------------------------------------------------- *)
(* FNV-1a                                                            *)

let hash64_vectors () =
  (* published 64-bit FNV-1a test vectors *)
  List.iter
    (fun (s, hex) -> check_str s hex (Hash64.to_hex (Hash64.of_string s)))
    [
      ("", "cbf29ce484222325");
      ("a", "af63dc4c8601ec8c");
      ("foobar", "85944171f73967e8");
    ];
  check "order sensitivity" true
    (not (Hash64.equal (Hash64.of_string "ab") (Hash64.of_string "ba")))

(* ---------------------------------------------------------------- *)
(* bundles                                                           *)

let encode_label w l = Bitenc.varint w l
let decode_label r = Bitenc.read_varint r

let int_labels g f =
  G.fold_edges (fun e acc -> EM.add acc e (f e)) g EM.empty

let bundle_roundtrip () =
  let g = Gen.caterpillar ~spine:4 ~legs:2 in
  let labels = int_labels g (fun (u, v) -> (17 * u) + v) in
  match Bundle.encode ~encode_label g labels with
  | Error e -> Alcotest.fail e
  | Ok b -> (
      match Bundle.decode ~decode_label g b with
      | Error e -> Alcotest.fail e
      | Ok labels' ->
          G.iter_edges
            (fun e ->
              check_int "label survives" (Option.get (EM.find labels e))
                (Option.get (EM.find labels' e)))
            g;
          check "bundle equal to itself" true (Bundle.equal b b))

let bundle_rejects () =
  let g = Gen.path 5 in
  let labels = int_labels g (fun (u, _) -> u) in
  let b =
    match Bundle.encode ~encode_label g labels with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  (* decoding against a different graph must fail on the header *)
  (match Bundle.decode ~decode_label (Gen.path 6) b with
  | Ok _ -> Alcotest.fail "wrong graph accepted"
  | Error e ->
      check "header mismatch reported" true
        (contains e "header says"));
  (* a missing edge label is an Error, not an exception *)
  match Bundle.encode ~encode_label g (EM.remove labels (0, 1)) with
  | Ok _ -> Alcotest.fail "missing label accepted"
  | Error e -> check_str "missing edge" "bundle: labeling is missing edge 0-1" e

(* ---------------------------------------------------------------- *)
(* certificate store                                                 *)

let dummy_entry key seed =
  let w = Bitenc.writer () in
  Bitenc.varint w seed;
  {
    Store.e_key = key;
    e_bundle = { Bundle.bytes = Bitenc.to_bytes w; bits = Bitenc.length_bits w };
    e_label_bits = seed;
  }

let store_keys () =
  let g = Gen.cycle 6 in
  let key = Store.key ~property:"connected" ~k:2 g in
  (* the key is a pure function of (graph, property, k) ... *)
  check "key deterministic" true
    (Hash64.equal key.Store.hash
       (Store.key ~property:"connected" ~k:2 (Gen.cycle 6)).Store.hash);
  (* ... and sensitive to each component *)
  List.iter
    (fun other ->
      check "key separates instances" false
        (Hash64.equal key.Store.hash other.Store.hash))
    [
      Store.key ~property:"connected" ~k:3 g;
      Store.key ~property:"acyclic" ~k:2 g;
      Store.key ~property:"connected" ~k:2 (Gen.cycle 7);
      Store.key ~property:"connected" ~k:2 (Gen.path 6);
    ]

let store_lru () =
  let t = Store.create ~cap:2 () in
  let key i = Store.key ~property:"connected" ~k:1 (Gen.path (4 + i)) in
  Store.add t (dummy_entry (key 0) 0);
  Store.add t (dummy_entry (key 1) 1);
  check "hit k0" true (Store.find t (key 0) <> None);
  (* k0 is now most recent, so inserting k2 evicts k1 *)
  Store.add t (dummy_entry (key 2) 2);
  check_int "size capped" 2 (Store.size t);
  check "k1 evicted" true (Store.find t (key 1) = None);
  check "k0 kept" true (Store.find t (key 0) <> None);
  check "k2 kept" true (Store.find t (key 2) <> None);
  let s = Store.stats t in
  check_int "insertions" 3 s.Store.insertions;
  check_int "evictions" 1 s.Store.evictions;
  check_int "hits" 3 s.Store.hits;
  check_int "misses" 1 s.Store.misses;
  Store.remove t (key 0);
  check_int "drop counted" 1 (Store.stats t).Store.drops;
  check "removed is a miss" true (Store.find t (key 0) = None)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcp_test_store_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  (* recursive: the store quarantines corrupt records into a
     quarantine/ subdirectory *)
  let rec rm_rf p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
        Sys.rmdir p
      end
      else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let store_disk () =
  with_temp_dir (fun dir ->
      let key = Store.key ~property:"bipartite" ~k:2 (Gen.ladder 4) in
      let entry = dummy_entry key 99 in
      let t1 = Store.create ~cap:4 ~dir () in
      Store.add t1 entry;
      (* a fresh store over the same directory must recover the bundle *)
      let t2 = Store.create ~cap:4 ~dir () in
      (match Store.find t2 key with
      | None -> Alcotest.fail "disk entry not recovered"
      | Some e ->
          check "bundle survives persistence" true
            (Bundle.equal e.Store.e_bundle entry.Store.e_bundle);
          check_int "label bits survive" 99 e.Store.e_label_bits);
      check_int "disk load counted" 1 (Store.stats t2).Store.disk_loads;
      (* corrupt file: flip the magic; the store must treat it as a miss *)
      let t3 = Store.create ~cap:4 ~dir () in
      let path =
        Filename.concat dir (Hash64.to_hex key.Store.hash ^ ".cert")
      in
      let oc = open_out path in
      output_string oc "NOTACERT";
      close_out oc;
      check "corrupt file is a miss" true (Store.find t3 key = None))

(* ---------------------------------------------------------------- *)
(* engine: cold pass proves, warm pass serves from cache             *)

let engine_cold_warm () =
  let jobs =
    List.init 3 (fun i ->
        {
          Manifest.job_id = Printf.sprintf "t%d" i;
          source =
            Manifest.Generated { family = "tree"; n = 10 + i; gen_seed = i };
          property = "acyclic";
          k = 3;
          seed = 5;
        })
  in
  let engine = Engine.create ~cache_cap:16 () in
  let _, cold = Engine.run_jobs engine jobs in
  check_int "cold: all served" 3 cold.Stats.s_served;
  check_int "cold: all fresh" 3 cold.Stats.s_fresh;
  check_int "cold: no unsound" 0 cold.Stats.s_unsound;
  let reports, warm = Engine.run_jobs engine jobs in
  check_int "warm: all cached" 3 warm.Stats.s_cached;
  check_int "warm: no re-verification rejects" 0 warm.Stats.s_cache_rejects;
  check "warm: 100% hit rate" true (warm.Stats.s_hit_rate = 1.0);
  List.iter
    (fun r ->
      check "warm report is a cache hit" true r.Stats.r_cache_hit;
      check "warm report served" true (r.Stats.r_status = Stats.Served_cached))
    reports

(* the certd footer surfaces memo hit/miss and allocation counters next
   to the timing histogram: run real jobs through a timed engine and
   assert the counters are snapshotted, merged, and rendered *)
let engine_counters () =
  let jobs =
    List.init 2 (fun i ->
        {
          Manifest.job_id = Printf.sprintf "c%d" i;
          source =
            Manifest.Generated { family = "path"; n = 12 + i; gen_seed = i };
          property = "connected";
          k = 2;
          seed = 5;
        })
  in
  let timing = Lcp_service.Timing.create () in
  let engine = Engine.create ~cache_cap:16 ~timing () in
  let _, summary = Engine.run_jobs engine jobs in
  check_int "all served" 2 summary.Stats.s_served;
  let ctrs = Lcp_service.Timing.counters timing in
  List.iter
    (fun name ->
      check (name ^ " counter present") true (List.mem_assoc name ctrs))
    [ "memo_hit"; "memo_miss"; "intern_hit"; "intern_miss"; "minor_words" ];
  check "some memo traffic" true (List.assoc "memo_miss" ctrs > 0);
  check "allocation counter positive" true (List.assoc "minor_words" ctrs > 0);
  let footer = Format.asprintf "%a" Lcp_service.Timing.pp timing in
  check "footer has a counters line" true
    (let re = "counters:" in
     let rec find i =
       i + String.length re <= String.length footer
       && (String.sub footer i (String.length re) = re || find (i + 1))
     in
     find 0);
  (* absorb must sum counters across workers, not overwrite *)
  let t2 = Lcp_service.Timing.create () in
  Lcp_service.Timing.absorb t2 (Lcp_service.Timing.samples timing);
  Lcp_service.Timing.absorb t2 (Lcp_service.Timing.samples timing);
  check_int "absorb sums"
    (2 * List.assoc "memo_miss" ctrs)
    (List.assoc "memo_miss" (Lcp_service.Timing.counters t2))

let engine_rejects_unknowns () =
  let job source property =
    { Manifest.job_id = "x"; source; property; k = 2; seed = 1 }
  in
  let engine = Engine.create () in
  let is_input_error j msg_frag =
    match (Engine.run_job engine j).Stats.r_status with
    | Stats.Input_error e -> contains e msg_frag
    | _ -> false
  in
  check "unknown property" true
    (is_input_error
       (job (Manifest.Generated { family = "path"; n = 6; gen_seed = 0 }) "frob")
       "unknown property");
  check "unknown family" true
    (is_input_error
       (job (Manifest.Generated { family = "moebius"; n = 6; gen_seed = 0 })
          "connected")
       "moebius");
  check "missing file" true
    (is_input_error
       (job (Manifest.File "does-not-exist.g6") "connected")
       "does-not-exist.g6")

let suite =
  ( "service",
    [
      prop_roundtrip Io.Dimacs;
      prop_roundtrip Io.Graph6;
      prop_roundtrip Io.Adjacency;
      test "io edge cases" io_edge_cases;
      test "graph6 specifics" graph6_specifics;
      test "dimacs errors" dimacs_errors;
      test "graph6 errors" graph6_errors;
      test "adjacency errors" adjacency_errors;
      test "format inference" format_inference;
      test "manifest roundtrip" manifest_roundtrip;
      test "manifest errors" manifest_errors;
      test "hash64 vectors" hash64_vectors;
      test "bundle roundtrip" bundle_roundtrip;
      test "bundle rejects" bundle_rejects;
      test "store keys" store_keys;
      test "store lru" store_lru;
      test "store disk tier" store_disk;
      test "engine cold/warm" engine_cold_warm;
      test "engine surfaces memo/alloc counters" engine_counters;
      test "engine rejects unknowns" engine_rejects_unknowns;
    ] )

let () = Alcotest.run "lcp-service" [ suite ]

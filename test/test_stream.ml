(* Streaming-corpus suite: the constant-memory manifest reader
   (lib/service/manifest fold/iter), the Zipf workload generator
   (lib/service/workload), the negative-lookup filter (lib/util/negf)
   and its counters through the engine/store/pool, and the batched
   (group-commit) disk write path.

   What the suite pins down:
   - reader: fold_file/iter_file agree with load_file job-for-job and
     error-for-error (qcheck), mid-stream errors are line-precise and
     stop the fold, and a 10^6-line manifest streams without heap
     growth (no whole-corpus list, ever);
   - workload: byte-deterministic in the spec, ids zero-padded so feed
     order is id order, Zipf head hotter than tail, corrupt jobs
     really are engine-rejected;
   - filter: no false negatives (qcheck), bounded false-positive rate
     at the default size, and counter-exact behaviour through
     Cert_store/Engine — including the dirty-set serve path and
     per-shard exactness under Pool forking;
   - group commit: a crash mid-flush loses at most the unflushed tail;
     a reopen serves zero corrupt records and re-converges to the
     byte-identical clean layout.

   Runs as its own executable: `dune build @stream`. *)

module Service = Lcp_service
module Manifest = Service.Manifest
module Workload = Service.Workload
module Engine = Service.Engine
module Pool = Service.Pool
module Stats = Service.Stats
module Store = Service.Cert_store
module Blob_io = Service.Blob_io
module Negf = Lcp_util.Negf
module Hash64 = Lcp_util.Hash64

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let test name f = Alcotest.test_case name `Quick f
let qtest ?(count = 50) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------------------------------------------------------------- *)
(* scratch directories                                               *)

let dir_counter = ref 0

let fresh_dir tag =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcp_stream_%s_%d_%d" tag (Unix.getpid ()) !dir_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_dir tag f =
  let d = fresh_dir tag in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* ---------------------------------------------------------------- *)
(* the streaming reader                                              *)

(* random manifests: valid job lines interleaved with comments, blank
   lines, whitespace-only lines, and trailing \r *)
type mline = Job of int * int | Comment | Blank | Ws

let manifest_arb =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 0 50)
        (oneof
           [
             map2 (fun n k -> Job (n, k)) (int_range 2 10) (int_range 1 3);
             return Comment;
             return Blank;
             return Ws;
           ]))

let render_manifest lines =
  lines
  |> List.mapi (fun i l ->
         match l with
         | Job (n, k) ->
             Printf.sprintf "id=q%d gen=path n=%d property=connected k=%d \
                             seed=%d" i n k i
         | Comment -> "# a comment line"
         | Blank -> ""
         | Ws -> "   \t \r")
  |> String.concat "\n"

let stream_equals_load lines =
  with_dir "rd" (fun d ->
      let path = Filename.concat d "m.manifest" in
      write_file path (render_manifest lines);
      let loaded = Manifest.load_file path in
      let folded =
        Manifest.fold_file path ~init:[] ~f:(fun acc j -> j :: acc)
        |> Result.map List.rev
      in
      loaded = folded)

let line_precise_error () =
  with_dir "err" (fun d ->
      let path = Filename.concat d "m.manifest" in
      write_file path
        (String.concat "\n"
           [
             "id=a gen=path n=4 property=connected k=1";
             "# comment";
             "id=b gen=path n=6 property=connected k=1";
             "id=c gen=path n=8 property=connected k=1";
             "bogus";
             "id=d gen=path n=10 property=connected k=1";
           ]);
      let calls = ref 0 in
      (match Manifest.fold_file path ~init:() ~f:(fun () _ -> incr calls) with
      | Ok () -> Alcotest.fail "fold_file accepted a bad line"
      | Error e ->
          check ("error names line 5: " ^ e) true (contains e "line 5"));
      check_int "f called once per job before the bad line" 3 !calls;
      (* load_file agrees on the error path too *)
      match Manifest.load_file path with
      | Ok _ -> Alcotest.fail "load_file accepted a bad line"
      | Error e -> check "same line in load_file" true (contains e "line 5"))

let million_lines_constant_heap () =
  with_dir "big" (fun d ->
      let path = Filename.concat d "big.manifest" in
      let oc = open_out_bin path in
      for i = 0 to 999_999 do
        Printf.fprintf oc "id=s%d gen=path n=4 property=connected k=1\n" i
      done;
      close_out oc;
      let heap0 = (Gc.quick_stat ()).Gc.top_heap_words in
      let count = ref 0 in
      (match Manifest.iter_file path ~f:(fun _ -> incr count) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let growth = (Gc.quick_stat ()).Gc.top_heap_words - heap0 in
      check_int "every line parsed" 1_000_000 !count;
      (* a materialized list of 10^6 jobs costs >= 15M words; streaming
         must stay orders of magnitude below *)
      check
        (Printf.sprintf "heap growth %d words stays under 4M" growth)
        true (growth < 4_000_000))

let missing_file_is_error () =
  match Manifest.fold_file "/nonexistent/m.manifest" ~init:() ~f:(fun () _ -> ())
  with
  | Ok () -> Alcotest.fail "fold_file opened a missing file"
  | Error _ -> ()

(* ---------------------------------------------------------------- *)
(* the workload generator                                            *)

let collect spec = List.rev (Workload.fold spec ~init:[] ~f:(fun l j -> j :: l))

let workload_deterministic () =
  let spec = { Workload.default with total = 400 } in
  let a = collect spec and b = collect spec in
  check "same spec, same stream" true (a = b);
  check_int "exactly total jobs" 400 (List.length a);
  let ids = List.map (fun j -> j.Manifest.job_id) a in
  check "ids strictly increasing (feed order = id order)" true
    (List.for_all2 (fun x y -> compare x y < 0)
       (List.filteri (fun i _ -> i < List.length ids - 1) ids)
       (List.tl ids));
  let light = { spec with mix = Workload.Light } in
  check "mix changes the stream" true (collect light <> a);
  check "light deterministic too" true (collect light = collect light)

let workload_zipf_skew () =
  let spec =
    { Workload.default with universe = 50; total = 2_000; cold = 0.0;
      corrupt = 0.0; exponent = 1.2 }
  in
  (* rank identity is the job seed *)
  let freq = Array.make 50 0 in
  Workload.iter spec ~f:(fun j -> freq.(j.Manifest.seed) <- freq.(j.Manifest.seed) + 1);
  check
    (Printf.sprintf "rank 0 (%d) hotter than rank 49 (%d)" freq.(0) freq.(49))
    true
    (freq.(0) > freq.(49));
  check "head rank dominates" true (freq.(0) > 100)

let workload_corrupt_rejected () =
  let spec = { Workload.default with total = 60; corrupt = 0.5; cold = 0.0 } in
  let engine = Engine.create () in
  let rejected = ref 0 and served = ref 0 in
  Workload.iter spec ~f:(fun j ->
      match (Engine.run_job engine j).Stats.r_status with
      | Stats.Input_error _ -> incr rejected
      | Stats.Served_fresh | Stats.Served_cached | Stats.Served_degraded ->
          incr served
      | s -> Alcotest.failf "unexpected status %s" (Stats.status_name s));
  check "some corrupt jobs drawn" true (!rejected > 5);
  check "every non-corrupt job served" true (!served + !rejected = 60)

let workload_spec_parse () =
  let rt spec =
    match Workload.parse_spec (Workload.to_string spec) with
    | Ok s -> check "round trip" true (s = spec)
    | Error e -> Alcotest.fail e
  in
  rt Workload.default;
  rt
    {
      Workload.universe = 7; total = 3; exponent = 2.5; seed = 9;
      cold = 0.25; corrupt = 0.125; mix = Workload.Light;
    };
  (match Workload.parse_spec "t=12345" with
  | Ok s ->
      check_int "t overrides" 12_345 s.Workload.total;
      check_int "u defaults" Workload.default.Workload.universe
        s.Workload.universe
  | Error e -> Alcotest.fail e);
  let bad s = match Workload.parse_spec s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "zipf:u=0";
  bad "s=0";
  bad "cold=0.9,corrupt=0.2";
  bad "mix=heavy";
  bad "q=1";
  bad "gauss:u=5"

(* ---------------------------------------------------------------- *)
(* the negative-lookup filter                                        *)

let keys_arb =
  QCheck.make
    QCheck.Gen.(list_size (int_range 0 200) (map Int64.of_int int))

let filter_no_false_negatives keys =
  let f = Negf.create () in
  List.iter (Negf.add f) keys;
  List.for_all (Negf.mem f) keys

let filter_fp_rate () =
  let f = Negf.create () in
  let key i = Hash64.int Hash64.init i in
  for i = 0 to 4_999 do
    Negf.add f (key i)
  done;
  check_int "added counter" 5_000 (Negf.added f);
  let fps = ref 0 in
  for i = 5_000 to 9_999 do
    if Negf.mem f (key i) then incr fps
  done;
  check
    (Printf.sprintf "%d false positives of 5000 probes (< 2%%)" !fps)
    true
    (float_of_int !fps /. 5_000.0 < 0.02);
  Negf.clear f;
  check_int "clear resets added" 0 (Negf.added f);
  check "clear forgets members" false (Negf.mem f (key 0))

(* ---------------------------------------------------------------- *)
(* filter + batching counters through the engine and store           *)

(* two jobs with the same content key (same generated graph, property,
   k) under different ids. The path family makes key identity exact:
   same n is the same edge set (one key), distinct n is provably a
   distinct edge set (random graphs at tiny n can collide) *)
let dup_jobs ids_ns =
  List.map
    (fun (id, n) ->
      match
        Manifest.parse
          (Printf.sprintf
             "id=%s gen=path n=%d gseed=%d property=connected k=1 seed=%d"
             id n n n)
      with
      | Ok [ j ] -> j
      | _ -> Alcotest.fail "bad test job")
    ids_ns

let counters_write_through () =
  with_dir "wt" (fun d ->
      (* cap=1 evicts the previous key on every insert, so every repeat
         is a disk probe: the filter must let each one through (hit)
         and must short-circuit exactly the two first-touches (skip) *)
      let engine = Engine.create ~cache_cap:1 ~cache_dir:d () in
      let jobs =
        dup_jobs
          [ ("a1", 6); ("b1", 8); ("a2", 6); ("b2", 8); ("a3", 6); ("b3", 8) ]
      in
      let _ = Engine.run_jobs engine jobs in
      let s = Store.stats (Engine.store engine) in
      check_int "filter_skips = first touches" 2 s.Store.filter_skips;
      check_int "filter_hits = disk serves" 4 s.Store.filter_hits;
      check_int "disk_loads" 4 s.Store.disk_loads;
      check_int "no false positives in-process" 0 s.Store.filter_fps)

let counters_dirty_serve () =
  with_dir "dirty" (fun d ->
      (* write_batch larger than the job count: nothing reaches disk
         until the final flush, yet evicted entries must still be
         served — from the dirty set, not by recomputation *)
      let engine = Engine.create ~cache_cap:1 ~cache_dir:d ~write_batch:8 () in
      let jobs = dup_jobs [ ("a1", 6); ("b1", 8); ("a2", 6); ("b2", 8) ] in
      let _reports, _summary = Engine.run_jobs engine jobs in
      let s = Store.stats (Engine.store engine) in
      check_int "nothing read back from disk" 0 s.Store.disk_loads;
      check_int "no disk probes at all" 0 s.Store.filter_hits;
      check_int "first touches still skip" 2 s.Store.filter_skips;
      check_int "one group commit (the final flush)" 1 s.Store.flushes;
      let certs =
        Sys.readdir d |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".cert")
      in
      check_int "both records flushed" 2 (List.length certs))

let counters_pool_sharded () =
  with_dir "shard" (fun d ->
      let jobs =
        dup_jobs
          (List.concat_map
             (fun n -> [ (Printf.sprintf "k%da" n, n); (Printf.sprintf "k%db" n, n) ])
             [ 6; 7; 8; 9; 10; 11 ])
      in
      let workers = 2 in
      let outcome =
        (* one disk tier per worker (keyed by child pid): a shared dir
           would let a late-starting worker seed its filter from the
           sibling's flushed records, turning first-touch skips into
           scheduling-dependent disk hits *)
        Pool.run ~workers
          ~make_engine:(fun wt ->
            let wd = Filename.concat d (string_of_int (Unix.getpid ())) in
            Engine.create ~cache_dir:wd ?timing:wt ())
          jobs
      in
      (* per-worker filters are process-private and start empty,
         memory caps are large: each worker skips exactly one probe
         per distinct key of its shard and never probes again *)
      let module S = Set.Make (Int) in
      let expected =
        List.fold_left
          (fun acc j ->
            let w = Pool.shard_of ~workers j.Manifest.job_id in
            let n = match j.Manifest.source with
              | Manifest.Generated { n; _ } -> n
              | _ -> Alcotest.fail "generated only"
            in
            (w, n) :: acc)
          [] jobs
        |> List.map (fun (w, n) -> (w * 1000) + n)
        |> S.of_list |> S.cardinal
      in
      let s = outcome.Pool.store_stats in
      check_int "summed filter_skips = per-shard first touches" expected
        s.Store.filter_skips;
      check_int "no disk hits with private tiers" 0 s.Store.filter_hits;
      check_int "no false positives across workers" 0 s.Store.filter_fps)

let crash_mid_flush_recovers () =
  let jobs =
    dup_jobs [ ("j1", 5); ("j2", 6); ("j3", 7); ("j4", 8); ("j5", 9) ]
  in
  (* the clean reference canonical output *)
  let clean_lines =
    with_dir "ref" (fun d ->
        let e = Engine.create ~cache_dir:d ~write_batch:4 () in
        let reports, _ = Engine.run_jobs e jobs in
        Stats.canonical_lines reports)
  in
  with_dir "crash" (fun d ->
      let plan =
        match Blob_io.parse_plan "crash@6" with
        | Ok p -> p
        | Error e -> Alcotest.fail e
      in
      let io = fst (Blob_io.inject ~plan Blob_io.real) in
      let e1 = Engine.create ~cache_dir:d ~write_batch:4 ~io () in
      (match Engine.run_jobs e1 jobs with
      | _ -> Alcotest.fail "expected a crash mid-flush"
      | exception Blob_io.Crashed _ -> ());
      (* reopen: orphan tmp files swept, no corrupt record served, and
         the judgements re-converge to the clean run byte-for-byte *)
      let e2 = Engine.create ~cache_dir:d ~write_batch:4 () in
      let reports, _ = Engine.run_jobs e2 jobs in
      let s = Store.stats (Engine.store e2) in
      check_int "zero corrupt records on reopen" 0 s.Store.corrupt;
      check_int "zero quarantined" 0 s.Store.quarantined;
      check_str "canonical output = clean run" clean_lines
        (Stats.canonical_lines reports);
      let tmp_left =
        Sys.readdir d |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".tmp")
      in
      check_int "no tmp litter after reopen" 0 (List.length tmp_left))

(* ---------------------------------------------------------------- *)
(* stream = batch through the pool                                   *)

let stream_matches_batch () =
  with_dir "sb" (fun d ->
      let spec =
        { Workload.default with total = 150; universe = 40;
          mix = Workload.Light; corrupt = 0.05 }
      in
      let mpath = Filename.concat d "w.manifest" in
      let written = Workload.write_manifest spec mpath in
      check_int "manifest covers the stream" 150 written;
      let jobs =
        match Manifest.load_file mpath with
        | Ok js -> js
        | Error e -> Alcotest.fail e
      in
      let cache tag = Filename.concat d ("c" ^ tag) in
      let batch =
        Pool.run ~workers:1
          ~make_engine:(fun wt ->
            Engine.create ~cache_dir:(cache "b") ?timing:wt ())
          jobs
      in
      let batch_lines = Stats.canonical_lines batch.Pool.reports in
      List.iter
        (fun workers ->
          let lines = ref [] in
          let outcome =
            Pool.run_stream
              ~emit:(fun r -> lines := Stats.to_canonical_json r :: !lines)
              ~workers
              ~make_engine:(fun wt ->
                Engine.create
                  ~cache_dir:(cache (string_of_int workers))
                  ?timing:wt ())
              (fun feed -> Workload.iter spec ~f:feed)
          in
          check_int
            (Printf.sprintf "N=%d: all jobs" workers)
            150 outcome.Pool.stream_summary.Stats.s_jobs;
          check_str
            (Printf.sprintf "N=%d: canonical output = batch" workers)
            batch_lines
            (String.concat "\n" (List.rev !lines)))
        [ 1; 2 ])

(* ---------------------------------------------------------------- *)

let () =
  Alcotest.run "lcp-stream"
    [
      ( "reader",
        [
          qtest ~count:40 "fold_file = load_file on random manifests"
            manifest_arb stream_equals_load;
          test "mid-stream error is line-precise" line_precise_error;
          test "10^6-line manifest streams in constant heap"
            million_lines_constant_heap;
          test "missing file is an error, not an exception"
            missing_file_is_error;
        ] );
      ( "workload",
        [
          test "deterministic, ordered, sized" workload_deterministic;
          test "zipf head is hot" workload_zipf_skew;
          test "corrupt jobs are engine-rejected" workload_corrupt_rejected;
          test "spec parsing round-trips and rejects" workload_spec_parse;
        ] );
      ( "filter",
        [
          qtest ~count:100 "no false negatives" keys_arb
            filter_no_false_negatives;
          test "false-positive rate bounded" filter_fp_rate;
        ] );
      ( "store",
        [
          test "write-through counters exact" counters_write_through;
          test "dirty set serves unflushed evictions" counters_dirty_serve;
          test "sharded counters exact" counters_pool_sharded;
          test "crash mid-flush: reopen serves zero corrupt"
            crash_mid_flush_recovers;
        ] );
      ("pool", [ test "stream = batch at N in {1,2}" stream_matches_batch ]);
    ]

(* Tests for the round-based message-passing simulation: it must agree
   with the direct harness, deliver exactly the right messages, and drive
   the self-stabilization loop. *)

open Test_util
module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module PLS = Lcp_pls
module S = PLS.Scheme
module EM = S.Edge_map
module N = PLS.Network
module Cert = Lcp_cert.Certificate
module T1path = Lcp_cert.Theorem1.Make (Lcp_algebra.Combinators.Is_path_graph)

let rng = rng_of_seed 31

let message_counts () =
  let g = Gen.grid 3 3 in
  let cfg = PLS.Config.random_ids rng g in
  let labels = Option.get (PLS.Bipartite_scheme.scheme.S.vs_prove cfg) in
  let t = N.run_vertex_round cfg PLS.Bipartite_scheme.scheme labels in
  check_int "one round" 1 t.N.rounds;
  (* every link carries one message in each direction *)
  check_int "2m messages" (2 * G.m g) (List.length t.N.messages);
  check_int "verdict per vertex" (G.n g) (List.length t.N.verdicts);
  check "accepted" true (N.accepted t)

let vertex_round_agrees =
  qcheck ~count:40 "vertex round = direct harness"
    (arb_pw_graph ~max_k:2 ~max_n:25)
    (fun (_, g, _) ->
      let cfg = PLS.Config.random_ids rng g in
      match PLS.Bipartite_scheme.scheme.S.vs_prove cfg with
      | None -> true (* non-bipartite: nothing to compare *)
      | Some labels ->
          let direct =
            S.accepted (S.run_vertex cfg PLS.Bipartite_scheme.scheme labels)
          in
          let round =
            N.accepted (N.run_vertex_round cfg PLS.Bipartite_scheme.scheme labels)
          in
          direct = round)

let edge_round_agrees =
  qcheck ~count:25 "edge round = direct harness (pointer scheme)"
    (arb_pw_graph ~max_k:2 ~max_n:25)
    (fun (_, g, _) ->
      let cfg = PLS.Config.random_ids rng g in
      let target = PLS.Config.id cfg 0 in
      let scheme = PLS.Spanning_tree.scheme ~target in
      match scheme.S.es_prove cfg with
      | None -> false
      | Some labels ->
          S.accepted (S.run_edge cfg scheme labels)
          = N.accepted (N.run_edge_round cfg scheme labels))

let corrupted_round_rejects () =
  let g = Gen.path 10 in
  let cfg = PLS.Config.random_ids rng g in
  let scheme = T1path.edge_scheme ~k:1 () in
  let labels = Option.get (scheme.S.es_prove cfg) in
  let t = N.run_edge_round cfg scheme labels in
  check "honest accepted" true (N.accepted t);
  let e, l = List.hd (EM.bindings labels) in
  let bad =
    EM.add labels e { l with Cert.accept_state = false }
  in
  let t2 = N.run_edge_round cfg scheme bad in
  check "corruption detected" false (N.accepted t2);
  (* the rejection reasons are attached to specific processors *)
  check "some reject verdict" true
    (List.exists
       (fun (_, v) -> match v with N.Reject _ -> true | N.Accept -> false)
       t2.N.verdicts)

let stabilization_loop () =
  let g = Gen.path 12 in
  let cfg = PLS.Config.random_ids rng g in
  let scheme = T1path.edge_scheme ~k:1 () in
  let flip_accept labels =
    let e, l = List.hd (EM.bindings labels) in
    EM.add labels e { l with Cert.accept_state = false }
  in
  let retarget labels =
    let e, l = List.nth (EM.bindings labels) 3 in
    EM.add labels e
      {
        l with
        Cert.global_ptr =
          {
            l.Cert.global_ptr with
            PLS.Spanning_tree.target =
              l.Cert.global_ptr.PLS.Spanning_tree.target + 1;
          };
      }
  in
  let identity labels = labels in
  let report =
    N.stabilize cfg scheme ~faults:[ flip_accept; identity; retarget ]
  in
  check_int "faults" 3 report.N.faults_injected;
  check_int "no-op (identity)" 1 report.N.no_op;
  check_int "legal rewrites" 0 report.N.legal_rewrites;
  check_int "detected" 2 report.N.detected;
  check_int "all repairs accounted" 2
    (report.N.localized_recoveries + report.N.global_reproofs);
  check_int "detection latency" 1 report.N.max_detection_latency;
  check "legal at the end" true report.N.final_legal;
  (* deleting a label must be detected and locally repairable *)
  let delete labels = EM.remove labels (List.hd (EM.bindings labels) |> fst) in
  let r2 = N.stabilize cfg scheme ~faults:[ delete ] in
  check_int "deletion detected" 1 r2.N.detected;
  check "deletion repaired" true r2.N.final_legal;
  (* without localization every detected fault costs a global reproof *)
  let r3 = N.stabilize ~localize:false cfg scheme ~faults:[ flip_accept ] in
  check_int "global reproof" 1 r3.N.global_reproofs;
  check_int "no localized recovery" 0 r3.N.localized_recoveries

let missing_label_rejects () =
  (* satellite of the fault engine: a deleted label is a fault to detect,
     not a harness crash *)
  let g = Gen.path 6 in
  let cfg = PLS.Config.random_ids rng g in
  let scheme = T1path.edge_scheme ~k:1 () in
  let labels = Option.get (scheme.S.es_prove cfg) in
  let partial = EM.remove labels (2, 3) in
  let t = N.run_edge_round cfg scheme partial in
  check "partial labeling rejected" false (N.accepted t);
  List.iter
    (fun v ->
      match List.assoc v t.N.verdicts with
      | N.Reject m -> check "missing-label reason" true (m = S.missing_label)
      | N.Accept -> check "endpoint must reject" true false)
    [ 2; 3 ];
  check "direct harness agrees" false
    (S.accepted (S.run_edge cfg scheme partial));
  (* silencing both endpoints suppresses the only alarms: the round
     accepts — exactly the masked state the classifier calls an escape *)
  let masked = N.run_edge_round ~silent:[ 2; 3 ] cfg scheme partial in
  check "both detectors silenced: no alarm" true (N.accepted masked)

let suite =
  ( "network",
    [
      test "message counts" message_counts;
      vertex_round_agrees;
      edge_round_agrees;
      test "corrupted round rejects" corrupted_round_rejects;
      test "missing label rejects" missing_label_rejects;
      test "stabilization loop" stabilization_loop;
    ] )

(* The hot-path equivalence suite behind the CSR graph backend and the
   composition memo (`dune build @graphcore`).

   Two families of properties:

   1. Backend equivalence. [Lcp_graph.Graph] (CSR) must agree with
      [Lcp_graph.Graph_ref] (the pre-CSR list implementation, kept
      verbatim as an oracle) on every observable operation — n/m,
      neighbors, degree, mem_edge over all vertex pairs, edges order,
      induced subgraphs, incremental add_edges and remove_edge — over
      random graphs including duplicates-in-input, near-empty and
      near-complete cases. Plus a wall-clock regression bound on the
      10k-edge add/remove path that the old quadratic rebuild cannot
      meet.

   2. Memo soundness. Proving and verifying with the composition memo
      disabled and enabled must produce identical certificate bundles
      (byte-level, via the canonical bundle encoding) and identical
      verifier outcomes across every property in the service registry.
      This is the executable form of the memo-soundness argument in
      DESIGN.md: keys are the packed flat images ([A.pack] words) of
      the exact inputs, so a hit can only return what recomputation
      would have produced. The packed representation itself has its own
      differential suite in test_packed.ml (`dune build @packed`). *)

module G = Lcp_graph.Graph
module Gref = Lcp_graph.Graph_ref
module Gen = Lcp_graph.Gen
module PW = Lcp_interval.Pathwidth
module PLS = Lcp_pls
module S = PLS.Scheme
module Memo = Lcp_cert.Memo
module Registry = Lcp_service.Registry
module Bundle = Lcp_service.Bundle

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let test name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* random (n, edge list) with duplicates and both orientations allowed —
   exercising of_edges' canonicalization, not just clean inputs *)
let arb_raw_graph =
  let open QCheck in
  let gen st =
    let n = 1 + Random.State.int st 40 in
    let m = Random.State.int st (3 * n) in
    let edges =
      List.init m (fun _ ->
          let u = Random.State.int st n in
          let v = Random.State.int st n in
          (u, v))
      |> List.filter (fun (u, v) -> u <> v)
    in
    (n, edges)
  in
  let print (n, es) =
    Printf.sprintf "n=%d edges=[%s]" n
      (String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "%d,%d" u v) es))
  in
  make ~print gen

let agree (n, edges) =
  let g = G.of_edges ~n edges and r = Gref.of_edges ~n edges in
  G.n g = Gref.n r && G.m g = Gref.m r
  && G.edges g = Gref.edges r
  && List.for_all
       (fun v -> G.neighbors g v = Gref.neighbors r v
                 && G.degree g v = Gref.degree r v)
       (List.init n (fun v -> v))
  (* all pairs incl. out-of-range probes *)
  && List.for_all
       (fun u ->
         List.for_all
           (fun v -> G.mem_edge g u v = Gref.mem_edge r u v)
           (List.init (n + 2) (fun v -> v - 1)))
       (List.init (n + 2) (fun u -> u - 1))

let suite_equiv =
  [
    qcheck ~count:300 "CSR = ref on n/m/neighbors/degree/mem_edge/edges"
      arb_raw_graph agree;
    qcheck ~count:200 "CSR = ref on induced subgraphs" arb_raw_graph
      (fun (n, edges) ->
        let g = G.of_edges ~n edges and r = Gref.of_edges ~n edges in
        let vs = List.filteri (fun i _ -> i mod 2 = 0) (List.init n (fun v -> v)) in
        let gi, gb = G.induced g vs and ri, rb = Gref.induced r vs in
        gb = rb && G.edges gi = Gref.edges ri);
    qcheck ~count:200 "CSR = ref on add_edges" arb_raw_graph
      (fun (n, edges) ->
        let split = List.length edges / 2 in
        let base = List.filteri (fun i _ -> i < split) edges in
        let extra = List.filteri (fun i _ -> i >= split) edges in
        let g = G.add_edges (G.of_edges ~n base) extra in
        let r = Gref.add_edges (Gref.of_edges ~n base) extra in
        G.edges g = Gref.edges r
        && G.m g = Gref.m r
        && G.equal g (G.of_edges ~n edges));
    qcheck ~count:200 "CSR = ref on remove_edge (edges and non-edges)"
      arb_raw_graph
      (fun (n, edges) ->
        let g = G.of_edges ~n edges and r = Gref.of_edges ~n edges in
        if n < 2 then true
        else begin
          (* one present edge (if any) and one arbitrary pair *)
          let pairs =
            (match edges with e :: _ -> [ e ] | [] -> [])
            @ [ (0, n - 1) ]
          in
          List.for_all
            (fun (u, v) ->
              G.edges (G.remove_edge g u v) = Gref.edges (Gref.remove_edge r u v))
            pairs
        end);
    test "add_edges returns the same graph when nothing is new" (fun () ->
        let g = G.of_edges ~n:5 [ (0, 1); (1, 2) ] in
        check "physically equal" true (G.add_edges g [ (1, 2); (2, 1) ] == g));
    test "remove_edge of a non-edge returns the same graph" (fun () ->
        let g = G.of_edges ~n:5 [ (0, 1); (1, 2) ] in
        check "physically equal" true (G.remove_edge g 0 4 == g));
    (* the documented edit contracts, property-style: no-op edits share
       physically (==), duplicates collapse, self-loops raise — each
       checked against the reference implementation's edge sets *)
    qcheck ~count:200 "add_edges of present edges is physically the same graph"
      arb_raw_graph
      (fun (n, edges) ->
        let g = G.of_edges ~n edges in
        (* any subset of existing edges, both orientations, duplicated *)
        let present =
          List.filteri (fun i _ -> i mod 2 = 0) (G.edges g)
          |> List.concat_map (fun (u, v) -> [ (u, v); (v, u); (u, v) ])
        in
        G.add_edges g present == g && G.add_edges g [] == g);
    qcheck ~count:200 "remove_edge of a non-edge is physically the same graph"
      arb_raw_graph
      (fun (n, edges) ->
        let g = G.of_edges ~n edges in
        let non_edges =
          List.concat_map
            (fun u ->
              List.filter_map
                (fun v ->
                  if u <> v && not (G.mem_edge g u v) then Some (u, v) else None)
                (List.init (min n 8) (fun v -> v)))
            (List.init (min n 8) (fun u -> u))
        in
        List.for_all (fun (u, v) -> G.remove_edge g u v == g) non_edges);
    qcheck ~count:200 "add_edges collapses duplicates (CSR = ref = of_edges)"
      arb_raw_graph
      (fun (n, edges) ->
        let g0 = G.of_edges ~n [] and r0 = Gref.of_edges ~n [] in
        let doubled = List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) edges in
        let g = G.add_edges g0 doubled and r = Gref.add_edges r0 doubled in
        G.edges g = Gref.edges r
        && G.m g = Gref.m r
        && G.equal g (G.of_edges ~n edges));
    test "add_edges and remove_edge reject self-loops" (fun () ->
        let g = G.of_edges ~n:4 [ (0, 1) ] in
        let raises f =
          match f () with
          | exception Invalid_argument _ -> true
          | (_ : G.t) -> false
        in
        check "add self-loop raises" true (raises (fun () -> G.add_edges g [ (2, 2) ]));
        check "remove self-loop raises" true (raises (fun () -> G.remove_edge g 2 2));
        check "add out-of-range raises" true
          (raises (fun () -> G.add_edges g [ (0, 9) ]));
        (* a raising call never touched the (immutable) original *)
        check "original intact" true (G.m g = 1 && G.mem_edge g 0 1));
    test "iter/fold_neighbors match neighbors" (fun () ->
        let g = G.of_edges ~n:6 [ (0, 3); (0, 1); (3, 5); (2, 3) ] in
        for v = 0 to 5 do
          let l = ref [] in
          G.iter_neighbors g v (fun w -> l := w :: !l);
          check_int "iter" (List.length (G.neighbors g v)) (List.length !l);
          check "iter order" true (List.rev !l = G.neighbors g v);
          check "fold order" true
            (List.rev (G.fold_neighbors g v (fun acc w -> w :: acc) [])
            = G.neighbors g v)
        done);
  ]

(* ---------------------------------------------------------------- *)
(* the 10k-edge incremental rebuild regression (satellite: the seed
   add_edges/remove_edge rebuilt the whole graph through the full edge
   list; the incremental path must stay well under a second) *)

let suite_10k =
  [
    test "10k-edge graph: 1500 add/remove ops under 10 s" (fun () ->
        let rng = Random.State.make [| 11 |] in
        let n = 2000 in
        let edges =
          let seen = Hashtbl.create 20011 in
          while Hashtbl.length seen < 10_000 do
            let u = Random.State.int rng n and v = Random.State.int rng n in
            if u <> v then Hashtbl.replace seen (min u v, max u v) ()
          done;
          Hashtbl.fold (fun e () acc -> e :: acc) seen []
        in
        let g0 = G.of_edges ~n edges in
        check_int "m" 10_000 (G.m g0);
        let t0 = Unix.gettimeofday () in
        let g = ref g0 in
        for i = 0 to 1499 do
          let u = Random.State.int rng n and v = Random.State.int rng n in
          if u <> v then
            if G.mem_edge !g u v then begin
              g := G.remove_edge !g u v;
              ignore i
            end
            else g := G.add_edges !g [ (u, v) ]
        done;
        let dt = Unix.gettimeofday () -. t0 in
        check "edge count stayed sane" true (abs (G.m !g - 10_000) <= 1500);
        if dt > 10.0 then
          Alcotest.failf "1500 incremental ops took %.1f s (budget 10 s)" dt);
  ]

(* ---------------------------------------------------------------- *)
(* memo-on vs memo-off: identical certificate bundles across every
   registered property *)

let families =
  [
    ("path10", Gen.path 10);
    ("cycle12", Gen.cycle 12);
    ("even_path8", Gen.path 8);
    ( "pw2_24",
      fst (Gen.random_pathwidth (Random.State.make [| 7 |]) ~n:24 ~k:2 ()) );
  ]

let rep c =
  let g = PLS.Config.graph c in
  if G.n g <= 20 then Some (PW.exact_interval_representation g)
  else Some (PW.heuristic_interval_representation g)

let prove_bundle (module P : Registry.PROPERTY) g =
  let module T1 = Lcp_cert.Theorem1.Make (P.A) in
  let scheme = T1.edge_scheme ~rep ~k:2 () in
  let cfg = PLS.Config.random_ids (Random.State.make [| 42 |]) g in
  match scheme.S.es_prove cfg with
  | None -> None
  | Some labels ->
      let bundle =
        match Bundle.encode ~encode_label:scheme.S.es_encode g labels with
        | Ok b -> b
        | Error e -> Alcotest.failf "bundle encode failed: %s" e
      in
      let outcome = S.run_edge cfg scheme labels in
      Some (bundle, outcome = S.Accepted)

let memo_equality () =
  List.iter
    (fun (pname, prop) ->
      List.iter
        (fun (fname, g) ->
          Memo.enabled := false;
          Memo.reset_counters ();
          let off = prove_bundle prop g in
          check_int (pname ^ "/" ^ fname ^ ": no memo traffic when disabled")
            0
            (!Memo.hits + !Memo.misses + !Memo.intern_hits + !Memo.intern_misses);
          Memo.enabled := true;
          let on = prove_bundle prop g in
          (match (off, on) with
          | None, None -> ()
          | Some (b_off, ok_off), Some (b_on, ok_on) ->
              check (pname ^ "/" ^ fname ^ ": bundle bytes identical") true
                (Bundle.equal b_off b_on);
              check (pname ^ "/" ^ fname ^ ": verdicts identical") true
                (ok_off = ok_on)
          | _ ->
              Alcotest.failf "%s/%s: memo changed the prover's decision" pname
                fname))
        families)
    (List.map
       (fun name -> (name, Option.get (Registry.find name)))
       (Registry.names ()));
  (* the second (memo-on) pass must actually exercise the tables *)
  check "memo saw traffic when enabled" true (!Memo.hits + !Memo.misses > 0)

let suite_memo =
  [
    test "memo on/off: identical bundles across all 5 properties"
      memo_equality;
  ]

let () =
  Alcotest.run "lcp-graphcore"
    [
      ("csr-vs-ref", suite_equiv);
      ("10k-regression", suite_10k);
      ("memo", suite_memo);
    ]

(* Durability tests for the write-ahead session journal
   (lib/service/journal):

   - the record codec: encode_record/decode round-trip on random
     traces, and the central recovery property — for EVERY byte
     truncation of a journal file, and for EVERY single-bit flip of
     it, [decode] returns a valid prefix of the original records
     without raising;
   - replay = identity: appending a random session trace and then
     re-opening the journal rebuilds exactly the sessions the writer
     held, byte-for-byte down to the journaled replies;
   - torn-tail recovery through the [Blob_io] fault plans: a write
     torn mid-record is quarantined on reopen and every record before
     it survives;
   - checkpoint compaction: closed sessions drop out, live ones
     survive with their full step history, and dedup replies are
     byte-identical across a compaction.

   Runs as its own executable; `dune build @journal` runs it in
   isolation. *)

module Blob = Lcp_service.Blob_io
module Journal = Lcp_service.Journal

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let test name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let rec rm_rf p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcp_test_journal_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---------------------------------------------------------------- *)
(* generators: records whose fields respect the codec's line          *)
(* discipline (no embedded newlines; nonempty sid)                    *)

let word_gen =
  QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 10))

(* printable, newline-free, possibly empty — json/canonical/patch/ops *)
let field_gen =
  QCheck.Gen.(
    string_size ~gen:(char_range ' ' '~') (int_range 0 40)
    |> map (String.map (fun c -> if c = '\n' then ' ' else c)))

let reply_gen =
  QCheck.Gen.(
    map
      (fun (id, status, json, canonical, patch) ->
        {
          Journal.r_id = id;
          r_status = status;
          r_json = json;
          r_canonical = canonical;
          r_patch = patch;
        })
      (tup5 word_gen
         (oneofl [ "served_fresh"; "served_cached"; "declined"; "unsound" ])
         field_gen field_gen field_gen))

let record_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map
            (fun (sid, serial, line, reply) ->
              Journal.Opened { sid; serial = abs serial; line; reply })
            (quad word_gen small_signed_int field_gen reply_gen) );
        ( 4,
          map
            (fun (sid, serial, full, ops, reply) ->
              Journal.Stepped { sid; serial = abs serial; full; ops; reply })
            (tup5 word_gen small_signed_int bool field_gen reply_gen) );
        (1, map (fun sid -> Journal.Closed { sid }) word_gen);
      ])

let trace_gen = QCheck.Gen.(list_size (int_range 0 12) record_gen)

let trace_arb =
  QCheck.make
    ~print:(fun t -> String.concat "" (List.map Journal.encode_record t))
    trace_gen

(* a coherent session trace: opens followed by consecutively numbered
   steps — what a real daemon writes, for the replay-identity test *)
let session_trace_gen =
  QCheck.Gen.(
    let session i =
      map
        (fun (steps, reply) ->
          let sid = Printf.sprintf "s%d" i in
          Journal.Opened { sid; serial = 0; line = "line " ^ sid; reply }
          :: List.mapi
               (fun k (full, ops, r) ->
                 Journal.Stepped
                   { sid; serial = k + 1; full; ops; reply = r })
               steps)
        (pair
           (list_size (int_range 0 8) (triple bool field_gen reply_gen))
           reply_gen)
    in
    int_range 1 4 >>= fun n ->
    List.init n session |> flatten_l |> map List.concat)

let session_trace_arb =
  QCheck.make
    ~print:(fun t -> String.concat "" (List.map Journal.encode_record t))
    session_trace_gen

(* ---------------------------------------------------------------- *)
(* codec properties                                                   *)

let codec_roundtrip =
  qcheck ~count:200 "decode inverts concatenated encode_record" trace_arb
    (fun trace ->
      let bytes = String.concat "" (List.map Journal.encode_record trace) in
      let records, used, stop = Journal.decode bytes in
      records = trace && used = String.length bytes && stop = None)

let is_prefix_of shorter longer =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | a :: xs, b :: ys -> a = b && go (xs, ys)
  in
  go (shorter, longer)

(* every truncation point, exhaustively: the decoder must neither raise
   nor invent records — it returns exactly the records whose bytes lie
   entirely inside the kept prefix *)
let truncation_recovers_prefix =
  qcheck ~count:60 "every byte-truncation recovers the valid prefix" trace_arb
    (fun trace ->
      let bytes = String.concat "" (List.map Journal.encode_record trace) in
      let boundaries =
        (* byte offset at which each record ends *)
        List.fold_left
          (fun acc r ->
            let last = match acc with b :: _ -> b | [] -> 0 in
            (last + String.length (Journal.encode_record r)) :: acc)
          [] trace
        |> List.rev
      in
      let ok = ref true in
      for cut = 0 to String.length bytes do
        let records, used, _ = Journal.decode (String.sub bytes 0 cut) in
        let expected =
          List.length (List.filter (fun b -> b <= cut) boundaries)
        in
        if
          List.length records <> expected
          || (not (is_prefix_of records trace))
          || used > cut
        then ok := false
      done;
      !ok)

(* every single-bit flip: never raises, and the records decoded are a
   prefix of the original that still contains every record lying
   strictly before the flipped byte (a flip cannot damage the past) *)
let bitflip_recovers_prefix =
  qcheck ~count:30 "every single-bit flip recovers a valid prefix" trace_arb
    (fun trace ->
      let bytes = String.concat "" (List.map Journal.encode_record trace) in
      let boundaries =
        List.fold_left
          (fun acc r ->
            let last = match acc with b :: _ -> b | [] -> 0 in
            (last + String.length (Journal.encode_record r)) :: acc)
          [] trace
        |> List.rev
      in
      let ok = ref true in
      String.iteri
        (fun i _ ->
          for bit = 0 to 7 do
            let b = Bytes.of_string bytes in
            Bytes.set b i (Char.chr (Char.code bytes.[i] lxor (1 lsl bit)));
            let records, _, _ = Journal.decode (Bytes.to_string b) in
            let intact =
              List.length (List.filter (fun e -> e <= i) boundaries)
            in
            if
              (not (is_prefix_of records trace))
              || List.length records < intact
            then ok := false
          done)
        bytes;
      !ok)

(* ---------------------------------------------------------------- *)
(* replay = identity over the real file layer                         *)

let steps_of z = List.rev z.Journal.z_steps

let same_reply (a : Journal.reply) (b : Journal.reply) =
  a.r_id = b.r_id && a.r_status = b.r_status && a.r_json = b.r_json
  && a.r_canonical = b.r_canonical
  && a.r_patch = b.r_patch

let same_session (a : Journal.session) (b : Journal.session) =
  a.z_sid = b.z_sid && a.z_serial = b.z_serial && a.z_line = b.z_line
  && a.z_applied = b.z_applied
  && same_reply a.z_open b.z_open
  && List.length (steps_of a) = List.length (steps_of b)
  && List.for_all2
       (fun (x : Journal.step) (y : Journal.step) ->
         x.p_serial = y.p_serial && x.p_full = y.p_full && x.p_ops = y.p_ops
         && same_reply x.p_reply y.p_reply)
       (steps_of a) (steps_of b)

let append_trace j trace =
  List.iter
    (fun r ->
      match r with
      | Journal.Opened { sid; serial; line; reply } ->
          Journal.log_open j ~sid ~serial ~line reply
      | Journal.Stepped { sid; serial; full; ops; reply } ->
          Journal.log_step j ~sid ~serial ~full ~ops reply
      | Journal.Closed { sid } -> Journal.log_close j ~sid)
    trace

let sids_of trace =
  List.filter_map
    (function Journal.Opened { sid; _ } -> Some sid | _ -> None)
    trace
  |> List.sort_uniq compare

let replay_is_identity =
  qcheck ~count:60 "replay after append rebuilds the writer's sessions"
    session_trace_arb (fun trace ->
      with_temp_dir (fun dir ->
          let w = Journal.create ~fsync:`Never ~dir () in
          append_trace w trace;
          let r = Journal.create ~fsync:`Never ~dir () in
          Journal.live_sessions w = Journal.live_sessions r
          && List.for_all
               (fun sid ->
                 match (Journal.find w sid, Journal.find r sid) with
                 | Some a, Some b -> same_session a b
                 | None, None -> true
                 | _ -> false)
               (sids_of trace)
          && (Journal.counters r).Journal.replay_skipped = 0))

(* ---------------------------------------------------------------- *)
(* directed cases: torn tails, quarantine, close, dedup, compaction   *)

let mk_reply tag =
  {
    Journal.r_id = "dyn";
    r_status = "served_fresh";
    r_json = Printf.sprintf "{\"tag\":%S}" tag;
    r_canonical = Printf.sprintf "{\"tag\":%S,\"verdict\":\"served\"}" tag;
    r_patch = "{\"mode\":\"patched\"}";
  }

let write_session j ~sid ~steps =
  Journal.log_open j ~sid ~serial:0 ~line:("line " ^ sid) (mk_reply (sid ^ "o"));
  for s = 1 to steps do
    Journal.log_step j ~sid ~serial:s ~full:false
      ~ops:(Printf.sprintf "add=%d-%d" s (s + 1))
      (mk_reply (Printf.sprintf "%s#%d" sid s))
  done

let torn_tail_quarantined () =
  with_temp_dir (fun dir ->
      let j = Journal.create ~fsync:`Never ~dir () in
      write_session j ~sid:"a" ~steps:3;
      (* tear the file mid-record by hand: append half a record *)
      let whole =
        Journal.encode_record
          (Journal.Stepped
             {
               sid = "a";
               serial = 4;
               full = false;
               ops = "add=9-10";
               reply = mk_reply "torn";
             })
      in
      let half = String.sub whole 0 (String.length whole - 7) in
      Blob.real.Blob.append_file (Filename.concat dir "journal.log") half;
      let r = Journal.create ~fsync:`Never ~dir () in
      (match Journal.find r "a" with
      | Some z -> check_int "steps before the tear survive" 3 z.Journal.z_applied
      | None -> Alcotest.fail "session lost to a torn tail");
      let c = Journal.counters r in
      check_int "tail quarantined" 1 c.Journal.quarantined;
      check "torn bytes counted" true (c.Journal.torn_bytes > 0);
      let qdir = Filename.concat dir "quarantine" in
      check "quarantine file written" true
        (Sys.file_exists qdir && Array.length (Sys.readdir qdir) = 1);
      (* the rewritten log is clean: a third open finds no tail *)
      let r2 = Journal.create ~fsync:`Never ~dir () in
      check_int "rewritten log has no tail" 0
        (Journal.counters r2).Journal.quarantined)

let close_retires_session () =
  with_temp_dir (fun dir ->
      let j = Journal.create ~fsync:`Never ~dir () in
      write_session j ~sid:"a" ~steps:2;
      write_session j ~sid:"b" ~steps:1;
      Journal.log_close j ~sid:"a";
      check_int "writer sees one live session" 1 (Journal.live_sessions j);
      let r = Journal.create ~fsync:`Never ~dir () in
      check_int "replay sees one live session" 1 (Journal.live_sessions r);
      check "the closed one is gone" true (Journal.find r "a" = None);
      check "the open one survives" true (Journal.find r "b" <> None))

let dedup_reply_byte_identical () =
  with_temp_dir (fun dir ->
      let j = Journal.create ~fsync:`Never ~dir () in
      write_session j ~sid:"a" ~steps:3;
      let r = Journal.create ~fsync:`Never ~dir () in
      (match Journal.reply_for r ~sid:"a" ~serial:2 with
      | Some rep ->
          check_str "journaled reply canonical bytes"
            (mk_reply "a#2").Journal.r_canonical rep.Journal.r_canonical
      | None -> Alcotest.fail "applied serial not found for dedup");
      check "open reply at serial 0" true
        (Journal.reply_for r ~sid:"a" ~serial:0 <> None);
      check "unapplied serial has no reply" true
        (Journal.reply_for r ~sid:"a" ~serial:9 = None))

let checkpoint_compacts () =
  with_temp_dir (fun dir ->
      (* checkpoint_every = 8: the traffic below crosses it several
         times, so closed sessions must be compacted out of the file *)
      let j = Journal.create ~fsync:`Never ~checkpoint_every:8 ~dir () in
      write_session j ~sid:"dead" ~steps:6;
      Journal.log_close j ~sid:"dead";
      write_session j ~sid:"live" ~steps:6;
      check "compaction ran" true ((Journal.counters j).Journal.checkpoints >= 1);
      let r = Journal.create ~fsync:`Never ~checkpoint_every:8 ~dir () in
      check "closed session compacted away" true (Journal.find r "dead" = None);
      (match Journal.find r "live" with
      | Some z ->
          check_int "live session survives compaction whole" 6
            z.Journal.z_applied;
          check_str "replies survive compaction byte-for-byte"
            (mk_reply "live#4").Journal.r_canonical
            (match Journal.reply_for r ~sid:"live" ~serial:4 with
            | Some rep -> rep.Journal.r_canonical
            | None -> "<missing>")
      | None -> Alcotest.fail "live session lost to compaction");
      check_int "no replay skips after compaction" 0
        (Journal.counters r).Journal.replay_skipped)

let torn_write_via_fault_plan () =
  with_temp_dir (fun dir ->
      (* op 1 is the journal's mkdir probe-or-create; the torn append
         lands on a later record write. Find the op that writes the
         step-2 record by letting the plan tear successive ops. *)
      let plan =
        match Blob.parse_plan "torn@5:10" with
        | Ok p -> p
        | Error e -> Alcotest.fail e
      in
      let io, _ = Blob.inject ~plan Blob.real in
      let j = Journal.create ~io ~fsync:`Never ~dir () in
      (match write_session j ~sid:"a" ~steps:6 with
      | () -> Alcotest.fail "fault plan never fired"
      | exception Blob.Crashed _ -> ());
      (* reboot on the real backend: whatever prefix of records hit the
         disk must replay, the torn tail must quarantine, and nothing
         may raise *)
      let r = Journal.create ~fsync:`Never ~dir () in
      match Journal.find r "a" with
      | Some z ->
          check "a prefix of the stream survives" true
            (z.Journal.z_applied >= 0 && z.Journal.z_applied <= 6);
          check_int "the torn record is quarantined, not replayed" 1
            (Journal.counters r).Journal.quarantined
      | None -> Alcotest.fail "session lost entirely to one torn append")

let fsync_policy_strings () =
  List.iter
    (fun (s, p) ->
      check ("parse " ^ s) true (Journal.fsync_policy_of_string s = Some p);
      check_str ("print " ^ s) s (Journal.fsync_policy_to_string p))
    [ ("always", `Always); ("never", `Never); ("every=8", `Every 8) ];
  List.iter
    (fun s ->
      check ("reject " ^ s) true (Journal.fsync_policy_of_string s = None))
    [ ""; "sometimes"; "every="; "every=0"; "every=x" ]

let () =
  Random.self_init ();
  Alcotest.run "lcp-journal"
    [
      ( "journal",
        [
          codec_roundtrip;
          truncation_recovers_prefix;
          bitflip_recovers_prefix;
          replay_is_identity;
          test "torn tail quarantined, prefix survives" torn_tail_quarantined;
          test "close retires the session" close_retires_session;
          test "journaled dedup replies byte-identical" dedup_reply_byte_identical;
          test "checkpoint compacts closed sessions" checkpoint_compacts;
          test "torn append via fault plan, clean reboot" torn_write_via_fault_plan;
          test "fsync policy round-trip" fsync_policy_strings;
        ] );
    ]

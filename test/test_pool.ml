(* Parallel-determinism suite for the sharded pool (lib/service/pool):
   the same manifest run at --jobs 1 and --jobs 4 must produce
   byte-identical canonical JSONL stats and an identical disk-tier
   snapshot (hash set of stored records) — including when a blob_io
   fault plan is armed in every worker. These tests regression-guard
   the three things sharding can silently break: the merge order, the
   shared-disk-tier write protocol, and crash propagation out of a
   forked worker.

   What is compared on purpose and what is not:
   - the *canonical* projection of the stats (Stats.canonical_lines):
     fresh-vs-cached serving status and wall-clock timings legitimately
     depend on shard interleaving, so they are volatile; verdicts,
     sizes and ordering are not.
   - disk snapshots are compared directly for fault-free runs; for
     faulted runs they are compared only after a clean repair pass,
     because *which* write a plan corrupts depends on the per-worker op
     interleaving — but a repair pass must converge every layout to the
     same bytes.

   Runs as its own executable: `dune build @pool`. *)

module Service = Lcp_service
module Manifest = Service.Manifest
module Engine = Service.Engine
module Pool = Service.Pool
module Stats = Service.Stats
module Store = Service.Cert_store
module Blob_io = Service.Blob_io

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let test name f = Alcotest.test_case name `Quick f

(* ---------------------------------------------------------------- *)
(* scratch directories                                               *)

let dir_counter = ref 0

let fresh_dir tag =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcp_pool_%s_%d_%d" tag (Unix.getpid ()) !dir_counter)
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_dir tag f =
  let d = fresh_dir tag in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

(* ---------------------------------------------------------------- *)
(* the corpus: mixed families, deliberate duplicate cache keys (same
   source/property/k/seed under different job ids, so they may land on
   different workers and race on the shared disk tier), one job the
   parser accepts but the registry rejects (input_error), and one
   false instance (declined). *)

let corpus_manifest =
  String.concat "\n"
    ([
       "# pool determinism corpus";
       "id=err1 gen=cycle n=12 property=nosuchproperty k=2";
       "id=decl1 gen=cycle n=12 property=acyclic k=2";
     ]
    @ List.concat_map
        (fun i ->
          [
            Printf.sprintf
              "id=conn%02d gen=random n=%d gseed=%d property=connected k=3" i
              (16 + (3 * i))
              i;
            Printf.sprintf
              "id=tree%02d gen=tree n=%d gseed=%d property=acyclic k=3" i
              (14 + (2 * i))
              i;
            Printf.sprintf
              "id=bip%02d gen=ladder n=%d property=bipartite k=2" i (8 + i);
          ])
        [ 1; 2; 3; 4; 5; 6; 7 ]
    (* duplicate key set: identical source/property/k/seed, distinct
       ids — these hash to different shards but address one record *)
    @ List.map
        (fun i ->
          Printf.sprintf
            "id=dup%02d gen=caterpillar n=15 property=triangle_free k=2" i)
        [ 1; 2; 3; 4; 5 ]
    @ [ "id=match1 gen=path n=12 property=perfect_matching k=1" ])

let corpus () =
  match Manifest.parse corpus_manifest with
  | Ok jobs -> jobs
  | Error e -> Alcotest.failf "corpus manifest did not parse: %s" e

(* every worker builds its own engine (and fault-plan counters) from
   this, exactly as certd does *)
let make_engine ?plan ~dir () timing =
  let io =
    Option.map (fun p -> fst (Blob_io.inject ~plan:p Blob_io.real)) plan
  in
  Engine.create ~cache_cap:64 ~cache_dir:dir ?io ?timing ()

let snapshot dir =
  Store.disk_snapshot (Store.create ~dir ())

let plan_of_string s =
  match Blob_io.parse_plan s with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad fault plan in test: %s" e

(* ---------------------------------------------------------------- *)
(* sharding is a pure function of the job id                         *)

let shard_assignment () =
  let jobs = corpus () in
  List.iter
    (fun (j : Manifest.job) ->
      let w = Pool.shard_of ~workers:4 j.Manifest.job_id in
      check
        (Printf.sprintf "%s lands in [0,4)" j.Manifest.job_id)
        true
        (w >= 0 && w < 4);
      check_int
        (Printf.sprintf "%s shard is stable" j.Manifest.job_id)
        w
        (Pool.shard_of ~workers:4 j.Manifest.job_id))
    jobs;
  (* with 4 workers and ~30 well-spread ids, no shard should be empty —
     a degenerate all-on-one-worker hash would make every other test
     here vacuous *)
  let used =
    List.sort_uniq compare
      (List.map
         (fun (j : Manifest.job) -> Pool.shard_of ~workers:4 j.Manifest.job_id)
         jobs)
  in
  check "all 4 shards are populated" true (List.length used = 4)

(* pool at workers=1 is the sequential engine, report for report *)
let pool1_matches_sequential () =
  with_dir "seq" @@ fun d_seq ->
  with_dir "one" @@ fun d_one ->
  let jobs = corpus () in
  let engine = make_engine ~dir:d_seq () None in
  let seq_reports, seq_summary = Engine.run_jobs engine jobs in
  let out = Pool.run ~workers:1 ~make_engine:(make_engine ~dir:d_one ()) jobs in
  check_str "canonical stats"
    (Stats.canonical_lines seq_reports)
    (Stats.canonical_lines out.Pool.reports);
  (* count fields only: the timing fields are volatile by design *)
  check_int "summary: served" seq_summary.Stats.s_served
    out.Pool.summary.Stats.s_served;
  check_int "summary: declined" seq_summary.Stats.s_declined
    out.Pool.summary.Stats.s_declined;
  check_int "summary: errors" seq_summary.Stats.s_errors
    out.Pool.summary.Stats.s_errors;
  check_int "summary: max label bits" seq_summary.Stats.s_max_label_bits
    out.Pool.summary.Stats.s_max_label_bits;
  check "disk tiers identical" true (snapshot d_seq = snapshot d_one)

(* the tentpole determinism claim: canonical stats byte-identical and
   disk tier identical across worker counts, duplicates and all *)
let jobs1_vs_jobs4 () =
  let jobs = corpus () in
  let run_at n =
    let dir = fresh_dir (Printf.sprintf "w%d" n) in
    let emitted = ref [] in
    let emit (r : Stats.job_report) = emitted := r.Stats.r_id :: !emitted in
    let out =
      Pool.run ~emit ~workers:n ~make_engine:(make_engine ~dir ()) jobs
    in
    (* emit fires in canonical order, exactly once per job *)
    let ids = List.rev !emitted in
    check_int
      (Printf.sprintf "workers=%d: one emit per job" n)
      (List.length jobs) (List.length ids);
    check
      (Printf.sprintf "workers=%d: emits are job-id sorted" n)
      true
      (ids = List.sort compare ids);
    (Stats.canonical_lines out.Pool.reports, snapshot dir, dir)
  in
  let base_lines, base_snap, base_dir = run_at 1 in
  check "baseline stored something" true (base_snap <> []);
  List.iter
    (fun n ->
      let lines, snap, dir = run_at n in
      check_str
        (Printf.sprintf "workers=%d: canonical stats = workers=1" n)
        base_lines lines;
      check
        (Printf.sprintf "workers=%d: disk tier = workers=1" n)
        true (snap = base_snap);
      rm_rf dir)
    [ 2; 3; 4 ];
  rm_rf base_dir

(* same claim under an armed fault plan. Each worker arms its own
   counters, so *which* record a flip or a failed write lands on
   depends on the sharding — canonical verdicts must not, and one
   clean pass over the same store must repair every layout to the
   same bytes (corrupt records are quarantined on read and re-proved,
   missing ones re-proved and re-written). *)
let jobs1_vs_jobs4_under_faults () =
  let jobs = corpus () in
  let plan = plan_of_string "flip@2:40,flip@4:3,fail@6:ENOSPC" in
  let run_at n =
    let dir = fresh_dir (Printf.sprintf "f%d" n) in
    let faulted =
      Pool.run ~workers:n ~make_engine:(make_engine ~plan ~dir ()) jobs
    in
    let repaired =
      Pool.run ~workers:n ~make_engine:(make_engine ~dir ()) jobs
    in
    ( Stats.canonical_lines faulted.Pool.reports,
      Stats.canonical_lines repaired.Pool.reports,
      snapshot dir,
      dir )
  in
  let f1, r1, s1, d1 = run_at 1 in
  check "faulted baseline stored something" true (s1 <> []);
  List.iter
    (fun n ->
      let fn, rn, sn, dn = run_at n in
      check_str
        (Printf.sprintf "workers=%d: faulted-pass canonical stats" n)
        f1 fn;
      check_str
        (Printf.sprintf "workers=%d: repair-pass canonical stats" n)
        r1 rn;
      check
        (Printf.sprintf "workers=%d: disk tier after repair pass" n)
        true (sn = s1);
      rm_rf dn)
    [ 2; 4 ];
  rm_rf d1

(* a simulated crash in any worker must surface as Blob_io.Crashed in
   the parent — never as a silent partial batch *)
let crash_propagates () =
  let jobs = corpus () in
  let plan = plan_of_string "crash@3" in
  List.iter
    (fun n ->
      with_dir (Printf.sprintf "c%d" n) @@ fun dir ->
      let crashed =
        try
          ignore
            (Pool.run ~workers:n ~make_engine:(make_engine ~plan ~dir ()) jobs);
          false
        with Blob_io.Crashed _ -> true
      in
      check (Printf.sprintf "workers=%d: Crashed re-raised" n) true crashed)
    [ 1; 4 ]

(* the interrupt-path sweep must only touch spool files it owns (this
   pid) or whose owner is dead — a live daemon sharing the cache dir
   keeps its in-flight .tmp files *)
let sweep_is_pid_aware () =
  with_dir "sweep" @@ fun dir ->
  let touch f = close_out (open_out (Filename.concat dir f)) in
  (* a pid that is certainly dead: fork a child that exits, reap it *)
  let dead_pid =
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        pid
  in
  touch (Printf.sprintf "a.cert.%d.tmp" (Unix.getpid ())); (* ours *)
  touch (Printf.sprintf "b.cert.%d.tmp" dead_pid); (* dead owner *)
  touch (Printf.sprintf "c.cert.%d.tmp" 1); (* pid 1: alive, not ours *)
  touch "d.cert.tmp"; (* no owner pid parseable: left alone *)
  touch "e.cert"; (* not a tmp file at all *)
  check_int "swept own + dead-owner files only" 2 (Pool.sweep_tmp_files dir);
  let left = Sys.readdir dir |> Array.to_list |> List.sort compare in
  check "live-owner, unparseable, and real records survive" true
    (left = [ Printf.sprintf "c.cert.%d.tmp" 1; "d.cert.tmp"; "e.cert" ])

let () =
  Alcotest.run "lcp-pool"
    [
      ( "pool",
        [
          test "shard assignment: stable, total, non-degenerate"
            shard_assignment;
          test "workers=1 == sequential engine" pool1_matches_sequential;
          test "workers in {2,3,4}: canonical stats and store match workers=1"
            jobs1_vs_jobs4;
          test "fault plan armed per worker: verdicts and repaired store match"
            jobs1_vs_jobs4_under_faults;
          test "crash in a worker kills the batch" crash_propagates;
          test "interrupt sweep is pid-aware" sweep_is_pid_aware;
        ] );
    ]

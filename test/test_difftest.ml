(* The differential oracle between the two certification schemes the
   repo ships: Theorem 1 (O(log n) edge labels) and the
   Fraigniaud–Montealegre–Rapaport–Todinca baseline (O(log² n) vertex
   labels). On bounded-pathwidth classes the two schemes must be
   *judgement-equivalent* — for every (graph, property, k) instance
   either both provers certify and every node of both verifiers
   accepts, or both provers decline. This is the load-bearing claim
   behind using either scheme interchangeably in the service, and the
   correctness backstop for the parallel pool: a sharding bug that
   corrupted a pipeline would show up here as a verdict split.

   Where a cheap ground truth exists (connectivity, acyclicity,
   bipartiteness, triangle-freeness) the oracle is three-way: scheme
   verdicts must also match the combinatorial fact.

   On sizes: the paper's separation is asymptotic — Theorem 1 labels
   grow O(log n) against the baseline's O(log² n), but the Theorem 1
   constant (lane bookkeeping across f(w) lanes) is large, so raw bit
   counts cross over far beyond any size a test can run. The finite
   form of the separation that *is* testable — and is tested here — is
   growth dominance: growing n by 16x must grow a Theorem 1 label by
   no more total bits than it grows an FMR label, and above the lane
   bucket step at n=256 the same holds per doubling
   (Δ O(log n) = O(1) vs Δ O(log² n) = Θ(log n)).

   The suite counts every instance it pushes through both schemes and
   fails if the total is below 500 — the oracle must stay a sweep, not
   a spot check.

   Runs as its own executable: `dune build @difftest`. *)

module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module Rep = Lcp_interval.Representation
module PW = Lcp_interval.Pathwidth
module PLS = Lcp_pls
module S = PLS.Scheme
module A = Lcp_algebra

let check = Alcotest.(check bool)
let test name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* random connected bounded-pathwidth graph with its witness intervals
   (same shape as Test_util.arb_pw_graph, inlined because this suite is
   its own executable) *)
let arb_pw_graph ~max_k ~max_n =
  let open QCheck in
  let gen st =
    let k = 1 + Random.State.int st max_k in
    let n = 2 + Random.State.int st (max_n - 1) in
    (* fully qualified: [open QCheck] shadows the [Gen] alias *)
    let g, ivs = Lcp_graph.Gen.random_pathwidth st ~n ~k () in
    (k, g, ivs)
  in
  let print (k, g, _) = Printf.sprintf "k=%d %s" k (G.to_string g) in
  make ~print gen

(* ---------------------------------------------------------------- *)
(* the oracle                                                        *)

type verdict =
  | Certified  (** prover produced labels; every node accepted *)
  | Declined  (** prover declined the instance *)
  | Broken of string  (** prover certified but some node rejected — a bug *)

let verdict_name = function
  | Certified -> "certified"
  | Declined -> "declined"
  | Broken e -> "BROKEN(" ^ e ^ ")"

(* instances pushed through BOTH schemes, and disagreements seen; the
   final test asserts >= 500 and = 0 respectively *)
let instances = ref 0
let disagreements = ref 0

module Diff (Alg : Lcp_algebra.Algebra_sig.S) = struct
  module T1 = Lcp_cert.Theorem1.Make (Alg)
  module F = Lcp_cert.Baseline_fmr.Make (Alg)

  let verdicts ~k ~rep cfg =
    let rep_fn _ = Some rep in
    let t1 = T1.edge_scheme ~rep:rep_fn ~k () in
    let fmr = F.scheme ~rep:rep_fn ~k () in
    let vt =
      match t1.S.es_prove cfg with
      | None -> Declined
      | Some labels ->
          if S.accepted (S.run_edge cfg t1 labels) then Certified
          else Broken "theorem1 verifier rejected its own prover's labels"
    in
    let vf =
      match fmr.S.vs_prove cfg with
      | None -> Declined
      | Some labels ->
          if S.accepted (S.run_vertex cfg fmr labels) then Certified
          else Broken "fmr verifier rejected its own prover's labels"
    in
    (vt, vf)

  (* [truth]: ground truth when one is cheap to compute; the schemes
     must agree with each other always, and with the truth when given *)
  let agree ?truth ~k ~rep cfg =
    incr instances;
    match verdicts ~k ~rep cfg with
    | Certified, Certified ->
        if truth = Some false then begin
          incr disagreements;
          QCheck.Test.fail_reportf "%s: both schemes certified a FALSE instance"
            Alg.name
        end
        else true
    | Declined, Declined ->
        if truth = Some true then begin
          incr disagreements;
          QCheck.Test.fail_reportf "%s: both schemes declined a TRUE instance"
            Alg.name
        end
        else true
    | vt, vf ->
        incr disagreements;
        QCheck.Test.fail_reportf "%s: verdict split — theorem1=%s fmr=%s"
          Alg.name (verdict_name vt) (verdict_name vf)
end

module Dconn = Diff (A.Connectivity)
module Dacy = Diff (A.Acyclicity)
module Dbip = Diff (A.Bipartite)
module Dtri = Diff (A.Triangle_free)
module Dpm = Diff (A.Matching)

(* ---------------------------------------------------------------- *)
(* cheap ground truths (n here is <= a few dozen)                    *)

let is_acyclic g =
  (* a forest has m <= n - c; equivalently no back edge in a DFS *)
  let n = G.n g in
  let seen = Array.make n false in
  let acyclic = ref true in
  let rec dfs parent v =
    seen.(v) <- true;
    List.iter
      (fun w ->
        if not seen.(w) then dfs v w
        else if w <> parent then acyclic := false)
      (G.neighbors g v)
  in
  for v = 0 to n - 1 do
    if not seen.(v) then dfs (-1) v
  done;
  !acyclic

let is_bipartite g =
  let n = G.n g in
  let color = Array.make n (-1) in
  let ok = ref true in
  let rec dfs c v =
    color.(v) <- c;
    List.iter
      (fun w ->
        if color.(w) = -1 then dfs (1 - c) w
        else if color.(w) = c then ok := false)
      (G.neighbors g v)
  in
  for v = 0 to n - 1 do
    if color.(v) = -1 then dfs 0 v
  done;
  !ok

let is_triangle_free g =
  let n = G.n g in
  let adj u v = List.mem v (G.neighbors g u) in
  let free = ref true in
  for u = 0 to n - 1 do
    List.iter
      (fun v ->
        if v > u then
          List.iter (fun w -> if w > v && adj u w then free := false)
            (G.neighbors g v))
      (G.neighbors g u)
  done;
  !free

(* ---------------------------------------------------------------- *)
(* the sweep: every random instance runs through all five registered
   properties, so one qcheck case is five oracle instances            *)

let oracle_sweep =
  qcheck ~count:120 "T1 vs FMR verdicts agree (5 properties per graph)"
    (arb_pw_graph ~max_k:3 ~max_n:32)
    (fun (k, g, ivs) ->
      let rep = Rep.of_pairs g ivs in
      let cfg =
        PLS.Config.random_ids (Random.State.make [| G.n g + G.m g |]) g
      in
      Dconn.agree ~truth:(Lcp_graph.Traversal.is_connected g) ~k ~rep cfg
      && Dacy.agree ~truth:(is_acyclic g) ~k ~rep cfg
      && Dbip.agree ~truth:(is_bipartite g) ~k ~rep cfg
      && Dtri.agree ~truth:(is_triangle_free g) ~k ~rep cfg
      && Dpm.agree ~k ~rep cfg)

(* named families with known verdicts, as pinned regression anchors *)
let family_anchors () =
  let heur g = PW.heuristic_interval_representation g in
  let cfg_of g = PLS.Config.random_ids (Random.State.make [| 2025 |]) g in
  let cases =
    [
      ("path16/connected", Gen.path 16, 1, `Conn, Some true);
      ("cycle12/connected", Gen.cycle 12, 2, `Conn, Some true);
      ("cycle12/acyclic", Gen.cycle 12, 2, `Acy, Some false);
      ("caterpillar/acyclic", Gen.caterpillar ~spine:5 ~legs:2, 1, `Acy,
       Some true);
      ("cycle12/bipartite", Gen.cycle 12, 2, `Bip, Some true);
      ("cycle11/bipartite", Gen.cycle 11, 2, `Bip, Some false);
      ("cycle14/triangle_free", Gen.cycle 14, 2, `Tri, Some true);
      ("path12/perfect_matching", Gen.path 12, 1, `Pm, Some true);
      ("path11/perfect_matching", Gen.path 11, 1, `Pm, Some false);
      ("star6/perfect_matching", Gen.star 6, 1, `Pm, Some false);
    ]
  in
  List.iter
    (fun (name, g, k, prop, truth) ->
      let rep = heur g in
      let cfg = cfg_of g in
      let ok =
        match prop with
        | `Conn -> Dconn.agree ?truth ~k ~rep cfg
        | `Acy -> Dacy.agree ?truth ~k ~rep cfg
        | `Bip -> Dbip.agree ?truth ~k ~rep cfg
        | `Tri -> Dtri.agree ?truth ~k ~rep cfg
        | `Pm -> Dpm.agree ?truth ~k ~rep cfg
      in
      check name true ok)
    cases

(* ---------------------------------------------------------------- *)
(* size separation: growth dominance above a small threshold          *)

let t1_and_fmr_bits family n =
  let g = match family with `Path -> Gen.path n | `Cycle -> Gen.cycle n in
  let k = match family with `Path -> 1 | `Cycle -> 2 in
  let cfg = PLS.Config.make g in
  let rep_fn c =
    Some (PW.heuristic_interval_representation (PLS.Config.graph c))
  in
  let t1 = Dconn.T1.edge_scheme ~rep:rep_fn ~k () in
  let fmr = Dconn.F.scheme ~rep:rep_fn ~k () in
  let bt = S.max_edge_label_bits t1 (Option.get (t1.S.es_prove cfg)) in
  let bf = S.max_vertex_label_bits fmr (Option.get (fmr.S.vs_prove cfg)) in
  (bt, bf)

let growth_dominance () =
  (* Two finite forms of Δ log n <= Δ log² n, both measured:
     - window dominance: over the whole ladder (a 16x growth in n) the
       total Theorem 1 growth is at most the total FMR growth;
     - rung dominance: above n = 256, each single doubling costs
       Theorem 1 no more bits than it costs FMR.
     The raw counts never cross at testable n — Theorem 1's lane
     constant dominates — and its growth is stepwise: field widths are
     power-of-two bucketed and a bucket crossing is paid once *per
     lane* (one such step lands at n = 256, +~1.9k bits). So the
     per-rung claim starts above that step, and the window claim
     carries the asymptotic separation across it. *)
  let rung_threshold = 256 in
  List.iter
    (fun (fname, family, ladder) ->
      let sizes = List.map (t1_and_fmr_bits family) ladder in
      let bt_first, bf_first = List.hd sizes in
      let bt_last, bf_last = List.hd (List.rev sizes) in
      check
        (Printf.sprintf
           "%s: window T1 growth <= FMR growth over n=%d..%d (T1 +%d, FMR +%d)"
           fname (List.hd ladder)
           (List.hd (List.rev ladder))
           (bt_last - bt_first) (bf_last - bf_first))
        true
        (bt_last - bt_first <= bf_last - bf_first);
      List.iteri
        (fun i n ->
          if i > 0 && n > rung_threshold then begin
            let bt0, bf0 = List.nth sizes (i - 1) in
            let bt1, bf1 = List.nth sizes i in
            check
              (Printf.sprintf
                 "%s: T1 growth <= FMR growth at n=%d->%d (T1 %d->%d, FMR \
                  %d->%d)"
                 fname (n / 2) n bt0 bt1 bf0 bf1)
              true
              (bt1 - bt0 <= bf1 - bf0)
          end)
        ladder)
    [
      ("path", `Path, [ 64; 128; 256; 512; 1024 ]);
      ("cycle", `Cycle, [ 64; 128; 256; 512; 1024 ]);
    ]

(* ---------------------------------------------------------------- *)

let coverage () =
  check
    (Printf.sprintf "oracle ran >= 500 instances (got %d)" !instances)
    true (!instances >= 500);
  check
    (Printf.sprintf "zero verdict disagreements (got %d)" !disagreements)
    true (!disagreements = 0)

let () =
  Alcotest.run "lcp-difftest"
    [
      ( "difftest",
        [
          oracle_sweep;
          test "family anchors (pinned verdicts)" family_anchors;
          test "label growth: T1 O(log n) dominated by FMR O(log^2 n)"
            growth_dominance;
          (* must run last: audits the counters the sweeps filled *)
          test "coverage: >= 500 instances, 0 disagreements" coverage;
        ] );
    ]

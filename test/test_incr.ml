(* Differential suite for the incremental re-certification subsystem
   (`dune build @incr`): unit and qcheck coverage of the edit-delta
   core (parse/print, normalize, apply, representation transplant,
   dirty windows), then the anchor the whole subsystem rests on —
   random edit streams over >= 3 graph families x >= 3 properties,
   >= 500 batches in total, where every incremental step must be
   judgement-equivalent to a forced from-scratch recompute of the same
   stream (byte-identical canonical JSONL, identical bundles where
   served), and every *served* bundle is independently re-verified by
   a whole-graph verifier pass built outside the delta machinery —
   zero unsound accepts, by construction of the test. *)

module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module PW = Lcp_interval.Pathwidth
module Rep = Lcp_interval.Representation
module Config = Lcp_pls.Config
module Scheme = Lcp_pls.Scheme
module Incr = Lcp_cert.Incremental
module Manifest = Lcp_service.Manifest
module Engine = Lcp_service.Engine
module Delta = Lcp_service.Delta
module Registry = Lcp_service.Registry
module Stats = Lcp_service.Stats
module Bundle = Lcp_service.Bundle

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let test name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ---------------------------------------------------------------- *)
(* delta core: textual form                                          *)

let arb_delta =
  let open QCheck in
  let gen st =
    let pair _ =
      (Random.State.int st 30, Random.State.int st 30)
    in
    {
      Incr.add = List.init (Random.State.int st 4) pair;
      del = List.init (Random.State.int st 4) pair;
    }
  in
  make ~print:Incr.print_delta gen

let parse_print_roundtrip =
  qcheck ~count:300 "parse_delta inverts print_delta" arb_delta (fun d ->
      Incr.parse_delta (Incr.print_delta d) = Ok d)

let parse_rejects_malformed () =
  let bad s =
    match Incr.parse_delta s with Ok _ -> false | Error _ -> true
  in
  check "unknown key" true (bad "frob=1-2");
  check "bare token" true (bad "add");
  check "pair without dash" true (bad "add=12");
  check "non-numeric endpoint" true (bad "add=1-x");
  check "negative endpoint" true (bad "add=3--1");
  check "trailing comma" true (bad "del=1-2,");
  check "empty string is the empty delta" true
    (Incr.parse_delta "" = Ok Incr.empty_delta);
  check "empty value is an empty part" true
    (Incr.parse_delta "add=" = Ok Incr.empty_delta);
  check "whitespace runs tolerated" true
    (Incr.parse_delta "  add=0-1   del=2-3 "
    = Ok { Incr.add = [ (0, 1) ]; del = [ (2, 3) ] })

(* ---------------------------------------------------------------- *)
(* delta core: normalize and apply                                   *)

let normalize_contracts () =
  let g = Gen.path 6 in
  let norm d = Incr.normalize g d in
  let bad d frag =
    match norm d with
    | Error e -> check ("rejects: " ^ frag) true (e <> "")
    | Ok _ -> Alcotest.failf "normalize accepted %s" (Incr.print_delta d)
  in
  bad { Incr.add = [ (2, 2) ]; del = [] } "self-loop add";
  bad { Incr.add = []; del = [ (3, 3) ] } "self-loop del";
  bad { Incr.add = [ (0, 9) ]; del = [] } "out-of-range add";
  bad { Incr.add = []; del = [ (-1, 2) ] } "out-of-range del";
  bad { Incr.add = [ (5, 0) ]; del = [ (0, 5) ] } "add/del conflict";
  (* no-op operations are dropped, orientation is canonicalized *)
  (match norm { Incr.add = [ (1, 0); (4, 0) ]; del = [ (0, 3); (5, 4) ] } with
  | Ok d ->
      check "present add dropped, orientation fixed" true
        (d.Incr.add = [ (0, 4) ]);
      check "absent del dropped, orientation fixed" true
        (d.Incr.del = [ (4, 5) ])
  | Error e -> Alcotest.fail e);
  match norm { Incr.add = []; del = [] } with
  | Ok d -> check "empty normalizes to empty" true (Incr.is_empty d)
  | Error e -> Alcotest.fail e

let arb_graph_and_delta =
  let open QCheck in
  let gen st =
    let n = 4 + Random.State.int st 16 in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Random.State.int st 100 < 20 then edges := (u, v) :: !edges
      done
    done;
    let g = G.of_edges ~n !edges in
    let pair _ =
      let u = Random.State.int st n in
      let v = (u + 1 + Random.State.int st (n - 1)) mod n in
      (u, v)
    in
    let d =
      {
        Incr.add = List.init (Random.State.int st 4) pair;
        del = List.init (Random.State.int st 4) pair;
      }
    in
    (g, d)
  in
  make
    ~print:(fun (g, d) -> G.to_string g ^ " / " ^ Incr.print_delta d)
    gen

let apply_matches_reference =
  qcheck ~count:300 "apply = set reference on normalized deltas"
    arb_graph_and_delta (fun (g, d) ->
      match Incr.normalize g d with
      | Error _ -> QCheck.assume_fail () (* add/del conflict: rejected *)
      | Ok d ->
          let got = G.edges (Incr.apply g d) in
          let reference =
            List.sort_uniq compare
              (List.filter (fun e -> not (List.mem e d.Incr.del)) (G.edges g)
              @ d.Incr.add)
          in
          got = reference)

let normalize_idempotent =
  qcheck ~count:300 "normalize is idempotent" arb_graph_and_delta
    (fun (g, d) ->
      match Incr.normalize g d with
      | Error _ -> QCheck.assume_fail ()
      | Ok d1 -> Incr.normalize g d1 = Ok d1)

(* ---------------------------------------------------------------- *)
(* transplant and dirty windows                                      *)

let arb_caterpillar_del =
  let open QCheck in
  let gen st =
    let spine = 3 + Random.State.int st 6 in
    let g = Lcp_graph.Gen.caterpillar ~spine ~legs:2 in
    let edges = Array.of_list (G.edges g) in
    let e = edges.(Random.State.int st (Array.length edges)) in
    (g, e)
  in
  make ~print:(fun (g, (u, v)) -> Printf.sprintf "%s del %d-%d" (G.to_string g) u v) gen

let transplant_survives_removal =
  qcheck ~count:200 "removals never invalidate a representation"
    arb_caterpillar_del (fun (g, (u, v)) ->
      let rep = PW.heuristic_interval_representation g in
      let g' = G.remove_edge g u v in
      match Incr.transplant rep g' with
      | Error e -> QCheck.Test.fail_reportf "transplant failed: %s" e
      | Ok rep' ->
          (* same intervals: same width, so the verifier's lane bound
             is preserved across the edit *)
          Rep.width rep' = Rep.width rep
          && Rep.validate g' (Rep.intervals rep') = Ok ())

let transplant_rejects_resize () =
  let g = Gen.path 8 in
  let rep = PW.heuristic_interval_representation g in
  match Incr.transplant rep (Gen.path 9) with
  | Error e -> check "names the vertex count" true (e <> "")
  | Ok _ -> Alcotest.fail "transplant across a vertex-count change"

let transplant_covered_addition () =
  (* on a path's canonical representation consecutive vertices share a
     point, so re-adding a just-removed edge stays inside the windows *)
  let g = Gen.path 10 in
  let rep = PW.heuristic_interval_representation g in
  let g' = G.remove_edge g 4 5 in
  match Incr.transplant rep g' with
  | Error e -> Alcotest.fail e
  | Ok rep' -> (
      match Incr.transplant rep' (G.add_edges g' [ (4, 5) ]) with
      | Error e -> Alcotest.failf "covered addition refused: %s" e
      | Ok rep'' -> check_int "width preserved" (Rep.width rep) (Rep.width rep''))

let dirty_window_sanity () =
  let g = Gen.path 12 in
  let rep = PW.heuristic_interval_representation g in
  check_int "empty delta dirties nothing" 0 (Incr.dirty_count rep Incr.empty_delta);
  let d = { Incr.add = []; del = [ (5, 6) ] } in
  let marks = Incr.dirty_marks rep d in
  check "endpoints are in their own closure" true (marks.(5) && marks.(6));
  check "closure is not everything on a path" true
    (Incr.dirty_count rep d < G.n g)

(* ---------------------------------------------------------------- *)
(* the differential gate                                             *)

let families = [ "path"; "caterpillar"; "random" ]
let properties = [ "connected"; "acyclic"; "bipartite" ]

(* stream-wide coverage counters, asserted as floors at the end so the
   gate cannot pass vacuously (e.g. with every step declined or every
   step rebuilt from scratch) *)
let total_batches = ref 0
let served_batches = ref 0
let declined_batches = ref 0
let patched_batches = ref 0
let cached_batches = ref 0
let input_error_batches = ref 0

let served r =
  match r.Stats.r_status with
  | Stats.Served_fresh | Stats.Served_cached | Stats.Served_degraded -> true
  | _ -> false

(* An independent whole-graph verifier for served bundles, built from
   the registry exactly as a fresh engine run would — sharing nothing
   with the session's localized verification path. *)
let make_checker ~property ~k ~seed g_base =
  match Registry.find property with
  | None -> Alcotest.failf "unknown property %s" property
  | Some p ->
      let (module Pr : Registry.PROPERTY) = p in
      let module T1 = Lcp_cert.Theorem1.Make (Pr.A) in
      let scheme = T1.edge_scheme ~k () in
      let decode_label =
        Lcp_cert.Certificate.decode ~decode_state:Pr.decode_state
      in
      let cfg0 = Config.random_ids (Random.State.make [| seed |]) g_base in
      let ids = Array.init (G.n g_base) (Config.id cfg0) in
      fun g bundle ->
        let cfg = Config.make ~ids g in
        match Bundle.decode ~decode_label g bundle with
        | Error e -> Alcotest.failf "served bundle does not decode: %s" e
        | Ok labels -> (
            match Scheme.run_edge cfg scheme labels with
            | Scheme.Accepted -> ()
            | Scheme.Rejected rs ->
                Alcotest.failf "UNSOUND ACCEPT: %d local rejections on %s"
                  (List.length rs) (G.to_string g))

(* Random edit batches biased toward oscillation: delete, then restore
   what was deleted (most-recent first, and restores outweigh
   deletions) so streams keep returning to connected, previously
   certified territory — the prover declines any disconnected graph,
   and splices, memo hits, and cache hits all live on the connected
   side. Occasional multi-op bursts and pure random adds keep the
   exploration honest; batches that normalize to errors (an add/del
   conflict) stay in — both sessions must agree on those too. *)
let gen_ops rng removed g =
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let canon (u, v) = if u < v then (u, v) else (v, u) in
  let random_add () =
    let u = Random.State.int rng (G.n g)
    and v = Random.State.int rng (G.n g) in
    if u = v then "" else Incr.print_delta { Incr.add = [ (u, v) ]; del = [] }
  in
  match Random.State.int rng 20 with
  | 0 -> "" (* explicit no-op batch *)
  | 1 | 2 ->
      (* a burst of several operations at once *)
      let nops = 2 + Random.State.int rng 2 in
      let adds = ref [] and dels = ref [] in
      for _ = 1 to nops do
        let edges = G.edges g in
        match Random.State.int rng 3 with
        | 0 when edges <> [] ->
            let e = pick edges in
            removed := e :: !removed;
            dels := e :: !dels
        | 1 when !removed <> [] -> adds := pick !removed :: !adds
        | _ ->
            let u = Random.State.int rng (G.n g)
            and v = Random.State.int rng (G.n g) in
            if u <> v then adds := (u, v) :: !adds
      done;
      (* keep same-batch add/del collisions rare but not impossible *)
      let adds =
        if Random.State.int rng 8 = 0 then !adds
        else
          List.filter
            (fun e -> not (List.mem (canon e) (List.map canon !dels)))
            !adds
      in
      Incr.print_delta { Incr.add = adds; del = !dels }
  | r -> (
      let op =
        if !removed = [] then if r < 14 && G.edges g <> [] then `Del else `Add
        else if r < 9 && G.edges g <> [] then `Del
        else if r < 17 then `Restore
        else `Add
      in
      match op with
      | `Del ->
          let e = pick (G.edges g) in
          removed := e :: !removed;
          Incr.print_delta { Incr.add = []; del = [ e ] }
      | `Restore ->
          let e = List.hd !removed in
          removed := List.tl !removed;
          Incr.print_delta { Incr.add = [ e ]; del = [] }
      | `Add -> random_add ())

let open_session line =
  let job =
    match Manifest.parse line with
    | Ok [ j ] -> j
    | Ok _ -> Alcotest.failf "expected one job in %S" line
    | Error e -> Alcotest.fail e
  in
  match Delta.create (Engine.create ()) job with
  | Ok (s, r, i) -> (s, r, i)
  | Error (r, _) ->
      Alcotest.failf "open failed: %s" (Stats.to_canonical_json r)

let run_stream ~family ~property ~n ~k ~seed ~steps =
  let line =
    Printf.sprintf
      "id=%s-%s-s%d gen=%s n=%d gseed=%d property=%s k=%d seed=%d" family
      property seed family n seed property k seed
  in
  let s_inc, r0i, i0 = open_session line in
  let s_full, r0f, _ = open_session line in
  check_str "open canonical identical"
    (Stats.to_canonical_json r0f)
    (Stats.to_canonical_json r0i);
  check_str "open mode" "open" i0.Delta.pi_mode;
  let verify_served =
    make_checker ~property ~k ~seed (Delta.graph s_inc)
  in
  if served r0i then
    (match Delta.bundle s_inc with
    | Some b -> verify_served (Delta.graph s_inc) b
    | None -> Alcotest.fail "served open without a bundle");
  let rng = Random.State.make [| seed; Hashtbl.hash (family, property) |] in
  let removed = ref [] in
  for _ = 1 to steps do
    let ops = gen_ops rng removed (Delta.graph s_inc) in
    let r_i, info = Delta.step s_inc ~full:false ops in
    let r_f, _ = Delta.step s_full ~full:true ops in
    incr total_batches;
    check_str
      (Printf.sprintf "canonical identical after %S" ops)
      (Stats.to_canonical_json r_f)
      (Stats.to_canonical_json r_i);
    check "sessions evolve the same graph" true
      (G.equal (Delta.graph s_inc) (Delta.graph s_full));
    (match info.Delta.pi_mode with
    | "patched" -> incr patched_batches
    | "cached" -> incr cached_batches
    | _ -> ());
    if served r_i then begin
      incr served_batches;
      match (Delta.bundle s_inc, Delta.bundle s_full) with
      | Some b, Some bf ->
          verify_served (Delta.graph s_inc) b;
          check "bundle identical to from-scratch recompute" true
            (Bundle.equal b bf)
      | _ -> Alcotest.fail "served step without a bundle"
    end
    else
      match r_i.Stats.r_status with
      | Stats.Declined -> incr declined_batches
      | Stats.Input_error _ -> incr input_error_batches
      | _ -> ()
  done

let stream_tests =
  List.concat_map
    (fun family ->
      List.map
        (fun property ->
          test
            (Printf.sprintf "differential stream: %s / %s" family property)
            (fun () ->
              List.iter
                (fun (seed, n) ->
                  run_stream ~family ~property ~n ~k:2 ~seed ~steps:30)
                [ (1, 24); (2, 14) ]))
        properties)
    families

(* a malformed edit is an input error both sessions must render
   identically, without advancing either graph *)
let malformed_edit_agreement () =
  let line = "id=mf gen=path n=12 gseed=1 property=connected k=2 seed=3" in
  let s_inc, _, _ = open_session line in
  let s_full, _, _ = open_session line in
  let g_before = Delta.graph s_inc in
  List.iter
    (fun ops ->
      let r_i, _ = Delta.step s_inc ~full:false ops in
      let r_f, _ = Delta.step s_full ~full:true ops in
      check "malformed edit is an input error" true
        (match r_i.Stats.r_status with Stats.Input_error _ -> true | _ -> false);
      check_str "identical error rendering"
        (Stats.to_canonical_json r_f)
        (Stats.to_canonical_json r_i))
    [ "add=0-0"; "add=0-99"; "frob=1-2"; "add=2-3 del=3-2" ];
  check "graph untouched by bad edits" true (Delta.graph s_inc == g_before);
  (* the session still works afterwards *)
  let r, _ = Delta.step s_inc ~full:false "del=4-5" in
  check "session survives" true
    (match r.Stats.r_status with Stats.Input_error _ -> false | _ -> true)

let coverage_floors () =
  Printf.printf
    "incr gate: %d batches (%d served, %d declined, %d input_error, %d \
     patched, %d cached)\n%!"
    !total_batches !served_batches !declined_batches !input_error_batches
    !patched_batches !cached_batches;
  check "gate saw >= 500 batches" true (!total_batches >= 500);
  check "streams actually served" true (!served_batches >= 50);
  check "streams actually declined" true (!declined_batches >= 50);
  check "splice path exercised (patched >= 20)" true (!patched_batches >= 20)

let suite =
  ( "incremental",
    [
      parse_print_roundtrip;
      test "parse rejects malformed edit lines" parse_rejects_malformed;
      test "normalize contracts" normalize_contracts;
      apply_matches_reference;
      normalize_idempotent;
      transplant_survives_removal;
      test "transplant rejects a vertex-count change" transplant_rejects_resize;
      test "covered addition keeps the representation" transplant_covered_addition;
      test "dirty-window sanity" dirty_window_sanity;
    ]
    @ stream_tests
    @ [
        test "malformed edits: identical errors, graph untouched"
          malformed_edit_agreement;
        test "coverage floors (anti-vacuity)" coverage_floors;
      ] )

let () = Alcotest.run "lcp-incr" [ suite ]

(* Crash-recovery and fault-injection tests for the storage layer
   (lib/service/blob_io + cert_store) and the degraded-mode engine:

   - fault-plan parsing and the injected backend's semantics
     (fail-Nth-op, torn write, bit flip, crash point);
   - the central recovery property: for EVERY truncation prefix of a
     real .cert record, and for EVERY single-bit flip of it, the store
     rejects the record before decode (quarantining it) and the engine
     serves a fresh, locally verified bundle — never a torn one;
   - orphan .tmp sweep on reopen, disk-capacity GC by mtime, the
     degraded (memory-only) mode under persistent write failure, the
     Sys_error boundary at Cert_store.add, descriptive create errors,
     uniform n >= 1 validation in the engine, and the deterministic
     retry/backoff/deadline machinery.

   Runs as its own executable; `dune build @recovery` runs this suite
   plus the full E9 campaign in bench/. *)

module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module Bitenc = Lcp_util.Bitenc
module Hash64 = Lcp_util.Hash64
module Blob = Lcp_service.Blob_io
module Store = Lcp_service.Cert_store
module Bundle = Lcp_service.Bundle
module Manifest = Lcp_service.Manifest
module Engine = Lcp_service.Engine
module Stats = Lcp_service.Stats

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let test name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let contains s frag =
  let ls = String.length s and lf = String.length frag in
  let rec go i = i + lf <= ls && (String.sub s i lf = frag || go (i + 1)) in
  go 0

let rec rm_rf p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcp_test_recovery_%d_%d" (Unix.getpid ())
         (Random.bits ()))
  in
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file = Blob.real.Blob.read_file
let write_file = Blob.real.Blob.write_file

let plan1 on = [ { Blob.at = 1; repeat = false; on } ]

let job_of ?(id = "j") family n gseed property k =
  {
    Manifest.job_id = id;
    source = Manifest.Generated { family; n; gen_seed = gseed };
    property;
    k;
    seed = 1;
  }

(* one real record, produced by the real engine pipeline *)
let produce_record dir =
  let engine = Engine.create ~cache_cap:16 ~cache_dir:dir () in
  let r = Engine.run_job engine (job_of "path" 6 0 "connected" 1) in
  check "record job served fresh" true (r.Stats.r_status = Stats.Served_fresh);
  let key = Store.key ~property:"connected" ~k:1 (Gen.path 6) in
  let path = Filename.concat dir (Store.key_hex key ^ ".cert") in
  check "record exists on disk" true (Sys.file_exists path);
  (key, path, read_file path)

(* ---------------------------------------------------------------- *)
(* fault plans                                                       *)

let plan_parsing () =
  (match Blob.parse_plan "fail@3:ENOSPC, torn@5:128,flip@7:42,crash@9" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      check_int "four items" 4 (List.length plan);
      check "roundtrip" true
        (Blob.plan_to_string plan = "fail@3:ENOSPC,torn@5:128,flip@7:42,crash@9"));
  (match Blob.parse_plan "fail@2+" with
  | Ok [ { Blob.at = 2; repeat = true; on = Blob.Fail "EIO" } ] -> ()
  | Ok _ -> Alcotest.fail "fail@2+ parsed wrong"
  | Error e -> Alcotest.fail e);
  let expect_err s frag =
    match Blob.parse_plan s with
    | Ok _ -> Alcotest.failf "plan %S must not parse" s
    | Error e -> check (Printf.sprintf "error mentions %s" frag) true (contains e frag)
  in
  expect_err "" "empty";
  expect_err "fail" "kind@N";
  expect_err "fail@0" "op index";
  expect_err "torn@2" "byte offset";
  expect_err "flip@2:x" "offset must be";
  expect_err "crash@1:9" "no argument";
  expect_err "explode@1" "unknown fault kind"

let injection_semantics () =
  with_temp_dir (fun dir ->
      let p = Filename.concat dir "f" in
      (* fail-Nth: op 2 raises, ops 1 and 3 succeed *)
      let io, c =
        Blob.inject
          ~plan:[ { Blob.at = 2; repeat = false; on = Blob.Fail "ENOSPC" } ]
          Blob.real
      in
      io.Blob.write_file p "one";
      (match io.Blob.write_file p "two" with
      | () -> Alcotest.fail "op 2 must raise"
      | exception Sys_error e ->
          check "tagged errno" true (contains e "ENOSPC"));
      io.Blob.write_file p "three";
      check_int "three ops counted" 3 c.Blob.ops;
      check_int "one injection" 1 c.Blob.injected;
      check "reads do not count as ops" true
        (ignore (io.Blob.read_file p);
         c.Blob.ops = 3);
      (* torn: prefix lands on disk, then the backend is dead *)
      let io, c = Blob.inject ~plan:(plan1 (Blob.Torn 4)) Blob.real in
      (match io.Blob.write_file p "abcdefgh" with
      | () -> Alcotest.fail "torn write must crash"
      | exception Blob.Crashed _ -> ());
      check "crashed flag" true c.Blob.crashed;
      Alcotest.(check string) "torn prefix on disk" "abcd" (read_file p);
      (match io.Blob.read_file p with
      | _ -> Alcotest.fail "dead backend must not read"
      | exception Blob.Crashed _ -> ());
      (* flip: silent single-bit corruption *)
      let io, _ = Blob.inject ~plan:(plan1 (Blob.Flip 0)) Blob.real in
      io.Blob.write_file p "a";
      Alcotest.(check string) "bit 0 flipped" "`" (read_file p);
      (* crash: nothing happens, everything after is dead *)
      let io, c = Blob.inject ~plan:(plan1 Blob.Crash) Blob.real in
      write_file p "x";
      (match io.Blob.write_file p "y" with
      | () -> Alcotest.fail "crash point must fire"
      | exception Blob.Crashed _ -> ());
      Alcotest.(check string) "crash wrote nothing" "x" (read_file p);
      check "crashed" true c.Blob.crashed)

(* ---------------------------------------------------------------- *)
(* the recovery property                                             *)

let every_truncation_rejected () =
  with_temp_dir (fun dir ->
      let key, path, content = produce_record dir in
      let len = String.length content in
      check "record nonempty" true (len > 0);
      (* every prefix must be rejected by the parser before decode *)
      for b = 0 to len - 1 do
        match Store.parse_record key (String.sub content 0 b) with
        | Ok (Some _) -> Alcotest.failf "truncation at %d accepted" b
        | Ok None | Error _ -> ()
      done;
      (* through the disk machinery: truncated record in place -> the
         reopened store quarantines it and misses; the engine then
         serves a fresh, locally verified bundle *)
      List.iter
        (fun b ->
          write_file path (String.sub content 0 b);
          let st = Store.create ~cap:8 ~dir () in
          check "torn record is a miss" true (Store.find st key = None);
          check_int "torn record counted corrupt" 1 (Store.stats st).Store.corrupt;
          check_int "torn record quarantined" 1
            (Store.stats st).Store.quarantined;
          check "torn file moved off the hot path" true
            (not (Sys.file_exists path));
          let engine = Engine.create ~cache_cap:16 ~cache_dir:dir () in
          let r = Engine.run_job engine (job_of "path" 6 0 "connected" 1) in
          check "engine re-serves fresh after torn record" true
            (r.Stats.r_status = Stats.Served_fresh);
          check "fresh record back on disk" true (Sys.file_exists path);
          Alcotest.(check string)
            "re-written record is byte-identical" content (read_file path);
          (* drop quarantined copies so counts stay per-iteration *)
          rm_rf (Filename.concat dir "quarantine"))
        [ 0; 1; 9; len / 2; len - 1 ])

let every_bit_flip_rejected () =
  with_temp_dir (fun dir ->
      let key, path, content = produce_record dir in
      let flip s b =
        let bytes = Bytes.of_string s in
        Bytes.set bytes (b / 8)
          (Char.chr
             (Char.code (Bytes.get bytes (b / 8)) lxor (1 lsl (b mod 8))));
        Bytes.unsafe_to_string bytes
      in
      (* every single-bit flip of the record must be rejected *)
      for b = 0 to (8 * String.length content) - 1 do
        match Store.parse_record key (flip content b) with
        | Ok (Some _) -> Alcotest.failf "bit flip at %d accepted" b
        | Ok None | Error _ -> ()
      done;
      (* a few through the disk machinery + engine *)
      List.iter
        (fun b ->
          write_file path (flip content b);
          let st = Store.create ~cap:8 ~dir () in
          check "flipped record is a miss" true (Store.find st key = None);
          check_int "flipped record counted corrupt" 1
            (Store.stats st).Store.corrupt;
          let engine = Engine.create ~cache_cap:16 ~cache_dir:dir () in
          let r = Engine.run_job engine (job_of "path" 6 0 "connected" 1) in
          check "engine re-serves fresh after bit rot" true
            (r.Stats.r_status = Stats.Served_fresh);
          rm_rf (Filename.concat dir "quarantine"))
        [ 0; 7; 8 * String.length content / 2; (8 * String.length content) - 1 ])

let shared_record = ref None

let prop_mutations_never_served =
  qcheck ~count:150 "random truncation+flips never parse as our record"
    QCheck.(pair small_nat (small_list small_nat))
    (fun (cut, flips) ->
      (* one shared record, mutated purely in memory *)
      let key, content =
        match !shared_record with
        | Some kc -> kc
        | None ->
            let kc =
              with_temp_dir (fun dir ->
                  let key, _, content = produce_record dir in
                  (key, content))
            in
            shared_record := Some kc;
            kc
      in
      let len = String.length content in
      let s =
        if cut mod 3 = 0 && len > 0 then String.sub content 0 (cut mod len)
        else content
      in
      let s =
        List.fold_left
          (fun s b ->
            if String.length s = 0 then s
            else begin
              let bytes = Bytes.of_string s in
              let i = b mod (8 * String.length s) in
              Bytes.set bytes (i / 8)
                (Char.chr
                   (Char.code (Bytes.get bytes (i / 8)) lxor (1 lsl (i mod 8))));
              Bytes.unsafe_to_string bytes
            end)
          s flips
      in
      if s = content then true
      else
        match Store.parse_record key s with
        | Ok (Some _) -> false
        | Ok None | Error _ -> true)

(* ---------------------------------------------------------------- *)
(* store robustness                                                  *)

let orphan_sweep () =
  with_temp_dir (fun dir ->
      write_file (Filename.concat dir "a.cert.tmp") "half";
      write_file (Filename.concat dir "b.cert.tmp") "";
      write_file (Filename.concat dir "keep.cert") "not swept";
      let st = Store.create ~cap:4 ~dir () in
      check_int "two orphans swept" 2 (Store.stats st).Store.orphans_swept;
      check "tmp files gone" true
        ((not (Sys.file_exists (Filename.concat dir "a.cert.tmp")))
        && not (Sys.file_exists (Filename.concat dir "b.cert.tmp")));
      check "non-tmp files kept" true
        (Sys.file_exists (Filename.concat dir "keep.cert")))

let dummy_entry key seed =
  let w = Bitenc.writer () in
  Bitenc.varint w seed;
  {
    Store.e_key = key;
    e_bundle = { Bundle.bytes = Bitenc.to_bytes w; bits = Bitenc.length_bits w };
    e_label_bits = seed;
  }

let key_i i = Store.key ~property:"connected" ~k:1 (Gen.path (4 + i))

let degraded_mode () =
  with_temp_dir (fun dir ->
      let io, _ =
        Blob.inject
          ~plan:[ { Blob.at = 1; repeat = true; on = Blob.Fail "EDQUOT" } ]
          Blob.real
      in
      let st = Store.create ~cap:8 ~dir ~degrade_after:3 ~io () in
      for i = 0 to 4 do
        Store.add st (dummy_entry (key_i i) i)
      done;
      let s = Store.stats st in
      check "store degraded after persistent write failure" true
        (Store.degraded st);
      check "disk errors counted" true (s.Store.disk_errors >= 3);
      check_int "no record reached disk" 0
        (List.length
           (List.filter
              (fun f -> Filename.check_suffix f ".cert")
              (Array.to_list (Sys.readdir dir))));
      (* the memory tier still serves *)
      check "memory tier alive" true (Store.find st (key_i 0) <> None);
      (* and a degraded store never touches the disk again *)
      Store.add st (dummy_entry (key_i 9) 9);
      check "add while degraded is memory-only" true
        (Store.find st (key_i 9) <> None))

let add_boundary_regression () =
  (* the cache dir becomes unwritable after create (the moral
     equivalent of a read-only disk, which root would bypass): add must
     absorb the Sys_error, count it, and keep serving from memory *)
  with_temp_dir (fun parent ->
      let dir = Filename.concat parent "cache" in
      let st = Store.create ~cap:8 ~dir () in
      rm_rf dir;
      write_file dir "now a file, not a directory";
      Store.add st (dummy_entry (key_i 0) 7);
      check_int "disk error counted" 1 (Store.stats st).Store.disk_errors;
      check "batch survives: entry served from memory" true
        (Store.find st (key_i 0) <> None);
      check "not yet degraded after one failure" true (not (Store.degraded st)))

let create_errors () =
  with_temp_dir (fun dir ->
      let file = Filename.concat dir "plain" in
      write_file file "x";
      (* the target exists but is a file *)
      (match Store.create ~cap:4 ~dir:file () with
      | _ -> Alcotest.fail "create over a file must fail"
      | exception Sys_error e ->
          check "names the directory" true (contains e "plain");
          check "says why" true (contains e "not a directory"));
      (* a parent component is a file, so mkdir_p cannot proceed *)
      match Store.create ~cap:4 ~dir:(Filename.concat file "sub") () with
      | _ -> Alcotest.fail "create under a file must fail"
      | exception Sys_error e ->
          check "descriptive create error" true
            (contains e "cannot create cache directory"))

let disk_gc () =
  with_temp_dir (fun dir ->
      let st = Store.create ~cap:16 ~dir ~disk_cap:3 () in
      let path i = Filename.concat dir (Store.key_hex (key_i i) ^ ".cert") in
      for i = 0 to 4 do
        Store.add st (dummy_entry (key_i i) i);
        (* deterministic mtime order regardless of fs resolution *)
        Unix.utimes (path i) (1000.0 +. float_of_int i) (1000.0 +. float_of_int i)
      done;
      let certs =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f -> Filename.check_suffix f ".cert")
      in
      check_int "disk tier capped" 3 (List.length certs);
      check_int "gc evictions counted" 2 (Store.stats st).Store.gc_evictions;
      check "oldest records evicted" true
        ((not (Sys.file_exists (path 0))) && not (Sys.file_exists (path 1)));
      check "newest records kept" true
        (Sys.file_exists (path 2) && Sys.file_exists (path 3)
        && Sys.file_exists (path 4));
      (* a disk hit refreshes recency: reading 2 touches its mtime *)
      let st2 = Store.create ~cap:16 ~dir ~disk_cap:3 () in
      check "disk hit" true (Store.find st2 (key_i 2) <> None);
      check "disk hit touched mtime" true
        ((Unix.stat (path 2)).Unix.st_mtime > 2000.0))

let quarantine_cap () =
  with_temp_dir (fun dir ->
      (* five intact records, then corrupt every one of them on disk *)
      let st = Store.create ~cap:16 ~dir () in
      for i = 0 to 4 do
        Store.add st (dummy_entry (key_i i) i)
      done;
      let path i = Filename.concat dir (Store.key_hex (key_i i) ^ ".cert") in
      for i = 0 to 4 do
        let b = Bytes.of_string (read_file (path i)) in
        let last = Bytes.length b - 1 in
        Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xff));
        write_file (path i) (Bytes.to_string b)
      done;
      (* a cold store rejects each record on read and quarantines it;
         the quarantine cap must keep the directory at 3, evicting the
         oldest debris as the 4th and 5th arrive *)
      let st2 = Store.create ~cap:16 ~dir ~quarantine_cap:3 () in
      for i = 0 to 4 do
        check "corrupt record reads as a miss" true
          (Store.find st2 (key_i i) = None)
      done;
      let s = Store.stats st2 in
      check_int "all five corrupt" 5 s.Store.corrupt;
      check_int "all five quarantined" 5 s.Store.quarantined;
      check_int "two quarantine evictions" 2 s.Store.quarantine_evictions;
      let qdir = Filename.concat dir "quarantine" in
      check_int "quarantine dir capped at 3" 3
        (Array.length (Sys.readdir qdir)))

(* ---------------------------------------------------------------- *)
(* engine robustness                                                 *)

let engine_n_validation () =
  let engine = Engine.create () in
  let expect_input_error family n frag =
    match (Engine.run_job engine (job_of family n 0 "connected" 2)).Stats.r_status with
    | Stats.Input_error e ->
        check (Printf.sprintf "%s n=%d rejected" family n) true (contains e frag)
    | s ->
        Alcotest.failf "%s n=%d: expected Input_error, got %s" family n
          (Stats.status_name s)
  in
  List.iter
    (fun family ->
      expect_input_error family 0 "n >= 1";
      expect_input_error family (-4) "n >= 1")
    [ "path"; "cycle"; "caterpillar"; "ladder"; "star"; "tree"; "random" ];
  expect_input_error "cycle" 2 "n >= 3";
  (* n = 1 is valid everywhere else: no exception may escape *)
  List.iter
    (fun family ->
      match (Engine.run_job engine (job_of family 1 0 "connected" 2)).Stats.r_status with
      | Stats.Input_error e -> Alcotest.failf "%s n=1: %s" family e
      | _ -> ())
    [ "path"; "caterpillar"; "ladder"; "star"; "tree"; "random" ]

let retry_machinery () =
  let policy =
    { Engine.max_retries = 3; backoff_ms = 0.0; deadline_ms = Float.infinity }
  in
  let now () = Unix.gettimeofday () *. 1000.0 in
  (* succeeds on the third attempt *)
  let calls = ref 0 in
  (match
     Engine.with_retries ~retry:policy ~now (fun attempt ->
         incr calls;
         check_int "attempt number passed through" (attempt + 1) !calls;
         if !calls < 3 then failwith "transient";
         "ok")
   with
  | Ok ("ok", 2) -> ()
  | Ok (_, r) -> Alcotest.failf "wrong retry count %d" r
  | Error (e, _) -> Alcotest.fail e);
  (* exhausts the retry budget *)
  let calls = ref 0 in
  (match
     Engine.with_retries ~retry:policy ~now (fun _ ->
         incr calls;
         raise (Sys_error "disk on fire"))
   with
  | Ok _ -> Alcotest.fail "must not succeed"
  | Error (e, retries) ->
      check_int "all attempts spent" 4 !calls;
      check_int "retries reported" 3 retries;
      check "message says gave up" true (contains e "gave up after 4");
      check "message keeps the cause" true (contains e "disk on fire"));
  (* the deadline budget stops retries that would overrun it *)
  let calls = ref 0 in
  (match
     Engine.with_retries
       ~retry:
         { Engine.max_retries = 5; backoff_ms = 1000.0; deadline_ms = 0.5 }
       ~now
       (fun _ ->
         incr calls;
         failwith "still broken")
   with
  | Ok _ -> Alcotest.fail "must not succeed"
  | Error (e, _) ->
      check_int "no retry scheduled past the deadline" 1 !calls;
      check "message says deadline" true (contains e "deadline"));
  (* the deterministic schedule: 1x, 2x, 4x, ... *)
  check "backoff doubles" true
    (Engine.backoff_delay policy 0 = 0.0
    && Engine.backoff_delay
         { policy with Engine.backoff_ms = 3.0 }
         2
       = 12.0);
  (* a simulated crash is never retried: the process is dead *)
  let calls = ref 0 in
  match
    Engine.with_retries ~retry:policy ~now (fun _ ->
        incr calls;
        raise (Blob.Crashed "boom"))
  with
  | _ -> Alcotest.fail "crash must propagate"
  | exception Blob.Crashed _ -> check_int "single attempt" 1 !calls

let engine_degraded_and_crash () =
  with_temp_dir (fun dir ->
      (* persistent ENOSPC: the batch completes, jobs degrade, none fail *)
      let io, _ =
        Blob.inject
          ~plan:[ { Blob.at = 1; repeat = true; on = Blob.Fail "ENOSPC" } ]
          Blob.real
      in
      let engine = Engine.create ~cache_cap:32 ~cache_dir:dir ~io () in
      let jobs = List.init 8 (fun i -> job_of ~id:(string_of_int i) "tree" (8 + i) i "acyclic" 2) in
      let _, summary = Engine.run_jobs engine jobs in
      check_int "all jobs served" 8 summary.Stats.s_served;
      check_int "no job failed" 0 summary.Stats.s_failed;
      check "store degraded" true (Store.degraded (Engine.store engine));
      check "later jobs report served_degraded" true
        (summary.Stats.s_degraded > 0);
      (* a crash point, by contrast, must abort the batch *)
      let io, _ = Blob.inject ~plan:(plan1 Blob.Crash) Blob.real in
      let engine = Engine.create ~cache_cap:32 ~cache_dir:dir ~io () in
      match Engine.run_jobs engine jobs with
      | _ -> Alcotest.fail "crash must propagate out of the batch"
      | exception Blob.Crashed _ -> ())

let run_job_is_total =
  qcheck ~count:120 "run_job never raises, whatever the job"
    QCheck.(
      quad
        (oneofl
           [ "path"; "cycle"; "star"; "tree"; "random"; "moebius"; "" ])
        small_signed_int small_signed_int
        (oneofl [ "connected"; "acyclic"; "frobnicate"; "" ]))
    (fun (family, n, k, property) ->
      let engine = Engine.create () in
      let job =
        {
          Manifest.job_id = "q";
          source = Manifest.Generated { family; n; gen_seed = 3 };
          property;
          k;
          seed = 0;
        }
      in
      match Engine.run_job engine job with
      | (_ : Stats.job_report) -> true
      | exception _ -> false)

let suite =
  ( "recovery",
    [
      test "fault plan parsing" plan_parsing;
      test "fault injection semantics" injection_semantics;
      test "every truncation rejected" every_truncation_rejected;
      test "every bit flip rejected" every_bit_flip_rejected;
      prop_mutations_never_served;
      test "orphan sweep on reopen" orphan_sweep;
      test "degraded mode under persistent failure" degraded_mode;
      test "add absorbs Sys_error (unwritable dir)" add_boundary_regression;
      test "create errors are immediate and descriptive" create_errors;
      test "disk GC by mtime" disk_gc;
      test "quarantine dir is capped" quarantine_cap;
      test "engine validates n uniformly" engine_n_validation;
      test "retry machinery" retry_machinery;
      test "engine degraded vs crash" engine_degraded_and_crash;
      run_job_is_total;
    ] )

let () = Alcotest.run "lcp-recovery" [ suite ]

(* The fault-injection engine: every constructor behaves as specified and
   is deterministic under its seed, and the headline soundness property —
   every single-bit flip of an encoded Theorem 1 certificate is rejected
   (or destroys the label, which is also rejected), unless it only
   touches untrusted serial-number fields — holds on random
   bounded-pathwidth graphs. *)

open Test_util
module Gen = Lcp_graph.Gen
module Graph = Lcp_graph.Graph
module PLS = Lcp_pls
module S = PLS.Scheme
module EM = S.Edge_map
module N = PLS.Network
module F = PLS.Fault
module A = Lcp_algebra
module Cert = Lcp_cert.Certificate
module T1conn = Lcp_cert.Theorem1.Make (A.Connectivity)
module FS = Lcp_cert.Faultsim

let pointer_codec =
  {
    F.c_encode = PLS.Spanning_tree.encode;
    F.c_decode = PLS.Spanning_tree.decode;
  }

(* a fixed arena for the constructor tests: the pointer scheme on a grid *)
let arena seed =
  let rng = rng_of_seed seed in
  let g = Gen.grid 3 3 in
  let cfg = PLS.Config.random_ids rng g in
  let scheme = PLS.Spanning_tree.scheme ~target:(PLS.Config.id cfg 0) in
  let labels = Option.get (scheme.S.es_prove cfg) in
  (rng, cfg, scheme, labels)

let edge_world_equal w1 w2 =
  EM.bindings w1.F.ew_labels = EM.bindings w2.F.ew_labels
  && w1.F.ew_silent = w2.F.ew_silent
  && w1.F.ew_touched = w2.F.ew_touched
  && w1.F.ew_note = w2.F.ew_note

let deterministic_under_seed () =
  List.iter
    (fun spec ->
      let inject () =
        let _, cfg, scheme, labels = arena 17 in
        (* fresh rng per injection: determinism is the whole claim *)
        F.inject_edge ~rng:(rng_of_seed 99) ~codec:pointer_codec cfg scheme
          labels spec
      in
      match (inject (), inject ()) with
      | Some w1, Some w2 ->
          check
            (Printf.sprintf "%s: same seed, same world" (F.spec_name spec))
            true (edge_world_equal w1 w2)
      | None, None -> ()
      | _ ->
          check
            (Printf.sprintf "%s: same seed, same applicability"
               (F.spec_name spec))
            true false)
    F.catalogue

let crash_loses_memory_and_silences () =
  let rng, cfg, scheme, labels = arena 3 in
  let g = PLS.Config.graph cfg in
  match F.inject_edge ~rng cfg scheme labels (F.Crash 2) with
  | None -> check "crash applies" true false
  | Some w ->
      check_int "two crashed processors" 2 (List.length w.F.ew_silent);
      List.iter
        (fun v ->
          List.iter
            (fun u ->
              check "incident label erased" true
                (EM.find w.F.ew_labels (v, u) = None))
            (Graph.neighbors g v);
          check "victim is in the touched region" true
            (List.mem v w.F.ew_touched))
        w.F.ew_silent;
      (match F.classify_edge cfg scheme ~honest:labels w with
      | F.Detected { latency; detectors; _ } ->
          check_int "crash detected in one round" 1 latency;
          (* the dead processors raise no alarm; their neighbors do *)
          check "crashed processors stay quiet" true
            (List.for_all (fun d -> not (List.mem d w.F.ew_silent)) detectors)
      | _ -> check "crash must be detected" true false)

let byzantine_garbles_and_silences () =
  let rng, cfg, scheme, labels = arena 5 in
  match
    F.inject_edge ~rng ~codec:pointer_codec cfg scheme labels (F.Byzantine 1)
  with
  | None -> check "byzantine applies" true false
  | Some w ->
      check_int "one byzantine processor" 1 (List.length w.F.ew_silent);
      check "labels changed or dropped" true
        (EM.bindings w.F.ew_labels <> EM.bindings labels);
      (match F.classify_edge cfg scheme ~honest:labels w with
      | F.Detected _ | F.Undetected_effective | F.Legal_rewrite -> ()
      | F.No_op -> check "byzantine is never a no-op" true false)

let id_collision_forges_only_ids () =
  let rng, cfg, scheme, labels = arena 7 in
  match F.inject_edge ~rng cfg scheme labels F.Id_collision with
  | None -> check "collision applies" true false
  | Some w ->
      check "labels untouched" true
        (EM.bindings w.F.ew_labels = EM.bindings labels);
      (match w.F.ew_id_of with
      | None -> check "forged id view" true false
      | Some id_of ->
          let forged =
            List.filter
              (fun v -> id_of v <> PLS.Config.id cfg v)
              (List.init (PLS.Config.n cfg) Fun.id)
          in
          check_int "exactly one forged identifier" 1 (List.length forged);
          let v = List.hd forged in
          check "forged to another processor's id" true
            (List.exists
               (fun u -> u <> v && PLS.Config.id cfg u = id_of v)
               (List.init (PLS.Config.n cfg) Fun.id)))

let stale_replay_is_from_rotated_incarnation () =
  let rng, cfg, scheme, labels = arena 11 in
  match F.inject_edge ~rng cfg scheme labels F.Stale_replay with
  | None -> check "stale replay applies" true false
  | Some w ->
      check "note names the stale incarnation" true
        (w.F.ew_note <> "" && String.length w.F.ew_note > 10);
      (* exactly one edge differs, and only when the incarnations disagree *)
      let diff =
        List.filter
          (fun (e, l) -> EM.find labels e <> Some l)
          (EM.bindings w.F.ew_labels)
      in
      check "at most one replayed label" true (List.length diff <= 1)

let delete_and_swap_shapes () =
  let rng, cfg, scheme, labels = arena 13 in
  (match F.inject_edge ~rng cfg scheme labels F.Label_delete with
  | Some w ->
      check_int "one label fewer" (EM.cardinal labels - 1)
        (EM.cardinal w.F.ew_labels)
  | None -> check "delete applies" true false);
  match F.inject_edge ~rng cfg scheme labels F.Label_swap with
  | Some w ->
      check_int "swap keeps the label count" (EM.cardinal labels)
        (EM.cardinal w.F.ew_labels)
  | None -> check "swap applies" true false

let vertex_constructors () =
  let rng = rng_of_seed 23 in
  let g = Gen.grid 3 3 in
  let cfg = PLS.Config.random_ids rng g in
  let scheme = PLS.Bipartite_scheme.scheme in
  let labels = Option.get (scheme.S.vs_prove cfg) in
  let bip_codec =
    {
      F.c_encode = PLS.Bipartite_scheme.encode;
      F.c_decode = PLS.Bipartite_scheme.decode;
    }
  in
  (match F.inject_vertex ~rng cfg scheme labels (F.Crash 1) with
  | Some w ->
      let v = List.hd w.F.vw_silent in
      check "crashed vertex label erased" true (w.F.vw_labels.(v) = None);
      (match F.classify_vertex cfg scheme ~honest:labels w with
      | F.Detected { detectors; _ } ->
          check "neighbors detect the crash" true
            (List.for_all (fun d -> d <> v) detectors && detectors <> [])
      | _ -> check "vertex crash detected" true false)
  | None -> check "vertex crash applies" true false);
  (match
     F.inject_vertex ~rng ~codec:bip_codec cfg scheme labels (F.Byzantine 1)
   with
  | Some w -> (
      (* the 1-bit label always flips, so some honest neighbor objects *)
      match F.classify_vertex cfg scheme ~honest:labels w with
      | F.Detected _ -> ()
      | _ -> check "byzantine color flip detected" true false)
  | None -> check "vertex byzantine applies" true false);
  match F.inject_vertex ~rng cfg scheme labels F.Id_collision with
  | Some w -> (
      check "vertex labels untouched" true
        (Array.for_all Option.is_some w.F.vw_labels);
      (* the bipartite verifier never reads identifiers *)
      match F.classify_vertex cfg scheme ~honest:labels w with
      | F.Legal_rewrite -> ()
      | _ -> check "id collision is invisible to the 1-bit scheme" true false)
  | None -> check "vertex collision applies" true false

(* the headline property: single-bit flips of encoded Theorem 1 labels
   never survive verification — except in the serial-number fields, which
   carry no trusted content (satellite of ISSUE 1).

   [node_id] and the cross-references to it (children keys, B-frame root
   member ids) are prover-chosen serials: a flip that lands one on an
   unused value can produce a different but equally legal certificate,
   and the verifier rightly accepts it. Normalizing them away makes the
   property below quantify over trusted content only: any accepted flip
   must be a serial-only rewrite. *)
let strip_serials (l : _ Cert.label) =
  let info i = { i with Cert.node_id = 0 } in
  let frame = function
    | Cert.T_frame t ->
        Cert.T_frame
          {
            t with
            member = (info (fst t.member), snd t.member);
            merged = info t.merged;
            children = List.map (fun (_, i) -> (0, info i)) t.children;
          }
    | Cert.B_frame b ->
        Cert.B_frame
          {
            b with
            bnode = info b.bnode;
            left = (info (fst b.left), snd b.left);
            right = (info (fst b.right), snd b.right);
            left_root_member = Option.map (fun _ -> 0) b.left_root_member;
            right_root_member = Option.map (fun _ -> 0) b.right_root_member;
          }
  in
  let vrec r = { r with Cert.vframes = List.map frame r.Cert.vframes } in
  {
    l with
    Cert.frames = List.map frame l.Cert.frames;
    Cert.transported = List.map vrec l.Cert.transported;
  }

let flip_all_bits cfg scheme labels e l =
  let w = Lcp_util.Bitenc.writer () in
  Cert.encode ~encode_state:A.Connectivity.encode w l;
  let bits = Lcp_util.Bitenc.length_bits w in
  let ok = ref true in
  for pos = 0 to bits - 1 do
    let bytes = Lcp_util.Bitenc.to_bytes w in
    Lcp_util.Bitenc.flip_bit bytes pos;
    (match
       Cert.decode ~decode_state:A.Connectivity.decode
         (Lcp_util.Bitenc.reader bytes)
     with
    | exception _ ->
        (* the flip destroyed the encoding: the label is gone, and a
           missing label must be rejected *)
        if S.accepted (S.run_edge cfg scheme (EM.remove labels e)) then
          ok := false
    | l' when l' = l -> () (* the flip decoded back to the same label *)
    | l' ->
        if
          S.accepted (S.run_edge cfg scheme (EM.add labels e l'))
          && strip_serials l' <> strip_serials l
        then ok := false)
  done;
  !ok

let bit_flips_on_path () =
  let rng = rng_of_seed 41 in
  let cfg = PLS.Config.random_ids rng (Gen.path 6) in
  let scheme = T1conn.edge_scheme ~k:1 () in
  let labels = Option.get (scheme.S.es_prove cfg) in
  EM.bindings labels
  |> List.iter (fun (e, l) ->
         check "every bit flip rejected or serial-only (path 6)" true
           (flip_all_bits cfg scheme labels e l))

let bit_flips_qcheck =
  qcheck ~count:12 "every single-bit flip of a T1 certificate is rejected or serial-only"
    (arb_pw_graph ~max_k:2 ~max_n:10)
    (fun (k, g, ivs) ->
      let rng = rng_of_seed (Graph.n g + Graph.m g) in
      let cfg = PLS.Config.random_ids rng g in
      let rep = rep_of (g, ivs) in
      let scheme = T1conn.edge_scheme ~rep:(fun _ -> Some rep) ~k () in
      match scheme.S.es_prove cfg with
      | None -> true
      | Some labels ->
          (* sweep the full bit range of one random edge's label *)
          let bindings = EM.bindings labels in
          let e, l =
            List.nth bindings (Random.State.int rng (List.length bindings))
          in
          flip_all_bits cfg scheme labels e l)

(* --- the same soundness property one layer up, at the service layer.
   A bundle is the canonical byte string the certificate store persists
   and sharded workers exchange through the shared disk tier, so its
   bits travel further than any single label. Flipping any payload bit
   must yield either a decode [Error] (never an exception — the engine
   treats decode failures as cache misses, not crashes) or a labeling
   the verifier rejects. Flips that decode back to the same labeling,
   or rewrite only untrusted serial fields, are the same exemption as
   above. *)

module Bundle = Lcp_service.Bundle

let serial_only_rewrite labels labels' =
  let b0 = EM.bindings labels and b1 = EM.bindings labels' in
  List.length b0 = List.length b1
  && List.for_all2
       (fun (e0, l0) (e1, l1) -> e0 = e1 && strip_serials l0 = strip_serials l1)
       b0 b1

let bundle_of cfg scheme labels =
  match
    Bundle.encode ~encode_label:scheme.S.es_encode (PLS.Config.graph cfg)
      labels
  with
  | Ok b -> b
  | Error e -> Alcotest.failf "bundle encode failed: %s" e

(* true iff the flip at [pos] is caught or harmless *)
let bundle_flip_contained cfg scheme labels (bundle : Bundle.t) pos =
  let bytes = Bytes.copy bundle.Bundle.bytes in
  Lcp_util.Bitenc.flip_bit bytes pos;
  let mutated = { bundle with Bundle.bytes } in
  let decode_label = Cert.decode ~decode_state:A.Connectivity.decode in
  match Bundle.decode ~decode_label (PLS.Config.graph cfg) mutated with
  | exception e ->
      Alcotest.failf "bundle decode raised %s at bit %d" (Printexc.to_string e)
        pos
  | Error _ -> true
  | Ok labels' ->
      serial_only_rewrite labels labels'
      || not (S.accepted (S.run_edge cfg scheme labels'))

let bundle_flips_exhaustive () =
  let rng = rng_of_seed 43 in
  let cfg = PLS.Config.random_ids rng (Gen.path 4) in
  let scheme = T1conn.edge_scheme ~k:1 () in
  let labels = Option.get (scheme.S.es_prove cfg) in
  let bundle = bundle_of cfg scheme labels in
  let bad = ref 0 in
  for pos = 0 to bundle.Bundle.bits - 1 do
    if not (bundle_flip_contained cfg scheme labels bundle pos) then incr bad
  done;
  check_int
    (Printf.sprintf "escaped flips among %d bundle bits" bundle.Bundle.bits)
    0 !bad

let bundle_flips_qcheck =
  qcheck ~count:10
    "sampled bundle bit flips are decode errors, rejected, or serial-only"
    (arb_pw_graph ~max_k:2 ~max_n:10)
    (fun (k, g, ivs) ->
      let rng = rng_of_seed (Graph.n g + (3 * Graph.m g) + 1) in
      let cfg = PLS.Config.random_ids rng g in
      let rep = rep_of (g, ivs) in
      let scheme = T1conn.edge_scheme ~rep:(fun _ -> Some rep) ~k () in
      match scheme.S.es_prove cfg with
      | None -> true
      | Some labels ->
          let bundle = bundle_of cfg scheme labels in
          let ok = ref true in
          for _ = 1 to 96 do
            let pos = Random.State.int rng bundle.Bundle.bits in
            if not (bundle_flip_contained cfg scheme labels bundle pos) then
              ok := false
          done;
          !ok)

let campaign_is_deterministic_and_clean () =
  let run () =
    FS.run ~seed:7 ~trials:2
      ~schemes:[ "spanning-tree-pointer"; "bipartite-1bit" ]
      ~faults:[ F.Label_delete; F.Crash 1; F.Id_collision ]
      ()
  in
  let r1 = run () and r2 = run () in
  check "campaign deterministic under seed" true (r1 = r2);
  check_int "no escapes" 0 r1.FS.total_escapes;
  check_int "cells = schemes x faults" 6 (List.length r1.FS.cells);
  check "everything effective was detected" true
    (r1.FS.total_detected = r1.FS.total_effective)

let suite =
  ( "fault",
    [
      test "constructors deterministic under seed" deterministic_under_seed;
      test "crash: memory loss + silence" crash_loses_memory_and_silences;
      test "byzantine: garbled labels + silence" byzantine_garbles_and_silences;
      test "id collision forges only ids" id_collision_forges_only_ids;
      test "stale replay" stale_replay_is_from_rotated_incarnation;
      test "delete and swap shapes" delete_and_swap_shapes;
      test "vertex constructors" vertex_constructors;
      test "bit flips on path 6 (exhaustive)" bit_flips_on_path;
      bit_flips_qcheck;
      test "bundle bit flips on path 4 (exhaustive)" bundle_flips_exhaustive;
      bundle_flips_qcheck;
      test "campaign deterministic and escape-free"
        campaign_is_deterministic_and_clean;
    ] )

(* Unit and property tests for the bit-exact encoder. *)

open Test_util
module B = Lcp_util.Bitenc

let roundtrip_bits () =
  let w = B.writer () in
  B.bit w true;
  B.bit w false;
  B.bits w ~width:5 19;
  B.bits w ~width:12 4095;
  check_int "length" (1 + 1 + 5 + 12) (B.length_bits w);
  let r = B.reader_of_writer w in
  check "b1" true (B.read_bit r);
  check "b2" false (B.read_bit r);
  check_int "5 bits" 19 (B.read_bits r ~width:5);
  check_int "12 bits" 4095 (B.read_bits r ~width:12)

let roundtrip_varint () =
  let values = [ 0; 1; 5; 127; 128; 300; 16383; 16384; 123456789 ] in
  let w = B.writer () in
  List.iter (B.varint w) values;
  let r = B.reader_of_writer w in
  List.iter (fun v -> check_int "varint" v (B.read_varint r)) values

let varint_size_matches () =
  List.iter
    (fun v ->
      let w = B.writer () in
      B.varint w v;
      check_int (Printf.sprintf "size %d" v) (B.varint_size v)
        (B.length_bits w))
    [ 0; 1; 127; 128; 16383; 16384; 1 lsl 30 ]

let varint_logarithmic () =
  (* varint of x uses O(log x) bits *)
  List.iter
    (fun bits ->
      let x = (1 lsl bits) - 1 in
      check "log size" true (B.varint_size x <= 8 * ((bits / 7) + 1)))
    [ 7; 14; 21; 28; 35; 42 ]

let empty_writer () =
  let w = B.writer () in
  check_int "empty" 0 (B.length_bits w);
  check_int "bytes" 0 (Bytes.length (B.to_bytes w))

let out_of_data () =
  let w = B.writer () in
  B.bit w true;
  let r = B.reader_of_writer w in
  ignore (B.read_bit r);
  Alcotest.check_raises "eof" (Invalid_argument "Bitenc.read_bit: out of data")
    (fun () -> ignore (B.read_bit r))

let prop_varint_roundtrip =
  qcheck "varint roundtrip" QCheck.(int_bound 1_000_000_000) (fun x ->
      let w = B.writer () in
      B.varint w x;
      let r = B.reader_of_writer w in
      B.read_varint r = x)

let prop_bit_sequence =
  qcheck "bit sequence roundtrip"
    QCheck.(list bool)
    (fun bits ->
      let w = B.writer () in
      List.iter (B.bit w) bits;
      let r = B.reader_of_writer w in
      List.for_all (fun b -> B.read_bit r = b) bits)

(* the word-at-a-time fast paths must write exactly the bytes the
   per-[bit] encoding defines: same stream, one bit at a time *)
let reference_bits w ~width x =
  for j = width - 1 downto 0 do
    B.bit w (x land (1 lsl j) <> 0)
  done

let rec reference_varint w x =
  if x < 128 then begin
    B.bit w false;
    reference_bits w ~width:7 x
  end
  else begin
    B.bit w true;
    reference_bits w ~width:7 (x land 0x7f);
    reference_varint w (x lsr 7)
  end

let arb_ops =
  QCheck.(
    list
      (oneof
         [
           map (fun b -> `Bit b) bool;
           map
             (fun (width, x) -> `Bits (width, x land ((1 lsl width) - 1)))
             (pair (int_range 1 24) (int_bound ((1 lsl 24) - 1)));
           map (fun x -> `Varint x) (int_bound 1_000_000_000);
         ]))

let prop_word_vs_per_bit =
  qcheck ~count:300 "bits/varint byte-identical to the per-bit reference"
    arb_ops
    (fun ops ->
      let w = B.writer () and wr = B.writer () in
      List.iter
        (fun op ->
          match op with
          | `Bit b ->
              B.bit w b;
              B.bit wr b
          | `Bits (width, x) ->
              B.bits w ~width x;
              reference_bits wr ~width x
          | `Varint x ->
              B.varint w x;
              reference_varint wr x)
        ops;
      B.length_bits w = B.length_bits wr
      && Bytes.equal (B.to_bytes w) (B.to_bytes wr))

let prop_read_bits_vs_per_bit =
  qcheck ~count:200 "read_bits/read_varint agree with per-bit reads" arb_ops
    (fun ops ->
      let w = B.writer () in
      List.iter
        (fun op ->
          match op with
          | `Bit b -> B.bit w b
          | `Bits (width, x) -> B.bits w ~width x
          | `Varint x -> B.varint w x)
        ops;
      let r = B.reader_of_writer w in
      let rr = B.reader_of_writer w in
      let read_bits_ref width =
        let acc = ref 0 in
        for _ = 1 to width do
          acc := (!acc lsl 1) lor (if B.read_bit rr then 1 else 0)
        done;
        !acc
      in
      List.for_all
        (fun op ->
          match op with
          | `Bit b -> B.read_bit r = b && B.read_bit rr = b
          | `Bits (width, _) -> B.read_bits r ~width = read_bits_ref width
          | `Varint x ->
              B.read_varint r = x
              && (* reference decode, bit by bit *)
              let rec go acc shift =
                let continue_ = B.read_bit rr in
                let group = read_bits_ref 7 in
                let acc = acc lor (group lsl shift) in
                if continue_ then go acc (shift + 7) else acc
              in
              go 0 0 = x)
        ops)

let writer_reset_reuse () =
  let w = B.writer ~capacity:4 () in
  B.varint w 987654;
  B.bits w ~width:11 1234;
  let first = B.to_bytes w in
  B.reset w;
  check_int "reset length" 0 (B.length_bits w);
  B.varint w 987654;
  B.bits w ~width:11 1234;
  check "same bytes after reset+rewrite" true (Bytes.equal first (B.to_bytes w));
  let r = B.reader (Bytes.make 2 '\255') in
  check_int "pre-reset read" 255 (B.read_bits r ~width:8);
  B.reset_reader r first;
  check_int "reader reset decodes" 987654 (B.read_varint r)

let suite =
  ( "bitenc",
    [
      test "roundtrip bits" roundtrip_bits;
      test "roundtrip varint" roundtrip_varint;
      test "varint_size matches writer" varint_size_matches;
      test "varint is logarithmic" varint_logarithmic;
      test "empty writer" empty_writer;
      test "reading past the end fails" out_of_data;
      prop_varint_roundtrip;
      prop_bit_sequence;
      prop_word_vs_per_bit;
      prop_read_bits_vs_per_bit;
      test "writer/reader reset and reuse" writer_reset_reuse;
    ] )

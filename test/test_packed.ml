(* The packed-state differential suite (`dune build @packed`).

   The flat packed representation (Algebra_sig.S.pack/unpack over
   Packed_state arenas) replaced Marshal images as the composition
   memo's key format; the seed record representation stays in place as
   the oracle. Four families of properties:

   1. Round-trip. [unpack (pack st) = st] (up to [A.equal]) for >= 500
      random reachable states of every registered algebra, built by
      random introduce/add_edge/forget/rename/identify/union
      interleavings. Also: a pack parses back consuming exactly the
      words it wrote (what makes concatenated keys unambiguous), and
      re-packing the unpacked state is word-identical (pack is a
      function of the state's class, not of construction history).

   2. Packed-memo vs reference compose. bridge / glue / forget through
      the packed-key memo (Memo.enabled = true) must agree with the
      direct recomputation path (Memo.enabled = false) — same class
      ([A.equal]), same interface, byte-identical [A.encode] — over
      random composition instances of every registered algebra.

   3. Hash audit. The word-wise FNV-1a bucket hash never certifies a
      hit on its own: the memo compares keys word for word. The audit
      checks the corpus of packed images for hash collisions between
      distinct word sequences (none expected at these sizes) and that
      word-equality implies hash-equality by construction.

   4. Memo semantics. The 2^16 cap actually evicts (live set stays
      bounded); hit/miss/intern counters are exact over a scripted
      composition sequence; compute exceptions are never cached; a
      raising [pack] falls back to uncached compute and counts as
      [memo_key_fallback]; [Memo.enabled = false] produces zero memo
      traffic while the certificate bundles stay byte-identical. *)

module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module PW = Lcp_interval.Pathwidth
module PLS = Lcp_pls
module S = PLS.Scheme
module Memo = Lcp_cert.Memo
module Registry = Lcp_service.Registry
module Bundle = Lcp_service.Bundle
module Bitenc = Lcp_util.Bitenc
module Packed = Lcp_util.Packed_state
module A = Lcp_algebra

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let test name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 500) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* ---------------------------------------------------------------- *)
(* random reachable states of an arbitrary algebra                   *)

module Rand_state (Alg : A.Algebra_sig.S) = struct
  (* a bounded random walk over the algebra's own operations; slots are
     drawn from a fresh counter so introduce never collides. Ops that
     reject their inputs (some algebras refuse e.g. matching a matched
     slot) are skipped, keeping the walk total over every algebra. *)
  let build rng ~base ~steps =
    let st = ref Alg.empty and live = ref [] and next = ref base in
    let fresh () =
      let s = !next in
      incr next;
      s
    in
    let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
    for _ = 1 to steps do
      match Random.State.int rng 8 with
      | 0 | 1 | 2 when List.length !live < 5 -> (
          let s = fresh () in
          match Alg.introduce !st s with
          | exception Invalid_argument _ -> ()
          | st' ->
              st := st';
              live := s :: !live)
      | 3 | 4 -> (
          match !live with
          | a :: rest when rest <> [] -> (
              let b = pick rest in
              match Alg.add_edge !st a b with
              | exception Invalid_argument _ -> ()
              | st' -> st := st')
          | _ -> ())
      | 5 -> (
          match !live with
          | s :: rest -> (
              match Alg.forget !st s with
              | exception Invalid_argument _ -> ()
              | st' ->
                  st := st';
                  live := rest)
          | [] -> ())
      | 6 -> (
          match !live with
          | s :: rest -> (
              let s' = fresh () in
              match Alg.rename !st ~old_slot:s ~new_slot:s' with
              | exception Invalid_argument _ -> ()
              | st' ->
                  st := st';
                  live := s' :: rest)
          | [] -> ())
      | _ -> (
          match !live with
          | keep :: rest when rest <> [] -> (
              let drop = pick rest in
              match Alg.identify !st ~keep ~drop with
              | exception Invalid_argument _ -> ()
              | st' ->
                  st := st';
                  live := List.filter (fun s -> s <> drop) !live)
          | _ -> ())
    done;
    (!st, !live)

  let gen rng =
    let st, _ = build rng ~base:0 ~steps:(3 + Random.State.int rng 15) in
    if Random.State.bool rng then st
    else
      (* exercise union: a second walk over a disjoint slot range *)
      let st2, _ = build rng ~base:100 ~steps:(2 + Random.State.int rng 8) in
      match Alg.union st st2 with
      | exception Invalid_argument _ -> st
      | u -> u

  let pack_words st =
    let buf = Packed.Buf.create 64 in
    Alg.pack buf st;
    Packed.Buf.contents buf

  let roundtrip st =
    let words = pack_words st in
    let c = Packed.cursor words in
    let st' = Alg.unpack c in
    (* exact consumption: concatenated packs must parse unambiguously *)
    c.Packed.pos = Array.length words
    && Alg.equal st st'
    (* re-packing the parsed state is word-identical *)
    && pack_words st' = words
end

let arb_seed =
  QCheck.make ~print:string_of_int (fun st -> Random.State.int st 1_000_000)

let roundtrip_case name (module Alg : A.Algebra_sig.S) ?(count = 500) () =
  let module R = Rand_state (Alg) in
  qcheck ~count
    (Printf.sprintf "%s: unpack (pack st) = st over random states" name)
    arb_seed
    (fun seed -> R.roundtrip (R.gen (Random.State.make [| seed; 77 |])))

module VC3 = A.Vertex_cover.Make (struct
  let budget = 3
end)

let suite_roundtrip =
  [
    roundtrip_case "connected" (module A.Connectivity) ();
    roundtrip_case "acyclic" (module A.Acyclicity) ();
    roundtrip_case "bipartite" (module A.Bipartite) ();
    roundtrip_case "triangle_free" (module A.Triangle_free) ();
    roundtrip_case "perfect_matching" (module A.Matching) ();
    (* combinator (Pair/And) and table-shaped coverage beyond the
       registered five *)
    roundtrip_case "is_path_graph" (module A.Combinators.Is_path_graph)
      ~count:300 ();
    roundtrip_case "vertex_cover<=3" (module VC3) ~count:300 ();
  ]

(* ---------------------------------------------------------------- *)
(* packed-memo compose vs the reference recomputation path           *)

module Compose_diff (Alg : A.Algebra_sig.S) = struct
  module C = Lcp_cert.Compose.Make (Alg)

  let enc st =
    let w = Bitenc.writer ~capacity:1024 () in
    Alg.encode w st;
    Bitenc.to_bytes w

  (* a random valid P-node interface over [lanes], terminals drawn from
     [vids] (distinct) *)
  let p_iface lanes vids =
    let t = List.map2 (fun l v -> (l, v)) lanes vids in
    { C.lanes; t_in = t; t_out = t }

  let rand_mask rng n = List.init n (fun _ -> Random.State.bool rng)

  let distinct_vids rng ~lo n =
    (* n distinct ids in increasing random gaps starting at lo *)
    let rec go acc v n =
      if n = 0 then List.rev acc
      else
        let v = v + 1 + Random.State.int rng 5 in
        go (v :: acc) v (n - 1)
    in
    go [] lo n

  (* one random parent (glue+forget) instance: the child's lanes are a
     subset of the parent's, child in-terminals equal the parent
     out-terminals on shared lanes *)
  let random_parent rng =
    let np = 1 + Random.State.int rng 4 in
    let plane = List.init np (fun i -> i) in
    let pvids = distinct_vids rng ~lo:0 np in
    let fp = p_iface plane pvids in
    let sp = C.p_state fp ~mask:(rand_mask rng (np - 1)) in
    let clane = List.filter (fun _ -> Random.State.bool rng) plane in
    let clane = if clane = [] then [ List.hd plane ] else clane in
    let cvids = List.map (fun l -> List.assoc l fp.C.t_out) clane in
    let fc = p_iface clane cvids in
    let sc = C.p_state fc ~mask:(rand_mask rng (List.length clane - 1)) in
    C.parent ~child:(sc, fc) ~parent:(sp, fp)

  (* one random bridge instance over disjoint lanes and vertex ids *)
  let random_bridge rng =
    let n1 = 1 + Random.State.int rng 3 and n2 = 1 + Random.State.int rng 3 in
    let l1 = List.init n1 (fun i -> i) in
    let l2 = List.init n2 (fun i -> n1 + i) in
    let v1 = distinct_vids rng ~lo:0 n1 in
    let v2 = distinct_vids rng ~lo:50 n2 in
    let f1 = p_iface l1 v1 and f2 = p_iface l2 v2 in
    let s1 = C.p_state f1 ~mask:(rand_mask rng (n1 - 1)) in
    let s2 = C.p_state f2 ~mask:(rand_mask rng (n2 - 1)) in
    let i = List.nth l1 (Random.State.int rng n1) in
    let j = List.nth l2 (Random.State.int rng n2) in
    C.bridge (s1, f1) (s2, f2) ~i ~j ~real:(Random.State.bool rng)

  let agree seed =
    let run on f =
      Memo.enabled := on;
      let r = f (Random.State.make [| seed; 13 |]) in
      Memo.enabled := true;
      r
    in
    let eq (st_on, f_on) (st_off, f_off) =
      Alg.equal st_on st_off && f_on = f_off && enc st_on = enc st_off
    in
    eq (run true random_parent) (run false random_parent)
    && eq (run true random_bridge) (run false random_bridge)
end

let compose_case name (module Alg : A.Algebra_sig.S) =
  let module D = Compose_diff (Alg) in
  qcheck ~count:500
    (Printf.sprintf "%s: memoized bridge/glue/forget = reference" name)
    arb_seed D.agree

let suite_compose =
  [
    compose_case "connected" (module A.Connectivity);
    compose_case "acyclic" (module A.Acyclicity);
    compose_case "bipartite" (module A.Bipartite);
    compose_case "triangle_free" (module A.Triangle_free);
    compose_case "perfect_matching" (module A.Matching);
  ]

(* ---------------------------------------------------------------- *)
(* hash audit: hash-equal must mean word-equal on the test corpus     *)

let hash_audit () =
  let seen : (int, int array) Hashtbl.t = Hashtbl.create 4096 in
  let collisions = ref 0 and keys = ref 0 in
  let audit (type s) (module Alg : A.Algebra_sig.S with type state = s) =
    let module R = Rand_state (Alg) in
    let rng = Random.State.make [| 2025; 8 |] in
    for _ = 1 to 1000 do
      let words = R.pack_words (R.gen rng) in
      let h = Packed.hash_words words ~len:(Array.length words) in
      incr keys;
      match Hashtbl.find_opt seen h with
      | None -> Hashtbl.replace seen h words
      | Some w' -> if w' <> words then incr collisions
    done
  in
  audit (module A.Connectivity);
  audit (module A.Acyclicity);
  audit (module A.Bipartite);
  audit (module A.Triangle_free);
  audit (module A.Matching);
  check "corpus is non-trivial" true (!keys = 5000);
  (* a 63-bit FNV over <= a few thousand keys: any collision between
     distinct word sequences would be astonishing — and harmless for
     soundness (the memo compares words), so this is a canary, not a
     soundness condition *)
  check_int "no distinct-word hash collisions in corpus" 0 !collisions;
  (* word-equal => hash-equal, and the arena hash matches the array
     hash (Buf.data exposes a larger backing array; len must bound it) *)
  let module R = Rand_state (A.Connectivity) in
  let rng = Random.State.make [| 4; 4 |] in
  for _ = 1 to 100 do
    let st = R.gen rng in
    let words = R.pack_words st in
    let buf = Packed.Buf.create 4 in
    A.Connectivity.pack buf st;
    check "Buf hash = contents hash" true
      (Packed.hash buf = Packed.hash_words words ~len:(Array.length words))
  done

(* ---------------------------------------------------------------- *)
(* memo semantics                                                    *)

let cap_eviction () =
  let module C = Lcp_cert.Compose.Make (A.Connectivity) in
  Memo.enabled := true;
  Memo.reset_counters ();
  let rounds = Memo.max_entries + 2048 in
  let max_seen = ref 0 in
  for i = 0 to rounds - 1 do
    let a = 2 * i and b = (2 * i) + 1 in
    let fa = { C.lanes = [ 0 ]; t_in = [ (0, a) ]; t_out = [ (0, a) ] } in
    let fb = { C.lanes = [ 1 ]; t_in = [ (1, b) ]; t_out = [ (1, b) ] } in
    let sa = C.v_state fa and sb = C.v_state fb in
    ignore (C.bridge (sa, fa) (sb, fb) ~i:0 ~j:1 ~real:true);
    let sz = C.memo_table_size () in
    if sz > !max_seen then max_seen := sz
  done;
  (* the live set stayed bounded by the cap the whole time *)
  check "memo live set bounded by cap" true (!max_seen <= Memo.max_entries);
  (* and the cap actually evicted: more distinct keys were inserted
     than the table ever held, and the survivor set is the post-reset
     remainder, not the full history *)
  check_int "every distinct bridge missed" rounds !Memo.misses;
  check "eviction happened" true (C.memo_table_size () < rounds);
  check_int "post-reset remainder" (rounds - Memo.max_entries)
    (C.memo_table_size ());
  check "intern table bounded too" true
    (C.intern_table_size () <= Memo.max_entries)

let scripted_counters () =
  let module C = Lcp_cert.Compose.Make (A.Connectivity) in
  Memo.enabled := true;
  Memo.reset_counters ();
  let fa = { C.lanes = [ 0 ]; t_in = [ (0, 10) ]; t_out = [ (0, 10) ] } in
  let fe = { C.lanes = [ 1 ]; t_in = [ (1, 1) ]; t_out = [ (1, 2) ] } in
  let sa = C.v_state fa in (* intern miss 1 *)
  let sa' = C.v_state fa in (* intern hit 1 *)
  check "intern returns the cached representative" true (sa == sa');
  let se = C.e_state fe ~real:true in (* intern miss 2 *)
  let b1 = C.bridge (sa, fa) (se, fe) ~i:0 ~j:1 ~real:false in
  (* memo miss 1 (bridge) *)
  let b2 = C.bridge (sa, fa) (se, fe) ~i:0 ~j:1 ~real:false in
  (* memo hit 1; cached state is physically shared *)
  check "bridge hit is physically shared" true (fst b1 == fst b2);
  let fc = snd b1 in
  let fp =
    {
      C.lanes = [ 0; 1 ];
      t_in = [ (0, 10); (1, 2) ];
      t_out = [ (0, 10); (1, 2) ];
    }
  in
  let sp = C.p_state fp ~mask:[ false ] in (* intern miss 3 *)
  let p1 = C.parent ~child:(sp, fp) ~parent:(fst b1, fc) in
  (* memo miss 2 (glue) + miss 3 (forget) *)
  let p2 = C.parent ~child:(sp, fp) ~parent:(fst b1, fc) in
  (* memo hits 2 and 3 *)
  check "parent hit is physically shared" true (fst p1 == fst p2);
  let expect =
    [
      ("memo_hit", 3);
      ("memo_miss", 3);
      ("intern_hit", 1);
      ("intern_miss", 3);
      ("memo_key_fallback", 0);
    ]
  in
  List.iter
    (fun (name, v) ->
      check_int ("scripted sequence: " ^ name) v
        (List.assoc name (Memo.counters ())))
    expect

let exceptions_never_cached () =
  let module C = Lcp_cert.Compose.Make (A.Connectivity) in
  Memo.enabled := true;
  Memo.reset_counters ();
  (* both parts claim vertex 5: the ifaces pass the lane checks, but
     A.union inside the memoized compute raises on the slot clash *)
  let f1 = { C.lanes = [ 0 ]; t_in = [ (0, 5) ]; t_out = [ (0, 5) ] } in
  let f2 = { C.lanes = [ 1 ]; t_in = [ (1, 5) ]; t_out = [ (1, 5) ] } in
  let s = C.v_state f1 in
  let boom () =
    match C.bridge (s, f1) (s, f2) ~i:0 ~j:1 ~real:false with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check "first compute raises" true (boom ());
  check "second compute raises again (not cached)" true (boom ());
  check_int "both were misses" 2 !Memo.misses;
  check_int "no hits" 0 !Memo.hits

(* a deliberately broken algebra: pack always raises. The memo must
   fall back to uncached computes, count them, and stay correct. *)
module Broken : A.Algebra_sig.S with type state = A.Connectivity.state = struct
  include A.Connectivity

  let pack _ _ = failwith "broken pack"
end

let key_fallback_counted () =
  let module C = Lcp_cert.Compose.Make (Broken) in
  Memo.enabled := true;
  Memo.reset_counters ();
  let fa = { C.lanes = [ 0 ]; t_in = [ (0, 3) ]; t_out = [ (0, 3) ] } in
  let fb = { C.lanes = [ 1 ]; t_in = [ (1, 4) ]; t_out = [ (1, 4) ] } in
  let sa = C.v_state fa and sb = C.v_state fb in
  let st1, _ = C.bridge (sa, fa) (sb, fb) ~i:0 ~j:1 ~real:true in
  let st2, _ = C.bridge (sa, fa) (sb, fb) ~i:0 ~j:1 ~real:true in
  check "fallback still computes the right class" true
    (Broken.equal st1 st2);
  (* 2 v_state interns + 2 bridges, all key-fallback; no memo traffic *)
  check_int "fallbacks counted" 4 (List.assoc "memo_key_fallback" (Memo.counters ()));
  check_int "no memo hits" 0 !Memo.hits;
  check_int "no memo misses" 0 !Memo.misses;
  check_int "fallback exported name" 4
    (List.assoc "memo_key_fallback" (Memo.counters ()))

(* ---------------------------------------------------------------- *)
(* memo on/off: byte-identical bundles for all registered properties *)

let families =
  [
    ("path10", Gen.path 10);
    ("cycle12", Gen.cycle 12);
    ( "pw2_24",
      fst (Gen.random_pathwidth (Random.State.make [| 7 |]) ~n:24 ~k:2 ()) );
  ]

let rep c =
  let g = PLS.Config.graph c in
  if G.n g <= 20 then Some (PW.exact_interval_representation g)
  else Some (PW.heuristic_interval_representation g)

let prove_bundle (module P : Registry.PROPERTY) g =
  let module T1 = Lcp_cert.Theorem1.Make (P.A) in
  let scheme = T1.edge_scheme ~rep ~k:2 () in
  let cfg = PLS.Config.random_ids (Random.State.make [| 42 |]) g in
  match scheme.S.es_prove cfg with
  | None -> None
  | Some labels ->
      let bundle =
        match Bundle.encode ~encode_label:scheme.S.es_encode g labels with
        | Ok b -> b
        | Error e -> Alcotest.failf "bundle encode failed: %s" e
      in
      Some (bundle, S.run_edge cfg scheme labels = S.Accepted)

let bundles_identical () =
  List.iter
    (fun name ->
      let prop = Option.get (Registry.find name) in
      List.iter
        (fun (fname, g) ->
          Memo.enabled := false;
          Memo.reset_counters ();
          let off = prove_bundle prop g in
          check_int
            (name ^ "/" ^ fname ^ ": zero memo traffic when disabled")
            0
            (!Memo.hits + !Memo.misses + !Memo.intern_hits
           + !Memo.intern_misses);
          Memo.enabled := true;
          let on = prove_bundle prop g in
          match (off, on) with
          | None, None -> ()
          | Some (b_off, ok_off), Some (b_on, ok_on) ->
              check (name ^ "/" ^ fname ^ ": bundles byte-identical") true
                (Bundle.equal b_off b_on);
              check (name ^ "/" ^ fname ^ ": verdicts identical") true
                (ok_off = ok_on)
          | _ ->
              Alcotest.failf "%s/%s: memo changed the prover's decision" name
                fname)
        families)
    (Registry.names ())

let suite_memo =
  [
    test "cap eviction at 2^16 keeps the live set bounded" cap_eviction;
    test "scripted sequence: exact hit/miss/intern counters"
      scripted_counters;
    test "compute exceptions are never cached" exceptions_never_cached;
    test "raising pack falls back uncached and is counted"
      key_fallback_counted;
    test "memo on/off: byte-identical bundles, all registered properties"
      bundles_identical;
  ]

let () =
  Alcotest.run "lcp-packed"
    [
      ("roundtrip", suite_roundtrip);
      ("compose-diff", suite_compose);
      ("hash-audit", [ test "hash-equal => word-equal over corpus" hash_audit ]);
      ("memo-semantics", suite_memo);
    ]

(* Fault tolerance / self-stabilization: the original motivation for proof
   labeling schemes (§1, [KKP10]).

     dune exec examples/self_stabilization.exe

   Scenario: a network maintains a certificate that its topology is a
   simple path (say, a token-passing chain). Transient faults corrupt the
   memory of some processors — their labels — or even the topology itself
   (a link flips, closing the chain into a ring). The local verifier is
   the detection layer: after every fault, at least one processor raises
   an alarm, and the (simulated) manager re-runs the prover to restore a
   legal state. We measure how many processors detect each fault — locality
   means faults are detected NEAR where they happen. *)

module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module PLS = Lcp_pls
module S = PLS.Scheme
module EM = S.Edge_map
module N = PLS.Network
module F = PLS.Fault
module Cert = Lcp_cert.Certificate
module T1 = Lcp_cert.Theorem1.Make (Lcp_algebra.Combinators.Is_path_graph)

let rng = Random.State.make [| 99 |]

let () =
  print_endline "=== Self-stabilizing path maintenance ===\n";
  let n = 24 in
  let g = Gen.path n in
  let cfg = PLS.Config.random_ids rng g in
  let scheme = T1.edge_scheme ~k:1 () in

  (* legal state: certificate installed *)
  let labels =
    match scheme.S.es_prove cfg with
    | Some l -> l
    | None -> failwith "prover declined on a path"
  in
  (match S.run_edge cfg scheme labels with
  | S.Accepted -> Printf.printf "legal state: all %d processors accept\n" n
  | S.Rejected _ -> failwith "legal state rejected");

  (* fault 1: memory corruption — processor memory holds edge labels; we
     corrupt a random field of a random label several times *)
  print_endline "\n-- transient memory faults --";
  for trial = 1 to 5 do
    let bindings = EM.bindings labels in
    let e, l = List.nth bindings (Random.State.int rng (List.length bindings)) in
    let corrupted =
      match trial mod 3 with
      | 0 -> { l with Cert.accept_state = false }
      | 1 ->
          {
            l with
            Cert.global_ptr =
              {
                l.Cert.global_ptr with
                PLS.Spanning_tree.target =
                  l.Cert.global_ptr.PLS.Spanning_tree.target lxor 1;
              };
          }
      | _ -> { l with Cert.frames = [] }
    in
    let faulty = EM.add labels e corrupted in
    match S.run_edge cfg scheme faulty with
    | S.Accepted -> Printf.printf "  fault %d at edge %d-%d: UNDETECTED (bug!)\n"
        trial (fst e) (snd e)
    | S.Rejected rs ->
        let detectors = List.map fst rs in
        Printf.printf
          "  fault %d at edge %d-%d: detected by %d processor(s): %s\n" trial
          (fst e) (snd e) (List.length rs)
          (String.concat "," (List.map string_of_int detectors))
  done;

  (* fault 2: topology change — the chain closes into a ring. Labels are
     unchanged (each processor kept its memory); the new edge carries a
     stale label copied from a neighbor, which is the worst case. *)
  print_endline "\n-- topology fault: chain closes into a ring --";
  let ring = G.add_edges g [ (0, n - 1) ] in
  let ring_cfg =
    PLS.Config.make ~ids:(Array.init n (PLS.Config.id cfg)) ring
  in
  let stale = snd (List.hd (EM.bindings labels)) in
  let ring_labels = EM.add labels (0, n - 1) stale in
  (match S.run_edge ring_cfg scheme ring_labels with
  | S.Accepted -> print_endline "  UNDETECTED (bug!)"
  | S.Rejected rs ->
      Printf.printf "  detected by %d processor(s)\n" (List.length rs));

  (* recovery: the manager reproves on the current topology; since a ring
     is not a path, the prover refuses — the alarm is permanent, which is
     exactly the desired behaviour for an illegal topology *)
  (match scheme.S.es_prove ring_cfg with
  | None -> print_endline "  recovery: prover refuses (ring is not a path)"
  | Some _ -> print_endline "  recovery: prover accepted a ring (bug!)");

  (* fault 3: a link failure splits the chain; the network reconfigures to
     the surviving prefix and REPROVES — stabilization succeeds *)
  print_endline "\n-- link failure and re-stabilization --";
  let m = 15 in
  let prefix = Gen.path m in
  let prefix_cfg =
    PLS.Config.make ~ids:(Array.init m (PLS.Config.id cfg)) prefix
  in
  (match scheme.S.es_prove prefix_cfg with
  | Some l2 ->
      (match S.run_edge prefix_cfg scheme l2 with
      | S.Accepted ->
          Printf.printf
            "  after losing edge %d-%d: reproved on the %d-processor prefix, \
             all accept\n"
            (m - 1) m m
      | S.Rejected _ -> print_endline "  reproof rejected (bug!)")
  | None -> print_endline "  reprove failed (bug!)");

  (* fault 4: the typed fault catalogue (Fault). Each model corrupts the
     honest network into a *world* — labels plus silent processors plus
     forged identifiers — and the classifier decides what the fault
     amounted to. Crashed and Byzantine processors raise no alarm
     themselves, so detection must come from their neighbors. The path
     algebra has no decoder, so bit-surgery models report "n/a". *)
  print_endline "\n-- the typed fault catalogue --";
  List.iter
    (fun spec ->
      let name = F.spec_name spec in
      match F.inject_edge ~rng cfg scheme labels spec with
      | None -> Printf.printf "  %-14s n/a (needs a label codec)\n" name
      | Some w -> (
          match F.classify_edge cfg scheme ~honest:labels w with
          | F.No_op -> Printf.printf "  %-14s no-op (%s)\n" name w.F.ew_note
          | F.Legal_rewrite ->
              Printf.printf "  %-14s legal rewrite — adopted silently\n" name
          | F.Detected { latency; detectors; _ } ->
              Printf.printf
                "  %-14s detected in %d round(s) by %d processor(s)%s\n" name
                latency (List.length detectors)
                (if w.F.ew_silent <> [] then
                   Printf.sprintf " (%d silent)" (List.length w.F.ew_silent)
                 else "")
          | F.Undetected_effective ->
              Printf.printf
                "  %-14s masked while live; the next honest round rejects\n"
                name))
    F.catalogue;

  (* fault 5: the self-stabilization driver — inject, detect, then repair
     by splicing fresh labels onto the rejecting region only (falling back
     to a global reinstall when the patch does not verify) *)
  print_endline "\n-- stabilization driver: detect, patch locally, confirm --";
  let bindings = EM.bindings labels in
  let nth_edge i = fst (List.nth bindings (i mod List.length bindings)) in
  let report =
    N.stabilize cfg scheme
      ~faults:
        [
          (fun ls -> EM.remove ls (nth_edge 2));
          (fun ls ->
            let e1 = nth_edge 4 and e2 = nth_edge 11 in
            let l1 = Option.get (EM.find ls e1)
            and l2 = Option.get (EM.find ls e2) in
            EM.add (EM.add ls e1 l2) e2 l1);
          (fun ls -> ls) (* a no-op: nothing observable, nothing detected *);
        ]
  in
  Printf.printf
    "  %d faults: %d detected (worst latency %d round), %d no-op\n"
    report.N.faults_injected report.N.detected report.N.max_detection_latency
    report.N.no_op;
  Printf.printf
    "  recovery: %d localized patch(es), %d global reproof(s), legal again: %b\n"
    report.N.localized_recoveries report.N.global_reproofs report.N.final_legal;

  print_endline "\nLocality: each fault was detected by processors adjacent\n\
                 to the corruption, not by a global scan."

(** The batch certification engine: materialize a job's graph, consult
    the content-addressed store, and run prove -> encode -> verify,
    timing each stage.

    Cache discipline (the soundness contract): a hit returns {e bytes}.
    The engine decodes them and runs the full local verifier on the
    decoded labeling under the requesting job's configuration before
    serving; if verification rejects (corrupt entry, stale bundle, or an
    id assignment the certificate was not proved for), the entry is
    dropped and the job falls through to the fresh prover path. A miss
    runs the prover, locally verifies the fresh bundle, and only then
    stores and serves it. The cache can therefore change {e latency} but
    never {e judgements}.

    Availability discipline (the robustness contract): [run_job] is
    total. Bad inputs are [Input_error]s, disk faults are absorbed
    inside the store (which degrades to memory-only under persistent
    failure — such jobs report [Served_degraded]), and any exception a
    job attempt raises is retried under a bounded, deterministic
    backoff policy with a per-job deadline budget; a job that exhausts
    its budget ends as [Failed], never as an escaped exception that
    would abort the batch. The one deliberate exception is
    [Blob_io.Crashed] — a simulated process death must kill the batch,
    that is its meaning. *)

module Graph = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module Rep = Lcp_interval.Representation
module PW = Lcp_interval.Pathwidth
module Config = Lcp_pls.Config
module Scheme = Lcp_pls.Scheme
module EM = Scheme.Edge_map
module Bitenc = Lcp_util.Bitenc

type retry_policy = {
  max_retries : int;  (** attempts beyond the first (0 = fail fast) *)
  backoff_ms : float;  (** base delay; attempt [i] waits [backoff_ms * 2^i] *)
  deadline_ms : float;  (** per-job budget: no retry is scheduled past it *)
}

let default_retry =
  { max_retries = 2; backoff_ms = 1.0; deadline_ms = Float.infinity }

(* deterministic backoff schedule: 1x, 2x, 4x, ... of the base delay *)
let backoff_delay policy attempt =
  policy.backoff_ms *. Float.of_int (1 lsl attempt)

type t = {
  store : Cert_store.t;
  base_dir : string;  (** file= paths in manifests resolve against this *)
  retry : retry_policy;
  timing : Timing.t option;
      (** when present, every pipeline stage records its duration here *)
}

let create ?(cache_cap = 4096) ?cache_dir ?(cache_disk_cap = 0)
    ?(degrade_after = 3) ?write_batch ?filter_bits ?io ?(retry = default_retry)
    ?(base_dir = ".") ?timing () =
  {
    store =
      Cert_store.create ~cap:cache_cap ?dir:cache_dir ~disk_cap:cache_disk_cap
        ~degrade_after ?write_batch ?filter_bits ?io ();
    base_dir;
    retry;
    timing;
  }

let store t = t.store

(* Commit any records still pooled in the store's group-commit dirty
   set. Runners call this at batch/stream boundaries and on worker
   exit; with the default [write_batch = 1] it is a no-op. *)
let flush t = Cert_store.flush t.store

let retry t = t.retry

let base_dir t = t.base_dir

let now_ms () = Unix.gettimeofday () *. 1000.0

(** Run [f attempt] until it returns, retrying on any exception except
    [Blob_io.Crashed] (simulated process death must propagate). Retries
    follow the deterministic doubling backoff and stop when either
    [max_retries] attempts beyond the first are spent or the next delay
    would overrun the [deadline_ms] budget. Returns [Ok (v, retries)] or
    [Error (message, retries)] — never raises (modulo [Crashed]). *)
let with_retries ~retry ~now f =
  let start = now () in
  let rec go attempt =
    match f attempt with
    | v -> Ok (v, attempt)
    | exception Blob_io.Crashed p -> raise (Blob_io.Crashed p)
    | exception e ->
        let elapsed = now () -. start in
        let delay = backoff_delay retry attempt in
        if attempt >= retry.max_retries then
          Error
            ( Printf.sprintf "gave up after %d attempt(s): %s" (attempt + 1)
                (Printexc.to_string e),
              attempt )
        else if elapsed +. delay > retry.deadline_ms then
          Error
            ( Printf.sprintf
                "deadline budget exhausted after %d attempt(s) (%.1f of %.1f \
                 ms): %s"
                (attempt + 1) elapsed retry.deadline_ms (Printexc.to_string e),
              attempt )
        else begin
          if delay > 0.0 then Unix.sleepf (delay /. 1000.0);
          go (attempt + 1)
        end
  in
  go 0

let known_families =
  [ "path"; "cycle"; "caterpillar"; "ladder"; "star"; "tree"; "random" ]

let graph_of_source ~base_dir ~k source =
  match source with
  | Manifest.File f ->
      let path = if Filename.is_relative f then Filename.concat base_dir f else f in
      Graph_io.load_file path
  | Manifest.Generated { family; n; gen_seed } -> (
      if not (List.mem family known_families) then
        Error
          (Printf.sprintf "unknown generator family %S (known: %s)" family
             (String.concat ", " known_families))
        (* every family requires n >= 1 — a zero or negative n must fail
           here as an input error, not reach a generator's Bytes.create *)
      else if n < 1 then
        Error (Printf.sprintf "gen=%s needs n >= 1 (got n=%d)" family n)
      else
        let rng = Random.State.make [| gen_seed |] in
        match family with
        | "path" -> Ok (Gen.path n)
        | "cycle" when n >= 3 -> Ok (Gen.cycle n)
        | "cycle" -> Error (Printf.sprintf "gen=cycle needs n >= 3 (got n=%d)" n)
        | "caterpillar" -> Ok (Gen.caterpillar ~spine:(max 1 (n / 3)) ~legs:2)
        | "ladder" -> Ok (Gen.ladder (max 2 (n / 2)))
        | "star" -> Ok (Gen.star (max 1 (n - 1)))
        | "tree" -> Ok (Gen.random_tree rng n)
        | "random" -> Ok (fst (Gen.random_pathwidth rng ~n ~k ()))
        | _ -> assert false)

let default_rep c =
  let g = Config.graph c in
  if Graph.n g <= 20 then Some (PW.exact_interval_representation g)
  else Some (PW.heuristic_interval_representation g)

let run_once t (job : Manifest.job) : Stats.job_report =
  let t0 = now_ms () in
  let base ?(n = 0) ?(m = 0) status =
    {
      Stats.r_id = job.job_id;
      r_property = job.property;
      r_k = job.k;
      r_n = n;
      r_m = m;
      r_status = status;
      r_cache_hit = false;
      r_prove_ms = 0.0;
      r_verify_ms = 0.0;
      r_total_ms = now_ms () -. t0;
      r_label_bits = 0;
      r_bundle_bits = 0;
      r_reject_reasons = [];
      r_retries = 0;
    }
  in
  match
    Timing.time t.timing Timing.Parse (fun () ->
        graph_of_source ~base_dir:t.base_dir ~k:job.k job.source)
  with
  | Error e -> base (Stats.Input_error e)
  | Ok g -> (
      let n = Graph.n g and m = Graph.m g in
      match Registry.find job.property with
      | None ->
          base ~n ~m
            (Stats.Input_error
               (Printf.sprintf "unknown property %S; catalogue: %s"
                  job.property
                  (String.concat ", " (Registry.names ()))))
      | Some (module P) -> (
          let module T1 = Lcp_cert.Theorem1.Make (P.A) in
          let scheme = T1.edge_scheme ~rep:default_rep ~k:job.k () in
          let decode_label =
            Lcp_cert.Certificate.decode ~decode_state:P.decode_state
          in
          let cfg = Config.random_ids (Random.State.make [| job.seed |]) g in
          let key = Cert_store.key ~property:job.property ~k:job.k g in
          let verify_labels labels =
            let tv = now_ms () in
            let outcome =
              Timing.time t.timing Timing.Verify (fun () ->
                  Scheme.run_edge cfg scheme labels)
            in
            (outcome, now_ms () -. tv)
          in
          (* 1. cache tier: decode + re-verify before serving *)
          let cached =
            match
              Timing.time t.timing Timing.Store (fun () ->
                  Cert_store.find t.store key)
            with
            | None -> None
            | Some entry -> (
                match Bundle.decode ~decode_label g entry.Cert_store.e_bundle with
                | Error e ->
                    Cert_store.remove t.store key;
                    Some (Error [ "bundle: " ^ e ])
                | Ok labels -> (
                    match verify_labels labels with
                    | Scheme.Accepted, verify_ms ->
                        Some (Ok (entry, verify_ms))
                    | Scheme.Rejected rs, _ ->
                        Cert_store.remove t.store key;
                        Some
                          (Error
                             (List.sort_uniq compare
                                (List.map
                                   (fun (_, reason) ->
                                     Lcp_cert.Reject_reason.classify reason)
                                   rs)))))
          in
          match cached with
          | Some (Ok (entry, verify_ms)) ->
              {
                (base ~n ~m Stats.Served_cached) with
                r_cache_hit = true;
                r_verify_ms = verify_ms;
                r_label_bits = entry.Cert_store.e_label_bits;
                r_bundle_bits = Bundle.size_bits entry.Cert_store.e_bundle;
                r_total_ms = now_ms () -. t0;
              }
          | (None | Some (Error _)) as cache_outcome -> (
              let reject_reasons =
                match cache_outcome with Some (Error rs) -> rs | _ -> []
              in
              (* 2. fresh path: prove, encode, verify, store *)
              let tp = now_ms () in
              match
                Timing.time t.timing Timing.Prove (fun () ->
                    scheme.Scheme.es_prove cfg)
              with
              | None ->
                  {
                    (base ~n ~m Stats.Declined) with
                    r_prove_ms = now_ms () -. tp;
                    r_reject_reasons = reject_reasons;
                    r_total_ms = now_ms () -. t0;
                  }
              | Some labels -> (
                  let prove_ms = now_ms () -. tp in
                  match
                    Timing.time t.timing Timing.Encode (fun () ->
                        Bundle.encode ~encode_label:scheme.Scheme.es_encode g
                          labels)
                  with
                  | Error e ->
                      {
                        (base ~n ~m (Stats.Unsound e)) with
                        r_prove_ms = prove_ms;
                        r_total_ms = now_ms () -. t0;
                      }
                  | Ok bundle -> (
                      match verify_labels labels with
                      | Scheme.Rejected rs, verify_ms ->
                          let reasons =
                            List.sort_uniq compare
                              (List.map
                                 (fun (_, reason) ->
                                   Lcp_cert.Reject_reason.classify reason)
                                 rs)
                          in
                          {
                            (base ~n ~m
                               (Stats.Unsound
                                  (Printf.sprintf
                                     "fresh bundle rejected locally: %s"
                                     (String.concat ", " reasons))))
                            with
                            r_prove_ms = prove_ms;
                            r_verify_ms = verify_ms;
                            r_reject_reasons = reject_reasons;
                            r_total_ms = now_ms () -. t0;
                          }
                      | Scheme.Accepted, verify_ms ->
                          let label_bits =
                            Scheme.max_edge_label_bits scheme labels
                          in
                          Timing.time t.timing Timing.Store (fun () ->
                              Cert_store.add t.store
                                {
                                  Cert_store.e_key = key;
                                  e_bundle = bundle;
                                  e_label_bits = label_bits;
                                });
                          {
                            (base ~n ~m Stats.Served_fresh) with
                            r_prove_ms = prove_ms;
                            r_verify_ms = verify_ms;
                            r_label_bits = label_bits;
                            r_bundle_bits = Bundle.size_bits bundle;
                            r_reject_reasons = reject_reasons;
                            r_total_ms = now_ms () -. t0;
                          })))))

(* The total, retrying entry point: every job reaches a terminal status.
   [?retry] overrides the engine's policy for this one job — the daemon
   uses it to honor a per-job deadline carried in the request without
   rebuilding the (long-lived, cache-warm) engine. *)
let run_job ?retry:retry_override t (job : Manifest.job) : Stats.job_report =
  let t0 = now_ms () in
  let retry = Option.value retry_override ~default:t.retry in
  match with_retries ~retry ~now:now_ms (fun _attempt -> run_once t job) with
  | Ok (report, retries) ->
      let report =
        { report with Stats.r_retries = retries; r_total_ms = now_ms () -. t0 }
      in
      (* a success under a demoted (memory-only) store is still a
         success, but the operator must see it in the status *)
      if
        Cert_store.degraded t.store
        &&
        match report.Stats.r_status with
        | Stats.Served_fresh | Stats.Served_cached -> true
        | _ -> false
      then { report with Stats.r_status = Stats.Served_degraded }
      else report
  | Error (msg, retries) ->
      {
        Stats.r_id = job.job_id;
        r_property = job.property;
        r_k = job.k;
        r_n = 0;
        r_m = 0;
        r_status = Stats.Failed msg;
        r_cache_hit = false;
        r_prove_ms = 0.0;
        r_verify_ms = 0.0;
        r_total_ms = now_ms () -. t0;
        r_label_bits = 0;
        r_bundle_bits = 0;
        r_reject_reasons = [];
        r_retries = retries;
      }

(* The delta-session entry point: the same totality/retry/degraded
   contract as [run_job], for a step computed by the caller. [Delta]
   sits above the engine in the module graph (it needs the registry and
   the store), so the engine only sees "a job-shaped computation": the
   step must be effect-free until it returns — a retried attempt reruns
   it whole — and commits its session state exactly when it produces a
   report. [Blob_io.Crashed] propagates, as everywhere. *)
let run_delta_job ?retry:retry_override t ~job_id ~property ~k
    ~(fallback_info : 'info) (step : attempt:int -> Stats.job_report * 'info) :
    Stats.job_report * 'info =
  let t0 = now_ms () in
  let retry = Option.value retry_override ~default:t.retry in
  match with_retries ~retry ~now:now_ms (fun attempt -> step ~attempt) with
  | Ok ((report, info), retries) ->
      let report =
        { report with Stats.r_retries = retries; r_total_ms = now_ms () -. t0 }
      in
      let report =
        if
          Cert_store.degraded t.store
          &&
          match report.Stats.r_status with
          | Stats.Served_fresh | Stats.Served_cached -> true
          | _ -> false
        then { report with Stats.r_status = Stats.Served_degraded }
        else report
      in
      (report, info)
  | Error (msg, retries) ->
      ( {
          Stats.r_id = job_id;
          r_property = property;
          r_k = k;
          r_n = 0;
          r_m = 0;
          r_status = Stats.Failed msg;
          r_cache_hit = false;
          r_prove_ms = 0.0;
          r_verify_ms = 0.0;
          r_total_ms = now_ms () -. t0;
          r_label_bits = 0;
          r_bundle_bits = 0;
          r_reject_reasons = [];
          r_retries = retries;
        },
        fallback_info )

(* Copy the process-global composition-memo counters and the GC minor
   allocation count into the timing sink, where they render next to the
   histogram and merge across pool workers. Counters are process-wide
   cumulative totals, so [set_counter] (overwrite) keeps one snapshot
   per process; the pool's [absorb] then sums across processes. *)
let snapshot_counters t =
  match t.timing with
  | None -> ()
  | Some timing ->
      List.iter
        (fun (name, v) -> Timing.set_counter timing name v)
        (Lcp_cert.Memo.counters ());
      (* negative-lookup filter and group-commit traffic, so the certd
         footer and --server-stats can show disk probes saved/paid *)
      let s = Cert_store.stats t.store in
      Timing.set_counter timing "filter_hit" s.Cert_store.filter_hits;
      Timing.set_counter timing "filter_skip" s.Cert_store.filter_skips;
      Timing.set_counter timing "filter_fp" s.Cert_store.filter_fps;
      Timing.set_counter timing "store_flush" s.Cert_store.flushes;
      Timing.set_counter timing "minor_words"
        (int_of_float (Gc.minor_words ()))

(* Reports are emitted and returned in canonical order (sorted by job
   id), not arrival order, so the JSONL stream of a sequential run is
   byte-comparable with any sharded run of the same manifest. *)
let run_jobs ?(emit = fun (_ : Stats.job_report) -> ()) t jobs =
  let reports = Stats.sort_reports (List.map (run_job t) jobs) in
  List.iter emit reports;
  flush t;
  snapshot_counters t;
  (reports, Stats.summarize reports)

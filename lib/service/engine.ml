(** The batch certification engine: materialize a job's graph, consult
    the content-addressed store, and run prove -> encode -> verify,
    timing each stage.

    Cache discipline (the soundness contract): a hit returns {e bytes}.
    The engine decodes them and runs the full local verifier on the
    decoded labeling under the requesting job's configuration before
    serving; if verification rejects (corrupt entry, stale bundle, or an
    id assignment the certificate was not proved for), the entry is
    dropped and the job falls through to the fresh prover path. A miss
    runs the prover, locally verifies the fresh bundle, and only then
    stores and serves it. The cache can therefore change {e latency} but
    never {e judgements}. *)

module Graph = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module Rep = Lcp_interval.Representation
module PW = Lcp_interval.Pathwidth
module Config = Lcp_pls.Config
module Scheme = Lcp_pls.Scheme
module EM = Scheme.Edge_map
module Bitenc = Lcp_util.Bitenc

type t = {
  store : Cert_store.t;
  base_dir : string;  (** file= paths in manifests resolve against this *)
}

let create ?(cache_cap = 4096) ?cache_dir ?(base_dir = ".") () =
  { store = Cert_store.create ~cap:cache_cap ?dir:cache_dir (); base_dir }

let store t = t.store

let now_ms () = Unix.gettimeofday () *. 1000.0

let known_families =
  [ "path"; "cycle"; "caterpillar"; "ladder"; "star"; "tree"; "random" ]

let graph_of_source ~base_dir ~k source =
  match source with
  | Manifest.File f ->
      let path = if Filename.is_relative f then Filename.concat base_dir f else f in
      Graph_io.load_file path
  | Manifest.Generated { family; n; gen_seed } -> (
      let rng = Random.State.make [| gen_seed |] in
      match family with
      | "path" -> Ok (Gen.path n)
      | "cycle" when n >= 3 -> Ok (Gen.cycle n)
      | "cycle" -> Error "gen=cycle needs n >= 3"
      | "caterpillar" -> Ok (Gen.caterpillar ~spine:(max 1 (n / 3)) ~legs:2)
      | "ladder" -> Ok (Gen.ladder (max 2 (n / 2)))
      | "star" -> Ok (Gen.star (max 1 (n - 1)))
      | "tree" -> Ok (Gen.random_tree rng n)
      | "random" -> Ok (fst (Gen.random_pathwidth rng ~n ~k ()))
      | f ->
          Error
            (Printf.sprintf "unknown generator family %S (known: %s)" f
               (String.concat ", " known_families)))

let default_rep c =
  let g = Config.graph c in
  if Graph.n g <= 20 then Some (PW.exact_interval_representation g)
  else Some (PW.heuristic_interval_representation g)

let run_job t (job : Manifest.job) : Stats.job_report =
  let t0 = now_ms () in
  let base ?(n = 0) ?(m = 0) status =
    {
      Stats.r_id = job.job_id;
      r_property = job.property;
      r_k = job.k;
      r_n = n;
      r_m = m;
      r_status = status;
      r_cache_hit = false;
      r_prove_ms = 0.0;
      r_verify_ms = 0.0;
      r_total_ms = now_ms () -. t0;
      r_label_bits = 0;
      r_bundle_bits = 0;
      r_reject_reasons = [];
    }
  in
  match graph_of_source ~base_dir:t.base_dir ~k:job.k job.source with
  | Error e -> base (Stats.Input_error e)
  | Ok g -> (
      let n = Graph.n g and m = Graph.m g in
      match Registry.find job.property with
      | None ->
          base ~n ~m
            (Stats.Input_error
               (Printf.sprintf "unknown property %S; catalogue: %s"
                  job.property
                  (String.concat ", " (Registry.names ()))))
      | Some (module P) -> (
          let module T1 = Lcp_cert.Theorem1.Make (P.A) in
          let scheme = T1.edge_scheme ~rep:default_rep ~k:job.k () in
          let decode_label =
            Lcp_cert.Certificate.decode ~decode_state:P.decode_state
          in
          let cfg = Config.random_ids (Random.State.make [| job.seed |]) g in
          let key = Cert_store.key ~property:job.property ~k:job.k g in
          let verify_labels labels =
            let tv = now_ms () in
            let outcome = Scheme.run_edge cfg scheme labels in
            (outcome, now_ms () -. tv)
          in
          (* 1. cache tier: decode + re-verify before serving *)
          let cached =
            match Cert_store.find t.store key with
            | None -> None
            | Some entry -> (
                match Bundle.decode ~decode_label g entry.Cert_store.e_bundle with
                | Error e ->
                    Cert_store.remove t.store key;
                    Some (Error [ "bundle: " ^ e ])
                | Ok labels -> (
                    match verify_labels labels with
                    | Scheme.Accepted, verify_ms ->
                        Some (Ok (entry, verify_ms))
                    | Scheme.Rejected rs, _ ->
                        Cert_store.remove t.store key;
                        Some
                          (Error
                             (List.sort_uniq compare
                                (List.map
                                   (fun (_, reason) ->
                                     Lcp_cert.Reject_reason.classify reason)
                                   rs)))))
          in
          match cached with
          | Some (Ok (entry, verify_ms)) ->
              {
                (base ~n ~m Stats.Served_cached) with
                r_cache_hit = true;
                r_verify_ms = verify_ms;
                r_label_bits = entry.Cert_store.e_label_bits;
                r_bundle_bits = Bundle.size_bits entry.Cert_store.e_bundle;
                r_total_ms = now_ms () -. t0;
              }
          | (None | Some (Error _)) as cache_outcome -> (
              let reject_reasons =
                match cache_outcome with Some (Error rs) -> rs | _ -> []
              in
              (* 2. fresh path: prove, encode, verify, store *)
              let tp = now_ms () in
              match scheme.Scheme.es_prove cfg with
              | None ->
                  {
                    (base ~n ~m Stats.Declined) with
                    r_prove_ms = now_ms () -. tp;
                    r_reject_reasons = reject_reasons;
                    r_total_ms = now_ms () -. t0;
                  }
              | Some labels -> (
                  let prove_ms = now_ms () -. tp in
                  match
                    Bundle.encode ~encode_label:scheme.Scheme.es_encode g
                      labels
                  with
                  | Error e ->
                      {
                        (base ~n ~m (Stats.Unsound e)) with
                        r_prove_ms = prove_ms;
                        r_total_ms = now_ms () -. t0;
                      }
                  | Ok bundle -> (
                      match verify_labels labels with
                      | Scheme.Rejected rs, verify_ms ->
                          let reasons =
                            List.sort_uniq compare
                              (List.map
                                 (fun (_, reason) ->
                                   Lcp_cert.Reject_reason.classify reason)
                                 rs)
                          in
                          {
                            (base ~n ~m
                               (Stats.Unsound
                                  (Printf.sprintf
                                     "fresh bundle rejected locally: %s"
                                     (String.concat ", " reasons))))
                            with
                            r_prove_ms = prove_ms;
                            r_verify_ms = verify_ms;
                            r_reject_reasons = reject_reasons;
                            r_total_ms = now_ms () -. t0;
                          }
                      | Scheme.Accepted, verify_ms ->
                          let label_bits =
                            Scheme.max_edge_label_bits scheme labels
                          in
                          Cert_store.add t.store
                            {
                              Cert_store.e_key = key;
                              e_bundle = bundle;
                              e_label_bits = label_bits;
                            };
                          {
                            (base ~n ~m Stats.Served_fresh) with
                            r_prove_ms = prove_ms;
                            r_verify_ms = verify_ms;
                            r_label_bits = label_bits;
                            r_bundle_bits = Bundle.size_bits bundle;
                            r_reject_reasons = reject_reasons;
                            r_total_ms = now_ms () -. t0;
                          })))))

let run_jobs ?(emit = fun (_ : Stats.job_report) -> ()) t jobs =
  let reports =
    List.map
      (fun job ->
        let r = run_job t job in
        emit r;
        r)
      jobs
  in
  (reports, Stats.summarize reports)

(** The content-addressed certificate store. A key is the canonical bit
    encoding of (property, k, graph) hashed with 64-bit FNV-1a
    ([Lcp_util.Hash64]); the canonical bytes travel with the key, and
    every lookup compares them, so a hash collision degrades to a miss
    instead of serving a bundle for the wrong instance.

    The in-memory tier is a bounded LRU (hashtable + intrusive doubly
    linked list, O(1) hit/insert/evict). An optional on-disk tier
    persists encoded bundles as [<hex-hash>.cert] files; entries evicted
    from memory remain loadable from disk, and disk loads re-check the
    canonical bytes too.

    All disk I/O goes through an injectable [Blob_io.t], and the disk
    tier is {e survivable} by construction:

    - every record carries an FNV-1a checksum over its header fields and
      payload, verified {e before} any decode — torn writes and bit rot
      are detected, counted as [corrupt], and the file is moved to
      [quarantine/] for post-mortem instead of silently deleted;
    - records are written tmp-then-rename; orphaned [.tmp] files left by
      a crash are swept (and counted) when the store is reopened;
    - the disk tier has an optional capacity ([disk_cap] records),
      enforced by LRU-by-mtime GC (disk hits touch the file's mtime);
    - a disk fault ([Sys_error]) never escapes the store: it is counted
      in [disk_errors], and [degrade_after] consecutive failures demote
      the store to memory-only ([degraded]) — the service keeps
      answering, just without persistence. A simulated crash
      ([Blob_io.Crashed]) {e does} propagate, by design.

    Two scale controls sit in front of and behind the disk tier:

    - a {e negative-lookup filter} ([Lcp_util.Negf], a blocked Bloom
      filter over the key hashes this process has written or seeded
      from the directory) lets guaranteed-miss lookups skip the
      filesystem probe entirely; it has no false negatives within a
      process, and across processes a stale "absent" only costs a
      recompute of a byte-identical content-addressed record;
    - {e group commit} ([write_batch] > 1): admitted records pool in a
      bounded dirty set and are written tmp-then-rename in one burst
      with a single directory fsync per batch. A crash loses at most
      the unflushed tail (future cache misses, never corruption); a
      torn record inside a batch is caught by its checksum like any
      other.

    Soundness note: the store caches {e bytes}, never trust. The
    checksum defends availability (detect corruption before decode);
    the engine still decodes and locally re-verifies every bundle it
    serves from here, so even a checksum collision cannot change a
    judgement. *)

module Hash64 = Lcp_util.Hash64
module Bitenc = Lcp_util.Bitenc
module Graph = Lcp_graph.Graph
module Blob = Blob_io

type key = { hash : Hash64.t; canon : Bytes.t }

let key ~property ~k g =
  let w = Bitenc.writer () in
  Bitenc.varint w (String.length property);
  String.iter (fun c -> Bitenc.bits w ~width:8 (Char.code c)) property;
  Bitenc.varint w k;
  Bitenc.varint w (Graph.n g);
  Bitenc.varint w (Graph.m g);
  (* edges in canonical order, delta-coded on the tail vertex *)
  let _ =
    Graph.fold_edges
      (fun (u, v) prev_u ->
        Bitenc.varint w (u - prev_u);
        Bitenc.varint w v;
        u)
      g 0
  in
  let canon = Bitenc.to_bytes w in
  { hash = Hash64.of_bytes canon; canon }

let key_hex key = Hash64.to_hex key.hash

type entry = {
  e_key : key;
  e_bundle : Bundle.t;
  e_label_bits : int;  (** max bits of a single edge label, for stats *)
}

(* ---------------------------------------------------------------- *)
(* LRU list                                                          *)

type node = {
  mutable entry : entry;
  mutable prev : node option;
  mutable next : node option;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable disk_loads : int;
  mutable drops : int;  (** entries removed after failing re-verification *)
  mutable disk_errors : int;  (** Sys_errors absorbed at the store boundary *)
  mutable corrupt : int;  (** records failing checksum/parse before decode *)
  mutable quarantined : int;  (** corrupt records moved to quarantine/ *)
  mutable orphans_swept : int;  (** .tmp files removed on create *)
  mutable gc_evictions : int;  (** disk records removed by capacity GC *)
  mutable quarantine_evictions : int;
      (** quarantined records dropped by the quarantine capacity cap *)
  mutable filter_hits : int;
      (** disk probes the negative-lookup filter let through that found
          a record *)
  mutable filter_skips : int;
      (** filesystem probes skipped because the filter proved the key
          was never written by this process *)
  mutable filter_fps : int;
      (** filter said "maybe" but the probe found nothing: false
          positives (includes keys removed/GCed after insertion) *)
  mutable flushes : int;  (** group commits of the batched write path *)
}

type t = {
  cap : int;
  dir : string option;
  io : Blob.t;
  disk_cap : int;  (** max .cert files on disk; <= 0 means unbounded *)
  quarantine_cap : int;  (** max files kept in quarantine/; <= 0 unbounded *)
  degrade_after : int;
  write_batch : int;  (** group-commit size; <= 1 writes through *)
  mutable degraded : bool;
  mutable disk_failures_in_row : int;
  table : (Hash64.t, node) Hashtbl.t;
  mutable first : node option; (* most recently used *)
  mutable last : node option; (* least recently used *)
  (* group-commit dirty set: entries admitted to the disk tier but not
     yet written. [dirty_q] remembers insertion order so a flush
     commits records in admission order; superseded/removed hashes are
     skipped at flush time. Bounded by [write_batch]. *)
  dirty : (Hash64.t, entry) Hashtbl.t;
  dirty_q : Hash64.t Queue.t;
  (* negative-lookup filter over every key this process has written to
     (or seeded from) the disk tier; [None] when the filter is
     disabled or there is no disk tier *)
  filter : Lcp_util.Negf.t option;
  stats : stats;
}

(* creation failures must be loud and immediate: a store that cannot
   make its directory would otherwise fail later with a baffling rename
   error on the first write *)
let mkdir_p io d =
  let rec go d =
    if not (io.Blob.file_exists d) then begin
      let parent = Filename.dirname d in
      if parent <> d then go parent;
      io.Blob.mkdir d
    end
    else if not (io.Blob.is_directory d) then
      raise (Sys_error (d ^ ": exists but is not a directory"))
  in
  go d

let disk_error t =
  t.stats.disk_errors <- t.stats.disk_errors + 1;
  t.disk_failures_in_row <- t.disk_failures_in_row + 1;
  if (not t.degraded) && t.disk_failures_in_row >= t.degrade_after then
    t.degraded <- true

let disk_ok t = t.disk_failures_in_row <- 0

let is_tmp f = Filename.check_suffix f ".tmp"

let sweep_orphans t dir =
  try
    Array.iter
      (fun f ->
        if is_tmp f then begin
          t.io.Blob.remove (Filename.concat dir f);
          t.stats.orphans_swept <- t.stats.orphans_swept + 1
        end)
      (t.io.Blob.list_dir dir)
  with Sys_error _ -> disk_error t

(* Seed the negative-lookup filter from the records already on disk:
   file names are the hex key hashes, so a directory listing is enough
   — no record is opened. Records written later by sibling workers
   sharing this directory are invisible to the filter; skipping their
   probe only costs a recompute of byte-identical content-addressed
   records, never a judgement (see the soundness note above). *)
let seed_filter t dir filter =
  try
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".cert" then
          match Hash64.of_hex (Filename.chop_suffix f ".cert") with
          | Some h -> Lcp_util.Negf.add filter h
          | None -> ())
      (t.io.Blob.list_dir dir)
  with Sys_error _ -> disk_error t

let create ?(cap = 4096) ?dir ?(disk_cap = 0) ?(quarantine_cap = 64)
    ?(degrade_after = 3) ?(write_batch = 1) ?(filter_bits = 1 lsl 17)
    ?(io = Blob.real) () =
  if cap < 1 then invalid_arg "Cert_store.create: cap must be >= 1";
  if degrade_after < 1 then
    invalid_arg "Cert_store.create: degrade_after must be >= 1";
  (match dir with
  | Some d -> (
      try mkdir_p io d
      with Sys_error e ->
        raise
          (Sys_error
             (Printf.sprintf
                "Cert_store.create: cannot create cache directory %S: %s" d e)))
  | None -> ());
  let filter =
    match dir with
    | Some _ when filter_bits > 0 -> Some (Lcp_util.Negf.create ~bits:filter_bits ())
    | _ -> None
  in
  let t =
    {
      cap;
      dir;
      io;
      disk_cap;
      quarantine_cap;
      degrade_after;
      write_batch = max 1 write_batch;
      degraded = false;
      disk_failures_in_row = 0;
      table = Hashtbl.create 64;
      first = None;
      last = None;
      dirty = Hashtbl.create 64;
      dirty_q = Queue.create ();
      filter;
      stats =
        {
          hits = 0;
          misses = 0;
          insertions = 0;
          evictions = 0;
          disk_loads = 0;
          drops = 0;
          disk_errors = 0;
          corrupt = 0;
          quarantined = 0;
          orphans_swept = 0;
          gc_evictions = 0;
          quarantine_evictions = 0;
          filter_hits = 0;
          filter_skips = 0;
          filter_fps = 0;
          flushes = 0;
        };
    }
  in
  (match dir with
  | Some d ->
      sweep_orphans t d;
      (match filter with Some f -> seed_filter t d f | None -> ())
  | None -> ());
  t

let size t = Hashtbl.length t.table

let stats t = t.stats

let degraded t = t.degraded

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.first <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.first;
  node.prev <- None;
  (match t.first with Some f -> f.prev <- Some node | None -> t.last <- Some node);
  t.first <- Some node

(* ---------------------------------------------------------------- *)
(* on-disk tier                                                      *)

let magic = "LCPCERT1"

let entry_path dir key = Filename.concat dir (key_hex key ^ ".cert")

let quarantine_dir dir = Filename.concat dir "quarantine"

(* the checksum covers the header's structural fields and the whole
   payload, so any single corrupted bit — header or body — is caught
   before a decoder ever runs *)
let record_sum ~canon ~bits ~label_bits ~(payload : Bytes.t) =
  Hash64.init
  |> Fun.flip Hash64.int (Bytes.length canon)
  |> Fun.flip Hash64.int bits
  |> Fun.flip Hash64.int label_bits
  |> Fun.flip Hash64.bytes canon
  |> Fun.flip Hash64.bytes payload

let record_string entry =
  let canon = entry.e_key.canon in
  let bits = Bundle.size_bits entry.e_bundle in
  let payload = entry.e_bundle.Bundle.bytes in
  let sum = record_sum ~canon ~bits ~label_bits:entry.e_label_bits ~payload in
  let b = Buffer.create (64 + Bytes.length canon + Bytes.length payload) in
  Buffer.add_string b magic;
  Buffer.add_string b
    (Printf.sprintf "\ncanon=%d bits=%d labelbits=%d sum=%s\n"
       (Bytes.length canon) bits entry.e_label_bits (Hash64.to_hex sum));
  Buffer.add_bytes b canon;
  Buffer.add_bytes b payload;
  Buffer.contents b

(* [Ok (Some e)]: sound record for [key]. [Ok None]: intact record for a
   different instance (hash collision) — a miss, not corruption.
   [Error reason]: torn/corrupt record; quarantine it. *)
let parse_record key s =
  let ml = String.length magic in
  if String.length s < ml + 1 then Error "truncated magic"
  else if String.sub s 0 ml <> magic || s.[ml] <> '\n' then Error "bad magic"
  else
    match String.index_from_opt s (ml + 1) '\n' with
    | None -> Error "truncated header"
    | Some nl -> (
        let header = String.sub s (ml + 1) (nl - ml - 1) in
        match
          Scanf.sscanf_opt header "canon=%d bits=%d labelbits=%d sum=%s%!"
            (fun a b c d -> (a, b, c, d))
        with
        | None -> Error ("bad header " ^ String.escaped header)
        | Some (canon_len, bits, label_bits, sum_hex) -> (
            match Hash64.of_hex sum_hex with
            | None -> Error ("bad checksum field " ^ String.escaped sum_hex)
            | Some sum ->
                let body = nl + 1 in
                if canon_len < 0 || bits < 0 || label_bits < 0 then
                  Error "negative header field"
                else
                  let nbytes = (bits + 7) / 8 in
                  if String.length s - body <> canon_len + nbytes then
                    Error
                      (Printf.sprintf
                         "payload is %d bytes but the header promises %d"
                         (String.length s - body)
                         (canon_len + nbytes))
                  else
                    let canon = Bytes.of_string (String.sub s body canon_len) in
                    let payload =
                      Bytes.of_string (String.sub s (body + canon_len) nbytes)
                    in
                    if
                      not
                        (Hash64.equal sum
                           (record_sum ~canon ~bits ~label_bits ~payload))
                    then Error "checksum mismatch"
                    else if not (Bytes.equal canon key.canon) then Ok None
                    else
                      Ok
                        (Some
                           {
                             e_key = key;
                             e_bundle = { Bundle.bytes = payload; bits };
                             e_label_bits = label_bits;
                           })))

(* quarantine is post-mortem evidence, not a cache: on a box taking
   sustained corruption (bad disk, bad RAM) it would otherwise grow one
   file per fault, forever. It gets the same LRU-by-mtime cap discipline
   as the live tier — oldest debris goes first, every drop is counted. *)
let gc_quarantine t dir =
  if t.quarantine_cap > 0 then begin
    try
      let qdir = quarantine_dir dir in
      let files = Array.to_list (t.io.Blob.list_dir qdir) in
      let excess = List.length files - t.quarantine_cap in
      if excess > 0 then begin
        let victims =
          List.filter_map
            (fun f ->
              match t.io.Blob.mtime (Filename.concat qdir f) with
              | m -> Some (m, f)
              | exception Sys_error _ -> None)
            files
          |> List.sort compare
        in
        List.iteri
          (fun i (_, f) ->
            if i < excess then begin
              t.io.Blob.remove (Filename.concat qdir f);
              t.stats.quarantine_evictions <- t.stats.quarantine_evictions + 1
            end)
          victims
      end
    with Sys_error _ -> disk_error t
  end

let quarantine t dir path =
  t.stats.corrupt <- t.stats.corrupt + 1;
  try
    let qdir = quarantine_dir dir in
    if not (t.io.Blob.file_exists qdir) then t.io.Blob.mkdir qdir;
    t.io.Blob.rename path
      (Filename.concat qdir
         (Printf.sprintf "%s.%d" (Filename.basename path) t.stats.corrupt));
    t.stats.quarantined <- t.stats.quarantined + 1;
    gc_quarantine t dir
  with Sys_error _ -> disk_error t

(* capacity GC: keep at most [disk_cap] records, dropping the ones with
   the oldest mtime first (disk hits touch their record, so mtime order
   is LRU order). The record just written is never a GC victim. *)
let gc_disk t dir ~keep =
  if t.disk_cap > 0 then begin
    try
      let certs =
        Array.to_list (t.io.Blob.list_dir dir)
        |> List.filter (fun f -> Filename.check_suffix f ".cert")
      in
      let excess = List.length certs - t.disk_cap in
      if excess > 0 then begin
        let victims =
          List.filter_map
            (fun f ->
              if f = keep then None
              else
                match t.io.Blob.mtime (Filename.concat dir f) with
                | m -> Some (m, f)
                | exception Sys_error _ -> None)
            certs
          |> List.sort compare
        in
        List.iteri
          (fun i (_, f) ->
            if i < excess then begin
              t.io.Blob.remove (Filename.concat dir f);
              t.stats.gc_evictions <- t.stats.gc_evictions + 1
            end)
          victims
      end
    with Sys_error _ -> disk_error t
  end

(* One record to disk, no GC: returns the basename on success so the
   caller can protect it from the capacity GC it runs afterwards. *)
let write_record t dir entry =
  let path = entry_path dir entry.e_key in
  (* the tmp name carries the pid so concurrent workers sharing this
     disk tier (Pool) never interleave writes inside one tmp file; the
     final rename stays the single atomic commit point *)
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  try
    t.io.Blob.write_file tmp (record_string entry);
    t.io.Blob.rename tmp path;
    disk_ok t;
    Some (Filename.basename path)
  with Sys_error _ ->
    (* best-effort cleanup of a half-written tmp; never fatal *)
    (try t.io.Blob.remove tmp with Sys_error _ -> ());
    disk_error t;
    None

let write_disk t dir entry =
  match write_record t dir entry with
  | Some keep -> gc_disk t dir ~keep
  | None -> ()

(* Group commit: drain the dirty set in admission order — each record
   still goes tmp-then-rename, so a fault mid-flush tears at most the
   record being renamed (caught by its checksum on read) — then pay a
   single directory fsync for the whole batch and one capacity-GC
   pass. A store demoted to memory-only drops its dirty set: those
   entries survive in the memory tier and their loss costs only future
   cache misses. *)
let flush t =
  match t.dir with
  | Some dir when (not t.degraded) && not (Queue.is_empty t.dirty_q) ->
      let last_written = ref None in
      while not (Queue.is_empty t.dirty_q) do
        let h = Queue.pop t.dirty_q in
        match Hashtbl.find_opt t.dirty h with
        | None -> () (* superseded or removed while dirty *)
        | Some entry -> (
            Hashtbl.remove t.dirty h;
            match write_record t dir entry with
            | Some keep -> last_written := Some keep
            | None -> ())
      done;
      (match !last_written with
      | Some keep ->
          (* the renames above are atomic but only as durable as the
             page cache; one directory fsync commits them all *)
          (try t.io.Blob.sync dir with Sys_error _ -> disk_error t);
          t.stats.flushes <- t.stats.flushes + 1;
          gc_disk t dir ~keep
      | None -> ())
  | _ ->
      Hashtbl.reset t.dirty;
      Queue.clear t.dirty_q

let read_disk t dir key =
  let path = entry_path dir key in
  if not (t.io.Blob.file_exists path) then None
  else
    match t.io.Blob.read_file path with
    | exception Sys_error _ ->
        disk_error t;
        None
    | s -> (
        match parse_record key s with
        | Ok (Some e) ->
            disk_ok t;
            (try t.io.Blob.touch path with Sys_error _ -> ());
            Some e
        | Ok None -> None (* intact record for another instance: a miss *)
        | Error _reason ->
            quarantine t dir path;
            None)

(* ---------------------------------------------------------------- *)
(* the store proper                                                  *)

let evict_overflow t =
  while Hashtbl.length t.table > t.cap do
    match t.last with
    | None -> assert false
    | Some node ->
        unlink t node;
        Hashtbl.remove t.table node.entry.e_key.hash;
        t.stats.evictions <- t.stats.evictions + 1
  done

let add t entry =
  (match Hashtbl.find_opt t.table entry.e_key.hash with
  | Some node ->
      node.entry <- entry;
      unlink t node;
      push_front t node
  | None ->
      let node = { entry; prev = None; next = None } in
      Hashtbl.replace t.table entry.e_key.hash node;
      push_front t node;
      t.stats.insertions <- t.stats.insertions + 1;
      evict_overflow t);
  match t.dir with
  | Some dir when not t.degraded ->
      (* the filter tracks admission, not durability: a failed write
         leaves a stale positive, which only costs a wasted probe *)
      (match t.filter with
      | Some f -> Lcp_util.Negf.add f entry.e_key.hash
      | None -> ());
      if t.write_batch <= 1 then write_disk t dir entry
      else begin
        if not (Hashtbl.mem t.dirty entry.e_key.hash) then
          Queue.push entry.e_key.hash t.dirty_q;
        Hashtbl.replace t.dirty entry.e_key.hash entry;
        if Hashtbl.length t.dirty >= t.write_batch then flush t
      end
  | _ -> ()

let find t key =
  match Hashtbl.find_opt t.table key.hash with
  | Some node when Bytes.equal node.entry.e_key.canon key.canon ->
      unlink t node;
      push_front t node;
      t.stats.hits <- t.stats.hits + 1;
      Some node.entry
  | Some _ ->
      (* same hash, different instance: a collision behaves as a miss *)
      t.stats.misses <- t.stats.misses + 1;
      None
  | None -> (
      match t.dir with
      | Some dir when not t.degraded -> (
          let install entry =
            let node = { entry; prev = None; next = None } in
            Hashtbl.replace t.table key.hash node;
            push_front t node;
            evict_overflow t;
            Some entry
          in
          (* evicted from memory while still awaiting its group commit:
             serve straight from the dirty set, no filesystem touched *)
          match Hashtbl.find_opt t.dirty key.hash with
          | Some entry when Bytes.equal entry.e_key.canon key.canon ->
              t.stats.hits <- t.stats.hits + 1;
              install entry
          | _ -> (
              let probe =
                match t.filter with
                | None -> true
                | Some f ->
                    if Lcp_util.Negf.mem f key.hash then true
                    else begin
                      t.stats.filter_skips <- t.stats.filter_skips + 1;
                      false
                    end
              in
              if not probe then begin
                t.stats.misses <- t.stats.misses + 1;
                None
              end
              else
                match read_disk t dir key with
                | Some entry ->
                    (match t.filter with
                    | Some _ ->
                        t.stats.filter_hits <- t.stats.filter_hits + 1
                    | None -> ());
                    t.stats.disk_loads <- t.stats.disk_loads + 1;
                    t.stats.hits <- t.stats.hits + 1;
                    install entry
                | None ->
                    (match t.filter with
                    | Some _ -> t.stats.filter_fps <- t.stats.filter_fps + 1
                    | None -> ());
                    t.stats.misses <- t.stats.misses + 1;
                    None))
      | _ ->
          t.stats.misses <- t.stats.misses + 1;
          None)

let remove t key =
  (match Hashtbl.find_opt t.table key.hash with
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key.hash;
      t.stats.drops <- t.stats.drops + 1
  | None -> ());
  (* a pending dirty entry must not be resurrected by a later flush;
     its queue slot stays behind and is skipped at flush time *)
  Hashtbl.remove t.dirty key.hash;
  match t.dir with
  | Some dir when not t.degraded -> (
      let path = entry_path dir key in
      try if t.io.Blob.file_exists path then t.io.Blob.remove path
      with Sys_error _ -> disk_error t)
  | _ -> ()

(* pointwise sum, for aggregating the per-worker stores of a sharded
   run into one operator-facing footer *)
let add_stats a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    insertions = a.insertions + b.insertions;
    evictions = a.evictions + b.evictions;
    disk_loads = a.disk_loads + b.disk_loads;
    drops = a.drops + b.drops;
    disk_errors = a.disk_errors + b.disk_errors;
    corrupt = a.corrupt + b.corrupt;
    quarantined = a.quarantined + b.quarantined;
    orphans_swept = a.orphans_swept + b.orphans_swept;
    gc_evictions = a.gc_evictions + b.gc_evictions;
    quarantine_evictions = a.quarantine_evictions + b.quarantine_evictions;
    filter_hits = a.filter_hits + b.filter_hits;
    filter_skips = a.filter_skips + b.filter_skips;
    filter_fps = a.filter_fps + b.filter_fps;
    flushes = a.flushes + b.flushes;
  }

(** The persisted records of the disk tier as (file name, content hash)
    pairs, sorted by name — the "hash set of stored records" any two
    runs of the same workload must agree on, however the work was
    sharded. Quarantined records and [.tmp] orphans are excluded: they
    are fault debris, not served state. Diagnostic helper — unlike the
    serving path it lets [Sys_error] escape, because a determinism
    check that silently skipped unreadable records would be vacuous. *)
let disk_snapshot t =
  flush t;
  match t.dir with
  | None -> []
  | Some dir ->
      Array.to_list (t.io.Blob.list_dir dir)
      |> List.filter (fun f -> Filename.check_suffix f ".cert")
      |> List.map (fun f ->
             (f, Hash64.of_string (t.io.Blob.read_file (Filename.concat dir f))))
      |> List.sort compare

let pp_stats ppf s =
  Format.fprintf ppf
    "hits=%d misses=%d insertions=%d evictions=%d disk_loads=%d drops=%d \
     disk_errors=%d corrupt=%d quarantined=%d quarantine_evictions=%d \
     orphans_swept=%d gc_evictions=%d filter_hits=%d filter_skips=%d \
     filter_fps=%d flushes=%d"
    s.hits s.misses s.insertions s.evictions s.disk_loads s.drops s.disk_errors
    s.corrupt s.quarantined s.quarantine_evictions s.orphans_swept
    s.gc_evictions s.filter_hits s.filter_skips s.filter_fps s.flushes

(** The content-addressed certificate store. A key is the canonical bit
    encoding of (property, k, graph) hashed with 64-bit FNV-1a
    ([Lcp_util.Hash64]); the canonical bytes travel with the key, and
    every lookup compares them, so a hash collision degrades to a miss
    instead of serving a bundle for the wrong instance.

    The in-memory tier is a bounded LRU (hashtable + intrusive doubly
    linked list, O(1) hit/insert/evict). An optional on-disk tier
    persists encoded bundles as [<hex-hash>.cert] files; entries evicted
    from memory remain loadable from disk, and disk loads re-check the
    canonical bytes too.

    Soundness note: the store caches {e bytes}, never trust. The engine
    decodes and locally re-verifies every bundle it serves from here;
    a corrupt or stale entry is dropped via [remove] and recomputed. *)

module Hash64 = Lcp_util.Hash64
module Bitenc = Lcp_util.Bitenc
module Graph = Lcp_graph.Graph

type key = { hash : Hash64.t; canon : Bytes.t }

let key ~property ~k g =
  let w = Bitenc.writer () in
  Bitenc.varint w (String.length property);
  String.iter (fun c -> Bitenc.bits w ~width:8 (Char.code c)) property;
  Bitenc.varint w k;
  Bitenc.varint w (Graph.n g);
  Bitenc.varint w (Graph.m g);
  (* edges in canonical order, delta-coded on the tail vertex *)
  let _ =
    Graph.fold_edges
      (fun (u, v) prev_u ->
        Bitenc.varint w (u - prev_u);
        Bitenc.varint w v;
        u)
      g 0
  in
  let canon = Bitenc.to_bytes w in
  { hash = Hash64.of_bytes canon; canon }

let key_hex key = Hash64.to_hex key.hash

type entry = {
  e_key : key;
  e_bundle : Bundle.t;
  e_label_bits : int;  (** max bits of a single edge label, for stats *)
}

(* ---------------------------------------------------------------- *)
(* LRU list                                                          *)

type node = {
  mutable entry : entry;
  mutable prev : node option;
  mutable next : node option;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
  mutable disk_loads : int;
  mutable drops : int;  (** entries removed after failing re-verification *)
}

type t = {
  cap : int;
  dir : string option;
  table : (Hash64.t, node) Hashtbl.t;
  mutable first : node option; (* most recently used *)
  mutable last : node option; (* least recently used *)
  stats : stats;
}

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let create ?(cap = 4096) ?dir () =
  if cap < 1 then invalid_arg "Cert_store.create: cap must be >= 1";
  (match dir with Some d -> mkdir_p d | None -> ());
  {
    cap;
    dir;
    table = Hashtbl.create 64;
    first = None;
    last = None;
    stats =
      {
        hits = 0;
        misses = 0;
        insertions = 0;
        evictions = 0;
        disk_loads = 0;
        drops = 0;
      };
  }

let size t = Hashtbl.length t.table

let stats t = t.stats

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.first <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.first;
  node.prev <- None;
  (match t.first with Some f -> f.prev <- Some node | None -> t.last <- Some node);
  t.first <- Some node

(* ---------------------------------------------------------------- *)
(* on-disk tier                                                      *)

let magic = "LCPCERT1"

let entry_path dir key = Filename.concat dir (key_hex key ^ ".cert")

let write_disk dir entry =
  let path = entry_path dir entry.e_key in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_string oc
        (Printf.sprintf "\ncanon=%d bits=%d labelbits=%d\n"
           (Bytes.length entry.e_key.canon)
           (Bundle.size_bits entry.e_bundle)
           entry.e_label_bits);
      output_bytes oc entry.e_key.canon;
      output_bytes oc entry.e_bundle.Bundle.bytes);
  Sys.rename tmp path

let read_disk dir key =
  let path = entry_path dir key in
  if not (Sys.file_exists path) then None
  else
    let parse () =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let m = really_input_string ic (String.length magic) in
          if m <> magic then Error "bad magic"
          else
            match input_char ic with
            | '\n' -> (
                let header = input_line ic in
                match
                  Scanf.sscanf_opt header "canon=%d bits=%d labelbits=%d"
                    (fun a b c -> (a, b, c))
                with
                | None -> Error ("bad header " ^ String.escaped header)
                | Some (canon_len, bits, label_bits) ->
                    let canon = Bytes.create canon_len in
                    really_input ic canon 0 canon_len;
                    let nbytes = (bits + 7) / 8 in
                    let bundle_bytes = Bytes.create nbytes in
                    really_input ic bundle_bytes 0 nbytes;
                    if not (Bytes.equal canon key.canon) then
                      (* hash collision or foreign file: not our content *)
                      Error "canonical key mismatch"
                    else
                      Ok
                        {
                          e_key = key;
                          e_bundle = { Bundle.bytes = bundle_bytes; bits };
                          e_label_bits = label_bits;
                        })
            | _ -> Error "bad magic")
    in
    match (try parse () with End_of_file -> Error "truncated file") with
    | Ok e -> Some e
    | Error _ -> None

(* ---------------------------------------------------------------- *)
(* the store proper                                                  *)

let evict_overflow t =
  while Hashtbl.length t.table > t.cap do
    match t.last with
    | None -> assert false
    | Some node ->
        unlink t node;
        Hashtbl.remove t.table node.entry.e_key.hash;
        t.stats.evictions <- t.stats.evictions + 1
  done

let add t entry =
  (match Hashtbl.find_opt t.table entry.e_key.hash with
  | Some node ->
      node.entry <- entry;
      unlink t node;
      push_front t node
  | None ->
      let node = { entry; prev = None; next = None } in
      Hashtbl.replace t.table entry.e_key.hash node;
      push_front t node;
      t.stats.insertions <- t.stats.insertions + 1;
      evict_overflow t);
  match t.dir with Some dir -> write_disk dir entry | None -> ()

let find t key =
  match Hashtbl.find_opt t.table key.hash with
  | Some node when Bytes.equal node.entry.e_key.canon key.canon ->
      unlink t node;
      push_front t node;
      t.stats.hits <- t.stats.hits + 1;
      Some node.entry
  | Some _ ->
      (* same hash, different instance: a collision behaves as a miss *)
      t.stats.misses <- t.stats.misses + 1;
      None
  | None -> (
      match t.dir with
      | None ->
          t.stats.misses <- t.stats.misses + 1;
          None
      | Some dir -> (
          match read_disk dir key with
          | Some entry ->
              t.stats.disk_loads <- t.stats.disk_loads + 1;
              t.stats.hits <- t.stats.hits + 1;
              let node = { entry; prev = None; next = None } in
              Hashtbl.replace t.table key.hash node;
              push_front t node;
              evict_overflow t;
              Some entry
          | None ->
              t.stats.misses <- t.stats.misses + 1;
              None))

let remove t key =
  (match Hashtbl.find_opt t.table key.hash with
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table key.hash;
      t.stats.drops <- t.stats.drops + 1
  | None -> ());
  match t.dir with
  | Some dir ->
      let path = entry_path dir key in
      if Sys.file_exists path then Sys.remove path
  | None -> ()

let pp_stats ppf s =
  Format.fprintf ppf
    "hits=%d misses=%d insertions=%d evictions=%d disk_loads=%d drops=%d"
    s.hits s.misses s.insertions s.evictions s.disk_loads s.drops

(** Delta sessions: incremental re-certification of an evolving graph
    against the service engine.

    A session pins one base job (graph source, property, k, id seed)
    and holds the typed state the incremental core needs across edits —
    the current graph, its (transplanted) interval representation, the
    last {e verified} labeling, and one [Incremental.Make] instance
    whose composition-memo tables stay warm for the session's life.
    The property's algebra state type is existential (it comes out of
    [Registry] as a first-class module), so the typed machinery hides
    behind closures built once in [create].

    Every step follows the engine's serving discipline end to end:

    - the edited graph is content-addressed in the [Cert_store]; a warm
      hit is decoded and {e fully} re-verified before it is served
      (and before its labels become the next splice baseline);
    - a miss transplants the representation (falling back to a fresh
      one when the edit escapes the old windows), re-runs the prover
      with the warm memo, splices against the previous labeling, and
      re-verifies the dirty region plus its boundary — or every vertex
      when there is no fully-verified baseline or [full] recompute is
      forced;
    - the fresh bundle is verified before it is stored or served, and
      every step runs under [Engine.run_delta_job]'s retry/deadline/
      degraded machinery.

    [full:true] is the differential anchor: the same representation
    policy and pipeline, but no splice baseline and whole-graph
    verification — a from-scratch recompute whose canonical JSONL must
    be byte-identical to the incremental path (the [@incr] suite and
    the check.sh daemon smoke assert exactly that).

    Session state only advances when a step returns a report
    (exceptions leave it untouched, so retried attempts rerun whole);
    a well-formed delta advances the graph even when the property no
    longer holds (Declined) — the stream's shape is the client's
    business, judgements are ours. After a Declined or Unsound step
    the labeling baseline is dropped and the next step rebuilds and
    re-verifies in full. *)

module Graph = Lcp_graph.Graph
module PW = Lcp_interval.Pathwidth
module Config = Lcp_pls.Config
module Scheme = Lcp_pls.Scheme
module Incr = Lcp_cert.Incremental
module Memo = Lcp_cert.Memo

type patch_info = {
  pi_mode : string;
      (** [open]: base certification; [patched]: transplanted rep +
          splice; [rebuilt]: fresh rep or no baseline, everything
          recomputed; [full]: forced from-scratch recompute; [cached]:
          store hit re-verified and served; [none]: nothing ran (bad
          delta, retry exhaustion) *)
  pi_edits : int;  (** operations in the normalized delta *)
  pi_dirty_windows : int;  (** window-overlap closure of the delta *)
  pi_changed : int;  (** edge labels that differ from the baseline *)
  pi_reused : int;  (** edge labels spliced through unchanged *)
  pi_verified : int;  (** vertices re-verified locally *)
  pi_memo_hits : int;  (** composition-memo hits during this step *)
  pi_memo_misses : int;
}

let no_info mode =
  {
    pi_mode = mode;
    pi_edits = 0;
    pi_dirty_windows = 0;
    pi_changed = 0;
    pi_reused = 0;
    pi_verified = 0;
    pi_memo_hits = 0;
    pi_memo_misses = 0;
  }

(* one line, no newlines: the wire protocol frames it as a single
   body line of a dreport *)
let info_json i =
  Printf.sprintf
    "{\"mode\":\"%s\",\"edits\":%d,\"dirty_windows\":%d,\"changed\":%d,\"reused\":%d,\"verified\":%d,\"memo_hits\":%d,\"memo_misses\":%d}"
    i.pi_mode i.pi_edits i.pi_dirty_windows i.pi_changed i.pi_reused
    i.pi_verified i.pi_memo_hits i.pi_memo_misses

type session = {
  s_job : Manifest.job;
  mutable s_edits : int;  (** edits consumed (including malformed ones) *)
  s_graph : unit -> Graph.t;
  s_bundle : unit -> Bundle.t option;
  s_exec :
    retry:Engine.retry_policy option ->
    full:bool ->
    id:string ->
    Incr.delta ->
    Stats.job_report * patch_info;
}

let base_job s = s.s_job

let edits s = s.s_edits

let graph s = s.s_graph ()

let bundle s = s.s_bundle ()

let now_ms () = Unix.gettimeofday () *. 1000.0

(* the engine's representation policy, verbatim: sessions must be
   byte-comparable with [Engine.run_job] on the same instance *)
let fresh_rep g =
  if Graph.n g <= 20 then PW.exact_interval_representation g
  else PW.heuristic_interval_representation g

let memo_totals () =
  let l = Memo.counters () in
  let get k = Option.value ~default:0 (List.assoc_opt k l) in
  (get "memo_hit", get "memo_miss")

let base_report (job : Manifest.job) ~id ?(n = 0) ?(m = 0) ~t0 status =
  {
    Stats.r_id = id;
    r_property = job.Manifest.property;
    r_k = job.Manifest.k;
    r_n = n;
    r_m = m;
    r_status = status;
    r_cache_hit = false;
    r_prove_ms = 0.0;
    r_verify_ms = 0.0;
    r_total_ms = now_ms () -. t0;
    r_label_bits = 0;
    r_bundle_bits = 0;
    r_reject_reasons = [];
    r_retries = 0;
  }

let create ?retry engine (job : Manifest.job) =
  let t0 = now_ms () in
  let timing = engine.Engine.timing in
  match
    Timing.time timing Timing.Parse (fun () ->
        Engine.graph_of_source ~base_dir:(Engine.base_dir engine) ~k:job.Manifest.k
          job.Manifest.source)
  with
  | Error e ->
      Error
        ( base_report job ~id:job.Manifest.job_id ~t0 (Stats.Input_error e),
          no_info "none" )
  | Ok g0 -> (
      let n = Graph.n g0 and m = Graph.m g0 in
      match Registry.find job.Manifest.property with
      | None ->
          Error
            ( base_report job ~id:job.Manifest.job_id ~n ~m ~t0
                (Stats.Input_error
                   (Printf.sprintf "unknown property %S; catalogue: %s"
                      job.Manifest.property
                      (String.concat ", " (Registry.names ())))),
              no_info "none" )
      | Some p ->
          let (module Pr : Registry.PROPERTY) = p in
          let module I = Incr.Make (Pr.A) in
          let module T1 = Lcp_cert.Theorem1.Make (Pr.A) in
          (* verify/encode only — proving goes through [I], whose
             composition memo stays warm across the session *)
          let scheme = T1.edge_scheme ~k:job.Manifest.k () in
          let decode_label =
            Lcp_cert.Certificate.decode ~decode_state:Pr.decode_state
          in
          (* memory-tier warm hits skip the bundle decode: the session
             remembers the labeling it decoded (or encoded) for each
             bundle value it has served, keyed by content hash and
             guarded by physical identity of the bundle — a disk-tier
             reload is a fresh value and decodes as usual.  Serving
             still re-verifies the labeling in full either way. *)
          let decoded : (string, Bundle.t * I.labeling) Hashtbl.t =
            Hashtbl.create 64
          in
          let remember key bundle labels =
            if Hashtbl.length decoded > 512 then Hashtbl.reset decoded;
            Hashtbl.replace decoded (Cert_store.key_hex key) (bundle, labels)
          in
          let recall key bundle =
            match Hashtbl.find_opt decoded (Cert_store.key_hex key) with
            | Some (b, labels) when b == bundle -> Some labels
            | _ -> None
          in
          let cfg0 =
            Config.random_ids (Random.State.make [| job.Manifest.seed |]) g0
          in
          (* ids depend on n and the seed only; n is invariant under
             edge edits, so the assignment is reused verbatim — the
             same ids a fresh engine run of the edited graph draws *)
          let ids = Array.init n (Config.id cfg0) in
          let cur_graph = ref g0 in
          let cur_rep : Lcp_interval.Representation.t option ref = ref None in
          let cur_labels : I.labeling option ref = ref None in
          let cur_bundle : Bundle.t option ref = ref None in
          (* the step pipeline; effect-free until it returns (state
             commits only with a report), so retries rerun it whole *)
          let exec_once ~full ~id (delta : Incr.delta) :
              Stats.job_report * patch_info =
            let t0 = now_ms () in
            let g0 = !cur_graph in
            let g1 = Timing.time timing Timing.Parse (fun () -> Incr.apply g0 delta) in
            let n = Graph.n g1 and m = Graph.m g1 in
            (* same n, same seed-drawn ids — the assignment a fresh
               engine run of this very graph would use *)
            let cfg1 = Config.make ~ids g1 in
            let key =
              Cert_store.key ~property:job.Manifest.property ~k:job.Manifest.k g1
            in
            let store = Engine.store engine in
            (* transplant-else-fresh, the session's representation
               policy: deterministic in the edit stream, so full and
               incremental runs of one stream agree byte-for-byte *)
            let make_rep () =
              match !cur_rep with
              | None -> (fresh_rep g1, false)
              | Some rep -> (
                  match Incr.transplant rep g1 with
                  | Ok rep1 -> (rep1, true)
                  | Error _ -> (fresh_rep g1, false))
            in
            let commit ~graph ~rep ~labels ~bundle =
              cur_graph := graph;
              cur_rep := rep;
              cur_labels := labels;
              cur_bundle := bundle
            in
            let base ?(n = n) ?(m = m) status = base_report job ~id ~n ~m ~t0 status in
            let info =
              {
                (no_info "none") with
                pi_edits = Incr.delta_size delta;
              }
            in
            (* 1. cache tier: decode + full re-verify before serving,
               exactly the engine's warm-hit discipline — a hit also
               becomes the next verified splice baseline *)
            let cached =
              match
                Timing.time timing Timing.Store (fun () -> Cert_store.find store key)
              with
              | None -> None
              | Some entry -> (
                  let decoded_labels =
                    match recall key entry.Cert_store.e_bundle with
                    | Some labels -> Ok labels
                    | None ->
                        Bundle.decode ~decode_label g1 entry.Cert_store.e_bundle
                  in
                  match decoded_labels with
                  | Error e ->
                      Cert_store.remove store key;
                      Some (Error [ "bundle: " ^ e ])
                  | Ok labels -> (
                      let tv = now_ms () in
                      match
                        Timing.time timing Timing.Verify (fun () ->
                            Scheme.run_edge cfg1 scheme labels)
                      with
                      | Scheme.Accepted ->
                          remember key entry.Cert_store.e_bundle labels;
                          Some (Ok (entry, labels, now_ms () -. tv))
                      | Scheme.Rejected rs ->
                          Cert_store.remove store key;
                          Some
                            (Error
                               (List.sort_uniq compare
                                  (List.map
                                     (fun (_, reason) ->
                                       Lcp_cert.Reject_reason.classify reason)
                                     rs)))))
            in
            match cached with
            | Some (Ok (entry, labels, verify_ms)) ->
                let rep1, _ = make_rep () in
                commit ~graph:g1 ~rep:(Some rep1) ~labels:(Some labels)
                  ~bundle:(Some entry.Cert_store.e_bundle);
                ( {
                    (base Stats.Served_cached) with
                    r_cache_hit = true;
                    r_verify_ms = verify_ms;
                    r_label_bits = entry.Cert_store.e_label_bits;
                    r_bundle_bits = Bundle.size_bits entry.Cert_store.e_bundle;
                    r_total_ms = now_ms () -. t0;
                  },
                  { info with pi_mode = "cached"; pi_verified = n } )
            | (None | Some (Error _)) as cache_outcome -> (
                let reject_reasons =
                  match cache_outcome with Some (Error rs) -> rs | _ -> []
                in
                (* 2. fresh path: transplant, patch-prove, splice,
                   localized verify, store *)
                let tp = now_ms () in
                let hit0, miss0 = memo_totals () in
                let patched =
                  Timing.time timing Timing.Prove (fun () ->
                      let rep1, transplanted = make_rep () in
                      let prev = if full then None else !cur_labels in
                      ( I.patch_labels ~rep:rep1 ~prev ~delta cfg1,
                        rep1,
                        transplanted,
                        prev <> None ))
                in
                let prove_ms = now_ms () -. tp in
                let hit1, miss1 = memo_totals () in
                let outcome, rep1, transplanted, spliced = patched in
                let mode =
                  if full then "full"
                  else if not spliced then "rebuilt"
                  else if transplanted then "patched"
                  else "rebuilt"
                in
                let info =
                  {
                    info with
                    pi_mode = mode;
                    pi_memo_hits = hit1 - hit0;
                    pi_memo_misses = miss1 - miss0;
                  }
                in
                match outcome with
                | Error _ ->
                    (* empty/disconnected: the prover declines, as the
                       engine's fresh path would *)
                    commit ~graph:g1 ~rep:(Some rep1) ~labels:None ~bundle:None;
                    ( {
                        (base Stats.Declined) with
                        r_prove_ms = prove_ms;
                        r_reject_reasons = reject_reasons;
                        r_total_ms = now_ms () -. t0;
                      },
                      info )
                | Ok patch ->
                    let info =
                      {
                        info with
                        pi_dirty_windows = patch.I.p_dirty_windows;
                        pi_changed = patch.I.p_changed;
                        pi_reused = patch.I.p_reused;
                      }
                    in
                    if not patch.I.p_holds then begin
                      commit ~graph:g1 ~rep:(Some rep1) ~labels:None ~bundle:None;
                      ( {
                          (base Stats.Declined) with
                          r_prove_ms = prove_ms;
                          r_reject_reasons = reject_reasons;
                          r_total_ms = now_ms () -. t0;
                        },
                        info )
                    end
                    else begin
                      match
                        Timing.time timing Timing.Encode (fun () ->
                            Bundle.encode ~encode_label:scheme.Scheme.es_encode
                              g1 patch.I.p_labels)
                      with
                      | Error e ->
                          commit ~graph:g1 ~rep:(Some rep1) ~labels:None
                            ~bundle:None;
                          ( {
                              (base (Stats.Unsound e)) with
                              r_prove_ms = prove_ms;
                              r_total_ms = now_ms () -. t0;
                            },
                            info )
                      | Ok bundle -> (
                          let verify_set =
                            if spliced then patch.I.p_verify else []
                          in
                          let tv = now_ms () in
                          let verdict =
                            Timing.time timing Timing.Verify (fun () ->
                                match verify_set with
                                | [] -> Scheme.run_edge cfg1 scheme patch.I.p_labels
                                | vs ->
                                    Scheme.run_edge_on cfg1 scheme
                                      patch.I.p_labels vs)
                          in
                          let verify_ms = now_ms () -. tv in
                          let info =
                            {
                              info with
                              pi_verified =
                                (match verify_set with
                                | [] -> n
                                | vs -> List.length vs);
                            }
                          in
                          match verdict with
                          | Scheme.Rejected rs ->
                              let reasons =
                                List.sort_uniq compare
                                  (List.map
                                     (fun (_, reason) ->
                                       Lcp_cert.Reject_reason.classify reason)
                                     rs)
                              in
                              commit ~graph:g1 ~rep:(Some rep1) ~labels:None
                                ~bundle:None;
                              ( {
                                  (base
                                     (Stats.Unsound
                                        (Printf.sprintf
                                           "patched bundle rejected locally: %s"
                                           (String.concat ", " reasons))))
                                  with
                                  r_prove_ms = prove_ms;
                                  r_verify_ms = verify_ms;
                                  r_reject_reasons = reject_reasons;
                                  r_total_ms = now_ms () -. t0;
                                },
                                info )
                          | Scheme.Accepted ->
                              let label_bits =
                                Scheme.max_edge_label_bits scheme patch.I.p_labels
                              in
                              remember key bundle patch.I.p_labels;
                              Timing.time timing Timing.Store (fun () ->
                                  Cert_store.add store
                                    {
                                      Cert_store.e_key = key;
                                      e_bundle = bundle;
                                      e_label_bits = label_bits;
                                    });
                              commit ~graph:g1 ~rep:(Some rep1)
                                ~labels:(Some patch.I.p_labels)
                                ~bundle:(Some bundle);
                              ( {
                                  (base Stats.Served_fresh) with
                                  r_prove_ms = prove_ms;
                                  r_verify_ms = verify_ms;
                                  r_label_bits = label_bits;
                                  r_bundle_bits = Bundle.size_bits bundle;
                                  r_reject_reasons = reject_reasons;
                                  r_total_ms = now_ms () -. t0;
                                },
                                info )
                        )
                    end)
          in
          let exec ~retry ~full ~id delta =
            Engine.run_delta_job ?retry engine ~job_id:id
              ~property:job.Manifest.property ~k:job.Manifest.k
              ~fallback_info:(no_info "none") (fun ~attempt:_ ->
                exec_once ~full ~id delta)
          in
          let session =
            {
              s_job = job;
              s_edits = 0;
              s_graph = (fun () -> !cur_graph);
              s_bundle = (fun () -> !cur_bundle);
              s_exec = exec;
            }
          in
          let report, info =
            exec ~retry ~full:false ~id:job.Manifest.job_id Incr.empty_delta
          in
          let info =
            if info.pi_mode = "rebuilt" then { info with pi_mode = "open" }
            else info
          in
          Ok (session, report, info))

(** Apply one delta (already parsed) to the session. A malformed delta
    (self-loop, out-of-range vertex, add∩del conflict) is an
    [Input_error] and leaves the graph untouched; a well-formed one
    advances it whatever the verdict. [full] forces the from-scratch
    comparator path. *)
let step_delta ?retry s ~full (d : Incr.delta) =
  s.s_edits <- s.s_edits + 1;
  let id = Printf.sprintf "%s#e%04d" s.s_job.Manifest.job_id s.s_edits in
  match Incr.normalize (s.s_graph ()) d with
  | Error e ->
      ( base_report s.s_job ~id
          ~n:(Graph.n (s.s_graph ()))
          ~m:(Graph.m (s.s_graph ()))
          ~t0:(now_ms ())
          (Stats.Input_error e),
        no_info "none" )
  | Ok d -> s.s_exec ~retry ~full ~id d

(** Parse and apply one textual edit line ("add=0-1,2-3 del=4-5"). *)
let step ?retry s ~full ops =
  match Incr.parse_delta ops with
  | Error e ->
      s.s_edits <- s.s_edits + 1;
      let id = Printf.sprintf "%s#e%04d" s.s_job.Manifest.job_id s.s_edits in
      ( base_report s.s_job ~id
          ~n:(Graph.n (s.s_graph ()))
          ~m:(Graph.m (s.s_graph ()))
          ~t0:(now_ms ())
          (Stats.Input_error e),
        no_info "none" )
  | Ok d -> step_delta ?retry s ~full d

(** Certification job manifests: the workload description the batch
    driver streams. A manifest is a line-oriented text file; [#] starts
    a comment, blank lines are skipped, and every remaining line is one
    job given as whitespace-separated [key=value] tokens:

    {v
    # graph from a file, format inferred from the extension
    file=graphs/karate.g6 property=connected k=3 seed=11

    # generated graph (no file needed); gseed seeds the generator
    gen=random n=80 k=2 gseed=7 property=bipartite seed=5
    gen=cycle n=24 property=connected k=2
    v}

    Keys: exactly one of [file=PATH] | [gen=FAMILY]; [property=NAME]
    (required); [k=INT] (required, >= 1); optional [n=INT] (generated
    sources, default 24), [gseed=INT] (generator seed, default 0),
    [seed=INT] (id-assignment seed, default 0), [id=NAME] (job label,
    default "job<line>"). Unknown keys are an error — typos must not
    silently change a workload. *)

type source =
  | File of string
  | Generated of { family : string; n : int; gen_seed : int }

type job = {
  job_id : string;
  source : source;
  property : string;
  k : int;
  seed : int;
}

let pp_source ppf = function
  | File f -> Format.fprintf ppf "file=%s" f
  | Generated { family; n; gen_seed } ->
      Format.fprintf ppf "gen=%s n=%d gseed=%d" family n gen_seed

let known_keys = [ "file"; "gen"; "n"; "gseed"; "property"; "k"; "seed"; "id" ]

let err line msg = Error (Printf.sprintf "manifest, line %d: %s" line msg)

let parse_job ~line l =
  let ( let* ) = Result.bind in
  let* kvs =
    List.fold_left
      (fun acc tok ->
        let* acc = acc in
        match String.index_opt tok '=' with
        | None ->
            err line (Printf.sprintf "token %S is not of the form key=value" tok)
        | Some i ->
            let k = String.sub tok 0 i in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            if not (List.mem k known_keys) then
              err line
                (Printf.sprintf "unknown key %S (known: %s)" k
                   (String.concat ", " known_keys))
            else if List.mem_assoc k acc then
              err line (Printf.sprintf "duplicate key %S" k)
            else Ok ((k, v) :: acc))
      (Ok []) l
  in
  let get k = List.assoc_opt k kvs in
  let get_int k default =
    match get k with
    | None -> Ok default
    | Some v -> (
        match int_of_string_opt v with
        | Some x -> Ok x
        | None -> err line (Printf.sprintf "%s=%S is not an integer" k v))
  in
  let* source =
    match (get "file", get "gen") with
    | Some _, Some _ -> err line "both file= and gen= given; pick one"
    | None, None -> err line "missing graph source: give file=PATH or gen=FAMILY"
    | Some f, None ->
        let* () =
          match get "n" with
          | Some _ -> err line "n= only applies to generated sources"
          | None -> Ok ()
        in
        Ok (File f)
    | None, Some family ->
        let* n = get_int "n" 24 in
        let* gen_seed = get_int "gseed" 0 in
        if n < 0 then err line "n= must be nonnegative"
        else Ok (Generated { family; n; gen_seed })
  in
  let* property =
    match get "property" with
    | Some p -> Ok p
    | None -> err line "missing property= (see Registry.names ())"
  in
  let* k =
    match get "k" with
    | None -> err line "missing k= (the promised pathwidth bound)"
    | Some _ -> get_int "k" 0
  in
  let* () = if k < 1 then err line "k= must be >= 1" else Ok () in
  let* seed = get_int "seed" 0 in
  let job_id =
    match get "id" with Some id -> id | None -> Printf.sprintf "job%d" line
  in
  Ok { job_id; source; property; k; seed }

(* One raw manifest line -> [Ok None] (blank/comment), [Ok (Some job)],
   or a line-numbered error. Both the whole-string parser and the
   streaming reader go through here, so their tokenization and error
   text cannot drift apart. *)
let parse_line ~line raw =
  let l =
    match String.index_opt raw '#' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  let toks =
    String.split_on_char ' ' l
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "" && t <> "\r")
  in
  match toks with
  | [] -> Ok None
  | toks -> Result.map Option.some (parse_job ~line toks)

let parse s =
  let lines = String.split_on_char '\n' s in
  let ( let* ) = Result.bind in
  let* _, rev =
    List.fold_left
      (fun acc raw ->
        let* line, jobs = acc in
        match parse_line ~line raw with
        | Error _ as e -> e
        | Ok None -> Ok (line + 1, jobs)
        | Ok (Some job) -> Ok (line + 1, job :: jobs))
      (Ok (1, []))
      lines
  in
  Ok (List.rev rev)

let print_job j =
  let src =
    match j.source with
    | File f -> Printf.sprintf "file=%s" f
    | Generated { family; n; gen_seed } ->
        Printf.sprintf "gen=%s n=%d gseed=%d" family n gen_seed
  in
  Printf.sprintf "id=%s %s property=%s k=%d seed=%d" j.job_id src j.property
    j.k j.seed

let print jobs = String.concat "\n" (List.map print_job jobs) ^ "\n"

(* Streaming reader: fold [f] over the jobs of [file] one line at a
   time, never materializing the job list. Memory is O(longest line).
   Line numbering, tokenization, and error text are byte-identical to
   [load_file] (both run [parse_line]); the first bad line stops the
   fold with its error, after [f] has already seen every job above it.
   This is the corpus-scale entry point: a 10^6-line manifest streams
   through in constant space. *)
let fold_file file ~init ~f =
  match open_in_bin file with
  | exception Sys_error e -> Error (Printf.sprintf "%s: %s" file e)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go line acc =
            match input_line ic with
            | exception End_of_file -> Ok acc
            | exception Sys_error e -> Error (Printf.sprintf "%s: %s" file e)
            | raw -> (
                match parse_line ~line raw with
                | Error e -> Error (Printf.sprintf "%s: %s" file e)
                | Ok None -> go (line + 1) acc
                | Ok (Some job) -> go (line + 1) (f acc job))
          in
          go 1 init)

let iter_file file ~f = fold_file file ~init:() ~f:(fun () job -> f job)

let load_file file =
  Result.map List.rev (fold_file file ~init:[] ~f:(fun acc job -> job :: acc))

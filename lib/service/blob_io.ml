(** An injectable substrate for every file operation the certification
    service performs. The API is a {e record of operations} — read,
    write, rename, remove, list, mkdir, stat — so the storage layer
    ([Cert_store]) never touches [Sys] or channels directly and a test
    (or [certd --faults]) can swap the real backend for one that
    injects disk faults at precise points in the operation sequence.

    Two backends ship here:

    - [real]: the obvious implementation over the OCaml stdlib. Every
      failure surfaces as [Sys_error] (Unix errors are converted), so
      callers have exactly one exception to reason about.
    - [inject ~plan real]: wraps any backend and executes a {e fault
      plan}. Mutating operations (write/rename/remove/mkdir) are
      numbered 1, 2, 3, ... and a plan entry fires when the counter
      matches: fail with an errno-style tag, tear a write at a byte
      offset, silently flip one bit of the written contents (bit rot),
      or crash — halting the whole operation sequence, as a killed
      process would.

    A crash is modelled by the [Crashed] exception. It is deliberately
    {e not} a [Sys_error]: the storage layer catches [Sys_error] and
    degrades, but a crash must propagate — a dead process does not
    handle exceptions. Campaign drivers catch [Crashed] at the top,
    "reboot" by reopening the store, and assert recovery. *)

exception Crashed of string
(** Simulated process death at an operation boundary. The payload names
    the path of the operation that was executing (or about to). *)

type t = {
  read_file : string -> string;  (** whole contents of a regular file *)
  write_file : string -> string -> unit;
      (** create-or-truncate, then write the full contents *)
  append_file : string -> string -> unit;
      (** create-or-append: write the contents at the end of the file.
          A mutating op like [write_file] — [torn@]/[flip@]/[crash@]
          plans apply to the appended chunk. *)
  sync : string -> unit;
      (** fsync the file's — or directory's, for group commit — contents
          to stable storage. Not counted as a mutating op (plans written
          against the PR 3 numbering keep firing at the same points),
          but dead after a crash. *)
  rename : string -> string -> unit;
  remove : string -> unit;
  list_dir : string -> string array;
  mkdir : string -> unit;  (** one level, mode 0o755 *)
  file_exists : string -> bool;
  is_directory : string -> bool;
  mtime : string -> float;
  touch : string -> unit;
      (** set the file's mtime to "now" (recency marker for mtime-LRU) *)
}

let of_unix_error path e =
  Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e))

let real : t =
  {
    read_file =
      (fun p ->
        let ic = open_in_bin p in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic)));
    write_file =
      (fun p s ->
        let oc = open_out_bin p in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc s));
    append_file =
      (fun p s ->
        let oc =
          open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ]
            0o644 p
        in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc s));
    sync =
      (fun p ->
        try
          (* O_RDONLY so directories can be synced too: the cert
             store's group commit fsyncs the cache directory once per
             batch to make its renames durable. fsync on a read-only
             fd flushes the same inode either way. *)
          let fd = Unix.openfile p [ Unix.O_RDONLY ] 0o644 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> Unix.fsync fd)
        with Unix.Unix_error (e, _, _) -> raise (of_unix_error p e));
    rename = Sys.rename;
    remove = Sys.remove;
    list_dir = Sys.readdir;
    mkdir = (fun p -> Sys.mkdir p 0o755);
    file_exists = Sys.file_exists;
    is_directory = (fun p -> Sys.file_exists p && Sys.is_directory p);
    mtime =
      (fun p ->
        try (Unix.stat p).Unix.st_mtime
        with Unix.Unix_error (e, _, _) -> raise (of_unix_error p e));
    touch =
      (fun p ->
        try
          let now = Unix.gettimeofday () in
          Unix.utimes p now now
        with Unix.Unix_error (e, _, _) -> raise (of_unix_error p e));
  }

(* ---------------------------------------------------------------- *)
(* fault plans                                                       *)

type fault =
  | Fail of string
      (** the op raises [Sys_error "<path>: <tag>"]; nothing happens *)
  | Torn of int
      (** a [write_file] writes only the first [b] bytes, then the
          process crashes (the classic torn write). On a non-write op
          this degenerates to [Crash]. *)
  | Flip of int
      (** a [write_file] silently flips bit [b] of the contents (bit
          rot); the op "succeeds". No effect on non-write ops. *)
  | Crash  (** die before the op; every later op raises [Crashed] too *)

type planned = {
  at : int;  (** 1-based index into the sequence of mutating ops *)
  repeat : bool;  (** fire on every op with index >= [at] (syntax [N+]) *)
  on : fault;
}

type counters = {
  mutable ops : int;  (** mutating ops attempted so far *)
  mutable injected : int;  (** plan entries that actually fired *)
  mutable crashed : bool;
}

let fault_to_string = function
  | Fail tag -> Printf.sprintf "fail:%s" tag
  | Torn b -> Printf.sprintf "torn:%d" b
  | Flip b -> Printf.sprintf "flip:%d" b
  | Crash -> "crash"

let planned_to_string p =
  let kind, arg =
    match p.on with
    | Fail tag -> ("fail", ":" ^ tag)
    | Torn b -> ("torn", Printf.sprintf ":%d" b)
    | Flip b -> ("flip", Printf.sprintf ":%d" b)
    | Crash -> ("crash", "")
  in
  Printf.sprintf "%s@%d%s%s" kind p.at (if p.repeat then "+" else "") arg

let plan_to_string plan = String.concat "," (List.map planned_to_string plan)

(** Plan syntax, comma-separated:
    - [fail@N] or [fail@N:TAG] — op N raises [Sys_error] (default tag EIO)
    - [fail@N+:TAG]            — op N and every later op fail (persistent)
    - [torn@N:B]               — op N (a write) writes B bytes, then crashes
    - [flip@N:B]               — op N (a write) flips bit B, silently
    - [crash@N]                — die just before op N *)
let parse_plan s =
  let ( let* ) = Result.bind in
  let item tok =
    let err msg = Error (Printf.sprintf "fault plan, %S: %s" tok msg) in
    match String.index_opt tok '@' with
    | None -> err "expected kind@N (e.g. fail@3:ENOSPC)"
    | Some i ->
        let kind = String.sub tok 0 i in
        let rest = String.sub tok (i + 1) (String.length tok - i - 1) in
        let num, arg =
          match String.index_opt rest ':' with
          | None -> (rest, None)
          | Some j ->
              ( String.sub rest 0 j,
                Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
        in
        let num, repeat =
          let l = String.length num in
          if l > 0 && num.[l - 1] = '+' then (String.sub num 0 (l - 1), true)
          else (num, false)
        in
        let* at =
          match int_of_string_opt num with
          | Some n when n >= 1 -> Ok n
          | Some _ -> err "op index must be >= 1"
          | None -> err (Printf.sprintf "%S is not an op index" num)
        in
        let* on =
          match (kind, arg) with
          | "fail", None -> Ok (Fail "EIO")
          | "fail", Some tag when tag <> "" -> Ok (Fail tag)
          | "fail", Some _ -> err "empty errno tag after ':'"
          | "torn", Some b | "flip", Some b -> (
              match int_of_string_opt b with
              | Some b when b >= 0 ->
                  Ok (if kind = "torn" then Torn b else Flip b)
              | _ -> err "byte/bit offset must be a nonnegative integer")
          | "torn", None -> err "torn needs a byte offset (torn@N:B)"
          | "flip", None -> err "flip needs a bit offset (flip@N:B)"
          | "crash", None -> Ok Crash
          | "crash", Some _ -> err "crash takes no argument"
          | k, _ ->
              err
                (Printf.sprintf "unknown fault kind %S (fail, torn, flip, crash)"
                   k)
        in
        Ok { at; repeat; on }
  in
  let toks =
    String.split_on_char ',' (String.trim s)
    |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  if toks = [] then Error "fault plan is empty"
  else
    List.fold_left
      (fun acc tok ->
        let* acc = acc in
        let* p = item tok in
        Ok (p :: acc))
      (Ok []) toks
    |> Result.map List.rev

let flip_bit_of_string s b =
  let bytes = Bytes.of_string s in
  let i = b / 8 in
  if i < Bytes.length bytes then
    Bytes.set bytes i
      (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl (b mod 8))));
  Bytes.unsafe_to_string bytes

(** Wrap [base] so that the given plan fires against the sequence of
    mutating operations. Returns the wrapped backend and live counters
    (op count, injections, crash state) for campaign reporting. *)
let inject ~plan base =
  let c = { ops = 0; injected = 0; crashed = false } in
  let die path =
    c.crashed <- true;
    raise (Crashed path)
  in
  (* every op — including reads — on a crashed backend is dead *)
  let alive path = if c.crashed then raise (Crashed path) in
  let next path =
    alive path;
    c.ops <- c.ops + 1;
    match
      List.find_opt (fun p -> p.at = c.ops || (p.repeat && c.ops >= p.at)) plan
    with
    | Some p ->
        c.injected <- c.injected + 1;
        Some p.on
    | None -> None
  in
  let mutate1 op path =
    match next path with
    | None -> op path
    | Some (Fail tag) -> raise (Sys_error (path ^ ": " ^ tag))
    | Some (Torn _ | Crash) -> die path
    | Some (Flip _) -> op path
  in
  let io =
    {
      read_file =
        (fun p ->
          alive p;
          base.read_file p);
      write_file =
        (fun p s ->
          match next p with
          | None -> base.write_file p s
          | Some (Fail tag) -> raise (Sys_error (p ^ ": " ^ tag))
          | Some Crash -> die p
          | Some (Torn b) ->
              base.write_file p (String.sub s 0 (min b (String.length s)));
              die p
          | Some (Flip b) -> base.write_file p (flip_bit_of_string s b));
      append_file =
        (fun p s ->
          match next p with
          | None -> base.append_file p s
          | Some (Fail tag) -> raise (Sys_error (p ^ ": " ^ tag))
          | Some Crash -> die p
          | Some (Torn b) ->
              base.append_file p (String.sub s 0 (min b (String.length s)));
              die p
          | Some (Flip b) -> base.append_file p (flip_bit_of_string s b));
      sync =
        (fun p ->
          alive p;
          base.sync p);
      rename =
        (fun a b ->
          match next a with
          | None -> base.rename a b
          | Some (Fail tag) -> raise (Sys_error (a ^ ": " ^ tag))
          | Some (Torn _ | Crash) -> die a
          | Some (Flip _) -> base.rename a b);
      remove = mutate1 (fun p -> base.remove p);
      mkdir = mutate1 (fun p -> base.mkdir p);
      list_dir =
        (fun p ->
          alive p;
          base.list_dir p);
      file_exists =
        (fun p ->
          alive p;
          base.file_exists p);
      is_directory =
        (fun p ->
          alive p;
          base.is_directory p);
      mtime =
        (fun p ->
          alive p;
          base.mtime p);
      touch =
        (fun p ->
          alive p;
          base.touch p);
    }
  in
  (io, c)

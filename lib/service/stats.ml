(** Per-job reports and aggregate throughput accounting for the batch
    driver, including a hand-rolled JSON-lines emitter (one object per
    job — easy to stream, easy to grep). *)

type status =
  | Served_fresh  (** proved, locally verified, stored, served *)
  | Served_cached  (** cache hit; decoded bundle re-verified, then served *)
  | Served_degraded
      (** served (fresh or cached) while the certificate store was
          demoted to memory-only by persistent disk faults *)
  | Declined  (** the prover declined: the property does not hold *)
  | Input_error of string  (** bad graph file / unknown property / bad job *)
  | Unsound of string
      (** a freshly proved bundle failed local verification — a pipeline
          bug; never served *)
  | Failed of string
      (** the job kept raising through every retry (or blew its
          deadline budget); terminal, nothing served *)

let status_name = function
  | Served_fresh -> "served_fresh"
  | Served_cached -> "served_cached"
  | Served_degraded -> "served_degraded"
  | Declined -> "declined"
  | Input_error _ -> "input_error"
  | Unsound _ -> "unsound"
  | Failed _ -> "failed"

(** Statuses that make a batch (or a connected client) exit nonzero:
    the job reached a terminal state with nothing sound served and the
    workload itself was not at fault the way a [Declined] is. *)
let is_failure = function
  | Input_error _ | Unsound _ | Failed _ -> true
  | Served_fresh | Served_cached | Served_degraded | Declined -> false

type job_report = {
  r_id : string;
  r_property : string;
  r_k : int;
  r_n : int;
  r_m : int;
  r_status : status;
  r_cache_hit : bool;
  r_prove_ms : float;
  r_verify_ms : float;
  r_total_ms : float;
  r_label_bits : int;  (** max bits of one edge label; 0 if none served *)
  r_bundle_bits : int;  (** whole-bundle size; 0 if none served *)
  r_reject_reasons : string list;
      (** classified reasons when a cached bundle was rejected on
          re-verification (the entry is dropped and recomputed) *)
  r_retries : int;
      (** attempts beyond the first that the retry policy spent on
          transient faults before this terminal status *)
}

(* ---------------------------------------------------------------- *)
(* JSON lines                                                        *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let field_s k v = Printf.sprintf "\"%s\":\"%s\"" k (json_escape v) in
  let field_i k v = Printf.sprintf "\"%s\":%d" k v in
  let field_f k v = Printf.sprintf "\"%s\":%.3f" k v in
  let field_b k v = Printf.sprintf "\"%s\":%b" k v in
  let detail =
    match r.r_status with
    | Input_error e | Unsound e | Failed e -> [ field_s "error" e ]
    | _ -> []
  in
  let rejects =
    match r.r_reject_reasons with
    | [] -> []
    | rs ->
        [
          Printf.sprintf "\"cache_rejects\":[%s]"
            (String.concat ","
               (List.map (fun s -> "\"" ^ json_escape s ^ "\"") rs));
        ]
  in
  "{"
  ^ String.concat ","
      ([
         field_s "id" r.r_id;
         field_s "property" r.r_property;
         field_i "k" r.r_k;
         field_i "n" r.r_n;
         field_i "m" r.r_m;
         field_s "status" (status_name r.r_status);
         field_b "cache_hit" r.r_cache_hit;
         field_f "prove_ms" r.r_prove_ms;
         field_f "verify_ms" r.r_verify_ms;
         field_f "total_ms" r.r_total_ms;
         field_i "label_bits" r.r_label_bits;
         field_i "bundle_bits" r.r_bundle_bits;
         field_i "retries" r.r_retries;
       ]
      @ detail @ rejects)
  ^ "}"

(* ---------------------------------------------------------------- *)
(* canonical ordering and canonical (run-invariant) projection        *)

(* Reports sort by job id before they are emitted or returned, so the
   JSONL stream is a pure function of the workload — not of arrival
   order, and in particular not of how a parallel run sharded the
   manifest. Stable, so duplicate ids keep their relative order. *)
let sort_reports reports =
  List.stable_sort (fun a b -> compare a.r_id b.r_id) reports

(** The run-invariant projection of a report: what must be byte-for-byte
    identical between a sequential run and any sharded run of the same
    manifest. Volatile fields are normalized away:

    - timings and retry counts vary per run;
    - [cache_hit] and fresh-vs-cached-vs-degraded status depend on which
      worker reached a shared key first, so all three serving statuses
      collapse to ["served"];
    - cache re-verification rejects depend on interleaving.

    Everything the service {e decided} — verdict, sizes, input errors —
    stays, so two runs with equal canonical lines produced the same
    judgements. *)
let to_canonical_json r =
  let field_s k v = Printf.sprintf "\"%s\":\"%s\"" k (json_escape v) in
  let field_i k v = Printf.sprintf "\"%s\":%d" k v in
  let verdict =
    match r.r_status with
    | Served_fresh | Served_cached | Served_degraded -> "served"
    | Declined -> "declined"
    | Input_error _ -> "input_error"
    | Unsound _ -> "unsound"
    | Failed _ -> "failed"
  in
  let detail =
    (* input errors are deterministic parser/registry messages; failure
       and unsoundness messages embed attempt counts and timings *)
    match r.r_status with
    | Input_error e -> [ field_s "error" e ]
    | _ -> []
  in
  "{"
  ^ String.concat ","
      ([
         field_s "id" r.r_id;
         field_s "property" r.r_property;
         field_i "k" r.r_k;
         field_i "n" r.r_n;
         field_i "m" r.r_m;
         field_s "verdict" verdict;
         field_i "label_bits" r.r_label_bits;
         field_i "bundle_bits" r.r_bundle_bits;
       ]
      @ detail)
  ^ "}"

let canonical_lines reports =
  String.concat "\n" (List.map to_canonical_json (sort_reports reports))

(* ---------------------------------------------------------------- *)
(* aggregates                                                        *)

type summary = {
  s_jobs : int;
  s_served : int;  (** fresh + cached + degraded *)
  s_fresh : int;
  s_cached : int;
  s_degraded : int;  (** served while the store was memory-only *)
  s_declined : int;
  s_errors : int;
  s_unsound : int;
  s_failed : int;  (** retries/deadline exhausted; nothing served *)
  s_total_ms : float;
  s_prove_ms : float;
  s_verify_ms : float;
  s_jobs_per_sec : float;
  s_hit_rate : float;  (** cache hits / served jobs *)
  s_max_label_bits : int;
  s_cache_rejects : int;
  s_retries : int;  (** total retry attempts across all jobs *)
}

let summary_zero =
  {
    s_jobs = 0;
    s_served = 0;
    s_fresh = 0;
    s_cached = 0;
    s_degraded = 0;
    s_declined = 0;
    s_errors = 0;
    s_unsound = 0;
    s_failed = 0;
    s_total_ms = 0.0;
    s_prove_ms = 0.0;
    s_verify_ms = 0.0;
    s_jobs_per_sec = 0.0;
    s_hit_rate = 0.0;
    s_max_label_bits = 0;
    s_cache_rejects = 0;
    s_retries = 0;
  }

(* Fold one report into a running summary. The streaming runners use
   this so a million-job pass never holds a report list; [summarize]
   is the same fold, so batch and stream share one definition of the
   aggregate semantics. The two derived rates are recomputed from the
   running totals each step; the cache-hit count is recovered exactly
   from the previous rate (it was hits/served with both far below
   2^53, so round-tripping through the float is lossless). *)
let summary_add s r =
  let served_status =
    match r.r_status with
    | Served_fresh | Served_cached | Served_degraded -> true
    | Declined | Input_error _ | Unsound _ | Failed _ -> false
  in
  let hits =
    int_of_float (Float.round (s.s_hit_rate *. float_of_int s.s_served))
    + if r.r_cache_hit && served_status then 1 else 0
  in
  let bump status n = if r.r_status = status then n + 1 else n in
  let fresh = bump Served_fresh s.s_fresh in
  let cached = bump Served_cached s.s_cached in
  let degraded = bump Served_degraded s.s_degraded in
  let served = fresh + cached + degraded in
  let jobs = s.s_jobs + 1 in
  let total_ms = s.s_total_ms +. r.r_total_ms in
  {
    s_jobs = jobs;
    s_served = served;
    s_fresh = fresh;
    s_cached = cached;
    s_degraded = degraded;
    s_declined = bump Declined s.s_declined;
    s_errors =
      (s.s_errors
      + match r.r_status with Input_error _ -> 1 | _ -> 0);
    s_unsound =
      (s.s_unsound + match r.r_status with Unsound _ -> 1 | _ -> 0);
    s_failed = (s.s_failed + match r.r_status with Failed _ -> 1 | _ -> 0);
    s_total_ms = total_ms;
    s_prove_ms = s.s_prove_ms +. r.r_prove_ms;
    s_verify_ms = s.s_verify_ms +. r.r_verify_ms;
    s_jobs_per_sec =
      (if total_ms > 0.0 then 1000.0 *. float_of_int jobs /. total_ms
       else 0.0);
    s_hit_rate =
      (if served > 0 then float_of_int hits /. float_of_int served else 0.0);
    s_max_label_bits = max s.s_max_label_bits r.r_label_bits;
    s_cache_rejects = s.s_cache_rejects + List.length r.r_reject_reasons;
    s_retries = s.s_retries + r.r_retries;
  }

let summarize reports = List.fold_left summary_add summary_zero reports

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>jobs: %d (served %d = %d fresh + %d cached + %d degraded; %d \
     declined, %d input errors, %d unsound, %d failed)@,\
     time: %.1f ms total (%.1f prove + %.1f verify) -> %.1f jobs/sec@,\
     cache: hit rate %.1f%% over served jobs, %d re-verification \
     rejects; %d transient-fault retries@,\
     labels: max %d bits per edge label@]"
    s.s_jobs s.s_served s.s_fresh s.s_cached s.s_degraded s.s_declined
    s.s_errors s.s_unsound s.s_failed s.s_total_ms s.s_prove_ms s.s_verify_ms
    s.s_jobs_per_sec
    (100.0 *. s.s_hit_rate)
    s.s_cache_rejects s.s_retries s.s_max_label_bits

(** Synthetic corpus-scale traffic: a seeded generator of certification
    job streams with Zipf-distributed popularity and adversarial
    cold/corrupt mixes, produced one job at a time so a 10^6-job replay
    never materializes a list.

    A spec names everything:

    {v zipf:u=2000,t=1000000,s=1.05,seed=42,cold=0.01,corrupt=0.002 v}

    - [u] — the hot universe: distinct popular instances, ranked; rank
      r is drawn with probability proportional to 1/(r+1)^s;
    - [t] — total jobs in the stream;
    - [s] — the Zipf exponent (> 0; higher = more skew);
    - [seed] — PRNG seed; the same spec always yields byte-identical
      job streams (generation never consults time or pids);
    - [cold] — probability that a position is a first-touch instance
      outside the hot universe (a guaranteed cache miss);
    - [corrupt] — probability of an adversarial job: parse-valid but
      rejected by the engine (unknown property, unknown generator
      family, degenerate n), exercising the input-error path.

    Job ids are ["w%09d"] of the stream position, so the feed order is
    also job-id order: a streamed run ({!Pool.run_stream} emits in feed
    order) produces canonical JSONL byte-identical to the batch
    driver's id-sorted output, at any worker count.

    Rank identity is instance identity: the same rank always maps to
    the same (family, n, gseed, property, k, seed) tuple, so repeats of
    a hot rank are true cache hits — same content-addressed key, same
    id-assignment seed, byte-identical stored record. *)

module Hash64 = Lcp_util.Hash64

type mix = Std | Light

type spec = {
  universe : int;  (** distinct hot instances, ranked 0..universe-1 *)
  total : int;  (** jobs in the stream *)
  exponent : float;  (** Zipf exponent s > 0 *)
  seed : int;
  cold : float;  (** P(first-touch instance beyond the universe) *)
  corrupt : float;  (** P(parse-valid job the engine must reject) *)
  mix : mix;
      (** [Std] spans every certifiable (property, family) pair,
          including k=3 tree algebras whose proofs dominate wall time;
          [Light] sticks to small k<=2 path/random instances, so a
          million-job replay stresses the service layer (streaming,
          store, filter, batching) instead of the prover. *)
}

let default =
  {
    universe = 2000;
    total = 10_000;
    exponent = 1.05;
    seed = 1;
    cold = 0.01;
    corrupt = 0.002;
    mix = Std;
  }

let to_string s =
  Printf.sprintf "zipf:u=%d,t=%d,s=%g,seed=%d,cold=%g,corrupt=%g,mix=%s"
    s.universe s.total s.exponent s.seed s.cold s.corrupt
    (match s.mix with Std -> "std" | Light -> "light")

let validate s =
  if s.universe < 1 then Error "workload: u= must be >= 1"
  else if s.total < 0 then Error "workload: t= must be >= 0"
  else if not (s.exponent > 0.0) then Error "workload: s= must be > 0"
  else if s.cold < 0.0 || s.corrupt < 0.0 || s.cold +. s.corrupt > 1.0 then
    Error "workload: cold= and corrupt= must be >= 0 and sum to <= 1"
  else Ok s

(** Parse a spec string. The leading ["zipf:"] tag is optional; every
    field defaults from {!default}, so ["t=1000000"] alone is valid. *)
let parse_spec str =
  let ( let* ) = Result.bind in
  let body =
    match String.index_opt str ':' with
    | Some i when String.sub str 0 i = "zipf" ->
        Ok (String.sub str (i + 1) (String.length str - i - 1))
    | Some i -> Error (Printf.sprintf "workload: unknown kind %S" (String.sub str 0 i))
    | None -> Ok str
  in
  let* body = body in
  let* spec =
    List.fold_left
      (fun acc tok ->
        let* spec = acc in
        if tok = "" then Ok spec
        else
          match String.index_opt tok '=' with
          | None ->
              Error
                (Printf.sprintf "workload: token %S is not key=value" tok)
          | Some i -> (
              let k = String.sub tok 0 i in
              let v = String.sub tok (i + 1) (String.length tok - i - 1) in
              let int () =
                match int_of_string_opt v with
                | Some x -> Ok x
                | None ->
                    Error (Printf.sprintf "workload: %s=%S is not an integer" k v)
              in
              let flt () =
                match float_of_string_opt v with
                | Some x -> Ok x
                | None ->
                    Error (Printf.sprintf "workload: %s=%S is not a number" k v)
              in
              match k with
              | "u" -> Result.map (fun u -> { spec with universe = u }) (int ())
              | "t" -> Result.map (fun t -> { spec with total = t }) (int ())
              | "s" -> Result.map (fun s -> { spec with exponent = s }) (flt ())
              | "seed" -> Result.map (fun x -> { spec with seed = x }) (int ())
              | "cold" -> Result.map (fun c -> { spec with cold = c }) (flt ())
              | "corrupt" ->
                  Result.map (fun c -> { spec with corrupt = c }) (flt ())
              | "mix" -> (
                  match v with
                  | "std" -> Ok { spec with mix = Std }
                  | "light" -> Ok { spec with mix = Light }
                  | _ ->
                      Error
                        (Printf.sprintf
                           "workload: mix=%S is not a mix (std, light)" v))
              | _ ->
                  Error
                    (Printf.sprintf
                       "workload: unknown key %S (known: u, t, s, seed, cold, \
                        corrupt, mix)"
                       k)))
      (Ok default)
      (String.split_on_char ',' body)
  in
  validate spec

(* ---------------------------------------------------------------- *)
(* rank -> instance                                                  *)

(* A rank's instance recipe is a pure function of (spec seed, rank):
   small exactly-checkable graphs (n <= 20, within the test oracle's
   DP range) across the certifiable (property, family) pairs of the
   registry. gseed = seed (id-assignment) = rank, so rank identity is
   instance identity and warm hits are real hits. *)
let job_of_rank spec i rank =
  let h =
    (Hash64.init
    |> Fun.flip Hash64.int spec.seed
    |> Fun.flip Hash64.int rank
    |> Int64.to_int)
    land max_int
  in
  let property, family, n, k =
    match spec.mix with
    | Std -> (
        match (h lsr 4) mod 5 with
        | 0 -> ("connected", "random", 10 + (h mod 11), 1 + ((h lsr 7) mod 2))
        | 1 -> ("acyclic", "tree", 10 + (h mod 11), 3)
        | 2 -> ("bipartite", "tree", 10 + (h mod 11), 3)
        | 3 -> ("triangle_free", "tree", 10 + (h mod 11), 3)
        | _ -> ("perfect_matching", "path", 10 + (2 * (h mod 6)), 1))
    | Light -> (
        (* [random] graphs keyed by gen_seed = rank keep every rank a
           distinct content-addressed certificate, so the store and
           filter see the full Zipf universe even at tiny n *)
        match (h lsr 4) mod 3 with
        | 0 -> ("connected", "random", 4 + (h mod 5), 1)
        | 1 -> ("connected", "random", 4 + (h mod 5), 2)
        | _ -> ("perfect_matching", "path", 2 + (2 * (h mod 4)), 1))
  in
  {
    Manifest.job_id = Printf.sprintf "w%09d" i;
    source = Manifest.Generated { family; n; gen_seed = rank };
    property;
    k;
    seed = rank;
  }

(* Adversarial jobs: parse-valid, deterministically rejected by the
   engine. Three rotating kinds, so the input-error path sees unknown
   properties, unknown generator families, and degenerate sizes. *)
let corrupt_job i kind =
  let job_id = Printf.sprintf "w%09d" i in
  match kind mod 3 with
  | 0 ->
      {
        Manifest.job_id;
        source = Manifest.Generated { family = "path"; n = 8; gen_seed = 0 };
        property = "no_such_property";
        k = 1;
        seed = 0;
      }
  | 1 ->
      {
        Manifest.job_id;
        source = Manifest.Generated { family = "warp"; n = 8; gen_seed = 0 };
        property = "connected";
        k = 1;
        seed = 0;
      }
  | _ ->
      {
        Manifest.job_id;
        source = Manifest.Generated { family = "path"; n = 0; gen_seed = 0 };
        property = "connected";
        k = 1;
        seed = 0;
      }

(* ---------------------------------------------------------------- *)
(* Zipf sampling                                                     *)

(* Cumulative (unnormalized) Zipf weights over the hot universe; a
   draw is a uniform in [0, Z) binary-searched to the first rank whose
   cumulative weight exceeds it. O(u) setup once, O(log u) per draw. *)
let zipf_cdf spec =
  let a = Array.make spec.universe 0.0 in
  let acc = ref 0.0 in
  for r = 0 to spec.universe - 1 do
    acc := !acc +. (1.0 /. (Float.of_int (r + 1) ** spec.exponent));
    a.(r) <- !acc
  done;
  a

let zipf_rank cdf u =
  let target = u *. cdf.(Array.length cdf - 1) in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) > target then hi := mid else lo := mid + 1
  done;
  !lo

(* ---------------------------------------------------------------- *)
(* the stream                                                        *)

(** [fold spec ~init ~f] folds [f] over the [spec.total] jobs of the
    stream, generating each on demand — O(universe) memory for the CDF,
    O(1) per job. Deterministic in [spec] alone. *)
let fold spec ~init ~f =
  let cdf = zipf_cdf spec in
  let rng = Random.State.make [| spec.seed |] in
  let cold_seen = ref 0 in
  let corrupt_seen = ref 0 in
  let acc = ref init in
  for i = 0 to spec.total - 1 do
    let x = Random.State.float rng 1.0 in
    let job =
      if x < spec.corrupt then begin
        incr corrupt_seen;
        corrupt_job i (!corrupt_seen - 1)
      end
      else if x < spec.corrupt +. spec.cold then begin
        (* cold: a fresh rank past the hot universe, never repeated *)
        incr cold_seen;
        job_of_rank spec i (spec.universe + !cold_seen - 1)
      end
      else job_of_rank spec i (zipf_rank cdf (Random.State.float rng 1.0))
    in
    acc := f !acc job
  done;
  !acc

let iter spec ~f = fold spec ~init:() ~f:(fun () job -> f job)

(** Write the stream as a manifest file (streamed line by line), so
    the same traffic can replay through a file-based driver or a
    daemon client. Returns the job count. *)
let write_manifest spec path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      fold spec ~init:0 ~f:(fun n job ->
          output_string oc (Manifest.print_job job);
          output_char oc '\n';
          n + 1))

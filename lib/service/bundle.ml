(** Certificate bundles: the full per-edge labeling of one certification
    job, serialized to a canonical bit string. The edge order is the
    graph's canonical edge enumeration (ascending [(u, v)], [u < v]), so
    the encoding is a pure function of (graph, labeling) and the store
    can compare and persist bundles byte for byte.

    A bundle is {e data}, not truth: decoding yields a candidate
    labeling that the engine re-verifies with the local verifier before
    serving. Decode failures are ordinary [Error]s, never crashes. *)

module Graph = Lcp_graph.Graph
module Bitenc = Lcp_util.Bitenc
module EM = Lcp_pls.Scheme.Edge_map

type t = { bytes : Bytes.t; bits : int }

let equal a b = a.bits = b.bits && Bytes.equal a.bytes b.bytes

let size_bits t = t.bits

let encode ~encode_label g labels =
  let w = Bitenc.writer () in
  Bitenc.varint w (Graph.n g);
  Bitenc.varint w (Graph.m g);
  let missing =
    Graph.fold_edges
      (fun e missing ->
        match missing with
        | Some _ -> missing
        | None -> (
            match EM.find labels e with
            | Some l ->
                encode_label w l;
                None
            | None -> Some e))
      g None
  in
  match missing with
  | Some (u, v) ->
      Error (Printf.sprintf "bundle: labeling is missing edge %d-%d" u v)
  | None -> Ok { bytes = Bitenc.to_bytes w; bits = Bitenc.length_bits w }

let decode ~decode_label g t =
  let r = Bitenc.reader t.bytes in
  match
    let n = Bitenc.read_varint r in
    let m = Bitenc.read_varint r in
    if n <> Graph.n g || m <> Graph.m g then
      Error
        (Printf.sprintf
           "bundle: header says n=%d m=%d but the graph has n=%d m=%d" n m
           (Graph.n g) (Graph.m g))
    else begin
      let labels =
        Graph.fold_edges
          (fun e acc -> EM.add acc e (decode_label r))
          g EM.empty
      in
      let consumed = 8 * Bytes.length t.bytes - Bitenc.bits_remaining r in
      if consumed <> t.bits then
        Error
          (Printf.sprintf "bundle: decoded %d bits but the bundle claims %d"
             consumed t.bits)
      else Ok labels
    end
  with
  | res -> res
  | exception Invalid_argument msg ->
      Error (Printf.sprintf "bundle: corrupt encoding (%s)" msg)

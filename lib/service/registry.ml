(** The service-facing property catalogue: every entry packs an algebra
    from [lcp_algebra] together with a bit-level state decoder, which is
    what lets the store round-trip certificate bundles through their
    canonical encoding (encode on insert, decode + re-verify on every
    hit). Only algebras with an exact decoder can be served — an entry
    whose states cannot be reconstructed from bits could never be
    re-verified, and the cache must never be trusted blindly. *)

module type PROPERTY = sig
  module A : Lcp_algebra.Algebra_sig.S

  val decode_state : Lcp_util.Bitenc.reader -> A.state
end

type t = (module PROPERTY)

module A = Lcp_algebra

let connected : t =
  (module struct
    module A = A.Connectivity

    let decode_state = A.decode
  end)

let acyclic : t =
  (module struct
    module A = A.Acyclicity

    let decode_state = A.decode
  end)

let bipartite : t =
  (module struct
    module A = A.Bipartite

    let decode_state = A.decode
  end)

let triangle_free : t =
  (module struct
    module A = A.Triangle_free

    let decode_state = A.decode
  end)

let perfect_matching : t =
  (module struct
    module A = A.Matching

    let decode_state = A.decode
  end)

let catalogue : (string * t) list =
  [
    ("connected", connected);
    ("acyclic", acyclic);
    ("bipartite", bipartite);
    ("triangle_free", triangle_free);
    ("perfect_matching", perfect_matching);
  ]

let find name = List.assoc_opt name catalogue

let names () = List.map fst catalogue

let name_of (p : t) =
  let (module P) = p in
  P.A.name

let description_of (p : t) =
  let (module P) = p in
  P.A.description

(** The daemon's request/response protocol: length-prefixed frames over
    a byte stream (a unix-domain socket between [certd --connect] and
    [certd-server], or a pipe between the server and its workers).

    Framing is a 4-byte big-endian payload length followed by the
    payload. The length is bounded by [max_frame] so a corrupt or
    hostile prefix cannot make a reader allocate gigabytes. Two reading
    disciplines are provided:

    - [read_frame]: blocking, for simple clients — returns [None] on a
      clean EOF at a frame boundary and raises [Sys_error] on a torn
      frame (EOF mid-payload is a protocol violation, not an end).
    - [conn]/[conn_feed]/[conn_next]: an incremental reassembly buffer
      for the server's select loop, where a readable fd yields an
      arbitrary byte count that may hold zero, one, or many frames.

    Payloads are line-oriented text (first token selects the variant),
    so a captured exchange is readable with [strings] and the decoder
    is total: any unrecognized payload decodes to [Error _], never an
    exception. Job ids and JSON lines never contain raw newlines (the
    manifest is line-oriented and the JSON emitter escapes control
    characters), which is what lets reports frame their fields one per
    line. *)

let max_frame = 1 lsl 24 (* 16 MiB: far above any report, below danger *)

(** Bumped whenever a frame changes shape. Version 2 added the hello
    handshake itself and the session-id/resume fields of [dopen]; a
    version-1 client's first frame is not a hello, so the server can
    reject it with a descriptive [error] frame instead of a decode
    failure mid-stream. *)
let protocol_version = 2

(* ---------------------------------------------------------------- *)
(* framing                                                           *)

(* both directions retry EINTR: the daemon handles SIGTERM while these
   calls are in flight, and an interrupted syscall is not a dead peer *)
let write_all fd (b : Bytes.t) =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd b !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(** [frame payload] is the on-wire bytes of one frame: the 4-byte
    big-endian length, then the payload. Raises [Sys_error] if the
    payload exceeds [max_frame]. *)
let frame payload =
  let len = String.length payload in
  if len > max_frame then
    raise (Sys_error (Printf.sprintf "frame of %d bytes exceeds the cap" len));
  let b = Bytes.create (4 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 b 4 len;
  Bytes.unsafe_to_string b

(** [write_frame fd payload] writes the 4-byte length then the payload.
    Raises [Sys_error] if the payload exceeds [max_frame]. *)
let write_frame fd payload = write_all fd (Bytes.unsafe_of_string (frame payload))

let decode_len b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

(* read exactly [n] bytes, or [None] on EOF at offset 0; a short read
   past offset 0 is a torn frame *)
let read_exact fd n =
  let b = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    match Unix.read fd b !off (n - !off) with
    | 0 -> eof := true
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  if !off = n then Some b
  else if !off = 0 then None
  else raise (Sys_error "connection closed mid-frame")

(** Blocking read of one whole frame; [None] on clean EOF. *)
let read_frame fd =
  match read_exact fd 4 with
  | None -> None
  | Some hdr ->
      let len = decode_len hdr 0 in
      if len > max_frame then
        raise (Sys_error (Printf.sprintf "frame of %d bytes exceeds the cap" len))
      else if len = 0 then Some ""
      else (
        match read_exact fd len with
        | None -> raise (Sys_error "connection closed mid-frame")
        | Some b -> Some (Bytes.to_string b))

(* ---------------------------------------------------------------- *)
(* incremental reassembly for select loops                           *)

type conn = { mutable pending : Bytes.t; mutable len : int }
(** bytes received but not yet consumed as complete frames *)

let conn_create () = { pending = Bytes.create 4096; len = 0 }

let conn_feed c (b : Bytes.t) n =
  if c.len + n > Bytes.length c.pending then begin
    let grown =
      Bytes.create (max (2 * Bytes.length c.pending) (c.len + n))
    in
    Bytes.blit c.pending 0 grown 0 c.len;
    c.pending <- grown
  end;
  Bytes.blit b 0 c.pending c.len n;
  c.len <- c.len + n

(** Pop the next complete frame, if the buffer holds one. Raises
    [Sys_error] on an over-cap length prefix — the connection is
    unrecoverable past that point. *)
let conn_next c =
  if c.len < 4 then None
  else
    let len = decode_len c.pending 0 in
    if len > max_frame then
      raise (Sys_error (Printf.sprintf "frame of %d bytes exceeds the cap" len))
    else if c.len < 4 + len then None
    else begin
      let payload = Bytes.sub_string c.pending 4 len in
      let rest = c.len - 4 - len in
      Bytes.blit c.pending (4 + len) c.pending 0 rest;
      c.len <- rest;
      Some payload
    end

let conn_buffered c = c.len

(* ---------------------------------------------------------------- *)
(* requests                                                          *)

type request =
  | Submit of {
      serial : int;  (** client-chosen token, echoed in the reply *)
      canonical : bool;  (** informational; replies carry both renderings *)
      deadline_ms : float;  (** per-job budget; 0 = the server's default *)
      line : string;  (** one manifest job line *)
    }
  | Stats_req  (** live queue/worker/stage statistics as JSON *)
  | Ping
  | Shutdown  (** drain the queue and exit, as SIGTERM would *)
  | Hello of { version : int }
      (** the mandatory first frame on every connection; a server
          seeing anything else (or a version it does not speak)
          replies with a descriptive [error] frame and closes *)
  | Delta_open of {
      serial : int;
      deadline_ms : float;
      sid : string;
          (** client-chosen session id (one word, no whitespace) —
              the key under which the journal records the stream *)
      resume : bool;
          (** re-attach to the journaled session [sid] after a server
              restart instead of certifying the base from scratch *)
      line : string;  (** one manifest job line: the session's base job *)
    }
      (** open a per-connection delta session: certify the base graph
          and keep its typed state (graph, representation, labeling,
          warm memo) daemon-side for subsequent edits. One session per
          connection; a second open replaces the first. *)
  | Delta_edit of {
      serial : int;
      deadline_ms : float;
      full : bool;  (** force a from-scratch recompute (differential) *)
      ops : string;  (** one edit line, e.g. ["add=0-1 del=2-3"] *)
    }
      (** apply one edit batch to the connection's open session *)

type response =
  | Report of {
      serial : int;
      id : string;  (** the job id, so clients need not parse the JSON *)
      status : string;  (** [Stats.status_name] of the terminal status *)
      json : string;  (** full per-job JSON line *)
      canonical : string;  (** run-invariant projection, batch-comparable *)
    }
  | Overloaded of { serial : int; reason : string }
      (** admission control refused the job: queue full, client quota
          exceeded, or the server is draining. Retry later. *)
  | Err of { serial : int; reason : string }
      (** malformed request or unserveable job ([serial = -1] when the
          error is not tied to a submission) *)
  | Stats_reply of string  (** the stats JSON object *)
  | Pong
  | Hello_ok of { version : int }  (** handshake accepted *)
  | Dreport of {
      serial : int;
      id : string;
      status : string;
      json : string;
      canonical : string;
      patch : string;  (** one-line patch-info JSON (mode, dirty windows,
                           reused/changed labels, memo hits) *)
    }  (** the reply to [Delta_open] and [Delta_edit] *)

let encode_request = function
  | Submit { serial; canonical; deadline_ms; line } ->
      Printf.sprintf "submit %d %d %.3f\n%s" serial
        (if canonical then 1 else 0)
        deadline_ms line
  | Stats_req -> "stats"
  | Ping -> "ping"
  | Shutdown -> "shutdown"
  | Hello { version } -> Printf.sprintf "hello %d" version
  | Delta_open { serial; deadline_ms; sid; resume; line } ->
      Printf.sprintf "dopen %d %.3f %d %s\n%s" serial deadline_ms
        (if resume then 1 else 0)
        sid line
  | Delta_edit { serial; deadline_ms; full; ops } ->
      (* the edit line may be empty (a no-op batch), so it always
         travels as a body — [split_head] keeps "" distinct from no
         body at all *)
      Printf.sprintf "dedit %d %d %.3f\n%s" serial
        (if full then 1 else 0)
        deadline_ms ops

let encode_response = function
  | Report { serial; id; status; json; canonical } ->
      Printf.sprintf "report %d %s\n%s\n%s\n%s" serial status id json canonical
  | Overloaded { serial; reason } ->
      Printf.sprintf "overloaded %d %s" serial reason
  | Err { serial; reason } -> Printf.sprintf "error %d %s" serial reason
  | Stats_reply json -> "stats\n" ^ json
  | Pong -> "pong"
  | Hello_ok { version } -> Printf.sprintf "hello-ok %d" version
  | Dreport { serial; id; status; json; canonical; patch } ->
      Printf.sprintf "dreport %d %s\n%s\n%s\n%s\n%s" serial status id json
        canonical patch

(* split off the first line; the body (if any) keeps no leading '\n' *)
let split_head s =
  match String.index_opt s '\n' with
  | None -> (s, None)
  | Some i ->
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let decode_request payload =
  let head, body = split_head payload in
  match split_words head with
  | [ "submit"; serial; canonical; deadline ] -> (
      match
        (int_of_string_opt serial, canonical, float_of_string_opt deadline, body)
      with
      | Some serial, ("0" | "1"), Some deadline_ms, Some line
        when deadline_ms >= 0.0 ->
          Ok
            (Submit { serial; canonical = canonical = "1"; deadline_ms; line })
      | _ -> Error "malformed submit header")
  | [ "stats" ] when body = None -> Ok Stats_req
  | [ "ping" ] when body = None -> Ok Ping
  | [ "shutdown" ] when body = None -> Ok Shutdown
  | [ "hello"; version ] when body = None -> (
      match int_of_string_opt version with
      | Some version when version >= 1 -> Ok (Hello { version })
      | _ -> Error "malformed hello header")
  | [ "dopen"; serial; deadline; resume; sid ] -> (
      match
        (int_of_string_opt serial, float_of_string_opt deadline, resume, body)
      with
      | Some serial, Some deadline_ms, ("0" | "1"), Some line
        when deadline_ms >= 0.0 && sid <> "" ->
          Ok (Delta_open { serial; deadline_ms; sid; resume = resume = "1"; line })
      | _ -> Error "malformed dopen header")
  | [ "dedit"; serial; full; deadline ] -> (
      match
        (int_of_string_opt serial, full, float_of_string_opt deadline, body)
      with
      | Some serial, ("0" | "1"), Some deadline_ms, Some ops
        when deadline_ms >= 0.0 ->
          Ok (Delta_edit { serial; deadline_ms; full = full = "1"; ops })
      | _ -> Error "malformed dedit header")
  | w :: _ -> Error (Printf.sprintf "unknown request %S" w)
  | [] -> Error "empty request"

let decode_response payload =
  let head, body = split_head payload in
  match split_words head with
  | "report" :: serial :: status -> (
      (* the status name is a single word; reject trailing garbage *)
      match (int_of_string_opt serial, status, body) with
      | Some serial, [ status ], Some body -> (
          match String.split_on_char '\n' body with
          | [ id; json; canonical ] ->
              Ok (Report { serial; id; status; json; canonical })
          | _ -> Error "report body must be id, json, canonical — one per line")
      | _ -> Error "malformed report header")
  | "overloaded" :: serial :: reason when body = None -> (
      match int_of_string_opt serial with
      | Some serial -> Ok (Overloaded { serial; reason = String.concat " " reason })
      | None -> Error "malformed overloaded header")
  | "error" :: serial :: reason when body = None -> (
      match int_of_string_opt serial with
      | Some serial -> Ok (Err { serial; reason = String.concat " " reason })
      | None -> Error "malformed error header")
  | [ "stats" ] -> (
      match body with
      | Some json -> Ok (Stats_reply json)
      | None -> Error "stats reply carries no body")
  | [ "pong" ] when body = None -> Ok Pong
  | [ "hello-ok"; version ] when body = None -> (
      match int_of_string_opt version with
      | Some version when version >= 1 -> Ok (Hello_ok { version })
      | _ -> Error "malformed hello-ok header")
  | "dreport" :: serial :: status -> (
      match (int_of_string_opt serial, status, body) with
      | Some serial, [ status ], Some body -> (
          match String.split_on_char '\n' body with
          | [ id; json; canonical; patch ] ->
              Ok (Dreport { serial; id; status; json; canonical; patch })
          | _ ->
              Error
                "dreport body must be id, json, canonical, patch — one per line")
      | _ -> Error "malformed dreport header")
  | w :: _ -> Error (Printf.sprintf "unknown response %S" w)
  | [] -> Error "empty response"

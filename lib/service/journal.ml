(** A checksummed write-ahead log of the daemon's delta-session
    traffic, built on the [Blob_io] record-of-operations API so the
    fault plans of PR 3 ([torn@]/[flip@]/[crash@]) apply to the journal
    exactly as they do to the cert store.

    The journal records {e judgements}, never certificates: each record
    carries the session id, the request that was served (base job line
    or edit batch) and the reply that was sent. Recovery therefore
    cannot fabricate an unverified serve — rebuilding a session means
    re-running the full prove/verify discipline over the journaled
    request sequence, and the deterministic pipeline guarantees the
    replayed canonical lines match the journaled ones (the server
    asserts this and counts divergence).

    On-disk format, append-only [journal.log]:

    {v J1 <kind> <len> <sum>\n<payload bytes>\n v}

    where [kind] is [open]/[step]/[close], [len] is the payload byte
    count, and [sum] is 64-bit FNV-1a over the kind and payload
    ([Lcp_util.Hash64], the cert-store checksum). Payload fields are
    one per line and newline-free by construction (manifest lines are
    line-oriented, the JSON emitter escapes control characters, edit
    batches are single lines).

    Recovery is total: [decode] never raises on hostile bytes — it
    returns the longest valid prefix of records plus a reason for the
    first undecodable byte, and [create] rewrites the file to that
    prefix, moving the torn tail to [quarantine/] for post-mortem.

    Durability knobs: [fsync] policy ([`Always], [`Never], [`Every n])
    and [checkpoint_every] — after that many appends the journal is
    compacted to a snapshot of the live sessions (closed sessions
    drop out) via the same tmp-then-rename discipline as the store. *)

module Hash64 = Lcp_util.Hash64

let file_name = "journal.log"
let tmp_name = "journal.tmp"
let quarantine_dirname = "quarantine"

(* far above any reply, far below an allocation attack *)
let max_payload = 1 lsl 24

(* ---------------------------------------------------------------- *)
(* records                                                           *)

type reply = {
  r_id : string;
  r_status : string;
  r_json : string;
  r_canonical : string;
  r_patch : string;
}
(** the served [dreport], minus the wire serial (the serial of a
    deduplicated resend is echoed from the incoming frame) *)

type record =
  | Opened of { sid : string; serial : int; line : string; reply : reply }
      (** a delta session was opened on base job [line] and its open
          report was served *)
  | Stepped of {
      sid : string;
      serial : int;
      full : bool;
      ops : string;
      reply : reply;
    }  (** one edit batch was applied and its report served *)
  | Closed of { sid : string }
      (** the session ended cleanly (client disconnect after the
          stream, or an explicit close) — drop it at the next
          checkpoint and refuse resumption *)

let record_kind = function
  | Opened _ -> "open"
  | Stepped _ -> "step"
  | Closed _ -> "close"

let payload_of_record = function
  | Opened { sid; serial; line; reply } ->
      String.concat "\n"
        [
          sid;
          string_of_int serial;
          line;
          reply.r_status;
          reply.r_id;
          reply.r_json;
          reply.r_canonical;
          reply.r_patch;
        ]
  | Stepped { sid; serial; full; ops; reply } ->
      String.concat "\n"
        [
          sid;
          string_of_int serial;
          (if full then "1" else "0");
          ops;
          reply.r_status;
          reply.r_id;
          reply.r_json;
          reply.r_canonical;
          reply.r_patch;
        ]
  | Closed { sid } -> sid

let record_of_payload kind payload =
  match kind with
  | "open" -> (
      match String.split_on_char '\n' payload with
      | [ sid; serial; line; r_status; r_id; r_json; r_canonical; r_patch ]
        -> (
          match int_of_string_opt serial with
          | Some serial when sid <> "" ->
              Some
                (Opened
                   {
                     sid;
                     serial;
                     line;
                     reply = { r_id; r_status; r_json; r_canonical; r_patch };
                   })
          | _ -> None)
      | _ -> None)
  | "step" -> (
      match String.split_on_char '\n' payload with
      | [
       sid; serial; full; ops; r_status; r_id; r_json; r_canonical; r_patch;
      ] -> (
          match (int_of_string_opt serial, full) with
          | Some serial, ("0" | "1") when sid <> "" ->
              Some
                (Stepped
                   {
                     sid;
                     serial;
                     full = full = "1";
                     ops;
                     reply = { r_id; r_status; r_json; r_canonical; r_patch };
                   })
          | _ -> None)
      | _ -> None)
  | "close" ->
      if payload <> "" && not (String.contains payload '\n') then
        Some (Closed { sid = payload })
      else None
  | _ -> None

let record_sum kind payload =
  Hash64.init
  |> Fun.flip Hash64.string kind
  |> Fun.flip Hash64.int (String.length payload)
  |> Fun.flip Hash64.string payload

(** the exact on-disk bytes of one record *)
let encode_record r =
  let kind = record_kind r in
  let payload = payload_of_record r in
  Printf.sprintf "J1 %s %d %s\n%s\n" kind (String.length payload)
    (Hash64.to_hex (record_sum kind payload))
    payload

(** Total decoder: the longest valid prefix of [s] as records, the byte
    length of that prefix, and — when the prefix is proper — a reason
    for the first undecodable byte. Never raises; the inverse of
    concatenated [encode_record] on well-formed input. *)
let decode s =
  let n = String.length s in
  let records = ref [] in
  let off = ref 0 in
  let stop = ref None in
  let fail reason = stop := Some reason in
  while !stop = None && !off < n do
    let start = !off in
    (* header line: "J1 <kind> <len> <sum>" — short, so a missing
       newline in the first 80 bytes is a torn or foreign tail *)
    match String.index_from_opt s start '\n' with
    | Some hdr_end when hdr_end - start <= 80 -> (
        let header = String.sub s start (hdr_end - start) in
        match String.split_on_char ' ' header with
        | [ "J1"; kind; len_s; sum_hex ] -> (
            match (int_of_string_opt len_s, Hash64.of_hex sum_hex) with
            | Some len, Some sum when len >= 0 && len <= max_payload ->
                let body_start = hdr_end + 1 in
                if body_start + len + 1 > n then fail "torn record tail"
                else if s.[body_start + len] <> '\n' then
                  fail "record not newline-terminated"
                else
                  let payload = String.sub s body_start len in
                  if not (Hash64.equal sum (record_sum kind payload)) then
                    fail "checksum mismatch"
                  else (
                    match record_of_payload kind payload with
                    | Some r ->
                        records := r :: !records;
                        off := body_start + len + 1
                    | None -> fail "malformed payload")
            | _ -> fail "malformed record header")
        | _ -> fail "malformed record header")
    | Some _ -> fail "oversized record header"
    | None -> fail "torn record header"
  done;
  (List.rev !records, !off, !stop)

(* ---------------------------------------------------------------- *)
(* live session state                                                *)

type step = { p_serial : int; p_full : bool; p_ops : string; p_reply : reply }

type session = {
  z_sid : string;
  z_serial : int;  (** the open's serial *)
  z_line : string;  (** the base job line *)
  z_open : reply;
  mutable z_steps : step list;  (** newest first *)
  mutable z_applied : int;  (** highest edit serial applied; open = 0 *)
}

type counters = {
  mutable appended : int;  (** records appended this process *)
  mutable fsyncs : int;
  mutable checkpoints : int;
  mutable recovered_records : int;  (** valid records found at startup *)
  mutable recovered_sessions : int;  (** live sessions rebuilt at startup *)
  mutable torn_bytes : int;  (** quarantined tail bytes at startup *)
  mutable quarantined : int;  (** torn tails moved to quarantine/ *)
  mutable replay_skipped : int;
      (** records dropped during replay (step for an unknown or
          out-of-order session — possible only under manual edits) *)
}

type fsync_policy = [ `Always | `Never | `Every of int ]

type t = {
  io : Blob_io.t;
  dir : string;
  fsync : fsync_policy;
  checkpoint_every : int;  (** <= 0 disables compaction *)
  sessions : (string, session) Hashtbl.t;
  c : counters;
  mutable since_sync : int;
  mutable since_checkpoint : int;
}

let path t = Filename.concat t.dir file_name

let fsync_policy_to_string = function
  | `Always -> "always"
  | `Never -> "never"
  | `Every n -> Printf.sprintf "every=%d" n

let fsync_policy_of_string s =
  match s with
  | "always" -> Some `Always
  | "never" -> Some `Never
  | _ -> (
      match String.index_opt s '=' with
      | Some i when String.sub s 0 i = "every" -> (
          match
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          with
          | Some n when n >= 1 -> Some (`Every n)
          | _ -> None)
      | _ -> None)

(* ---------------------------------------------------------------- *)
(* replay                                                            *)

(* apply one journal record to the session map; total — a record that
   does not fit (unknown sid, serial gap) is counted and skipped, never
   fatal, because a hand-edited or cross-version journal must not stop
   the daemon from starting *)
let apply t r =
  match r with
  | Opened { sid; serial; line; reply } ->
      Hashtbl.replace t.sessions sid
        {
          z_sid = sid;
          z_serial = serial;
          z_line = line;
          z_open = reply;
          z_steps = [];
          z_applied = 0;
        }
  | Stepped { sid; serial; full; ops; reply } -> (
      match Hashtbl.find_opt t.sessions sid with
      | Some z when serial = z.z_applied + 1 ->
          z.z_steps <-
            { p_serial = serial; p_full = full; p_ops = ops; p_reply = reply }
            :: z.z_steps;
          z.z_applied <- serial
      | _ -> t.c.replay_skipped <- t.c.replay_skipped + 1)
  | Closed { sid } ->
      if Hashtbl.mem t.sessions sid then Hashtbl.remove t.sessions sid
      else t.c.replay_skipped <- t.c.replay_skipped + 1

let quarantine t tail =
  let qdir = Filename.concat t.dir quarantine_dirname in
  (try if not (t.io.Blob_io.is_directory qdir) then t.io.Blob_io.mkdir qdir
   with Sys_error _ -> ());
  let name =
    let existing =
      try Array.length (t.io.Blob_io.list_dir qdir) with Sys_error _ -> 0
    in
    Printf.sprintf "tail-%04d" existing
  in
  (try t.io.Blob_io.write_file (Filename.concat qdir name) tail
   with Sys_error _ -> ());
  t.c.quarantined <- t.c.quarantined + 1

(* rewrite the journal to exactly the given records, tmp-then-rename *)
let rewrite t records =
  let buf = Buffer.create 4096 in
  List.iter (fun r -> Buffer.add_string buf (encode_record r)) records;
  let tmp = Filename.concat t.dir tmp_name in
  t.io.Blob_io.write_file tmp (Buffer.contents buf);
  t.io.Blob_io.sync tmp;
  t.io.Blob_io.rename tmp (path t)

let recover t =
  let p = path t in
  if t.io.Blob_io.file_exists p then begin
    let raw = t.io.Blob_io.read_file p in
    let records, prefix_len, torn = decode raw in
    t.c.recovered_records <- List.length records;
    List.iter (apply t) records;
    t.c.recovered_sessions <- Hashtbl.length t.sessions;
    match torn with
    | None -> ()
    | Some _reason ->
        t.c.torn_bytes <- String.length raw - prefix_len;
        quarantine t
          (String.sub raw prefix_len (String.length raw - prefix_len));
        (* drop the tail so later appends start at a record boundary *)
        rewrite t records
  end

(** Open (or create) the journal under [dir], replaying any existing
    log: the longest valid prefix rebuilds the live-session map, a torn
    or corrupt tail is quarantined and truncated away. Never raises on
    corrupt journal {e contents}; I/O failures surface as [Sys_error]
    like every other [Blob_io] operation. *)
let create ?(io = Blob_io.real) ?(fsync = `Every 8) ?(checkpoint_every = 256)
    ~dir () =
  if not (io.Blob_io.is_directory dir) then io.Blob_io.mkdir dir;
  let t =
    {
      io;
      dir;
      fsync;
      checkpoint_every;
      sessions = Hashtbl.create 64;
      c =
        {
          appended = 0;
          fsyncs = 0;
          checkpoints = 0;
          recovered_records = 0;
          recovered_sessions = 0;
          torn_bytes = 0;
          quarantined = 0;
          replay_skipped = 0;
        };
      since_sync = 0;
      since_checkpoint = 0;
    }
  in
  recover t;
  t

(* ---------------------------------------------------------------- *)
(* appending                                                         *)

let snapshot_records t =
  Hashtbl.fold (fun _ z acc -> z :: acc) t.sessions []
  |> List.sort (fun a b -> compare a.z_sid b.z_sid)
  |> List.concat_map (fun z ->
         Opened
           { sid = z.z_sid; serial = z.z_serial; line = z.z_line; reply = z.z_open }
         :: (List.rev z.z_steps
            |> List.map (fun p ->
                   Stepped
                     {
                       sid = z.z_sid;
                       serial = p.p_serial;
                       full = p.p_full;
                       ops = p.p_ops;
                       reply = p.p_reply;
                     })))

let checkpoint t =
  rewrite t (snapshot_records t);
  t.since_checkpoint <- 0;
  t.c.checkpoints <- t.c.checkpoints + 1

let maybe_sync t =
  let sync () =
    t.io.Blob_io.sync (path t);
    t.c.fsyncs <- t.c.fsyncs + 1;
    t.since_sync <- 0
  in
  match t.fsync with
  | `Always -> sync ()
  | `Never -> ()
  | `Every n ->
      t.since_sync <- t.since_sync + 1;
      if t.since_sync >= n then sync ()

let append t r =
  apply t r;
  t.io.Blob_io.append_file (path t) (encode_record r);
  t.c.appended <- t.c.appended + 1;
  maybe_sync t;
  t.since_checkpoint <- t.since_checkpoint + 1;
  if t.checkpoint_every > 0 && t.since_checkpoint >= t.checkpoint_every then
    checkpoint t

let log_open t ~sid ~serial ~line reply =
  append t (Opened { sid; serial; line; reply })

let log_step t ~sid ~serial ~full ~ops reply =
  append t (Stepped { sid; serial; full; ops; reply })

let log_close t ~sid =
  (* closing an unknown session is a no-op, not a journal entry *)
  if Hashtbl.mem t.sessions sid then append t (Closed { sid })

(* ---------------------------------------------------------------- *)
(* lookups for the server's resume path                              *)

let find t sid = Hashtbl.find_opt t.sessions sid
let live_sessions t = Hashtbl.length t.sessions

(** the journaled reply for edit [serial] of [sid] ([0] = the open),
    for answering an idempotent resend without recomputation *)
let reply_for t ~sid ~serial =
  match Hashtbl.find_opt t.sessions sid with
  | None -> None
  | Some z ->
      if serial = 0 then Some z.z_open
      else
        List.find_map
          (fun p -> if p.p_serial = serial then Some p.p_reply else None)
          z.z_steps

let counters t = t.c

let counters_json t =
  Printf.sprintf
    "{\"appended\":%d,\"fsyncs\":%d,\"checkpoints\":%d,\
     \"recovered_records\":%d,\"recovered_sessions\":%d,\"torn_bytes\":%d,\
     \"quarantined\":%d,\"replay_skipped\":%d,\"live_sessions\":%d}"
    t.c.appended t.c.fsyncs t.c.checkpoints t.c.recovered_records
    t.c.recovered_sessions t.c.torn_bytes t.c.quarantined t.c.replay_skipped
    (Hashtbl.length t.sessions)

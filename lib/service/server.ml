(** The persistent certification daemon: a single-threaded select/poll
    event loop owning a unix-domain socket, a bounded admission queue,
    and a supervised pool of long-lived worker processes.

    {b Admission control.} Every [Submit] passes two gates before it is
    queued: a global cap ([queue_cap]) on jobs waiting for a worker,
    and a per-client cap ([client_cap]) on how many of those one
    connection may hold. Either gate refusing answers [Overloaded]
    immediately — explicit backpressure, never an unbounded buffer —
    and the counters on the stats endpoint record every refusal.
    Queued jobs are dispatched round-robin {e across clients}, so a
    client that floods its quota still cannot starve a client that
    submits one job at a time. Replies cannot stall the loop either:
    client sockets are nonblocking, undeliverable frames queue per
    client and drain through select's write set, and a client that
    stops reading its replies past a byte cap is dropped.

    {b Worker supervision.} Workers are forked once and live for the
    daemon's whole life, amortizing the per-batch fork cost of the old
    one-shot driver to zero and keeping each worker's in-memory cache
    tier warm across jobs. The parent watches every worker pipe; EOF
    means the worker died (a real crash, or [Blob_io.Crashed] — a
    worker that sees a simulated process death [_exit]s, because a
    dead process does not handle exceptions). The supervisor reaps the
    corpse, requeues the in-flight job ({e once} — a job that kills
    two workers is reported [Failed], not retried forever), and forks
    a replacement into the same slot. A slot whose worker dies three
    times before ever signalling readiness (e.g. an uncreatable cache
    directory) is stopped rather than respawned in a hot loop.

    {b Graceful degradation and observability.} A worker whose store
    demoted to memory-only keeps serving — its reports carry
    [served_degraded] — and the daemon aggregates per-worker store
    counters (corruption, quarantine, orphan sweeps) plus the
    [Timing] percentile machinery into a live [Stats_req] endpoint:
    p50/p99 per stage, queue depth and high-water mark, drops, worker
    restarts.

    {b Shutdown.} SIGTERM/SIGINT (via the self-pipe trick, so the
    handler does nothing async-unsafe) close the listener, refuse new
    submissions with [Overloaded], drain every queued job through the
    workers, answer the last client, reap the pool, unlink the socket,
    and return.

    {b Durability.} With [journal_dir] set, every delta-session open
    and edit is appended to a checksummed write-ahead [Journal]
    {e before} its reply leaves the daemon. A client whose connection
    died mid-stream (the server was killed and respawned, or the
    daemon dropped it) re-attaches with [dopen resume=1 sid]: the
    journaled open report is served immediately, the session state is
    rebuilt worker-side by replaying the journaled request sequence
    through the full prove/verify discipline (every replayed canonical
    line is checked against the journal — divergence is counted, and
    would indicate non-determinism, never an unverified serve), and
    an already-served edit serial is answered from the journal without
    recomputation — exactly-once from the client's point of view.

    {b Single instance.} The daemon takes an [fcntl] lock on
    [socket_path ^ ".pid"] before touching the socket. A second server
    started on the same path fails with [Sys_error] instead of racing
    the first for the socket file, and a stale socket left by a killed
    daemon is unlinked safely — holding the lock proves its owner is
    dead. *)

type config = {
  socket_path : string;
  workers : int;  (** size of the long-lived worker pool, >= 1 *)
  queue_cap : int;  (** global admission-queue bound, >= 1 *)
  client_cap : int;  (** per-client share of the queue, >= 1 *)
  make_engine : worker:int -> Timing.t option -> Engine.t;
      (** called once {e inside} each worker process, after the fork;
          [worker] is the pool slot, letting drills give each worker
          its own fault plan *)
  timed : bool;  (** ship per-stage samples from workers to the stats sink *)
  verbose : bool;
  journal_dir : string option;
      (** where the write-ahead session journal lives; [None] disables
          durability (sessions die with the process, as before) *)
  journal_fsync : Journal.fsync_policy;
  journal_checkpoint : int;  (** appends between compactions; <= 0 never *)
}

let default_queue_cap = 64

let default_client_cap cap = max 1 (cap / 4)

(* ---------------------------------------------------------------- *)
(* parent <-> worker messages (Marshal inside Wire frames)           *)

type delta_op =
  | Dopen of Manifest.job  (** (re)open the client's delta session *)
  | Dedit of { full : bool; ops : string }  (** one edit batch *)

type to_worker =
  | Job of { token : int; job : Manifest.job; deadline_ms : float }
  | Delta_job of {
      token : int;
      client : int;  (** sessions are keyed by client id in the worker *)
      deadline_ms : float;
      op : delta_op;
    }
  | Delta_close of { client : int }
      (** drop the client's session (disconnect, or re-open that landed
          on another slot); no reply *)
  | Quit

type from_worker =
  | Ready  (** engine built; the slot may receive jobs *)
  | Done of {
      token : int;
      report : Stats.job_report;
      patch : string option;  (** patch-info JSON for delta jobs *)
      samples : Timing.samples;
      store_stats : Cert_store.stats;
      degraded : bool;
    }

(* a Dedit that arrives with no live session (its open failed, or a
   prior incarnation of this slot held it) must still answer *)
let no_session_report =
  {
    Stats.r_id = "-";
    r_property = "-";
    r_k = 0;
    r_n = 0;
    r_m = 0;
    r_status = Stats.Failed "no open delta session; send a dopen first";
    r_cache_hit = false;
    r_prove_ms = 0.0;
    r_verify_ms = 0.0;
    r_total_ms = 0.0;
    r_label_bits = 0;
    r_bundle_bits = 0;
    r_reject_reasons = [];
    r_retries = 0;
  }

(* the whole life of a worker incarnation: build the engine, announce
   readiness, then serve jobs until Quit/EOF. A simulated process death
   (Blob_io.Crashed) exits the process — that is its meaning — and the
   supervisor sees EOF. Delta sessions live and die with the
   incarnation: the supervisor re-pins clients on a respawn. *)
let worker_main ~make_engine ~timed ~idx rfd wfd =
  let send (msg : from_worker) =
    Wire.write_frame wfd (Marshal.to_string msg [])
  in
  let timing = if timed then Some (Timing.create ()) else None in
  let engine =
    match make_engine ~worker:idx timing with
    | engine -> engine
    | exception Blob_io.Crashed _ -> Unix._exit 3
    | exception e ->
        Printf.eprintf "certd-server worker %d: cannot start: %s\n%!" idx
          (Printexc.to_string e);
        Unix._exit 4
  in
  (try send Ready with Sys_error _ | Unix.Unix_error _ -> Unix._exit 1);
  let sessions : (int, Delta.session) Hashtbl.t = Hashtbl.create 8 in
  (* per-job memo-counter DELTAS into the timing sink: [flush] resets
     the counters after every job and the parent's [absorb] merges by
     summation, so shipping cumulative totals would overcount *)
  let with_memo_counters f =
    let before =
      match timing with Some _ -> Lcp_cert.Memo.counters () | None -> []
    in
    let result = f () in
    (match timing with
    | Some tsink ->
        List.iter
          (fun (name, v) ->
            let v0 = Option.value ~default:0 (List.assoc_opt name before) in
            Timing.set_counter tsink name (v - v0))
          (Lcp_cert.Memo.counters ())
    | None -> ());
    result
  in
  let retry_of deadline_ms =
    if deadline_ms > 0.0 then
      Some { (Engine.retry engine) with Engine.deadline_ms }
    else None
  in
  let finish ~token ~report ~patch =
    let samples =
      match timing with
      | Some t -> Timing.flush t
      | None -> { Timing.w_stages = []; w_ctrs = [] }
    in
    let store = Engine.store engine in
    try
      send
        (Done
           {
             token;
             report;
             patch;
             samples;
             store_stats = Cert_store.stats store;
             degraded = Cert_store.degraded store;
           })
    with Sys_error _ | Unix.Unix_error _ -> Unix._exit 1
  in
  (* group-commit any dirty records before dying; a flush that crashes
     or faults must not turn a clean exit into a hang (the records it
     loses are future cache misses, nothing more) *)
  let exit_clean () =
    (try Engine.flush engine with _ -> ());
    Unix._exit 0
  in
  let rec serve () =
    match Wire.read_frame rfd with
    | None | Some "" -> exit_clean () (* parent is gone: die quietly *)
    | exception (Sys_error _ | Unix.Unix_error _) -> exit_clean ()
    | Some payload -> (
        match (Marshal.from_string payload 0 : to_worker) with
        | Quit -> exit_clean ()
        | Job { token; job; deadline_ms } -> (
            match
              with_memo_counters (fun () ->
                  Engine.run_job ?retry:(retry_of deadline_ms) engine job)
            with
            | exception Blob_io.Crashed _ -> Unix._exit 3
            | report ->
                finish ~token ~report ~patch:None;
                serve ())
        | Delta_close { client } ->
            Hashtbl.remove sessions client;
            serve ()
        | Delta_job { token; client; deadline_ms; op } -> (
            let retry = retry_of deadline_ms in
            let run () =
              match op with
              | Dopen job -> (
                  match Delta.create ?retry engine job with
                  | Ok (session, report, info) ->
                      Hashtbl.replace sessions client session;
                      (report, info)
                  | Error (report, info) ->
                      (* a failed open leaves no session to edit *)
                      Hashtbl.remove sessions client;
                      (report, info))
              | Dedit { full; ops } -> (
                  match Hashtbl.find_opt sessions client with
                  | None -> (no_session_report, Delta.no_info "none")
                  | Some s -> Delta.step ?retry s ~full ops)
            in
            match with_memo_counters run with
            | exception Blob_io.Crashed _ -> Unix._exit 3
            | report, info ->
                finish ~token ~report ~patch:(Some (Delta.info_json info));
                serve ()))
  in
  serve ()

(* ---------------------------------------------------------------- *)
(* supervisor state                                                  *)

type jkind =
  | Jk_submit  (** a one-shot [Submit]: any worker may run it *)
  | Jk_open  (** [Delta_open]: any worker; pins the client to its slot *)
  | Jk_edit of { full : bool; ops : string }
      (** [Delta_edit]: only the pinned slot holds the session *)

type job_ctx = {
  jc_serial : int;  (** the client's token, echoed in the reply *)
  jc_client : int;
  jc_job : Manifest.job;
      (** the job itself, or — for [Jk_edit] — the session's base job,
          so a parent-made [Failed] report still names the session *)
  jc_kind : jkind;
  jc_deadline_ms : float;
  jc_sid : string option;  (** wire session id, for journaling *)
  jc_line : string;  (** the open's verbatim manifest line, journaled *)
  jc_internal : bool;
      (** a resume-rebuild job: replayed from the journal to
          reconstruct worker state — no client reply, no re-journal *)
  jc_expect : string option;
      (** the journaled canonical line an internal rebuild must
          reproduce (the determinism check) *)
  mutable jc_retried : bool;  (** already survived one worker death *)
  mutable jc_token : int;  (** dispatch token of the current attempt *)
}

type worker = {
  w_idx : int;
  mutable w_pid : int;
  mutable w_to : Unix.file_descr;
  mutable w_from : Unix.file_descr;
  mutable w_conn : Wire.conn;
  mutable w_ready : bool;
  mutable w_busy : job_ctx option;
  mutable w_done : int;  (** jobs completed, across all incarnations *)
  mutable w_preready_deaths : int;  (** consecutive deaths before Ready *)
  mutable w_stopped : bool;  (** supervisor gave up respawning this slot *)
  mutable w_last_store : Cert_store.stats option;
  mutable w_degraded : bool;
}

type client = {
  c_id : int;
  c_fd : Unix.file_descr;  (** nonblocking for the daemon's whole life *)
  c_conn : Wire.conn;
  c_queue : job_ctx Queue.t;
  c_out : string Queue.t;  (** encoded frames not yet on the wire *)
  mutable c_out_off : int;  (** bytes of the head frame already written *)
  mutable c_out_bytes : int;  (** total unwritten bytes across [c_out] *)
  mutable c_alive : bool;
  mutable c_hello : bool;  (** the version handshake completed *)
  mutable c_closing : bool;
      (** a fatal protocol error was answered; close the connection
          once the error frame has drained *)
  mutable c_slot : int option;
      (** worker slot holding this client's delta session — set when a
          [Jk_open] is dispatched; edits are only eligible for it *)
  mutable c_opened : bool;
      (** a session open has been queued and not since lost; gates
          edit admission *)
  mutable c_base : Manifest.job option;  (** the session's base job *)
  mutable c_sid : string option;  (** the open session's wire id *)
}

type counters = {
  mutable submitted : int;
  mutable completed : int;
  mutable served : int;  (** fresh + cached + degraded *)
  mutable served_degraded : int;
  mutable declined : int;
  mutable failed : int;
  mutable input_error : int;
  mutable unsound : int;
  mutable requeued : int;  (** jobs given their one post-crash retry *)
  mutable dropped : int;  (** queued jobs of clients that disconnected *)
  mutable rejected_overload : int;  (** queue full, or draining *)
  mutable rejected_quota : int;  (** per-client cap exceeded *)
  mutable parse_errors : int;
  mutable restarts : int;  (** workers respawned after a death *)
  mutable max_queue : int;
  mutable resumed : int;  (** sessions re-attached from the journal *)
  mutable rebuilt_steps : int;  (** internal replay jobs completed *)
  mutable resume_mismatch : int;
      (** replayed canonical lines that diverged from the journal *)
  mutable dedup_served : int;
      (** already-applied edit serials answered from the journal *)
  mutable journal_errors : int;  (** appends lost to I/O failure *)
  mutable bad_hello : int;  (** connections rejected by the handshake *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  mutable listening : bool;
  pid_fd : Unix.file_descr;  (** holds the instance lock for life *)
  pidfile : string;
  journal : Journal.t option;
  sig_r : Unix.file_descr;
  sig_w : Unix.file_descr;
  timing : Timing.t;
  workers : worker array;
  mutable clients : client list;
  retry_q : job_ctx Queue.t;  (** crash-orphaned jobs, served first *)
  mutable rr : int;  (** id of the last client a job was taken from *)
  mutable next_client : int;
  mutable next_token : int;
  mutable draining : bool;
  mutable retired_store : Cert_store.stats;
      (** summed store counters of dead worker incarnations *)
  started : float;
  c : counters;
}

let queue_depth t =
  Queue.length t.retry_q
  + List.fold_left (fun acc c -> acc + Queue.length c.c_queue) 0 t.clients

let inflight t =
  Array.fold_left
    (fun acc w -> if w.w_busy <> None then acc + 1 else acc)
    0 t.workers

let log t fmt =
  if t.cfg.verbose then Printf.printf ("certd-server: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stdout fmt

(* ---------------------------------------------------------------- *)
(* worker lifecycle                                                  *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rec reap pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid
  | exception Unix.Unix_error _ -> ()

let spawn_worker t idx =
  let w = t.workers.(idx) in
  let p2w_r, p2w_w = Unix.pipe ~cloexec:false () in
  let w2p_r, w2p_w = Unix.pipe ~cloexec:false () in
  (* a child forked mid-buffer would duplicate unflushed output *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* the child sheds every parent-side fd and the parent's signal
         disposition before running the worker loop *)
      Sys.set_signal Sys.sigterm Sys.Signal_default;
      Sys.set_signal Sys.sigint Sys.Signal_default;
      if t.listening then close_quietly t.listen_fd;
      (* fcntl locks are per-process: closing the inherited fd here
         does not release the parent's instance lock *)
      close_quietly t.pid_fd;
      close_quietly t.sig_r;
      close_quietly t.sig_w;
      List.iter (fun c -> close_quietly c.c_fd) t.clients;
      Array.iter
        (fun other ->
          if other.w_idx <> idx && other.w_pid > 0 && not other.w_stopped
          then begin
            close_quietly other.w_to;
            close_quietly other.w_from
          end)
        t.workers;
      close_quietly p2w_w;
      close_quietly w2p_r;
      worker_main ~make_engine:t.cfg.make_engine ~timed:t.cfg.timed ~idx p2w_r
        w2p_w
  | pid ->
      Unix.close p2w_r;
      Unix.close w2p_w;
      w.w_pid <- pid;
      w.w_to <- p2w_w;
      w.w_from <- w2p_r;
      w.w_conn <- Wire.conn_create ();
      w.w_ready <- false;
      w.w_busy <- None

(* ---------------------------------------------------------------- *)
(* replies                                                           *)

(* best-effort session teardown in a pinned slot: the worker is long
   past due for a [Delta_close] when its client died or re-opened
   elsewhere; a write failure means the slot is dying anyway and takes
   the session with it *)
let send_close t idx ~client =
  let w = t.workers.(idx) in
  if w.w_pid > 0 && not w.w_stopped then
    try Wire.write_frame w.w_to (Marshal.to_string (Delta_close { client }) [])
    with Sys_error _ | Unix.Unix_error _ -> ()

let client_dead t c =
  if c.c_alive then begin
    c.c_alive <- false;
    (match c.c_slot with
    | Some idx -> send_close t idx ~client:c.c_id
    | None -> ());
    c.c_slot <- None;
    c.c_opened <- false;
    t.c.dropped <- t.c.dropped + Queue.length c.c_queue;
    Queue.clear c.c_queue;
    Queue.clear c.c_out;
    c.c_out_off <- 0;
    c.c_out_bytes <- 0;
    close_quietly c.c_fd;
    t.clients <- List.filter (fun c' -> c'.c_id <> c.c_id) t.clients
  end

(* Replies to a live client may only wait on the client, never on the
   event loop: the fd is nonblocking, frames queue in [c_out], and a
   full socket buffer parks the remainder for select's write set. A
   client that keeps submitting but stops reading hits the backlog cap
   and is dropped — it cannot stall the daemon for everyone else. *)

let max_client_backlog = 2 * Wire.max_frame
(* >= one max-size frame, so a single huge (legitimate) reply is never
   itself grounds for dropping a client that is still reading *)

let rec flush_client t c =
  if c.c_alive && not (Queue.is_empty c.c_out) then begin
    let head = Queue.peek c.c_out in
    let len = String.length head - c.c_out_off in
    match Unix.write_substring c.c_fd head c.c_out_off len with
    | n ->
        c.c_out_bytes <- c.c_out_bytes - n;
        if n = len then begin
          ignore (Queue.pop c.c_out : string);
          c.c_out_off <- 0;
          flush_client t c
        end
        else c.c_out_off <- c.c_out_off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        () (* socket buffer full: select's write set resumes us *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_client t c
    | exception (Unix.Unix_error _ | Sys_error _) -> client_dead t c
  end

(* a connection answered with a fatal protocol error closes as soon as
   the error frame has actually left — never before, so the client
   reads a descriptive reason instead of a bare hangup *)
let maybe_close t c =
  if c.c_alive && c.c_closing && c.c_out_bytes = 0 then client_dead t c

let reply t c resp =
  if c.c_alive then begin
    let frame = Wire.frame (Wire.encode_response resp) in
    Queue.push frame c.c_out;
    c.c_out_bytes <- c.c_out_bytes + String.length frame;
    flush_client t c;
    if c.c_alive && c.c_out_bytes > max_client_backlog then begin
      log t "client %d dropped: %d reply bytes unread" c.c_id c.c_out_bytes;
      client_dead t c
    end
    else maybe_close t c
  end

(* the drain-time flush: the loop is over, so block — but only as long
   as the send timeout, a peer that stopped reading must not wedge the
   shutdown *)
let flush_final t c =
  if c.c_alive && c.c_out_bytes > 0 then begin
    (try Unix.clear_nonblock c.c_fd with Unix.Unix_error _ -> ());
    (try Unix.setsockopt_float c.c_fd Unix.SO_SNDTIMEO 10.0
     with Unix.Unix_error _ -> ());
    let rec go () =
      if c.c_alive && not (Queue.is_empty c.c_out) then begin
        let head = Queue.peek c.c_out in
        let len = String.length head - c.c_out_off in
        match Unix.write_substring c.c_fd head c.c_out_off len with
        | n ->
            c.c_out_bytes <- c.c_out_bytes - n;
            if n = len then begin
              ignore (Queue.pop c.c_out : string);
              c.c_out_off <- 0
            end
            else c.c_out_off <- c.c_out_off + n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception (Unix.Unix_error _ | Sys_error _) ->
            (* EAGAIN here means the send timeout expired *)
            client_dead t c
      end
    in
    go ()
  end

let find_client t id = List.find_opt (fun c -> c.c_id = id) t.clients

let adopt_client t fd =
  (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
  let c =
    {
      c_id = t.next_client;
      c_fd = fd;
      c_conn = Wire.conn_create ();
      c_queue = Queue.create ();
      c_out = Queue.create ();
      c_out_off = 0;
      c_out_bytes = 0;
      c_alive = true;
      c_hello = false;
      c_closing = false;
      c_slot = None;
      c_opened = false;
      c_base = None;
      c_sid = None;
    }
  in
  t.next_client <- t.next_client + 1;
  t.clients <- c :: t.clients;
  log t "client %d connected (%d clients)" c.c_id (List.length t.clients)

(* a parent-made terminal report for a job whose worker died twice *)
let failed_report (jc : job_ctx) msg =
  {
    Stats.r_id = jc.jc_job.Manifest.job_id;
    r_property = jc.jc_job.Manifest.property;
    r_k = jc.jc_job.Manifest.k;
    r_n = 0;
    r_m = 0;
    r_status = Stats.Failed msg;
    r_cache_hit = false;
    r_prove_ms = 0.0;
    r_verify_ms = 0.0;
    r_total_ms = 0.0;
    r_label_bits = 0;
    r_bundle_bits = 0;
    r_reject_reasons = [];
    r_retries = 1;
  }

let count_status t (r : Stats.job_report) =
  t.c.completed <- t.c.completed + 1;
  match r.Stats.r_status with
  | Stats.Served_fresh | Stats.Served_cached -> t.c.served <- t.c.served + 1
  | Stats.Served_degraded ->
      t.c.served <- t.c.served + 1;
      t.c.served_degraded <- t.c.served_degraded + 1
  | Stats.Declined -> t.c.declined <- t.c.declined + 1
  | Stats.Input_error _ -> t.c.input_error <- t.c.input_error + 1
  | Stats.Unsound _ -> t.c.unsound <- t.c.unsound + 1
  | Stats.Failed _ -> t.c.failed <- t.c.failed + 1

let report_response (jc : job_ctx) (r : Stats.job_report) =
  Wire.Report
    {
      serial = jc.jc_serial;
      id = r.Stats.r_id;
      status = Stats.status_name r.Stats.r_status;
      json = Stats.to_json r;
      canonical = Stats.to_canonical_json r;
    }

let dreport_response (jc : job_ctx) (r : Stats.job_report) patch =
  Wire.Dreport
    {
      serial = jc.jc_serial;
      id = r.Stats.r_id;
      status = Stats.status_name r.Stats.r_status;
      json = Stats.to_json r;
      canonical = Stats.to_canonical_json r;
      patch;
    }

(* append the served judgement to the journal BEFORE the reply leaves:
   a crash between append and reply makes the client resend, and the
   resend is answered from the journal — exactly-once either way. An
   append lost to an I/O error is counted and serving continues
   (availability over durability, like the degraded store); a simulated
   process death propagates, as everywhere else. *)
let journal_serve t jc (r : Stats.job_report) patch =
  match (t.journal, jc.jc_sid) with
  | Some j, Some sid -> (
      let reply_rec =
        {
          Journal.r_id = r.Stats.r_id;
          r_status = Stats.status_name r.Stats.r_status;
          r_json = Stats.to_json r;
          r_canonical = Stats.to_canonical_json r;
          r_patch = patch;
        }
      in
      try
        match jc.jc_kind with
        | Jk_open ->
            Journal.log_open j ~sid ~serial:jc.jc_serial ~line:jc.jc_line
              reply_rec
        | Jk_edit { full; ops } ->
            Journal.log_step j ~sid ~serial:jc.jc_serial ~full ~ops reply_rec
        | Jk_submit -> ()
      with Sys_error e ->
        t.c.journal_errors <- t.c.journal_errors + 1;
        log t "journal append failed: %s" e)
  | _ -> ()

let finish_job ?(patch = "{}") t jc (r : Stats.job_report) =
  if jc.jc_internal then begin
    (* a resume-rebuild job: its only observable effect is worker-side
       session state. The replayed canonical line must match what the
       journal says was served — the pipeline is deterministic, so a
       divergence means the rebuilt session is not the one the client
       was streaming against, and it is counted loudly. *)
    t.c.rebuilt_steps <- t.c.rebuilt_steps + 1;
    match jc.jc_expect with
    | Some expect when expect <> Stats.to_canonical_json r ->
        t.c.resume_mismatch <- t.c.resume_mismatch + 1;
        log t "resume replay diverged from the journal for %s"
          r.Stats.r_id
    | _ -> ()
  end
  else begin
    count_status t r;
    journal_serve t jc r patch;
    match find_client t jc.jc_client with
    | Some c ->
        reply t c
          (match jc.jc_kind with
          | Jk_submit -> report_response jc r
          | Jk_open | Jk_edit _ -> dreport_response jc r patch)
    | None -> () (* the requester hung up; the judgement is dropped *)
  end

(* ---------------------------------------------------------------- *)
(* dispatch: crash-retries first, then round-robin across clients    *)

(* which worker may run a job: anything one-shot goes anywhere, an
   edit only to the slot holding its client's session *)
let eligible t w jc =
  match jc.jc_kind with
  | Jk_submit | Jk_open -> true
  | Jk_edit _ -> (
      match find_client t jc.jc_client with
      | Some c -> c.c_slot = Some w.w_idx
      | None -> false)

(* pop the first retry-queue job this worker may run; an edit whose
   client hung up is dropped on the floor here (its reply had no
   recipient anyway, and it would never become eligible again) *)
let take_retry t w =
  let keep = Queue.create () in
  let taken = ref None in
  Queue.iter
    (fun jc ->
      if !taken <> None then Queue.push jc keep
      else
        match jc.jc_kind with
        | Jk_edit _ when find_client t jc.jc_client = None ->
            t.c.dropped <- t.c.dropped + 1
        | _ -> if eligible t w jc then taken := Some jc else Queue.push jc keep)
    t.retry_q;
  Queue.clear t.retry_q;
  Queue.transfer keep t.retry_q;
  !taken

(* Round-robin across clients, but only over queue HEADS: taking a
   later job from a queue whose head this worker cannot run would
   reorder one client's session stream. A client whose head is an
   edit pinned elsewhere simply waits for its slot. *)
let next_job_for t w =
  match take_retry t w with
  | Some jc -> Some jc
  | None -> (
      let with_jobs =
        List.filter
          (fun c ->
            (not (Queue.is_empty c.c_queue)) && eligible t w (Queue.peek c.c_queue))
          t.clients
        |> List.sort (fun a b -> compare a.c_id b.c_id)
      in
      let chosen =
        match List.find_opt (fun c -> c.c_id > t.rr) with_jobs with
        | Some c -> Some c
        | None -> ( match with_jobs with c :: _ -> Some c | [] -> None)
      in
      match chosen with
      | None -> None
      | Some c ->
          t.rr <- c.c_id;
          Some (Queue.pop c.c_queue))

let assign t w jc =
  let token = t.next_token in
  t.next_token <- t.next_token + 1;
  jc.jc_token <- token;
  (* an open pins its client to this slot; a session still living in a
     previously pinned slot is torn down — one session per client *)
  (match jc.jc_kind with
  | Jk_open -> (
      match find_client t jc.jc_client with
      | Some c ->
          (match c.c_slot with
          | Some old when old <> w.w_idx -> send_close t old ~client:c.c_id
          | _ -> ());
          c.c_slot <- Some w.w_idx
      | None -> ())
  | Jk_submit | Jk_edit _ -> ());
  let msg =
    match jc.jc_kind with
    | Jk_submit ->
        Job { token; job = jc.jc_job; deadline_ms = jc.jc_deadline_ms }
    | Jk_open ->
        Delta_job
          {
            token;
            client = jc.jc_client;
            deadline_ms = jc.jc_deadline_ms;
            op = Dopen jc.jc_job;
          }
    | Jk_edit { full; ops } ->
        Delta_job
          {
            token;
            client = jc.jc_client;
            deadline_ms = jc.jc_deadline_ms;
            op = Dedit { full; ops };
          }
  in
  w.w_busy <- Some jc;
  match Wire.write_frame w.w_to (Marshal.to_string msg []) with
  | () -> ()
  | exception (Sys_error _ | Unix.Unix_error _) ->
      (* the worker died under us; hand the job back untouched (it
         never started, so this is not its one retry). The slot must
         stop looking idle before dispatch continues, or it would pick
         the same corpse for the same job forever without ever
         reaching the select loop — so mark it unready and let the EOF
         path reap and respawn *)
      w.w_ready <- false;
      w.w_busy <- None;
      Queue.push jc t.retry_q

let rec dispatch t =
  let progressed = ref false in
  Array.iter
    (fun w ->
      if w.w_ready && w.w_busy = None && not w.w_stopped && w.w_pid > 0 then
        match next_job_for t w with
        | None -> ()
        | Some jc ->
            assign t w jc;
            progressed := true)
    t.workers;
  (* a successful assign may have unblocked a pinned edit behind it;
     a failed one put the job back for another slot. Either way the
     pass strictly shrank queue+idle, so this terminates. *)
  if !progressed then dispatch t

(* ---------------------------------------------------------------- *)
(* the stats endpoint                                                *)

let store_totals t =
  Array.fold_left
    (fun acc w ->
      match w.w_last_store with
      | Some s -> Cert_store.add_stats acc s
      | None -> acc)
    t.retired_store t.workers

let stats_json t =
  let live =
    Array.fold_left
      (fun acc w -> if w.w_pid > 0 && not w.w_stopped then acc + 1 else acc)
      0 t.workers
  in
  let stopped =
    Array.fold_left
      (fun acc w -> if w.w_stopped then acc + 1 else acc)
      0 t.workers
  in
  let degraded = Array.exists (fun w -> w.w_degraded) t.workers in
  let s = store_totals t in
  let durability =
    Printf.sprintf
      "{\"resumed\":%d,\"rebuilt_steps\":%d,\"resume_mismatch\":%d,\
       \"dedup_served\":%d,\"journal_errors\":%d,\"bad_hello\":%d,\
       \"journal\":%s}"
      t.c.resumed t.c.rebuilt_steps t.c.resume_mismatch t.c.dedup_served
      t.c.journal_errors t.c.bad_hello
      (match t.journal with
      | Some j -> Journal.counters_json j
      | None -> "null")
  in
  Printf.sprintf
    "{\"uptime_s\":%.3f,\"draining\":%b,\"queue\":{\"depth\":%d,\"cap\":%d,\"max_depth\":%d,\"client_cap\":%d,\"inflight\":%d},\"jobs\":{\"submitted\":%d,\"completed\":%d,\"served\":%d,\"served_degraded\":%d,\"declined\":%d,\"failed\":%d,\"input_error\":%d,\"unsound\":%d,\"requeued\":%d,\"dropped\":%d},\"admission\":{\"rejected_overload\":%d,\"rejected_quota\":%d,\"parse_errors\":%d},\"workers\":{\"configured\":%d,\"live\":%d,\"restarts\":%d,\"stopped\":%d,\"degraded\":%b},\"store\":{\"hits\":%d,\"misses\":%d,\"insertions\":%d,\"corrupt\":%d,\"quarantined\":%d,\"quarantine_evictions\":%d,\"orphans_swept\":%d,\"disk_errors\":%d,\"gc_evictions\":%d,\"filter_hits\":%d,\"filter_skips\":%d,\"filter_fps\":%d,\"flushes\":%d},\"durability\":%s,\"counters\":%s,\"stages\":%s}"
    (Unix.gettimeofday () -. t.started)
    t.draining (queue_depth t) t.cfg.queue_cap t.c.max_queue t.cfg.client_cap
    (inflight t) t.c.submitted t.c.completed t.c.served t.c.served_degraded
    t.c.declined t.c.failed t.c.input_error t.c.unsound t.c.requeued
    t.c.dropped t.c.rejected_overload t.c.rejected_quota t.c.parse_errors
    t.cfg.workers live t.c.restarts stopped degraded s.Cert_store.hits
    s.Cert_store.misses s.Cert_store.insertions s.Cert_store.corrupt
    s.Cert_store.quarantined s.Cert_store.quarantine_evictions
    s.Cert_store.orphans_swept s.Cert_store.disk_errors
    s.Cert_store.gc_evictions s.Cert_store.filter_hits
    s.Cert_store.filter_skips s.Cert_store.filter_fps s.Cert_store.flushes
    durability
    (Timing.counters_json t.timing)
    (Timing.report_json t.timing)

(* ---------------------------------------------------------------- *)
(* request handling                                                  *)

let begin_drain t =
  if not t.draining then begin
    t.draining <- true;
    if t.listening then begin
      (* a client whose connect() already completed into the backlog is
         committed: closing the listener would RST it and silently drop
         whatever it wrote. Adopt every pending connection first — its
         requests get answered (submissions with Overloaded, since we
         are draining) before the final close. *)
      (try Unix.set_nonblock t.listen_fd with Unix.Unix_error _ -> ());
      let rec adopt_backlog () =
        match Unix.accept t.listen_fd with
        | fd, _ ->
            (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
            adopt_client t fd;
            adopt_backlog ()
        | exception Unix.Unix_error _ -> ()
      in
      adopt_backlog ();
      close_quietly t.listen_fd;
      t.listening <- false;
      (try Sys.remove t.cfg.socket_path with Sys_error _ -> ())
    end;
    log t "draining: %d queued, %d in flight" (queue_depth t) (inflight t)
  end

(* the admission gates every queueing request passes: refuse while
   draining, at the global cap, and past the client's quota *)
let admitted t c serial =
  if t.draining then begin
    t.c.rejected_overload <- t.c.rejected_overload + 1;
    reply t c (Wire.Overloaded { serial; reason = "server is draining" });
    false
  end
  else if queue_depth t >= t.cfg.queue_cap then begin
    t.c.rejected_overload <- t.c.rejected_overload + 1;
    reply t c
      (Wire.Overloaded
         {
           serial;
           reason =
             Printf.sprintf "admission queue full (cap %d)" t.cfg.queue_cap;
         });
    false
  end
  else if Queue.length c.c_queue >= t.cfg.client_cap then begin
    t.c.rejected_quota <- t.c.rejected_quota + 1;
    reply t c
      (Wire.Overloaded
         {
           serial;
           reason =
             Printf.sprintf "client quota exceeded (cap %d)" t.cfg.client_cap;
         });
    false
  end
  else true

(* a [Submit] and a [Delta_open] both carry exactly one manifest line *)
let parse_one_job t c serial line =
  match Manifest.parse line with
  | Error e ->
      t.c.parse_errors <- t.c.parse_errors + 1;
      reply t c (Wire.Err { serial; reason = e });
      None
  | Ok [] ->
      t.c.parse_errors <- t.c.parse_errors + 1;
      reply t c (Wire.Err { serial; reason = "no job in submission" });
      None
  | Ok (_ :: _ :: _) ->
      t.c.parse_errors <- t.c.parse_errors + 1;
      reply t c
        (Wire.Err { serial; reason = "a submission is exactly one job line" });
      None
  | Ok [ job ] -> Some job

let enqueue t c jc =
  t.c.submitted <- t.c.submitted + 1;
  Queue.push jc c.c_queue;
  t.c.max_queue <- max t.c.max_queue (queue_depth t);
  dispatch t

(* the resume-rebuild chain bypasses admission (it is the server's own
   recovery work, not client traffic) but still rides the client's
   queue, so the client's next live edit dispatches strictly after the
   session state it needs exists again *)
let enqueue_internal t c jc =
  Queue.push jc c.c_queue;
  t.c.max_queue <- max t.c.max_queue (queue_depth t)

let protocol_err =
  Printf.sprintf
    "expected hello (this server speaks protocol version %d); upgrade the \
     client"
    Wire.protocol_version

(* another live connection already streaming against [sid]: admitting a
   second writer would interleave two edit streams in one journal *)
let sid_busy t c sid =
  List.exists
    (fun c' -> c'.c_alive && c'.c_id <> c.c_id && c'.c_sid = Some sid)
    t.clients

let dreport_of_journal serial (r : Journal.reply) =
  Wire.Dreport
    {
      serial;
      id = r.Journal.r_id;
      status = r.Journal.r_status;
      json = r.Journal.r_json;
      canonical = r.Journal.r_canonical;
      patch = r.Journal.r_patch;
    }

(* re-attach [c] to the journaled session [sid]: serve the journaled
   open report now, and queue an internal replay of the whole journaled
   request sequence to rebuild the worker-side state — through the
   full prove/verify discipline, exactly as the original stream ran *)
let resume_session t c ~serial ~deadline_ms ~sid j (z : Journal.session) =
  match Manifest.parse z.Journal.z_line with
  | Ok [ job ] ->
      c.c_sid <- Some sid;
      c.c_opened <- true;
      c.c_base <- Some job;
      t.c.resumed <- t.c.resumed + 1;
      reply t c (dreport_of_journal serial z.Journal.z_open);
      enqueue_internal t c
        {
          jc_serial = -1;
          jc_client = c.c_id;
          jc_job = job;
          jc_kind = Jk_open;
          jc_deadline_ms = deadline_ms;
          jc_sid = Some sid;
          jc_line = z.Journal.z_line;
          jc_internal = true;
          jc_expect = Some z.Journal.z_open.Journal.r_canonical;
          jc_retried = false;
          jc_token = -1;
        };
      List.iter
        (fun (p : Journal.step) ->
          enqueue_internal t c
            {
              jc_serial = -1;
              jc_client = c.c_id;
              jc_job = job;
              jc_kind = Jk_edit { full = p.Journal.p_full; ops = p.Journal.p_ops };
              jc_deadline_ms = deadline_ms;
              jc_sid = Some sid;
              jc_line = z.Journal.z_line;
              jc_internal = true;
              jc_expect = Some p.Journal.p_reply.Journal.r_canonical;
              jc_retried = false;
              jc_token = -1;
            })
        (List.rev z.Journal.z_steps);
      log t "client %d resumed session %s (%d journaled edits replaying)"
        c.c_id sid
        (List.length z.Journal.z_steps);
      ignore j;
      dispatch t
  | Ok _ | Error _ ->
      reply t c
        (Wire.Err
           { serial; reason = "journaled base job line no longer parses" })

let handle_request t c req =
  match req with
  | _ when c.c_closing -> ()
  | Wire.Hello { version } ->
      if version = Wire.protocol_version then begin
        c.c_hello <- true;
        reply t c (Wire.Hello_ok { version = Wire.protocol_version })
      end
      else begin
        t.c.bad_hello <- t.c.bad_hello + 1;
        c.c_closing <- true;
        reply t c
          (Wire.Err
             {
               serial = -1;
               reason =
                 Printf.sprintf
                   "protocol version mismatch: client speaks %d, server \
                    speaks %d"
                   version Wire.protocol_version;
             })
      end
  | _ when not c.c_hello ->
      t.c.bad_hello <- t.c.bad_hello + 1;
      c.c_closing <- true;
      reply t c (Wire.Err { serial = -1; reason = protocol_err })
  | Wire.Ping -> reply t c Wire.Pong
  | Wire.Stats_req -> reply t c (Wire.Stats_reply (stats_json t))
  | Wire.Shutdown ->
      reply t c Wire.Pong;
      begin_drain t
  | Wire.Submit { serial; canonical = _; deadline_ms; line } ->
      if admitted t c serial then begin
        match parse_one_job t c serial line with
        | None -> ()
        | Some job ->
            enqueue t c
              {
                jc_serial = serial;
                jc_client = c.c_id;
                jc_job = job;
                jc_kind = Jk_submit;
                jc_deadline_ms = deadline_ms;
                jc_sid = None;
                jc_line = "";
                jc_internal = false;
                jc_expect = None;
                jc_retried = false;
                jc_token = -1;
              }
      end
  | Wire.Delta_open { serial; deadline_ms; sid; resume = true; line = _ } -> (
      match t.journal with
      | None ->
          reply t c
            (Wire.Err
               {
                 serial;
                 reason = "resume unavailable: the server runs without a journal";
               })
      | Some j ->
          if sid_busy t c sid then
            reply t c
              (Wire.Err
                 {
                   serial;
                   reason =
                     Printf.sprintf "session %s busy: another client holds it"
                       sid;
                 })
          else if admitted t c serial then begin
            match Journal.find j sid with
            | Some z -> resume_session t c ~serial ~deadline_ms ~sid j z
            | None ->
                reply t c
                  (Wire.Err
                     {
                       serial;
                       reason =
                         Printf.sprintf
                           "unknown session %s: nothing to resume" sid;
                     })
          end)
  | Wire.Delta_open { serial; deadline_ms; sid; resume = false; line } ->
      if sid_busy t c sid then
        reply t c
          (Wire.Err
             {
               serial;
               reason =
                 Printf.sprintf "session %s busy: another client holds it" sid;
             })
      else if admitted t c serial then begin
        match parse_one_job t c serial line with
        | None -> ()
        | Some job ->
            c.c_opened <- true;
            c.c_base <- Some job;
            c.c_sid <- Some sid;
            enqueue t c
              {
                jc_serial = serial;
                jc_client = c.c_id;
                jc_job = job;
                jc_kind = Jk_open;
                jc_deadline_ms = deadline_ms;
                jc_sid = Some sid;
                jc_line = line;
                jc_internal = false;
                jc_expect = None;
                jc_retried = false;
                jc_token = -1;
              }
      end
  | Wire.Delta_edit { serial; deadline_ms; full; ops } -> (
      match c.c_base with
      | Some base when c.c_opened -> (
          let enqueue_edit () =
            if admitted t c serial then
              enqueue t c
                {
                  jc_serial = serial;
                  jc_client = c.c_id;
                  jc_job = base;
                  jc_kind = Jk_edit { full; ops };
                  jc_deadline_ms = deadline_ms;
                  jc_sid = c.c_sid;
                  jc_line = "";
                  jc_internal = false;
                  jc_expect = None;
                  jc_retried = false;
                  jc_token = -1;
                }
          in
          (* journal-backed idempotence: an already-applied serial is a
             resend from a client that never saw its reply — answer it
             from the journal, byte-for-byte, without recomputation; a
             serial past the next expected one lost an edit in flight
             and can only diverge, so refuse it descriptively *)
          match (t.journal, c.c_sid) with
          | Some j, Some sid -> (
              match Journal.find j sid with
              | Some z when serial >= 1 && serial <= z.Journal.z_applied -> (
                  match Journal.reply_for j ~sid ~serial with
                  | Some r ->
                      t.c.dedup_served <- t.c.dedup_served + 1;
                      reply t c (dreport_of_journal serial r)
                  | None ->
                      reply t c
                        (Wire.Err
                           {
                             serial;
                             reason =
                               "edit already applied but its reply has been \
                                compacted out of the journal";
                           }))
              | Some z when serial > z.Journal.z_applied + 1 ->
                  reply t c
                    (Wire.Err
                       {
                         serial;
                         reason =
                           Printf.sprintf
                             "serial gap: expected %d, got %d — an edit was \
                              lost in flight"
                             (z.Journal.z_applied + 1)
                             serial;
                       })
              | _ -> enqueue_edit ())
          | _ -> enqueue_edit ())
      | _ ->
          reply t c
            (Wire.Err
               { serial; reason = "no delta session open; send a dopen first" }))

let on_client_readable t c =
  let chunk = Bytes.create 65536 in
  match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    ->
      () (* a signal or spurious wakeup, not a hangup *)
  | exception Unix.Unix_error _ -> client_dead t c
  | 0 ->
      (* a clean EOF is the client saying its stream is complete — on a
         unix socket the fd only closes when the client process chose
         to (or died). Retire the journaled session so it stops
         accumulating in checkpoints; a server death never reaches
         here, which is exactly what leaves its sessions resumable. *)
      (match (c.c_sid, t.journal) with
      | Some sid, Some j -> (
          try Journal.log_close j ~sid
          with Sys_error e ->
            t.c.journal_errors <- t.c.journal_errors + 1;
            log t "journal close failed: %s" e)
      | _ -> ());
      client_dead t c
  | n -> (
      Wire.conn_feed c.c_conn chunk n;
      try
        let rec drain () =
          match Wire.conn_next c.c_conn with
          | None -> ()
          | Some payload ->
              (match Wire.decode_request payload with
              | Ok req -> handle_request t c req
              | Error e ->
                  (* a pre-handshake decode failure is an old or foreign
                     client: tell it why, then hang up *)
                  if not c.c_hello then begin
                    t.c.bad_hello <- t.c.bad_hello + 1;
                    c.c_closing <- true
                  end;
                  reply t c (Wire.Err { serial = -1; reason = e }));
              if c.c_alive && not c.c_closing then drain ()
        in
        drain ()
      with Sys_error _ -> client_dead t c (* over-cap frame: cut the cord *))

(* ---------------------------------------------------------------- *)
(* worker events                                                     *)

let handle_done t w (token, report, patch, samples, store_stats, degraded) =
  Timing.absorb t.timing samples;
  w.w_last_store <- Some store_stats;
  w.w_degraded <- degraded;
  match w.w_busy with
  | Some jc when jc.jc_token = token ->
      w.w_busy <- None;
      w.w_done <- w.w_done + 1;
      finish_job ~patch:(Option.value ~default:"{}" patch) t jc report;
      dispatch t
  | _ ->
      (* a stale or duplicated token: nothing sane to attribute it to *)
      log t "worker %d: dropped result with stale token %d" w.w_idx token

let worker_died t w =
  reap w.w_pid;
  close_quietly w.w_to;
  close_quietly w.w_from;
  w.w_pid <- -1;
  (* the in-flight job gets exactly one more chance on another worker —
     except an edit, whose session just died with the slot: replaying
     it elsewhere would certify against no baseline *)
  (match w.w_busy with
  | Some jc ->
      w.w_busy <- None;
      (match jc.jc_kind with
      | Jk_edit _ ->
          finish_job t jc
            (failed_report jc "delta session lost with its worker; reopen")
      | Jk_submit | Jk_open ->
          if jc.jc_retried then
            finish_job t jc
              (failed_report jc
                 (Printf.sprintf
                    "worker died twice running this job (last in slot %d)"
                    w.w_idx))
          else begin
            jc.jc_retried <- true;
            t.c.requeued <- t.c.requeued + 1;
            Queue.push jc t.retry_q
          end)
  | None -> ());
  (* every session pinned to this slot is gone. Unpin the clients; an
     open pending in the retry queue will re-pin on dispatch, and the
     edits queued behind it still belong to the session it will build.
     With no pending open, queued edits up to the client's next open
     (if any) certified against the lost session — fail them now
     rather than leave them eligible for no slot. *)
  let pending_open cid =
    Queue.fold
      (fun acc jc -> acc || (jc.jc_client = cid && jc.jc_kind = Jk_open))
      false t.retry_q
  in
  List.iter
    (fun c ->
      if c.c_slot = Some w.w_idx then begin
        c.c_slot <- None;
        if not (pending_open c.c_id) then begin
          let keep = Queue.create () in
          let failing = ref true in
          Queue.iter
            (fun jc ->
              match jc.jc_kind with
              | Jk_open ->
                  failing := false;
                  Queue.push jc keep
              | Jk_edit _ when !failing ->
                  finish_job t jc
                    (failed_report jc "delta session lost with its worker; reopen")
              | _ -> Queue.push jc keep)
            c.c_queue;
          Queue.clear c.c_queue;
          Queue.transfer keep c.c_queue;
          c.c_opened <-
            Queue.fold (fun acc jc -> acc || jc.jc_kind = Jk_open) false c.c_queue
        end
      end)
    t.clients;
  (* sweep edits orphaned in the retry queue (a dispatch write-failure
     raced the death): with their client unpinned and no open pending,
     they can never run *)
  (let keep = Queue.create () in
   Queue.iter
     (fun jc ->
       match jc.jc_kind with
       | Jk_edit _ -> (
           match find_client t jc.jc_client with
           | Some c when c.c_slot <> None || pending_open c.c_id ->
               Queue.push jc keep
           | Some _ ->
               finish_job t jc
                 (failed_report jc "delta session lost with its worker; reopen")
           | None -> t.c.dropped <- t.c.dropped + 1)
       | _ -> Queue.push jc keep)
     t.retry_q;
   Queue.clear t.retry_q;
   Queue.transfer keep t.retry_q);
  if not w.w_ready then begin
    w.w_preready_deaths <- w.w_preready_deaths + 1;
    if w.w_preready_deaths >= 3 then begin
      w.w_stopped <- true;
      log t "worker slot %d stopped: died %d times before becoming ready"
        w.w_idx w.w_preready_deaths
    end
  end;
  if not w.w_stopped then begin
    t.c.restarts <- t.c.restarts + 1;
    spawn_worker t w.w_idx;
    log t "worker slot %d respawned as pid %d" w.w_idx w.w_pid
  end
  else if Array.for_all (fun w -> w.w_stopped) t.workers then begin
    (* no worker will ever run again: fail everything queued loudly
       instead of letting clients wait forever *)
    let fail_queue q =
      Queue.iter
        (fun jc ->
          finish_job t jc (failed_report jc "no live workers remain"))
        q;
      Queue.clear q
    in
    fail_queue t.retry_q;
    List.iter (fun c -> fail_queue c.c_queue) t.clients
  end;
  dispatch t

let on_worker_readable t w =
  let chunk = Bytes.create 65536 in
  let drain_frames () =
    let rec go () =
      match Wire.conn_next w.w_conn with
      | None -> ()
      | Some payload ->
          (match (Marshal.from_string payload 0 : from_worker) with
          | Ready ->
              w.w_ready <- true;
              w.w_preready_deaths <- 0;
              dispatch t
          | Done { token; report; patch; samples; store_stats; degraded } ->
              handle_done t w
                (token, report, patch, samples, store_stats, degraded));
          go ()
    in
    go ()
  in
  match Unix.read w.w_from chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> worker_died t w
  | 0 ->
      drain_frames ();
      worker_died t w
  | n ->
      Wire.conn_feed w.w_conn chunk n;
      drain_frames ()

(* ---------------------------------------------------------------- *)
(* accept / select loop                                              *)

let on_accept t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ -> adopt_client t fd

(* The last act of a drain: requests a client wrote before the shutdown
   signal may still sit unread in the socket buffer (on a unix socket
   the client's writes landed there synchronously). Closing the fd with
   them unread would RST the connection and silently drop them — so
   slurp whatever is buffered and answer it (submissions are refused
   with Overloaded, since we are draining). *)
let final_client_sweep t =
  List.iter
    (fun c ->
      if c.c_alive then begin
        (* the fd is already nonblocking, so this read cannot hang on a
           silent client; replies queue in c_out for the final flush *)
        let chunk = Bytes.create 65536 in
        let rec slurp () =
          match Unix.read c.c_fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Wire.conn_feed c.c_conn chunk n;
              slurp ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              ()
          | exception Unix.Unix_error _ -> ()
        in
        slurp ();
        try
          let rec drain () =
            match Wire.conn_next c.c_conn with
            | None -> ()
            | Some payload ->
                (match Wire.decode_request payload with
                | Ok req -> handle_request t c req
                | Error e -> reply t c (Wire.Err { serial = -1; reason = e }));
                if c.c_alive then drain ()
          in
          drain ()
        with Sys_error _ -> client_dead t c
      end)
    t.clients

let finish t =
  final_client_sweep t;
  (* the queue is drained and every worker is idle: dismiss the pool *)
  Array.iter
    (fun w ->
      if w.w_pid > 0 && not w.w_stopped then begin
        (try Wire.write_frame w.w_to (Marshal.to_string Quit [])
         with Sys_error _ | Unix.Unix_error _ -> ());
        close_quietly w.w_to;
        close_quietly w.w_from;
        reap w.w_pid;
        (match w.w_last_store with
        | Some s ->
            t.retired_store <- Cert_store.add_stats t.retired_store s;
            w.w_last_store <- None
        | None -> ());
        w.w_pid <- -1
      end)
    t.workers;
  List.iter (fun c -> flush_final t c) t.clients;
  List.iter (fun c -> close_quietly c.c_fd) t.clients;
  t.clients <- [];
  if t.listening then begin
    close_quietly t.listen_fd;
    t.listening <- false;
    try Sys.remove t.cfg.socket_path with Sys_error _ -> ()
  end;
  close_quietly t.sig_r;
  close_quietly t.sig_w;
  (* release the instance lock last: until here a concurrent starter
     must still lose to us *)
  (try Sys.remove t.pidfile with Sys_error _ -> ());
  close_quietly t.pid_fd;
  log t
    "drained: %d submitted, %d completed (%d served, %d failed), %d \
     restarts, max queue %d"
    t.c.submitted t.c.completed t.c.served t.c.failed t.c.restarts
    t.c.max_queue

(* [Unix.select] fails with EINVAL past FD_SETSIZE (~1024) fds; stop
   accepting comfortably below that — waiting connections sit in the
   listen backlog until a slot frees up, which is just admission
   control one layer down *)
let max_clients = 960

let rec loop t =
  dispatch t;
  if t.draining && queue_depth t = 0 && inflight t = 0 then finish t
  else begin
    let accepting = t.listening && List.length t.clients < max_clients in
    let fds =
      (if accepting then [ t.listen_fd ] else [])
      @ [ t.sig_r ]
      @ List.map (fun c -> c.c_fd) t.clients
      @ Array.to_list
          (Array.of_seq
             (Seq.filter_map
                (fun w ->
                  if w.w_pid > 0 && not w.w_stopped then Some w.w_from
                  else None)
                (Array.to_seq t.workers)))
    in
    let wfds =
      List.filter_map
        (fun c -> if c.c_out_bytes > 0 then Some c.c_fd else None)
        t.clients
    in
    match Unix.select fds wfds [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop t
    | readable, writable, _ ->
        if List.mem t.sig_r readable then begin
          let b = Bytes.create 64 in
          (try ignore (Unix.read t.sig_r b 0 64)
           with Unix.Unix_error _ -> ());
          begin_drain t
        end;
        if accepting && t.listening && List.mem t.listen_fd readable then
          on_accept t;
        (* snapshot: handlers mutate t.clients/worker fds as they run *)
        List.iter
          (fun c ->
            if c.c_alive && List.mem c.c_fd writable then begin
              flush_client t c;
              maybe_close t c
            end)
          t.clients;
        List.iter
          (fun c ->
            if c.c_alive && List.mem c.c_fd readable then
              on_client_readable t c)
          t.clients;
        Array.iter
          (fun w ->
            if w.w_pid > 0 && not w.w_stopped && List.mem w.w_from readable
            then on_worker_readable t w)
          t.workers;
        loop t
  end

(* ---------------------------------------------------------------- *)
(* entry point                                                       *)

(** Run the daemon until it is told to stop (SIGTERM, SIGINT, or a
    [Shutdown] request), then drain and return. Raises [Sys_error] if
    the socket cannot be bound or another server already holds the
    instance lock for this socket path. *)
let run (cfg : config) =
  if cfg.workers < 1 then invalid_arg "Server.run: workers must be >= 1";
  if cfg.queue_cap < 1 then invalid_arg "Server.run: queue_cap must be >= 1";
  if cfg.client_cap < 1 then invalid_arg "Server.run: client_cap must be >= 1";
  (* Single-instance lock. The old probe-then-bind dance raced: two
     servers started together could both find the socket dead, both
     unlink, both bind — last binder silently steals the socket. An
     fcntl lock on the pidfile is atomic: exactly one process holds it
     for its whole life, the loser gets [Sys_error] (exit 2 in the
     binary), and the kernel releases it on any death — so if we hold
     the lock, any existing socket file is provably stale. *)
  let pidfile = cfg.socket_path ^ ".pid" in
  let pid_fd =
    try Unix.openfile pidfile [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
    with Unix.Unix_error (e, _, _) ->
      raise
        (Sys_error (Printf.sprintf "%s: %s" pidfile (Unix.error_message e)))
  in
  (match Unix.lockf pid_fd Unix.F_TLOCK 0 with
  | () -> ()
  | exception Unix.Unix_error _ ->
      close_quietly pid_fd;
      raise
        (Sys_error
           (Printf.sprintf
              "%s: another server holds the lock for this socket" pidfile)));
  (try
     ignore (Unix.lseek pid_fd 0 Unix.SEEK_SET);
     ignore (Unix.ftruncate pid_fd 0);
     let pid = Printf.sprintf "%d\n" (Unix.getpid ()) in
     ignore (Unix.write_substring pid_fd pid 0 (String.length pid))
   with Unix.Unix_error _ -> ());
  if Sys.file_exists cfg.socket_path then (
    try Sys.remove cfg.socket_path with Sys_error _ -> ());
  (* recover the journal before accepting anyone: a resume arriving
     mid-replay would race the rebuild of the very state it needs *)
  let journal =
    match cfg.journal_dir with
    | None -> None
    | Some dir -> (
        try
          Some
            (Journal.create ~fsync:cfg.journal_fsync
               ~checkpoint_every:cfg.journal_checkpoint ~dir ())
        with Sys_error _ as e ->
          (try Sys.remove pidfile with Sys_error _ -> ());
          close_quietly pid_fd;
          raise e)
  in
  let sig_r, sig_w = Unix.pipe ~cloexec:false () in
  (* the signal plumbing must be live BEFORE the socket is bound: the
     moment [listen] returns a client can connect, submit, and send
     SIGTERM — and with the default disposition still in place that
     kills the daemon mid-startup, RSTing the client's submissions
     instead of draining them *)
  let on_signal _ =
    try ignore (Unix.write sig_w (Bytes.of_string "x") 0 1)
    with Unix.Unix_error _ -> ()
  in
  (* a flooding client that stops reading must cost an EPIPE we absorb,
     not a process death *)
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let restore_signals () =
    Sys.set_signal Sys.sigpipe prev_pipe;
    Sys.set_signal Sys.sigterm prev_term;
    Sys.set_signal Sys.sigint prev_int
  in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with Unix.Unix_error (e, _, _) ->
     close_quietly listen_fd;
     close_quietly sig_r;
     close_quietly sig_w;
     restore_signals ();
     (try Sys.remove pidfile with Sys_error _ -> ());
     close_quietly pid_fd;
     raise
       (Sys_error
          (Printf.sprintf "%s: %s" cfg.socket_path (Unix.error_message e))));
  let t =
    {
      cfg;
      listen_fd;
      listening = true;
      pid_fd;
      pidfile;
      journal;
      sig_r;
      sig_w;
      timing = Timing.create ();
      workers =
        Array.init cfg.workers (fun w_idx ->
            {
              w_idx;
              w_pid = -1;
              w_to = Unix.stdin;
              w_from = Unix.stdin;
              w_conn = Wire.conn_create ();
              w_ready = false;
              w_busy = None;
              w_done = 0;
              w_preready_deaths = 0;
              w_stopped = false;
              w_last_store = None;
              w_degraded = false;
            });
      clients = [];
      retry_q = Queue.create ();
      rr = -1;
      next_client = 0;
      next_token = 0;
      draining = false;
      retired_store =
        {
          Cert_store.hits = 0;
          misses = 0;
          insertions = 0;
          evictions = 0;
          disk_loads = 0;
          drops = 0;
          disk_errors = 0;
          corrupt = 0;
          quarantined = 0;
          orphans_swept = 0;
          gc_evictions = 0;
          quarantine_evictions = 0;
          filter_hits = 0;
          filter_skips = 0;
          filter_fps = 0;
          flushes = 0;
        };
      started = Unix.gettimeofday ();
      c =
        {
          submitted = 0;
          completed = 0;
          served = 0;
          served_degraded = 0;
          declined = 0;
          failed = 0;
          input_error = 0;
          unsound = 0;
          requeued = 0;
          dropped = 0;
          rejected_overload = 0;
          rejected_quota = 0;
          parse_errors = 0;
          restarts = 0;
          max_queue = 0;
          resumed = 0;
          rebuilt_steps = 0;
          resume_mismatch = 0;
          dedup_served = 0;
          journal_errors = 0;
          bad_hello = 0;
        };
    }
  in
  Fun.protect ~finally:restore_signals (fun () ->
      for idx = 0 to cfg.workers - 1 do
        spawn_worker t idx
      done;
      log t "listening on %s (%d workers, queue cap %d, client cap %d)"
        cfg.socket_path cfg.workers cfg.queue_cap cfg.client_cap;
      loop t)

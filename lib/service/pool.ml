(** The parallel sharded execution layer: run a job manifest across N
    worker {e processes} and merge the results into exactly the stream
    the sequential engine would have produced.

    Design invariants, in decreasing order of importance:

    {ol
    {- {b Determinism of assignment.} A job's worker is the stable
       64-bit FNV-1a hash of its job id modulo N — a pure function of
       the manifest, never of arrival order, load, or scheduling. Two
       runs of the same manifest at the same N shard identically.}
    {- {b Per-worker memory, shared disk.} Each worker builds its own
       engine after [fork], so the in-memory LRU tier of the
       certificate store is process-private — no locks, no shared
       mutable state. The on-disk tier may be shared by pointing every
       worker at the same cache directory: its writes are atomic
       (tmp-then-rename, worker-unique tmp names) and every bundle read
       from it is re-verified by the reading worker before serving, so
       a concurrent writer can change {e latency} but never
       {e judgements}.}
    {- {b Canonical merge.} Workers ship their reports back over a pipe
       ([Marshal]); the parent concatenates, sorts by job id (the same
       canonical order [Engine.run_jobs] emits), merges the raw timing
       samples, and sums the per-store counters. The canonical
       projection of the output ([Stats.to_canonical_json]) is
       byte-identical across all N.}
    {- {b Crash semantics.} A worker that hits [Blob_io.Crashed] — a
       simulated process death — reports it instead of a result; after
       every worker is reaped the parent re-raises [Crashed], so a
       crash anywhere still kills the whole batch, exactly as in the
       sequential path. Any other escaped exception in a worker (there
       should be none: [Engine.run_job] is total) surfaces as
       [Failure].}}

    Workers are plain [Unix.fork] children: no threads, no domains, so
    this runs on any OCaml the container ships, and a wedged worker can
    be killed without taking the parent down. *)

module Hash64 = Lcp_util.Hash64

(* ---------------------------------------------------------------- *)
(* shard assignment                                                  *)

(** [shard_of ~workers job_id] is the worker index owning [job_id]:
    stable FNV-1a of the id, folded into [0 .. workers-1]. *)
let shard_of ~workers job_id =
  if workers <= 1 then 0
  else
    let h = Hash64.of_string job_id in
    (* clear the sign bit so the remainder is nonnegative *)
    let h = Int64.logand h Int64.max_int in
    Int64.to_int (Int64.rem h (Int64.of_int workers))

let shard ~workers jobs =
  let shards = Array.make (max 1 workers) [] in
  List.iter
    (fun (j : Manifest.job) ->
      let w = shard_of ~workers j.Manifest.job_id in
      shards.(w) <- j :: shards.(w))
    jobs;
  Array.map List.rev shards

(** Core count of this machine — the default N for [certd --jobs]. *)
let default_workers () = max 1 (Domain.recommended_domain_count ())

(* ---------------------------------------------------------------- *)
(* the fork/pipe plumbing                                            *)

type worker_payload =
  | W_ok of
      Stats.job_report list
      * Timing.samples
      * Cert_store.stats
      * bool (* store degraded? *)
  | W_crashed of string  (** simulated process death: path of the op *)
  | W_error of string  (** an exception escaped Engine.run_job — a bug *)

let write_all fd (b : Bytes.t) =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let read_all fd =
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
  in
  go ();
  Buffer.to_bytes buf

(* the whole life of a worker: fresh engine, run the shard, marshal the
   payload up the pipe, and _exit without touching the parent's
   buffered channels *)
let worker_main ~make_engine ~timed shard wfd =
  let payload =
    try
      let wt = if timed then Some (Timing.create ()) else None in
      let engine = make_engine wt in
      let reports = List.map (Engine.run_job engine) shard in
      Engine.snapshot_counters engine;
      let store = Engine.store engine in
      W_ok
        ( reports,
          (match wt with
          | Some t -> Timing.samples t
          | None -> Timing.samples (Timing.create ())),
          Cert_store.stats store,
          Cert_store.degraded store )
    with
    | Blob_io.Crashed p -> W_crashed p
    | e -> W_error (Printexc.to_string e)
  in
  (try write_all wfd (Marshal.to_bytes payload []) with _ -> ());
  (try Unix.close wfd with Unix.Unix_error _ -> ())

(* ---------------------------------------------------------------- *)
(* the pool driver                                                   *)

type outcome = {
  reports : Stats.job_report list;  (** canonical order: sorted by job id *)
  summary : Stats.summary;
  store_stats : Cert_store.stats;  (** summed over every worker's store *)
  degraded : bool;  (** did any worker's store demote to memory-only? *)
}

let empty_stats () =
  {
    Cert_store.hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    disk_loads = 0;
    drops = 0;
    disk_errors = 0;
    corrupt = 0;
    quarantined = 0;
    orphans_swept = 0;
    gc_evictions = 0;
    quarantine_evictions = 0;
  }

(* spool files are named "<record>.<pid>.tmp" by the store; the pid
   names the owner, so a sweep can tell debris from live work *)
let tmp_owner f =
  if not (Filename.check_suffix f ".tmp") then None
  else
    let stem = Filename.chop_suffix f ".tmp" in
    match String.rindex_opt stem '.' with
    | None -> None
    | Some i ->
        int_of_string_opt (String.sub stem (i + 1) (String.length stem - i - 1))

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true (* EPERM: alive, someone else's *)

(** Remove the pid-unique [.tmp] spool files under a shared cache
    directory — the debris a killed worker leaves between its
    [write_file tmp] and the atomic rename. Only files owned by this
    process or by a dead one are touched: the disk tier may be shared
    with a live daemon whose in-flight spool files are not ours to
    delete. Returns how many were removed; unreadable directories,
    vanished files, and unparseable names count zero (cleanup must
    never raise on the interrupt path). *)
let sweep_tmp_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | files ->
      let self = Unix.getpid () in
      Array.fold_left
        (fun acc f ->
          match tmp_owner f with
          | Some pid when pid = self || not (pid_alive pid) -> (
              match Sys.remove (Filename.concat dir f) with
              | () -> acc + 1
              | exception Sys_error _ -> acc)
          | Some _ | None -> acc)
        0 files

(* N = 1 runs in-process: same engine code, no fork, and [Crashed]
   propagates directly — byte-compatible with the sequential driver *)
let run_inline ?timing ~make_engine emit jobs =
  let engine = make_engine timing in
  let reports = Stats.sort_reports (List.map (Engine.run_job engine) jobs) in
  List.iter emit reports;
  Engine.snapshot_counters engine;
  let store = Engine.store engine in
  {
    reports;
    summary = Stats.summarize reports;
    store_stats = Cert_store.stats store;
    degraded = Cert_store.degraded store;
  }

(** Run [jobs] across [workers] processes. [make_engine] is called once
    {e inside} each worker (after the fork) with that worker's timing
    sink, so every worker owns a private engine and memory tier; point
    the engines at one cache directory to share the disk tier. [emit]
    fires in the parent, once per report, in canonical (job-id) order,
    after all workers finish. Raises [Blob_io.Crashed] if any worker
    simulated a crash — after all workers were reaped.

    While workers are alive, SIGINT is owned by the pool: the handler
    kills and reaps every child (no orphans holding the shared cache
    directory), runs [on_interrupt] (the driver passes a tmp-file sweep
    of that directory here), and exits 130 — instead of the default
    behavior, which killed the parent and left children running and
    half-written [.tmp] files behind. *)
let run ?(emit = fun (_ : Stats.job_report) -> ()) ?timing ?on_interrupt
    ~workers ~make_engine jobs =
  let workers = max 1 workers in
  if workers = 1 then run_inline ?timing ~make_engine emit jobs
  else begin
    let shards = shard ~workers jobs in
    (* a child forked mid-buffer would duplicate whatever the parent
       had not flushed yet *)
    flush stdout;
    flush stderr;
    let spawned =
      Array.to_list shards
      |> List.filter_map (fun shard ->
             if shard = [] then None
             else begin
               let rfd, wfd = Unix.pipe ~cloexec:false () in
               match Unix.fork () with
               | 0 ->
                   (* child: run the shard, report, die quietly. _exit,
                      not exit — at_exit handlers belong to the parent *)
                   Unix.close rfd;
                   worker_main ~make_engine
                     ~timed:(timing <> None)
                     shard wfd;
                   Unix._exit 0
               | pid ->
                   Unix.close wfd;
                   Some (pid, rfd)
             end)
    in
    (* own SIGINT while children are alive: kill them, reap them, let
       the driver sweep its cache debris, and exit with the
       conventional 130 *)
    let prev_int =
      Sys.signal Sys.sigint
        (Sys.Signal_handle
           (fun _ ->
             List.iter
               (fun (pid, _) ->
                 try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
               spawned;
             List.iter
               (fun (pid, _) ->
                 try ignore (Unix.waitpid [] pid)
                 with Unix.Unix_error _ -> ())
               spawned;
             (match on_interrupt with
             | Some f -> ( try f () with _ -> ())
             | None -> ());
             exit 130))
    in
    Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigint prev_int)
    @@ fun () ->
    (* drain every pipe before reaping: a worker blocked writing a large
       payload must not deadlock against a parent blocked in waitpid *)
    let payloads =
      List.map
        (fun (pid, rfd) ->
          let bytes = read_all rfd in
          Unix.close rfd;
          let payload =
            if Bytes.length bytes = 0 then
              W_error "worker died before reporting"
            else
              try (Marshal.from_bytes bytes 0 : worker_payload)
              with Failure _ ->
                W_error "worker payload truncated or corrupt"
          in
          ignore (Unix.waitpid [] pid);
          payload)
        spawned
    in
    let crashed =
      List.find_map
        (function W_crashed p -> Some p | _ -> None)
        payloads
    in
    (match crashed with Some p -> raise (Blob_io.Crashed p) | None -> ());
    (match
       List.find_map (function W_error e -> Some e | _ -> None) payloads
     with
    | Some e -> failwith (Printf.sprintf "Pool.run: worker failed: %s" e)
    | None -> ());
    let reports, store_stats, degraded =
      List.fold_left
        (fun (rs, ss, deg) -> function
          | W_ok (wr, samples, wss, wdeg) ->
              (match timing with
              | Some t -> Timing.absorb t samples
              | None -> ());
              (wr @ rs, Cert_store.add_stats ss wss, deg || wdeg)
          | W_crashed _ | W_error _ -> (rs, ss, deg))
        ([], empty_stats (), false)
        payloads
    in
    let reports = Stats.sort_reports reports in
    List.iter emit reports;
    { reports; summary = Stats.summarize reports; store_stats; degraded }
  end

(** The parallel sharded execution layer: run a job manifest across N
    worker {e processes} and merge the results into exactly the stream
    the sequential engine would have produced.

    Design invariants, in decreasing order of importance:

    {ol
    {- {b Determinism of assignment.} A job's worker is the stable
       64-bit FNV-1a hash of its job id modulo N — a pure function of
       the manifest, never of arrival order, load, or scheduling. Two
       runs of the same manifest at the same N shard identically.}
    {- {b Per-worker memory, shared disk.} Each worker builds its own
       engine after [fork], so the in-memory LRU tier of the
       certificate store is process-private — no locks, no shared
       mutable state. The on-disk tier may be shared by pointing every
       worker at the same cache directory: its writes are atomic
       (tmp-then-rename, worker-unique tmp names) and every bundle read
       from it is re-verified by the reading worker before serving, so
       a concurrent writer can change {e latency} but never
       {e judgements}.}
    {- {b Canonical merge.} Workers ship their reports back over a pipe
       ([Marshal]); the parent concatenates, sorts by job id (the same
       canonical order [Engine.run_jobs] emits), merges the raw timing
       samples, and sums the per-store counters. The canonical
       projection of the output ([Stats.to_canonical_json]) is
       byte-identical across all N.}
    {- {b Crash semantics.} A worker that hits [Blob_io.Crashed] — a
       simulated process death — reports it instead of a result; after
       every worker is reaped the parent re-raises [Crashed], so a
       crash anywhere still kills the whole batch, exactly as in the
       sequential path. Any other escaped exception in a worker (there
       should be none: [Engine.run_job] is total) surfaces as
       [Failure].}}

    Workers are plain [Unix.fork] children: no threads, no domains, so
    this runs on any OCaml the container ships, and a wedged worker can
    be killed without taking the parent down. *)

module Hash64 = Lcp_util.Hash64

(* ---------------------------------------------------------------- *)
(* shard assignment                                                  *)

(** [shard_of ~workers job_id] is the worker index owning [job_id]:
    stable FNV-1a of the id, folded into [0 .. workers-1]. *)
let shard_of ~workers job_id =
  if workers <= 1 then 0
  else
    let h = Hash64.of_string job_id in
    (* clear the sign bit so the remainder is nonnegative *)
    let h = Int64.logand h Int64.max_int in
    Int64.to_int (Int64.rem h (Int64.of_int workers))

let shard ~workers jobs =
  let shards = Array.make (max 1 workers) [] in
  List.iter
    (fun (j : Manifest.job) ->
      let w = shard_of ~workers j.Manifest.job_id in
      shards.(w) <- j :: shards.(w))
    jobs;
  Array.map List.rev shards

(** Core count of this machine — the default N for [certd --jobs]. *)
let default_workers () = max 1 (Domain.recommended_domain_count ())

(* ---------------------------------------------------------------- *)
(* the fork/pipe plumbing                                            *)

type worker_payload =
  | W_ok of
      Stats.job_report list
      * Timing.samples
      * Cert_store.stats
      * bool (* store degraded? *)
  | W_crashed of string  (** simulated process death: path of the op *)
  | W_error of string  (** an exception escaped Engine.run_job — a bug *)

let write_all fd (b : Bytes.t) =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let read_all fd =
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
  in
  go ();
  Buffer.to_bytes buf

(* the whole life of a worker: fresh engine, run the shard, marshal the
   payload up the pipe, and _exit without touching the parent's
   buffered channels *)
let worker_main ~make_engine ~timed shard wfd =
  let payload =
    try
      let wt = if timed then Some (Timing.create ()) else None in
      let engine = make_engine wt in
      let reports = List.map (Engine.run_job engine) shard in
      Engine.flush engine;
      Engine.snapshot_counters engine;
      let store = Engine.store engine in
      W_ok
        ( reports,
          (match wt with
          | Some t -> Timing.samples t
          | None -> Timing.samples (Timing.create ())),
          Cert_store.stats store,
          Cert_store.degraded store )
    with
    | Blob_io.Crashed p -> W_crashed p
    | e -> W_error (Printexc.to_string e)
  in
  (try write_all wfd (Marshal.to_bytes payload []) with _ -> ());
  (try Unix.close wfd with Unix.Unix_error _ -> ())

(* ---------------------------------------------------------------- *)
(* the pool driver                                                   *)

type outcome = {
  reports : Stats.job_report list;  (** canonical order: sorted by job id *)
  summary : Stats.summary;
  store_stats : Cert_store.stats;  (** summed over every worker's store *)
  degraded : bool;  (** did any worker's store demote to memory-only? *)
}

let empty_stats () =
  {
    Cert_store.hits = 0;
    misses = 0;
    insertions = 0;
    evictions = 0;
    disk_loads = 0;
    drops = 0;
    disk_errors = 0;
    corrupt = 0;
    quarantined = 0;
    orphans_swept = 0;
    gc_evictions = 0;
    quarantine_evictions = 0;
    filter_hits = 0;
    filter_skips = 0;
    filter_fps = 0;
    flushes = 0;
  }

(* spool files are named "<record>.<pid>.tmp" by the store; the pid
   names the owner, so a sweep can tell debris from live work *)
let tmp_owner f =
  if not (Filename.check_suffix f ".tmp") then None
  else
    let stem = Filename.chop_suffix f ".tmp" in
    match String.rindex_opt stem '.' with
    | None -> None
    | Some i ->
        int_of_string_opt (String.sub stem (i + 1) (String.length stem - i - 1))

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true (* EPERM: alive, someone else's *)

(** Remove the pid-unique [.tmp] spool files under a shared cache
    directory — the debris a killed worker leaves between its
    [write_file tmp] and the atomic rename. Only files owned by this
    process or by a dead one are touched: the disk tier may be shared
    with a live daemon whose in-flight spool files are not ours to
    delete. Returns how many were removed; unreadable directories,
    vanished files, and unparseable names count zero (cleanup must
    never raise on the interrupt path). *)
let sweep_tmp_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | files ->
      let self = Unix.getpid () in
      Array.fold_left
        (fun acc f ->
          match tmp_owner f with
          | Some pid when pid = self || not (pid_alive pid) -> (
              match Sys.remove (Filename.concat dir f) with
              | () -> acc + 1
              | exception Sys_error _ -> acc)
          | Some _ | None -> acc)
        0 files

(* N = 1 runs in-process: same engine code, no fork, and [Crashed]
   propagates directly — byte-compatible with the sequential driver *)
let run_inline ?timing ~make_engine emit jobs =
  let engine = make_engine timing in
  let reports = Stats.sort_reports (List.map (Engine.run_job engine) jobs) in
  List.iter emit reports;
  Engine.flush engine;
  Engine.snapshot_counters engine;
  let store = Engine.store engine in
  {
    reports;
    summary = Stats.summarize reports;
    store_stats = Cert_store.stats store;
    degraded = Cert_store.degraded store;
  }

(** Run [jobs] across [workers] processes. [make_engine] is called once
    {e inside} each worker (after the fork) with that worker's timing
    sink, so every worker owns a private engine and memory tier; point
    the engines at one cache directory to share the disk tier. [emit]
    fires in the parent, once per report, in canonical (job-id) order,
    after all workers finish. Raises [Blob_io.Crashed] if any worker
    simulated a crash — after all workers were reaped.

    While workers are alive, SIGINT is owned by the pool: the handler
    kills and reaps every child (no orphans holding the shared cache
    directory), runs [on_interrupt] (the driver passes a tmp-file sweep
    of that directory here), and exits 130 — instead of the default
    behavior, which killed the parent and left children running and
    half-written [.tmp] files behind. *)
let run ?(emit = fun (_ : Stats.job_report) -> ()) ?timing ?on_interrupt
    ~workers ~make_engine jobs =
  let workers = max 1 workers in
  if workers = 1 then run_inline ?timing ~make_engine emit jobs
  else begin
    let shards = shard ~workers jobs in
    (* a child forked mid-buffer would duplicate whatever the parent
       had not flushed yet *)
    flush stdout;
    flush stderr;
    let spawned =
      Array.to_list shards
      |> List.filter_map (fun shard ->
             if shard = [] then None
             else begin
               let rfd, wfd = Unix.pipe ~cloexec:false () in
               match Unix.fork () with
               | 0 ->
                   (* child: run the shard, report, die quietly. _exit,
                      not exit — at_exit handlers belong to the parent *)
                   Unix.close rfd;
                   worker_main ~make_engine
                     ~timed:(timing <> None)
                     shard wfd;
                   Unix._exit 0
               | pid ->
                   Unix.close wfd;
                   Some (pid, rfd)
             end)
    in
    (* own SIGINT while children are alive: kill them, reap them, let
       the driver sweep its cache debris, and exit with the
       conventional 130 *)
    let prev_int =
      Sys.signal Sys.sigint
        (Sys.Signal_handle
           (fun _ ->
             List.iter
               (fun (pid, _) ->
                 try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
               spawned;
             List.iter
               (fun (pid, _) ->
                 try ignore (Unix.waitpid [] pid)
                 with Unix.Unix_error _ -> ())
               spawned;
             (match on_interrupt with
             | Some f -> ( try f () with _ -> ())
             | None -> ());
             exit 130))
    in
    Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigint prev_int)
    @@ fun () ->
    (* drain every pipe before reaping: a worker blocked writing a large
       payload must not deadlock against a parent blocked in waitpid *)
    let payloads =
      List.map
        (fun (pid, rfd) ->
          let bytes = read_all rfd in
          Unix.close rfd;
          let payload =
            if Bytes.length bytes = 0 then
              W_error "worker died before reporting"
            else
              try (Marshal.from_bytes bytes 0 : worker_payload)
              with Failure _ ->
                W_error "worker payload truncated or corrupt"
          in
          ignore (Unix.waitpid [] pid);
          payload)
        spawned
    in
    let crashed =
      List.find_map
        (function W_crashed p -> Some p | _ -> None)
        payloads
    in
    (match crashed with Some p -> raise (Blob_io.Crashed p) | None -> ());
    (match
       List.find_map (function W_error e -> Some e | _ -> None) payloads
     with
    | Some e -> failwith (Printf.sprintf "Pool.run: worker failed: %s" e)
    | None -> ());
    let reports, store_stats, degraded =
      List.fold_left
        (fun (rs, ss, deg) -> function
          | W_ok (wr, samples, wss, wdeg) ->
              (match timing with
              | Some t -> Timing.absorb t samples
              | None -> ());
              (wr @ rs, Cert_store.add_stats ss wss, deg || wdeg)
          | W_crashed _ | W_error _ -> (rs, ss, deg))
        ([], empty_stats (), false)
        payloads
    in
    let reports = Stats.sort_reports reports in
    List.iter emit reports;
    { reports; summary = Stats.summarize reports; store_stats; degraded }
  end

(* ---------------------------------------------------------------- *)
(* the streaming driver                                              *)

(** Outcome of a streaming run: only aggregates — the reports were
    emitted one at a time and never accumulated. *)
type stream_outcome = {
  stream_summary : Stats.summary;
  stream_store : Cert_store.stats;  (** summed over every worker's store *)
  stream_degraded : bool;
}

(* Worker-to-parent protocol of the streaming pool: each report ships
   as its own frame the moment the job finishes, so the parent can
   emit in feed order while the stream is still being produced. A
   frame is a 4-byte big-endian length followed by the marshalled
   message. *)
type stream_msg =
  | S_report of Stats.job_report
  | S_done of Timing.samples * Cert_store.stats * bool (* degraded? *)
  | S_crashed of string
  | S_error of string

exception Stream_stop

let frame (msg : stream_msg) =
  let b = Marshal.to_bytes msg [] in
  let n = Bytes.length b in
  let out = Bytes.create (4 + n) in
  Bytes.set out 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set out 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set out 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set out 3 (Char.chr (n land 0xff));
  Bytes.blit b 0 out 4 n;
  out

(* A streaming worker reads manifest lines (one job each) until EOF,
   answers every job with an [S_report] frame immediately, and signs
   off with [S_done] carrying its timing samples and store counters. *)
let stream_worker_main ~make_engine ~timed rfd wfd =
  let send msg = write_all wfd (frame msg) in
  (try
     let wt = if timed then Some (Timing.create ()) else None in
     let engine = make_engine wt in
     let ic = Unix.in_channel_of_descr rfd in
     try
       let rec loop () =
         match input_line ic with
         | exception End_of_file -> ()
         | line -> (
             match Manifest.parse line with
             | Ok [ job ] ->
                 send (S_report (Engine.run_job engine job));
                 loop ()
             | Ok _ | Error _ ->
                 failwith ("stream worker: unparseable job line: " ^ line))
       in
       loop ();
       Engine.flush engine;
       Engine.snapshot_counters engine;
       let store = Engine.store engine in
       send
         (S_done
            ( (match wt with
              | Some t -> Timing.samples t
              | None -> Timing.samples (Timing.create ())),
              Cert_store.stats store,
              Cert_store.degraded store ))
     with
     | Blob_io.Crashed p -> send (S_crashed p)
     | e -> send (S_error (Printexc.to_string e))
   with _ -> ());
  try Unix.close wfd with Unix.Unix_error _ -> ()

(* Parent-side view of one streaming worker. *)
type wstream = {
  ws_pid : int;
  ws_rfd : Unix.file_descr;  (** results in *)
  ws_wfd : Unix.file_descr;  (** job lines out; nonblocking *)
  ws_out_q : string Queue.t;  (** job lines not yet started *)
  mutable ws_out : string;  (** line currently being written *)
  mutable ws_out_pos : int;
  ws_in : Buffer.t;  (** unparsed inbound bytes *)
  ws_reports : Stats.job_report Queue.t;  (** decoded, unemitted *)
  mutable ws_open : bool;  (** our write end still open *)
  mutable ws_done : bool;  (** S_done/S_crashed/S_error seen *)
  mutable ws_eof : bool;  (** read side drained *)
}

let ws_pending w =
  w.ws_out_pos < String.length w.ws_out || not (Queue.is_empty w.ws_out_q)

(** Run a stream of jobs across [workers] processes in constant
    memory: [produce feed] calls [feed job] once per job, in workload
    order; [emit] fires in the parent once per report {e in feed
    order} — never a whole-corpus list, never a sort. (The batch
    driver's canonical order is job-id order, so a feed sorted by id —
    e.g. a generated workload with zero-padded sequential ids — makes
    the streamed JSONL byte-identical to the batch driver's at any
    worker count.)

    Sharding, engine construction, crash semantics, and SIGINT
    handling match {!run}: same FNV-1a shard function, one engine per
    forked worker, [Blob_io.Crashed] re-raised after every worker is
    reaped. At most [window] jobs are in flight (fed but not yet
    emitted); the producer blocks when the window is full, so parent
    memory is bounded by [window] reports regardless of corpus size. *)
let run_stream ?(emit = fun (_ : Stats.job_report) -> ()) ?timing ?on_interrupt
    ?window ~workers ~make_engine produce =
  let workers = max 1 workers in
  let window =
    match window with Some w when w > 0 -> w | _ -> max 64 (8 * workers)
  in
  if workers = 1 then begin
    (* in-process: emit as we go, fold the summary incrementally *)
    let engine = make_engine timing in
    let summary = ref Stats.summary_zero in
    produce (fun job ->
        let r = Engine.run_job engine job in
        emit r;
        summary := Stats.summary_add !summary r);
    Engine.flush engine;
    Engine.snapshot_counters engine;
    let store = Engine.store engine in
    {
      stream_summary = !summary;
      stream_store = Cert_store.stats store;
      stream_degraded = Cert_store.degraded store;
    }
  end
  else begin
    flush stdout;
    flush stderr;
    (* two pipes per worker; children close every parent-side fd
       created for earlier siblings, or EOF on a sibling's job pipe
       would never arrive *)
    let parent_fds = ref [] in
    let ws =
      Array.init workers (fun _ ->
          let jr, jw = Unix.pipe ~cloexec:false () in
          let rr, rw = Unix.pipe ~cloexec:false () in
          match Unix.fork () with
          | 0 ->
              Unix.close jw;
              Unix.close rr;
              List.iter
                (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
                !parent_fds;
              stream_worker_main ~make_engine ~timed:(timing <> None) jr rw;
              Unix._exit 0
          | pid ->
              Unix.close jr;
              Unix.close rw;
              Unix.set_nonblock jw;
              parent_fds := jw :: rr :: !parent_fds;
              {
                ws_pid = pid;
                ws_rfd = rr;
                ws_wfd = jw;
                ws_out_q = Queue.create ();
                ws_out = "";
                ws_out_pos = 0;
                ws_in = Buffer.create 4096;
                ws_reports = Queue.create ();
                ws_open = true;
                ws_done = false;
                ws_eof = false;
              })
    in
    let kill_all () =
      Array.iter
        (fun w ->
          try Unix.kill w.ws_pid Sys.sigkill with Unix.Unix_error _ -> ())
        ws;
      Array.iter
        (fun w ->
          try ignore (Unix.waitpid [] w.ws_pid) with Unix.Unix_error _ -> ())
        ws
    in
    let prev_int =
      Sys.signal Sys.sigint
        (Sys.Signal_handle
           (fun _ ->
             kill_all ();
             (match on_interrupt with
             | Some f -> ( try f () with _ -> ())
             | None -> ());
             exit 130))
    in
    (* a worker can die while we hold pending lines for it; the write
       must surface as EPIPE, not kill the parent *)
    let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
    Fun.protect
      ~finally:(fun () ->
        Sys.set_signal Sys.sigint prev_int;
        Sys.set_signal Sys.sigpipe prev_pipe)
    @@ fun () ->
    let summary = ref Stats.summary_zero in
    let store_stats = ref (empty_stats ()) in
    let degraded = ref false in
    let crashed = ref None in
    let errored = ref None in
    let feed_order = Queue.create () in
    let in_flight = ref 0 in
    (* feed-order emission: reports come back per-worker FIFO, so the
       head of [feed_order] is emittable exactly when its worker's
       report queue is nonempty *)
    let try_emit () =
      let progress = ref true in
      while !progress do
        progress := false;
        match Queue.peek_opt feed_order with
        | None -> ()
        | Some i -> (
            match Queue.take_opt ws.(i).ws_reports with
            | None -> ()
            | Some r ->
                ignore (Queue.pop feed_order);
                emit r;
                summary := Stats.summary_add !summary r;
                decr in_flight;
                progress := true)
      done
    in
    let mark_done i =
      if not ws.(i).ws_done then begin
        ws.(i).ws_done <- true;
        if !crashed = None && !errored = None then
          errored := Some "stream worker died before reporting"
      end
    in
    let handle i (msg : stream_msg) =
      match msg with
      | S_report r -> Queue.push r ws.(i).ws_reports
      | S_done (samples, stats, deg) ->
          ws.(i).ws_done <- true;
          (match timing with Some t -> Timing.absorb t samples | None -> ());
          store_stats := Cert_store.add_stats !store_stats stats;
          degraded := !degraded || deg
      | S_crashed p ->
          ws.(i).ws_done <- true;
          if !crashed = None then crashed := Some p
      | S_error e ->
          ws.(i).ws_done <- true;
          if !errored = None then errored := Some e
    in
    let parse_frames i =
      let w = ws.(i) in
      let s = Buffer.contents w.ws_in in
      let len = String.length s in
      let pos = ref 0 in
      let continue = ref true in
      while !continue do
        if len - !pos < 4 then continue := false
        else begin
          let flen =
            (Char.code s.[!pos] lsl 24)
            lor (Char.code s.[!pos + 1] lsl 16)
            lor (Char.code s.[!pos + 2] lsl 8)
            lor Char.code s.[!pos + 3]
          in
          if len - !pos - 4 < flen then continue := false
          else begin
            handle i (Marshal.from_string s (!pos + 4) : stream_msg);
            pos := !pos + 4 + flen
          end
        end
      done;
      if !pos > 0 then begin
        let rest = String.sub s !pos (len - !pos) in
        Buffer.clear w.ws_in;
        Buffer.add_string w.ws_in rest
      end
    in
    let chunk = Bytes.create 65536 in
    let pump_read i =
      let w = ws.(i) in
      match Unix.read w.ws_rfd chunk 0 (Bytes.length chunk) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | 0 ->
          w.ws_eof <- true;
          (try Unix.close w.ws_rfd with Unix.Unix_error _ -> ());
          mark_done i
      | n ->
          Buffer.add_subbytes w.ws_in chunk 0 n;
          parse_frames i
    in
    let pump_write i =
      let w = ws.(i) in
      try
        let more = ref true in
        while !more do
          if w.ws_out_pos >= String.length w.ws_out then
            match Queue.take_opt w.ws_out_q with
            | Some s ->
                w.ws_out <- s;
                w.ws_out_pos <- 0
            | None -> more := false
          else
            let n =
              Unix.write_substring w.ws_wfd w.ws_out w.ws_out_pos
                (String.length w.ws_out - w.ws_out_pos)
            in
            w.ws_out_pos <- w.ws_out_pos + n
        done
      with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | Unix.Unix_error (Unix.EPIPE, _, _) ->
          (* dead worker: drop its backlog; the read side reports it *)
          Queue.clear w.ws_out_q;
          w.ws_out <- "";
          w.ws_out_pos <- 0
    in
    let pump block =
      let rfds = ref [] and wfds = ref [] in
      Array.iter
        (fun w ->
          if not w.ws_eof then rfds := w.ws_rfd :: !rfds;
          if w.ws_open && ws_pending w then wfds := w.ws_wfd :: !wfds)
        ws;
      (if !rfds <> [] || !wfds <> [] then
         let timeout = if block then -1.0 else 0.0 in
         match Unix.select !rfds !wfds [] timeout with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | r, wr, _ ->
             Array.iteri (fun i w -> if List.memq w.ws_wfd wr then pump_write i) ws;
             Array.iteri (fun i w -> if List.memq w.ws_rfd r then pump_read i) ws);
      try_emit ()
    in
    let live_input () =
      Array.exists (fun w -> not w.ws_eof) ws
      || Array.exists (fun w -> not (Queue.is_empty w.ws_reports)) ws
    in
    let feed (job : Manifest.job) =
      if !crashed <> None || !errored <> None then raise Stream_stop;
      let id = job.Manifest.job_id in
      String.iter
        (fun c ->
          if c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '#' then
            invalid_arg
              (Printf.sprintf
                 "Pool.run_stream: job id %S cannot cross a stream pipe" id))
        id;
      let i = shard_of ~workers id in
      Queue.push (Manifest.print_job job ^ "\n") ws.(i).ws_out_q;
      Queue.push i feed_order;
      incr in_flight;
      pump false;
      while
        !in_flight >= window
        && !crashed = None
        && !errored = None
        && live_input ()
      do
        pump true
      done
    in
    (try produce feed with Stream_stop -> ());
    (* drain the backlog, then EOF every job pipe so workers finish *)
    while
      Array.exists (fun w -> w.ws_open && ws_pending w) ws
      && !crashed = None
      && !errored = None
    do
      pump true
    done;
    Array.iter
      (fun w ->
        if w.ws_open then begin
          w.ws_open <- false;
          try Unix.close w.ws_wfd with Unix.Unix_error _ -> ()
        end)
      ws;
    while Array.exists (fun w -> not w.ws_eof) ws do
      pump true
    done;
    try_emit ();
    Array.iter
      (fun w ->
        try ignore (Unix.waitpid [] w.ws_pid) with Unix.Unix_error _ -> ())
      ws;
    (match !crashed with
    | Some p -> raise (Blob_io.Crashed p)
    | None -> ());
    (match !errored with
    | Some e -> failwith (Printf.sprintf "Pool.run_stream: worker failed: %s" e)
    | None -> ());
    if !in_flight <> 0 then
      failwith "Pool.run_stream: workers exited with reports outstanding";
    {
      stream_summary = !summary;
      stream_store = !store_stats;
      stream_degraded = !degraded;
    }
  end

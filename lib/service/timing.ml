(** Lightweight per-stage timing for the certification pipeline: every
    engine stage (parse, prove, encode, verify, store) records its
    duration into a growable sample buffer keyed by stage, and the
    buffer renders as a histogram footer (count, total, p50/p90/p99,
    max per stage).

    Durations are measured on the {e monotonic} clock
    ([Monotonic_clock.now], CLOCK_MONOTONIC under the hood), so a
    wall-clock step (NTP slew, suspend) can never produce a negative or
    wildly inflated sample — gettimeofday arithmetic can.

    The sink is deliberately dumb: raw samples, no pre-bucketing. A
    worker process serializes its samples with [samples] and the pool
    merges them into the parent's sink with [absorb], so percentiles
    over a sharded run are computed from the {e exact} union of
    samples, identical to what a sequential run would report.

    Besides durations the sink carries named integer {e counters}
    (composition-memo hits/misses, interned states, GC minor words);
    [absorb] merges them by summation and [pp] renders them on one
    [counters:] line after the histogram. *)

type stage = Parse | Prove | Encode | Verify | Store

let stages = [ Parse; Prove; Encode; Verify; Store ]

let stage_name = function
  | Parse -> "parse"
  | Prove -> "prove"
  | Encode -> "encode"
  | Verify -> "verify"
  | Store -> "store"

(* a growable float buffer; Buffer for floats, nothing more *)
type buf = { mutable data : float array; mutable len : int }

let buf_create () = { data = Array.make 64 0.0; len = 0 }

let buf_push b x =
  if b.len = Array.length b.data then begin
    let grown = Array.make (2 * b.len) 0.0 in
    Array.blit b.data 0 grown 0 b.len;
    b.data <- grown
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let buf_to_list b = Array.to_list (Array.sub b.data 0 b.len)

type t = {
  bufs : (stage * buf) list;
      (* assoc over the five fixed stages; tiny, allocation-free on record *)
  mutable ctrs : (string * int) list;
      (* named event counters (memo hits, allocation words, ...) riding
         along with the histogram; merged across workers by summation *)
}

let create () : t = { bufs = List.map (fun s -> (s, buf_create ())) stages; ctrs = [] }

let now_ns () = Monotonic_clock.now ()

let ms_of_ns ns = Int64.to_float ns /. 1e6

let record (t : t) stage ms = buf_push (List.assoc stage t.bufs) ms

let set_counter (t : t) name v =
  t.ctrs <- (name, v) :: List.remove_assoc name t.ctrs

let add_counter (t : t) name v =
  let cur = match List.assoc_opt name t.ctrs with Some c -> c | None -> 0 in
  set_counter t name (cur + v)

let counters (t : t) =
  List.sort (fun (a, _) (b, _) -> compare a b) t.ctrs

(** [time t stage f] runs [f ()], recording its duration under [stage]
    when a sink is present. The [option] lives here so call sites stay
    one line. *)
let time (t : t option) stage f =
  match t with
  | None -> f ()
  | Some t ->
      let t0 = now_ns () in
      let r = f () in
      record t stage (ms_of_ns (Int64.sub (now_ns ()) t0));
      r

(* ---------------------------------------------------------------- *)
(* cross-process merge                                               *)

type samples = {
  w_stages : (string * float list) list;
  w_ctrs : (string * int) list;
}
(** the wire form: stage name -> raw samples, plus the counter snapshot.
    Strings rather than the variant so a marshalled payload from a
    worker of a different build degrades to an error, not a segfault. *)

let samples (t : t) : samples =
  {
    w_stages = List.map (fun (s, b) -> (stage_name s, buf_to_list b)) t.bufs;
    w_ctrs = t.ctrs;
  }

let absorb (t : t) (xs : samples) =
  List.iter
    (fun (name, values) ->
      match List.find_opt (fun (s, _) -> stage_name s = name) t.bufs with
      | Some (_, b) -> List.iter (buf_push b) values
      | None -> ())
    xs.w_stages;
  List.iter (fun (name, v) -> add_counter t name v) xs.w_ctrs

(** Drop every sample and counter, keeping the sink itself. *)
let reset (t : t) =
  List.iter (fun (_, b) -> b.len <- 0) t.bufs;
  t.ctrs <- []

(** Take the sink's samples and reset it: the shipping discipline of a
    long-lived daemon worker, which flushes after every job so the
    supervisor absorbs each job's stage durations exactly once. *)
let flush (t : t) : samples =
  let s = samples t in
  reset t;
  s

(* ---------------------------------------------------------------- *)
(* rendering                                                         *)

type line = {
  l_stage : string;
  l_count : int;
  l_total_ms : float;
  l_p50 : float;
  l_p90 : float;
  l_p99 : float;
  l_max : float;
}

(* nearest-rank percentile over a sorted copy of the samples *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let report (t : t) : line list =
  List.filter_map
    (fun ((s : stage), b) ->
      if b.len = 0 then None
      else begin
        let sorted = Array.sub b.data 0 b.len in
        Array.sort compare sorted;
        let total = Array.fold_left ( +. ) 0.0 sorted in
        Some
          {
            l_stage = stage_name s;
            l_count = b.len;
            l_total_ms = total;
            l_p50 = percentile sorted 0.50;
            l_p90 = percentile sorted 0.90;
            l_p99 = percentile sorted 0.99;
            l_max = sorted.(b.len - 1);
          }
      end)
    t.bufs

(** The percentile lines as a JSON array, for the daemon's live stats
    endpoint — same numbers [pp] renders as the histogram footer. *)
let report_json (t : t) =
  let line l =
    Printf.sprintf
      "{\"stage\":\"%s\",\"count\":%d,\"total_ms\":%.3f,\"p50_ms\":%.3f,\"p90_ms\":%.3f,\"p99_ms\":%.3f,\"max_ms\":%.3f}"
      l.l_stage l.l_count l.l_total_ms l.l_p50 l.l_p90 l.l_p99 l.l_max
  in
  "[" ^ String.concat "," (List.map line (report t)) ^ "]"

(** The counters as one JSON object ([{}] when none have been
    recorded), for the daemon's live stats endpoint — the same numbers
    [pp_counters] renders after the histogram. Counter names are
    identifier-shaped (memo_hit, minor_words, ...), so no escaping. *)
let counters_json (t : t) =
  "{"
  ^ String.concat ","
      (List.map (fun (name, v) -> Printf.sprintf "\"%s\":%d" name v) (counters t))
  ^ "}"

let pp_counters ppf (t : t) =
  match counters t with
  | [] -> ()
  | cs ->
      Format.fprintf ppf "@,counters:";
      List.iter (fun (name, v) -> Format.fprintf ppf " %s=%d" name v) cs

let pp ppf (t : t) =
  match report t with
  | [] ->
      Format.fprintf ppf "@[<v>timing: no samples%a@]" pp_counters t
  | lines ->
      Format.fprintf ppf "@[<v>%-8s %8s %12s %10s %10s %10s %10s" "stage"
        "count" "total ms" "p50 ms" "p90 ms" "p99 ms" "max ms";
      List.iter
        (fun l ->
          Format.fprintf ppf "@,%-8s %8d %12.1f %10.3f %10.3f %10.3f %10.3f"
            l.l_stage l.l_count l.l_total_ms l.l_p50 l.l_p90 l.l_p99 l.l_max)
        lines;
      Format.fprintf ppf "%a@]" pp_counters t

(** Graph file I/O for the certification service: parsers and printers
    for three interchange formats, with line-precise error reporting.

    - {b DIMACS} edge lists ([.dimacs], [.col]): [c] comment lines, one
      [p edge <n> <m>] header, then [m] lines [e <u> <v>] with 1-based
      endpoints. The parser is strict: the header must come first, the
      edge count must match, and self-loops, duplicates and out-of-range
      endpoints are rejected.
    - {b graph6} ([.g6]): Brendan McKay's 6-bit upper-triangle encoding,
      with the optional [>>graph6<<] header. Supports n up to 258047
      (the 1- and 4-byte size forms). Strict about length and about the
      zero padding bits.
    - {b native adjacency} ([.adj], [.lcp]): a human-editable format,
      [lcpadj <n>] followed by lines [u: v1 v2 ...] listing the strictly
      increasing forward neighbors (vi > u) of [u]; vertices without
      forward neighbors are omitted. [#] starts a comment.

    All parsers return [Error msg] with the offending line (or byte)
    position baked into [msg]; printers are canonical, so
    [parse fmt (print fmt g)] reconstructs [g] exactly. *)

module Graph = Lcp_graph.Graph

type format = Dimacs | Graph6 | Adjacency

let formats =
  [
    (Dimacs, [ ".dimacs"; ".col" ], "DIMACS edge list (p edge / e lines)");
    (Graph6, [ ".g6" ], "graph6 6-bit upper-triangle encoding");
    (Adjacency, [ ".adj"; ".lcp" ], "native adjacency lists (lcpadj header)");
  ]

let format_name = function
  | Dimacs -> "dimacs"
  | Graph6 -> "graph6"
  | Adjacency -> "adjacency"

let supported_formats_doc () =
  String.concat ", "
    (List.map
       (fun (f, exts, _) ->
         Printf.sprintf "%s (%s)" (format_name f) (String.concat " " exts))
       formats)

let format_of_filename file =
  let lower = String.lowercase_ascii file in
  let has_ext e =
    String.length lower >= String.length e
    && String.sub lower (String.length lower - String.length e)
         (String.length e)
       = e
  in
  match
    List.find_opt (fun (_, exts, _) -> List.exists has_ext exts) formats
  with
  | Some (f, _, _) -> Ok f
  | None ->
      Error
        (Printf.sprintf
           "%s: cannot infer graph format from the extension; supported: %s"
           file (supported_formats_doc ()))

(* ---------------------------------------------------------------- *)
(* line-based scaffolding                                            *)

let err_line ~fmt line msg =
  Error (Printf.sprintf "%s, line %d: %s" (format_name fmt) line msg)

let split_lines s =
  (* keep line numbers 1-based; tolerate \r\n *)
  let lines = String.split_on_char '\n' s in
  List.mapi
    (fun i l ->
      let l =
        if String.length l > 0 && l.[String.length l - 1] = '\r' then
          String.sub l 0 (String.length l - 1)
        else l
      in
      (i + 1, l))
    lines

let tokens l =
  String.split_on_char ' ' l
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let int_of_token t =
  match int_of_string_opt t with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "expected an integer, got %S" t)

(* ---------------------------------------------------------------- *)
(* DIMACS                                                            *)

let print_dimacs g =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "p edge %d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges
    (fun (u, v) -> Buffer.add_string b (Printf.sprintf "e %d %d\n" (u + 1) (v + 1)))
    g;
  Buffer.contents b

let parse_dimacs s =
  let fmt = Dimacs in
  let header = ref None in
  let edges = ref [] in
  let count = ref 0 in
  let seen = Hashtbl.create 64 in
  let rec go = function
    | [] -> (
        match !header with
        | None -> Error "dimacs: missing 'p edge <n> <m>' header line"
        | Some (n, m) ->
            if !count <> m then
              Error
                (Printf.sprintf
                   "dimacs: header declares %d edges but the file lists %d" m
                   !count)
            else Ok (Graph.of_edges ~n (List.rev !edges)))
    | (ln, l) :: rest -> (
        match tokens l with
        | [] -> go rest
        | "c" :: _ -> go rest
        | "p" :: args -> (
            if !header <> None then err_line ~fmt ln "duplicate 'p' header"
            else
              match args with
              | [ kind; sn; sm ] -> (
                  if kind <> "edge" then
                    err_line ~fmt ln
                      (Printf.sprintf "expected 'p edge', got 'p %s'" kind)
                  else
                    match (int_of_token sn, int_of_token sm) with
                    | Ok n, Ok m ->
                        if n < 0 || m < 0 then
                          err_line ~fmt ln "negative vertex or edge count"
                        else begin
                          header := Some (n, m);
                          go rest
                        end
                    | Error e, _ | _, Error e -> err_line ~fmt ln e)
              | _ ->
                  err_line ~fmt ln
                    "malformed header; expected 'p edge <n> <m>'")
        | "e" :: args -> (
            match !header with
            | None ->
                err_line ~fmt ln "'e' line before the 'p edge <n> <m>' header"
            | Some (n, _) -> (
                match args with
                | [ su; sv ] -> (
                    match (int_of_token su, int_of_token sv) with
                    | Ok u, Ok v ->
                        if u < 1 || u > n || v < 1 || v > n then
                          err_line ~fmt ln
                            (Printf.sprintf
                               "endpoint out of range [1,%d] in 'e %d %d'" n u
                               v)
                        else if u = v then
                          err_line ~fmt ln
                            (Printf.sprintf "self-loop 'e %d %d'" u v)
                        else
                          let e = (min u v - 1, max u v - 1) in
                          if Hashtbl.mem seen e then
                            err_line ~fmt ln
                              (Printf.sprintf "duplicate edge 'e %d %d'" u v)
                          else begin
                            Hashtbl.add seen e ();
                            edges := e :: !edges;
                            incr count;
                            go rest
                          end
                    | Error e, _ | _, Error e -> err_line ~fmt ln e)
                | _ -> err_line ~fmt ln "malformed edge; expected 'e <u> <v>'"))
        | tok :: _ ->
            err_line ~fmt ln
              (Printf.sprintf "unknown line type %S (expected c, p or e)" tok))
  in
  go (split_lines s)

(* ---------------------------------------------------------------- *)
(* graph6                                                            *)

let graph6_max_n = 258047

let print_graph6 g =
  let n = Graph.n g in
  if n > graph6_max_n then
    invalid_arg
      (Printf.sprintf "Graph_io.print_graph6: n = %d > %d unsupported" n
         graph6_max_n);
  let b = Buffer.create 64 in
  if n <= 62 then Buffer.add_char b (Char.chr (n + 63))
  else begin
    Buffer.add_char b '~';
    Buffer.add_char b (Char.chr (((n lsr 12) land 0x3f) + 63));
    Buffer.add_char b (Char.chr (((n lsr 6) land 0x3f) + 63));
    Buffer.add_char b (Char.chr ((n land 0x3f) + 63))
  end;
  let group = ref 0 and filled = ref 0 in
  let flush_group () =
    Buffer.add_char b (Char.chr (!group + 63));
    group := 0;
    filled := 0
  in
  let push bit =
    group := (!group lsl 1) lor (if bit then 1 else 0);
    incr filled;
    if !filled = 6 then flush_group ()
  in
  for v = 1 to n - 1 do
    for u = 0 to v - 1 do
      push (Graph.mem_edge g u v)
    done
  done;
  if !filled > 0 then begin
    group := !group lsl (6 - !filled);
    Buffer.add_char b (Char.chr (!group + 63))
  end;
  Buffer.add_char b '\n';
  Buffer.contents b

let parse_graph6 s =
  let s =
    (* strip the optional header and trailing newline(s) *)
    let hdr = ">>graph6<<" in
    let s =
      if String.length s >= String.length hdr
         && String.sub s 0 (String.length hdr) = hdr
      then String.sub s (String.length hdr) (String.length s - String.length hdr)
      else s
    in
    String.trim s
  in
  let len = String.length s in
  let byte i = Char.code s.[i] in
  let check_char i =
    let c = byte i in
    if c < 63 || c > 126 then
      Error
        (Printf.sprintf "graph6, byte %d: invalid character %C (code %d)"
           (i + 1) s.[i] c)
    else Ok (c - 63)
  in
  let ( let* ) = Result.bind in
  if len = 0 then Error "graph6: empty input"
  else
    let* size_bytes, n =
      let* c0 = check_char 0 in
      if c0 < 63 then Ok (1, c0)
      else if len >= 2 && s.[1] = '~' then
        Error "graph6: n > 258047 (the 8-byte size form) is unsupported"
      else if len < 4 then
        Error "graph6: truncated size field (expected '~' + 3 bytes)"
      else
        let* c1 = check_char 1 in
        let* c2 = check_char 2 in
        let* c3 = check_char 3 in
        Ok (4, (c1 lsl 12) lor (c2 lsl 6) lor c3)
    in
    let nbits = n * (n - 1) / 2 in
    let nbytes = (nbits + 5) / 6 in
    if len - size_bytes <> nbytes then
      Error
        (Printf.sprintf
           "graph6: n = %d needs %d encoding bytes after the size field, got %d"
           n nbytes (len - size_bytes))
    else
      let edges = ref [] in
      let pos = ref 0 in
      let err = ref None in
      (let u = ref 0 and v = ref 1 in
       (try
          for i = size_bytes to len - 1 do
            match check_char i with
            | Error e ->
                err := Some e;
                raise Exit
            | Ok g6 ->
                for j = 5 downto 0 do
                  let bit = g6 land (1 lsl j) <> 0 in
                  if !pos < nbits then begin
                    if bit then edges := (!u, !v) :: !edges;
                    incr pos;
                    incr u;
                    if !u = !v then begin
                      u := 0;
                      incr v
                    end
                  end
                  else if bit then begin
                    err :=
                      Some
                        (Printf.sprintf
                           "graph6, byte %d: nonzero padding bit" (i + 1));
                    raise Exit
                  end
                done
          done
        with Exit -> ()));
      match !err with
      | Some e -> Error e
      | None -> Ok (Graph.of_edges ~n (List.rev !edges))

(* ---------------------------------------------------------------- *)
(* native adjacency                                                  *)

let print_adjacency g =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "lcpadj %d\n" (Graph.n g));
  for u = 0 to Graph.n g - 1 do
    let fwd = List.filter (fun v -> v > u) (Graph.neighbors g u) in
    if fwd <> [] then
      Buffer.add_string b
        (Printf.sprintf "%d: %s\n" u
           (String.concat " " (List.map string_of_int fwd)))
  done;
  Buffer.contents b

let parse_adjacency s =
  let fmt = Adjacency in
  let ( let* ) = Result.bind in
  let strip_comment l =
    match String.index_opt l '#' with
    | Some i -> String.sub l 0 i
    | None -> l
  in
  let lines =
    List.filter_map
      (fun (ln, l) ->
        let l = strip_comment l in
        if tokens l = [] then None else Some (ln, l))
      (split_lines s)
  in
  match lines with
  | [] -> Error "adjacency: empty input (expected an 'lcpadj <n>' header)"
  | (hln, hl) :: rest ->
      let* n =
        match tokens hl with
        | [ "lcpadj"; sn ] -> (
            match int_of_token sn with
            | Ok n when n >= 0 -> Ok n
            | Ok n ->
                err_line ~fmt hln (Printf.sprintf "negative vertex count %d" n)
            | Error e -> err_line ~fmt hln e)
        | _ -> err_line ~fmt hln "expected the header 'lcpadj <n>'"
      in
      let seen_row = Hashtbl.create 16 in
      let rec go edges = function
        | [] -> Ok (Graph.of_edges ~n (List.rev edges))
        | (ln, l) :: rest -> (
            match String.index_opt l ':' with
            | None ->
                err_line ~fmt ln "expected 'u: v1 v2 ...' (missing ':')"
            | Some ci -> (
                let left = String.sub l 0 ci in
                let right =
                  String.sub l (ci + 1) (String.length l - ci - 1)
                in
                match tokens left with
                | [ su ] -> (
                    match int_of_token su with
                    | Error e -> err_line ~fmt ln e
                    | Ok u ->
                        if u < 0 || u >= n then
                          err_line ~fmt ln
                            (Printf.sprintf "vertex %d out of [0,%d)" u n)
                        else if Hashtbl.mem seen_row u then
                          err_line ~fmt ln
                            (Printf.sprintf "duplicate adjacency row for %d" u)
                        else begin
                          Hashtbl.add seen_row u ();
                          let rec nbrs prev acc = function
                            | [] -> Ok (List.rev acc)
                            | t :: ts -> (
                                match int_of_token t with
                                | Error e -> Error e
                                | Ok v ->
                                    if v <= u then
                                      Error
                                        (Printf.sprintf
                                           "neighbor %d of %d is not a \
                                            forward neighbor (need v > u)"
                                           v u)
                                    else if v >= n then
                                      Error
                                        (Printf.sprintf
                                           "vertex %d out of [0,%d)" v n)
                                    else if prev >= v then
                                      Error
                                        (Printf.sprintf
                                           "neighbors of %d must be strictly \
                                            increasing (%d after %d)"
                                           u v prev)
                                    else nbrs v ((u, v) :: acc) ts)
                          in
                          match nbrs u [] (tokens right) with
                          | Error e -> err_line ~fmt ln e
                          | Ok es -> go (List.rev_append es edges) rest
                        end)
                | _ -> err_line ~fmt ln "expected a single vertex before ':'"))
      in
      go [] rest

(* ---------------------------------------------------------------- *)
(* dispatch                                                          *)

let print fmt g =
  match fmt with
  | Dimacs -> print_dimacs g
  | Graph6 -> print_graph6 g
  | Adjacency -> print_adjacency g

let parse fmt s =
  match fmt with
  | Dimacs -> parse_dimacs s
  | Graph6 -> parse_graph6 s
  | Adjacency -> parse_adjacency s

let load_file file =
  match format_of_filename file with
  | Error _ as e -> e
  | Ok fmt -> (
      match
        try
          let ic = open_in_bin file in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> Ok (really_input_string ic (in_channel_length ic)))
        with Sys_error e -> Error e
      with
      | Error e -> Error (Printf.sprintf "%s: %s" file e)
      | Ok contents -> (
          match parse fmt contents with
          | Ok g -> Ok g
          | Error e -> Error (Printf.sprintf "%s: %s" file e)))

let save_file file g =
  match format_of_filename file with
  | Error _ as e -> e
  | Ok fmt ->
      let oc = open_out_bin file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (print fmt g);
          Ok ())

(** Coarse taxonomy over verifier rejection reasons.

    Every verifier in the system rejects with a structured prefix
    ("stack: …", "transport: …", "pointer: …", "fmr: …", …). The
    fault-injection campaign aggregates rejections by the slug this
    module assigns, which turns free-form reasons into a stable matrix
    axis without coupling the campaign to exact message texts. *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* ordered: first match wins *)
let table =
  [
    ("missing-label", [ Lcp_pls.Scheme.missing_label ]);
    ("stack", [ "stack:" ]);
    ("transport", [ "transport:" ]);
    ("membership", [ "E-member"; "P-member"; "B-member"; "T-group"; "group:" ]);
    ("tree-merge", [ "Tree-merge" ]);
    ("bridge-merge", [ "Bridge-merge"; "B-part"; "B-node" ]);
    ("partition", [ "V-part"; "T-part" ]);
    ("root", [ "root" ]);
    ("global-pointer", [ "global" ]);
    ("pointer", [ "pointer"; "stree" ]);
    ("accept-bit", [ "inconsistent accept"; "the prover admits" ]);
    ("singleton", [ "singleton" ]);
    ("fmr", [ "fmr" ]);
    ("universal", [ "universal" ]);
    ("coloring", [ "bipartite" ]);
  ]

let classify reason =
  match
    List.find_opt
      (fun (_, prefixes) -> List.exists (fun p -> has_prefix p reason) prefixes)
      table
  with
  | Some (slug, _) -> slug
  | None -> "other"

let slugs = List.map fst table @ [ "other" ]

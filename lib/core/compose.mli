(** The composition functions f_B and f_P of Prop 6.1, phrased over
    "interfaces" — the identifier-level view of a k-lane graph (lane set
    plus terminals by vertex id). Both the prover and every local verifier
    call exactly this code, so a correct certificate is re-derivable
    bit-for-bit and any deviation is caught by equality.

    All functions raise [Invalid_argument] when a side condition of the
    merge fails (lane overlap, terminal mismatch, slot clashes); the
    verifier converts exceptions into rejection. *)

module Make (A : Lcp_algebra.Algebra_sig.S) : sig
  type iface = {
    lanes : int list;  (** sorted *)
    t_in : (int * int) list;  (** lane ↦ vertex id, sorted by lane *)
    t_out : (int * int) list;
  }

  val iface_of_klane : vid:(int -> int) -> Lcp_lanewidth.Klane.t -> iface
  val iface_of_info : 'a Certificate.info -> iface
  val terminals : iface -> int list

  val forget_all : A.state -> A.state
  val accepts : A.state -> bool

  val v_state : iface -> A.state
  (** A V-node: one lane, t_in = t_out. *)

  val e_state : iface -> real:bool -> A.state
  (** An E-node: one lane, distinct terminals, one edge (applied to the
      algebra only when [real]). *)

  val p_state : iface -> mask:bool list -> A.state
  (** A P-node: terminals in lane order form a path; [mask] gives the
      realness of each consecutive edge (length = lanes − 1). *)

  val bridge :
    A.state * iface -> A.state * iface -> i:int -> j:int -> real:bool ->
    A.state * iface
  (** f_B: disjoint union plus the bridge edge between the two lanes'
      out-terminals. *)

  val parent :
    child:A.state * iface -> parent:A.state * iface -> A.state * iface
  (** f_P: checks [T(child) ⊆ T(parent)] and that each child's in-terminal
      id equals the parent's same-lane out-terminal id, then glues and
      forgets the vertices that stop being terminals. *)

  val memo_table_size : unit -> int
  (** Number of live hash buckets in this instance's composition memo
      table — exposed so the cap-eviction tests can assert the bounded
      live set (see {!Memo.max_entries}). *)

  val intern_table_size : unit -> int
  (** Same for the leaf-state intern table. *)
end

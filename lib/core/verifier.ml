module Scheme = Lcp_pls.Scheme
module Spanning_tree = Lcp_pls.Spanning_tree
open Certificate

exception Reject of string

module Make (A : Lcp_algebra.Algebra_sig.S) = struct
  module C = Compose.Make (A)

  type item = {
    frames : A.state frame list;
    is_real : bool;
  }

  let fail fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt
  let info_equal (a : A.state info) (b : A.state info) =
    a == b
    || a.node_id = b.node_id && a.lanes = b.lanes && a.t_in = b.t_in
       && a.t_out = b.t_out
       && (a.state == b.state || A.equal a.state b.state)

  (* frame equality: T-frames fully; B-frames modulo per-edge fields *)
  let frames_equal f1 f2 =
    f1 == f2
    ||
    match (f1, f2) with
    | ( T_frame { member = m1, k1; merged = g1; is_tree_root = r1;
                  member_real = e1; children = c1 },
        T_frame { member = m2, k2; merged = g2; is_tree_root = r2;
                  member_real = e2; children = c2 } ) ->
        info_equal m1 m2 && k1 = k2 && info_equal g1 g2 && r1 = r2 && e1 = e2
        && List.length c1 = List.length c2
        && List.for_all2
             (fun (i1, a) (i2, b) -> i1 = i2 && info_equal a b)
             c1 c2
    | ( B_frame { bnode = b1; i = i1; j = j1; left = l1, lk1;
                  right = r1, rk1; bridge_real = br1;
                  left_root_member = lm1; right_root_member = rm1; _ },
        B_frame { bnode = b2; i = i2; j = j2; left = l2, lk2;
                  right = r2, rk2; bridge_real = br2;
                  left_root_member = lm2; right_root_member = rm2; _ } ) ->
        info_equal b1 b2 && i1 = i2 && j1 = j2 && info_equal l1 l2 && lk1 = lk2
        && info_equal r1 r2 && rk1 = rk2 && br1 = br2 && lm1 = lm2 && rm1 = rm2
    | _ -> false

  (* ---------------------------------------------------------------- *)
  (* virtual-edge transport (§6.2, certifying the embedding)           *)

  let check_transport ~my_id labels =
    let groups = Hashtbl.create 8 in
    List.iter
      (fun (l : A.state label) ->
        List.iter
          (fun r ->
            let key = (r.vu, r.vv) in
            Hashtbl.replace groups key
              (r :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
          l.transported)
      labels;
    let virtual_items = ref [] in
    Hashtbl.iter
      (fun (vu, vv) records ->
        if vu = vv then fail "transport: degenerate virtual edge %d-%d" vu vv;
        (match records with
        | r0 :: rest ->
            List.iter
              (fun r ->
                if not (r.vframes == r0.vframes || r.vframes = r0.vframes) then fail
                  "transport: inconsistent payload for %d-%d" vu vv)
              rest
        | [] -> ());
        if my_id = vu || my_id = vv then begin
          match records with
          | [ r ] ->
              if not ((r.rank_fwd = 1 && vu = my_id)
                || (r.rank_bwd = 1 && vv = my_id)) then fail
                "transport: endpoint %d has wrong rank for %d-%d" my_id vu vv;
              virtual_items :=
                { frames = r.vframes; is_real = false } :: !virtual_items
          | rs ->
              fail "transport: endpoint %d sees %d records for %d-%d" my_id
                (List.length rs) vu vv
        end
        else begin
          match records with
          | [ r1; r2 ] ->
              if not (r1.rank_fwd + r1.rank_bwd = r2.rank_fwd + r2.rank_bwd) then fail
                "transport: rank sums differ for %d-%d" vu vv;
              if not (abs (r1.rank_fwd - r2.rank_fwd) = 1) then fail
                "transport: ranks not consecutive for %d-%d" vu vv;
              if not (r1.rank_fwd >= 1 && r2.rank_fwd >= 1 && r1.rank_bwd >= 1
               && r2.rank_bwd >= 1) then fail
                "transport: non-positive rank for %d-%d" vu vv
          | rs ->
              fail "transport: interior vertex sees %d records for %d-%d"
                (List.length rs) vu vv
        end)
      groups;
    !virtual_items

  (* ---------------------------------------------------------------- *)
  (* stack shape: alternating T/B frames, bounded depth, bounded lanes *)

  let check_stack ~max_lanes (it : item) =
    let frames = it.frames in
    if frames = [] then fail "stack: edge with empty frame stack";
    if not (List.length frames <= 2 * max_lanes) then fail
      "stack: deeper than 2k (Obs 5.5 violated)";
    let check_info (info : A.state info) =
      if info.lanes = [] then fail "stack: empty lane set";
      List.iter
        (fun l ->
          if not (l >= 0 && l < max_lanes) then fail "stack: lane %d out of range" l)
        info.lanes
    in
    let rec walk frames =
      match frames with
      | [] -> fail "stack: dangling branch"
      | T_frame { member = minfo, mkind; merged; _ } :: rest -> (
          check_info minfo;
          check_info merged;
          match mkind with
          | KE | KP ->
              if rest <> [] then fail "stack: frames below a leaf member"
          | KB -> (
              match rest with
              | B_frame { bnode; _ } :: _ ->
                  if not (bnode.node_id = minfo.node_id && info_equal bnode minfo) then fail
                    "stack: B-frame does not match its member";
                  walk rest
              | _ -> fail "stack: B member without B-frame")
          | KV | KT -> fail "stack: tree member of kind V or T")
      | B_frame { bnode; left = _, lkind; right = _, rkind; position; _ }
        :: rest -> (
          check_info bnode;
          if not (lkind = KV || lkind = KT) then fail
            "stack: B-node left part of invalid kind";
          if not (rkind = KV || rkind = KT) then fail
            "stack: B-node right part of invalid kind";
          match position with
          | `Bridge -> if rest <> [] then fail "stack: frames below a bridge edge"
          | `Left ->
              if lkind <> KT then fail "stack: edge inside a V-node part";
              (match rest with
              | T_frame _ :: _ -> walk rest
              | _ -> fail "stack: B side without inner tree frame")
          | `Right ->
              if rkind <> KT then fail "stack: edge inside a V-node part";
              (match rest with
              | T_frame _ :: _ -> walk rest
              | _ -> fail "stack: B side without inner tree frame"))
    in
    (* first frame must be a T-frame: the whole certificate is a T-node *)
    (match frames with
    | T_frame _ :: _ -> ()
    | _ -> fail "stack: top frame is not a T-frame");
    walk frames

  (* ---------------------------------------------------------------- *)
  (* grouping frames by hierarchy node                                 *)

  type t_group = {
    tg_level : int;
    tg_frame : A.state frame; (* representative T_frame *)
    mutable tg_items : item list; (* items whose stack carries it *)
  }

  type b_group = {
    bg_level : int;
    bg_frame : A.state frame;
    mutable bg_items : (item * [ `Bridge | `Left | `Right ]
                        * Spanning_tree.label option
                        * Spanning_tree.label option) list;
  }

  let collect_groups items =
    let tgroups : (int, t_group) Hashtbl.t = Hashtbl.create 16 in
    let bgroups : (int, b_group) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun it ->
        List.iteri
          (fun level frame ->
            match frame with
            | T_frame { member = minfo, _; _ } -> (
                match Hashtbl.find_opt tgroups minfo.node_id with
                | None ->
                    Hashtbl.replace tgroups minfo.node_id
                      { tg_level = level; tg_frame = frame; tg_items = [ it ] }
                | Some g ->
                    if g.tg_level <> level then fail
                      "group: node %d appears at two levels" minfo.node_id;
                    if not (frames_equal g.tg_frame frame) then fail
                      "group: inconsistent T-frames for node %d" minfo.node_id;
                    g.tg_items <- it :: g.tg_items)
            | B_frame { bnode; position; left_ptr; right_ptr; _ } -> (
                match Hashtbl.find_opt bgroups bnode.node_id with
                | None ->
                    Hashtbl.replace bgroups bnode.node_id
                      {
                        bg_level = level;
                        bg_frame = frame;
                        bg_items = [ (it, position, left_ptr, right_ptr) ];
                      }
                | Some g ->
                    if g.bg_level <> level then fail
                      "group: node %d appears at two levels" bnode.node_id;
                    if not (frames_equal g.bg_frame frame) then fail
                      "group: inconsistent B-frames for node %d" bnode.node_id;
                    g.bg_items <-
                      (it, position, left_ptr, right_ptr) :: g.bg_items))
          it.frames)
      items;
    (tgroups, bgroups)

  (* ---------------------------------------------------------------- *)

  let multiset_eq a b = List.sort compare a = List.sort compare b

  let check_t_group ~my_id ~accept_claim tgroups (g : t_group) =
    match g.tg_frame with
    | B_frame _ -> assert false
    | T_frame { member = minfo, mkind; merged; is_tree_root; member_real;
                children } ->
        let iface = C.iface_of_info minfo in
        (* member-kind specific checks *)
        (match mkind with
        | KE ->
            if List.length member_real <> 1 then fail "E-member: bad realness mask";
            let real = List.hd member_real in
            let st =
              try C.e_state iface ~real
              with Invalid_argument m -> fail "E-member: %s" m
            in
            if not (A.equal st minfo.state) then fail "E-member: wrong class";
            let a = snd (List.hd iface.C.t_in)
            and b = snd (List.hd iface.C.t_out) in
            if not (my_id = a || my_id = b) then fail
              "E-member: I carry an edge of an E-node I am not in";
            (match g.tg_items with
            | [ it ] ->
                if it.is_real <> real then fail "E-member: realness mismatch"
            | items ->
                fail "E-member: %d incident edges of a single-edge node"
                  (List.length items))
        | KP ->
            let st =
              try C.p_state iface ~mask:member_real
              with Invalid_argument m -> fail "P-member: %s" m
            in
            if not (A.equal st minfo.state) then fail "P-member: wrong class";
            let path = List.map snd iface.C.t_in in
            let len = List.length path in
            let pos =
              match
                List.find_index (fun v -> v = my_id)
                  path
              with
              | Some p -> p
              | None -> fail "P-member: I carry an edge of a path I am not on"
            in
            let expected_flags =
              (if pos > 0 then [ List.nth member_real (pos - 1) ] else [])
              @
              if pos < len - 1 then [ List.nth member_real pos ] else []
            in
            if not (multiset_eq expected_flags
                 (List.map (fun it -> it.is_real) g.tg_items)) then fail
              "P-member: incident edges do not match the path"
        | KB ->
            if member_real <> [] then fail "B-member: unexpected realness mask"
            (* class and topology checked by the B-group *)
        | KV | KT -> fail "T-group: member of invalid kind");
        (* merged class = f_P fold of member and children *)
        let merged_state, merged_iface =
          try
            List.fold_left
              (fun (sp, fp) ((_, cinfo) : int * A.state info) ->
                C.parent
                  ~child:(cinfo.state, C.iface_of_info cinfo)
                  ~parent:(sp, fp))
              (minfo.state, iface) children
          with Invalid_argument m -> fail "Tree-merge: %s" m
        in
        if not (A.equal merged_state merged.state) then fail
          "Tree-merge: claimed class differs from f_P of the parts";
        if merged_iface <> C.iface_of_info merged then fail
          "Tree-merge: claimed terminals differ from the merge of the parts";
        (* junction: children claiming me as in-terminal must be visible *)
        List.iter
          (fun ((rid, cinfo) : int * A.state info) ->
            if List.exists (fun (_, v) -> v = my_id) cinfo.t_in then begin
              match Hashtbl.find_opt tgroups rid with
              | None ->
                  fail
                    "Tree-merge: a child attaching at me (node %d) is invisible"
                    rid
              | Some cg -> (
                  match cg.tg_frame with
                  | T_frame { merged = cmerged; is_tree_root = croot; _ } ->
                      if not (not croot) then fail
                        "Tree-merge: child root member claims to be tree root";
                      if cg.tg_level <> g.tg_level then fail
                        "Tree-merge: child member at wrong level";
                      if not (info_equal cmerged cinfo) then fail
                        "Tree-merge: child merged info mismatch"
                  | B_frame _ -> assert false)
            end)
          children;
        (* the root of the outermost tree carries the global class *)
        if is_tree_root && g.tg_level = 0 then begin
          let ok = try C.accepts merged.state with Invalid_argument m -> fail "root: %s" m in
          if ok <> accept_claim then fail
            "root: accept bit does not match the root class";
          if not (ok) then fail "root: the property does not hold"
        end

  let check_b_group ~my_id tgroups (g : b_group) =
    match g.bg_frame with
    | T_frame _ -> assert false
    | B_frame { bnode; i; j; left = linfo, lkind; right = rinfo, rkind;
                bridge_real; left_root_member; right_root_member; _ } ->
        let lif = C.iface_of_info linfo and rif = C.iface_of_info rinfo in
        (* recompute f_B *)
        let st, iface =
          try C.bridge (linfo.state, lif) (rinfo.state, rif) ~i ~j
                ~real:bridge_real
          with Invalid_argument m -> fail "Bridge-merge: %s" m
        in
        if not (A.equal st bnode.state) then fail
          "Bridge-merge: claimed class differs from f_B of the parts";
        if iface <> C.iface_of_info bnode then fail
          "Bridge-merge: claimed terminals differ from the merge";
        (* V-node parts: class recomputation + pointer certification *)
        let check_side side_info side_kind root_member get_ptr =
          match side_kind with
          | KV -> begin
              let vif = C.iface_of_info side_info in
              let st =
                try C.v_state vif
                with Invalid_argument m -> fail "V-part: %s" m
              in
              if not (A.equal st side_info.state) then fail "V-part: wrong class";
              let target = snd (List.hd side_info.t_in) in
              let ptrs =
                List.map
                  (fun entry ->
                    match get_ptr entry with
                    | Some p -> p
                    | None -> fail "V-part: missing pointer sub-label")
                  g.bg_items
              in
              let view =
                {
                  Scheme.ev_id = my_id;
                  ev_degree = List.length ptrs;
                  ev_labels = ptrs;
                }
              in
              match Spanning_tree.verify ~target view with
              | Ok () -> ()
              | Error m -> fail "V-part: %s" m
            end
          | KT ->
              if root_member = None then fail
                "T-part: missing root member reference"
          | _ -> fail "B-node part of invalid kind"
        in
        check_side linfo lkind left_root_member (fun (_, _, lp, _) -> lp);
        check_side rinfo rkind right_root_member (fun (_, _, _, rp) -> rp);
        (* bridge edge endpoints *)
        let a =
          match List.assoc_opt i linfo.t_out with
          | Some v -> v
          | None -> fail "Bridge-merge: lane %d missing in left part" i
        in
        let b =
          match List.assoc_opt j rinfo.t_out with
          | Some v -> v
          | None -> fail "Bridge-merge: lane %d missing in right part" j
        in
        let bridge_items =
          List.filter (fun (_, p, _, _) -> p = `Bridge) g.bg_items
        in
        if my_id = a || my_id = b then begin
          match bridge_items with
          | [ (it, _, _, _) ] ->
              if it.is_real <> bridge_real then fail
                "Bridge-merge: bridge realness mismatch"
          | items ->
              fail "Bridge-merge: endpoint sees %d bridge edges"
                (List.length items)
        end
        else
          if bridge_items <> [] then fail
            "Bridge-merge: non-endpoint carries the bridge edge";
        (* side items link into the inner trees *)
        let check_side_items position side_info root_member =
          List.iter
            (fun (it, p, _, _) ->
              if p = position then begin
                (* locate the frame right below this B-frame in the stack *)
                let rec below = function
                  | B_frame { bnode = b'; _ } :: rest
                    when b'.node_id = bnode.node_id ->
                      rest
                  | _ :: rest -> below rest
                  | [] -> []
                in
                match below it.frames with
                | T_frame { member; merged; is_tree_root; _ } :: _ ->
                    if is_tree_root then begin
                      if not (Some (fst member).node_id = root_member) then fail
                        "B-part: inner tree root member mismatch";
                      if not (info_equal merged side_info) then fail
                        "B-part: inner tree class differs from the part info"
                    end
                    else
                      (* the declared root member cannot hide its
                         tree-rootness: a cleared bit would disable the
                         two checks above *)
                      if not (Some (fst member).node_id <> root_member) then fail
                        "B-part: root member does not claim tree-rootness"
                | _ -> fail "B-part: side edge without inner frame"
              end)
            g.bg_items
        in
        check_side_items `Left linfo left_root_member;
        check_side_items `Right rinfo right_root_member;
        (* tie to the enclosing tree: the root member of a side tree must
           be visible at the in-terminals *)
        ignore tgroups

  (* ---------------------------------------------------------------- *)

  let verify ~max_lanes (view : A.state label Scheme.edge_view) =
    try
      let my_id = view.Scheme.ev_id in
      match view.Scheme.ev_labels with
      | [] ->
          (* the whole (connected) network is this single vertex *)
          let st = A.introduce A.empty my_id in
          if C.accepts st then Ok ()
          else Error "singleton: the property does not hold"
      | labels ->
          (* consistent accept bit, required true *)
          let accept_claim = (List.hd labels).accept_state in
          List.iter
            (fun (l : A.state label) ->
              if l.accept_state <> accept_claim then fail
                "inconsistent accept bits")
            labels;
          if not (accept_claim) then fail "the prover admits the property fails";
          (* global pointer *)
          (match
             Spanning_tree.verify
               {
                 Scheme.ev_id = my_id;
                 ev_degree = view.Scheme.ev_degree;
                 ev_labels = List.map (fun l -> l.global_ptr) labels;
               }
           with
          | Ok () -> ()
          | Error m -> fail "global %s" m);
          (* virtual-edge transport *)
          let virtual_items = check_transport ~my_id labels in
          let items =
            List.map (fun (l : A.state label) ->
                { frames = l.frames; is_real = true })
              labels
            @ virtual_items
          in
          List.iter (check_stack ~max_lanes) items;
          let tgroups, bgroups = collect_groups items in
          (* the pointer's target must be a root-member vertex: if it is
             me, I must carry a root-member edge *)
          let ptr_target = (List.hd labels).global_ptr.Spanning_tree.target in
          if ptr_target = my_id then begin
            let has_root =
              Hashtbl.fold
                (fun _ g acc ->
                  acc
                  ||
                  match g.tg_frame with
                  | T_frame { is_tree_root; _ } ->
                      is_tree_root && g.tg_level = 0
                  | B_frame _ -> false)
                tgroups false
            in
            if not (has_root) then fail "pointer target is not in the root member"
          end;
          Hashtbl.iter
            (fun _ g -> check_t_group ~my_id ~accept_claim tgroups g)
            tgroups;
          Hashtbl.iter (fun _ g -> check_b_group ~my_id tgroups g) bgroups;
          Ok ()
    with Reject reason -> Error reason
end

(** Incremental re-certification of edge deltas (the dynamic-graph
    workload): transplant the interval representation across an edit,
    re-run the prover with warm composition memo, and report exactly
    which labels changed together with the localized verification set.

    The dirty-window invariant: every changed label is incident to the
    window-overlap closure of the delta, and [p_verify] covers every
    vertex whose local view (id, degree, incident labels) differs from
    the previously certified state — so verifying only [p_verify]
    against a fully-verified baseline decides the whole labeling. The
    service layer checks this differentially against full recompute. *)

module Graph = Lcp_graph.Graph
module Representation = Lcp_interval.Representation

type delta = { add : Graph.edge list; del : Graph.edge list }

val empty_delta : delta

val delta_size : delta -> int

val is_empty : delta -> bool

val print_delta : delta -> string
(** ["add=0-1,2-3 del=4-5"]; either part is omitted when empty, the
    empty delta prints as [""]. Inverse of [parse_delta]. *)

val parse_delta : string -> (delta, string) result
(** Total parser of the textual form (the daemon's edit frames).
    Accepts only [add=]/[del=] keys with comma-separated [U-V] pairs;
    vertex-range and self-loop checks happen in [normalize], which
    needs the graph. *)

val normalize : Graph.t -> delta -> (delta, string) result
(** Canonicalize against the current graph: orient and deduplicate,
    reject self-loops / out-of-range vertices / edges named in both
    parts, drop no-op adds (edge present) and dels (edge absent).
    Idempotent. *)

val apply : Graph.t -> delta -> Graph.t
(** Apply a normalized delta — removals, then additions. On the empty
    delta this is the identity (physically: [add_edges]/[remove_edge]
    share the unchanged graph). *)

val transplant :
  Representation.t -> Graph.t -> (Representation.t, string) result
(** Reuse a representation's intervals on the edited graph. Removals
    always succeed; an added edge is covered iff its endpoints'
    intervals intersect. Success preserves the width (hence the
    verifier's lane bound) and the whole hierarchy skeleton; [Error]
    means the edit escapes the old windows and the caller must rebuild
    from a fresh representation. *)

val dirty_marks : Representation.t -> delta -> bool array
(** The window-overlap closure of the delta's endpoints under the
    given (already transplanted) representation: [marks.(v)] iff [v]'s
    interval intersects an endpoint's interval. *)

val dirty_count : Representation.t -> delta -> int

module Make (A : Lcp_algebra.Algebra_sig.S) : sig
  module P : module type of Prover.Make (A)

  type labeling = P.labeling

  type patch = {
    p_labels : labeling;
    p_holds : bool;
    p_changed : int;
    p_reused : int;
    p_verify : int list;
    p_dirty_windows : int;
  }

  val patch_labels :
    ?strategy:Prover.strategy ->
    rep:Representation.t ->
    prev:labeling option ->
    delta:delta ->
    Lcp_pls.Config.t ->
    (patch, string) result
  (** Recompute labels for [cfg] (the edited graph, under [rep]) and
      splice against [prev]: [p_reused] labels are structurally
      identical to the previous certified labeling, [p_changed] are
      refreshed, and [p_verify] is the dirty-plus-boundary set to
      re-verify locally. With [prev = None] everything is new and
      [p_verify] is all vertices. [Error] mirrors [Prover.prepare]
      (empty or disconnected graph). Keeping one functor instance per
      session keeps the composition memo warm across edits — that is
      where the locality pays. *)
end

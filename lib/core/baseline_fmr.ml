module Graph = Lcp_graph.Graph
module Representation = Lcp_interval.Representation
module Interval = Lcp_interval.Interval
module Config = Lcp_pls.Config
module Scheme = Lcp_pls.Scheme
module Bitenc = Lcp_util.Bitenc

exception Reject of string

module Make (A : Lcp_algebra.Algebra_sig.S) = struct
  type segment = {
    lo : int;
    hi : int;
    boundary : int list;
    state : A.state;
  }

  type level = {
    seg : segment;
    left : segment option;
    right : segment option;
  }

  type leaf_data = {
    bag : int list;
    bag_edges : (int * int) list;
  }

  type label = {
    interval : int * int;
    pos : int;
    levels : level list;
    leaf : leaf_data;
    accepted : bool;
  }

  let fail fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt

  (* lazy on the happy path: the message is only rendered when the check
     fails, so accepting runs never pay the Printf allocation *)
  let require cond fmt =
    if cond then Printf.ikfprintf (fun () -> ()) () fmt
    else Printf.ksprintf (fun s -> raise (Reject s)) fmt

  let forget_to st keep =
    List.fold_left
      (fun st s -> if List.mem s keep then st else A.forget st s)
      st (A.slots st)

  (* compose two adjacent segments: identify the shared boundary vertices
     (present in both states under the same id slots), keep the claimed
     result boundary. Deterministic, used verbatim by the verifier. *)
  let compose (l : segment) (r : segment) ~boundary =
    let shared = List.filter (fun x -> List.mem x r.boundary) l.boundary in
    let rstate, temps =
      List.fold_left
        (fun (st, acc) x ->
          let tmp = -(x + 1) in
          (A.rename st ~old_slot:x ~new_slot:tmp, (x, tmp) :: acc))
        (r.state, []) shared
    in
    let st = A.union l.state rstate in
    let st =
      List.fold_left
        (fun st (x, tmp) -> A.identify st ~keep:x ~drop:tmp)
        st temps
    in
    { lo = l.lo; hi = r.hi; boundary; state = forget_to st boundary }

  (* ---------------------------------------------------------------- *)

  let prove ~rep cfg =
    let g = Config.graph cfg in
    let n = Graph.n g in
    let vid v = Config.id cfg v in
    (* positions: vertices sorted by left endpoint (ties by index) *)
    let order = Array.init n (fun v -> v) in
    Array.sort
      (fun a b ->
        compare
          (Interval.l (Representation.interval rep a), a)
          (Interval.l (Representation.interval rep b), b))
      order;
    let pos = Array.make n 0 in
    Array.iteri (fun p v -> pos.(v) <- p) order;
    (* position-space intervals: l' = pos, r' = last position whose point
       is within the original right endpoint *)
    let lo' = Array.make n 0 and hi' = Array.make n 0 in
    Array.iteri
      (fun p v ->
        lo'.(v) <- p;
        let r = Interval.r (Representation.interval rep v) in
        let q = ref p in
        while
          !q + 1 < n
          && Interval.l (Representation.interval rep order.(!q + 1)) <= r
        do
          incr q
        done;
        hi'.(v) <- !q)
      order;
    let bag p =
      List.filter
        (fun v -> lo'.(v) <= p && p <= hi'.(v))
        (List.init n (fun v -> v))
    in
    let crossing p q =
      (* vertices active at both positions p and q (out of range: none) *)
      if p < 0 || q >= n then []
      else
        List.filter (fun v -> lo'.(v) <= p && q <= hi'.(v))
          (List.init n (fun v -> v))
    in
    let boundary_of lo hi =
      List.sort_uniq compare
        (List.map vid (crossing (lo - 1) lo) @ List.map vid (crossing hi (hi + 1)))
    in
    (* edges assigned to the first bag containing both endpoints *)
    let assigned = Array.make n [] in
    Graph.iter_edges
      (fun (u, v) ->
        let p = max lo'.(u) lo'.(v) in
        assigned.(p) <- (u, v) :: assigned.(p))
      g;
    (* build the balanced tree; record per-position root-to-leaf paths *)
    let paths = Array.make n [] in
    let rec build lo hi =
      if lo = hi then begin
        let members = bag lo in
        let st =
          List.fold_left (fun st v -> A.introduce st (vid v)) A.empty members
        in
        let st =
          List.fold_left
            (fun st (u, v) -> A.add_edge st (vid u) (vid v))
            st assigned.(lo)
        in
        let seg =
          { lo; hi; boundary = boundary_of lo hi; state = forget_to st (boundary_of lo hi) }
        in
        paths.(lo) <- [ { seg; left = None; right = None } ];
        seg
      end
      else begin
        let mid = (lo + hi) / 2 in
        let lseg = build lo mid and rseg = build (mid + 1) hi in
        let seg = compose lseg rseg ~boundary:(boundary_of lo hi) in
        let lev = { seg; left = Some lseg; right = Some rseg } in
        for p = lo to hi do
          paths.(p) <- lev :: paths.(p)
        done;
        seg
      end
    in
    let root = build 0 (n - 1) in
    let accepted = A.accepts (forget_to root.state []) in
    let labels =
      Array.init n (fun v ->
          let p = pos.(v) in
          {
            interval = (lo'.(v), hi'.(v));
            pos = p;
            levels = paths.(p);
            leaf =
              {
                bag = List.map vid (bag p);
                bag_edges =
                  List.map
                    (fun (a, b) ->
                      let x = vid a and y = vid b in
                      if x < y then (x, y) else (y, x))
                    assigned.(p);
              };
            accepted;
          })
    in
    (labels, accepted)

  (* ---------------------------------------------------------------- *)

  let verify ~k (view : label Scheme.vertex_view) =
    try
      let me = view.Scheme.vv_label in
      let my_id = view.Scheme.vv_id in
      let l, r = me.interval in
      require (l = me.pos && l <= r) "fmr: malformed interval";
      require me.accepted "fmr: the prover admits the property fails";
      (* neighbors: intersecting intervals, distinct positions, agreement *)
      List.iter
        (fun ((nid, nl) : int * label) ->
          let nlo, nhi = nl.interval in
          require (nlo <= r && l <= nhi) "fmr: neighbor %d interval disjoint" nid;
          require (nl.pos <> me.pos) "fmr: duplicate position";
          require (nl.accepted = me.accepted) "fmr: accept bit disagreement")
        view.Scheme.vv_neighbors;
      (* bag width *)
      require
        (List.length me.leaf.bag <= k + 1)
        "fmr: bag larger than the width bound";
      require (List.mem my_id me.leaf.bag) "fmr: I am not in my own bag";
      (* neighbors active at my position must be in my bag *)
      List.iter
        (fun (nid, (nl : label)) ->
          let nlo, nhi = nl.interval in
          if nlo <= me.pos && me.pos <= nhi then
            require (List.mem nid me.leaf.bag)
              "fmr: active neighbor %d missing from my bag" nid)
        view.Scheme.vv_neighbors;
      (* my incident edges assigned to my bag appear in its edge list, and
         every listed edge naming me is one of my real edges *)
      let canon a b = if a < b then (a, b) else (b, a) in
      let my_assigned =
        List.filter_map
          (fun (nid, (nl : label)) ->
            if max me.pos nl.pos = me.pos then Some (canon my_id nid) else None)
          view.Scheme.vv_neighbors
      in
      List.iter
        (fun e ->
          require (List.mem e me.leaf.bag_edges)
            "fmr: my assigned edge missing from the bag edge list")
        my_assigned;
      List.iter
        (fun (a, b) ->
          if a = my_id || b = my_id then
            require (List.mem (a, b) my_assigned)
              "fmr: bag edge list names a non-edge at me")
        me.leaf.bag_edges;
      (* the level path: nesting, recomposition, leaf consistency *)
      let rec walk levels =
        match levels with
        | [] -> fail "fmr: empty level path"
        | [ leaf_level ] ->
            require
              (leaf_level.seg.lo = me.pos && leaf_level.seg.hi = me.pos)
              "fmr: leaf segment is not my position";
            require
              (leaf_level.left = None && leaf_level.right = None)
              "fmr: leaf with children"
        | lev :: (next :: _ as rest) -> (
            require (lev.seg.lo <= me.pos && me.pos <= lev.seg.hi)
              "fmr: segment does not contain my position";
            match (lev.left, lev.right) with
            | Some ls, Some rs ->
                require (ls.lo = lev.seg.lo && rs.hi = lev.seg.hi
                         && ls.hi + 1 = rs.lo)
                  "fmr: children do not tile the segment";
                let recomposed =
                  try compose ls rs ~boundary:lev.seg.boundary
                  with Invalid_argument m -> fail "fmr: compose: %s" m
                in
                require
                  (A.equal recomposed.state lev.seg.state)
                  "fmr: segment class differs from the composition";
                let child = if me.pos <= ls.hi then ls else rs in
                require
                  (next.seg.lo = child.lo && next.seg.hi = child.hi
                  && next.seg.boundary = child.boundary
                  && A.equal next.seg.state child.state)
                  "fmr: next level does not match the child record";
                walk rest
            | _ -> fail "fmr: internal segment missing children")
      in
      walk me.levels;
      (* root checks *)
      (match me.levels with
      | root :: _ ->
          require (root.seg.lo = 0) "fmr: root does not start at 0";
          require (root.seg.hi >= me.pos) "fmr: root too small";
          let ok =
            try A.accepts (forget_to root.seg.state [])
            with Invalid_argument m -> fail "fmr: root: %s" m
          in
          require (ok = me.accepted) "fmr: root class does not accept"
      | [] -> fail "fmr: no root level");
      (* cross-check records with neighbors: same segment bounds must mean
         the same record *)
      let my_segments =
        List.concat_map
          (fun lev ->
            (lev.seg :: Option.to_list lev.left) @ Option.to_list lev.right)
          me.levels
      in
      let seg_eq (a : segment) (b : segment) =
        a.boundary = b.boundary && A.equal a.state b.state
      in
      List.iter
        (fun ((_, nl) : int * label) ->
          List.iter
            (fun lev ->
              List.iter
                (fun (ns : segment) ->
                  List.iter
                    (fun (ms : segment) ->
                      if ms.lo = ns.lo && ms.hi = ns.hi then
                        require (seg_eq ms ns)
                          "fmr: neighbor disagrees on segment %d..%d" ms.lo
                          ms.hi)
                    my_segments)
                ((lev.seg :: Option.to_list lev.left)
                @ Option.to_list lev.right))
            nl.levels)
        view.Scheme.vv_neighbors;
      Ok ()
    with Reject m -> Error m

  (* ---------------------------------------------------------------- *)

  let encode_segment w (s : segment) =
    Bitenc.varint w s.lo;
    Bitenc.varint w s.hi;
    Bitenc.varint w (List.length s.boundary);
    List.iter (fun x -> Bitenc.varint w x) s.boundary;
    A.encode w s.state

  let encode w (lab : label) =
    Bitenc.varint w (fst lab.interval);
    Bitenc.varint w (snd lab.interval);
    Bitenc.varint w lab.pos;
    Bitenc.bit w lab.accepted;
    Bitenc.varint w (List.length lab.levels);
    List.iter
      (fun lev ->
        encode_segment w lev.seg;
        let opt = function
          | None -> Bitenc.bit w false
          | Some s ->
              Bitenc.bit w true;
              encode_segment w s
        in
        opt lev.left;
        opt lev.right)
      lab.levels;
    Bitenc.varint w (List.length lab.leaf.bag);
    List.iter (fun x -> Bitenc.varint w x) lab.leaf.bag;
    Bitenc.varint w (List.length lab.leaf.bag_edges);
    List.iter
      (fun (a, b) ->
        Bitenc.varint w a;
        Bitenc.varint w b)
      lab.leaf.bag_edges

  let scheme ?rep ~k () =
    let prove_opt cfg =
      let g = Config.graph cfg in
      if Graph.n g = 0 || not (Lcp_graph.Traversal.is_connected g) then None
      else begin
        let rep =
          match Option.bind rep (fun f -> f cfg) with
          | Some r -> r
          | None -> Lcp_interval.Pathwidth.exact_interval_representation g
        in
        let labels, accepted = prove ~rep cfg in
        if accepted then Some labels else None
      end
    in
    {
      Scheme.vs_name = Printf.sprintf "fmr_baseline(%s, pw<=%d)" A.name k;
      vs_prove = prove_opt;
      vs_verify = verify ~k;
      vs_encode = encode;
    }
end

(* Global switches and counters for the composition memo tables living
   inside each [Compose.Make] instance (one instance per algebra per
   job). The tables themselves are per-instance — states of different
   algebras must never share a table — but the counters aggregate
   globally so the service layer can report one hit/miss line per run. *)

let enabled = ref true

(* per-instance table size cap; a full table is dropped wholesale
   (Hashtbl.reset), bounding memory without an LRU's bookkeeping *)
let max_entries = 1 lsl 16

let hits = ref 0
let misses = ref 0
let intern_hits = ref 0
let intern_misses = ref 0

(* a state whose [pack] raised: the memo fell back to an uncached
   compute. Packs are total, so a nonzero count means an algebra broke
   its contract — surfaced in --server-stats rather than silently
   disabling memoization. *)
let key_fallbacks = ref 0

let counters () =
  [
    ("memo_hit", !hits);
    ("memo_miss", !misses);
    ("intern_hit", !intern_hits);
    ("intern_miss", !intern_misses);
    ("memo_key_fallback", !key_fallbacks);
  ]

let reset_counters () =
  hits := 0;
  misses := 0;
  intern_hits := 0;
  intern_misses := 0;
  key_fallbacks := 0

(** Switches and counters for composition memoization (see {!Compose}).

    Soundness does not depend on [enabled]: memo keys are the packed
    flat images of the exact inputs ([Algebra_sig.S.pack]), compared
    word for word on bucket collision, so a hit returns a value the
    algebra treats identically to what recomputation would produce, and
    encoded certificates are byte-identical with the memo on or off
    (the @graphcore and @packed suites assert this across every
    registered property). *)

val enabled : bool ref
(** Toggle memoization globally (default [true]). Flipping it affects
    [Compose.Make] instances created before or after the flip. *)

val max_entries : int
(** Per-instance table cap; a table at the cap is dropped wholesale. *)

val hits : int ref
val misses : int ref
val intern_hits : int ref
val intern_misses : int ref

val key_fallbacks : int ref
(** Number of memo/intern lookups skipped because a state's [pack]
    raised. Packs are total, so anything nonzero flags a broken algebra
    contract; the count is exported (as [memo_key_fallback]) so it shows
    up in [--server-stats] instead of silently disabling memoization. *)

val counters : unit -> (string * int) list
(** Snapshot as [(name, count)] pairs: [memo_hit], [memo_miss],
    [intern_hit], [intern_miss], [memo_key_fallback]. *)

val reset_counters : unit -> unit

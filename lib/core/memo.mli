(** Switches and counters for composition memoization (see {!Compose}).

    Soundness does not depend on [enabled]: memo keys are
    [Marshal]-serialized inputs, so a hit returns a value structurally
    identical to what recomputation would produce, and encoded
    certificates are byte-identical with the memo on or off (the
    @graphcore suite asserts this across every registered property). *)

val enabled : bool ref
(** Toggle memoization globally (default [true]). Flipping it affects
    [Compose.Make] instances created before or after the flip. *)

val max_entries : int
(** Per-instance table cap; a table at the cap is dropped wholesale. *)

val hits : int ref
val misses : int ref
val intern_hits : int ref
val intern_misses : int ref

val counters : unit -> (string * int) list
(** Snapshot as [(name, count)] pairs: [memo_hit], [memo_miss],
    [intern_hit], [intern_miss]. *)

val reset_counters : unit -> unit

(** Incremental re-certification for dynamic graphs (ROADMAP item 2).

    The lane/window structure of Theorem 1 is local: the partition, the
    completion host, and the hierarchy skeleton are functions of the
    {e interval representation} alone — the concrete edge set enters
    only through realness checks, spanning-tree labels, and embedding
    paths. An edge delta that stays {e inside} the representation
    (removals always do; an addition does iff its endpoints' intervals
    already intersect) therefore leaves the skeleton, the node-id
    assignment, and every composition state outside the dirty windows
    untouched. Re-running the prover over the transplanted
    representation recomputes exactly the same values for clean
    subtrees — which the composition memo ([Compose.Make]) serves as
    hits — and produces labels that are {e structurally identical}
    outside the region the delta actually perturbed.

    The dirty-window invariant this module maintains: after a patch,
    every edge whose label differs from the previous certified labeling
    is incident to the delta's window-overlap closure, and the
    localized verification set (the endpoints of the delta and of every
    changed-label edge, plus their one-hop boundary) covers every
    vertex whose local view changed. A vertex outside that set saw the
    same id, degree, and incident labels it accepted before, so
    skipping it cannot turn a rejection into an accept. The service
    layer re-verifies exactly that set and anchors the whole claim
    differentially against full recomputation (the [@incr] suite). *)

module Graph = Lcp_graph.Graph
module Interval = Lcp_interval.Interval
module Representation = Lcp_interval.Representation
module Config = Lcp_pls.Config
module Scheme = Lcp_pls.Scheme

type delta = { add : Graph.edge list; del : Graph.edge list }

let empty_delta = { add = []; del = [] }

let delta_size d = List.length d.add + List.length d.del

let is_empty d = d.add = [] && d.del = []

(* ---------------------------------------------------------------- *)
(* the textual form: "add=0-1,2-3 del=4-5" (either key optional)     *)

let print_delta d =
  let part key = function
    | [] -> []
    | es ->
        [
          key ^ "="
          ^ String.concat ","
              (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) es);
        ]
  in
  String.concat " " (part "add" d.add @ part "del" d.del)

let parse_delta s =
  let ( let* ) = Result.bind in
  let parse_edge tok =
    match String.index_opt tok '-' with
    | None -> Error (Printf.sprintf "edge %S is not of the form U-V" tok)
    | Some i -> (
        let a = String.sub tok 0 i in
        let b = String.sub tok (i + 1) (String.length tok - i - 1) in
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some u, Some v when u >= 0 && v >= 0 -> Ok (u, v)
        | _ -> Error (Printf.sprintf "edge %S is not of the form U-V" tok))
  in
  let parse_edges v =
    if v = "" then Ok []
    else
      List.fold_left
        (fun acc tok ->
          let* acc = acc in
          let* e = parse_edge tok in
          Ok (e :: acc))
        (Ok [])
        (String.split_on_char ',' v)
      |> Result.map List.rev
  in
  let toks =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "" && t <> "\r")
  in
  let* d =
    List.fold_left
      (fun acc tok ->
        let* d = acc in
        match String.index_opt tok '=' with
        | None ->
            Error (Printf.sprintf "token %S is not add=... or del=..." tok)
        | Some i -> (
            let k = String.sub tok 0 i in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            let* es = parse_edges v in
            match k with
            | "add" -> Ok { d with add = d.add @ es }
            | "del" -> Ok { d with del = d.del @ es }
            | _ -> Error (Printf.sprintf "unknown delta key %S" k)))
      (Ok empty_delta) toks
  in
  Ok d

(* ---------------------------------------------------------------- *)
(* normalization and application                                     *)

(** Canonicalize against the current graph: orient and deduplicate
    edges, reject self-loops, out-of-range vertices, and edges named in
    both parts; drop no-op operations (adding a present edge, removing
    an absent one). The normalized delta applied to [g] is exactly the
    requested edit, and [normalize] is idempotent. *)
let normalize g d =
  let n = Graph.n g in
  let ( let* ) = Result.bind in
  let canon_all part es =
    List.fold_left
      (fun acc (u, v) ->
        let* acc = acc in
        if u < 0 || u >= n || v < 0 || v >= n then
          Error
            (Printf.sprintf "%s %d-%d: vertex out of range (n=%d)" part u v n)
        else if u = v then
          Error (Printf.sprintf "%s %d-%d: self-loops are not edges" part u v)
        else Ok (Graph.canonical_edge u v :: acc))
      (Ok []) es
    |> Result.map (List.sort_uniq compare)
  in
  let* add = canon_all "add" d.add in
  let* del = canon_all "del" d.del in
  match List.find_opt (fun e -> List.mem e del) add with
  | Some (u, v) ->
      Error (Printf.sprintf "edge %d-%d is both added and removed" u v)
  | None ->
      Ok
        {
          add = List.filter (fun (u, v) -> not (Graph.mem_edge g u v)) add;
          del = List.filter (fun (u, v) -> Graph.mem_edge g u v) del;
        }

(** Apply a normalized delta: removals first, then additions. *)
let apply g d =
  let g = List.fold_left (fun g (u, v) -> Graph.remove_edge g u v) g d.del in
  Graph.add_edges g d.add

(* ---------------------------------------------------------------- *)
(* representation transplant                                         *)

(** Reuse the previous interval representation on the edited graph.
    Removals never invalidate a representation; an added edge is
    covered iff its endpoints' intervals intersect. On success the
    width — and with it the lane bound the verifier enforces — is
    unchanged, the hierarchy skeleton is identical, and label reuse is
    maximal. [Error] means the edit left the old windows (the caller
    falls back to a fresh representation and a full rebuild). *)
let transplant rep g' =
  let ivs = Representation.intervals rep in
  if Array.length ivs <> Graph.n g' then
    Error
      (Printf.sprintf "vertex count changed (%d -> %d)" (Array.length ivs)
         (Graph.n g'))
  else
    match Representation.validate g' ivs with
    | Ok () -> Ok (Representation.make g' ivs)
    | Error e -> Error e

(* ---------------------------------------------------------------- *)
(* dirty windows                                                     *)

(** The window-overlap closure of the delta's endpoints: marks every
    vertex whose interval intersects the interval of an endpoint of an
    added or removed edge. This is the region whose lane partitions
    and composition states the edit can perturb — the skeleton outside
    it is a function of unchanged intervals and unchanged realness. *)
let dirty_marks rep d =
  let n = Graph.n (Representation.graph rep) in
  let marks = Array.make n false in
  let touch e =
    let ie = Representation.interval rep e in
    for v = 0 to n - 1 do
      if (not marks.(v)) && Interval.intersects ie (Representation.interval rep v)
      then marks.(v) <- true
    done
  in
  List.iter
    (fun (u, v) ->
      touch u;
      touch v)
    (d.add @ d.del);
  marks

let dirty_count rep d =
  Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 (dirty_marks rep d)

(* ---------------------------------------------------------------- *)
(* the patch step                                                    *)

module Make (A : Lcp_algebra.Algebra_sig.S) = struct
  module P = Prover.Make (A)

  type labeling = P.labeling

  type patch = {
    p_labels : labeling;
    p_holds : bool;
    p_changed : int;  (** edges whose label differs from the previous one *)
    p_reused : int;  (** edges whose label is structurally unchanged *)
    p_verify : int list;
        (** the localized verification set: endpoints of the delta and
            of every changed-label edge, plus their one-hop boundary;
            sorted, duplicate-free *)
    p_dirty_windows : int;
        (** vertices in the window-overlap closure of the delta *)
  }

  (* Labels are pure data (frames, pointer sub-labels, transported
     records, algebra states), so structural equality decides reuse. *)
  let patch_labels ?strategy ~rep ~prev ~(delta : delta) cfg =
    match P.prepare ?strategy ~rep cfg with
    | Error _ as e -> e
    | Ok art ->
        let g = Config.graph cfg in
        let dirty_windows = dirty_count rep delta in
        let patch =
          match prev with
          | None ->
              (* no certified baseline: everything is new, everything
                 gets verified *)
              {
                p_labels = art.P.labels;
                p_holds = art.P.holds;
                p_changed = Graph.m g;
                p_reused = 0;
                p_verify = Graph.fold_vertices (fun v acc -> v :: acc) g [];
                p_dirty_windows = dirty_windows;
              }
          | Some old ->
              let changed = ref [] and reused = ref 0 in
              Graph.iter_edges
                (fun e ->
                  match
                    (Scheme.Edge_map.find art.P.labels e, Scheme.Edge_map.find old e)
                  with
                  | Some l, Some l' when l = l' -> incr reused
                  | _ -> changed := e :: !changed)
                g;
              let core =
                List.concat_map
                  (fun (u, v) -> [ u; v ])
                  (delta.add @ delta.del @ !changed)
              in
              let with_boundary =
                List.concat_map (fun v -> v :: Graph.neighbors g v) core
              in
              {
                p_labels = art.P.labels;
                p_holds = art.P.holds;
                p_changed = List.length !changed;
                p_reused = !reused;
                p_verify = List.sort_uniq compare with_boundary;
                p_dirty_windows = dirty_windows;
              }
        in
        Ok patch
end

module Klane = Lcp_lanewidth.Klane
module Packed = Lcp_util.Packed_state

module Make (A : Lcp_algebra.Algebra_sig.S) = struct
  type iface = {
    lanes : int list;
    t_in : (int * int) list;
    t_out : (int * int) list;
  }

  (* ---- composition memo on packed words ------------------------------
     The prover pushes one frame per edge of every klane and the verifier
     recomputes the same bridge/parent glue for each of those frames, so
     identical (state, state, glue) joins recur many times per run. Keys
     are the packed flat images of the exact inputs ([A.pack] words laid
     down in a reusable arena — no allocation on the lookup path): packs
     are injective up to [A.equal] and up to everything any observer
     ([A.encode] included) distinguishes, so a hit returns a value the
     rest of the pipeline treats identically to recomputation and
     downstream encodes are byte-identical. Buckets are indexed by the
     word-wise FNV-1a hash of the key and disambiguated by comparing the
     words themselves — hash equality alone never certifies a hit.
     Exceptions are never cached: a raising compute stays uncached and
     raises again on recomputation, preserving the verifier's
     Invalid_argument-to-rejection conversion. A raising [pack] (broken
     algebra contract — packs are total) falls back to an uncached
     compute and is counted as [memo_key_fallback]. *)

  let memo_tbl : (int, (int array * A.state) list ref) Hashtbl.t =
    Hashtbl.create 1024

  let intern_tbl : (int, (int array * A.state) list ref) Hashtbl.t =
    Hashtbl.create 256

  let arena_hint =
    let l = A.packed_layout in
    4 + l.Packed.fixed_words + (16 * l.Packed.words_per_slot)

  (* separate arenas so a leaf intern can never clobber an in-flight memo
     key; keys are copied out of the arena only on a miss *)
  let memo_buf = Packed.Buf.create (4 + (2 * arena_hint))
  let intern_buf = Packed.Buf.create arena_hint

  let key_matches (key : int array) (data : int array) len =
    Array.length key = len
    &&
    let rec go i =
      i >= len || (Array.unsafe_get key i = Array.unsafe_get data i && go (i + 1))
    in
    go 0

  let rec find_in_bucket data len = function
    | [] -> None
    | (key, st) :: rest ->
        if key_matches key data len then Some st
        else find_in_bucket data len rest

  (* look the current arena contents up in [tbl]; on a miss, copy the key
     out of the arena, run [compute] (never cached if it raises) and
     remember the result *)
  let lookup tbl buf ~hit ~miss compute =
    let data = Packed.Buf.data buf and len = Packed.Buf.len buf in
    let h = Packed.hash_words data ~len in
    (* cap check before touching a bucket: reset would orphan it *)
    if Hashtbl.length tbl >= Memo.max_entries then Hashtbl.reset tbl;
    match Hashtbl.find_opt tbl h with
    | Some bucket -> (
        match find_in_bucket data len !bucket with
        | Some st ->
            incr hit;
            st
        | None ->
            incr miss;
            let key = Packed.Buf.contents buf in
            let st = compute () in
            bucket := (key, st) :: !bucket;
            st)
    | None ->
        incr miss;
        let key = Packed.Buf.contents buf in
        let st = compute () in
        Hashtbl.add tbl h (ref [ (key, st) ]);
        st

  (* distinct first words keep the three key spaces disjoint even though
     they share one table *)
  let tag_bridge = 1
  let tag_glue = 2
  let tag_forget = 3

  let memoize ~tag fill compute =
    if not !Memo.enabled then compute ()
    else
      match
        Packed.Buf.reset memo_buf;
        Packed.Buf.push memo_buf tag;
        fill memo_buf
      with
      | () -> lookup memo_tbl memo_buf ~hit:Memo.hits ~miss:Memo.misses compute
      | exception _ ->
          incr Memo.key_fallbacks;
          compute ()

  (* hash-cons a freshly built state: states with equal packed images
     collapse to one physical representative, so later memo keys over
     them hit the same buckets and structural comparisons short-circuit *)
  let intern st =
    if not !Memo.enabled then st
    else
      match
        Packed.Buf.reset intern_buf;
        A.pack intern_buf st
      with
      | () ->
          lookup intern_tbl intern_buf ~hit:Memo.intern_hits
            ~miss:Memo.intern_misses
            (fun () -> st)
      | exception _ ->
          incr Memo.key_fallbacks;
          st

  (* table sizes, exposed for the cap-eviction tests *)
  let memo_table_size () = Hashtbl.length memo_tbl
  let intern_table_size () = Hashtbl.length intern_tbl

  let iface_of_klane ~vid (k : Klane.t) =
    {
      lanes = Klane.lanes k;
      t_in = List.map (fun (l, v) -> (l, vid v)) k.Klane.lane_in;
      t_out = List.map (fun (l, v) -> (l, vid v)) k.Klane.lane_out;
    }

  let iface_of_info (i : 'a Certificate.info) =
    {
      lanes = i.Certificate.lanes;
      t_in = i.Certificate.t_in;
      t_out = i.Certificate.t_out;
    }

  let terminals f =
    List.sort_uniq compare (List.map snd f.t_in @ List.map snd f.t_out)

  let forget_to st keep =
    List.fold_left
      (fun st s -> if List.mem s keep then st else A.forget st s)
      st (A.slots st)

  let forget_all st = forget_to st []
  let accepts st = A.accepts (forget_all st)

  let check cond msg = if not cond then invalid_arg ("Compose: " ^ msg)

  let assoc_lane name m l =
    match List.assoc_opt l m with
    | Some v -> v
    | None -> invalid_arg ("Compose: missing lane in " ^ name)

  (* allocation-free forms of the well-formedness predicates (this runs
     for every frame of every edge, so the old sort_uniq/map chains were
     a measurable slice of the verify allocation tax) *)
  let rec strictly_sorted = function
    | a :: (b :: _ as rest) -> a < b && strictly_sorted rest
    | _ -> true

  let rec lanes_match lanes pairs =
    match (lanes, pairs) with
    | [], [] -> true
    | l :: ls, (l', _) :: ps -> l = l' && lanes_match ls ps
    | _ -> false

  (* two-argument helper instead of List.exists so no closure is
     allocated per element *)
  let rec snd_mem v = function
    | [] -> false
    | (_, v') :: rest -> v' = v || snd_mem v rest

  let rec distinct_snd = function
    | [] -> true
    | (_, v) :: rest -> (not (snd_mem v rest)) && distinct_snd rest

  let well_formed f =
    check (f.lanes <> []) "empty lane set";
    check (strictly_sorted f.lanes) "lanes not sorted-unique";
    check (lanes_match f.lanes f.t_in) "t_in lanes mismatch";
    check (lanes_match f.lanes f.t_out) "t_out lanes mismatch";
    check (distinct_snd f.t_in) "t_in not injective";
    check (distinct_snd f.t_out) "t_out not injective"

  let v_state f =
    well_formed f;
    match (f.lanes, f.t_in, f.t_out) with
    | [ _ ], [ (_, v) ], [ (_, v') ] when v = v' ->
        intern (A.introduce A.empty v)
    | _ -> invalid_arg "Compose.v_state: not a V-node interface"

  let e_state f ~real =
    well_formed f;
    match (f.lanes, f.t_in, f.t_out) with
    | [ _ ], [ (_, a) ], [ (_, b) ] when a <> b ->
        let st = A.introduce (A.introduce A.empty a) b in
        intern (if real then A.add_edge st a b else st)
    | _ -> invalid_arg "Compose.e_state: not an E-node interface"

  let p_state f ~mask =
    well_formed f;
    check (f.t_in = f.t_out) "P-node: in and out terminals differ";
    let path = List.map snd f.t_in in
    check
      (List.length mask = max 0 (List.length path - 1))
      "P-node: wrong mask length";
    let st = List.fold_left A.introduce A.empty path in
    let rec go st vs mask =
      match (vs, mask) with
      | a :: (b :: _ as rest), real :: mask' ->
          go (if real then A.add_edge st a b else st) rest mask'
      | _, [] -> st
      | _ -> st
    in
    intern (go st path mask)

  let disjoint a b = List.for_all (fun x -> not (List.mem x b)) a

  let bridge (s1, f1) (s2, f2) ~i ~j ~real =
    well_formed f1;
    well_formed f2;
    check (disjoint f1.lanes f2.lanes) "bridge: lane sets intersect";
    check (List.mem i f1.lanes) "bridge: lane i not in left";
    check (List.mem j f2.lanes) "bridge: lane j not in right";
    let a = assoc_lane "left t_out" f1.t_out i in
    let b = assoc_lane "right t_out" f2.t_out j in
    let st =
      memoize ~tag:tag_bridge
        (fun buf ->
          A.pack buf s1;
          A.pack buf s2;
          Packed.Buf.push buf a;
          Packed.Buf.push buf b;
          Packed.push_bool buf real)
        (fun () ->
          let st = A.union s1 s2 in
          if real then A.add_edge st a b else st)
    in
    let f =
      {
        lanes = List.sort compare (f1.lanes @ f2.lanes);
        t_in = List.sort compare (f1.t_in @ f2.t_in);
        t_out = List.sort compare (f1.t_out @ f2.t_out);
      }
    in
    well_formed f;
    (st, f)

  let parent ~child:(sc, fc) ~parent:(sp, fp) =
    well_formed fc;
    well_formed fp;
    check
      (List.for_all (fun l -> List.mem l fp.lanes) fc.lanes)
      "parent: child lanes not a subset";
    let glued =
      List.map
        (fun l ->
          let tin = assoc_lane "child t_in" fc.t_in l in
          let tout = assoc_lane "parent t_out" fp.t_out l in
          check (tin = tout) "parent: child in-terminal <> parent out-terminal";
          tin)
        fc.lanes
    in
    let st =
      memoize ~tag:tag_glue
        (fun buf ->
          A.pack buf sc;
          A.pack buf sp;
          Packed.push_list buf Packed.Buf.push glued)
        (fun () ->
          let sc, temp_pairs =
            List.fold_left
              (fun (st, acc) s ->
                let tmp = -(s + 1) in
                (A.rename st ~old_slot:s ~new_slot:tmp, (s, tmp) :: acc))
              (sc, []) glued
          in
          let st = A.union sc sp in
          List.fold_left
            (fun st (s, tmp) -> A.identify st ~keep:s ~drop:tmp)
            st temp_pairs)
    in
    let f =
      {
        lanes = fp.lanes;
        t_in = fp.t_in;
        t_out =
          List.map
            (fun l ->
              match List.assoc_opt l fc.t_out with
              | Some v -> (l, v)
              | None -> (l, assoc_lane "parent t_out" fp.t_out l))
            fp.lanes;
      }
    in
    well_formed f;
    (* key on the raw terminal ids in interface order rather than the
       sorted-uniqued terminal set: [terminals f] is a deterministic
       function of them, so equal keys still force equal results, and
       the sort_uniq (the wrapper's single biggest allocation) only runs
       when the memo misses *)
    let st =
      memoize ~tag:tag_forget
        (fun buf ->
          A.pack buf st;
          Packed.push_list buf (fun b (_, v) -> Packed.Buf.push b v) f.t_in;
          Packed.push_list buf (fun b (_, v) -> Packed.Buf.push b v) f.t_out)
        (fun () -> forget_to st (terminals f))
    in
    (st, f)
end

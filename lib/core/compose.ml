module Klane = Lcp_lanewidth.Klane
module Hash64 = Lcp_util.Hash64

module Make (A : Lcp_algebra.Algebra_sig.S) = struct
  type iface = {
    lanes : int list;
    t_in : (int * int) list;
    t_out : (int * int) list;
  }

  (* ---- composition memo ----------------------------------------------
     The prover pushes one frame per edge of every klane and the verifier
     recomputes the same bridge/parent glue for each of those frames, so
     identical (state, state, glue) joins recur many times per run. Keys
     are [Marshal] bytes of the exact inputs: marshal-equal implies
     structurally equal, so a hit returns a value structurally identical
     to recomputation and downstream encodes are byte-identical (sharing
     can make structurally equal values marshal differently — that only
     costs extra misses, never a wrong hit). Buckets are indexed by the
     FNV-1a hash of the key and disambiguated by full string equality.
     Exceptions are never cached: a raising compute stays uncached and
     raises again on recomputation, preserving the verifier's
     Invalid_argument-to-rejection conversion. *)

  let memo_tbl : (int64, (string * A.state) list ref) Hashtbl.t =
    Hashtbl.create 1024

  let intern_tbl : (int64, (string * A.state) list ref) Hashtbl.t =
    Hashtbl.create 256

  let marshal_key v = try Some (Marshal.to_string v []) with _ -> None

  let memoize ~tag key compute =
    if not !Memo.enabled then compute ()
    else
      match marshal_key key with
      | None -> compute ()
      | Some bytes -> (
          let skey = tag ^ "\x00" ^ bytes in
          let h = Hash64.of_string skey in
          (* cap check before touching a bucket: reset would orphan it *)
          if Hashtbl.length memo_tbl >= Memo.max_entries then
            Hashtbl.reset memo_tbl;
          match Hashtbl.find_opt memo_tbl h with
          | Some bucket -> (
              match List.assoc_opt skey !bucket with
              | Some st ->
                  incr Memo.hits;
                  st
              | None ->
                  incr Memo.misses;
                  let st = compute () in
                  bucket := (skey, st) :: !bucket;
                  st)
          | None ->
              incr Memo.misses;
              let st = compute () in
              Hashtbl.add memo_tbl h (ref [ (skey, st) ]);
              st)

  (* hash-cons a freshly built state: structurally equal states collapse
     to one representative, so later memo keys over them are cheaper to
     marshal and physically shared *)
  let intern st =
    if not !Memo.enabled then st
    else
      match marshal_key st with
      | None -> st
      | Some skey -> (
          let h = Hash64.of_string skey in
          if Hashtbl.length intern_tbl >= Memo.max_entries then
            Hashtbl.reset intern_tbl;
          match Hashtbl.find_opt intern_tbl h with
          | Some bucket -> (
              match List.assoc_opt skey !bucket with
              | Some st' ->
                  incr Memo.intern_hits;
                  st'
              | None ->
                  incr Memo.intern_misses;
                  bucket := (skey, st) :: !bucket;
                  st)
          | None ->
              incr Memo.intern_misses;
              Hashtbl.add intern_tbl h (ref [ (skey, st) ]);
              st)

  let iface_of_klane ~vid (k : Klane.t) =
    {
      lanes = Klane.lanes k;
      t_in = List.map (fun (l, v) -> (l, vid v)) k.Klane.lane_in;
      t_out = List.map (fun (l, v) -> (l, vid v)) k.Klane.lane_out;
    }

  let iface_of_info (i : 'a Certificate.info) =
    {
      lanes = i.Certificate.lanes;
      t_in = i.Certificate.t_in;
      t_out = i.Certificate.t_out;
    }

  let terminals f =
    List.sort_uniq compare (List.map snd f.t_in @ List.map snd f.t_out)

  let forget_to st keep =
    List.fold_left
      (fun st s -> if List.mem s keep then st else A.forget st s)
      st (A.slots st)

  let forget_all st = forget_to st []
  let accepts st = A.accepts (forget_all st)

  let check cond msg = if not cond then invalid_arg ("Compose: " ^ msg)

  let assoc_lane name m l =
    match List.assoc_opt l m with
    | Some v -> v
    | None -> invalid_arg ("Compose: missing lane in " ^ name)

  let well_formed f =
    check (f.lanes <> []) "empty lane set";
    check (List.sort_uniq compare f.lanes = f.lanes) "lanes not sorted-unique";
    check (List.map fst f.t_in = f.lanes) "t_in lanes mismatch";
    check (List.map fst f.t_out = f.lanes) "t_out lanes mismatch";
    let injective m =
      let vs = List.map snd m in
      List.length (List.sort_uniq compare vs) = List.length vs
    in
    check (injective f.t_in) "t_in not injective";
    check (injective f.t_out) "t_out not injective"

  let v_state f =
    well_formed f;
    match (f.lanes, f.t_in, f.t_out) with
    | [ _ ], [ (_, v) ], [ (_, v') ] when v = v' ->
        intern (A.introduce A.empty v)
    | _ -> invalid_arg "Compose.v_state: not a V-node interface"

  let e_state f ~real =
    well_formed f;
    match (f.lanes, f.t_in, f.t_out) with
    | [ _ ], [ (_, a) ], [ (_, b) ] when a <> b ->
        let st = A.introduce (A.introduce A.empty a) b in
        intern (if real then A.add_edge st a b else st)
    | _ -> invalid_arg "Compose.e_state: not an E-node interface"

  let p_state f ~mask =
    well_formed f;
    check (f.t_in = f.t_out) "P-node: in and out terminals differ";
    let path = List.map snd f.t_in in
    check
      (List.length mask = max 0 (List.length path - 1))
      "P-node: wrong mask length";
    let st = List.fold_left A.introduce A.empty path in
    let rec go st vs mask =
      match (vs, mask) with
      | a :: (b :: _ as rest), real :: mask' ->
          go (if real then A.add_edge st a b else st) rest mask'
      | _, [] -> st
      | _ -> st
    in
    intern (go st path mask)

  let disjoint a b = List.for_all (fun x -> not (List.mem x b)) a

  let bridge (s1, f1) (s2, f2) ~i ~j ~real =
    well_formed f1;
    well_formed f2;
    check (disjoint f1.lanes f2.lanes) "bridge: lane sets intersect";
    check (List.mem i f1.lanes) "bridge: lane i not in left";
    check (List.mem j f2.lanes) "bridge: lane j not in right";
    let a = assoc_lane "left t_out" f1.t_out i in
    let b = assoc_lane "right t_out" f2.t_out j in
    let st =
      memoize ~tag:"bridge" (s1, s2, a, b, real) (fun () ->
          let st = A.union s1 s2 in
          if real then A.add_edge st a b else st)
    in
    let f =
      {
        lanes = List.sort compare (f1.lanes @ f2.lanes);
        t_in = List.sort compare (f1.t_in @ f2.t_in);
        t_out = List.sort compare (f1.t_out @ f2.t_out);
      }
    in
    well_formed f;
    (st, f)

  let parent ~child:(sc, fc) ~parent:(sp, fp) =
    well_formed fc;
    well_formed fp;
    check
      (List.for_all (fun l -> List.mem l fp.lanes) fc.lanes)
      "parent: child lanes not a subset";
    let glued =
      List.map
        (fun l ->
          let tin = assoc_lane "child t_in" fc.t_in l in
          let tout = assoc_lane "parent t_out" fp.t_out l in
          check (tin = tout) "parent: child in-terminal <> parent out-terminal";
          tin)
        fc.lanes
    in
    let st =
      memoize ~tag:"glue" (sc, sp, glued) (fun () ->
          let sc, temp_pairs =
            List.fold_left
              (fun (st, acc) s ->
                let tmp = -(s + 1) in
                (A.rename st ~old_slot:s ~new_slot:tmp, (s, tmp) :: acc))
              (sc, []) glued
          in
          let st = A.union sc sp in
          List.fold_left
            (fun st (s, tmp) -> A.identify st ~keep:s ~drop:tmp)
            st temp_pairs)
    in
    let f =
      {
        lanes = fp.lanes;
        t_in = fp.t_in;
        t_out =
          List.map
            (fun l ->
              match List.assoc_opt l fc.t_out with
              | Some v -> (l, v)
              | None -> (l, assoc_lane "parent t_out" fp.t_out l))
            fp.lanes;
      }
    in
    well_formed f;
    let terms = terminals f in
    let st = memoize ~tag:"forget" (st, terms) (fun () -> forget_to st terms) in
    (st, f)
end

(** Bit-exact binary encoding.

    Proof size is the central complexity measure of a proof labeling scheme
    (paper, §1.1), so certificates are serialized to actual bit strings and
    measured in bits, not approximated from in-memory structure sizes. *)

type writer
(** Append-only bit buffer. Preallocated and growable; appends write
    whole bytes at a time (no per-bit closure or per-bit bounds check on
    the [bits]/[varint] path). *)

val writer : ?capacity:int -> unit -> writer
(** [writer ~capacity ()] preallocates [capacity] bytes (default 16). *)

val reset : writer -> unit
(** Forget the contents and start a fresh stream in the same buffer —
    reuse a writer across encodes without reallocating. *)

val bit : writer -> bool -> unit
(** [bit w b] appends a single bit. *)

val bits : writer -> width:int -> int -> unit
(** [bits w ~width x] appends the [width] low-order bits of [x],
    most-significant first. Requires [0 <= x < 2^width] and
    [0 <= width <= 62]. *)

val varint : writer -> int -> unit
(** [varint w x] appends a non-negative integer in a self-delimiting
    LEB128-style encoding: groups of 7 bits, low group first, each group
    preceded by a continuation bit. Uses [O(log x)] bits. *)

val length_bits : writer -> int
(** Number of bits appended so far. *)

val to_bytes : writer -> bytes
(** Zero-padded little-endian-by-byte snapshot of the buffer. *)

type reader

val reader : bytes -> reader
val reader_of_writer : writer -> reader

val reset_reader : reader -> bytes -> unit
(** Repoint an existing reader at a new buffer, position 0 — reuse a
    reader across decodes without reallocating. *)

val read_bit : reader -> bool
val read_bits : reader -> width:int -> int
val read_varint : reader -> int

val bits_remaining : reader -> int
(** Bits not yet consumed (includes any zero padding from [to_bytes]). *)

val get_bit : bytes -> int -> bool
(** Read bit [pos] of a buffer in stream order (bit [i] lives in byte
    [i/8] at offset [i mod 8]), without a reader. *)

val flip_bit : bytes -> int -> unit
(** Invert bit [pos] of a buffer in place, in the same stream order —
    the primitive of bit-level fault injection. *)

val varint_size : int -> int
(** Number of bits [varint] would use for this value. *)

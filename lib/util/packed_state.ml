(** Flat packed representation of algebra states.

    Every property algebra lays its state down as a sequence of native
    integer words in a reusable growable arena ({!Buf}); a {!cursor}
    reads the words back strictly left to right. The format is the
    algebra's own [pack]/[unpack] pair (see [Algebra_sig.S]); this
    module only supplies the arena, the cursor, and the shared
    length-prefixed list helpers, so that two packs concatenated into
    one buffer still parse unambiguously (each [unpack] consumes
    exactly the words its [pack] wrote).

    Words are full native [int]s stored in an [int array] — no width
    truncation, no sign tricks — so pushing the raw field values is
    already injective, including the transient negative temp slots the
    composition engine creates while gluing. The composition memo hashes
    the words with the allocation-free word-wise FNV-1a below ({!hash})
    and compares the words themselves on bucket collision, which is what
    makes hash-equal sound: equal hashes alone never certify a hit. *)

type layout = {
  fixed_words : int;
      (** words a [pack] writes independently of the boundary size *)
  words_per_slot : int;
      (** amortized upper-bound estimate of additional words per
          boundary slot; exact for fixed-width algebras, a sizing hint
          for table-shaped ones (profile tables can be exponential in
          the pathwidth, never in [n]) *)
}

(** Reusable push-only arena of integer words. [reset] rewinds without
    shrinking, so steady-state packing allocates nothing. *)
module Buf = struct
  type t = { mutable data : int array; mutable len : int }

  let create n = { data = Array.make (max 8 n) 0; len = 0 }
  let reset b = b.len <- 0

  let push b x =
    let n = Array.length b.data in
    if b.len = n then begin
      let d = Array.make (2 * n) 0 in
      Array.blit b.data 0 d 0 b.len;
      b.data <- d
    end;
    Array.unsafe_set b.data b.len x;
    b.len <- b.len + 1

  let len b = b.len

  (* the live prefix [0, len) of the underlying array; valid until the
     next push (which may reallocate) or reset *)
  let data b = b.data
  let contents b = Array.sub b.data 0 b.len
end

type cursor = { words : int array; mutable pos : int }

let cursor words = { words; pos = 0 }

let read c =
  if c.pos >= Array.length c.words then
    invalid_arg "Packed_state.read: past the end of the packed words";
  let x = Array.unsafe_get c.words c.pos in
  c.pos <- c.pos + 1;
  x

let push_bool b x = Buf.push b (if x then 1 else 0)
let read_bool c = read c <> 0

let push_list b f xs =
  Buf.push b (List.length xs);
  List.iter (f b) xs

(* reads strictly left to right ([List.init] order is unspecified) *)
let read_list c f =
  let n = read c in
  if n < 0 then invalid_arg "Packed_state.read_list: negative length";
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f c :: acc) in
  go n []

(* word-wise FNV-1a over untagged native ints: one xor/multiply round
   per word, all in registers — hashing a key allocates nothing (the
   Int64 variant in [Hash64] boxes every intermediate). The basis is the
   canonical 64-bit FNV offset basis truncated to OCaml's 63-bit int.
   Mixing is weaker than the byte-at-a-time variant, so callers must
   disambiguate collisions by comparing the words themselves — the
   composition memo does exactly that. *)
let hash_basis = Int64.to_int 0xcbf29ce484222325L
let hash_prime = 0x100000001b3
let hash_word h x = (h lxor x) * hash_prime

let hash_words (a : int array) ~len =
  let h = ref hash_basis in
  for i = 0 to len - 1 do
    h := hash_word !h (Array.unsafe_get a i)
  done;
  !h

let hash b = hash_words (Buf.data b) ~len:(Buf.len b)

(* Negative-lookup filter: a blocked Bloom filter over 64-bit keys.

   The cert store's disk tier pays a filesystem probe (`file_exists` +
   open/read) for every memory-tier miss, even when the record was
   never written. At corpus scale most cold lookups are guaranteed
   misses, so we keep an approximate-membership filter in front of the
   disk probe: `mem` returning false proves the key was never `add`ed
   by this process (no false negatives); `mem` returning true is only
   a hint (false positives send us to the probe we would have done
   anyway).

   Blocked layout: the bit array is split into 8-word (512-bit) blocks
   sized to a cache line; all k probe bits of a key land in one block,
   so a lookup touches a single line instead of k scattered ones. Bits
   per probe come from successive multiplicative mixes of the key, and
   each OCaml word contributes 63 usable bits (the unboxed-int width),
   which costs nothing in accuracy — only the bits-per-block constant.

   Not thread-safe; the service is single-threaded per process and
   pool/daemon workers fork, so each worker owns a private copy. *)

type t = {
  words : int array; (* nblocks * words_per_block, 63 bits per word *)
  nblocks : int;
  k : int; (* probe bits per key, all within one block *)
  mutable added : int; (* keys inserted, for load diagnostics *)
}

let words_per_block = 8
let bits_per_word = 63
let bits_per_block = words_per_block * bits_per_word

(* Fibonacci-style multiplicative mixers; distinct odd constants give
   (near-)independent streams of block/bit indices from one 64-bit
   key. Constants are the usual splitmix64 / golden-ratio multipliers
   truncated into OCaml's 63-bit int. *)
let mix_a = 0x2545f4914f6cdd1d
let mix_b = Int64.to_int 0x9e3779b97f4a7c15L land max_int

let fold_key (key : int64) = Int64.to_int key land max_int

(* [create ~bits ()] rounds the requested size up to whole blocks.
   [bits = 0] is allowed and means "no filter" at the call sites that
   treat the filter as optional; here it still builds a (useless)
   1-block filter so the module itself stays total. *)
let create ?(bits = 1 lsl 17) ?(k = 4) () =
  if k < 1 || k > 16 then invalid_arg "Negf.create: k out of range";
  let nblocks = max 1 ((bits + bits_per_block - 1) / bits_per_block) in
  {
    words = Array.make (nblocks * words_per_block) 0;
    nblocks;
    k;
    added = 0;
  }

let block_of t h = (h * mix_a) land max_int mod t.nblocks

(* Bit j of key h inside its block: double hashing h1 + j*h2 over the
   block's bit space; h2 forced odd so the walk cycles through all
   residues. *)
let bit_index h j =
  let h1 = (h * mix_b) land max_int in
  let h2 = ((h lsr 17) lor 1) land max_int in
  (h1 + (j * h2)) land max_int mod bits_per_block

let add t key =
  let h = fold_key key in
  let base = block_of t h * words_per_block in
  for j = 0 to t.k - 1 do
    let b = bit_index h j in
    let w = base + (b / bits_per_word) in
    t.words.(w) <- t.words.(w) lor (1 lsl (b mod bits_per_word))
  done;
  t.added <- t.added + 1

let mem t key =
  let h = fold_key key in
  let base = block_of t h * words_per_block in
  let ok = ref true in
  let j = ref 0 in
  while !ok && !j < t.k do
    let b = bit_index h !j in
    let w = base + (b / bits_per_word) in
    if t.words.(w) land (1 lsl (b mod bits_per_word)) = 0 then ok := false;
    incr j
  done;
  !ok

let added t = t.added
let bits t = t.nblocks * bits_per_block

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.added <- 0

(** Negative-lookup filter: a blocked Bloom filter over 64-bit keys.

    Sits in front of {!Lcp_service.Cert_store}'s disk tier so
    guaranteed-miss lookups skip the filesystem probe. Within one
    process the filter has no false negatives: [mem t key = false]
    proves [add t key] never ran on [t]. [mem t key = true] is only a
    hint — the caller must still probe and treat an absent record as a
    (counted) false positive.

    All k probe bits of a key land in a single 512-bit block, so a
    lookup touches one cache line. Not thread-safe; every forked
    worker owns its own filter. *)

type t

val create : ?bits:int -> ?k:int -> unit -> t
(** [create ~bits ~k ()] builds a filter of at least [bits] bits
    (rounded up to whole 8-word blocks; default [2^17] = 16 KiB) with
    [k] probe bits per key (default 4, must be in [1..16]). *)

val add : t -> int64 -> unit
(** Insert a key. Never fails; an over-full filter only degrades the
    false-positive rate, never soundness. *)

val mem : t -> int64 -> bool
(** [mem t key] is [true] for every key previously [add]ed (no false
    negatives) and [false] for most others. *)

val added : t -> int
(** Number of [add] calls, for load diagnostics. *)

val bits : t -> int
(** Actual capacity in usable bits after block rounding. *)

val clear : t -> unit
(** Reset to empty. *)

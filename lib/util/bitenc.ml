(* Bit layout (unchanged since the first encoder): stream bit [i] lives
   in byte [i/8] at bit offset [i mod 8]. Writes only ever OR into a
   zero-initialized buffer, so bytes past [len_bits] are always zero.

   [bits]/[read_bits] move whole bytes at a time: a chunk of [take]
   stream bits maps to a contiguous bit field of one target byte, and
   the MSB-first value order vs LSB-first stream order mismatch is a
   single lookup in an 8-bit bit-reversal table. *)

(* rev8.(b) is b with its 8 bits mirrored *)
let rev8 =
  let t = Array.make 256 0 in
  for b = 0 to 255 do
    let r = ref 0 in
    for k = 0 to 7 do
      if b land (1 lsl k) <> 0 then r := !r lor (1 lsl (7 - k))
    done;
    t.(b) <- !r
  done;
  t

type writer = {
  mutable buf : Bytes.t;
  mutable len_bits : int;
}

let writer ?(capacity = 16) () =
  { buf = Bytes.make (max capacity 1) '\000'; len_bits = 0 }

let reset w =
  (* only the used prefix can be nonzero (writes are OR-only) *)
  Bytes.fill w.buf 0 (min (Bytes.length w.buf) ((w.len_bits + 7) / 8)) '\000';
  w.len_bits <- 0

let ensure w needed_bits =
  let needed_bytes = (w.len_bits + needed_bits + 7) / 8 in
  if needed_bytes > Bytes.length w.buf then begin
    let cap = max needed_bytes (2 * Bytes.length w.buf) in
    let buf = Bytes.make cap '\000' in
    Bytes.blit w.buf 0 buf 0 (Bytes.length w.buf);
    w.buf <- buf
  end

let bit w b =
  ensure w 1;
  if b then begin
    let i = w.len_bits / 8 and off = w.len_bits mod 8 in
    Bytes.set w.buf i (Char.chr (Char.code (Bytes.get w.buf i) lor (1 lsl off)))
  end;
  w.len_bits <- w.len_bits + 1

(* Append the [width] low bits of [x], most-significant first. The chunk
   of [take] bits destined for byte [i] at offset [off] is the top [take]
   remaining bits of [x]; placed LSB-of-chunk-last in stream order, its
   byte contribution is the bit-reversed chunk shifted to [off]. *)
let bits w ~width x =
  assert (width >= 0 && width <= 62);
  assert (x >= 0 && (width = 62 || x < 1 lsl width));
  ensure w width;
  let pos = ref w.len_bits and remaining = ref width in
  while !remaining > 0 do
    let i = !pos lsr 3 and off = !pos land 7 in
    let take = min !remaining (8 - off) in
    let chunk = (x lsr (!remaining - take)) land ((1 lsl take) - 1) in
    let placed = Array.unsafe_get rev8 chunk lsr (8 - take) in
    Bytes.unsafe_set w.buf i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get w.buf i) lor (placed lsl off)));
    pos := !pos + take;
    remaining := !remaining - take
  done;
  w.len_bits <- !pos

(* LEB128-style groups, low group first; each 8-bit group is one [bits]
   call: continuation flag in the stream-first (value-MSB) position. *)
let rec varint w x =
  assert (x >= 0);
  if x < 128 then bits w ~width:8 x
  else begin
    bits w ~width:8 (0x80 lor (x land 0x7f));
    varint w (x lsr 7)
  end

let length_bits w = w.len_bits

let to_bytes w = Bytes.sub w.buf 0 ((w.len_bits + 7) / 8)

type reader = {
  mutable data : Bytes.t;
  mutable total_bits : int;
  mutable pos : int;
}

let reader data = { data; total_bits = 8 * Bytes.length data; pos = 0 }

let reset_reader r data =
  r.data <- data;
  r.total_bits <- 8 * Bytes.length data;
  r.pos <- 0

let reader_of_writer w =
  { data = to_bytes w; total_bits = w.len_bits; pos = 0 }

let read_bit r =
  if r.pos >= r.total_bits then invalid_arg "Bitenc.read_bit: out of data";
  let i = r.pos / 8 and off = r.pos mod 8 in
  r.pos <- r.pos + 1;
  Char.code (Bytes.get r.data i) land (1 lsl off) <> 0

let read_bits r ~width =
  assert (width >= 0 && width <= 62);
  if r.pos + width > r.total_bits then
    invalid_arg "Bitenc.read_bit: out of data";
  let acc = ref 0 in
  let pos = ref r.pos and remaining = ref width in
  while !remaining > 0 do
    let i = !pos lsr 3 and off = !pos land 7 in
    let take = min !remaining (8 - off) in
    let chunk =
      (Char.code (Bytes.unsafe_get r.data i) lsr off) land ((1 lsl take) - 1)
    in
    acc := (!acc lsl take) lor (Array.unsafe_get rev8 chunk lsr (8 - take));
    pos := !pos + take;
    remaining := !remaining - take
  done;
  r.pos <- !pos;
  !acc

let read_varint r =
  let rec go acc shift =
    let y = read_bits r ~width:8 in
    let acc = acc lor ((y land 0x7f) lsl shift) in
    if y land 0x80 <> 0 then go acc (shift + 7) else acc
  in
  go 0 0

let bits_remaining r = r.total_bits - r.pos

let get_bit data pos =
  if pos < 0 || pos >= 8 * Bytes.length data then
    invalid_arg "Bitenc.get_bit: out of range";
  Char.code (Bytes.get data (pos / 8)) land (1 lsl (pos mod 8)) <> 0

let flip_bit data pos =
  if pos < 0 || pos >= 8 * Bytes.length data then
    invalid_arg "Bitenc.flip_bit: out of range";
  let i = pos / 8 in
  Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor (1 lsl (pos mod 8))))

let varint_size x =
  let rec go x acc = if x < 128 then acc + 8 else go (x lsr 7) (acc + 8) in
  go x 0

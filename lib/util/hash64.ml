(** 64-bit FNV-1a, hand-rolled (no external digest dependency). Used by
    the certification service to content-address (graph, property, k)
    cache keys. Collisions are tolerable there — the store compares the
    canonical bytes on lookup and every served bundle is re-verified —
    so a fast non-cryptographic hash is the right tool. *)

type t = int64

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let init = offset_basis

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let bytes h (s : Bytes.t) =
  let h = ref h in
  for i = 0 to Bytes.length s - 1 do
    h := byte !h (Char.code (Bytes.get s i))
  done;
  !h

let string h (s : string) = bytes h (Bytes.unsafe_of_string s)

(* little-endian, all 8 bytes, so that e.g. 1 and 256 never collide *)
let int h x =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h ((x lsr (8 * i)) land 0xff)
  done;
  !h

let of_bytes s = bytes init s
let of_string s = string init s

let to_hex h = Printf.sprintf "%016Lx" h

(* strict inverse of [to_hex]: exactly 16 lowercase hex digits, so a
   corrupted checksum field in a storage record never half-parses *)
let of_hex s =
  if String.length s <> 16 then None
  else
    let ok =
      String.for_all
        (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
        s
    in
    if not ok then None else Scanf.sscanf_opt s "%Lx%!" (fun h -> h)

let equal = Int64.equal
let compare = Int64.compare

(** Boolean combinators on property algebras: the product constructions
    behind "φ₁ ∧ φ₂" etc. The state of a conjunction is the pair of states;
    homomorphism classes compose pointwise, so all Prop 6.1 machinery lifts
    unchanged. *)

module Not (A : Algebra_sig.S) : Algebra_sig.S with type state = A.state =
struct
  include A

  let name = "not_" ^ A.name
  let description = "negation of: " ^ A.description
  let accepts st = not (A.accepts st)
end

module Pair (A : Algebra_sig.S) (B : Algebra_sig.S) = struct
  type state = A.state * B.state

  let empty = (A.empty, B.empty)
  let introduce (a, b) s = (A.introduce a s, B.introduce b s)
  let add_edge (a, b) x y = (A.add_edge a x y, B.add_edge b x y)
  let forget (a, b) s = (A.forget a s, B.forget b s)
  let union (a1, b1) (a2, b2) = (A.union a1 a2, B.union b1 b2)

  let identify (a, b) ~keep ~drop =
    (A.identify a ~keep ~drop, B.identify b ~keep ~drop)

  let rename (a, b) ~old_slot ~new_slot =
    (A.rename a ~old_slot ~new_slot, B.rename b ~old_slot ~new_slot)

  let slots (a, _) = A.slots a
  let equal (a1, b1) (a2, b2) = A.equal a1 a2 && B.equal b1 b2

  let encode w (a, b) =
    A.encode w a;
    B.encode w b

  let packed_layout =
    {
      Lcp_util.Packed_state.fixed_words =
        A.packed_layout.Lcp_util.Packed_state.fixed_words
        + B.packed_layout.Lcp_util.Packed_state.fixed_words;
      words_per_slot =
        A.packed_layout.Lcp_util.Packed_state.words_per_slot
        + B.packed_layout.Lcp_util.Packed_state.words_per_slot;
    }

  (* A's unpack consumes exactly A's pack, so the concatenation parses
     unambiguously *)
  let pack buf (a, b) =
    A.pack buf a;
    B.pack buf b

  let unpack c =
    let a = A.unpack c in
    let b = B.unpack c in
    (a, b)

  let pp ppf (a, b) = Format.fprintf ppf "(%a, %a)" A.pp a B.pp b
end

module And (A : Algebra_sig.S) (B : Algebra_sig.S) :
  Algebra_sig.S with type state = A.state * B.state = struct
  include Pair (A) (B)

  let name = A.name ^ "_and_" ^ B.name
  let description = A.description ^ " AND " ^ B.description
  let accepts (a, b) = A.accepts a && B.accepts b
end

module Or (A : Algebra_sig.S) (B : Algebra_sig.S) :
  Algebra_sig.S with type state = A.state * B.state = struct
  include Pair (A) (B)

  let name = A.name ^ "_or_" ^ B.name
  let description = A.description ^ " OR " ^ B.description
  let accepts (a, b) = A.accepts a || B.accepts b
end

(** "The graph is a path": connected, acyclic, max degree ≤ 2. *)
module Is_path_graph = struct
  module D2 = Degree.Max_degree (struct
    let d = 2
  end)

  module CA = And (Connectivity) (Acyclicity)
  include And (CA) (D2)

  let name = "is_path_graph"
  let description = "the graph is a simple path"
  let oracle = Lcp_graph.Traversal.is_path_graph
end

(** "The graph is a cycle": connected and 2-regular — the paper's canonical
    Ω(log n)-bit rejection target. *)
module Is_cycle_graph = struct
  module R2 = Degree.Regular (struct
    let d = 2
  end)

  include And (Connectivity) (R2)

  let name = "is_cycle_graph"
  let description = "the graph is a simple cycle"
  let oracle = Lcp_graph.Traversal.is_cycle_graph
end

(** The "vertex cover of size ≤ c" algebra. A profile fixes which boundary
    vertices are in the cover; the table maps each viable profile to the
    minimum number of already-forgotten cover vertices, capped at c+1 to
    keep the state space finite. *)

module Bitenc = Lcp_util.Bitenc

module type PARAM = sig
  val budget : int
end

module Make (P : PARAM) = struct
  type state = {
    slot_list : int list;
    (* profile (sorted subset of slots in the cover) ↦ min internal cost;
       sorted by profile *)
    table : (int list * int) list;
  }

  let name = Printf.sprintf "vertex_cover<=%d" P.budget
  let description = Printf.sprintf "some vertex cover has size at most %d" P.budget

  let cap x = min x (P.budget + 1)

  let canonical table =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (p, c) ->
        match Hashtbl.find_opt tbl p with
        | Some c' when c' <= c -> ()
        | _ -> Hashtbl.replace tbl p c)
      table;
    Hashtbl.fold (fun p c acc -> (p, c) :: acc) tbl [] |> List.sort compare

  let empty = { slot_list = []; table = [ ([], 0) ] }

  let introduce st s =
    if List.mem s st.slot_list then
      invalid_arg "Vertex_cover.introduce: slot exists";
    {
      slot_list = List.sort compare (s :: st.slot_list);
      table =
        canonical
          (List.concat_map
             (fun (p, c) -> [ (p, c); (List.sort compare (s :: p), c) ])
             st.table);
    }

  let add_edge st a b =
    {
      st with
      table =
        canonical
          (List.filter (fun (p, _) -> List.mem a p || List.mem b p) st.table);
    }

  let forget st s =
    {
      slot_list = List.filter (fun x -> x <> s) st.slot_list;
      table =
        canonical
          (List.map
             (fun (p, c) ->
               if List.mem s p then
                 (List.filter (fun x -> x <> s) p, cap (c + 1))
               else (p, c))
             st.table);
    }

  let union a b =
    if List.exists (fun s -> List.mem s b.slot_list) a.slot_list then
      invalid_arg "Vertex_cover.union: slot sets not disjoint";
    {
      slot_list = List.sort compare (a.slot_list @ b.slot_list);
      table =
        canonical
          (List.concat_map
             (fun (pa, ca) ->
               List.map
                 (fun (pb, cb) -> (List.sort compare (pa @ pb), cap (ca + cb)))
                 b.table)
             a.table);
    }

  let identify st ~keep ~drop =
    (* the glued vertex's cover membership must be a single decision *)
    {
      slot_list = List.filter (fun x -> x <> drop) st.slot_list;
      table =
        canonical
          (List.filter_map
             (fun (p, c) ->
               if List.mem keep p = List.mem drop p then
                 Some (List.filter (fun x -> x <> drop) p, c)
               else None)
             st.table);
    }

  let rename st ~old_slot ~new_slot =
    if List.mem new_slot st.slot_list then
      invalid_arg "Vertex_cover.rename: slot exists";
    let r s = if s = old_slot then new_slot else s in
    {
      slot_list = List.sort compare (List.map r st.slot_list);
      table =
        canonical
          (List.map (fun (p, c) -> (List.sort compare (List.map r p), c)) st.table);
    }

  let slots st = st.slot_list

  let accepts st =
    assert (st.slot_list = []);
    List.exists (fun (_, c) -> c <= P.budget) st.table

  let equal a b = a.slot_list = b.slot_list && a.table = b.table

  let encode w st =
    Bitenc.varint w (List.length st.slot_list);
    List.iter (fun s -> Bitenc.varint w (abs s)) st.slot_list;
    Bitenc.varint w (List.length st.table);
    List.iter
      (fun (p, c) ->
        List.iter (fun s -> Bitenc.bit w (List.mem s p)) st.slot_list;
        Bitenc.varint w c)
      st.table

  let packed_layout =
    { Lcp_util.Packed_state.fixed_words = 2; words_per_slot = 6 }

  let pack buf st =
    let module P = Lcp_util.Packed_state in
    P.push_list buf P.Buf.push st.slot_list;
    P.push_list buf
      (fun b (p, cnt) ->
        P.push_list b P.Buf.push p;
        P.Buf.push b cnt)
      st.table

  let unpack c =
    let module P = Lcp_util.Packed_state in
    let slot_list = P.read_list c P.read in
    let table =
      P.read_list c (fun c ->
          let p = P.read_list c P.read in
          let cnt = P.read c in
          (p, cnt))
    in
    { slot_list; table }

  let pp ppf st =
    Format.fprintf ppf "vc<=%d(slots=%s; %d profiles)" P.budget
      (String.concat "," (List.map string_of_int st.slot_list))
      (List.length st.table)

  (* brute force: try all subsets up to the budget *)
  let oracle g =
    let module Graph = Lcp_graph.Graph in
    let n = Graph.n g in
    let edges = Graph.edges g in
    let rec covers chosen budget = function
      | [] -> true
      | (u, v) :: rest ->
          if List.mem u chosen || List.mem v chosen then covers chosen budget rest
          else
            budget > 0
            && (covers (u :: chosen) (budget - 1) ((u, v) :: rest)
               || covers (v :: chosen) (budget - 1) ((u, v) :: rest))
    in
    ignore n;
    covers [] P.budget edges
end

(** The connectivity algebra: state = partition of the boundary into
    connected components, plus the number of components that already lost
    all their boundary vertices ("closed"). A graph is connected iff, after
    forgetting everything, at most one component was ever closed. *)

module Bitenc = Lcp_util.Bitenc

type state = {
  partition : Slot_partition.t;
  closed : int;
}

let name = "connected"
let description = "the graph is connected"

let empty = { partition = Slot_partition.empty; closed = 0 }

let introduce st s = { st with partition = Slot_partition.add_singleton st.partition s }

let add_edge st a b = { st with partition = Slot_partition.merge st.partition a b }

(* the closed count is capped at 2: beyond that the graph is disconnected
   no matter what happens later, and the cap keeps the state space finite *)
let cap c = min c 2

let forget st s =
  let partition, emptied = Slot_partition.remove st.partition s in
  { partition; closed = cap (st.closed + if emptied then 1 else 0) }

let union a b =
  {
    partition = Slot_partition.union a.partition b.partition;
    closed = cap (a.closed + b.closed);
  }

let identify st ~keep ~drop =
  let partition = Slot_partition.merge st.partition keep drop in
  let partition, emptied = Slot_partition.remove partition drop in
  assert (not emptied);
  { st with partition }

let rename st ~old_slot ~new_slot =
  { st with partition = Slot_partition.rename st.partition ~old_slot ~new_slot }

let slots st = Slot_partition.slots st.partition

let accepts st =
  assert (slots st = []);
  st.closed <= 1

let equal a b = Slot_partition.equal a.partition b.partition && a.closed = b.closed

let encode w st =
  Slot_partition.encode w st.partition;
  Bitenc.varint w st.closed

let decode r =
  let partition = Slot_partition.decode r in
  let closed = Bitenc.read_varint r in
  { partition; closed }

let packed_layout = { Lcp_util.Packed_state.fixed_words = 2; words_per_slot = 2 }

let pack buf st =
  Slot_partition.pack buf st.partition;
  Lcp_util.Packed_state.Buf.push buf st.closed

let unpack c =
  let partition = Slot_partition.unpack c in
  let closed = Lcp_util.Packed_state.read c in
  { partition; closed }

let pp ppf st =
  Format.fprintf ppf "conn(%a; closed=%d)" Slot_partition.pp st.partition
    st.closed

let oracle = Lcp_graph.Traversal.is_connected

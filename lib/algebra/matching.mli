(** The perfect-matching algebra: the state is the set of achievable
    profiles (subsets of the boundary already covered by the partial
    matching, with every forgotten vertex covered). MSO₂ counterpart:
    [Lcp_mso.Properties.perfect_matching]. *)

include Algebra_sig.ORACLE

val decode : Lcp_util.Bitenc.reader -> state
(** Inverse of [encode] (for states whose slots are vertex ids). *)

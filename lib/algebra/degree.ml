(** Degree-constraint algebras: "maximum degree ≤ d" and "d-regular".
    State: the degree of each boundary vertex, capped at d+1, plus a sticky
    violation flag raised when a vertex leaves the boundary with a bad
    degree. Combined with {!Connectivity} these recognize path graphs
    (max degree ≤ 2 ∧ connected ∧ acyclic) and cycle graphs (2-regular ∧
    connected) — the paper's canonical Ω(log n) pair. *)

module Bitenc = Lcp_util.Bitenc

module type PARAM = sig
  val d : int
end

module Common (P : PARAM) = struct
  type state = {
    deg : (int * int) list; (* slot ↦ degree capped at d+1, sorted *)
    bad : bool;
  }

  let cap x = min x (P.d + 1)

  let empty = { deg = []; bad = false }

  let introduce st s =
    if List.mem_assoc s st.deg then invalid_arg "Degree.introduce: slot exists";
    { st with deg = List.sort compare ((s, 0) :: st.deg) }

  let get st s =
    match List.assoc_opt s st.deg with
    | Some d -> d
    | None -> invalid_arg "Degree: unknown slot"

  let set st s v =
    { st with deg = List.sort compare ((s, v) :: List.remove_assoc s st.deg) }

  let add_edge st a b =
    let st = set st a (cap (get st a + 1)) in
    set st b (cap (get st b + 1))

  let union a b =
    if List.exists (fun (s, _) -> List.mem_assoc s b.deg) a.deg then
      invalid_arg "Degree.union: slot sets not disjoint";
    { deg = List.sort compare (a.deg @ b.deg); bad = a.bad || b.bad }

  let rename st ~old_slot ~new_slot =
    if List.mem_assoc new_slot st.deg then
      invalid_arg "Degree.rename: slot exists";
    {
      st with
      deg =
        List.sort compare
          (List.map
             (fun (s, d) -> ((if s = old_slot then new_slot else s), d))
             st.deg);
    }

  let slots st = List.map fst st.deg

  let equal a b = a.deg = b.deg && a.bad = b.bad

  let encode w st =
    Bitenc.varint w (List.length st.deg);
    List.iter
      (fun (s, d) ->
        Bitenc.varint w (abs s);
        Bitenc.varint w d)
      st.deg;
    Bitenc.bit w st.bad

  let packed_layout =
    { Lcp_util.Packed_state.fixed_words = 2; words_per_slot = 2 }

  let pack buf st =
    let module P = Lcp_util.Packed_state in
    P.push_list buf
      (fun b (s, d) ->
        P.Buf.push b s;
        P.Buf.push b d)
      st.deg;
    P.push_bool buf st.bad

  let unpack c =
    let module P = Lcp_util.Packed_state in
    let deg =
      P.read_list c (fun c ->
          let s = P.read c in
          let d = P.read c in
          (s, d))
    in
    let bad = P.read_bool c in
    { deg; bad }

  let accepts st =
    assert (slots st = []);
    not st.bad
end

module Max_degree (P : PARAM) = struct
  include Common (P)

  let name = Printf.sprintf "max_degree<=%d" P.d
  let description = Printf.sprintf "every vertex has degree at most %d" P.d

  let forget st s =
    let d = get st s in
    { deg = List.remove_assoc s st.deg; bad = st.bad || d > P.d }

  let identify st ~keep ~drop =
    let d = cap (get st keep + get st drop) in
    let st = set st keep d in
    { st with deg = List.remove_assoc drop st.deg }

  let pp ppf st =
    Format.fprintf ppf "maxdeg(%s; bad=%b)"
      (String.concat ","
         (List.map (fun (s, d) -> Printf.sprintf "%d:%d" s d) st.deg))
      st.bad

  let oracle g = Lcp_graph.Graph.max_degree g <= P.d
end

module Regular (P : PARAM) = struct
  include Common (P)

  let name = Printf.sprintf "%d-regular" P.d
  let description = Printf.sprintf "every vertex has degree exactly %d" P.d

  let forget st s =
    let d = get st s in
    { deg = List.remove_assoc s st.deg; bad = st.bad || d <> P.d }

  let identify st ~keep ~drop =
    let d = cap (get st keep + get st drop) in
    let st = set st keep d in
    { st with deg = List.remove_assoc drop st.deg }

  let pp ppf st =
    Format.fprintf ppf "regular(%s; bad=%b)"
      (String.concat ","
         (List.map (fun (s, d) -> Printf.sprintf "%d:%d" s d) st.deg))
      st.bad

  let oracle g =
    Lcp_graph.Graph.fold_vertices
      (fun v acc -> acc && Lcp_graph.Graph.degree g v = P.d)
      g true
end

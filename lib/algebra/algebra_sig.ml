(** Property algebras: the homomorphism classes of Prop 2.4 / Prop 6.1,
    made executable.

    A state abstracts a graph with a *boundary* — an injectively labeled
    set of distinguished vertices ("slots", named by integers; the
    certification pipeline uses host vertex ids). Two graphs with equal
    states are indistinguishable by the property under every composition,
    which is exactly the homomorphism-class contract of Prop 2.4. Each
    MSO₂-expressible property of the catalogue supplies the finite state
    and the composition operations below; the generic lift in {!Lift} then
    evaluates any k-lane hierarchy (Bridge-merge = union + add_edge,
    Parent-merge = union + identify + forget, per the proof of Prop 6.1).

    Contract: slot sets are explicit; [introduce] requires a fresh slot;
    [add_edge]/[identify] require existing slots; [union] requires disjoint
    slot sets; [accepts] is meaningful once every slot has been forgotten.
    All operations must be deterministic (prover and verifier recompute and
    compare states for equality). *)

module type S = sig
  type state

  val name : string
  (** Short identifier, e.g. "connected". *)

  val description : string

  val empty : state
  (** The empty graph. *)

  val introduce : state -> int -> state
  (** Add an isolated vertex as a new boundary slot. *)

  val add_edge : state -> int -> int -> state
  (** Add an edge between two distinct boundary slots. *)

  val forget : state -> int -> state
  (** Remove a slot from the boundary; the vertex remains in the graph. *)

  val union : state -> state -> state
  (** Disjoint union. *)

  val identify : state -> keep:int -> drop:int -> state
  (** Glue the vertices at two slots into one; the result keeps slot
      [keep], and [drop] leaves the boundary. Composition targets
      *simple* graphs (Def 2.3): self-loops and parallel edges produced
      by the gluing collapse, and algebras must account for that. *)

  val rename : state -> old_slot:int -> new_slot:int -> state

  val slots : state -> int list
  (** Sorted boundary slots. *)

  val accepts : state -> bool
  (** Whether the property holds for the abstracted graph; requires an
      empty boundary. *)

  val equal : state -> state -> bool

  val encode : Lcp_util.Bitenc.writer -> state -> unit
  (** Bit-exact encoding, used to measure certificate sizes. *)

  val packed_layout : Lcp_util.Packed_state.layout
  (** Sizing hint for packed-state buffers (see {!pack}). *)

  val pack : Lcp_util.Packed_state.Buf.t -> state -> unit
  (** Total flat encoding of the state as native integer words, appended
      to the buffer. [pack] must be injective up to {!equal} — equal
      packed images only for states that [equal] identifies and that
      every observer ([encode], [slots], [accepts], the composition
      operations) treats identically — because the composition memo
      serves a cached result whenever the packed inputs match. It must
      never raise on states built by this algebra's own operations. *)

  val unpack : Lcp_util.Packed_state.cursor -> state
  (** Left inverse of {!pack}: reading back the words written by [pack]
      reconstructs an {!equal} state and consumes exactly those words
      (so concatenated packs parse unambiguously). *)

  val pp : Format.formatter -> state -> unit
end

(** Ground truth for testing an algebra: a direct (global, non-local)
    decision procedure for the same property. *)
module type ORACLE = sig
  include S

  val oracle : Lcp_graph.Graph.t -> bool
end

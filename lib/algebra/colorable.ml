(** The q-colorability algebra: the state is the set of proper q-colorings
    of the whole graph restricted to the boundary, stored explicitly (each
    coloring as a sorted slot ↦ color list). This is the textbook
    homomorphism class for colorability; its size is exponential in the
    boundary, so it is practical for small lane counts (see DESIGN.md on
    the greedy-vs-Prop-4.6 partition trade-off). For q = 2 prefer the
    compact {!Bipartite} algebra. *)

module Bitenc = Lcp_util.Bitenc

module type PARAM = sig
  val q : int
end

module Make (P : PARAM) = struct
  type coloring = (int * int) list (* slot ↦ color, sorted by slot *)

  type state = {
    slot_list : int list; (* sorted *)
    colorings : coloring list; (* sorted set *)
  }

  let name = Printf.sprintf "%d-colorable" P.q
  let description = Printf.sprintf "the graph is properly %d-colorable" P.q

  let empty = { slot_list = []; colorings = [ [] ] }

  let canonical cs = List.sort_uniq compare cs

  let introduce st s =
    if List.mem s st.slot_list then invalid_arg "Colorable.introduce: slot exists";
    let extend c = List.init P.q (fun col -> List.sort compare ((s, col) :: c)) in
    {
      slot_list = List.sort compare (s :: st.slot_list);
      colorings = canonical (List.concat_map extend st.colorings);
    }

  let color_of c s =
    match List.assoc_opt s c with
    | Some col -> col
    | None -> invalid_arg "Colorable: unknown slot"

  let add_edge st a b =
    {
      st with
      colorings =
        List.filter (fun c -> color_of c a <> color_of c b) st.colorings;
    }

  let forget st s =
    {
      slot_list = List.filter (fun x -> x <> s) st.slot_list;
      colorings =
        canonical
          (List.map (List.filter (fun (x, _) -> x <> s)) st.colorings);
    }

  let union a b =
    if List.exists (fun s -> List.mem s b.slot_list) a.slot_list then
      invalid_arg "Colorable.union: slot sets not disjoint";
    {
      slot_list = List.sort compare (a.slot_list @ b.slot_list);
      colorings =
        canonical
          (List.concat_map
             (fun ca ->
               List.map (fun cb -> List.sort compare (ca @ cb)) b.colorings)
             a.colorings);
    }

  let identify st ~keep ~drop =
    let st' =
      {
        st with
        colorings =
          List.filter (fun c -> color_of c keep = color_of c drop) st.colorings;
      }
    in
    forget st' drop

  let rename st ~old_slot ~new_slot =
    if List.mem new_slot st.slot_list then
      invalid_arg "Colorable.rename: slot exists";
    {
      slot_list =
        List.sort compare
          (List.map (fun s -> if s = old_slot then new_slot else s) st.slot_list);
      colorings =
        canonical
          (List.map
             (List.map (fun (s, c) ->
                  ((if s = old_slot then new_slot else s), c)))
             st.colorings);
    }

  let slots st = st.slot_list

  let accepts st =
    assert (st.slot_list = []);
    st.colorings <> []

  let equal a b = a.slot_list = b.slot_list && a.colorings = b.colorings

  let encode w st =
    Bitenc.varint w (List.length st.slot_list);
    List.iter (fun s -> Bitenc.varint w (abs s)) st.slot_list;
    Bitenc.varint w (List.length st.colorings);
    let bits_per_color =
      let rec go b = if 1 lsl b >= P.q then b else go (b + 1) in
      go 1
    in
    List.iter
      (fun c -> List.iter (fun (_, col) -> Bitenc.bits w ~width:bits_per_color col) c)
      st.colorings

  let packed_layout =
    { Lcp_util.Packed_state.fixed_words = 2; words_per_slot = 12 }

  let pack buf st =
    let module P = Lcp_util.Packed_state in
    P.push_list buf P.Buf.push st.slot_list;
    P.push_list buf
      (fun b coloring ->
        P.push_list b
          (fun b (s, col) ->
            P.Buf.push b s;
            P.Buf.push b col)
          coloring)
      st.colorings

  let unpack c =
    let module P = Lcp_util.Packed_state in
    let slot_list = P.read_list c P.read in
    let colorings =
      P.read_list c (fun c ->
          P.read_list c (fun c ->
              let s = P.read c in
              let col = P.read c in
              (s, col)))
    in
    { slot_list; colorings }

  let pp ppf st =
    Format.fprintf ppf "%d-col(slots=%s; %d colorings)" P.q
      (String.concat "," (List.map string_of_int st.slot_list))
      (List.length st.colorings)

  (* brute-force proper q-coloring *)
  let oracle g =
    let module Graph = Lcp_graph.Graph in
    let n = Graph.n g in
    let color = Array.make n (-1) in
    let rec go v =
      if v = n then true
      else
        let ok c =
          List.for_all
            (fun w -> w >= v || color.(w) <> c)
            (Graph.neighbors g v)
        in
        let rec try_color c =
          if c = P.q then false
          else if ok c then begin
            color.(v) <- c;
            if go (v + 1) then true
            else begin
              color.(v) <- -1;
              try_color (c + 1)
            end
          end
          else try_color (c + 1)
        in
        try_color 0
    in
    go 0
end

module Three = Make (struct
  let q = 3
end)

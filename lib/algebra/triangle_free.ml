(** The triangle-freeness (C₃-subgraph-freeness) algebra. State: the
    adjacency among boundary vertices, the set of boundary pairs that share
    a forgotten common neighbor, and a sticky triangle flag. *)

module Bitenc = Lcp_util.Bitenc

type state = {
  slot_list : int list;
  adj : (int * int) list; (* sorted canonical pairs among slots *)
  common : (int * int) list; (* pairs with an internal common neighbor *)
  tri : bool;
}

let name = "triangle_free"
let description = "the graph contains no triangle"

let norm (a, b) = if a <= b then (a, b) else (b, a)

let empty = { slot_list = []; adj = []; common = []; tri = false }

let detect st =
  if st.tri then st
  else begin
    let has_adj a b = List.mem (norm (a, b)) st.adj in
    let tri =
      List.exists (fun p -> List.mem p st.common) st.adj
      || List.exists
           (fun (a, b) ->
             List.exists
               (fun w -> w <> a && w <> b && has_adj a w && has_adj b w)
               st.slot_list)
           st.adj
    in
    { st with tri }
  end

let introduce st s =
  if List.mem s st.slot_list then
    invalid_arg "Triangle_free.introduce: slot exists";
  { st with slot_list = List.sort compare (s :: st.slot_list) }

let add_edge st a b =
  detect { st with adj = List.sort_uniq compare (norm (a, b) :: st.adj) }

let forget st s =
  let nbrs = List.filter_map
      (fun (a, b) ->
        if a = s then Some b else if b = s then Some a else None)
      st.adj
  in
  let new_common =
    List.concat_map
      (fun a -> List.filter_map (fun b -> if a < b then Some (a, b) else None) nbrs)
      nbrs
  in
  let keep_pair (a, b) = a <> s && b <> s in
  (* two boundary neighbors of s that are already adjacent close a triangle
     through s, so re-run detection *)
  detect
    {
      slot_list = List.filter (fun x -> x <> s) st.slot_list;
      adj = List.filter keep_pair st.adj;
      common =
        List.sort_uniq compare (new_common @ List.filter keep_pair st.common);
      tri = st.tri;
    }

let union a b =
  if List.exists (fun s -> List.mem s b.slot_list) a.slot_list then
    invalid_arg "Triangle_free.union: slot sets not disjoint";
  {
    slot_list = List.sort compare (a.slot_list @ b.slot_list);
    adj = List.sort_uniq compare (a.adj @ b.adj);
    common = List.sort_uniq compare (a.common @ b.common);
    tri = a.tri || b.tri;
  }

let identify st ~keep ~drop =
  let r x = if x = drop then keep else x in
  let rp (a, b) = norm (r a, r b) in
  let st =
    {
      slot_list = List.filter (fun x -> x <> drop) st.slot_list;
      adj = List.sort_uniq compare (List.map rp st.adj);
      common = List.sort_uniq compare (List.map rp st.common);
      tri = st.tri;
    }
  in
  detect st

let rename st ~old_slot ~new_slot =
  if List.mem new_slot st.slot_list then
    invalid_arg "Triangle_free.rename: slot exists";
  let r x = if x = old_slot then new_slot else x in
  let rp (a, b) = norm (r a, r b) in
  {
    slot_list = List.sort compare (List.map r st.slot_list);
    adj = List.sort compare (List.map rp st.adj);
    common = List.sort compare (List.map rp st.common);
    tri = st.tri;
  }

let slots st = st.slot_list

let accepts st =
  assert (st.slot_list = []);
  not st.tri

let equal a b =
  a.slot_list = b.slot_list && a.adj = b.adj && a.common = b.common
  && a.tri = b.tri

let encode w st =
  Bitenc.varint w (List.length st.slot_list);
  List.iter (fun s -> Bitenc.varint w (abs s)) st.slot_list;
  let encode_pairs ps =
    Bitenc.varint w (List.length ps);
    List.iter
      (fun (a, b) ->
        Bitenc.varint w (abs a);
        Bitenc.varint w (abs b))
      ps
  in
  encode_pairs st.adj;
  encode_pairs st.common;
  Bitenc.bit w st.tri

(* inverse of [encode] for the nonnegative slot names the certification
   pipeline uses (host vertex ids), where [abs] is the identity *)
let decode r =
  (* decoding must read strictly left to right; List.init order is
     unspecified *)
  let rec read_n n f = if n <= 0 then [] else
    let x = f () in
    x :: read_n (n - 1) f
  in
  let read_list f = read_n (Bitenc.read_varint r) f in
  let slot_list = read_list (fun () -> Bitenc.read_varint r) in
  let read_pairs () =
    read_list (fun () ->
        let a = Bitenc.read_varint r in
        let b = Bitenc.read_varint r in
        (a, b))
  in
  let adj = read_pairs () in
  let common = read_pairs () in
  let tri = Bitenc.read_bit r in
  { slot_list; adj; common; tri }

let packed_layout = { Lcp_util.Packed_state.fixed_words = 4; words_per_slot = 6 }

let push_pair b (x, y) =
  Lcp_util.Packed_state.Buf.push b x;
  Lcp_util.Packed_state.Buf.push b y

let read_pair c =
  let x = Lcp_util.Packed_state.read c in
  let y = Lcp_util.Packed_state.read c in
  (x, y)

let pack buf st =
  let module P = Lcp_util.Packed_state in
  P.push_list buf P.Buf.push st.slot_list;
  P.push_list buf push_pair st.adj;
  P.push_list buf push_pair st.common;
  P.push_bool buf st.tri

let unpack c =
  let module P = Lcp_util.Packed_state in
  let slot_list = P.read_list c P.read in
  let adj = P.read_list c read_pair in
  let common = P.read_list c read_pair in
  let tri = P.read_bool c in
  { slot_list; adj; common; tri }

let pp ppf st =
  Format.fprintf ppf "trifree(slots=%s; adj=%d common=%d tri=%b)"
    (String.concat "," (List.map string_of_int st.slot_list))
    (List.length st.adj) (List.length st.common) st.tri

let oracle g =
  let module Graph = Lcp_graph.Graph in
  not
    (Graph.fold_edges
       (fun (u, v) found ->
         found
         || List.exists
              (fun w -> Graph.mem_edge g v w)
              (Graph.neighbors g u))
       g false)

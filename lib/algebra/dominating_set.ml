(** The "dominating set of size ≤ c" algebra. A profile gives each
    boundary vertex one of three statuses — in the set, dominated by a
    neighbor in the set, or not yet dominated — and maps to the minimum
    number of forgotten set members (capped at c+1). A vertex may only be
    forgotten once it is in the set or dominated. *)

module Bitenc = Lcp_util.Bitenc

type status = In_set | Dominated | Undominated

module type PARAM = sig
  val budget : int
end

module Make (P : PARAM) = struct
  type profile = (int * status) list (* sorted by slot *)

  type state = {
    slot_list : int list;
    table : (profile * int) list;
  }

  let name = Printf.sprintf "dominating_set<=%d" P.budget
  let description =
    Printf.sprintf "some dominating set has size at most %d" P.budget

  let cap x = min x (P.budget + 1)

  let canonical table =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (p, c) ->
        match Hashtbl.find_opt tbl p with
        | Some c' when c' <= c -> ()
        | _ -> Hashtbl.replace tbl p c)
      table;
    Hashtbl.fold (fun p c acc -> (p, c) :: acc) tbl [] |> List.sort compare

  let empty = { slot_list = []; table = [ ([], 0) ] }

  let introduce st s =
    if List.mem s st.slot_list then
      invalid_arg "Dominating_set.introduce: slot exists";
    {
      slot_list = List.sort compare (s :: st.slot_list);
      table =
        canonical
          (List.concat_map
             (fun (p, c) ->
               [
                 (List.sort compare ((s, In_set) :: p), c);
                 (List.sort compare ((s, Undominated) :: p), c);
               ])
             st.table);
    }

  let status_of p s =
    match List.assoc_opt s p with
    | Some st -> st
    | None -> invalid_arg "Dominating_set: unknown slot"

  let set_status p s v =
    List.sort compare ((s, v) :: List.remove_assoc s p)

  let dominate p s =
    match status_of p s with Undominated -> set_status p s Dominated | _ -> p

  let add_edge st a b =
    let upgrade p =
      let p = if status_of p a = In_set then dominate p b else p in
      if status_of p b = In_set then dominate p a else p
    in
    { st with table = canonical (List.map (fun (p, c) -> (upgrade p, c)) st.table) }

  let forget st s =
    {
      slot_list = List.filter (fun x -> x <> s) st.slot_list;
      table =
        canonical
          (List.filter_map
             (fun (p, c) ->
               match status_of p s with
               | Undominated -> None
               | In_set -> Some (List.remove_assoc s p, cap (c + 1))
               | Dominated -> Some (List.remove_assoc s p, c))
             st.table);
    }

  let union a b =
    if List.exists (fun s -> List.mem s b.slot_list) a.slot_list then
      invalid_arg "Dominating_set.union: slot sets not disjoint";
    {
      slot_list = List.sort compare (a.slot_list @ b.slot_list);
      table =
        canonical
          (List.concat_map
             (fun (pa, ca) ->
               List.map
                 (fun (pb, cb) -> (List.sort compare (pa @ pb), cap (ca + cb)))
                 b.table)
             a.table);
    }

  let identify st ~keep ~drop =
    (* membership in the set must agree across the two copies; domination
       is inherited from either side *)
    let combine p =
      let sk = status_of p keep and sd = status_of p drop in
      match (sk, sd) with
      | In_set, In_set -> Some (List.remove_assoc drop p)
      | In_set, _ | _, In_set -> None
      | Dominated, _ | _, Dominated ->
          Some (set_status (List.remove_assoc drop p) keep Dominated)
      | Undominated, Undominated -> Some (List.remove_assoc drop p)
    in
    {
      slot_list = List.filter (fun x -> x <> drop) st.slot_list;
      table =
        canonical
          (List.filter_map
             (fun (p, c) -> Option.map (fun p -> (p, c)) (combine p))
             st.table);
    }

  let rename st ~old_slot ~new_slot =
    if List.mem new_slot st.slot_list then
      invalid_arg "Dominating_set.rename: slot exists";
    let r s = if s = old_slot then new_slot else s in
    {
      slot_list = List.sort compare (List.map r st.slot_list);
      table =
        canonical
          (List.map
             (fun (p, c) ->
               (List.sort compare (List.map (fun (s, v) -> (r s, v)) p), c))
             st.table);
    }

  let slots st = st.slot_list

  let accepts st =
    assert (st.slot_list = []);
    List.exists (fun (_, c) -> c <= P.budget) st.table

  let equal a b = a.slot_list = b.slot_list && a.table = b.table

  let encode w st =
    Bitenc.varint w (List.length st.slot_list);
    List.iter (fun s -> Bitenc.varint w (abs s)) st.slot_list;
    Bitenc.varint w (List.length st.table);
    List.iter
      (fun (p, c) ->
        List.iter
          (fun s ->
            let v =
              match status_of p s with
              | In_set -> 0
              | Dominated -> 1
              | Undominated -> 2
            in
            Bitenc.bits w ~width:2 v)
          st.slot_list;
        Bitenc.varint w c)
      st.table

  let packed_layout =
    { Lcp_util.Packed_state.fixed_words = 2; words_per_slot = 8 }

  let pack buf st =
    let module P = Lcp_util.Packed_state in
    P.push_list buf P.Buf.push st.slot_list;
    P.push_list buf
      (fun b (p, cnt) ->
        P.push_list b
          (fun b (s, v) ->
            P.Buf.push b s;
            P.Buf.push b
              (match v with In_set -> 0 | Dominated -> 1 | Undominated -> 2))
          p;
        P.Buf.push b cnt)
      st.table

  let unpack c =
    let module P = Lcp_util.Packed_state in
    let slot_list = P.read_list c P.read in
    let table =
      P.read_list c (fun c ->
          let p =
            P.read_list c (fun c ->
                let s = P.read c in
                let v =
                  match P.read c with
                  | 0 -> In_set
                  | 1 -> Dominated
                  | 2 -> Undominated
                  | _ -> invalid_arg "Dominating_set.unpack: bad status"
                in
                (s, v))
          in
          let cnt = P.read c in
          (p, cnt))
    in
    { slot_list; table }

  let pp ppf st =
    Format.fprintf ppf "ds<=%d(slots=%s; %d profiles)" P.budget
      (String.concat "," (List.map string_of_int st.slot_list))
      (List.length st.table)

  let oracle g =
    let module Graph = Lcp_graph.Graph in
    let n = Graph.n g in
    let dominated chosen =
      List.init n (fun v -> v)
      |> List.for_all (fun v ->
             List.mem v chosen
             || List.exists (fun w -> List.mem w chosen) (Graph.neighbors g v))
    in
    let rec subsets v chosen budget =
      if dominated chosen then true
      else if v = n || budget = 0 then false
      else subsets (v + 1) (v :: chosen) (budget - 1) || subsets (v + 1) chosen budget
    in
    subsets 0 [] P.budget
end

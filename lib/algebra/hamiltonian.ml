(** Hamiltonicity algebras (Hamiltonian cycle / Hamiltonian path).

    A profile describes a partial edge subset F that could still grow into
    a Hamiltonian cycle (or path): each boundary vertex is an endpoint of an
    open F-segment (a trivial segment [(s,s)] means degree 0), or an
    interior (degree-2) vertex of a segment; segments record their two
    endpoints. Forgotten vertices must be interior — except, for the path
    variant, up to two dangling ends ([Gone]). The state is the set of
    achievable profiles. *)

module Bitenc = Lcp_util.Bitenc

type endp = Slot of int | Gone

type profile = {
  segs : (endp * endp) list; (* sorted, each pair ordered *)
  interior : int list; (* sorted *)
  closed : bool;
}

type variant = Cycle | Path

module Common (V : sig
  val variant : variant
end) =
struct
  type state = {
    slot_list : int list;
    profiles : profile list; (* sorted set *)
  }

  let norm_pair (a, b) = if a <= b then (a, b) else (b, a)

  let norm p =
    {
      segs = List.sort compare (List.map norm_pair p.segs);
      interior = List.sort compare p.interior;
      closed = p.closed;
    }

  let viable p =
    (* prune dead profiles *)
    let gone_gone = List.filter (fun s -> s = (Gone, Gone)) p.segs in
    (match V.variant with
    | Cycle -> gone_gone = [] && true
    | Path -> (not p.closed) && List.length gone_gone <= 1)
    && ((not p.closed) || V.variant = Cycle)

  let canonical ps =
    ps |> List.filter viable |> List.map norm |> List.sort_uniq compare

  let empty = { slot_list = []; profiles = [ { segs = []; interior = []; closed = false } ] }

  let introduce st s =
    if List.mem s st.slot_list then
      invalid_arg "Hamiltonian.introduce: slot exists";
    {
      slot_list = List.sort compare (s :: st.slot_list);
      profiles =
        canonical
          (List.map
             (fun p -> { p with segs = (Slot s, Slot s) :: p.segs })
             st.profiles);
    }

  (* the segment having [Slot s] as an endpoint, if any *)
  let seg_of p s =
    List.find_opt (fun (a, b) -> a = Slot s || b = Slot s) p.segs

  let is_trivial (a, b) = a = b

  let other_end (a, b) s = if a = Slot s then b else a

  (* use the host edge a-b as an F-edge, if legal *)
  let use_edge p a b =
    match (seg_of p a, seg_of p b) with
    | Some sa, Some sb when sa = sb && not (is_trivial sa) ->
        (* closing a cycle *)
        if p.closed || V.variant = Path then None
        else
          Some
            {
              segs = List.filter (fun s -> s <> sa) p.segs;
              interior = a :: b :: p.interior;
              closed = true;
            }
    | Some sa, Some sb when sa <> sb ->
        let oa = other_end sa a and ob = other_end sb b in
        let consumed_a = if is_trivial sa then [] else [ a ] in
        let consumed_b = if is_trivial sb then [] else [ b ] in
        let oa = if is_trivial sa then Slot a else oa in
        let ob = if is_trivial sb then Slot b else ob in
        Some
          {
            segs =
              norm_pair (oa, ob)
              :: List.filter (fun s -> s <> sa && s <> sb) p.segs;
            interior = consumed_a @ consumed_b @ p.interior;
            closed = p.closed;
          }
    | _ -> None (* an endpoint is interior, or a trivial self-pairing *)

  let add_edge st a b =
    {
      st with
      profiles =
        canonical
          (st.profiles
          @ List.filter_map (fun p -> use_edge p a b) st.profiles);
    }

  let forget st s =
    let forget_one p =
      if List.mem s p.interior then
        Some { p with interior = List.filter (fun x -> x <> s) p.interior }
      else
        match seg_of p s with
        | None -> invalid_arg "Hamiltonian.forget: unknown slot"
        | Some seg -> (
            match V.variant with
            | Cycle -> None (* the vertex would end with degree < 2 *)
            | Path ->
                let replace e = if e = Slot s then Gone else e in
                let (x, y) = seg in
                Some
                  {
                    p with
                    segs =
                      norm_pair (replace x, replace y)
                      :: List.filter (fun sg -> sg <> seg) p.segs;
                  })
    in
    {
      slot_list = List.filter (fun x -> x <> s) st.slot_list;
      profiles = canonical (List.filter_map forget_one st.profiles);
    }

  let union sa sb =
    if List.exists (fun s -> List.mem s sb.slot_list) sa.slot_list then
      invalid_arg "Hamiltonian.union: slot sets not disjoint";
    let combine pa pb =
      if pa.closed && pb.closed then None
      else
        Some
          {
            segs = pa.segs @ pb.segs;
            interior = pa.interior @ pb.interior;
            closed = pa.closed || pb.closed;
          }
    in
    {
      slot_list = List.sort compare (sa.slot_list @ sb.slot_list);
      profiles =
        canonical
          (List.concat_map
             (fun pa -> List.filter_map (combine pa) sb.profiles)
             sa.profiles);
    }

  let identify st ~keep ~drop =
    let merge p =
      let role s =
        if List.mem s p.interior then `Interior
        else
          match seg_of p s with
          | Some seg when is_trivial seg -> `Trivial seg
          | Some seg -> `End seg
          | None -> invalid_arg "Hamiltonian.identify: unknown slot"
      in
      let drop_seg seg p = { p with segs = List.filter (fun s -> s <> seg) p.segs } in
      let rename_slot p =
        let r e = if e = Slot drop then Slot keep else e in
        {
          p with
          segs = List.map (fun (a, b) -> norm_pair (r a, r b)) p.segs;
          interior =
            List.map (fun x -> if x = drop then keep else x) p.interior;
        }
      in
      match (role keep, role drop) with
      | `Trivial tk, `Trivial td ->
          (* degree 0 + 0: one isolated vertex *)
          ignore tk;
          Some (drop_seg td p)
      | `Trivial tk, (`End _ | `Interior) ->
          Some (rename_slot (drop_seg tk p))
      | (`End _ | `Interior), `Trivial td ->
          Some (drop_seg td p)
      | `End sk, `End sd when sk = sd ->
          (* the glued vertex closes its own segment into a cycle *)
          if p.closed || V.variant = Path then None
          else
            Some
              {
                segs = List.filter (fun s -> s <> sk) p.segs;
                interior = keep :: p.interior;
                closed = true;
              }
      | `End sk, `End sd ->
          let ok = other_end sk keep and od = other_end sd drop in
          Some
            {
              segs =
                norm_pair (ok, od)
                :: List.filter (fun s -> s <> sk && s <> sd) p.segs;
              interior = keep :: p.interior;
              closed = p.closed;
            }
      | `Interior, `Interior | `End _, `Interior | `Interior, `End _ ->
          None (* degree would exceed 2 *)
    in
    {
      slot_list = List.filter (fun x -> x <> drop) st.slot_list;
      profiles = canonical (List.filter_map merge st.profiles);
    }

  let rename st ~old_slot ~new_slot =
    if List.mem new_slot st.slot_list then
      invalid_arg "Hamiltonian.rename: slot exists";
    let re e = if e = Slot old_slot then Slot new_slot else e in
    {
      slot_list =
        List.sort compare
          (List.map (fun s -> if s = old_slot then new_slot else s) st.slot_list);
      profiles =
        canonical
          (List.map
             (fun p ->
               {
                 p with
                 segs = List.map (fun (a, b) -> norm_pair (re a, re b)) p.segs;
                 interior =
                   List.map
                     (fun x -> if x = old_slot then new_slot else x)
                     p.interior;
               })
             st.profiles);
    }

  let slots st = st.slot_list

  let accepts st =
    assert (st.slot_list = []);
    List.exists
      (fun p ->
        match V.variant with
        | Cycle -> p.closed && p.segs = [] && p.interior = []
        | Path ->
            (not p.closed) && p.interior = [] && p.segs = [ (Gone, Gone) ])
      st.profiles

  let equal a b = a.slot_list = b.slot_list && a.profiles = b.profiles

  let encode_endp w slot_list e =
    match e with
    | Gone -> Bitenc.varint w 0
    | Slot s ->
        let idx = ref 0 in
        List.iteri (fun i x -> if x = s then idx := i + 1) slot_list;
        Bitenc.varint w !idx

  let encode w st =
    Bitenc.varint w (List.length st.slot_list);
    List.iter (fun s -> Bitenc.varint w (abs s)) st.slot_list;
    Bitenc.varint w (List.length st.profiles);
    List.iter
      (fun p ->
        Bitenc.varint w (List.length p.segs);
        List.iter
          (fun (a, b) ->
            encode_endp w st.slot_list a;
            encode_endp w st.slot_list b)
          p.segs;
        List.iter (fun s -> Bitenc.bit w (List.mem s p.interior)) st.slot_list;
        Bitenc.bit w p.closed)
      st.profiles

  let packed_layout =
    { Lcp_util.Packed_state.fixed_words = 2; words_per_slot = 12 }

  (* endpoints as a tag word plus, for [Slot], the raw (possibly
     negative temp) slot id — total and injective, unlike [encode]'s
     boundary-index form *)
  let push_endp b e =
    match e with
    | Gone -> Lcp_util.Packed_state.Buf.push b 0
    | Slot s ->
        Lcp_util.Packed_state.Buf.push b 1;
        Lcp_util.Packed_state.Buf.push b s

  let read_endp c =
    match Lcp_util.Packed_state.read c with
    | 0 -> Gone
    | 1 -> Slot (Lcp_util.Packed_state.read c)
    | _ -> invalid_arg "Hamiltonian.unpack: bad endpoint tag"

  let pack buf st =
    let module P = Lcp_util.Packed_state in
    P.push_list buf P.Buf.push st.slot_list;
    P.push_list buf
      (fun b p ->
        P.push_list b
          (fun b (x, y) ->
            push_endp b x;
            push_endp b y)
          p.segs;
        P.push_list b P.Buf.push p.interior;
        P.push_bool b p.closed)
      st.profiles

  let unpack c =
    let module P = Lcp_util.Packed_state in
    let slot_list = P.read_list c P.read in
    let profiles =
      P.read_list c (fun c ->
          let segs =
            P.read_list c (fun c ->
                let x = read_endp c in
                let y = read_endp c in
                (x, y))
          in
          let interior = P.read_list c P.read in
          let closed = P.read_bool c in
          { segs; interior; closed })
    in
    { slot_list; profiles }

  let pp ppf st =
    Format.fprintf ppf "ham(slots=%s; %d profiles)"
      (String.concat "," (List.map string_of_int st.slot_list))
      (List.length st.profiles)
end

module Cycle_alg = struct
  include Common (struct
    let variant = Cycle
  end)

  let name = "hamiltonian_cycle"
  let description = "the graph has a Hamiltonian cycle"

  let oracle g =
    let module Graph = Lcp_graph.Graph in
    let n = Graph.n g in
    if n < 3 then false
    else begin
      let seen = Array.make n false in
      let rec go v count =
        if count = n then Graph.mem_edge g v 0
        else
          List.exists
            (fun w ->
              (not seen.(w))
              && begin
                   seen.(w) <- true;
                   let ok = go w (count + 1) in
                   seen.(w) <- false;
                   ok
                 end)
            (Graph.neighbors g v)
      in
      seen.(0) <- true;
      go 0 1
    end
end

module Path_alg = struct
  include Common (struct
    let variant = Path
  end)

  let name = "hamiltonian_path"
  let description = "the graph has a Hamiltonian path"

  let oracle g =
    let module Graph = Lcp_graph.Graph in
    let n = Graph.n g in
    n > 0 && Lcp_graph.Traversal.longest_path_length g = n
end

(** The perfect-matching algebra: the state is the set of achievable
    "profiles", where a profile is the set of boundary vertices already
    covered by the partial matching and every non-boundary vertex is
    required to be covered. A graph has a perfect matching iff the full
    profile is achievable once the boundary is empty. *)

module Bitenc = Lcp_util.Bitenc

type profile = int list (* sorted subset of slots that are matched *)

type state = {
  slot_list : int list;
  profiles : profile list; (* sorted set *)
}

let name = "perfect_matching"
let description = "the graph admits a perfect matching"

let empty = { slot_list = []; profiles = [ [] ] }

let canonical ps = List.sort_uniq compare ps

let introduce st s =
  if List.mem s st.slot_list then invalid_arg "Matching.introduce: slot exists";
  { st with slot_list = List.sort compare (s :: st.slot_list) }

let add_edge st a b =
  let use p =
    if List.mem a p || List.mem b p then None
    else Some (List.sort compare (a :: b :: p))
  in
  {
    st with
    profiles = canonical (st.profiles @ List.filter_map use st.profiles);
  }

let forget st s =
  {
    slot_list = List.filter (fun x -> x <> s) st.slot_list;
    profiles =
      canonical
        (List.filter_map
           (fun p ->
             if List.mem s p then Some (List.filter (fun x -> x <> s) p)
             else None)
           st.profiles);
  }

let union a b =
  if List.exists (fun s -> List.mem s b.slot_list) a.slot_list then
    invalid_arg "Matching.union: slot sets not disjoint";
  {
    slot_list = List.sort compare (a.slot_list @ b.slot_list);
    profiles =
      canonical
        (List.concat_map
           (fun pa -> List.map (fun pb -> List.sort compare (pa @ pb)) b.profiles)
           a.profiles);
  }

let identify st ~keep ~drop =
  let merge p =
    match (List.mem keep p, List.mem drop p) with
    | true, true -> None (* the glued vertex would be doubly matched *)
    | false, false -> Some p
    | _ ->
        Some (List.sort_uniq compare (keep :: List.filter (fun x -> x <> drop) p))
  in
  {
    slot_list = List.filter (fun x -> x <> drop) st.slot_list;
    profiles = canonical (List.filter_map merge st.profiles);
  }

let rename st ~old_slot ~new_slot =
  if List.mem new_slot st.slot_list then invalid_arg "Matching.rename: slot exists";
  let r s = if s = old_slot then new_slot else s in
  {
    slot_list = List.sort compare (List.map r st.slot_list);
    profiles = canonical (List.map (fun p -> List.sort compare (List.map r p)) st.profiles);
  }

let slots st = st.slot_list

let accepts st =
  assert (st.slot_list = []);
  List.mem [] st.profiles

let equal a b = a.slot_list = b.slot_list && a.profiles = b.profiles

let encode w st =
  Bitenc.varint w (List.length st.slot_list);
  List.iter (fun s -> Bitenc.varint w (abs s)) st.slot_list;
  Bitenc.varint w (List.length st.profiles);
  List.iter
    (fun p ->
      (* profile as a bitmap over the sorted slot list *)
      List.iter (fun s -> Bitenc.bit w (List.mem s p)) st.slot_list)
    st.profiles

(* inverse of [encode] for nonnegative slot names (host vertex ids):
   profiles come back as bitmaps over the sorted slot list *)
let decode r =
  let rec read_n n f = if n <= 0 then [] else
    let x = f () in
    x :: read_n (n - 1) f
  in
  let nslots = Bitenc.read_varint r in
  let slot_list = read_n nslots (fun () -> Bitenc.read_varint r) in
  let nprofiles = Bitenc.read_varint r in
  (* one bit per slot, read strictly in slot order *)
  let rec read_profile = function
    | [] -> []
    | s :: rest ->
        let b = Bitenc.read_bit r in
        if b then s :: read_profile rest else read_profile rest
  in
  let profiles = read_n nprofiles (fun () -> read_profile slot_list) in
  { slot_list; profiles = canonical profiles }

let packed_layout = { Lcp_util.Packed_state.fixed_words = 2; words_per_slot = 8 }

let pack buf st =
  let module P = Lcp_util.Packed_state in
  P.push_list buf P.Buf.push st.slot_list;
  P.push_list buf (fun b p -> P.push_list b P.Buf.push p) st.profiles

let unpack c =
  let module P = Lcp_util.Packed_state in
  let slot_list = P.read_list c P.read in
  let profiles = P.read_list c (fun c -> P.read_list c P.read) in
  { slot_list; profiles }

let pp ppf st =
  Format.fprintf ppf "pm(slots=%s; %d profiles)"
    (String.concat "," (List.map string_of_int st.slot_list))
    (List.length st.profiles)

(* brute force: match the first uncovered vertex with some neighbor *)
let oracle g =
  let module Graph = Lcp_graph.Graph in
  let n = Graph.n g in
  let covered = Array.make n false in
  let rec go v =
    if v = n then true
    else if covered.(v) then go (v + 1)
    else
      List.exists
        (fun w ->
          if covered.(w) || w < v then false
          else begin
            covered.(v) <- true;
            covered.(w) <- true;
            let ok = go (v + 1) in
            covered.(v) <- false;
            covered.(w) <- false;
            ok
          end)
        (Graph.neighbors g v)
  in
  if n mod 2 = 1 then false else go 0

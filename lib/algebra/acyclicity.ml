(** The acyclicity (forest) algebra: partition of the boundary by tree
    component, capped pairwise distances between boundary slots of the
    same component, plus a sticky "cycle seen" flag.

    The distances are what make the algebra exact under *simple-graph*
    composition (Def 2.3): gluing two vertices of one tree component
    creates a self-loop when they are adjacent (distance 1) and a
    parallel edge when they share a neighbor (distance 2) — both vanish
    when the composed graph is flattened to a simple graph — and only a
    genuine cycle at distance >= 3. Distances are capped at 3 ("3 or
    more"), which the min-plus composition updates preserve exactly, so
    the state space stays finite. *)

module Bitenc = Lcp_util.Bitenc

module Pair = struct
  type t = int * int

  let compare = compare
end

module PM = Map.Make (Pair)

type state = {
  partition : Slot_partition.t;
  dists : int PM.t;
      (* capped distance (1..3) for every unordered pair of distinct
         slots in the same partition class; keys are (min, max) *)
  cyclic : bool;
}

let name = "acyclic"
let description = "the graph has no cycle (is a forest)"
let empty = { partition = Slot_partition.empty; dists = PM.empty; cyclic = false }

(* 3 means "3 or more": every threshold the algebra needs (self-loop at 1,
   parallel edge at 2, real cycle at >= 3) is decidable under this cap,
   and saturating min-plus keeps it exact. *)
let cap d = min d 3

let key a b = if a < b then (a, b) else (b, a)

(* total on malformed states: honestly built states record a distance for
   every same-class pair, but a state decoded from an adversarial label
   need not — treat a missing pair as "far" so that verification
   recomputes a mismatching state (and rejects) instead of crashing *)
let get dists x y =
  if x = y then 0
  else match PM.find_opt (key x y) dists with Some d -> d | None -> 3

let set dists x y d = if x = y then dists else PM.add (key x y) (cap d) dists
let drop_slot dists s = PM.filter (fun (a, b) _ -> a <> s && b <> s) dists

(* likewise total: an unknown slot (possible only in a decoded adversarial
   state) acts as its own singleton class *)
let class_of partition s =
  match List.find_opt (List.mem s) (Slot_partition.classes partition) with
  | Some c -> c
  | None -> [ s ]

let introduce st s =
  { st with partition = Slot_partition.add_singleton st.partition s }

(* a–b become connected through a new link of length [extra] (1 for an
   edge, 0 for an identification); their components were disjoint, so
   every new finite distance crosses the link exactly once *)
let connect st a b ~extra =
  let ca = class_of st.partition a and cb = class_of st.partition b in
  let dists =
    List.fold_left
      (fun acc x ->
        List.fold_left
          (fun acc y -> set acc x y (get st.dists x a + extra + get st.dists b y))
          acc cb)
      st.dists ca
  in
  { st with partition = Slot_partition.merge st.partition a b; dists }

(* a–b gain a second connection of length [extra] inside one component:
   relax every pair through it (a shortest route uses it at most once) *)
let relax st a b ~extra =
  let cls = class_of st.partition a in
  let dists =
    List.fold_left
      (fun acc x ->
        List.fold_left
          (fun acc y ->
            if x >= y then acc
            else
              let d = get st.dists x y in
              let via =
                min
                  (get st.dists x a + extra + get st.dists b y)
                  (get st.dists x b + extra + get st.dists a y)
              in
              set acc x y (min d via))
          acc cls)
      st.dists cls
  in
  { st with dists }

let add_edge st a b =
  if Slot_partition.same_class st.partition a b then
    if get st.dists a b = 1 then st
      (* duplicate of an existing edge: collapses in the simple graph *)
    else { (relax st a b ~extra:1) with cyclic = true }
  else connect st a b ~extra:1

let forget st s =
  let partition, _ = Slot_partition.remove st.partition s in
  (* interior vertices keep carrying paths, so the other distances stand *)
  { st with partition; dists = drop_slot st.dists s }

let union a b =
  {
    partition = Slot_partition.union a.partition b.partition;
    dists = PM.union (fun _ _ _ -> assert false) a.dists b.dists;
    cyclic = a.cyclic || b.cyclic;
  }

let identify st ~keep ~drop =
  let st =
    if Slot_partition.same_class st.partition keep drop then begin
      (* gluing within one tree: distance 1 folds a self-loop away,
         distance 2 collapses a parallel edge, distance >= 3 closes a
         genuine cycle of the simple graph *)
      let cyclic = st.cyclic || get st.dists keep drop >= 3 in
      { (relax st keep drop ~extra:0) with cyclic }
    end
    else connect st keep drop ~extra:0
  in
  (* [keep] and [drop] were just merged, so removing [drop] cannot empty
     the class on honest states; on adversarial ones we simply proceed *)
  let partition, _emptied = Slot_partition.remove st.partition drop in
  { st with partition; dists = drop_slot st.dists drop }

let rename st ~old_slot ~new_slot =
  {
    st with
    partition = Slot_partition.rename st.partition ~old_slot ~new_slot;
    dists =
      PM.fold
        (fun (a, b) d acc ->
          let r s = if s = old_slot then new_slot else s in
          PM.add (key (r a) (r b)) d acc)
        st.dists PM.empty;
  }

let slots st = Slot_partition.slots st.partition

let accepts st =
  (* a complete evaluation has no boundary left; a decoded adversarial
     state might — such a state accepts nothing *)
  slots st = [] && not st.cyclic

let equal a b =
  Slot_partition.equal a.partition b.partition
  && PM.equal ( = ) a.dists b.dists
  && a.cyclic = b.cyclic

let encode w st =
  Slot_partition.encode w st.partition;
  Bitenc.varint w (PM.cardinal st.dists);
  PM.iter
    (fun (a, b) d ->
      Bitenc.varint w (abs a);
      Bitenc.varint w (abs b);
      Bitenc.varint w d)
    st.dists;
  Bitenc.bit w st.cyclic

let decode r =
  let partition = Slot_partition.decode r in
  let count = Bitenc.read_varint r in
  let dists = ref PM.empty in
  for _ = 1 to count do
    let a = Bitenc.read_varint r in
    let b = Bitenc.read_varint r in
    let d = Bitenc.read_varint r in
    dists := PM.add (key a b) (cap d) !dists
  done;
  let cyclic = Bitenc.read_bit r in
  { partition; dists = !dists; cyclic }

let packed_layout = { Lcp_util.Packed_state.fixed_words = 3; words_per_slot = 8 }

(* distances go down as sorted [PM] bindings, so the packed image is a
   function of the bindings alone: two maps with equal bindings but
   different tree shapes pack identically, which is exactly the
   granularity [equal] (PM.equal) and [encode] (PM.iter) observe *)
let pack buf st =
  let module P = Lcp_util.Packed_state in
  Slot_partition.pack buf st.partition;
  P.Buf.push buf (PM.cardinal st.dists);
  PM.iter
    (fun (a, b) d ->
      P.Buf.push buf a;
      P.Buf.push buf b;
      P.Buf.push buf d)
    st.dists;
  P.push_bool buf st.cyclic

let unpack c =
  let module P = Lcp_util.Packed_state in
  let partition = Slot_partition.unpack c in
  let n = P.read c in
  let dists = ref PM.empty in
  for _ = 1 to n do
    let a = P.read c in
    let b = P.read c in
    let d = P.read c in
    dists := PM.add (a, b) d !dists
  done;
  let cyclic = P.read_bool c in
  { partition; dists = !dists; cyclic }

let pp ppf st =
  Format.fprintf ppf "acyclic(%a;%a cyclic=%b)" Slot_partition.pp st.partition
    (fun ppf m ->
      PM.iter (fun (a, b) d -> Format.fprintf ppf " d(%d,%d)=%d" a b d) m)
    st.dists st.cyclic

let oracle = Lcp_graph.Traversal.is_acyclic

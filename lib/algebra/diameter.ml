module Bitenc = Lcp_util.Bitenc

module type PARAM = sig
  val d : int
end

module Make (P : PARAM) = struct
  let cap = P.d + 1 (* the "> d" class; all arithmetic saturates here *)

  type vector = (int * int) list (* slot ↦ distance, sorted by slot *)

  type state = {
    slot_list : int list;
    metric : ((int * int) * int) list;
        (* canonical slot pairs ↦ distance < cap; missing = cap; closed *)
    vectors : vector list; (* sorted set of forgotten-vertex classes *)
    multi : vector list; (* classes held by ≥ 2 vertices *)
    pending : ((vector * vector) * int) list;
        (* unordered class pairs ↦ best distance so far (≤ cap) *)
    bad : bool; (* final verdict, set when the last slot is forgotten *)
    sealed : bool; (* no slots remain; [bad] is final *)
  }

  let name = Printf.sprintf "diameter<=%d" P.d
  let description = Printf.sprintf "every two vertices are within distance %d" P.d

  let sat x y = min cap (x + y)
  let norm (a, b) = if a <= b then (a, b) else (b, a)

  let mdist st a b =
    if a = b then 0
    else match List.assoc_opt (norm (a, b)) st.metric with
      | Some x -> x
      | None -> cap

  let set_metric metric a b v =
    if v >= cap then List.remove_assoc (norm (a, b)) metric
    else ((norm (a, b)), v) :: List.remove_assoc (norm (a, b)) metric

  (* Floyd–Warshall closure over the (small) slot set *)
  let close st =
    let m = ref st.metric in
    let dist a b =
      if a = b then 0
      else match List.assoc_opt (norm (a, b)) !m with Some x -> x | None -> cap
    in
    List.iter
      (fun via ->
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                if a < b then begin
                  let through = sat (dist a via) (dist via b) in
                  if through < dist a b then m := set_metric !m a b through
                end)
              st.slot_list)
          st.slot_list)
      st.slot_list;
    { st with metric = List.sort compare !m }

  let vec_get v s = match List.assoc_opt s v with Some x -> x | None -> cap

  (* refresh a vector through the closed metric *)
  let refresh_vector st v =
    List.map
      (fun s ->
        let best =
          List.fold_left
            (fun acc (s', x) -> min acc (sat x (mdist st s' s)))
            (vec_get v s) v
        in
        (s, best))
      (List.sort compare (List.map fst v))

  (* relax a pending pair through the current boundary *)
  let via_boundary st w w' =
    List.fold_left
      (fun acc (s, x) ->
        List.fold_left
          (fun acc (s', x') -> min acc (sat x (sat (mdist st s s') x')))
          acc w')
      cap w

  let pkey w w' = if w <= w' then (w, w') else (w', w)

  (* relaxation of one pair: distances only improve *)
  let pending_add pending key v =
    let cur = match List.assoc_opt key pending with Some x -> x | None -> cap in
    if v >= cur then pending
    else (key, v) :: List.remove_assoc key pending

  (* key collision from class merging: the entries describe DIFFERENT
     vertex pairs that have become indistinguishable; the verdict must
     hold for the worst of them, and the future relaxation term is the
     same for all, so keep the maximum *)
  let pending_merge pending key v =
    match List.assoc_opt key pending with
    | Some cur when cur >= v -> pending
    | Some _ -> (key, v) :: List.remove_assoc key pending
    | None -> (key, v) :: pending

  (* after any metric change or slot change: refresh vectors (classes may
     merge), remap and relax pending *)
  let refresh st =
    let st = close st in
    let renames =
      List.map (fun v -> (v, refresh_vector st v)) st.vectors
    in
    let lookup v = List.assoc v renames in
    let new_vectors = List.sort_uniq compare (List.map snd renames) in
    (* classes that merge, or that were already multi, are multi *)
    let multi =
      let from_old = List.map (fun v -> lookup v) st.multi in
      let collisions =
        List.filter
          (fun nv ->
            List.length (List.filter (fun (_, nv') -> nv' = nv) renames) >= 2)
          new_vectors
      in
      List.sort_uniq compare (from_old @ collisions)
    in
    let pending =
      List.fold_left
        (fun acc ((w, w'), dist) ->
          pending_merge acc
            (pkey (refresh_vector st w) (refresh_vector st w'))
            dist)
        [] st.pending
    in
    (* relax every pair (and multi self-pairs) through the boundary *)
    let pending =
      List.fold_left
        (fun acc w ->
          List.fold_left
            (fun acc w' ->
              if w < w' || (w = w' && List.mem w multi) then
                pending_add acc (pkey w w') (via_boundary st w w')
              else acc)
            acc new_vectors)
        pending new_vectors
    in
    { st with vectors = new_vectors; multi; pending = List.sort compare pending }

  let empty =
    {
      slot_list = [];
      metric = [];
      vectors = [];
      multi = [];
      pending = [];
      bad = false;
      sealed = false;
    }

  let introduce st s =
    if List.mem s st.slot_list then invalid_arg "Diameter.introduce: slot exists";
    if st.sealed then
      (* the sealed part had vertices and can never connect to the new
         one: the diameter is infinite *)
      { empty with slot_list = [ s ]; bad = true }
    else begin
      let extend v = List.sort compare ((s, cap) :: v) in
      refresh
        {
          st with
          slot_list = List.sort compare (s :: st.slot_list);
          vectors = List.map extend st.vectors;
          multi = List.map extend st.multi;
          pending =
            List.map
              (fun ((w, w'), x) -> (pkey (extend w) (extend w'), x))
              st.pending;
          sealed = false;
        }
    end

  let add_edge st a b =
    let m = if 1 < mdist st a b then set_metric st.metric a b 1 else st.metric in
    refresh { st with metric = m }

  let forget st s =
    let st = refresh st in
    let remaining = List.filter (fun x -> x <> s) st.slot_list in
    (* sealed distance from the vertex being forgotten to each class *)
    let dist_to_class w =
      List.fold_left
        (fun acc (x, dx) -> min acc (sat dx (mdist st x s)))
        cap w
    in
    if remaining = [] then begin
      (* the last slot: no edge can ever be added again, so every pair's
         verdict is final — judge BEFORE the keys collapse *)
      let bad =
        st.bad
        || List.exists (fun ((_, _), x) -> x > P.d) st.pending
        || List.exists (fun w -> dist_to_class w > P.d) st.vectors
      in
      {
        slot_list = [];
        metric = [];
        bad;
        sealed = true;
        vectors = [];
        multi = [];
        pending = [];
      }
    end
    else begin
      let v_full = List.map (fun x -> (x, mdist st s x)) st.slot_list in
      let drop_s v = List.filter (fun (x, _) -> x <> s) v in
      let v_new = drop_s (List.sort compare v_full) in
      (* pairs between the newly sealed vertex and every class *)
      let pending =
        List.fold_left
          (fun acc w ->
            pending_merge acc (pkey (drop_s w) v_new) (dist_to_class w))
          [] st.vectors
      in
      (* carry existing pairs, worst-of on key collisions *)
      let pending =
        List.fold_left
          (fun acc ((w, w'), x) ->
            pending_merge acc (pkey (drop_s w) (drop_s w')) x)
          pending st.pending
      in
      let collided = List.exists (fun w -> drop_s w = v_new) st.vectors in
      let dropped = List.map drop_s st.vectors in
      (* dropping the column can merge previously distinct classes *)
      let merged_multi =
        List.filter
          (fun v -> List.length (List.filter (fun v' -> v' = v) dropped) >= 2)
          (List.sort_uniq compare dropped)
      in
      let vectors = List.sort_uniq compare (v_new :: dropped) in
      let multi =
        List.sort_uniq compare
          ((if collided then [ v_new ] else [])
          @ merged_multi
          @ List.map drop_s st.multi)
      in
      refresh { st with slot_list = remaining; vectors; multi; pending }
    end

  let union a b =
    if List.exists (fun s -> List.mem s b.slot_list) a.slot_list then
      invalid_arg "Diameter.union: slot sets not disjoint";
    (* a sealed non-trivial side can never connect to the other side *)
    let side_has_vertices st =
      st.slot_list <> [] || st.vectors <> [] || st.sealed
    in
    let cross_bad =
      (a.sealed && side_has_vertices b && side_has_vertices a)
      || (b.sealed && side_has_vertices a && side_has_vertices b)
    in
    let extend other v =
      List.sort compare (v @ List.map (fun s -> (s, cap)) other.slot_list)
    in
    let va = List.map (extend b) a.vectors in
    let vb = List.map (extend a) b.vectors in
    let pending =
      List.fold_left
        (fun acc ((w, w'), x) ->
          pending_merge acc (pkey (extend b w) (extend b w')) x)
        [] a.pending
    in
    let pending =
      List.fold_left
        (fun acc ((w, w'), x) ->
          pending_merge acc (pkey (extend a w) (extend a w')) x)
        pending b.pending
    in
    (* cross pairs start unreachable *)
    let pending =
      List.fold_left
        (fun acc w ->
          List.fold_left
            (fun acc w' -> pending_merge acc (pkey w w') cap)
            acc vb)
        pending va
    in
    (* identical vectors across the two sides merge into one class with
       members on both sides *)
    let cross_multi = List.filter (fun w -> List.mem w vb) va in
    refresh
      {
        slot_list = List.sort compare (a.slot_list @ b.slot_list);
        metric = List.sort compare (a.metric @ b.metric);
        vectors = List.sort_uniq compare (va @ vb);
        multi =
          List.sort_uniq compare
            (cross_multi
            @ List.map (extend b) a.multi
            @ List.map (extend a) b.multi);
        pending = List.sort compare pending;
        bad = a.bad || b.bad || cross_bad;
        sealed = false;
      }

  let identify st ~keep ~drop =
    (* the two slots are the same vertex: distances merge by minimum *)
    let st = refresh st in
    let metric =
      List.fold_left
        (fun m x ->
          if x = keep || x = drop then m
          else
            let v = min (mdist st keep x) (mdist st drop x) in
            set_metric m keep x v)
        st.metric st.slot_list
    in
    let metric =
      List.filter (fun ((a, b), _) -> a <> drop && b <> drop) metric
    in
    let fold_vec v =
      let vk = min (vec_get v keep) (vec_get v drop) in
      List.sort compare
        ((keep, vk) :: List.filter (fun (x, _) -> x <> keep && x <> drop) v)
    in
    let folded = List.map fold_vec st.vectors in
    let merged_multi =
      List.filter
        (fun v -> List.length (List.filter (fun v' -> v' = v) folded) >= 2)
        (List.sort_uniq compare folded)
    in
    refresh
      {
        st with
        slot_list = List.filter (fun x -> x <> drop) st.slot_list;
        metric = List.sort compare metric;
        vectors = List.sort_uniq compare folded;
        multi =
          List.sort_uniq compare
            (merged_multi @ List.map fold_vec st.multi);
        pending =
          List.fold_left
            (fun acc ((w, w'), x) ->
              pending_merge acc (pkey (fold_vec w) (fold_vec w')) x)
            [] st.pending;
      }

  let rename st ~old_slot ~new_slot =
    if List.mem new_slot st.slot_list then
      invalid_arg "Diameter.rename: slot exists";
    let r x = if x = old_slot then new_slot else x in
    let rvec v = List.sort compare (List.map (fun (s, x) -> (r s, x)) v) in
    {
      st with
      slot_list = List.sort compare (List.map r st.slot_list);
      metric =
        List.sort compare
          (List.map (fun ((a, b), x) -> (norm (r a, r b), x)) st.metric);
      vectors = List.sort_uniq compare (List.map rvec st.vectors);
      multi = List.sort_uniq compare (List.map rvec st.multi);
      pending =
        List.sort compare
          (List.map (fun ((w, w'), x) -> (pkey (rvec w) (rvec w'), x)) st.pending);
    }

  let slots st = st.slot_list

  let accepts st =
    assert (st.slot_list = []);
    not st.bad

  let equal a b =
    a.slot_list = b.slot_list && a.metric = b.metric && a.vectors = b.vectors
    && a.multi = b.multi && a.pending = b.pending && a.bad = b.bad
    && a.sealed = b.sealed

  let encode w st =
    Bitenc.varint w (List.length st.slot_list);
    List.iter (fun s -> Bitenc.varint w (abs s)) st.slot_list;
    Bitenc.varint w (List.length st.metric);
    List.iter
      (fun ((a, b), x) ->
        Bitenc.varint w (abs a);
        Bitenc.varint w (abs b);
        Bitenc.varint w x)
      st.metric;
    let enc_vec v = List.iter (fun (_, x) -> Bitenc.varint w x) v in
    Bitenc.varint w (List.length st.vectors);
    List.iter enc_vec st.vectors;
    Bitenc.varint w (List.length st.multi);
    List.iter enc_vec st.multi;
    Bitenc.varint w (List.length st.pending);
    List.iter
      (fun ((v, v'), x) ->
        enc_vec v;
        enc_vec v';
        Bitenc.varint w x)
      st.pending;
    Bitenc.bit w st.bad;
    Bitenc.bit w st.sealed

  let packed_layout =
    { Lcp_util.Packed_state.fixed_words = 7; words_per_slot = 16 }

  let push_vec b v =
    Lcp_util.Packed_state.push_list b
      (fun b (s, x) ->
        Lcp_util.Packed_state.Buf.push b s;
        Lcp_util.Packed_state.Buf.push b x)
      v

  let read_vec c =
    Lcp_util.Packed_state.read_list c (fun c ->
        let s = Lcp_util.Packed_state.read c in
        let x = Lcp_util.Packed_state.read c in
        (s, x))

  let pack buf st =
    let module P = Lcp_util.Packed_state in
    P.push_list buf P.Buf.push st.slot_list;
    P.push_list buf
      (fun b ((a, bb), x) ->
        P.Buf.push b a;
        P.Buf.push b bb;
        P.Buf.push b x)
      st.metric;
    P.push_list buf push_vec st.vectors;
    P.push_list buf push_vec st.multi;
    P.push_list buf
      (fun b ((v, v'), x) ->
        push_vec b v;
        push_vec b v';
        P.Buf.push b x)
      st.pending;
    P.push_bool buf st.bad;
    P.push_bool buf st.sealed

  let unpack c =
    let module P = Lcp_util.Packed_state in
    let slot_list = P.read_list c P.read in
    let metric =
      P.read_list c (fun c ->
          let a = P.read c in
          let b = P.read c in
          let x = P.read c in
          ((a, b), x))
    in
    let vectors = P.read_list c read_vec in
    let multi = P.read_list c read_vec in
    let pending =
      P.read_list c (fun c ->
          let v = read_vec c in
          let v' = read_vec c in
          let x = P.read c in
          ((v, v'), x))
    in
    let bad = P.read_bool c in
    let sealed = P.read_bool c in
    { slot_list; metric; vectors; multi; pending; bad; sealed }

  let pp ppf st =
    Format.fprintf ppf "diam<=%d(slots=%s; %d classes; %d pending; bad=%b)"
      P.d
      (String.concat "," (List.map string_of_int st.slot_list))
      (List.length st.vectors) (List.length st.pending) st.bad

  let oracle g =
    let module T = Lcp_graph.Traversal in
    let module Graph = Lcp_graph.Graph in
    Graph.n g = 0
    || (T.is_connected g && (Graph.n g = 1 || T.diameter g <= P.d))
end

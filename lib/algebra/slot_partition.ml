type t = int list list
(* canonical: each class sorted ascending; classes sorted by head *)

let canonical classes =
  classes
  |> List.filter (fun c -> c <> [])
  |> List.map (List.sort compare)
  |> List.sort compare

(* The operations below maintain the canonical form incrementally — one
   ordered insertion instead of re-sorting every class — and keep the
   untouched classes physically shared with the input. They reproduce
   the reference [canonical]-based results byte for byte, including on
   adversarial decoded partitions with duplicate or overlapping classes
   (structural filters remove every copy, exactly as the old full
   re-canonicalization did); [rename] falls back to the reference path
   in that adversarial corner. *)

let rec insert_class c = function
  | [] -> [ c ]
  | c' :: rest as l ->
      if compare c c' <= 0 then c :: l else c' :: insert_class c rest

let rec insert_slot s = function
  | [] -> [ s ]
  | x :: rest as l -> if s <= x then s :: l else x :: insert_slot s rest

let empty = []

let mem t s = List.exists (List.mem s) t

let add_singleton t s =
  if mem t s then invalid_arg "Slot_partition.add_singleton: slot exists";
  insert_class [ s ] t

let class_of t s = List.find_opt (List.mem s) t

let merge t a b =
  match (class_of t a, class_of t b) with
  | Some ca, Some cb ->
      if ca == cb || ca = cb then t
      else
        insert_class
          (List.merge compare ca cb)
          (List.filter (fun c -> c <> ca && c <> cb) t)
  | _ -> invalid_arg "Slot_partition.merge: unknown slot"

let same_class t a b =
  match (class_of t a, class_of t b) with
  | Some ca, Some cb -> ca == cb || ca = cb
  | _ -> invalid_arg "Slot_partition.same_class: unknown slot"

let remove t s =
  match class_of t s with
  | None -> invalid_arg "Slot_partition.remove: unknown slot"
  | Some c ->
      let c' = List.filter (fun x -> x <> s) c in
      let rest = List.filter (fun cl -> cl <> c) t in
      if c' = [] then (rest, true) else (insert_class c' rest, false)

let slots t = List.concat t |> List.sort compare

let classes t = t

let class_count t = List.length t

let rename t ~old_slot ~new_slot =
  if mem t new_slot then invalid_arg "Slot_partition.rename: slot exists";
  match class_of t old_slot with
  | None -> t
  | Some c ->
      let rec count_occ n = function
        | [] -> n
        | x :: rest -> count_occ (if x = old_slot then n + 1 else n) rest
      in
      if
        count_occ 0 c = 1
        && not (List.exists (fun cl -> cl != c && List.mem old_slot cl) t)
      then
        let c' =
          insert_slot new_slot (List.filter (fun x -> x <> old_slot) c)
        in
        insert_class c' (List.filter (fun cl -> cl != c) t)
      else
        (* adversarial duplicate/overlap: reference path *)
        canonical
          (List.map
             (List.map (fun x -> if x = old_slot then new_slot else x))
             t)

let union t1 t2 =
  let s1 = slots t1 in
  if List.exists (fun s -> mem t2 s) s1 then
    invalid_arg "Slot_partition.union: slot sets not disjoint";
  List.merge compare t1 t2

let equal a b = a = b
let compare = compare

let encode w t =
  Lcp_util.Bitenc.varint w (List.length t);
  List.iter
    (fun c ->
      Lcp_util.Bitenc.varint w (List.length c);
      List.iter (fun s -> Lcp_util.Bitenc.varint w (abs s)) c)
    t

let rec read_n n f = if n <= 0 then [] else
  let x = f () in
  x :: read_n (n - 1) f

let decode r =
  let nclasses = Lcp_util.Bitenc.read_varint r in
  canonical
    (read_n nclasses (fun () ->
         let size = Lcp_util.Bitenc.read_varint r in
         read_n size (fun () -> Lcp_util.Bitenc.read_varint r)))

let pack buf t =
  Lcp_util.Packed_state.push_list buf
    (fun b c ->
      Lcp_util.Packed_state.push_list b Lcp_util.Packed_state.Buf.push c)
    t

let unpack c =
  Lcp_util.Packed_state.read_list c (fun c ->
      Lcp_util.Packed_state.read_list c Lcp_util.Packed_state.read)

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat " | "
       (List.map
          (fun c -> String.concat "," (List.map string_of_int c))
          t))

(** Canonical partitions of a finite slot set, the shared backbone of the
    connectivity-flavoured algebras (connected, acyclic, bipartite). *)

type t
(** A partition of a set of integer slots into classes, in canonical form
    (classes sorted by minimum element, elements sorted). *)

val empty : t
val add_singleton : t -> int -> t
val merge : t -> int -> int -> t
(** Union the classes of two member slots (no-op if already together). *)

val same_class : t -> int -> int -> bool
val remove : t -> int -> t * bool
(** Drop a slot; the boolean is true when its class became empty. *)

val mem : t -> int -> bool
val slots : t -> int list
val classes : t -> int list list
val class_count : t -> int
val rename : t -> old_slot:int -> new_slot:int -> t
val union : t -> t -> t
(** Disjoint slot sets. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val encode : Lcp_util.Bitenc.writer -> t -> unit

val decode : Lcp_util.Bitenc.reader -> t
(** Inverse of {!encode} for partitions over non-negative slots (encode
    writes absolute values; certification slots are vertex identifiers,
    which are non-negative). *)

val pack : Lcp_util.Packed_state.Buf.t -> t -> unit
(** Flat word encoding (class count, then per class: size and slots);
    literal — no re-canonicalization — so [unpack] is a structural
    inverse. *)

val unpack : Lcp_util.Packed_state.cursor -> t

val pp : Format.formatter -> t -> unit

(** The triangle-freeness algebra: boundary adjacency, the set of boundary
    pairs sharing a forgotten common neighbor, and a sticky triangle flag.
    MSO₂ counterpart: [Lcp_mso.Properties.triangle_free]. *)

include Algebra_sig.ORACLE

val decode : Lcp_util.Bitenc.reader -> state
(** Inverse of [encode] (for states whose slots are vertex ids). *)

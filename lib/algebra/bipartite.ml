(** The bipartiteness (2-colorability) algebra: a parity partition — the
    boundary partitioned into components, each slot carrying its color
    relative to the component's minimum slot — plus a sticky odd-cycle
    flag. This is the compact state (polynomial in the boundary size) that
    replaces the exponential "set of proper colorings" view. *)

module Bitenc = Lcp_util.Bitenc

type state = {
  (* canonical: classes sorted by min slot; within a class slots sorted;
     the minimum slot of each class has parity [false] *)
  classes : (int * bool) list list;
  odd : bool;
}

let name = "bipartite"
let description = "the graph is 2-colorable"

let normalize_class c =
  let c = List.sort compare c in
  match c with
  | [] -> []
  | (_, p0) :: _ -> if p0 then List.map (fun (s, p) -> (s, not p)) c else c

let canonical classes =
  classes
  |> List.filter (fun c -> c <> [])
  |> List.map normalize_class
  |> List.sort compare

let empty = { classes = []; odd = false }

let mem st s = List.exists (List.exists (fun (x, _) -> x = s)) st.classes

let class_and_parity st s =
  let rec go = function
    | [] -> invalid_arg "Bipartite: unknown slot"
    | c :: rest -> (
        match List.assoc_opt s c with
        | Some p -> (c, p)
        | None -> go rest)
  in
  go st.classes

let introduce st s =
  if mem st s then invalid_arg "Bipartite.introduce: slot exists";
  { st with classes = canonical ([ (s, false) ] :: st.classes) }

(* join the classes of a and b such that a's parity relates to b's parity
   by [relation] (true = must differ, false = must agree); set the odd flag
   when they are already in the same class and the constraint fails *)
let constrain st a b ~must_differ =
  let ca, pa = class_and_parity st a in
  let cb, pb = class_and_parity st b in
  if ca = cb then
    if (pa <> pb) = must_differ then st else { st with odd = true }
  else begin
    let need_flip = if must_differ then pa = pb else pa <> pb in
    let cb = if need_flip then List.map (fun (s, p) -> (s, not p)) cb else cb in
    let others =
      List.filter
        (fun c ->
          (not (List.exists (fun (s, _) -> s = a) c))
          && not (List.exists (fun (s, _) -> s = b) c))
        st.classes
    in
    { st with classes = canonical ((ca @ cb) :: others) }
  end

let add_edge st a b = constrain st a b ~must_differ:true

let forget st s =
  let classes =
    List.map (List.filter (fun (x, _) -> x <> s)) st.classes
  in
  { st with classes = canonical classes }

let union a b =
  let sa = List.concat_map (List.map fst) a.classes in
  if List.exists (fun s -> mem b s) sa then
    invalid_arg "Bipartite.union: slot sets not disjoint";
  { classes = canonical (a.classes @ b.classes); odd = a.odd || b.odd }

let identify st ~keep ~drop =
  let st = constrain st keep drop ~must_differ:false in
  forget st drop

let rename st ~old_slot ~new_slot =
  if mem st new_slot then invalid_arg "Bipartite.rename: slot exists";
  {
    st with
    classes =
      canonical
        (List.map
           (List.map (fun (s, p) -> ((if s = old_slot then new_slot else s), p)))
           st.classes);
  }

let slots st =
  List.concat_map (List.map fst) st.classes |> List.sort compare

let accepts st =
  assert (slots st = []);
  not st.odd

let equal a b = a.classes = b.classes && a.odd = b.odd

let encode w st =
  Bitenc.varint w (List.length st.classes);
  List.iter
    (fun c ->
      Bitenc.varint w (List.length c);
      List.iter
        (fun (s, p) ->
          Bitenc.varint w (abs s);
          Bitenc.bit w p)
        c)
    st.classes;
  Bitenc.bit w st.odd

let rec read_n n f = if n <= 0 then [] else
  let x = f () in
  x :: read_n (n - 1) f

let decode r =
  let nclasses = Bitenc.read_varint r in
  let classes =
    read_n nclasses (fun () ->
        let size = Bitenc.read_varint r in
        read_n size (fun () ->
            let s = Bitenc.read_varint r in
            let p = Bitenc.read_bit r in
            (s, p)))
  in
  let odd = Bitenc.read_bit r in
  { classes = canonical classes; odd }

let packed_layout = { Lcp_util.Packed_state.fixed_words = 2; words_per_slot = 3 }

let pack buf st =
  let module P = Lcp_util.Packed_state in
  P.push_list buf
    (fun b c ->
      P.push_list b
        (fun b (s, p) ->
          P.Buf.push b s;
          P.push_bool b p)
        c)
    st.classes;
  P.push_bool buf st.odd

let unpack c =
  let module P = Lcp_util.Packed_state in
  let classes =
    P.read_list c (fun c ->
        P.read_list c (fun c ->
            let s = P.read c in
            let p = P.read_bool c in
            (s, p)))
  in
  let odd = P.read_bool c in
  { classes; odd }

let pp ppf st =
  Format.fprintf ppf "bip({%s}; odd=%b)"
    (String.concat " | "
       (List.map
          (fun c ->
            String.concat ","
              (List.map
                 (fun (s, p) -> Printf.sprintf "%d%s" s (if p then "'" else ""))
                 c))
          st.classes))
    st.odd

let oracle g =
  (* BFS 2-coloring *)
  let n = Lcp_graph.Graph.n g in
  let color = Array.make n (-1) in
  let ok = ref true in
  for s = 0 to n - 1 do
    if color.(s) < 0 then begin
      color.(s) <- 0;
      let q = Queue.create () in
      Queue.push s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun v ->
            if color.(v) < 0 then begin
              color.(v) <- 1 - color.(u);
              Queue.push v q
            end
            else if color.(v) = color.(u) then ok := false)
          (Lcp_graph.Graph.neighbors g u)
      done
    end
  done;
  !ok

module Bitenc = Lcp_util.Bitenc

module type PARAM = sig
  val size : int
end

module Make (P : PARAM) = struct
  (* profile: (sorted boundary subset T, count of completed members), with
     |T| + count <= size; adj: canonical pairs among boundary slots *)
  type state = {
    slot_list : int list;
    adj : (int * int) list;
    profiles : (int list * int) list; (* T ↦ max completed count *)
    found : bool;
  }

  let name = Printf.sprintf "has_K%d" P.size
  let description = Printf.sprintf "the graph contains a %d-clique" P.size

  let norm (a, b) = if a <= b then (a, b) else (b, a)

  (* Per boundary part T keep the c = 0 profile (it alone may recruit new
     boundary members) and the largest c >= 1 profile (those are linearly
     ordered); a c = 0 and a c >= 1 profile are incomparable. *)
  let canonical ps =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (t, c) ->
        let zero, best =
          Option.value ~default:(false, 0) (Hashtbl.find_opt tbl t)
        in
        Hashtbl.replace tbl t (zero || c = 0, max best c))
      ps;
    Hashtbl.fold
      (fun t (zero, best) acc ->
        let acc = if best >= 1 then (t, best) :: acc else acc in
        if zero then (t, 0) :: acc else acc)
      tbl []
    |> List.sort compare

  (* a profile whose boundary part is pairwise adjacent and total size
     reaches [size] is a witness *)
  let detect st =
    if st.found then st
    else begin
      let pairwise_adjacent t =
        let rec go = function
          | [] -> true
          | x :: rest ->
              List.for_all (fun y -> List.mem (norm (x, y)) st.adj) rest
              && go rest
        in
        go t
      in
      let found =
        List.exists
          (fun (t, c) -> List.length t + c >= P.size && pairwise_adjacent t)
          st.profiles
      in
      { st with found }
    end

  let empty = { slot_list = []; adj = []; profiles = [ ([], 0) ]; found = P.size = 0 }

  let introduce st s =
    if List.mem s st.slot_list then invalid_arg "Clique.introduce: slot exists";
    (* a fresh vertex can never become adjacent to already-forgotten clique
       members, so only profiles with an empty completed part may recruit *)
    let extended =
      List.filter_map
        (fun (t, c) ->
          if c = 0 && List.length t < P.size then
            Some (List.sort compare (s :: t), c)
          else None)
        st.profiles
    in
    {
      st with
      slot_list = List.sort compare (s :: st.slot_list);
      profiles = canonical (st.profiles @ extended);
    }

  let add_edge st a b =
    detect { st with adj = List.sort_uniq compare (norm (a, b) :: st.adj) }

  let forget st s =
    let keep_pair (a, b) = a <> s && b <> s in
    let neighbors =
      List.filter_map
        (fun (a, b) ->
          if a = s then Some b else if b = s then Some a else None)
        st.adj
    in
    let step (t, c) =
      if List.mem s t then begin
        let t' = List.filter (fun x -> x <> s) t in
        (* option 1: the clique abandons s *)
        let drop = (t', c) in
        (* option 2: s joins the completed part; it must be adjacent to
           the rest of the boundary part already (adjacency to the
           completed part is asserted by the profile) *)
        if List.for_all (fun x -> List.mem x neighbors) t' then
          [ drop; (t', c + 1) ]
        else [ drop ]
      end
      else [ (t, c) ]
    in
    detect
      {
        st with
        slot_list = List.filter (fun x -> x <> s) st.slot_list;
        adj = List.filter keep_pair st.adj;
        profiles = canonical (List.concat_map step st.profiles);
      }

  let union a b =
    if List.exists (fun s -> List.mem s b.slot_list) a.slot_list then
      invalid_arg "Clique.union: slot sets not disjoint";
    (* completed parts cannot mix across components (no edges between
       forgotten vertices of disjoint graphs), so at most one side
       contributes completed members *)
    let combine (t1, c1) (t2, c2) =
      (* a completed part can only ever pair with boundary vertices of its
         own side, and two completed parts can never become adjacent *)
      if
        (c1 = 0 || t2 = []) && (c2 = 0 || t1 = []) && (c1 = 0 || c2 = 0)
      then begin
        let t = List.sort compare (t1 @ t2) in
        if List.length t + c1 + c2 <= P.size then Some (t, c1 + c2) else None
      end
      else None
    in
    {
      slot_list = List.sort compare (a.slot_list @ b.slot_list);
      adj = List.sort_uniq compare (a.adj @ b.adj);
      profiles =
        canonical
          (List.concat_map
             (fun pa -> List.filter_map (combine pa) b.profiles)
             a.profiles);
      found = a.found || b.found;
    }

  let identify st ~keep ~drop =
    let r x = if x = drop then keep else x in
    let rp (a, b) = norm (r a, r b) in
    let rt t = List.sort_uniq compare (List.map r t) in
    detect
      {
        slot_list = List.filter (fun x -> x <> drop) st.slot_list;
        adj = List.sort_uniq compare (List.map rp st.adj);
        profiles =
          canonical (List.map (fun (t, c) -> (rt t, c)) st.profiles);
        found = st.found;
      }

  let rename st ~old_slot ~new_slot =
    if List.mem new_slot st.slot_list then invalid_arg "Clique.rename: slot exists";
    let r x = if x = old_slot then new_slot else x in
    let rp (a, b) = norm (r a, r b) in
    {
      st with
      slot_list = List.sort compare (List.map r st.slot_list);
      adj = List.sort compare (List.map rp st.adj);
      profiles =
        List.sort compare
          (List.map
             (fun (t, c) -> (List.sort compare (List.map r t), c))
             st.profiles);
    }

  let slots st = st.slot_list

  let accepts st =
    assert (st.slot_list = []);
    st.found

  let equal a b =
    a.slot_list = b.slot_list && a.adj = b.adj && a.profiles = b.profiles
    && a.found = b.found

  let encode w st =
    Bitenc.varint w (List.length st.slot_list);
    List.iter (fun s -> Bitenc.varint w (abs s)) st.slot_list;
    Bitenc.varint w (List.length st.adj);
    List.iter
      (fun (a, b) ->
        Bitenc.varint w (abs a);
        Bitenc.varint w (abs b))
      st.adj;
    Bitenc.varint w (List.length st.profiles);
    List.iter
      (fun (t, c) ->
        List.iter (fun s -> Bitenc.bit w (List.mem s t)) st.slot_list;
        Bitenc.varint w c)
      st.profiles;
    Bitenc.bit w st.found

  let packed_layout =
    { Lcp_util.Packed_state.fixed_words = 4; words_per_slot = 8 }

  let pack buf st =
    let module P = Lcp_util.Packed_state in
    P.push_list buf P.Buf.push st.slot_list;
    P.push_list buf
      (fun b (x, y) ->
        P.Buf.push b x;
        P.Buf.push b y)
      st.adj;
    P.push_list buf
      (fun b (t, cnt) ->
        P.push_list b P.Buf.push t;
        P.Buf.push b cnt)
      st.profiles;
    P.push_bool buf st.found

  let unpack c =
    let module P = Lcp_util.Packed_state in
    let slot_list = P.read_list c P.read in
    let adj =
      P.read_list c (fun c ->
          let x = P.read c in
          let y = P.read c in
          (x, y))
    in
    let profiles =
      P.read_list c (fun c ->
          let t = P.read_list c P.read in
          let cnt = P.read c in
          (t, cnt))
    in
    let found = P.read_bool c in
    { slot_list; adj; profiles; found }

  let pp ppf st =
    Format.fprintf ppf "K%d(slots=%s; %d profiles; found=%b)" P.size
      (String.concat "," (List.map string_of_int st.slot_list))
      (List.length st.profiles) st.found

  let oracle g =
    let module Graph = Lcp_graph.Graph in
    let n = Graph.n g in
    let rec extend chosen v =
      if List.length chosen = P.size then true
      else if v = n then false
      else
        extend chosen (v + 1)
        || (List.for_all (fun u -> Graph.mem_edge g u v) chosen
           && extend (v :: chosen) (v + 1))
    in
    P.size = 0 || extend [] 0
end

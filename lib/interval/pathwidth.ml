module Graph = Lcp_graph.Graph

(* boundary size of prefix-set [s] (bitmask): vertices in s with a neighbor
   outside s *)
let boundary_size g nbr_mask s =
  let n = Graph.n g in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if s land (1 lsl v) <> 0 && nbr_mask.(v) land lnot s <> 0 then incr count
  done;
  !count

let neighbor_masks g =
  Array.init (Graph.n g) (fun v ->
      Graph.fold_neighbors g v (fun acc w -> acc lor (1 lsl w)) 0)

let check_size g =
  if Graph.n g > 24 then
    invalid_arg "Pathwidth.exact: graph too large for the exact algorithm"

(* f(S) = min over v in S of max(f(S \ v), boundary(S)); the DP fills
   subsets in increasing popcount order implicitly via increasing mask
   value (S \ v < S). choice.(s) records the last vertex of the optimal
   ordering of S, for layout reconstruction. *)
let solve g =
  check_size g;
  let n = Graph.n g in
  let nbr = neighbor_masks g in
  let size = 1 lsl n in
  let cost = Array.make size max_int in
  let choice = Array.make size (-1) in
  cost.(0) <- 0;
  for s = 1 to size - 1 do
    let b = boundary_size g nbr s in
    for v = 0 to n - 1 do
      if s land (1 lsl v) <> 0 then begin
        let prev = cost.(s lxor (1 lsl v)) in
        let c = max prev b in
        if c < cost.(s) then begin
          cost.(s) <- c;
          choice.(s) <- v
        end
      end
    done
  done;
  (cost, choice)

let exact_layout g =
  let n = Graph.n g in
  if n = 0 then (0, [||])
  else begin
    let cost, choice = solve g in
    let full = (1 lsl n) - 1 in
    let order = Array.make n 0 in
    let s = ref full in
    for i = n - 1 downto 0 do
      let v = choice.(!s) in
      order.(i) <- v;
      s := !s lxor (1 lsl v)
    done;
    (cost.(full), order)
  end

let exact g = fst (exact_layout g)

let interval_representation_of_layout g order =
  let n = Graph.n g in
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let intervals =
    Array.init n (fun v ->
        let r = Graph.fold_neighbors g v (fun acc w -> max acc pos.(w)) pos.(v) in
        Interval.make pos.(v) r)
  in
  Representation.make g intervals

let exact_interval_representation g =
  let _, order = exact_layout g in
  interval_representation_of_layout g order

let vertex_separation_of_layout g order =
  let n = Graph.n g in
  let nbr = neighbor_masks g in
  check_size g;
  let s = ref 0 and best = ref 0 in
  Array.iter
    (fun v ->
      s := !s lor (1 lsl v);
      best := max !best (boundary_size g nbr !s))
    order;
  ignore n;
  !best

let heuristic_layout g =
  let n = Graph.n g in
  let placed = Array.make n false in
  let outside_deg = Array.init n (Graph.degree g) in
  (* boundary = placed vertices with outside_deg > 0 *)
  let order = Array.make n 0 in
  let boundary = ref 0 in
  for i = 0 to n - 1 do
    (* choose the unplaced vertex minimizing the boundary after placing it *)
    let best_v = ref (-1) and best_b = ref max_int in
    for v = 0 to n - 1 do
      if not placed.(v) then begin
        (* placing v: v joins the boundary if it keeps outside neighbors;
           each placed neighbor of v with outside_deg = 1 leaves it *)
        let leaves =
          Graph.fold_neighbors g v
            (fun acc w ->
              if placed.(w) && outside_deg.(w) = 1 then acc + 1 else acc)
            0
        in
        let placed_nbrs =
          Graph.fold_neighbors g v
            (fun acc w -> if placed.(w) then acc + 1 else acc)
            0
        in
        let joins = if outside_deg.(v) - placed_nbrs > 0 then 1 else 0 in
        let b = !boundary - leaves + joins in
        if b < !best_b then begin
          best_b := b;
          best_v := v
        end
      end
    done;
    let v = !best_v in
    placed.(v) <- true;
    order.(i) <- v;
    Graph.iter_neighbors g v (fun w ->
        if placed.(w) then outside_deg.(w) <- outside_deg.(w) - 1);
    outside_deg.(v) <-
      Graph.fold_neighbors g v
        (fun acc w -> if not placed.(w) then acc + 1 else acc)
        0;
    let b = ref 0 in
    for u = 0 to n - 1 do
      if placed.(u) && outside_deg.(u) > 0 then incr b
    done;
    boundary := !b
  done;
  order

let heuristic_interval_representation g =
  interval_representation_of_layout g (heuristic_layout g)

module Graph = Lcp_graph.Graph

type verdict = Accept | Reject of string

type 'l transcript = {
  rounds : int;
  messages : (int * int * 'l) list;
  verdicts : (int * verdict) list;
}

let accepted t =
  List.for_all (fun (_, v) -> match v with Accept -> true | Reject _ -> false)
    t.verdicts

(* faulty-world knobs: a silent (crashed or Byzantine) processor never
   raises an alarm — its verdict is forced to [Accept]; whether it sends
   is governed by its label memory (a crashed processor lost its label and
   so sends nothing, a Byzantine one sends its corrupted label). [id_of]
   lets the adversary forge the identifier a processor presents
   (ID-collision faults). *)
let view_id cfg id_of v =
  match id_of with Some f -> f v | None -> Config.id cfg v

let is_silent silent v = List.mem v silent

let run_vertex_partial ?(silent = []) ?id_of cfg
    (scheme : 'l Scheme.vertex_scheme) labels =
  let g = Config.graph cfg in
  if Array.length labels <> Graph.n g then
    invalid_arg "Network.run_vertex_partial: wrong label count";
  (* round 1: every labeled processor sends (id, label) over every
     incident link; a processor whose label memory was wiped stays quiet *)
  let messages =
    Graph.fold_vertices
      (fun u acc ->
        match labels.(u) with
        | Some l ->
            List.fold_left
              (fun acc v -> (u, v, (view_id cfg id_of u, l)) :: acc)
              acc (Graph.neighbors g u)
        | None -> acc)
      g []
    |> List.rev
  in
  let mailbox = Array.make (Graph.n g) [] in
  List.iter
    (fun (_, receiver, payload) ->
      mailbox.(receiver) <- payload :: mailbox.(receiver))
    messages;
  let verdicts =
    Graph.fold_vertices
      (fun v acc ->
        let verdict =
          if is_silent silent v then Accept (* raises no alarm *)
          else
            match labels.(v) with
            | None -> Reject Scheme.missing_label
            | Some _
              when List.length mailbox.(v) < Graph.degree g v ->
                (* synchronous model: a missing message is observable — some
                   neighbor lost its label memory *)
                Reject Scheme.missing_label
            | Some l -> (
                let view =
                  {
                    Scheme.vv_id = view_id cfg id_of v;
                    vv_label = l;
                    vv_neighbors = List.rev mailbox.(v);
                  }
                in
                match scheme.Scheme.vs_verify view with
                | Ok () -> Accept
                | Error m -> Reject m)
        in
        (v, verdict) :: acc)
      g []
    |> List.rev
  in
  { rounds = 1; messages; verdicts }

let run_vertex_round ?silent ?id_of cfg (scheme : 'l Scheme.vertex_scheme)
    labels =
  run_vertex_partial ?silent ?id_of cfg scheme
    (Array.map Option.some labels)

let run_edge_round ?(silent = []) ?id_of cfg (scheme : 'l Scheme.edge_scheme)
    labels =
  let g = Config.graph cfg in
  (* each labeled link delivers its label to both endpoints; a link whose
     label was deleted delivers nothing — its endpoints must notice *)
  let messages, starved =
    Graph.fold_edges
      (fun (u, v) (msgs, starved) ->
        match Scheme.Edge_map.find labels (u, v) with
        | Some l -> ((u, v, l) :: (v, u, l) :: msgs, starved)
        | None -> (msgs, u :: v :: starved))
      g ([], [])
  in
  let messages = List.rev messages in
  let mailbox = Array.make (Graph.n g) [] in
  List.iter
    (fun (_, receiver, l) -> mailbox.(receiver) <- l :: mailbox.(receiver))
    messages;
  let verdicts =
    Graph.fold_vertices
      (fun v acc ->
        let verdict =
          if is_silent silent v then Accept (* raises no alarm *)
          else if List.mem v starved then Reject Scheme.missing_label
          else
            let view =
              {
                Scheme.ev_id = view_id cfg id_of v;
                ev_degree = Graph.degree g v;
                ev_labels = List.rev mailbox.(v);
              }
            in
            match scheme.Scheme.es_verify view with
            | Ok () -> Accept
            | Error m -> Reject m
        in
        (v, verdict) :: acc)
      g []
    |> List.rev
  in
  { rounds = 1; messages; verdicts }

let rejectors t =
  List.filter_map
    (fun (v, verdict) ->
      match verdict with Reject _ -> Some v | Accept -> None)
    t.verdicts

(* splice the fresh proof onto every edge incident to the detected region,
   keep the (possibly corrupted) labels elsewhere *)
let patch_region cfg ~fresh ~current ~region =
  let g = Config.graph cfg in
  Graph.fold_edges
    (fun (u, v) m ->
      let source =
        if List.mem u region || List.mem v region then fresh else current
      in
      match Scheme.Edge_map.find source (u, v) with
      | Some l -> Scheme.Edge_map.add m (u, v) l
      | None -> m)
    g Scheme.Edge_map.empty

type stabilization_report = {
  faults_injected : int;
  no_op : int;
  legal_rewrites : int;
  detected : int;
  localized_recoveries : int;
  global_reproofs : int;
  recovery_rounds : int;
  max_detection_latency : int;
  final_legal : bool;
}

let stabilize ?(localize = true) cfg (scheme : 'l Scheme.edge_scheme) ~faults =
  let prove () =
    match scheme.Scheme.es_prove cfg with
    | Some labels -> labels
    | None -> invalid_arg "Network.stabilize: prover declined"
  in
  let labels = ref (prove ()) in
  if not (accepted (run_edge_round cfg scheme !labels)) then
    invalid_arg "Network.stabilize: honest certificate rejected";
  let no_op = ref 0 and legal = ref 0 and detected = ref 0 in
  let localized = ref 0 and global = ref 0 in
  let recovery_rounds = ref 0 and max_latency = ref 0 in
  List.iter
    (fun fault ->
      let corrupted = fault !labels in
      if
        Scheme.Edge_map.bindings corrupted = Scheme.Edge_map.bindings !labels
      then incr no_op (* the fault did not change the state *)
      else begin
        let t = run_edge_round cfg scheme corrupted in
        if accepted t then begin
          (* a different but legal certificate: nothing to repair, and in a
             self-stabilizing system nothing *may* be repaired — no alarm *)
          incr legal;
          labels := corrupted
        end
        else begin
          incr detected;
          max_latency := max !max_latency t.rounds;
          let fresh = prove () in
          let finish_global () =
            incr global;
            incr recovery_rounds;
            labels := fresh
          in
          if localize then begin
            let patched =
              patch_region cfg ~fresh ~current:corrupted
                ~region:(rejectors t)
            in
            incr recovery_rounds;
            if accepted (run_edge_round cfg scheme patched) then begin
              incr localized;
              labels := patched
            end
            else finish_global ()
          end
          else finish_global ()
        end
      end)
    faults;
  {
    faults_injected = List.length faults;
    no_op = !no_op;
    legal_rewrites = !legal;
    detected = !detected;
    localized_recoveries = !localized;
    global_reproofs = !global;
    recovery_rounds = !recovery_rounds;
    max_detection_latency = !max_latency;
    final_legal = accepted (run_edge_round cfg scheme !labels);
  }

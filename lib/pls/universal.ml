module Graph = Lcp_graph.Graph
module Bitenc = Lcp_util.Bitenc

type label = {
  my_id : int;
  ids : int list;
  edges : (int * int) list;
}

let describe cfg =
  let g = Config.graph cfg in
  let ids =
    List.sort compare (List.init (Graph.n g) (fun v -> Config.id cfg v))
  in
  let edges =
    Graph.edges g
    |> List.map (fun (u, v) ->
           let a = Config.id cfg u and b = Config.id cfg v in
           if a < b then (a, b) else (b, a))
    |> List.sort compare
  in
  (ids, edges)

(* rebuild a graph from an id-labeled description *)
let graph_of_description ids edges =
  let idx = Hashtbl.create (List.length ids) in
  List.iteri (fun i x -> Hashtbl.replace idx x i) ids;
  let translate (a, b) =
    match (Hashtbl.find_opt idx a, Hashtbl.find_opt idx b) with
    | Some u, Some v -> Some (u, v)
    | _ -> None
  in
  if List.for_all (fun e -> translate e <> None) edges then
    Some (Graph.of_edges ~n:(List.length ids) (List.filter_map translate edges))
  else None

let encode w l =
  Bitenc.varint w l.my_id;
  Bitenc.varint w (List.length l.ids);
  List.iter (fun x -> Bitenc.varint w x) l.ids;
  Bitenc.varint w (List.length l.edges);
  List.iter
    (fun (a, b) ->
      Bitenc.varint w a;
      Bitenc.varint w b)
    l.edges

let decode r =
  let rec read_list n f acc =
    if n = 0 then List.rev acc else read_list (n - 1) f (f () :: acc)
  in
  let my_id = Bitenc.read_varint r in
  let nids = Bitenc.read_varint r in
  let ids = read_list nids (fun () -> Bitenc.read_varint r) [] in
  let nedges = Bitenc.read_varint r in
  let edges =
    read_list nedges
      (fun () ->
        let a = Bitenc.read_varint r in
        let b = Bitenc.read_varint r in
        (a, b))
      []
  in
  { my_id; ids; edges }

let scheme ~name ~property =
  let prove cfg =
    let g = Config.graph cfg in
    if property g && Lcp_graph.Traversal.is_connected g then begin
      let ids, edges = describe cfg in
      Some
        (Array.init (Graph.n g) (fun v ->
             { my_id = Config.id cfg v; ids; edges }))
    end
    else None
  in
  let verify (view : label Scheme.vertex_view) =
    let l = view.vv_label in
    if l.my_id <> view.vv_id then Error "universal: label id mismatch"
    else if
      not
        (List.for_all
           (fun (_, nl) -> nl.ids = l.ids && nl.edges = l.edges)
           view.vv_neighbors)
    then Error "universal: neighbors describe a different graph"
    else begin
      let described_row =
        List.filter_map
          (fun (a, b) ->
            if a = view.vv_id then Some b
            else if b = view.vv_id then Some a
            else None)
          l.edges
        |> List.sort compare
      in
      let actual_row = List.sort compare (List.map fst view.vv_neighbors) in
      if described_row <> actual_row then
        Error "universal: my described neighborhood is wrong"
      else
        match graph_of_description l.ids l.edges with
        | None -> Error "universal: malformed description"
        | Some g ->
            if not (Lcp_graph.Traversal.is_connected g) then
              Error "universal: described graph is disconnected"
            else if property g then Ok ()
            else Error "universal: property fails on the described graph"
    end
  in
  {
    Scheme.vs_name = name;
    vs_prove = prove;
    vs_verify = verify;
    vs_encode = encode;
  }

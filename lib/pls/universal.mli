(** The universal scheme (§1.1): certify an arbitrary (decidable) graph
    property by writing the entire graph — as an identifier-labeled edge
    list — into every vertex label. Proof size Θ((n + m) log n) bits; this
    is the trivial upper bound that compact schemes are measured against,
    and the Θ(n²)-style baseline in the label-size experiment.

    Each vertex checks that its label repeats its own identifier, that all
    neighbors carry the identical graph description, that the multiset of
    its neighbors' identifiers matches the description's row for its own
    identifier, and that the described graph is connected and satisfies the
    property. On a connected network this forces the description to equal
    the real graph up to isomorphism, so the scheme is sound. *)

type label = {
  my_id : int;
  ids : int list;  (** the vertex identifiers of the described graph *)
  edges : (int * int) list;  (** described edges, by identifier *)
}

val scheme :
  name:string ->
  property:(Lcp_graph.Graph.t -> bool) ->
  label Scheme.vertex_scheme

val encode : Lcp_util.Bitenc.writer -> label -> unit

val decode : Lcp_util.Bitenc.reader -> label
(** Inverse of {!encode} — the codec bit-level fault injection round-trips
    labels through. *)

(** Proof labeling schemes: provers, verifiers, local views, and the
    simulation harness (§1.1, §2.1).

    Two flavours are supported.

    {b Edge schemes} put labels on edges. The local view of a vertex is
    faithful to the paper's model: its own identifier/state plus the
    multiset of labels on its incident edges — nothing else. The Theorem 1
    certification is an edge scheme.

    {b Vertex schemes} put labels on vertices. Here the view gives, for
    each neighbor, the pair (neighbor identifier, neighbor label). Knowing
    which neighbor sent which label is the standard strengthening used
    throughout the local-certification literature (identifiers are part of
    the state, and letting labels embed the owner's identifier makes
    attribution verifiable); Prop 2.1's edge→vertex transformation is
    implemented in this model.

    Verifiers are pure functions of the view — the type system prevents
    them from inspecting the rest of the configuration, which is what makes
    the simulated verification genuinely local. *)

module Edge_map : sig
  type 'l t

  val empty : 'l t
  val add : 'l t -> Lcp_graph.Graph.edge -> 'l -> 'l t
  val remove : 'l t -> Lcp_graph.Graph.edge -> 'l t
  val find : 'l t -> Lcp_graph.Graph.edge -> 'l option
  val of_list : (Lcp_graph.Graph.edge * 'l) list -> 'l t
  val bindings : 'l t -> (Lcp_graph.Graph.edge * 'l) list
  val map : ('l -> 'm) -> 'l t -> 'm t
  val cardinal : 'l t -> int
end

type 'l edge_view = {
  ev_id : int;  (** the vertex's own identifier *)
  ev_degree : int;
  ev_labels : 'l list;  (** labels of incident edges, arbitrary order *)
}

type 'l vertex_view = {
  vv_id : int;
  vv_label : 'l;
  vv_neighbors : (int * 'l) list;  (** (neighbor id, neighbor label) *)
}

type outcome =
  | Accepted
  | Rejected of (int * string) list
      (** rejecting vertices with their reasons *)

val accepted : outcome -> bool

type 'l edge_scheme = {
  es_name : string;
  es_prove : Config.t -> 'l Edge_map.t option;
      (** [None] when the prover cannot certify (property does not hold). *)
  es_verify : 'l edge_view -> (unit, string) result;
  es_encode : Lcp_util.Bitenc.writer -> 'l -> unit;
}

type 'l vertex_scheme = {
  vs_name : string;
  vs_prove : Config.t -> 'l array option;
  vs_verify : 'l vertex_view -> (unit, string) result;
  vs_encode : Lcp_util.Bitenc.writer -> 'l -> unit;
}

val missing_label : string
(** The rejection reason both endpoints of an unlabeled edge report. *)

val run_edge : Config.t -> 'l edge_scheme -> 'l Edge_map.t -> outcome
(** Run the verifier at every vertex. A partial labeling is a *fault*,
    not a harness error: every vertex incident to an unlabeled edge
    rejects with {!missing_label} (the adversary may delete labels; the
    verifier must detect it rather than crash the simulation). *)

val run_edge_on : Config.t -> 'l edge_scheme -> 'l Edge_map.t -> int list -> outcome
(** Localized verification: run the verifier only at the listed
    vertices (deduplicated). Sound as a re-verification of a patched
    labeling exactly when every vertex outside the list has an
    unchanged local view (id, degree, incident labels) relative to a
    labeling this configuration already accepted in full — the
    verifier is a pure function of the view, so a skipped vertex would
    repeat its previous accept. The incremental service derives the
    list from the dirty-window set plus its one-hop boundary. *)

val run_vertex : Config.t -> 'l vertex_scheme -> 'l array -> outcome

val certify_edge : Config.t -> 'l edge_scheme -> ('l Edge_map.t, string) result
(** Run the prover; error when it declines. *)

val max_edge_label_bits : 'l edge_scheme -> 'l Edge_map.t -> int
(** Bit length of the largest encoded label — the proof size. *)

val max_vertex_label_bits : 'l vertex_scheme -> 'l array -> int

val edge_to_vertex : d:int -> 'l edge_scheme -> (int * int * 'l) list vertex_scheme
(** Prop 2.1: given an edge scheme on a class of d-degenerate graphs,
    produce a vertex scheme with O(d·f(n))-bit labels: orient the edges
    acyclically with outdegree ≤ d and move each edge label, tagged with
    both endpoint identifiers, to its tail. [d] is only used as a sanity
    bound on the produced labels. *)

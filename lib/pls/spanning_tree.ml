module Graph = Lcp_graph.Graph
module Traversal = Lcp_graph.Traversal
module Bitenc = Lcp_util.Bitenc

type label = {
  target : int;
  parent : (int * int) option;
}

let labels_for cfg ~root ~target =
  let g = Config.graph cfg in
  let parent = Traversal.bfs_tree g root in
  let dist = Traversal.bfs_from g root in
  Graph.fold_edges
    (fun (u, v) m ->
      let lab =
        if parent.(u) = v then
          { target; parent = Some (dist.(u), Config.id cfg u) }
        else if parent.(v) = u then
          { target; parent = Some (dist.(v), Config.id cfg v) }
        else { target; parent = None }
      in
      Scheme.Edge_map.add m (u, v) lab)
    g Scheme.Edge_map.empty

let verify ?target (view : label Scheme.edge_view) =
  let my = view.ev_id in
  match view.ev_labels with
  | [] ->
      (* no incident edges: in a connected graph this vertex is the whole
         network, so it must itself be the pointed-to vertex *)
      (match target with
      | Some x when x <> my -> Error "pointer: isolated vertex is not the target"
      | _ -> Ok ())
  | first :: _ when (match target with Some t -> t <> first.target | None -> false)
    ->
      Error "pointer: wrong target id"
  | first :: _ ->
      let x = first.target in
      let rec same_target = function
        | [] -> Ok ()
        | l :: rest ->
            if l.target <> x then Error "pointer: inconsistent target id"
            else same_target rest
      in
      (match same_target view.ev_labels with
      | Error _ as e -> e
      | Ok () ->
          let parent_edges =
            List.filter_map
              (fun l ->
                match l.parent with
                | Some (d, c) when c = my -> Some d
                | _ -> None)
              view.ev_labels
          in
          let child_edges =
            List.filter_map
              (fun l ->
                match l.parent with
                | Some (d, c) when c <> my -> Some d
                | _ -> None)
              view.ev_labels
          in
          if my = x then
            match parent_edges with
            | [] ->
                if List.for_all (fun d -> d = 1) child_edges then Ok ()
                else Error "pointer: root has a child at distance <> 1"
            | _ -> Error "pointer: root has a parent edge"
          else
            (match parent_edges with
            | [ d ] ->
                if d < 1 then Error "pointer: non-positive parent distance"
                else if List.for_all (fun d' -> d' = d + 1) child_edges then
                  Ok ()
                else Error "pointer: child at wrong distance"
            | [] -> Error "pointer: no parent edge"
            | _ -> Error "pointer: multiple parent edges"))

let encode w l =
  Bitenc.varint w l.target;
  match l.parent with
  | None -> Bitenc.bit w false
  | Some (d, c) ->
      Bitenc.bit w true;
      Bitenc.varint w d;
      Bitenc.varint w c

let decode r =
  let target = Bitenc.read_varint r in
  let parent =
    if Bitenc.read_bit r then begin
      let d = Bitenc.read_varint r in
      let c = Bitenc.read_varint r in
      Some (d, c)
    end
    else None
  in
  { target; parent }

let scheme ~target =
  let verify = verify ~target in
  let prove cfg =
    match Config.vertex_of_id cfg target with
    | None -> None
    | Some root ->
        if Traversal.is_connected (Config.graph cfg) then
          Some (labels_for cfg ~root ~target)
        else None
  in
  {
    Scheme.es_name = "pointer";
    es_prove = prove;
    es_verify = verify;
    es_encode = encode;
  }

module Graph = Lcp_graph.Graph
module Bitenc = Lcp_util.Bitenc
module EM = Scheme.Edge_map

type 'l codec = {
  c_encode : Bitenc.writer -> 'l -> unit;
  c_decode : Bitenc.reader -> 'l;
}

type spec =
  | Bit_flip of int
  | Label_swap
  | Label_duplicate
  | Label_delete
  | Stale_replay
  | Crash of int
  | Byzantine of int
  | Id_collision

let spec_name = function
  | Bit_flip 1 -> "bit-flip"
  | Bit_flip k -> Printf.sprintf "bit-flip x%d" k
  | Label_swap -> "label-swap"
  | Label_duplicate -> "label-dup"
  | Label_delete -> "label-delete"
  | Stale_replay -> "stale-replay"
  | Crash 1 -> "crash"
  | Crash k -> Printf.sprintf "crash x%d" k
  | Byzantine 1 -> "byzantine"
  | Byzantine k -> Printf.sprintf "byzantine x%d" k
  | Id_collision -> "id-collision"

let catalogue =
  [
    Bit_flip 1;
    Bit_flip 3;
    Label_swap;
    Label_duplicate;
    Label_delete;
    Stale_replay;
    Crash 1;
    Byzantine 1;
    Id_collision;
  ]

type 'l edge_world = {
  ew_labels : 'l EM.t;
  ew_silent : int list;
  ew_id_of : (int -> int) option;
  ew_touched : int list;
  ew_note : string;
}

type 'l vertex_world = {
  vw_labels : 'l option array;
  vw_silent : int list;
  vw_id_of : (int -> int) option;
  vw_touched : int list;
  vw_note : string;
}

(* ---------------------------------------------------------------- *)
(* shared machinery *)

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let pick_distinct rng count xs =
  if List.length xs < count then None
  else begin
    let chosen = ref [] in
    let pool = ref xs in
    for _ = 1 to count do
      let x = pick rng !pool in
      chosen := x :: !chosen;
      pool := List.filter (fun y -> y <> x) !pool
    done;
    Some (List.rev !chosen)
  end

(* round-trip a label through its bit encoding with [flips] random bit
   flips; [None] when the flipped string no longer decodes (the label is
   then effectively destroyed — the caller deletes it) *)
let garble rng codec ~flips l =
  let w = Bitenc.writer () in
  codec.c_encode w l;
  let bits = Bitenc.length_bits w in
  if bits = 0 then None
  else begin
    let bytes = Bitenc.to_bytes w in
    (match pick_distinct rng (min flips bits) (List.init bits Fun.id) with
    | Some positions -> List.iter (Bitenc.flip_bit bytes) positions
    | None -> ());
    match codec.c_decode (Bitenc.reader bytes) with
    | l' -> Some l'
    | exception _ -> None
  end

(* the forged identifier view of an ID collision: [v] presents [u]'s id *)
let collide cfg u v w = if w = v then Config.id cfg u else Config.id cfg w

(* a "previous incarnation" of the network: same topology, identifiers
   rotated one position — the stale state a replayed certificate is from *)
let stale_config cfg =
  let n = Config.n cfg in
  let ids = Array.init n (fun v -> Config.id cfg ((v + 1) mod n)) in
  Config.make ~ids (Config.graph cfg)

let vertices cfg = List.init (Config.n cfg) Fun.id

(* ---------------------------------------------------------------- *)
(* edge-scheme injection *)

let edge_world ?(silent = []) ?id_of ?(note = "") cfg labels touched =
  let g = Config.graph cfg in
  let around =
    List.sort_uniq compare
      (List.concat_map (fun v -> v :: Graph.neighbors g v) touched)
  in
  {
    ew_labels = labels;
    ew_silent = silent;
    ew_id_of = id_of;
    ew_touched = around;
    ew_note = note;
  }

let inject_edge ~rng ?codec cfg (scheme : 'l Scheme.edge_scheme) labels spec =
  let g = Config.graph cfg in
  let bindings = EM.bindings labels in
  if bindings = [] then None
  else
    let pick_edge () = pick rng bindings in
    match spec with
    | Bit_flip flips -> (
        match codec with
        | None -> None (* scheme without a label decoder: not applicable *)
        | Some codec -> (
            let (u, v), l = pick_edge () in
            match garble rng codec ~flips l with
            | Some l' ->
                Some
                  (edge_world cfg (EM.add labels (u, v) l') [ u; v ]
                     ~note:"flipped bits decode")
            | None ->
                Some
                  (edge_world cfg (EM.remove labels (u, v)) [ u; v ]
                     ~note:"flipped bits break decoding; label lost")))
    | Label_swap ->
        if List.length bindings < 2 then None
        else begin
          let (e1, l1) = pick_edge () in
          let others = List.filter (fun (e, _) -> e <> e1) bindings in
          let (e2, l2) = pick rng others in
          let labels = EM.add (EM.add labels e1 l2) e2 l1 in
          Some (edge_world cfg labels [ fst e1; snd e1; fst e2; snd e2 ])
        end
    | Label_duplicate ->
        if List.length bindings < 2 then None
        else begin
          let (e1, _) = pick_edge () in
          let others = List.filter (fun (e, _) -> e <> e1) bindings in
          let (_, l2) = pick rng others in
          Some (edge_world cfg (EM.add labels e1 l2) [ fst e1; snd e1 ])
        end
    | Label_delete ->
        let (e, _) = pick_edge () in
        Some (edge_world cfg (EM.remove labels e) [ fst e; snd e ])
    | Stale_replay -> (
        match scheme.Scheme.es_prove (stale_config cfg) with
        | None -> None
        | Some stale ->
            let (e, _) = pick_edge () in
            (match EM.find stale e with
            | None -> None
            | Some old ->
                Some
                  (edge_world cfg (EM.add labels e old) [ fst e; snd e ]
                     ~note:"label replayed from rotated-id incarnation")))
    | Crash count -> (
        match pick_distinct rng count (vertices cfg) with
        | None -> None
        | Some victims ->
            (* a crashed processor loses its link memory and goes quiet *)
            let labels =
              List.fold_left
                (fun m v ->
                  List.fold_left
                    (fun m w -> EM.remove m (v, w))
                    m (Graph.neighbors g v))
                labels victims
            in
            Some (edge_world cfg labels victims ~silent:victims))
    | Byzantine count -> (
        match pick_distinct rng count (vertices cfg) with
        | None -> None
        | Some victims ->
            (* a Byzantine processor rewrites its link memory arbitrarily
               (garbled bits when a codec exists, another link's label
               otherwise) and raises no alarm itself *)
            let garble_label l =
              match codec with
              | Some codec -> garble rng codec ~flips:(1 + Random.State.int rng 4) l
              | None -> Some (snd (pick_edge ()))
            in
            let labels =
              List.fold_left
                (fun m v ->
                  List.fold_left
                    (fun m w ->
                      match EM.find m (v, w) with
                      | None -> m
                      | Some l -> (
                          match garble_label l with
                          | Some l' -> EM.add m (v, w) l'
                          | None -> EM.remove m (v, w)))
                    m (Graph.neighbors g v))
                labels victims
            in
            Some (edge_world cfg labels victims ~silent:victims))
    | Id_collision -> (
        match pick_distinct rng 2 (vertices cfg) with
        | None -> None
        | Some [ u; v ] ->
            Some
              (edge_world cfg labels [ u; v ]
                 ~id_of:(collide cfg u v)
                 ~note:
                   (Printf.sprintf "vertex %d claims the id of vertex %d" v u))
        | Some _ -> assert false)

(* ---------------------------------------------------------------- *)
(* vertex-scheme injection *)

let vertex_world ?(silent = []) ?id_of ?(note = "") cfg labels touched =
  let g = Config.graph cfg in
  let around =
    List.sort_uniq compare
      (List.concat_map (fun v -> v :: Graph.neighbors g v) touched)
  in
  {
    vw_labels = labels;
    vw_silent = silent;
    vw_id_of = id_of;
    vw_touched = around;
    vw_note = note;
  }

let inject_vertex ~rng ?codec cfg (scheme : 'l Scheme.vertex_scheme) labels
    spec =
  let n = Config.n cfg in
  if n = 0 then None
  else
    let arr () = Array.map Option.some labels in
    let pick_vertex () = Random.State.int rng n in
    match spec with
    | Bit_flip flips -> (
        match codec with
        | None -> None
        | Some codec -> (
            let v = pick_vertex () in
            let a = arr () in
            match garble rng codec ~flips labels.(v) with
            | Some l' ->
                a.(v) <- Some l';
                Some (vertex_world cfg a [ v ] ~note:"flipped bits decode")
            | None ->
                a.(v) <- None;
                Some
                  (vertex_world cfg a [ v ]
                     ~note:"flipped bits break decoding; label lost")))
    | Label_swap ->
        if n < 2 then None
        else begin
          let v = pick_vertex () in
          let w = (v + 1 + Random.State.int rng (n - 1)) mod n in
          let a = arr () in
          a.(v) <- Some labels.(w);
          a.(w) <- Some labels.(v);
          Some (vertex_world cfg a [ v; w ])
        end
    | Label_duplicate ->
        if n < 2 then None
        else begin
          let v = pick_vertex () in
          let w = (v + 1 + Random.State.int rng (n - 1)) mod n in
          let a = arr () in
          a.(v) <- Some labels.(w);
          Some (vertex_world cfg a [ v ])
        end
    | Label_delete ->
        let v = pick_vertex () in
        let a = arr () in
        a.(v) <- None;
        Some (vertex_world cfg a [ v ])
    | Stale_replay -> (
        match scheme.Scheme.vs_prove (stale_config cfg) with
        | None -> None
        | Some stale ->
            let v = pick_vertex () in
            let a = arr () in
            a.(v) <- Some stale.(v);
            Some
              (vertex_world cfg a [ v ]
                 ~note:"label replayed from rotated-id incarnation"))
    | Crash count -> (
        match pick_distinct rng count (vertices cfg) with
        | None -> None
        | Some victims ->
            let a = arr () in
            List.iter (fun v -> a.(v) <- None) victims;
            Some (vertex_world cfg a victims ~silent:victims))
    | Byzantine count -> (
        match pick_distinct rng count (vertices cfg) with
        | None -> None
        | Some victims ->
            let a = arr () in
            List.iter
              (fun v ->
                match codec with
                | Some codec ->
                    a.(v) <-
                      garble rng codec ~flips:(1 + Random.State.int rng 4)
                        labels.(v)
                | None ->
                    (* no codec: emit some other processor's label *)
                    a.(v) <- Some labels.(Random.State.int rng n))
              victims;
            Some (vertex_world cfg a victims ~silent:victims))
    | Id_collision -> (
        match pick_distinct rng 2 (vertices cfg) with
        | None -> None
        | Some [ u; v ] ->
            Some
              (vertex_world cfg (arr ()) [ u; v ]
                 ~id_of:(collide cfg u v)
                 ~note:
                   (Printf.sprintf "vertex %d claims the id of vertex %d" v u))
        | Some _ -> assert false)

(* ---------------------------------------------------------------- *)
(* classification: what did the fault do, and was it caught? *)

type classification =
  | No_op
  | Legal_rewrite
  | Detected of { latency : int; detectors : int list; reasons : string list }
  | Undetected_effective

let class_name = function
  | No_op -> "no-op"
  | Legal_rewrite -> "legal-rewrite"
  | Detected _ -> "detected"
  | Undetected_effective -> "ESCAPE"

let detection t =
  let detectors = Network.rejectors t in
  let reasons =
    List.filter_map
      (fun (_, v) ->
        match v with Network.Reject m -> Some m | Network.Accept -> None)
      t.Network.verdicts
  in
  Detected { latency = t.Network.rounds; detectors; reasons }

let classify_edge cfg (scheme : 'l Scheme.edge_scheme) ~honest world =
  let unchanged =
    world.ew_silent = [] && world.ew_id_of = None
    && EM.bindings world.ew_labels = EM.bindings honest
  in
  if unchanged then No_op
  else
    (* detection runs in the faulty world: crashed/Byzantine processors
       raise no alarm, forged ids are in force *)
    let t =
      Network.run_edge_round ~silent:world.ew_silent ?id_of:world.ew_id_of cfg
        scheme world.ew_labels
    in
    if not (Network.accepted t) then detection t
    else if
      (* nobody objected; judge the surviving state honestly (true ids,
         every processor speaking). If even the honest round accepts, the
         fault rewrote one legal certificate into another. *)
      Network.accepted (Network.run_edge_round cfg scheme world.ew_labels)
    then Legal_rewrite
    else Undetected_effective

let classify_vertex cfg (scheme : 'l Scheme.vertex_scheme) ~honest world =
  let unchanged =
    world.vw_silent = [] && world.vw_id_of = None
    && Array.to_list world.vw_labels
       = Array.to_list (Array.map Option.some honest)
  in
  if unchanged then No_op
  else
    let t =
      Network.run_vertex_partial ~silent:world.vw_silent
        ?id_of:world.vw_id_of cfg scheme world.vw_labels
    in
    if not (Network.accepted t) then detection t
    else if
      Network.accepted (Network.run_vertex_partial cfg scheme world.vw_labels)
    then Legal_rewrite
    else Undetected_effective

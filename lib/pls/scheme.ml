module Graph = Lcp_graph.Graph
module Bitenc = Lcp_util.Bitenc

module Edge_map = struct
  module M = Map.Make (struct
    type t = int * int

    let compare = compare
  end)

  type 'l t = 'l M.t

  let empty = M.empty
  let canon (u, v) = Graph.canonical_edge u v
  let add m e l = M.add (canon e) l m
  let remove m e = M.remove (canon e) m
  let find m e = M.find_opt (canon e) m
  let of_list l = List.fold_left (fun m (e, lab) -> add m e lab) empty l
  let bindings m = M.bindings m
  let map f m = M.map f m
  let cardinal = M.cardinal
end

type 'l edge_view = {
  ev_id : int;
  ev_degree : int;
  ev_labels : 'l list;
}

type 'l vertex_view = {
  vv_id : int;
  vv_label : 'l;
  vv_neighbors : (int * 'l) list;
}

type outcome = Accepted | Rejected of (int * string) list

let accepted = function Accepted -> true | Rejected _ -> false

type 'l edge_scheme = {
  es_name : string;
  es_prove : Config.t -> 'l Edge_map.t option;
  es_verify : 'l edge_view -> (unit, string) result;
  es_encode : Lcp_util.Bitenc.writer -> 'l -> unit;
}

type 'l vertex_scheme = {
  vs_name : string;
  vs_prove : Config.t -> 'l array option;
  vs_verify : 'l vertex_view -> (unit, string) result;
  vs_encode : Lcp_util.Bitenc.writer -> 'l -> unit;
}

(* A deleted label is a fault the verifier must *detect*, not a harness
   error: a vertex missing an incident label rejects instead of raising.
   (Provers are trusted to emit total labelings — [certify_edge] and
   [edge_to_vertex] still treat a partial map as a programming error.) *)
let edge_view cfg labels v =
  let g = Config.graph cfg in
  let incident =
    List.filter_map (fun w -> Edge_map.find labels (v, w)) (Graph.neighbors g v)
  in
  let view =
    { ev_id = Config.id cfg v; ev_degree = Graph.degree g v; ev_labels = incident }
  in
  if List.length incident < Graph.degree g v then Error view else Ok view

let missing_label = "missing label"

let run_edge cfg scheme labels =
  let g = Config.graph cfg in
  let rejections =
    Graph.fold_vertices
      (fun v acc ->
        match edge_view cfg labels v with
        | Error _ -> (v, missing_label) :: acc
        | Ok view -> (
            match scheme.es_verify view with
            | Ok () -> acc
            | Error reason -> (v, reason) :: acc))
      g []
  in
  match rejections with [] -> Accepted | rs -> Rejected (List.rev rs)

(** Localized verification: run the per-vertex verifier only on [vs]
    (deduplicated; out-of-range vertices are a caller bug and raise in
    [edge_view]). Sound as a re-verification of a patched labeling
    exactly when every vertex outside [vs] has an unchanged local view
    — same id, degree, and incident labels — relative to a labeling
    this configuration already accepted in full: the verifier is a
    pure function of that view, so skipped vertices would repeat their
    previous accept. *)
let run_edge_on cfg scheme labels vs =
  let seen = Hashtbl.create (List.length vs) in
  let rejections =
    List.fold_left
      (fun acc v ->
        if Hashtbl.mem seen v then acc
        else begin
          Hashtbl.add seen v ();
          match edge_view cfg labels v with
          | Error _ -> (v, missing_label) :: acc
          | Ok view -> (
              match scheme.es_verify view with
              | Ok () -> acc
              | Error reason -> (v, reason) :: acc)
        end)
      [] vs
  in
  match rejections with [] -> Accepted | rs -> Rejected (List.rev rs)

let run_vertex cfg scheme labels =
  let g = Config.graph cfg in
  if Array.length labels <> Graph.n g then
    invalid_arg "Scheme.run_vertex: wrong label count";
  let rejections =
    Graph.fold_vertices
      (fun v acc ->
        let view =
          {
            vv_id = Config.id cfg v;
            vv_label = labels.(v);
            vv_neighbors =
              List.map
                (fun w -> (Config.id cfg w, labels.(w)))
                (Graph.neighbors g v);
          }
        in
        match scheme.vs_verify view with
        | Ok () -> acc
        | Error reason -> (v, reason) :: acc)
      g []
  in
  match rejections with [] -> Accepted | rs -> Rejected (List.rev rs)

let certify_edge cfg scheme =
  match scheme.es_prove cfg with
  | Some labels -> Ok labels
  | None -> Error (scheme.es_name ^ ": prover declined (property violated?)")

let encode_bits encode l =
  let w = Bitenc.writer () in
  encode w l;
  Bitenc.length_bits w

let max_edge_label_bits scheme labels =
  List.fold_left
    (fun acc (_, l) -> max acc (encode_bits scheme.es_encode l))
    0
    (Edge_map.bindings labels)

let max_vertex_label_bits scheme labels =
  Array.fold_left
    (fun acc l -> max acc (encode_bits scheme.vs_encode l))
    0 labels

(* Prop 2.1: move each edge label to the tail of a bounded-outdegree
   acyclic orientation, tagged with both endpoint ids so the head can
   attribute it. *)
let edge_to_vertex ~d (es : 'l edge_scheme) =
  let prove cfg =
    match es.es_prove cfg with
    | None -> None
    | Some edge_labels ->
        let g = Config.graph cfg in
        let out = Lcp_graph.Degeneracy.out_edges g in
        let labels =
          Array.mapi
            (fun v heads ->
              List.map
                (fun w ->
                  match Edge_map.find edge_labels (v, w) with
                  | Some l -> (Config.id cfg v, Config.id cfg w, l)
                  | None -> invalid_arg "edge_to_vertex: missing edge label")
                heads)
            out
        in
        Some labels
  in
  let verify view =
    let my = view.vv_id in
    (* own entries must be tagged with our id *)
    let rec check_own = function
      | [] -> Ok ()
      | (tail, _, _) :: rest ->
          if tail <> my then Error "vertex label entry with foreign tail id"
          else check_own rest
    in
    match check_own view.vv_label with
    | Error _ as e -> e
    | Ok () ->
        (* reconstruct incident edge labels: our out-entries must name
           actual neighbors, exactly once per edge; neighbors' entries
           naming us cover the rest *)
        let neighbor_ids = List.map fst view.vv_neighbors in
        let own_heads = List.map (fun (_, h, _) -> h) view.vv_label in
        let rec unique = function
          | [] -> true
          | x :: rest -> (not (List.mem x rest)) && unique rest
        in
        if not (List.for_all (fun h -> List.mem h neighbor_ids) own_heads) then
          Error "out-entry names a non-neighbor"
        else if not (unique own_heads) then Error "duplicate out-entry"
        else begin
          let incoming =
            List.concat_map
              (fun (nid, entries) ->
                List.filter_map
                  (fun (tail, head, l) ->
                    if head = my && tail = nid then Some (nid, l) else None)
                  entries)
              view.vv_neighbors
          in
          let covered =
            List.sort compare (own_heads @ List.map fst incoming)
          in
          if covered <> List.sort compare neighbor_ids then
            Error "incident edges not covered exactly once"
          else
            let labels =
              List.map (fun (_, _, l) -> l) view.vv_label
              @ List.map snd incoming
            in
            es.es_verify
              {
                ev_id = my;
                ev_degree = List.length neighbor_ids;
                ev_labels = labels;
              }
        end
  in
  let encode w entries =
    Bitenc.varint w (List.length entries);
    List.iter
      (fun (tail, head, l) ->
        Bitenc.varint w tail;
        Bitenc.varint w head;
        es.es_encode w l)
      entries
  in
  ignore d;
  {
    vs_name = es.es_name ^ "_on_vertices";
    vs_prove = prove;
    vs_verify = verify;
    vs_encode = encode;
  }

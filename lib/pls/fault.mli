(** Typed fault injection for proof labeling schemes.

    The whole point of a proof labeling scheme is soundness under
    adversarial state (§1.1, §3): after a transient fault, *some*
    processor must reject, whatever the fault did to the label memory.
    This module is the adversary: a catalogue of fault models — each
    deterministic under the caller's [Random.State.t] — that corrupt an
    honestly proved network into a faulty {e world}, plus the
    classification logic that decides what the fault amounted to and
    whether the verification round caught it.

    Bit-level faults operate on the *encoded* label, round-tripped
    through {!Lcp_util.Bitenc}: the flipped bit string is decoded back;
    when decoding fails the label is treated as destroyed (deleted), which
    the verifier must also detect.

    A {e world} is more than a label map: crashed and Byzantine
    processors are {e silent} (they send nothing and raise no alarm — see
    {!Network}), and ID-collision faults forge the identifier a processor
    presents without touching any label. *)

type 'l codec = {
  c_encode : Lcp_util.Bitenc.writer -> 'l -> unit;
  c_decode : Lcp_util.Bitenc.reader -> 'l;
}
(** Encode/decode pair for bit-surgery faults. Schemes without a decoder
    simply skip the bit-level fault models. *)

type spec =
  | Bit_flip of int
      (** flip this many distinct random bits in one encoded label *)
  | Label_swap  (** exchange the labels of two distinct edges/vertices *)
  | Label_duplicate  (** overwrite one label with a copy of another *)
  | Label_delete  (** erase one label outright *)
  | Stale_replay
      (** replay a label proved for a previous incarnation of the network
          (same topology, rotated identifiers) *)
  | Crash of int
      (** this many processors crash: their label memory is lost and they
          fall silent — detection must come from their neighbors *)
  | Byzantine of int
      (** this many processors rewrite their label memory arbitrarily and
          raise no alarm themselves *)
  | Id_collision
      (** one processor presents another processor's identifier; labels
          are untouched *)

val spec_name : spec -> string

val catalogue : spec list
(** The campaign's canonical fault models: single and triple bit flips,
    swap, duplicate, delete, stale replay, single crash, single Byzantine
    processor, and an ID collision. *)

type 'l edge_world = {
  ew_labels : 'l Scheme.Edge_map.t;  (** post-fault labels, possibly partial *)
  ew_silent : int list;  (** crashed/Byzantine processors *)
  ew_id_of : (int -> int) option;  (** forged identifier view, if any *)
  ew_touched : int list;
      (** corrupted vertices and their neighbors — where locality says
          detection should happen *)
  ew_note : string;  (** human-readable description of what was done *)
}

type 'l vertex_world = {
  vw_labels : 'l option array;  (** [None] = label destroyed *)
  vw_silent : int list;
  vw_id_of : (int -> int) option;
  vw_touched : int list;
  vw_note : string;
}

val inject_edge :
  rng:Random.State.t ->
  ?codec:'l codec ->
  Config.t ->
  'l Scheme.edge_scheme ->
  'l Scheme.Edge_map.t ->
  spec ->
  'l edge_world option
(** Apply one fault to an honestly labeled edge-scheme network. [None]
    when the model does not apply ([Bit_flip] without a codec, [Label_swap]
    on a single edge, [Crash n] with fewer than [n] vertices, a stale
    prover that declines, an empty labeling). Deterministic in [rng]. *)

val inject_vertex :
  rng:Random.State.t ->
  ?codec:'l codec ->
  Config.t ->
  'l Scheme.vertex_scheme ->
  'l array ->
  spec ->
  'l vertex_world option
(** Same, for vertex schemes. *)

(** {1 Classification}

    The outcome of one fault, decided by two verification rounds:

    - {b detection} runs in the {e faulty} world — silent processors are
      forced to accept and forged identifiers are in force; if anyone
      rejects the fault is [Detected] (latency = rounds until the first
      rejection; always 1 in the synchronous model).
    - otherwise the surviving state is judged by an {e honest} round
      (true identifiers, every processor speaking): acceptance means the
      fault merely rewrote one legal certificate into another
      ([Legal_rewrite] — by soundness this is indistinguishable from a
      legal state, and a self-stabilizing system adopts it); rejection
      means the state is genuinely bad yet no alarm was raised while the
      fault was live — [Undetected_effective].

    Faults are transient (the Korman–Kutten–Peleg model): a crashed or
    Byzantine processor eventually resumes correct behavior against the
    corrupted state. The campaign driver therefore gives an
    [Undetected_effective] fault one more, honest round — by the
    definition above it rejects, so the fault is ultimately detected with
    latency 2 (masked for exactly the fault's lifetime). A fault that
    stayed quiet even then would be a true soundness escape; the campaign
    counts those and exits non-zero.

    A fault that left labels, silence, and identifiers untouched is a
    [No_op]. An ID collision with honest labels classifies as
    [Legal_rewrite] when undetected: the label state *is* legal, the
    forgery lives purely in the verification layer. *)

type classification =
  | No_op
  | Legal_rewrite
  | Detected of { latency : int; detectors : int list; reasons : string list }
  | Undetected_effective

val class_name : classification -> string

val classify_edge :
  Config.t ->
  'l Scheme.edge_scheme ->
  honest:'l Scheme.Edge_map.t ->
  'l edge_world ->
  classification

val classify_vertex :
  Config.t ->
  'l Scheme.vertex_scheme ->
  honest:'l array ->
  'l vertex_world ->
  classification

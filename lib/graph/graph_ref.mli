(** The pre-CSR list-based graph implementation, kept as the oracle of
    the @graphcore equivalence suite and the "before" side of the
    `bench perf` microbenchmarks. Same observable semantics as {!Graph}
    on the operations below (modulo the [Graph_ref.] prefix in error
    messages); deliberately slow. *)

type t
type edge = int * int

val canonical_edge : int -> int -> edge
val of_edges : n:int -> edge list -> t
val empty : n:int -> t
val n : t -> int
val m : t -> int
val neighbors : t -> int -> int list
val degree : t -> int -> int
val mem_edge : t -> int -> int -> bool
val edges : t -> edge list
val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a
val add_edges : t -> edge list -> t
val remove_edge : t -> int -> int -> t
val induced : t -> int list -> t * int array
val equal : t -> t -> bool

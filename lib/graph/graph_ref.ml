(* The pre-CSR list-based graph, kept verbatim as (a) the oracle of the
   @graphcore equivalence suite and (b) the honest "before" side of the
   `bench perf` edge-membership microbenchmarks. Not for production use:
   mem_edge is O(deg), degree is O(deg), add_edges/remove_edge rebuild
   the whole graph through the full edge list. *)

type edge = int * int

type t = {
  n : int;
  adj : int list array; (* sorted, duplicate-free *)
  m : int;
}

let canonical_edge u v =
  if u = v then invalid_arg "Graph_ref.canonical_edge: self-loop";
  if u < v then (u, v) else (v, u)

let n g = g.n
let m g = g.m

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph_ref.of_edges: negative n";
  let adj = Array.make (max n 1) [] in
  let check v =
    if v < 0 || v >= n then
      invalid_arg
        (Printf.sprintf "Graph_ref.of_edges: vertex %d out of [0,%d)" v n)
  in
  let seen = Hashtbl.create (2 * List.length edges + 1) in
  let m = ref 0 in
  let add (u, v) =
    let (u, v) = canonical_edge u v in
    check u;
    check v;
    if not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v);
      incr m
    end
  in
  List.iter add edges;
  let adj = if n = 0 then [||] else Array.sub adj 0 n in
  Array.iteri (fun i l -> adj.(i) <- List.sort_uniq compare l) adj;
  { n; adj; m = !m }

let empty ~n = of_edges ~n []

let neighbors g v =
  if v < 0 || v >= g.n then
    invalid_arg "Graph_ref.neighbors: vertex out of range";
  g.adj.(v)

let degree g v = List.length (neighbors g v)

let mem_edge g u v =
  u <> v && u >= 0 && u < g.n && v >= 0 && v < g.n && List.mem v g.adj.(u)

let fold_edges f g acc =
  let acc = ref acc in
  for u = 0 to g.n - 1 do
    List.iter (fun v -> if u < v then acc := f (u, v) !acc) g.adj.(u)
  done;
  !acc

let edges g = List.rev (fold_edges (fun e l -> e :: l) g [])

let add_edges g new_edges = of_edges ~n:g.n (new_edges @ edges g)

let remove_edge g u v =
  let (u, v) = canonical_edge u v in
  of_edges ~n:g.n (List.filter (fun e -> e <> (u, v)) (edges g))

let induced g vs =
  let vs = List.sort_uniq compare vs in
  List.iter (fun v ->
      if v < 0 || v >= g.n then
        invalid_arg "Graph_ref.induced: vertex out of range")
    vs;
  let back = Array.of_list vs in
  let fwd = Hashtbl.create (List.length vs) in
  Array.iteri (fun i v -> Hashtbl.add fwd v i) back;
  let es =
    fold_edges
      (fun (u, v) acc ->
        match (Hashtbl.find_opt fwd u, Hashtbl.find_opt fwd v) with
        | Some u', Some v' -> (u', v') :: acc
        | _ -> acc)
      g []
  in
  (of_edges ~n:(Array.length back) es, back)

let equal g1 g2 = g1.n = g2.n && edges g1 = edges g2

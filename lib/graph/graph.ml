(* CSR (compressed sparse row) backend. The graph is immutable once
   built: [adj] holds every row's neighbors as one int slab, row [v]
   occupying [off.(v) .. off.(v+1) - 1], sorted ascending. Degrees are
   O(1) offset differences, edge membership is a binary search of the
   smaller endpoint's row, and iteration allocates nothing. The
   list-based seed implementation survives as [Graph_ref], the oracle
   of the @graphcore equivalence suite and the `bench perf` baseline. *)

type edge = int * int

type t = {
  n : int;
  m : int;
  off : int array; (* length n+1: row v is adj.(off.(v)) .. adj.(off.(v+1)-1) *)
  adj : int array; (* length 2m; each row sorted ascending, duplicate-free *)
}

let canonical_edge u v =
  if u = v then invalid_arg "Graph.canonical_edge: self-loop";
  if u < v then (u, v) else (v, u)

let n g = g.n
let m g = g.m

(* Build from a lex-sorted array of canonical edges in which duplicates
   appear only as adjacent equal entries (skipped). Rows come out sorted
   without any per-row sort: pass A walks the sorted edges appending the
   smaller endpoint to the larger one's row (so row v first receives its
   neighbors below v, in order), pass B appends the larger endpoint to
   the smaller one's row (neighbors above v, in order, after pass A). *)
let of_sorted_edge_array ~n ~m es =
  let k = Array.length es in
  let deg = Array.make (n + 1) 0 in
  let fresh i = i = 0 || es.(i - 1) <> es.(i) in
  for i = 0 to k - 1 do
    if fresh i then begin
      let u, v = es.(i) in
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1
    end
  done;
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + deg.(v)
  done;
  let adj = Array.make (2 * m) 0 in
  let cursor = Array.sub off 0 (n + 1) in
  for i = 0 to k - 1 do
    if fresh i then begin
      let u, v = es.(i) in
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1
    end
  done;
  for i = 0 to k - 1 do
    if fresh i then begin
      let u, v = es.(i) in
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1
    end
  done;
  { n; m; off; adj }

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let check v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.of_edges: vertex %d out of [0,%d)" v n)
  in
  let es = Array.of_list edges in
  let k = Array.length es in
  let m = ref 0 in
  for i = 0 to k - 1 do
    let u, v = es.(i) in
    let (u, v) = canonical_edge u v in
    check u;
    check v;
    es.(i) <- (u, v)
  done;
  Array.sort compare es;
  for i = 0 to k - 1 do
    if i = 0 || es.(i - 1) <> es.(i) then incr m
  done;
  of_sorted_edge_array ~n ~m:!m es

let empty ~n = of_edges ~n []

let check_vertex g v name =
  if v < 0 || v >= g.n then invalid_arg ("Graph." ^ name ^ ": vertex out of range")

let degree g v =
  check_vertex g v "neighbors";
  g.off.(v + 1) - g.off.(v)

let neighbors g v =
  check_vertex g v "neighbors";
  let lo = g.off.(v) in
  let rec go i acc = if i < lo then acc else go (i - 1) (g.adj.(i) :: acc) in
  go (g.off.(v + 1) - 1) []

let iter_neighbors g v f =
  check_vertex g v "iter_neighbors";
  for i = g.off.(v) to g.off.(v + 1) - 1 do
    f (Array.unsafe_get g.adj i)
  done

let fold_neighbors g v f acc =
  check_vertex g v "fold_neighbors";
  let acc = ref acc in
  for i = g.off.(v) to g.off.(v + 1) - 1 do
    acc := f !acc (Array.unsafe_get g.adj i)
  done;
  !acc

(* membership by binary search of the lower-degree endpoint's row *)
let row_mem g u v =
  let lo = ref g.off.(u) and hi = ref (g.off.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = Array.unsafe_get g.adj mid in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let mem_edge g u v =
  u <> v && u >= 0 && u < g.n && v >= 0 && v < g.n
  &&
  if g.off.(u + 1) - g.off.(u) <= g.off.(v + 1) - g.off.(v) then row_mem g u v
  else row_mem g v u

let fold_edges f g acc =
  let acc = ref acc in
  for u = 0 to g.n - 1 do
    for i = g.off.(u) to g.off.(u + 1) - 1 do
      let v = Array.unsafe_get g.adj i in
      if u < v then acc := f (u, v) !acc
    done
  done;
  !acc

let edges g = List.rev (fold_edges (fun e l -> e :: l) g [])

let iter_edges f g = fold_edges (fun e () -> f e) g ()

let fold_vertices f g acc =
  let acc = ref acc in
  for v = 0 to g.n - 1 do
    acc := f v !acc
  done;
  !acc

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    best := max !best (g.off.(v + 1) - g.off.(v))
  done;
  !best

(* Reusable scratch for [add_edges]: parallel endpoint arrays for the
   sort/dedupe pass and a delta-CSR pair for the merge pass. Module
   state is per-process (fork-safe; the library is not threaded),
   grown geometrically and retained, so a steady stream of insertion
   batches settles at zero minor allocation beyond the result CSR. *)
let scr_u = ref [||]
let scr_v = ref [||]
let scr_off = ref [||]
let scr_adj = ref [||]

let scratch r len =
  if Array.length !r < len then r := Array.make (max len (2 * Array.length !r)) 0;
  !r

(* Incremental edge insertion: validate and dedupe the additions, then
   merge each sorted row with its sorted delta in one linear pass — the
   full edge list is never materialized (the seed rebuilt the whole
   graph through [new_edges @ edges g]), and the additions live in int
   scratch arrays instead of boxed tuple lists. *)
let add_edges g new_edges =
  let check v =
    if v < 0 || v >= g.n then
      invalid_arg
        (Printf.sprintf "Graph.of_edges: vertex %d out of [0,%d)" v g.n)
  in
  let ne = List.length new_edges in
  let us = scratch scr_u ne and vs = scratch scr_v ne in
  List.iteri
    (fun i (u, v) ->
      let u, v = canonical_edge u v in
      check u;
      check v;
      us.(i) <- u;
      vs.(i) <- v)
    new_edges;
  (* in-place heapsort of the parallel endpoint arrays by (u, v):
     no comparator closure handed to a polymorphic sort, no boxing *)
  let less i j = us.(i) < us.(j) || (us.(i) = us.(j) && vs.(i) < vs.(j)) in
  let swap i j =
    let tu = us.(i) and tv = vs.(i) in
    us.(i) <- us.(j);
    vs.(i) <- vs.(j);
    us.(j) <- tu;
    vs.(j) <- tv
  in
  let rec sift i len =
    let l = (2 * i) + 1 in
    if l < len then begin
      let c = if l + 1 < len && less l (l + 1) then l + 1 else l in
      if less i c then begin
        swap i c;
        sift c len
      end
    end
  in
  for i = (ne / 2) - 1 downto 0 do
    sift i ne
  done;
  for last = ne - 1 downto 1 do
    swap 0 last;
    sift 0 last
  done;
  (* compact in place: keep each addition once (sorted, so duplicates
     are adjacent — compare against the last KEPT pair, since earlier
     slots may have been overwritten), and only if not already an edge *)
  let nfresh = ref 0 in
  for i = 0 to ne - 1 do
    let u = us.(i) and v = vs.(i) in
    let dup = !nfresh > 0 && us.(!nfresh - 1) = u && vs.(!nfresh - 1) = v in
    if (not dup) && not (mem_edge g u v) then begin
      us.(!nfresh) <- u;
      vs.(!nfresh) <- v;
      incr nfresh
    end
  done;
  let nf = !nfresh in
  if nf = 0 then g
  else begin
    (* delta CSR (both directions) in scratch. Scanning the compacted
       pairs in lexicographic order appends every row's neighbors in
       increasing order: row x first receives u's from pairs (u, x)
       with u < x (increasing, since the scan is sorted by first
       endpoint), then v's from its own contiguous block (x, v) with
       v > x (increasing within the block). *)
    let doff = scratch scr_off (g.n + 1) in
    Array.fill doff 0 (g.n + 1) 0;
    for i = 0 to nf - 1 do
      doff.(us.(i) + 1) <- doff.(us.(i) + 1) + 1;
      doff.(vs.(i) + 1) <- doff.(vs.(i) + 1) + 1
    done;
    for v = 0 to g.n - 1 do
      doff.(v + 1) <- doff.(v + 1) + doff.(v)
    done;
    let dadj = scratch scr_adj (2 * nf) in
    (* fill via doff as a cursor; afterwards doff.(v) is the END of
       row v, so row v spans [doff.(v-1), doff.(v)) (0 for v = 0) *)
    for i = 0 to nf - 1 do
      let u = us.(i) and v = vs.(i) in
      dadj.(doff.(u)) <- v;
      doff.(u) <- doff.(u) + 1;
      dadj.(doff.(v)) <- u;
      doff.(v) <- doff.(v) + 1
    done;
    let off = Array.make (g.n + 1) 0 in
    let adj = Array.make (2 * (g.m + nf)) 0 in
    let k = ref 0 in
    for v = 0 to g.n - 1 do
      off.(v) <- !k;
      (* merge the two sorted, disjoint rows *)
      let i = ref g.off.(v) and ihi = g.off.(v + 1) in
      let j = ref (if v = 0 then 0 else doff.(v - 1)) and jhi = doff.(v) in
      while !i < ihi || !j < jhi do
        let take_old = !j >= jhi || (!i < ihi && g.adj.(!i) < dadj.(!j)) in
        if take_old then begin
          adj.(!k) <- g.adj.(!i);
          incr i
        end
        else begin
          adj.(!k) <- dadj.(!j);
          incr j
        end;
        incr k
      done
    done;
    off.(g.n) <- !k;
    { n = g.n; m = g.m + nf; off; adj }
  end

let union_edges = add_edges

let induced g vs =
  let vs = List.sort_uniq compare vs in
  List.iter (fun v ->
      if v < 0 || v >= g.n then invalid_arg "Graph.induced: vertex out of range")
    vs;
  let back = Array.of_list vs in
  let fwd = Hashtbl.create (List.length vs) in
  Array.iteri (fun i v -> Hashtbl.add fwd v i) back;
  let es =
    fold_edges
      (fun (u, v) acc ->
        match (Hashtbl.find_opt fwd u, Hashtbl.find_opt fwd v) with
        | Some u', Some v' -> (u', v') :: acc
        | _ -> acc)
      g []
  in
  (of_edges ~n:(Array.length back) es, back)

let subgraph_edges g es =
  List.iter (fun (u, v) ->
      if not (mem_edge g u v) then
        invalid_arg "Graph.subgraph_edges: not an edge of the graph")
    es;
  of_edges ~n:g.n es

let relabel g perm =
  if Array.length perm <> g.n then invalid_arg "Graph.relabel: bad permutation";
  let seen = Array.make g.n false in
  Array.iter (fun v ->
      if v < 0 || v >= g.n || seen.(v) then
        invalid_arg "Graph.relabel: not a permutation"
      else seen.(v) <- true)
    perm;
  of_edges ~n:g.n (List.map (fun (u, v) -> (perm.(u), perm.(v))) (edges g))

let disjoint_union g1 g2 =
  let shift = g1.n in
  of_edges ~n:(g1.n + g2.n)
    (edges g1 @ List.map (fun (u, v) -> (u + shift, v + shift)) (edges g2))

let contract_edge g u v =
  if not (mem_edge g u v) then invalid_arg "Graph.contract_edge: not an edge";
  let (u, v) = canonical_edge u v in
  (* v is merged into u; vertices above v shift down by one *)
  let map = Array.make g.n 0 in
  for x = 0 to g.n - 1 do
    map.(x) <- (if x = v then u else if x > v then x - 1 else x)
  done;
  let es =
    fold_edges
      (fun (a, b) acc ->
        let a' = map.(a) and b' = map.(b) in
        if a' = b' then acc else canonical_edge a' b' :: acc)
      g []
  in
  (of_edges ~n:(g.n - 1) es, map)

let remove_vertex g v =
  if v < 0 || v >= g.n then invalid_arg "Graph.remove_vertex: out of range";
  let map = Array.make g.n 0 in
  for x = 0 to g.n - 1 do
    map.(x) <- (if x = v then -1 else if x > v then x - 1 else x)
  done;
  let es =
    fold_edges
      (fun (a, b) acc ->
        if a = v || b = v then acc else (map.(a), map.(b)) :: acc)
      g []
  in
  (of_edges ~n:(g.n - 1) es, map)

let remove_edge g u v =
  let (u, v) = canonical_edge u v in
  if not (mem_edge g u v) then g
  else begin
    (* drop one entry from row u and one from row v; every offset past a
       shrunken row shifts, so rebuild the two arrays in one linear pass *)
    let off = Array.make (g.n + 1) 0 in
    for x = 0 to g.n - 1 do
      let d = g.off.(x + 1) - g.off.(x) in
      let d = if x = u || x = v then d - 1 else d in
      off.(x + 1) <- off.(x) + d
    done;
    let adj = Array.make (2 * (g.m - 1)) 0 in
    for x = 0 to g.n - 1 do
      let k = ref off.(x) in
      let skip = if x = u then v else if x = v then u else -1 in
      for i = g.off.(x) to g.off.(x + 1) - 1 do
        let w = g.adj.(i) in
        if w <> skip then begin
          adj.(!k) <- w;
          incr k
        end
      done
    done;
    { n = g.n; m = g.m - 1; off; adj }
  end

(* CSR arrays are canonical for a given (n, edge set) *)
let equal g1 g2 = g1.n = g2.n && g1.m = g2.m && g1.off = g2.off && g1.adj = g2.adj

(* Backtracking isomorphism for small graphs: map vertices of g1 one by one,
   pruning on degree and adjacency consistency. *)
let is_isomorphic g1 g2 =
  if g1.n <> g2.n || g1.m <> g2.m then false
  else begin
    let n = g1.n in
    let deg1 = Array.init n (degree g1) and deg2 = Array.init n (degree g2) in
    let sorted a =
      let b = Array.copy a in
      Array.sort compare b;
      b
    in
    if sorted deg1 <> sorted deg2 then false
    else begin
      let image = Array.make n (-1) in
      let used = Array.make n false in
      let rec assign u =
        if u = n then true
        else
          let rec try_candidates v =
            if v = n then false
            else if
              (not used.(v))
              && deg1.(u) = deg2.(v)
              && List.for_all
                   (fun w ->
                     w >= u || mem_edge g2 image.(w) v)
                   (neighbors g1 u)
              && List.for_all
                   (fun w -> w >= u || mem_edge g1 u w = mem_edge g2 image.(w) v)
                   (List.init u (fun i -> i))
            then begin
              image.(u) <- v;
              used.(v) <- true;
              if assign (u + 1) then true
              else begin
                image.(u) <- -1;
                used.(v) <- false;
                try_candidates (v + 1)
              end
            end
            else try_candidates (v + 1)
          in
          try_candidates 0
      in
      assign 0
    end
  end

let pp ppf g =
  Format.fprintf ppf "@[<hov 2>graph(n=%d, m=%d;@ %a)@]" g.n g.m
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" u v))
    (edges g)

let to_string g = Format.asprintf "%a" pp g

(** Finite simple undirected graphs on vertices [0 .. n-1].

    This is the network substrate of the paper's model (§1.1): an n-vertex
    connected undirected graph whose vertices are processors and whose edges
    are communication links. The representation is immutable once built.

    Backend: compressed sparse row (CSR). Neighbor lists live in one int
    slab indexed by a per-vertex offset array, each row sorted ascending.
    [degree] is an O(1) offset difference, [mem_edge] a binary search of
    the smaller endpoint's row, and [iter_neighbors]/[fold_edges] walk the
    slab without allocating. [add_edges]/[remove_edge] rebuild only the
    arrays (linear in the graph), never the full edge list. *)

type t

type edge = int * int
(** Undirected edge, canonically stored with the smaller endpoint first. *)

val canonical_edge : int -> int -> edge
(** Order the endpoints. Raises [Invalid_argument] on a self-loop. *)

(** {1 Construction} *)

val of_edges : n:int -> edge list -> t
(** [of_edges ~n edges] builds the graph with vertex set [0..n-1]. Duplicate
    edges are collapsed; self-loops are rejected. Raises [Invalid_argument]
    if an endpoint is out of range. *)

val empty : n:int -> t

val add_edges : t -> edge list -> t
(** Incremental: edges already present are ignored and duplicates among
    the additions are collapsed (listing an edge twice adds it once);
    the adjacency arrays are rebuilt in one linear merge pass (the full
    edge list is never materialized). Returns the graph unchanged
    {e physically} ([==], not merely {!equal}) when every listed edge is
    already present — including the empty list — so a no-op delta costs
    nothing and callers may use sharing as a change test. Raises
    [Invalid_argument] on a self-loop or an endpoint outside [0..n-1];
    the graph is never mutated (it is immutable), so a raising call
    leaves the original fully usable. *)

(** {1 Accessors} *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val neighbors : t -> int -> int list
(** Sorted, duplicate-free. Allocates a fresh list; prefer
    {!iter_neighbors}/{!fold_neighbors} on hot paths. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors g v f] applies [f] to each neighbor of [v] in
    ascending order, without allocating. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** Left fold over the neighbors of [v] in ascending order. *)

val degree : t -> int -> int
(** O(1): an offset difference in the CSR index. *)

val mem_edge : t -> int -> int -> bool
(** O(log deg): binary search of the smaller endpoint's neighbor row. *)

val edges : t -> edge list
(** Sorted lexicographically; each edge appears once. *)

val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a
val iter_edges : (edge -> unit) -> t -> unit
val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a

val max_degree : t -> int

(** {1 Transformations} *)

val induced : t -> int list -> t * int array
(** [induced g vs] is the subgraph induced by the vertex set [vs] (duplicates
    ignored), with vertices renumbered [0..|vs|-1] in increasing original
    order, together with the map from new index to original vertex. *)

val subgraph_edges : t -> edge list -> t
(** Same vertex set, keep only the listed edges (all must be edges of [g]). *)

val union_edges : t -> edge list -> t
(** Alias of {!add_edges}, named for readability at call sites that build
    completions. *)

val relabel : t -> int array -> t
(** [relabel g perm] renames vertex [v] to [perm.(v)]; [perm] must be a
    permutation of [0..n-1]. *)

val disjoint_union : t -> t -> t
(** Vertices of the second graph are shifted by [n] of the first. *)

val contract_edge : t -> int -> int -> t * int array
(** [contract_edge g u v] contracts edge [{u,v}] (which must exist), removing
    any parallel edges/self-loops created; returns the new graph and the map
    from old vertex to new vertex. *)

val remove_vertex : t -> int -> t * int array
(** Delete a vertex; returns the new graph and old→new map, where the removed
    vertex maps to [-1]. *)

val remove_edge : t -> int -> int -> t
(** Drop one edge in a single linear pass over the adjacency arrays.
    Removing a non-edge returns the graph unchanged {e physically}
    ([==], not merely {!equal}) — the mirror of {!add_edges}'s no-op
    contract, and what lets an edit pipeline detect "nothing happened"
    by sharing alone. Raises [Invalid_argument] on a self-loop
    ([u = v]); out-of-range endpoints are simply non-edges. *)

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
(** Same vertex count and same edge set. *)

val is_isomorphic : t -> t -> bool
(** Exact isomorphism test by backtracking; intended for small graphs
    (tests and figure demos only). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

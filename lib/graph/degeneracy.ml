let degeneracy_order g =
  let n = Graph.n g in
  let deg = Array.init n (Graph.degree g) in
  let removed = Array.make n false in
  let order = Array.make n 0 in
  let d = ref 0 in
  for step = 0 to n - 1 do
    let v = ref (-1) in
    for u = 0 to n - 1 do
      if (not removed.(u)) && (!v < 0 || deg.(u) < deg.(!v)) then v := u
    done;
    let v = !v in
    d := max !d deg.(v);
    removed.(v) <- true;
    order.(step) <- v;
    Graph.iter_neighbors g v (fun w ->
        if not removed.(w) then deg.(w) <- deg.(w) - 1)
  done;
  (!d, order)

let degeneracy g = fst (degeneracy_order g)

let orientation g =
  let _, order = degeneracy_order g in
  let pos = Array.make (Graph.n g) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  Graph.fold_edges
    (fun (u, v) acc -> (if pos.(u) < pos.(v) then (u, v) else (v, u)) :: acc)
    g []
  |> List.rev

let out_edges g =
  let out = Array.make (Graph.n g) [] in
  List.iter (fun (u, v) -> out.(u) <- v :: out.(u)) (orientation g);
  Array.map List.rev out

let max_outdegree g =
  Array.fold_left (fun acc l -> max acc (List.length l)) 0 (out_edges g)

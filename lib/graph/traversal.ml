let bfs_generic g s ~on_tree_edge =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  dist.(s) <- 0;
  Queue.push s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          on_tree_edge u v;
          Queue.push v q
        end)
  done;
  dist

let bfs_from g s = bfs_generic g s ~on_tree_edge:(fun _ _ -> ())

let bfs_tree g s =
  let parent = Array.make (Graph.n g) (-1) in
  let _ = bfs_generic g s ~on_tree_edge:(fun u v -> parent.(v) <- u) in
  parent

let connected_components g =
  let n = Graph.n g in
  let seen = Array.make n false in
  let comps = ref [] in
  for s = 0 to n - 1 do
    if not seen.(s) then begin
      let dist = bfs_from g s in
      let comp = ref [] in
      for v = n - 1 downto 0 do
        if dist.(v) >= 0 then begin
          seen.(v) <- true;
          comp := v :: !comp
        end
      done;
      comps := !comp :: !comps
    end
  done;
  List.rev !comps

let component_of g v =
  let dist = bfs_from g v in
  let comp = ref [] in
  for u = Graph.n g - 1 downto 0 do
    if dist.(u) >= 0 then comp := u :: !comp
  done;
  !comp

let is_connected g =
  Graph.n g = 0 || List.length (component_of g 0) = Graph.n g

let shortest_path g s t =
  let parent = Array.make (Graph.n g) (-1) in
  let dist = bfs_generic g s ~on_tree_edge:(fun u v -> parent.(v) <- u) in
  if dist.(t) < 0 then None
  else begin
    let rec walk v acc = if v = s then s :: acc else walk parent.(v) (v :: acc) in
    Some (walk t [])
  end

let any_path g s t =
  let n = Graph.n g in
  let seen = Array.make n false in
  let rec dfs v acc =
    if v = t then Some (List.rev (v :: acc))
    else begin
      seen.(v) <- true;
      let rec try_nbrs = function
        | [] -> None
        | w :: rest ->
            if seen.(w) then try_nbrs rest
            else begin
              match dfs w (v :: acc) with
              | Some p -> Some p
              | None -> try_nbrs rest
            end
      in
      try_nbrs (Graph.neighbors g v)
    end
  in
  if s = t then Some [ s ] else dfs s []

let spanning_tree g ~root =
  let acc = ref [] in
  let _ =
    bfs_generic g root ~on_tree_edge:(fun u v ->
        acc := Graph.canonical_edge u v :: !acc)
  in
  List.rev !acc

let is_acyclic g =
  (* a forest has exactly n - (#components) edges *)
  Graph.m g = Graph.n g - List.length (connected_components g)

let is_tree g = is_connected g && Graph.m g = Graph.n g - 1

let is_path_graph g =
  is_tree g && Graph.fold_vertices (fun v ok -> ok && Graph.degree g v <= 2) g true

let is_cycle_graph g =
  Graph.n g >= 3 && is_connected g
  && Graph.fold_vertices (fun v ok -> ok && Graph.degree g v = 2) g true

let longest_path_length g =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    let best = ref 1 in
    let seen = Array.make n false in
    let rec dfs v len =
      if len > !best then best := len;
      Graph.iter_neighbors g v (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            dfs w (len + 1);
            seen.(w) <- false
          end)
    in
    for s = 0 to n - 1 do
      seen.(s) <- true;
      dfs s 1;
      seen.(s) <- false
    done;
    !best
  end

let eccentricity g v =
  Array.fold_left max 0 (bfs_from g v)

let diameter g =
  if not (is_connected g) then invalid_arg "Traversal.diameter: disconnected";
  Graph.fold_vertices (fun v acc -> max acc (eccentricity g v)) g 0

(* Command-line front-end of the fault-injection campaign
   (lib/core/faultsim.ml): sweep schemes x fault models over seeded
   trials, print the soundness matrix, and exit non-zero on any
   soundness escape.

   Examples:
     faultsim.exe                            # full campaign, defaults
     faultsim.exe --trials 100 --seed 7
     faultsim.exe --scheme theorem1-connectivity --fault crash
     faultsim.exe --list                     # show schemes and faults *)

module FS = Lcp_cert.Faultsim

let list_roster () =
  print_endline "schemes:";
  List.iter (fun s -> Printf.printf "  %s\n" s) FS.scheme_names;
  print_endline "fault models:";
  List.iter (fun f -> Printf.printf "  %s\n" f) FS.fault_names

let run seed trials schemes fault_sel list =
  if list then begin
    list_roster ();
    exit 0
  end;
  let unknown kind known name =
    Printf.eprintf "unknown %s %S; known: %s\n" kind name
      (String.concat ", " known);
    exit 2
  in
  List.iter
    (fun s -> if not (List.mem s FS.scheme_names) then
        unknown "scheme" FS.scheme_names s)
    schemes;
  let faults =
    match fault_sel with
    | [] -> None
    | names ->
        Some
          (List.map
             (fun name ->
               match FS.fault_of_name name with
               | Some spec -> spec
               | None -> unknown "fault model" FS.fault_names name)
             names)
  in
  let schemes = match schemes with [] -> None | names -> Some names in
  let report = FS.run ~seed ~trials ?schemes ?faults () in
  FS.print_matrix report;
  if report.FS.total_escapes > 0 then begin
    Printf.eprintf "\nfaultsim: %d soundness escape(s)\n"
      report.FS.total_escapes;
    exit 1
  end

open Cmdliner

let seed =
  Arg.(value & opt int 20250806 & info [ "seed" ] ~doc:"Campaign seed.")

let trials =
  Arg.(
    value
    & opt int 30
    & info [ "trials" ] ~docv:"T"
        ~doc:"Trials per (scheme, fault model) cell.")

let schemes =
  Arg.(
    value
    & opt_all string []
    & info [ "scheme" ] ~docv:"NAME"
        ~doc:"Restrict to this scheme (repeatable; default: all).")

let faults =
  Arg.(
    value
    & opt_all string []
    & info [ "fault" ] ~docv:"NAME"
        ~doc:"Restrict to this fault model (repeatable; default: all).")

let list_flag =
  Arg.(
    value & flag
    & info [ "list" ] ~doc:"List schemes and fault models, then exit.")

let cmd =
  let doc =
    "adversarial fault-injection campaign over proof labeling schemes"
  in
  Cmd.v
    (Cmd.info "faultsim" ~doc)
    Term.(const run $ seed $ trials $ schemes $ faults $ list_flag)

let () = exit (Cmd.eval cmd)

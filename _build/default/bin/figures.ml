(* Regenerate the paper's ten construction figures as ASCII demos.

   Usage: figures.exe [1..10|all] (default: all). Each figure is produced
   by running the actual library code on the figure's example (or the
   closest concrete instance the paper describes). *)

module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module I = Lcp_interval.Interval
module Rep = Lcp_interval.Representation
module PW = Lcp_interval.Pathwidth
module LP = Lcp_lanes.Lane_partition
module Cmp = Lcp_lanes.Completion
module LC = Lcp_lanes.Low_congestion
module E = Lcp_lanes.Embedding
module K = Lcp_lanewidth.Klane
module M = Lcp_lanewidth.Merge
module Tr = Lcp_lanewidth.Trace
module P52 = Lcp_lanewidth.Prop52
module H = Lcp_lanewidth.Hierarchy
module Bld = Lcp_lanewidth.Builder
module A = Lcp_algebra

let header n title =
  Printf.printf "\n=== Figure %d: %s ===\n\n" n title

(* Figure 1: path decomposition and interval representation of a 6-cycle *)
let fig1 () =
  header 1 "path decomposition and interval representation of a 6-cycle";
  let g = Gen.cycle 6 in
  let rep = PW.exact_interval_representation g in
  Printf.printf "%s\n\n" (G.to_string g);
  Format.printf "%a" Rep.pp rep;
  let pd = Lcp_interval.Path_decomposition.of_interval_representation rep in
  Format.printf "\nbags:\n%a" Lcp_interval.Path_decomposition.pp pd;
  Printf.printf "width %d = pathwidth 2 + 1\n" (Rep.width rep)

(* Figure 2: combining two 3-terminal graphs — we show the k-lane analogue,
   a Bridge-merge of two 2-vertex pieces inside a host *)
let fig2 () =
  header 2 "combining two terminal graphs (k-lane analogue)";
  let host = G.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ] in
  let left =
    K.make ~host ~vertices:[ 0; 1; 2 ] ~edges:[ (0, 1); (1, 2) ]
      ~lane_in:[ (0, 0) ] ~lane_out:[ (0, 2) ]
  in
  let right =
    K.make ~host ~vertices:[ 3; 4; 5 ] ~edges:[ (3, 4); (4, 5) ]
      ~lane_in:[ (1, 5) ] ~lane_out:[ (1, 3) ]
  in
  Format.printf "G1 = %a@.G2 = %a@." K.pp left K.pp right;
  let merged = M.bridge_merge left right ~i:0 ~j:1 in
  Format.printf "Bridge-merge(G1, G2, 0, 1) = %a@." K.pp merged

(* Figure 3: weak completion and completion *)
let fig3 () =
  header 3 "weak completion and completion";
  let g = Gen.cycle 6 in
  let rep = PW.exact_interval_representation g in
  let r = LC.construct rep in
  let p = r.LC.partition in
  Format.printf "lanes:@.%a@." LP.pp p;
  Printf.printf "E1 (lane paths):     %s\n"
    (String.concat ", "
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) (Cmp.e1_edges p)));
  Printf.printf "E2 (initial chain):  %s\n"
    (String.concat ", "
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) (Cmp.e2_edges p)));
  Printf.printf "weak completion: %s\n" (G.to_string (Cmp.weak_completion p));
  Printf.printf "completion:      %s\n" (G.to_string (Cmp.completion p))

(* Figures 4-6: the Prop 4.6 construction internals on a concrete graph *)
let construction_demo () =
  let rng = Random.State.make [| 7 |] in
  let g, ivs = Gen.random_pathwidth rng ~n:14 ~k:2 () in
  let rep = Rep.of_pairs g ivs in
  (g, rep, LC.construct rep)

let fig4 () =
  header 4 "Section 4.2 terminology: v_st, v_ed, P, S, S1, S2";
  let g, rep, r = construction_demo () in
  Printf.printf "%s\n\n" (G.to_string g);
  Format.printf "%a@." Rep.pp rep;
  let s = r.LC.spine in
  Printf.printf "v_st = %d (min left endpoint), v_ed = %d (max right)\n"
    s.LC.v_st s.LC.v_ed;
  Printf.printf "P    = %s\n"
    (String.concat " - " (List.map string_of_int s.LC.path));
  Printf.printf "S    = %s\n"
    (String.concat ", " (List.map string_of_int s.LC.s_seq));
  let rec split i = function
    | [] -> ([], [])
    | x :: rest ->
        let a, b = split (i + 1) rest in
        if i mod 2 = 0 then (x :: a, b) else (a, x :: b)
  in
  let s1, s2 = split 0 s.LC.s_seq in
  Printf.printf "S1   = %s\nS2   = %s\n"
    (String.concat ", " (List.map string_of_int s1))
    (String.concat ", " (List.map string_of_int s2))

let fig5 () =
  header 5 "Case 1 embedding: spine lanes route through P";
  let g, _, r = construction_demo () in
  ignore g;
  Printf.printf "embedded virtual edges (weak completion):\n";
  List.iter
    (fun ((u, v), path) ->
      Printf.printf "  %d-%d  ~>  %s\n" u v
        (String.concat " - " (List.map string_of_int path)))
    r.LC.weak_embedding;
  Printf.printf "\nweak congestion = %d (bound g(w))\n" (LC.congestion_weak r)

let fig6 () =
  header 6 "Case 2.2 embedding across components + completion edges";
  let g, _, r = construction_demo () in
  Printf.printf "completion edges (E2) and their paths:\n";
  let weak = List.map fst r.LC.weak_embedding in
  List.iter
    (fun ((u, v), path) ->
      if not (List.mem (u, v) weak) then
        Printf.printf "  %d-%d  ~>  %s\n" u v
          (String.concat " - " (List.map string_of_int path)))
    r.LC.full_embedding;
  Printf.printf "\nfull congestion = %d (bound h(w))\n" (LC.congestion_full r);
  Printf.printf "per-edge loads:\n";
  List.iter
    (fun ((u, v), c) -> Printf.printf "  edge %d-%d: %d paths\n" u v c)
    (E.edge_loads g r.LC.full_embedding)

(* Figure 7: a bounded-lanewidth construction *)
let fig7 () =
  header 7 "a bounded-lanewidth graph built by V-insert/E-insert (Def 5.1)";
  let tr =
    {
      Tr.k = 3;
      ops =
        [
          Tr.V_insert 0; Tr.V_insert 1; Tr.E_insert (0, 1); Tr.V_insert 0;
          Tr.E_insert (0, 2); Tr.V_insert 2; Tr.E_insert (1, 2);
        ];
    }
  in
  Format.printf "trace: %a@." Tr.pp tr;
  let g = Tr.eval tr in
  Printf.printf "result: %s\n" (G.to_string g);
  Printf.printf "designated history (v, first, last):\n";
  List.iter
    (fun (v, l, r) -> Printf.printf "  v%d: [%d, %d] lane %d\n" v l r
        (Tr.lane_assignment tr).(v))
    (Tr.designated_history tr);
  let rep, part = P52.completion_of_trace tr in
  Format.printf "\nProp 5.2 interval view:@.%a@.lanes:@.%a@." Rep.pp rep LP.pp
    part

(* Figure 8: Bridge-merge and Parent-merge *)
let fig8 () =
  header 8 "Bridge-merge and Parent-merge";
  let host = G.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (1, 4); (4, 5) ] in
  let base =
    K.make ~host ~vertices:[ 0; 1 ] ~edges:[ (0, 1) ]
      ~lane_in:[ (0, 0) ] ~lane_out:[ (0, 1) ]
  in
  let child = K.single_edge ~host ~lane:0 ~t_in:1 ~t_out:2 in
  Format.printf "parent = %a@.child  = %a@." K.pp base K.pp child;
  let pm = M.parent_merge ~child ~parent:base in
  Format.printf "Parent-merge(child, parent) = %a@.@." K.pp pm;
  let other = K.make ~host ~vertices:[ 4; 5 ] ~edges:[ (4, 5) ]
      ~lane_in:[ (1, 5) ] ~lane_out:[ (1, 4) ]
  in
  Format.printf "other  = %a@." K.pp other;
  (* bridge at lane 0 out-terminal 1? 1-4 is a host edge *)
  let left = K.make ~host ~vertices:[ 0; 1 ] ~edges:[ (0, 1) ]
      ~lane_in:[ (0, 0) ] ~lane_out:[ (0, 1) ]
  in
  let bm = M.bridge_merge left other ~i:0 ~j:1 in
  Format.printf "Bridge-merge(left, other, 0, 1) = %a@." K.pp bm

(* Figure 9: Tree-merge *)
let fig9 () =
  header 9 "Tree-merge";
  let host =
    G.of_edges ~n:7 [ (0, 1); (1, 2); (0, 3); (3, 4); (1, 5); (5, 6) ]
  in
  let root = K.of_path ~host [ 0; 1; 2 ] in
  let c1 = K.single_edge ~host ~lane:0 ~t_in:0 ~t_out:3 in
  let c11 = K.single_edge ~host ~lane:0 ~t_in:3 ~t_out:4 in
  let c2 = K.single_edge ~host ~lane:1 ~t_in:1 ~t_out:5 in
  let c21 = K.single_edge ~host ~lane:1 ~t_in:5 ~t_out:6 in
  let tree =
    {
      M.piece = root;
      children =
        [
          { M.piece = c1; children = [ { M.piece = c11; children = [] } ] };
          { M.piece = c2; children = [ { M.piece = c21; children = [] } ] };
        ];
    }
  in
  Format.printf "root  = %a@.c1    = %a@.c1.1  = %a@.c2    = %a@.c2.1  = %a@."
    K.pp root K.pp c1 K.pp c11 K.pp c2 K.pp c21;
  Format.printf "Tree-merge = %a@." K.pp (M.tree_merge tree)

(* Figure 10: constructing a bounded-lanewidth graph as a T-node *)
let fig10 () =
  header 10 "a lanewidth construction as a T-node hierarchy (Prop 5.6)";
  let tr =
    {
      Tr.k = 2;
      ops =
        [
          Tr.V_insert 0; Tr.V_insert 1; Tr.E_insert (0, 1); Tr.V_insert 0;
          Tr.E_insert (0, 1);
        ];
    }
  in
  Format.printf "trace: %a@." Tr.pp tr;
  let g = Tr.eval tr in
  Printf.printf "graph: %s\n\n" (G.to_string g);
  let h = Bld.of_trace tr in
  Format.printf "%a@.@." H.pp_summary h;
  let rec render indent node =
    let pad = String.make indent ' ' in
    let kl = H.klane_of node in
    let kind =
      match node with
      | H.V_node _ -> "V-node"
      | H.E_node _ -> "E-node"
      | H.P_node _ -> "P-node"
      | H.B_node _ -> "B-node"
      | H.T_node _ -> "T-node"
    in
    Format.printf "%s%s %a@." pad kind K.pp kl;
    match node with
    | H.B_node { left; right; _ } ->
        render (indent + 2) left;
        render (indent + 2) right
    | H.T_node { tree; _ } ->
        let rec walk indent (t : H.ttree) =
          render indent t.H.piece;
          List.iter (walk (indent + 2)) t.H.children
        in
        walk (indent + 2) tree
    | _ -> ()
  in
  render 0 h;
  Printf.printf "\ndepth = %d <= 2k = %d\n" (H.depth h) (2 * tr.Tr.k)

let () =
  let figs =
    [ (1, fig1); (2, fig2); (3, fig3); (4, fig4); (5, fig5); (6, fig6);
      (7, fig7); (8, fig8); (9, fig9); (10, fig10) ]
  in
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  if which = "all" then List.iter (fun (_, f) -> f ()) figs
  else
    match int_of_string_opt which with
    | Some n when List.mem_assoc n figs -> (List.assoc n figs) ()
    | _ ->
        prerr_endline "usage: figures.exe [1..10|all]";
        exit 1

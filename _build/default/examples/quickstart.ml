(* Quickstart: certify a property on a small network in a few lines.

     dune exec examples/quickstart.exe

   The scenario: a ring network of 12 processors wants a locally checkable
   proof that the network is bipartite (2-colorable). The prover is a
   centralized entity; verification is one round of label exchange. *)

module Gen = Lcp_graph.Gen
module PLS = Lcp_pls
module S = PLS.Scheme

(* 1. instantiate Theorem 1 for the property: any algebra from
   Lcp_algebra works (each is an MSO₂ property, see Lcp_mso.Properties) *)
module Certifier = Lcp_cert.Theorem1.Make (Lcp_algebra.Bipartite)

let () =
  (* 2. the network: a 12-cycle with random O(log n)-bit identifiers *)
  let rng = Random.State.make [| 1 |] in
  let graph = Gen.cycle 12 in
  let network = PLS.Config.random_ids rng graph in

  (* 3. the scheme for pathwidth <= 2 (cycles have pathwidth 2) *)
  let scheme = Certifier.edge_scheme ~k:2 () in

  (* 4. the centralized prover assigns one label per edge *)
  let labels =
    match scheme.S.es_prove network with
    | Some labels -> labels
    | None -> failwith "the property does not hold on this network"
  in
  Printf.printf "certificate: %d bits per edge label (max), n = 12\n"
    (S.max_edge_label_bits scheme labels);

  (* 5. every vertex verifies locally: one round, incident labels only *)
  (match S.run_edge network scheme labels with
  | S.Accepted -> print_endline "verification: every vertex accepts"
  | S.Rejected _ -> print_endline "verification: rejected (bug!)");

  (* 6. soundness in action: certify an ODD ring as bipartite *)
  let odd = PLS.Config.random_ids rng (Gen.cycle 11) in
  (match scheme.S.es_prove odd with
  | None -> print_endline "odd ring: prover declines, as it must"
  | Some _ -> print_endline "odd ring: prover accepted (bug!)");

  (* ... and no adversary can do better: reuse the even ring's pipeline on
     the odd ring with a forged acceptance bit *)
  match Certifier.P.prepare odd with
  | Error m -> Printf.printf "prepare failed: %s\n" m
  | Ok art ->
      let forged =
        S.Edge_map.map
          (fun l -> { l with Lcp_cert.Certificate.accept_state = true })
          art.Certifier.P.labels
      in
      (match S.run_edge odd scheme forged with
      | S.Accepted -> print_endline "forged proof accepted (bug!)"
      | S.Rejected rs ->
          Printf.printf
            "forged proof on the odd ring: %d vertices reject (e.g. %S)\n"
            (List.length rs)
            (snd (List.hd rs)))

(* Corollary 1.2: certifying F-minor-free graphs with O(log n)-bit labels.

     dune exec examples/minor_free.exe

   The Excluding Forest Theorem (Robertson–Seymour) says every F-minor-free
   graph has pathwidth at most |V(F)| - 2, for any forest F. The paper
   combines this with Theorem 1 to answer [BFP24, Question 54]: T-minor-free
   graphs are certifiable with O(log n) bits for every tree T.

   This example walks the whole chain for F = P₄ (the 4-vertex path):
   P₄-minor-free graphs are exactly the graphs whose components have no
   simple path on 4 vertices — e.g. stars and triangles with pendant
   vertices. We (a) verify the pathwidth bound empirically, (b) certify a
   P₄-minor-free graph, and (c) watch a graph WITH a P₄ minor be declined. *)

module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module Minor = Lcp_graph.Minor
module PW = Lcp_interval.Pathwidth
module PLS = Lcp_pls
module S = PLS.Scheme
module A = Lcp_algebra

let () =
  let rng = Random.State.make [| 3 |] in
  print_endline "=== Corollary 1.2: F-minor-free certification, F = P4 ===\n";

  (* (a) the Excluding Forest Theorem, empirically: P4-minor-free graphs
     have pathwidth <= |V(P4)| - 2 = 2 *)
  let bound = Minor.excluding_forest_pathwidth_bound (Gen.path 4) in
  Printf.printf "Excluding Forest Theorem bound for P4: pathwidth <= %d\n"
    bound;
  let families =
    [
      ("star_8", Gen.star 8);
      ("triangle", Gen.cycle 3);
      ("star_3", Gen.star 3);
      ("two-level star", G.of_edges ~n:5 [ (0, 1); (0, 2); (0, 3); (0, 4) ]);
    ]
  in
  List.iter
    (fun (name, g) ->
      let free = not (Minor.has_path_minor g ~t:4) in
      let pw = PW.exact g in
      Printf.printf "  %-16s P4-minor-free=%b  pathwidth=%d (bound %d)\n" name
        free pw bound;
      assert ((not free) || pw <= bound))
    families;

  (* (b) certify a P4-minor-free network: a big star, property=acyclic
     (stars are trees). The certificate is O(log n) bits by Theorem 1. *)
  print_endline "\nCertifying a star network (P4-minor-free, pathwidth 1):";
  let module T1 = Lcp_cert.Theorem1.Make (A.Acyclicity) in
  List.iter
    (fun n ->
      let g = Gen.star n in
      let cfg = PLS.Config.random_ids rng g in
      let scheme =
        T1.edge_scheme
          ~rep:(fun c ->
            Some (PW.heuristic_interval_representation (PLS.Config.graph c)))
          ~k:1 ()
      in
      match scheme.S.es_prove cfg with
      | None -> Printf.printf "  n=%4d: prover declined (bug)\n" (n + 1)
      | Some labels ->
          let ok = S.accepted (S.run_edge cfg scheme labels) in
          Printf.printf "  n=%4d leaves: %s, %d bits per label\n" n
            (if ok then "all accept" else "REJECTED")
            (S.max_edge_label_bits scheme labels))
    [ 8; 32; 128; 512 ];

  (* (c) a graph with a P4 minor: the prover must refuse to pretend it is
     a star-like (P4-free) instance. We certify "is_path" on it — any
     property works; the point is the minor test drives the promise. *)
  print_endline "\nA P6 has a P4 minor:";
  let g = Gen.path 6 in
  Printf.printf "  has_path_minor(P6, t=4) = %b\n"
    (Minor.has_path_minor g ~t:4);
  Printf.printf "  generic minor search agrees: %b\n"
    (Minor.has_minor g ~minor:(Gen.path 4));
  print_endline "\nDone: forests excluded => bounded pathwidth => O(log n) PLS."

examples/minor_free.ml: Lcp_algebra Lcp_cert Lcp_graph Lcp_interval Lcp_pls List Printf Random

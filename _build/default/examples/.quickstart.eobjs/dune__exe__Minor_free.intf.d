examples/minor_free.mli:

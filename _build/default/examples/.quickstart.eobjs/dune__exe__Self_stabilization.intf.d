examples/self_stabilization.mli:

examples/quickstart.mli:

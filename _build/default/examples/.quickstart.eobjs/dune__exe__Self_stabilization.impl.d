examples/self_stabilization.ml: Array Lcp_algebra Lcp_cert Lcp_graph Lcp_pls List Option Printf Random String

(* Tests for the PLS framework: configurations, the simulation harness,
   the pointer scheme (Prop 2.2), the edge->vertex transform (Prop 2.1),
   the 1-bit bipartiteness scheme, and the universal scheme. *)

open Test_util
module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module T = Lcp_graph.Traversal
module PLS = Lcp_pls
module S = PLS.Scheme
module EM = S.Edge_map
module ST = PLS.Spanning_tree

let config_basics () =
  let g = Gen.path 3 in
  let cfg = PLS.Config.make g in
  check_int "default ids" 1 (PLS.Config.id cfg 1);
  check "lookup" true (PLS.Config.vertex_of_id cfg 2 = Some 2);
  check "missing id" true (PLS.Config.vertex_of_id cfg 9 = None);
  check "duplicate ids rejected" true
    (try
       ignore (PLS.Config.make ~ids:[| 1; 1; 2 |] g);
       false
     with Invalid_argument _ -> true);
  let cfg2 = PLS.Config.random_ids (rng_of_seed 4) g in
  let ids = List.init 3 (fun v -> PLS.Config.id cfg2 v) in
  check "random distinct" true
    (List.length (List.sort_uniq compare ids) = 3)

let edge_map () =
  let m = EM.of_list [ ((0, 1), "a"); ((2, 1), "b") ] in
  check "find canonical" true (EM.find m (1, 0) = Some "a");
  check "find reversed" true (EM.find m (1, 2) = Some "b");
  check "missing" true (EM.find m (0, 2) = None);
  check_int "cardinal" 2 (EM.cardinal m);
  check "map" true (EM.find (EM.map String.uppercase_ascii m) (0, 1) = Some "A")

let run_edge_totality () =
  let g = Gen.path 3 in
  let cfg = PLS.Config.make g in
  let scheme =
    {
      S.es_name = "trivial";
      es_prove = (fun _ -> Some (EM.of_list [ ((0, 1), ()); ((1, 2), ()) ]));
      es_verify = (fun _ -> Ok ());
      es_encode = (fun _ () -> ());
    }
  in
  check "accepts" true
    (S.accepted (S.run_edge cfg scheme (Option.get (scheme.S.es_prove cfg))));
  (* a partial labeling is a detectable fault, not a harness error: both
     endpoints of the unlabeled edge reject with the missing-label reason *)
  (match S.run_edge cfg scheme (EM.of_list [ ((0, 1), ()) ]) with
  | S.Accepted -> check "partial labeling rejected" true false
  | S.Rejected rs ->
      check "partial labeling rejected" true
        (List.sort compare (List.map fst rs) = [ 1; 2 ]
        && List.for_all (fun (_, m) -> m = S.missing_label) rs))

let rejection_reporting () =
  let g = Gen.path 3 in
  let cfg = PLS.Config.make g in
  let scheme =
    {
      S.es_name = "grumpy";
      es_prove = (fun _ -> None);
      es_verify =
        (fun v -> if v.S.ev_id = 1 then Error "middle vertex" else Ok ());
      es_encode = (fun _ () -> ());
    }
  in
  match S.run_edge cfg scheme (EM.of_list [ ((0, 1), ()); ((1, 2), ()) ]) with
  | S.Rejected [ (1, "middle vertex") ] -> ()
  | _ -> Alcotest.fail "expected exactly vertex 1 to reject"

let pointer_completeness () =
  let rng = rng_of_seed 9 in
  List.iter
    (fun (name, g) ->
      if T.is_connected g then begin
        let cfg = PLS.Config.random_ids rng g in
        let target = PLS.Config.id cfg (G.n g / 2) in
        let scheme = ST.scheme ~target in
        match scheme.S.es_prove cfg with
        | None -> Alcotest.fail (name ^ ": prover declined")
        | Some labels ->
            check (name ^ " accepts") true
              (S.accepted (S.run_edge cfg scheme labels))
      end)
    named_families

let pointer_soundness_missing_target () =
  let rng = rng_of_seed 10 in
  let g = Gen.grid 3 3 in
  let cfg = PLS.Config.random_ids rng g in
  let absent = 1 lsl 22 in
  let scheme = ST.scheme ~target:absent in
  check "prover declines" true (scheme.S.es_prove cfg = None);
  (* adversary: honest tree for some root, with the target id rewritten *)
  let real_target = PLS.Config.id cfg 0 in
  let honest = ST.labels_for cfg ~root:0 ~target:real_target in
  let forged = EM.map (fun l -> { l with ST.target = absent }) honest in
  check "forged rejected" false (S.accepted (S.run_edge cfg scheme forged))

let pointer_soundness_mutations () =
  let rng = rng_of_seed 11 in
  let g = Gen.caterpillar ~spine:5 ~legs:1 in
  let cfg = PLS.Config.random_ids rng g in
  let target = PLS.Config.id cfg 3 in
  let scheme = ST.scheme ~target in
  let labels = Option.get (scheme.S.es_prove cfg) in
  (* corrupt each edge's label in turn; every corruption must be caught *)
  List.iter
    (fun (e, l) ->
      let bad =
        match l.ST.parent with
        | Some (d, c) -> { l with ST.parent = Some (d + 1, c) }
        | None -> { l with ST.parent = Some (1, target) }
      in
      let forged = EM.add labels e bad in
      check "mutation caught" false
        (S.accepted (S.run_edge cfg scheme forged)))
    (EM.bindings labels)

let pointer_single_vertex () =
  let g = Gen.path 1 in
  let cfg = PLS.Config.make g in
  let ok = ST.scheme ~target:0 in
  check "single accepts" true
    (S.accepted (S.run_edge cfg ok (Option.get (ok.S.es_prove cfg))));
  let bad = ST.scheme ~target:7 in
  check "single prover declines" true (bad.S.es_prove cfg = None);
  check "single rejects" false
    (S.accepted (S.run_edge cfg bad EM.empty))

let bipartite_scheme () =
  let rng = rng_of_seed 12 in
  let run g expect =
    let cfg = PLS.Config.random_ids rng g in
    match PLS.Bipartite_scheme.scheme.S.vs_prove cfg with
    | None -> check "declines" false expect
    | Some labels ->
        check "accepts" expect
          (S.accepted (S.run_vertex cfg PLS.Bipartite_scheme.scheme labels))
  in
  run (Gen.cycle 6) true;
  run (Gen.cycle 5) false;
  run (Gen.grid 3 4) true;
  run (Gen.complete 3) false;
  (* label size: exactly 1 bit *)
  let cfg = PLS.Config.make (Gen.cycle 4) in
  let labels = Option.get (PLS.Bipartite_scheme.scheme.S.vs_prove cfg) in
  check_int "one bit" 1
    (S.max_vertex_label_bits PLS.Bipartite_scheme.scheme labels)

let bipartite_soundness () =
  let g = Gen.cycle 6 in
  let cfg = PLS.Config.make g in
  let labels = Option.get (PLS.Bipartite_scheme.scheme.S.vs_prove cfg) in
  for v = 0 to 5 do
    let bad = Array.copy labels in
    bad.(v) <- not bad.(v);
    check "flip caught" false
      (S.accepted (S.run_vertex cfg PLS.Bipartite_scheme.scheme bad))
  done

let universal_scheme () =
  let rng = rng_of_seed 13 in
  let sch =
    PLS.Universal.scheme ~name:"u_cycle" ~property:T.is_cycle_graph
  in
  let g = Gen.cycle 7 in
  let cfg = PLS.Config.random_ids rng g in
  let labels = Option.get (sch.S.vs_prove cfg) in
  check "accepts" true (S.accepted (S.run_vertex cfg sch labels));
  check "declines on path" true (sch.S.vs_prove (PLS.Config.make (Gen.path 7)) = None);
  (* adversary: describe a different graph (two triangles instead of C6) *)
  let g6 = Gen.cycle 6 in
  let cfg6 = PLS.Config.make g6 in
  let fake_edges = [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5) ] in
  let forged =
    Array.init 6 (fun v ->
        {
          PLS.Universal.my_id = v;
          ids = [ 0; 1; 2; 3; 4; 5 ];
          edges = fake_edges;
        })
  in
  check "wrong graph rejected" false
    (S.accepted
       (S.run_vertex cfg6
          (PLS.Universal.scheme ~name:"u" ~property:(fun _ -> true))
          forged))

let edge_to_vertex_transform () =
  let rng = rng_of_seed 14 in
  List.iter
    (fun (name, g) ->
      if T.is_connected g then begin
        let cfg = PLS.Config.random_ids rng g in
        let target = PLS.Config.id cfg 0 in
        let es = ST.scheme ~target in
        let vs = S.edge_to_vertex ~d:3 es in
        match vs.S.vs_prove cfg with
        | None -> Alcotest.fail (name ^ ": transform prover declined")
        | Some labels ->
            check (name ^ " transformed accepts") true
              (S.accepted (S.run_vertex cfg vs labels))
      end)
    named_families

let transform_soundness () =
  let rng = rng_of_seed 15 in
  let g = Gen.ladder 4 in
  let cfg = PLS.Config.random_ids rng g in
  let target = PLS.Config.id cfg 0 in
  let vs = S.edge_to_vertex ~d:2 (ST.scheme ~target) in
  let labels = Option.get (vs.S.vs_prove cfg) in
  (* drop one vertex's entries: coverage check must fire *)
  for v = 0 to G.n g - 1 do
    if labels.(v) <> [] then begin
      let bad = Array.copy labels in
      bad.(v) <- [];
      check "dropped entries caught" false
        (S.accepted (S.run_vertex cfg vs bad))
    end
  done

module STI = PLS.Spanning_tree_input

let input_spanning_tree () =
  let rng = rng_of_seed 16 in
  List.iter
    (fun (name, g) ->
      if T.is_connected g then begin
        let cfg = PLS.Config.random_ids rng g in
        (* honest: certify a real spanning tree as input *)
        let f = T.spanning_tree g ~root:(G.n g - 1) in
        match STI.prove_for cfg ~f with
        | None -> Alcotest.fail (name ^ ": prover declined a spanning tree")
        | Some labels ->
            check (name ^ " accepts") true
              (S.accepted (S.run_edge cfg STI.scheme labels))
      end)
    named_families

let input_spanning_tree_soundness () =
  let rng = rng_of_seed 17 in
  let g = Gen.grid 3 3 in
  let cfg = PLS.Config.random_ids rng g in
  let f = T.spanning_tree g ~root:4 in
  let labels = Option.get (STI.prove_for cfg ~f) in
  (* flipping any edge's marking must be detected: adding an F-edge breaks
     the parent counts; removing one disconnects someone *)
  List.iter
    (fun (e, _) ->
      let faulty = STI.corrupt_marking labels e in
      check
        (Printf.sprintf "marking fault on %d-%d caught" (fst e) (snd e))
        false
        (S.accepted (S.run_edge cfg STI.scheme faulty)))
    (EM.bindings labels);
  (* proof mutations are caught too *)
  List.iter
    (fun (e, ((inp : STI.input), (l : STI.label))) ->
      let bad =
        match l.STI.tree with
        | Some (c, p, d) -> { l with STI.tree = Some (c, p, d + 1) }
        | None -> { l with STI.root = l.STI.root + 1 }
      in
      let faulty = EM.add labels e (inp, bad) in
      check "proof fault caught" false
        (S.accepted (S.run_edge cfg STI.scheme faulty)))
    (EM.bindings labels)

let input_spanning_tree_non_tree_inputs () =
  let rng = rng_of_seed 18 in
  let g = Gen.grid 3 3 in
  let cfg = PLS.Config.random_ids rng g in
  (* too few edges (a forest), too many (contains a cycle) *)
  let tree = T.spanning_tree g ~root:0 in
  check "forest declined" true
    (STI.prove_for cfg ~f:(List.tl tree) = None);
  let non_tree_edge =
    List.find (fun e -> not (List.mem e tree)) (G.edges g)
  in
  check "extra edge declined" true
    (STI.prove_for cfg ~f:(non_tree_edge :: tree) = None)

let label_size_accounting () =
  let g = Gen.cycle 16 in
  let cfg = PLS.Config.make g in
  let target = 5 in
  let scheme = ST.scheme ~target in
  let labels = Option.get (scheme.S.es_prove cfg) in
  let bits = S.max_edge_label_bits scheme labels in
  check "pointer labels are tens of bits" true (bits > 0 && bits < 100)

let suite =
  ( "pls",
    [
      test "config basics" config_basics;
      test "edge map" edge_map;
      test "run_edge totality" run_edge_totality;
      test "rejection reporting" rejection_reporting;
      test "pointer completeness (Prop 2.2)" pointer_completeness;
      test "pointer: missing target" pointer_soundness_missing_target;
      test "pointer: label mutations" pointer_soundness_mutations;
      test "pointer: single vertex" pointer_single_vertex;
      test "bipartite 1-bit scheme" bipartite_scheme;
      test "bipartite soundness" bipartite_soundness;
      test "universal scheme" universal_scheme;
      test "edge->vertex transform (Prop 2.1)" edge_to_vertex_transform;
      test "transform soundness" transform_soundness;
      test "input spanning tree (KKP10)" input_spanning_tree;
      test "input spanning tree soundness" input_spanning_tree_soundness;
      test "input spanning tree: non-tree inputs" input_spanning_tree_non_tree_inputs;
      test "label size accounting" label_size_accounting;
    ] )

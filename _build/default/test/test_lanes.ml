(* Tests for §4: lane partitions, completions, embeddings, and the
   Prop 4.6 low-congestion construction with its f/g/h bounds. *)

open Test_util
module I = Lcp_interval.Interval
module Rep = Lcp_interval.Representation
module PW = Lcp_interval.Pathwidth
module LP = Lcp_lanes.Lane_partition
module Cmp = Lcp_lanes.Completion
module E = Lcp_lanes.Embedding
module LC = Lcp_lanes.Low_congestion
module B = Lcp_lanes.Bounds
module G = Lcp_graph.Graph
module T = Lcp_graph.Traversal
module Gen = Lcp_graph.Gen

let bounds_table () =
  check_int "f1" 1 (B.f 1);
  check_int "f2" 4 (B.f 2);
  check_int "f3" 18 (B.f 3);
  check_int "f4" 110 (B.f 4);
  check_int "g1" 0 (B.g 1);
  check_int "g2" (2 + 0 + 4) (B.g 2);
  check_int "g3" (2 + B.g 2 + (6 * B.f 2)) (B.g 3);
  check_int "h2" (B.g 2 + B.f 2 - 1) (B.h 2);
  check "monotone" true (B.f 2 < B.f 3 && B.g 2 < B.g 3 && B.h 2 < B.h 3)

let lane_partition_validation () =
  let g = Gen.path 4 in
  let rep =
    Rep.make g [| I.make 0 1; I.make 1 2; I.make 2 3; I.make 3 4 |]
  in
  (* overlapping intervals cannot share a lane *)
  check "overlap rejected" true
    (LP.validate rep [| [ 0; 1 ]; [ 2 ]; [ 3 ] |] <> Ok ());
  check "missing vertex rejected" true
    (LP.validate rep [| [ 0 ]; [ 1 ]; [ 2 ] |] <> Ok ());
  check "duplicate rejected" true
    (LP.validate rep [| [ 0 ]; [ 0; 2 ]; [ 1 ]; [ 3 ] |] <> Ok ());
  check "empty lane rejected" true
    (LP.validate rep [| [ 0; 2 ]; [ 1; 3 ]; [] |] <> Ok ());
  check "ok disjoint" true (LP.validate rep [| [ 0; 2 ]; [ 1; 3 ] |] = Ok ())

let greedy_partition () =
  let g = Gen.cycle 6 in
  let rep = PW.exact_interval_representation g in
  let p = LP.of_greedy_coloring rep in
  check_int "lanes = width" (Rep.width rep) (LP.lane_count p);
  check "valid" true (LP.validate rep (LP.lanes p) = Ok ())

let completion_shapes () =
  let g = Gen.path 4 in
  let rep =
    Rep.make g [| I.make 0 1; I.make 1 2; I.make 2 3; I.make 3 4 |]
  in
  let p = LP.make rep [| [ 0; 2 ]; [ 1; 3 ] |] in
  (* E1: 0-2 and 1-3; E2: 0-1 (already an edge) *)
  Alcotest.(check (list (pair int int)))
    "e1" [ (0, 2); (1, 3) ] (Cmp.e1_edges p);
  Alcotest.(check (list (pair int int))) "e2" [ (0, 1) ] (Cmp.e2_edges p);
  Alcotest.(check (list (pair int int)))
    "new weak" [ (0, 2); (1, 3) ] (Cmp.new_edges_weak p);
  Alcotest.(check (list (pair int int)))
    "new full" [ (0, 2); (1, 3) ] (Cmp.new_edges_full p);
  check_int "weak m" 5 (G.m (Cmp.weak_completion p));
  check_int "full m" 5 (G.m (Cmp.completion p))

let embedding_checks () =
  let g = Gen.path 5 in
  let emb = [ ((0, 2), [ 0; 1; 2 ]); ((1, 3), [ 1; 2; 3 ]) ] in
  check "valid" true (E.validate g [ (0, 2); (1, 3) ] emb = Ok ());
  check_int "congestion" 2 (E.congestion g emb);
  check "missing path" true (E.validate g [ (0, 4) ] emb <> Ok ());
  check "wrong endpoints" true
    (E.validate g [ (0, 2) ] [ ((0, 2), [ 0; 1 ]) ] <> Ok ());
  check "non-edge step" true
    (E.validate g [ (0, 2) ] [ ((0, 2), [ 0; 2 ]) ] <> Ok ());
  check "not simple" true
    (E.validate g [ (0, 2) ] [ ((0, 2), [ 0; 1; 0; 1; 2 ]) ] <> Ok ())

let loop_erase () =
  Alcotest.(check (list int)) "simple already" [ 1; 2; 3 ]
    (E.loop_erase [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "cycle removed" [ 1; 4 ]
    (E.loop_erase [ 1; 2; 3; 1; 4 ]);
  Alcotest.(check (list int)) "nested" [ 0; 5 ]
    (E.loop_erase [ 0; 1; 2; 1; 0; 5 ]);
  Alcotest.(check (list int)) "endpoint same" [ 7 ] (E.loop_erase [ 7 ])

let construct_on_families () =
  List.iter
    (fun (name, g) ->
      if T.is_connected g && G.n g <= 12 then begin
        let rep = PW.exact_interval_representation g in
        let w = Rep.width rep in
        let r = LC.construct rep in
        let p = r.LC.partition in
        check (name ^ " partition valid") true
          (LP.validate (LP.rep p) (LP.lanes p) = Ok ());
        check (name ^ " lanes <= f(w)") true (LP.lane_count p <= B.f w);
        check (name ^ " weak emb valid") true
          (E.validate g (Cmp.new_edges_weak p) r.LC.weak_embedding = Ok ());
        check (name ^ " full emb valid") true
          (E.validate g (Cmp.new_edges_full p) r.LC.full_embedding = Ok ());
        check (name ^ " weak congestion") true (LC.congestion_weak r <= B.g w);
        check (name ^ " full congestion") true (LC.congestion_full r <= B.h w)
      end)
    named_families

let construct_single_vertex () =
  let g = Gen.path 1 in
  let rep = Rep.make g [| I.make 0 0 |] in
  let r = LC.construct rep in
  check_int "one lane" 1 (LC.lane_count r);
  check_int "no congestion" 0 (LC.congestion_full r)

let construct_rejects_disconnected () =
  let g = G.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let rep =
    Rep.make g [| I.make 0 1; I.make 1 2; I.make 5 6; I.make 6 7 |]
  in
  check "raises" true
    (try
       ignore (LC.construct rep);
       false
     with Invalid_argument _ -> true)

let spine_structure () =
  (* the spine starts at the min-left vertex and its intervals alternate *)
  let g = Gen.cycle 8 in
  let rep = PW.exact_interval_representation g in
  let r = LC.construct rep in
  let s = r.LC.spine in
  let left v = I.l (Rep.interval rep v) in
  let right v = I.r (Rep.interval rep v) in
  check "v_st minimizes L" true
    (G.fold_vertices (fun v acc -> acc && left s.LC.v_st <= left v) g true);
  check "v_ed maximizes R" true
    (G.fold_vertices (fun v acc -> acc && right s.LC.v_ed >= right v) g true);
  (* Obs 4.7: strictly increasing right endpoints along S *)
  let rec increasing = function
    | a :: (b :: _ as rest) -> right a < right b && increasing rest
    | _ -> true
  in
  check "Obs 4.7" true (increasing s.LC.s_seq)

let prop_construct =
  qcheck ~count:150 "Prop 4.6 on random graphs"
    (arb_pw_graph ~max_k:4 ~max_n:60)
    (fun (_, g, ivs) ->
      let rep = rep_of (g, ivs) in
      let w = Rep.width rep in
      let r = LC.construct rep in
      let p = r.LC.partition in
      LP.validate (LP.rep p) (LP.lanes p) = Ok ()
      && LP.lane_count p <= B.f w
      && E.validate g (Cmp.new_edges_weak p) r.LC.weak_embedding = Ok ()
      && E.validate g (Cmp.new_edges_full p) r.LC.full_embedding = Ok ()
      && LC.congestion_weak r <= B.g w
      && LC.congestion_full r <= B.h w)

let prop_completion_pathwidth =
  qcheck ~count:40 "completion keeps pathwidth bounded by lane count"
    (arb_pw_graph ~max_k:2 ~max_n:12)
    (fun (_, g, ivs) ->
      let rep = rep_of (g, ivs) in
      let r = LC.construct rep in
      let host = Cmp.completion r.LC.partition in
      G.n host <= 1
      || PW.exact host <= LP.lane_count r.LC.partition)

let suite =
  ( "lanes",
    [
      test "bound functions" bounds_table;
      test "lane partition validation" lane_partition_validation;
      test "greedy partition (Obs 4.3)" greedy_partition;
      test "completion shapes (Fig 3)" completion_shapes;
      test "embedding checks" embedding_checks;
      test "loop erase" loop_erase;
      test "Prop 4.6 on named families" construct_on_families;
      test "single vertex base case" construct_single_vertex;
      test "disconnected rejected" construct_rejects_disconnected;
      test "spine structure (Obs 4.7)" spine_structure;
      prop_construct;
      prop_completion_pathwidth;
    ] )

(* Tests for k-terminal recursive graphs (Def 2.3) and the compositional
   evaluation of property algebras over them (Prop 2.4's contract). *)

open Test_util
module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module A = Lcp_algebra
module TG = A.Terminal_graph

let path3 =
  (* figure 2 style: a 3-terminal path *)
  TG.make ~graph:(Gen.path 3) ~terminals:[ (1, 0); (2, 1); (3, 2) ]

let triangle = TG.make ~graph:(Gen.cycle 3) ~terminals:[ (1, 0); (2, 2) ]

let construction_basics () =
  check "terminal lookup" true (TG.terminal path3 2 = Some 1);
  check "missing position" true (TG.terminal triangle 3 = None);
  let raises f = try f (); false with Invalid_argument _ -> true in
  check "duplicate position" true
    (raises (fun () ->
         ignore (TG.make ~graph:(Gen.path 2) ~terminals:[ (1, 0); (1, 1) ])));
  check "shared vertex" true
    (raises (fun () ->
         ignore (TG.make ~graph:(Gen.path 2) ~terminals:[ (1, 0); (2, 0) ])));
  check "0-based position rejected" true
    (raises (fun () ->
         ignore (TG.make ~graph:(Gen.path 2) ~terminals:[ (0, 0) ])))

let compose_gluing () =
  (* glue the end of one path to the start of another: P3 ⊙ P3 = P5 *)
  let f1 p = if p = 1 then Some 1 else if p = 2 then Some 3 else None in
  let f2 p = if p = 2 then Some 1 else if p = 3 then Some 3 else None in
  let t =
    TG.Compose { k = 3; f1; f2; left = Base path3; right = Base path3 }
  in
  let g = TG.eval_graph t in
  check "five vertices" true (G.n g.TG.graph = 5);
  check "is P5" true (G.is_isomorphic g.TG.graph (Gen.path 5));
  check "terminal count" true (List.length g.TG.terminals = 3)

let compose_disjoint () =
  (* no gluing: disjoint union *)
  let f1 p = if p = 1 then Some 1 else None in
  let f2 p = if p = 2 then Some 1 else None in
  let t =
    TG.Compose { k = 2; f1; f2; left = Base triangle; right = Base path3 }
  in
  let g = TG.eval_graph t in
  check "six vertices" true (G.n g.TG.graph = 6);
  check "two components" true
    (List.length (Lcp_graph.Traversal.connected_components g.TG.graph) = 2)

let compose_missing_terminal () =
  let f1 p = if p = 1 then Some 3 else None in
  (* triangle has no position 3 *)
  check "missing terminal rejected" true
    (try
       ignore
         (TG.eval_graph
            (TG.Compose
               { k = 1; f1; f2 = (fun _ -> None); left = Base triangle;
                 right = Base path3 }));
       false
     with Invalid_argument _ -> true)

(* random terms for the compositional-evaluation property *)
let rec random_term rng depth =
  if depth = 0 || Random.State.int rng 3 = 0 then begin
    let n = 1 + Random.State.int rng 4 in
    let g =
      G.of_edges ~n
        (List.concat
           (List.init n (fun u ->
                List.init n (fun v ->
                    if u < v && Random.State.bool rng then [ (u, v) ] else [])
                |> List.concat)))
    in
    let terminals =
      List.init n (fun v -> v)
      |> List.filter (fun _ -> Random.State.bool rng)
      |> List.mapi (fun i v -> (i + 1, v))
    in
    TG.Base (TG.make ~graph:g ~terminals)
  end
  else begin
    let left = random_term rng (depth - 1) in
    let right = random_term rng (depth - 1) in
    let k = 3 in
    let pos_of t =
      match TG.eval_graph t with
      | tg -> List.map fst tg.TG.terminals
    in
    let pick positions =
      (* a random partial injection [1..k] -> positions *)
      let available = ref positions in
      let choice = Array.make (k + 1) None in
      for j = 1 to k do
        if !available <> [] && Random.State.bool rng then begin
          let i = Random.State.int rng (List.length !available) in
          let p = List.nth !available i in
          choice.(j) <- Some p;
          available := List.filter (fun q -> q <> p) !available
        end
      done;
      fun j -> if j >= 1 && j <= k then choice.(j) else None
    in
    let f1 = pick (pos_of left) and f2 = pick (pos_of right) in
    TG.Compose { k; f1; f2; left; right }
  end

let arb_term =
  QCheck.make
    ~print:(fun t -> G.to_string (TG.eval_graph t).TG.graph)
    (fun st -> random_term st 3)

let compositional_eval (name, (module Alg : A.Algebra_sig.S), oracle) =
  qcheck ~count:100
    ("Prop 2.4 compositional evaluation: " ^ name)
    arb_term
    (fun term ->
      let module E = TG.Eval (Alg) in
      let g = (TG.eval_graph term).TG.graph in
      E.holds term = oracle g)

let glue_edge_at ~n ~edges ~u ~v =
  (* compose a fresh 2-terminal edge onto vertices [u], [v] of a base graph *)
  let left =
    TG.make ~graph:(G.of_edges ~n edges) ~terminals:[ (1, u); (2, v) ]
  in
  let right =
    TG.make ~graph:(G.of_edges ~n:4 [ (0, 1) ]) ~terminals:[ (1, 0); (2, 1) ]
  in
  let f j = if j = 1 || j = 2 then Some j else None in
  TG.Compose { k = 2; f1 = f; f2 = f; left = Base left; right = Base right }

let parallel_edge_regression () =
  (* regression: graph(n=13, m=4; 0-3, 1-2, 1-4, 2-5). Gluing an edge onto
     the already-adjacent pair 1-2 creates a parallel edge, which collapses
     under Def 2.3's simple-graph semantics — the composed graph is still a
     forest, but the old acyclicity algebra flagged a cycle. *)
  let term = glue_edge_at ~n:11 ~edges:[ (0, 3); (1, 2); (1, 4); (2, 5) ] ~u:1 ~v:2 in
  let g = (TG.eval_graph term).TG.graph in
  check "13 vertices" true (G.n g = 13);
  check "4 edges" true (G.m g = 4);
  check "oracle: acyclic" true (A.Acyclicity.oracle g);
  let module E = TG.Eval (A.Acyclicity) in
  check "algebra: acyclic" true (E.holds term);
  (* gluing an edge at distance 2 closes a triangle — a genuine cycle *)
  let d2 = glue_edge_at ~n:3 ~edges:[ (0, 1); (0, 2) ] ~u:1 ~v:2 in
  check "distance-2 gluing is cyclic" false (E.holds d2);
  check "distance-2 oracle agrees" false
    (A.Acyclicity.oracle (TG.eval_graph d2).TG.graph);
  (* gluing at distance 3 closes a genuine 4-cycle *)
  let d3 = glue_edge_at ~n:4 ~edges:[ (0, 1); (1, 2); (2, 3) ] ~u:0 ~v:3 in
  check "distance-3 gluing is cyclic" false (E.holds d3);
  check "distance-3 oracle agrees" false
    (A.Acyclicity.oracle (TG.eval_graph d3).TG.graph)

module K3 = A.Clique.Make (struct let size = 3 end)

let algebras : (string * (module A.Algebra_sig.S) * (G.t -> bool)) list =
  [
    ("connected", (module A.Connectivity), A.Connectivity.oracle);
    ("acyclic", (module A.Acyclicity), A.Acyclicity.oracle);
    ("bipartite", (module A.Bipartite), A.Bipartite.oracle);
    ("matching", (module A.Matching), A.Matching.oracle);
    ("clique>=3", (module K3), K3.oracle);
    ("trianglefree", (module A.Triangle_free), A.Triangle_free.oracle);
  ]

let suite =
  ( "terminal_graph",
    [
      test "construction" construction_basics;
      test "compose with gluing (Fig 2)" compose_gluing;
      test "compose disjoint" compose_disjoint;
      test "missing terminal" compose_missing_terminal;
      test "parallel-edge collapse regression (n=13 forest)"
        parallel_edge_regression;
    ]
    @ List.map compositional_eval algebras )

test/test_pls.ml: Alcotest Array Lcp_graph Lcp_pls List Option Printf String Test_util

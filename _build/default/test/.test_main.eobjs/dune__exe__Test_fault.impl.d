test/test_fault.ml: Array Fun Lcp_algebra Lcp_cert Lcp_graph Lcp_pls Lcp_util List Option Printf Random String Test_util

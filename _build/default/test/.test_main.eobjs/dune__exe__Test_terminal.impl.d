test/test_terminal.ml: Array Lcp_algebra Lcp_graph List QCheck Random Test_util

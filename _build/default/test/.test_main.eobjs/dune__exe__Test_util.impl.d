test/test_util.ml: Alcotest Format Lcp_graph Lcp_interval Lcp_lanewidth List Printf QCheck QCheck_alcotest Random

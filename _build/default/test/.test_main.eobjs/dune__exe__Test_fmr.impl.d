test/test_fmr.ml: Alcotest Array Lcp_algebra Lcp_cert Lcp_graph Lcp_interval Lcp_pls List Option Test_util

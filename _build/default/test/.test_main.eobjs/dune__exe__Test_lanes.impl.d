test/test_lanes.ml: Alcotest Lcp_graph Lcp_interval Lcp_lanes List Test_util

test/test_lanewidth.ml: Alcotest Format Lcp_graph Lcp_interval Lcp_lanes Lcp_lanewidth String Test_util

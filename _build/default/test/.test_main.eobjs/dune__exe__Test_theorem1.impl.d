test/test_theorem1.ml: Alcotest Array Lcp_algebra Lcp_cert Lcp_graph Lcp_interval Lcp_lanes Lcp_lanewidth Lcp_pls List Option Test_util

test/test_interval.ml: Alcotest Array Lcp_graph Lcp_interval List Printf QCheck String Test_util

test/test_algebra.ml: Array Bytes Lcp_algebra Lcp_graph Lcp_lanewidth Lcp_util List Printf Test_util

test/test_network.ml: Lcp_algebra Lcp_cert Lcp_graph Lcp_pls List Option Test_util

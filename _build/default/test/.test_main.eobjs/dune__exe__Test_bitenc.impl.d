test/test_bitenc.ml: Alcotest Bytes Lcp_util List Printf QCheck Test_util

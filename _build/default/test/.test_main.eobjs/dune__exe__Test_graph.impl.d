test/test_graph.ml: Alcotest Array Lcp_graph Lcp_interval List Test_util

test/test_soundness.ml: Alcotest Array Bytes Char Lcp_algebra Lcp_cert Lcp_graph Lcp_interval Lcp_pls Lcp_util List Option Printf Random String Test_util

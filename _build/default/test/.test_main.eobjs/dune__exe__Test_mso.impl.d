test/test_mso.ml: Format Lcp_algebra Lcp_graph Lcp_mso List Printf String Test_util

test/test_core.ml: Alcotest Bytes Lcp_algebra Lcp_cert Lcp_graph Lcp_interval Lcp_lanes Lcp_pls Lcp_util List Option String Test_util

let () =
  Alcotest.run "lcp"
    [
      Test_bitenc.suite;
      Test_graph.suite;
      Test_interval.suite;
      Test_lanes.suite;
      Test_lanewidth.suite;
      Test_algebra.suite;
      Test_mso.suite;
      Test_pls.suite;
      Test_theorem1.suite;
      Test_soundness.suite;
      Test_fmr.suite;
      Test_core.suite;
      Test_network.suite;
      Test_fault.suite;
      Test_terminal.suite;
    ]

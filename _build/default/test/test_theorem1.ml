(* End-to-end tests of the Theorem 1 proof labeling scheme: completeness
   across properties and graph families, bounded lane counts and
   congestion, O(log n)-shaped label sizes, the greedy-partition ablation,
   and the Prop 2.1 vertex variant. *)

open Test_util
module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module T = Lcp_graph.Traversal
module Rep = Lcp_interval.Representation
module PW = Lcp_interval.Pathwidth
module B = Lcp_lanes.Bounds
module PLS = Lcp_pls
module S = PLS.Scheme
module A = Lcp_algebra
module H = Lcp_lanewidth.Hierarchy

module T1conn = Lcp_cert.Theorem1.Make (A.Connectivity)
module T1acy = Lcp_cert.Theorem1.Make (A.Acyclicity)
module T1bip = Lcp_cert.Theorem1.Make (A.Bipartite)
module T1path = Lcp_cert.Theorem1.Make (A.Combinators.Is_path_graph)
module T1cyc = Lcp_cert.Theorem1.Make (A.Combinators.Is_cycle_graph)
module T1tri = Lcp_cert.Theorem1.Make (A.Triangle_free)
module T1ham = Lcp_cert.Theorem1.Make (A.Hamiltonian.Path_alg)
module T1pm = Lcp_cert.Theorem1.Make (A.Matching)

let rng = rng_of_seed 20260705

let run_scheme scheme g =
  let cfg = PLS.Config.random_ids rng g in
  match scheme.S.es_prove cfg with
  | None -> `Declined
  | Some labels -> (
      match S.run_edge cfg scheme labels with
      | S.Accepted -> `Accepted
      | S.Rejected rs -> `Rejected (snd (List.hd rs)))

(* completeness per property on families where the property holds *)
let completeness_cases =
  [
    ("connected on P9", (fun () -> run_scheme (T1conn.edge_scheme ~k:1 ()) (Gen.path 9)));
    ("connected on C8", (fun () -> run_scheme (T1conn.edge_scheme ~k:2 ()) (Gen.cycle 8)));
    ( "connected on caterpillar",
      fun () ->
        run_scheme (T1conn.edge_scheme ~k:1 ()) (Gen.caterpillar ~spine:4 ~legs:2) );
    ("connected on ladder", (fun () -> run_scheme (T1conn.edge_scheme ~k:2 ()) (Gen.ladder 5)));
    ("connected on K4", (fun () -> run_scheme (T1conn.edge_scheme ~k:3 ()) (Gen.complete 4)));
    ("acyclic on star", (fun () -> run_scheme (T1acy.edge_scheme ~k:1 ()) (Gen.star 6)));
    ( "acyclic on binary tree",
      fun () -> run_scheme (T1acy.edge_scheme ~k:2 ()) (Gen.binary_tree ~depth:3) );
    ("bipartite on C6", (fun () -> run_scheme (T1bip.edge_scheme ~k:2 ()) (Gen.cycle 6)));
    ("bipartite on grid", (fun () -> run_scheme (T1bip.edge_scheme ~k:2 ()) (Gen.grid 4 2)));
    ("is_path on P8", (fun () -> run_scheme (T1path.edge_scheme ~k:1 ()) (Gen.path 8)));
    ("is_cycle on C9", (fun () -> run_scheme (T1cyc.edge_scheme ~k:2 ()) (Gen.cycle 9)));
    ("triangle-free on C7", (fun () -> run_scheme (T1tri.edge_scheme ~k:2 ()) (Gen.cycle 7)));
    ("ham-path on P6", (fun () -> run_scheme (T1ham.edge_scheme ~k:1 ()) (Gen.path 6)));
    ("ham-path on C6", (fun () -> run_scheme (T1ham.edge_scheme ~k:2 ()) (Gen.cycle 6)));
    ("matching on P6", (fun () -> run_scheme (T1pm.edge_scheme ~k:1 ()) (Gen.path 6)));
    ("matching on C8", (fun () -> run_scheme (T1pm.edge_scheme ~k:2 ()) (Gen.cycle 8)));
  ]

let prover_declines_cases =
  [
    ("is_path declines C7", (fun () -> run_scheme (T1path.edge_scheme ~k:2 ()) (Gen.cycle 7)));
    ("is_cycle declines P7", (fun () -> run_scheme (T1cyc.edge_scheme ~k:1 ()) (Gen.path 7)));
    ("acyclic declines C5", (fun () -> run_scheme (T1acy.edge_scheme ~k:2 ()) (Gen.cycle 5)));
    ("bipartite declines C5", (fun () -> run_scheme (T1bip.edge_scheme ~k:2 ()) (Gen.cycle 5)));
    ("matching declines P5", (fun () -> run_scheme (T1pm.edge_scheme ~k:1 ()) (Gen.path 5)));
    ( "triangle-free declines K4",
      fun () -> run_scheme (T1tri.edge_scheme ~k:3 ()) (Gen.complete 4) );
  ]

let completeness () =
  List.iter
    (fun (name, run) ->
      match run () with
      | `Accepted -> ()
      | `Declined -> Alcotest.fail (name ^ ": prover declined")
      | `Rejected r -> Alcotest.fail (name ^ ": rejected: " ^ r))
    completeness_cases

let prover_declines () =
  List.iter
    (fun (name, run) ->
      match run () with
      | `Declined -> ()
      | `Accepted -> Alcotest.fail (name ^ ": accepted a false instance")
      | `Rejected _ -> Alcotest.fail (name ^ ": prover should decline"))
    prover_declines_cases

let prop_completeness_random =
  qcheck ~count:40 "completeness on random pw graphs (connectivity)"
    (arb_pw_graph ~max_k:2 ~max_n:40)
    (fun (k, g, ivs) ->
      let rep = rep_of (g, ivs) in
      let cfg = PLS.Config.random_ids rng g in
      let scheme = T1conn.edge_scheme ~rep:(fun _ -> Some rep) ~k () in
      match scheme.S.es_prove cfg with
      | None -> false
      | Some labels -> S.accepted (S.run_edge cfg scheme labels))

let prop_completeness_bipartite =
  qcheck ~count:25 "completeness on random pw graphs (bipartite/decline)"
    (arb_pw_graph ~max_k:2 ~max_n:25)
    (fun (k, g, ivs) ->
      let rep = rep_of (g, ivs) in
      let cfg = PLS.Config.random_ids rng g in
      let scheme = T1bip.edge_scheme ~rep:(fun _ -> Some rep) ~k () in
      match scheme.S.es_prove cfg with
      | None -> not (A.Bipartite.oracle g)
      | Some labels ->
          A.Bipartite.oracle g && S.accepted (S.run_edge cfg scheme labels))

let artifacts_invariants =
  qcheck ~count:30 "prover artifacts respect the paper's bounds"
    (arb_pw_graph ~max_k:2 ~max_n:40)
    (fun (_, g, ivs) ->
      let rep = rep_of (g, ivs) in
      let w = Rep.width rep in
      let cfg = PLS.Config.random_ids rng g in
      match T1conn.P.prepare ~rep cfg with
      | Error _ -> false
      | Ok art ->
          art.T1conn.P.lane_count <= B.f w
          && art.T1conn.P.congestion <= B.h w
          && H.depth art.T1conn.P.hierarchy <= 2 * art.T1conn.P.lane_count
          && H.validate art.T1conn.P.hierarchy = Ok ()
          && art.T1conn.P.holds)

let label_growth_logarithmic () =
  (* labels on paths: measure max bits at n and 2n; the growth must be far
     below linear (paths would give Θ(n) for an encoding-everything scheme) *)
  let bits n =
    let g = Gen.path n in
    let cfg = PLS.Config.make g in
    let scheme =
      T1conn.edge_scheme
        ~rep:(fun c ->
          Some
            (PW.heuristic_interval_representation (PLS.Config.graph c)))
        ~k:1 ()
    in
    let labels = Option.get (scheme.S.es_prove cfg) in
    S.max_edge_label_bits scheme labels
  in
  let b64 = bits 64 and b128 = bits 128 and b256 = bits 256 in
  check "grows" true (b64 <= b128 && b128 <= b256);
  (* doubling n should add a bounded number of bits, not multiply them *)
  check "log-shaped growth" true
    (float_of_int b256 /. float_of_int b64 < 1.8)

let greedy_strategy () =
  List.iter
    (fun (name, g) ->
      if T.is_connected g && G.n g <= 12 then begin
        let cfg = PLS.Config.random_ids rng g in
        let k = PW.exact g in
        let k = max k 1 in
        let scheme = T1conn.edge_scheme ~strategy:`Greedy ~k () in
        match scheme.S.es_prove cfg with
        | None -> Alcotest.fail (name ^ ": greedy prover declined")
        | Some labels ->
            check (name ^ " greedy accepts") true
              (S.accepted (S.run_edge cfg scheme labels))
      end)
    named_families

let vertex_scheme_variant () =
  let g = Gen.caterpillar ~spine:5 ~legs:1 in
  let cfg = PLS.Config.random_ids rng g in
  let vs = T1conn.vertex_scheme ~k:1 () in
  match vs.S.vs_prove cfg with
  | None -> Alcotest.fail "vertex scheme prover declined"
  | Some labels ->
      check "vertex scheme accepts" true
        (S.accepted (S.run_vertex cfg vs labels));
      check "vertex labels bounded" true
        (S.max_vertex_label_bits vs labels > 0)

let single_vertex_network () =
  let g = Gen.path 1 in
  let cfg = PLS.Config.make g in
  let scheme = T1conn.edge_scheme ~k:1 () in
  let labels = Option.get (scheme.S.es_prove cfg) in
  check "singleton accepts" true (S.accepted (S.run_edge cfg scheme labels))

let two_vertex_network () =
  let g = Gen.path 2 in
  let cfg = PLS.Config.random_ids rng g in
  let scheme = T1conn.edge_scheme ~k:1 () in
  let labels = Option.get (scheme.S.es_prove cfg) in
  check "P2 accepts" true (S.accepted (S.run_edge cfg scheme labels))

let max_lanes_bound () =
  check_int "f(2)" 4 (T1conn.max_lanes_for ~k:1);
  check_int "f(3)" 18 (T1conn.max_lanes_for ~k:2)

let id_space_independence () =
  (* certification must work with arbitrary (large, sparse) identifiers *)
  let g = Gen.cycle 8 in
  let ids = Array.init 8 (fun v -> (v * 7919) + 13) in
  let cfg = PLS.Config.make ~ids g in
  let scheme = T1conn.edge_scheme ~k:2 () in
  let labels = Option.get (scheme.S.es_prove cfg) in
  check "sparse ids accept" true (S.accepted (S.run_edge cfg scheme labels))

let suite =
  ( "theorem1",
    [
      test "completeness on named cases" completeness;
      test "prover declines false instances" prover_declines;
      prop_completeness_random;
      prop_completeness_bipartite;
      artifacts_invariants;
      slow_test "label growth is logarithmic" label_growth_logarithmic;
      test "greedy-partition ablation" greedy_strategy;
      test "vertex scheme variant (Prop 2.1)" vertex_scheme_variant;
      test "single-vertex network" single_vertex_network;
      test "two-vertex network" two_vertex_network;
      test "max lane bounds" max_lanes_bound;
      test "sparse identifier space" id_space_independence;
    ] )

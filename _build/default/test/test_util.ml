(* Shared helpers and qcheck generators for the test suites. *)

module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module Rep = Lcp_interval.Representation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test name f = Alcotest.test_case name `Quick f
let slow_test name f = Alcotest.test_case name `Slow f

let rng_of_seed seed = Random.State.make [| seed |]

(* all simple graphs on exactly n vertices *)
let all_graphs n =
  let pairs =
    List.concat
      (List.init n (fun u ->
           List.init n (fun v -> (u, v)) |> List.filter (fun (u, v) -> u < v)))
  in
  let rec subsets = function
    | [] -> [ [] ]
    | e :: rest ->
        let s = subsets rest in
        s @ List.map (fun x -> e :: x) s
  in
  List.map (fun es -> G.of_edges ~n es) (subsets pairs)

let small_graphs =
  all_graphs 1 @ all_graphs 2 @ all_graphs 3 @ all_graphs 4

let connected_small_graphs =
  List.filter Lcp_graph.Traversal.is_connected small_graphs

let named_families =
  [
    ("P2", Gen.path 2);
    ("P7", Gen.path 7);
    ("C3", Gen.cycle 3);
    ("C8", Gen.cycle 8);
    ("star6", Gen.star 6);
    ("K4", Gen.complete 4);
    ("K23", Gen.complete_bipartite 2 3);
    ("caterpillar", Gen.caterpillar ~spine:4 ~legs:2);
    ("ladder5", Gen.ladder 5);
    ("grid33", Gen.grid 3 3);
    ("diamond", Gen.diamond);
    ("btree2", Gen.binary_tree ~depth:2);
  ]

(* qcheck: a random connected bounded-pathwidth graph with its witness *)
let arb_pw_graph ~max_k ~max_n =
  let open QCheck in
  let gen st =
    let k = 1 + Random.State.int st max_k in
    let n = 2 + Random.State.int st (max_n - 1) in
    let g, ivs = Lcp_graph.Gen.random_pathwidth st ~n ~k () in
    (k, g, ivs)
  in
  let print (k, g, _) = Printf.sprintf "k=%d %s" k (G.to_string g) in
  make ~print gen

let arb_trace ~max_k ~max_ops =
  let open QCheck in
  let gen st =
    let k = 1 + Random.State.int st max_k in
    let ops = Random.State.int st max_ops in
    Lcp_lanewidth.Trace.random st ~k ~ops
  in
  let print tr = Format.asprintf "%a" Lcp_lanewidth.Trace.pp tr in
  make ~print gen

let qcheck ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let rep_of (g, ivs) = Rep.of_pairs g ivs

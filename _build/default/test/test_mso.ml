(* Tests for the MSO₂ layer: the naive model checker is the ground truth
   the compositional algebras are measured against (Prop 2.4's contract). *)

open Test_util
module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module F = Lcp_mso.Formula
module E = Lcp_mso.Eval
module P = Lcp_mso.Properties
module A = Lcp_algebra

module VC2 = A.Vertex_cover.Make (struct let budget = 2 end)
module IS3 = A.Independent_set.Make (struct let target = 3 end)
module DS2 = A.Dominating_set.Make (struct let budget = 2 end)
module MD2 = A.Degree.Max_degree (struct let d = 2 end)
module R2 = A.Degree.Regular (struct let d = 2 end)

let oracles : (string * (G.t -> bool)) list =
  [
    ("connected", A.Connectivity.oracle);
    ("acyclic", A.Acyclicity.oracle);
    ("tree", fun g -> A.Connectivity.oracle g && A.Acyclicity.oracle g);
    ("bipartite", A.Bipartite.oracle);
    ("three_colorable", A.Colorable.Three.oracle);
    ("perfect_matching", A.Matching.oracle);
    ("hamiltonian_cycle", A.Hamiltonian.Cycle_alg.oracle);
    ("hamiltonian_path", A.Hamiltonian.Path_alg.oracle);
    ("triangle_free", A.Triangle_free.oracle);
    ("vertex_cover<=2", VC2.oracle);
    ("independent_set>=3", IS3.oracle);
    ("dominating_set<=2", DS2.oracle);
    ("max_degree<=2", MD2.oracle);
    ("2-regular", R2.oracle);
    ("is_path_graph", A.Combinators.Is_path_graph.oracle);
    ("is_cycle_graph", A.Combinators.Is_cycle_graph.oracle);
    ( "clique>=3",
      let module K3 = A.Clique.Make (struct
        let size = 3
      end) in
      K3.oracle );
    ( "diameter<=2",
      let module D2 = A.Diameter.Make (struct
        let d = 2
      end) in
      D2.oracle );
  ]

(* formulas with set quantifiers get expensive; cap the graph size *)
let eval_cap = function
  | F.Exists_eset _ | F.Forall_eset _ -> 4
  | _ -> 4

(* every catalogue formula decides exactly the oracle property on all
   non-empty graphs with <= 4 vertices (the model assumes n >= 1) *)
let formula_matches_oracle (name, formula) =
  match List.assoc_opt name oracles with
  | None -> test ("skip " ^ name) (fun () -> ())
  | Some oracle ->
      slow_test ("MSO = oracle: " ^ name) (fun () ->
          List.iter
            (fun g ->
              if G.n g <= eval_cap formula then
                check
                  (Printf.sprintf "%s on %s" name (G.to_string g))
                  (oracle g) (E.eval g formula))
            small_graphs)

let structure_metrics () =
  check "qrank connected >= 3" true (F.quantifier_rank P.connected >= 3);
  check "size positive" true (F.size P.hamiltonian_cycle > 10);
  check "qrank atomic" true (F.quantifier_rank (F.Adj ("u", "v")) = 0);
  let s = Format.asprintf "%a" F.pp P.bipartite in
  check "prints" true (String.length s > 0)

let free_variables () =
  (* evaluating with a free vertex-set variable: domination by a given set *)
  let dominated =
    F.Forall_v
      ( "v",
        F.Or
          ( F.Mem_v ("v", "D"),
            F.Exists_v
              ("u", F.And (F.Adj ("u", "v"), F.Mem_v ("u", "D"))) ) )
  in
  let g = Gen.star 4 in
  check "center dominates" true
    (E.eval ~env:[ ("D", E.Vertex_set [ 0 ]) ] g dominated);
  check "leaf does not" false
    (E.eval ~env:[ ("D", E.Vertex_set [ 1 ]) ] g dominated);
  check "unbound variable rejected" true
    (try
       ignore (E.eval g dominated);
       false
     with Invalid_argument _ -> true)

let specific_formulas () =
  check "C5 not bipartite" false (E.eval (Gen.cycle 5) P.bipartite);
  check "C4 bipartite" true (E.eval (Gen.cycle 4) P.bipartite);
  check "K4 not 3-colorable... is 4-chromatic" false
    (E.eval (Gen.complete 4) P.three_colorable);
  check "C4 perfect matching" true (E.eval (Gen.cycle 4) P.perfect_matching);
  check "P3 no perfect matching" false (E.eval (Gen.path 3) P.perfect_matching);
  check "C4 hamiltonian" true (E.eval (Gen.cycle 4) P.hamiltonian_cycle);
  check "diamond vc<=2" true (E.eval Gen.diamond (P.vertex_cover_at_most 2));
  check "K4 vc<=2" false (E.eval (Gen.complete 4) (P.vertex_cover_at_most 2));
  check "P4 is path" true (E.eval (Gen.path 4) P.is_path_graph);
  check "C4 is cycle" true (E.eval (Gen.cycle 4) P.is_cycle_graph);
  check "C4 is not path" false (E.eval (Gen.cycle 4) P.is_path_graph)

let conj_disj_helpers () =
  check "conj empty" true (E.eval (Gen.path 2) (F.conj []));
  check "disj empty" false (E.eval (Gen.path 2) (F.disj []));
  check "distinct" true
    (E.eval (Gen.path 2)
       (F.Exists_v
          ( "a",
            F.Exists_v ("b", F.pairwise_distinct_v [ "a"; "b" ]) )));
  check "distinct fails on K1" false
    (E.eval (Gen.path 1)
       (F.Exists_v
          ( "a",
            F.Exists_v ("b", F.pairwise_distinct_v [ "a"; "b" ]) )))

let suite =
  ( "mso",
    List.map formula_matches_oracle P.catalogue
    @ [
        test "structure metrics" structure_metrics;
        test "free variables" free_variables;
        test "specific formulas" specific_formulas;
        test "conj/disj helpers" conj_disj_helpers;
      ] )

(* Tests for the round-based message-passing simulation: it must agree
   with the direct harness, deliver exactly the right messages, and drive
   the self-stabilization loop. *)

open Test_util
module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module PLS = Lcp_pls
module S = PLS.Scheme
module EM = S.Edge_map
module N = PLS.Network
module Cert = Lcp_cert.Certificate
module T1path = Lcp_cert.Theorem1.Make (Lcp_algebra.Combinators.Is_path_graph)

let rng = rng_of_seed 31

let message_counts () =
  let g = Gen.grid 3 3 in
  let cfg = PLS.Config.random_ids rng g in
  let labels = Option.get (PLS.Bipartite_scheme.scheme.S.vs_prove cfg) in
  let t = N.run_vertex_round cfg PLS.Bipartite_scheme.scheme labels in
  check_int "one round" 1 t.N.rounds;
  (* every link carries one message in each direction *)
  check_int "2m messages" (2 * G.m g) (List.length t.N.messages);
  check_int "verdict per vertex" (G.n g) (List.length t.N.verdicts);
  check "accepted" true (N.accepted t)

let vertex_round_agrees =
  qcheck ~count:40 "vertex round = direct harness"
    (arb_pw_graph ~max_k:2 ~max_n:25)
    (fun (_, g, _) ->
      let cfg = PLS.Config.random_ids rng g in
      match PLS.Bipartite_scheme.scheme.S.vs_prove cfg with
      | None -> true (* non-bipartite: nothing to compare *)
      | Some labels ->
          let direct =
            S.accepted (S.run_vertex cfg PLS.Bipartite_scheme.scheme labels)
          in
          let round =
            N.accepted (N.run_vertex_round cfg PLS.Bipartite_scheme.scheme labels)
          in
          direct = round)

let edge_round_agrees =
  qcheck ~count:25 "edge round = direct harness (pointer scheme)"
    (arb_pw_graph ~max_k:2 ~max_n:25)
    (fun (_, g, _) ->
      let cfg = PLS.Config.random_ids rng g in
      let target = PLS.Config.id cfg 0 in
      let scheme = PLS.Spanning_tree.scheme ~target in
      match scheme.S.es_prove cfg with
      | None -> false
      | Some labels ->
          S.accepted (S.run_edge cfg scheme labels)
          = N.accepted (N.run_edge_round cfg scheme labels))

let corrupted_round_rejects () =
  let g = Gen.path 10 in
  let cfg = PLS.Config.random_ids rng g in
  let scheme = T1path.edge_scheme ~k:1 () in
  let labels = Option.get (scheme.S.es_prove cfg) in
  let t = N.run_edge_round cfg scheme labels in
  check "honest accepted" true (N.accepted t);
  let e, l = List.hd (EM.bindings labels) in
  let bad =
    EM.add labels e { l with Cert.accept_state = false }
  in
  let t2 = N.run_edge_round cfg scheme bad in
  check "corruption detected" false (N.accepted t2);
  (* the rejection reasons are attached to specific processors *)
  check "some reject verdict" true
    (List.exists
       (fun (_, v) -> match v with N.Reject _ -> true | N.Accept -> false)
       t2.N.verdicts)

let stabilization_loop () =
  let g = Gen.path 12 in
  let cfg = PLS.Config.random_ids rng g in
  let scheme = T1path.edge_scheme ~k:1 () in
  let flip_accept labels =
    let e, l = List.hd (EM.bindings labels) in
    EM.add labels e { l with Cert.accept_state = false }
  in
  let retarget labels =
    let e, l = List.nth (EM.bindings labels) 3 in
    EM.add labels e
      {
        l with
        Cert.global_ptr =
          {
            l.Cert.global_ptr with
            PLS.Spanning_tree.target =
              l.Cert.global_ptr.PLS.Spanning_tree.target + 1;
          };
      }
  in
  let identity labels = labels in
  let report =
    N.stabilize cfg scheme ~faults:[ flip_accept; identity; retarget ]
  in
  check_int "faults" 3 report.N.faults_injected;
  check_int "detected (identity is legal)" 2 report.N.faults_detected;
  check_int "reproofs" 2 report.N.reproofs;
  check "legal at the end" true report.N.final_legal

let suite =
  ( "network",
    [
      test "message counts" message_counts;
      vertex_round_agrees;
      edge_round_agrees;
      test "corrupted round rejects" corrupted_round_rejects;
      test "stabilization loop" stabilization_loop;
    ] )

(* Tests for the graph substrate: construction, traversal, degeneracy,
   union-find, generators, and minor containment. *)

open Test_util
module G = Lcp_graph.Graph
module T = Lcp_graph.Traversal
module D = Lcp_graph.Degeneracy
module UF = Lcp_graph.Union_find
module Gen = Lcp_graph.Gen
module Minor = Lcp_graph.Minor

let construction () =
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 1); (1, 0) ] in
  check_int "n" 4 (G.n g);
  check_int "m (dedup)" 2 (G.m g);
  check "edge" true (G.mem_edge g 2 1);
  check "no edge" false (G.mem_edge g 0 3);
  check_int "deg 1" 2 (G.degree g 1);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 2) ] (G.edges g)

let invalid_construction () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.canonical_edge: self-loop") (fun () ->
      ignore (G.of_edges ~n:2 [ (1, 1) ]));
  check "out of range" true
    (try
       ignore (G.of_edges ~n:2 [ (0, 5) ]);
       false
     with Invalid_argument _ -> true)

let induced_subgraph () =
  let g = Gen.cycle 6 in
  let sub, back = G.induced g [ 0; 1; 2; 4 ] in
  check_int "sub n" 4 (G.n sub);
  check_int "sub m" 2 (G.m sub);
  Alcotest.(check (array int)) "back map" [| 0; 1; 2; 4 |] back

let relabel_roundtrip () =
  let g = Gen.grid 3 2 in
  let perm = [| 3; 1; 4; 0; 5; 2 |] in
  let h = G.relabel g perm in
  check_int "m preserved" (G.m g) (G.m h);
  let inv = Array.make 6 0 in
  Array.iteri (fun i p -> inv.(p) <- i) perm;
  check "roundtrip" true (G.equal g (G.relabel h inv))

let contract_and_remove () =
  let g = Gen.cycle 4 in
  let h, _ = G.contract_edge g 0 1 in
  check_int "contracted n" 3 (G.n h);
  check "triangle" true (G.is_isomorphic h (Gen.cycle 3));
  let h2, _ = G.remove_vertex g 0 in
  check "path after removal" true (G.is_isomorphic h2 (Gen.path 3));
  let h3 = G.remove_edge g 0 1 in
  check "path after edge removal" true (G.is_isomorphic h3 (Gen.path 4))

let isomorphism () =
  check "C4 = C4 relabeled" true
    (G.is_isomorphic (Gen.cycle 4) (G.relabel (Gen.cycle 4) [| 2; 0; 3; 1 |]));
  check "C4 <> P4" false (G.is_isomorphic (Gen.cycle 4) (Gen.path 4));
  check "C4 <> K4" false (G.is_isomorphic (Gen.cycle 4) (Gen.complete 4));
  check "star = K1,3" true
    (G.is_isomorphic (Gen.star 3) (Gen.complete_bipartite 1 3))

let disjoint_union () =
  let g = G.disjoint_union (Gen.path 3) (Gen.cycle 3) in
  check_int "n" 6 (G.n g);
  check_int "m" 5 (G.m g);
  check_int "components" 2 (List.length (T.connected_components g))

let bfs_distances () =
  let g = Gen.grid 4 4 in
  let d = T.bfs_from g 0 in
  check_int "corner to corner" 6 d.(15);
  check_int "self" 0 d.(0);
  check_int "adjacent" 1 d.(1);
  check_int "diameter" 6 (T.diameter g)

let components_and_paths () =
  let g = G.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  check_int "three components" 3 (List.length (T.connected_components g));
  check "connected components content" true
    (T.connected_components g = [ [ 0; 1; 2 ]; [ 3; 4 ]; [ 5 ] ]);
  check "no path" true (T.shortest_path g 0 3 = None);
  check "path" true (T.shortest_path g 0 2 = Some [ 0; 1; 2 ]);
  check "any path agrees on existence" true (T.any_path g 0 2 <> None)

let tree_predicates () =
  check "path is tree" true (T.is_tree (Gen.path 5));
  check "cycle not tree" false (T.is_tree (Gen.cycle 5));
  check "path graph" true (T.is_path_graph (Gen.path 5));
  check "star not path" false (T.is_path_graph (Gen.star 3));
  check "cycle graph" true (T.is_cycle_graph (Gen.cycle 5));
  check "path not cycle" false (T.is_cycle_graph (Gen.path 5));
  check "forest acyclic" true
    (T.is_acyclic (G.disjoint_union (Gen.path 3) (Gen.path 2)));
  check "diamond cyclic" false (T.is_acyclic Gen.diamond)

let longest_path () =
  check_int "path" 5 (T.longest_path_length (Gen.path 5));
  check_int "cycle" 6 (T.longest_path_length (Gen.cycle 6));
  check_int "star" 3 (T.longest_path_length (Gen.star 4));
  check_int "grid" 9 (T.longest_path_length (Gen.grid 3 3))

let spanning_tree () =
  let g = Gen.grid 3 3 in
  let es = T.spanning_tree g ~root:4 in
  check_int "tree edges" 8 (List.length es);
  check "is tree" true (T.is_tree (G.of_edges ~n:9 es))

let degeneracy_values () =
  check_int "tree" 1 (D.degeneracy (Gen.random_tree (rng_of_seed 3) 20));
  check_int "cycle" 2 (D.degeneracy (Gen.cycle 10));
  check_int "K5" 4 (D.degeneracy (Gen.complete 5));
  check_int "grid" 2 (D.degeneracy (Gen.grid 4 4))

let orientation_bounds () =
  List.iter
    (fun (name, g) ->
      let d = D.degeneracy g in
      check (name ^ " outdegree") true (D.max_outdegree g <= d);
      check_int (name ^ " covers all edges") (G.m g)
        (List.length (D.orientation g)))
    named_families

let union_find () =
  let uf = UF.create 6 in
  check_int "initial count" 6 (UF.count uf);
  check "union" true (UF.union uf 0 1);
  check "again" false (UF.union uf 1 0);
  ignore (UF.union uf 2 3);
  ignore (UF.union uf 0 3);
  check "same" true (UF.same uf 1 2);
  check "diff" false (UF.same uf 1 4);
  check_int "count" 3 (UF.count uf);
  check "groups" true (UF.groups uf = [ [ 0; 1; 2; 3 ]; [ 4 ]; [ 5 ] ])

let generator_shapes () =
  check_int "path edges" 6 (G.m (Gen.path 7));
  check_int "cycle edges" 7 (G.m (Gen.cycle 7));
  check_int "complete edges" 10 (G.m (Gen.complete 5));
  check_int "bipartite edges" 6 (G.m (Gen.complete_bipartite 2 3));
  check_int "star edges" 5 (G.m (Gen.star 5));
  check_int "caterpillar n" 12 (G.n (Gen.caterpillar ~spine:4 ~legs:2));
  check_int "grid edges" 12 (G.m (Gen.grid 3 3));
  check_int "btree n" 15 (G.n (Gen.binary_tree ~depth:3));
  check "btree is tree" true (T.is_tree (Gen.binary_tree ~depth:3));
  check "random tree is tree" true (T.is_tree (Gen.random_tree (rng_of_seed 1) 30))

let minors_basic () =
  check "K4 has K3 minor" true (Minor.has_minor (Gen.complete 4) ~minor:(Gen.cycle 3));
  check "tree K3-minor-free" true
    (Minor.is_minor_free (Gen.star 5) ~minor:(Gen.cycle 3));
  check "fast k3 = slow k3" true
    (List.for_all
       (fun g -> Minor.has_k3_minor g = Minor.has_minor g ~minor:(Gen.cycle 3))
       small_graphs);
  check "C6 has C3 minor" true (Minor.has_minor (Gen.cycle 6) ~minor:(Gen.cycle 3));
  check "C6 has no K4 minor" true
    (Minor.is_minor_free (Gen.cycle 6) ~minor:(Gen.complete 4));
  check "grid33 has K4 minor" true
    (Minor.has_minor (Gen.grid 3 3) ~minor:(Gen.complete 4));
  check "grid33 has no K5 minor" true
    (Minor.is_minor_free (Gen.grid 3 3) ~minor:(Gen.complete 5));
  check "diamond minor of K4" true
    (Minor.has_minor (Gen.complete 4) ~minor:Gen.diamond)

let path_minor_equiv () =
  List.iter
    (fun g ->
      List.iter
        (fun t ->
          check "path minor = long path" true
            (Minor.has_path_minor g ~t
            = Minor.has_minor g ~minor:(Gen.path t)))
        [ 2; 3; 4 ])
    (List.filteri (fun i _ -> i mod 7 = 0) small_graphs)

let subgraph_tests () =
  check "P3 subgraph of C5" true (Minor.has_subgraph (Gen.cycle 5) ~sub:(Gen.path 3));
  check "C3 not subgraph of C5" false
    (Minor.has_subgraph (Gen.cycle 5) ~sub:(Gen.cycle 3));
  check "K23 subgraph of K33" true
    (Minor.has_subgraph (Gen.complete_bipartite 3 3) ~sub:(Gen.complete_bipartite 2 3))

let excluding_forest () =
  check_int "P4 bound" 2 (Minor.excluding_forest_pathwidth_bound (Gen.path 4));
  check_int "star bound" 3 (Minor.excluding_forest_pathwidth_bound (Gen.star 4));
  check "cycle is not a forest" true
    (try
       ignore (Minor.excluding_forest_pathwidth_bound (Gen.cycle 3));
       false
     with Invalid_argument _ -> true)

let prop_pw_generator =
  qcheck ~count:200 "random_pathwidth: connected with valid witness"
    (arb_pw_graph ~max_k:4 ~max_n:50)
    (fun (k, g, ivs) ->
      T.is_connected g
      && Lcp_interval.Representation.validate g
           (Array.map (fun (l, r) -> Lcp_interval.Interval.make l r) ivs)
         = Ok ()
      && Lcp_interval.Representation.width (rep_of (g, ivs)) <= k + 1)

let prop_shuffle_preserves =
  qcheck "shuffle preserves isomorphism class data"
    (arb_pw_graph ~max_k:3 ~max_n:20)
    (fun (_, g, _) ->
      let h, _ = Gen.shuffle_vertices (rng_of_seed 5) g in
      G.n h = G.n g && G.m h = G.m g
      && List.sort compare
           (G.fold_vertices (fun v acc -> G.degree g v :: acc) g [])
         = List.sort compare
             (G.fold_vertices (fun v acc -> G.degree h v :: acc) h []))

let suite =
  ( "graph",
    [
      test "construction" construction;
      test "invalid construction" invalid_construction;
      test "induced subgraph" induced_subgraph;
      test "relabel roundtrip" relabel_roundtrip;
      test "contract and remove" contract_and_remove;
      test "isomorphism" isomorphism;
      test "disjoint union" disjoint_union;
      test "bfs distances" bfs_distances;
      test "components and paths" components_and_paths;
      test "tree predicates" tree_predicates;
      test "longest path" longest_path;
      test "spanning tree" spanning_tree;
      test "degeneracy values" degeneracy_values;
      test "orientation bounds" orientation_bounds;
      test "union find" union_find;
      test "generator shapes" generator_shapes;
      test "minors basic" minors_basic;
      slow_test "path minor equivalence" path_minor_equiv;
      test "subgraph containment" subgraph_tests;
      test "excluding forest bound" excluding_forest;
      prop_pw_generator;
      prop_shuffle_preserves;
    ] )

(* Unit tests for the certification internals: the shared composition
   module (Compose), certificate serialization, and targeted verifier
   behaviours the end-to-end suites only exercise indirectly. *)

open Test_util
module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module PLS = Lcp_pls
module S = PLS.Scheme
module EM = S.Edge_map
module A = Lcp_algebra
module Cert = Lcp_cert.Certificate
module ST = PLS.Spanning_tree
module Bitenc = Lcp_util.Bitenc

module C = Lcp_cert.Compose.Make (A.Connectivity)
module T1conn = Lcp_cert.Theorem1.Make (A.Connectivity)
module V = Lcp_cert.Verifier.Make (A.Connectivity)

module K3 = A.Clique.Make (struct let size = 3 end)
module Diam4 = A.Diameter.Make (struct let d = 4 end)
module T1k3 = Lcp_cert.Theorem1.Make (K3)
module T1diam = Lcp_cert.Theorem1.Make (Diam4)

let rng = rng_of_seed 777

let iface lanes t_in t_out = { C.lanes; t_in; t_out }

let compose_base_states () =
  (* V-node *)
  let v = C.v_state (iface [ 2 ] [ (2, 9) ] [ (2, 9) ]) in
  check "v slots" true (A.Connectivity.slots v = [ 9 ]);
  (* E-node, real vs virtual *)
  let f = iface [ 0 ] [ (0, 3) ] [ (0, 7) ] in
  let real = C.e_state f ~real:true in
  let virt = C.e_state f ~real:false in
  check "real and virtual E-nodes differ" false (A.Connectivity.equal real virt);
  check "real edge connects" true (C.accepts real);
  check "virtual edge does not" false (C.accepts virt);
  (* P-node with a mixed mask *)
  let pf = iface [ 0; 1; 2 ] [ (0, 4); (1, 5); (2, 6) ] [ (0, 4); (1, 5); (2, 6) ] in
  let p = C.p_state pf ~mask:[ true; false ] in
  check "p slots" true (A.Connectivity.slots p = [ 4; 5; 6 ]);
  check "bad mask rejected" true
    (try
       ignore (C.p_state pf ~mask:[ true ]);
       false
     with Invalid_argument _ -> true)

let compose_bridge () =
  let f1 = iface [ 0 ] [ (0, 1) ] [ (0, 2) ] in
  let f2 = iface [ 1 ] [ (1, 5) ] [ (1, 6) ] in
  let s1 = C.e_state f1 ~real:true and s2 = C.e_state f2 ~real:true in
  let _, f = C.bridge (s1, f1) (s2, f2) ~i:0 ~j:1 ~real:true in
  check "bridge lanes" true (f.C.lanes = [ 0; 1 ]);
  check "bridge t_out" true (f.C.t_out = [ (0, 2); (1, 6) ]);
  (* overlapping lanes rejected *)
  check "lane overlap" true
    (try
       ignore (C.bridge (s1, f1) (s1, f1) ~i:0 ~j:0 ~real:true);
       false
     with Invalid_argument _ -> true)

let compose_parent () =
  (* parent path on lane 0: 1 -> 2; child edge extends 2 -> 3 *)
  let fp = iface [ 0 ] [ (0, 1) ] [ (0, 2) ] in
  let fc = iface [ 0 ] [ (0, 2) ] [ (0, 3) ] in
  let sp = C.e_state fp ~real:true and sc = C.e_state fc ~real:true in
  let sm, fm = C.parent ~child:(sc, fc) ~parent:(sp, fp) in
  check "merged t_in from parent" true (fm.C.t_in = [ (0, 1) ]);
  check "merged t_out from child" true (fm.C.t_out = [ (0, 3) ]);
  check "glued vertex forgotten" true (A.Connectivity.slots sm = [ 1; 3 ]);
  (* terminal mismatch rejected *)
  let bad_child = iface [ 0 ] [ (0, 9) ] [ (0, 3) ] in
  check "mismatch rejected" true
    (try
       ignore
         (C.parent ~child:(C.e_state bad_child ~real:true, bad_child)
            ~parent:(sp, fp));
       false
     with Invalid_argument _ -> true);
  (* lane subset violated *)
  let wide = iface [ 0; 1 ] [ (0, 2); (1, 7) ] [ (0, 3); (1, 8) ] in
  check "lane subset" true
    (try
       ignore (C.parent ~child:(sc, wide) ~parent:(sp, fp));
       false
     with Invalid_argument _ -> true)

let compose_accepts () =
  let f = iface [ 0 ] [ (0, 1) ] [ (0, 2) ] in
  check "connected edge accepts" true (C.accepts (C.e_state f ~real:true));
  check "disconnected pair rejects" false (C.accepts (C.e_state f ~real:false))

(* ------------------------------------------------------------------ *)

let encode_label () =
  let st = C.v_state (iface [ 0 ] [ (0, 5) ] [ (0, 5) ]) in
  let info =
    { Cert.node_id = 3; lanes = [ 0 ]; t_in = [ (0, 5) ]; t_out = [ (0, 5) ];
      state = st }
  in
  let frame =
    Cert.T_frame
      {
        member = (info, Cert.KP);
        merged = info;
        is_tree_root = true;
        member_real = [];
        children = [];
      }
  in
  let label =
    {
      Cert.frames = [ frame ];
      global_ptr = { ST.target = 5; parent = None };
      accept_state = true;
      transported =
        [ { Cert.vu = 1; vv = 2; rank_fwd = 1; rank_bwd = 2; vframes = [ frame ] } ];
    }
  in
  let enc l =
    let w = Bitenc.writer () in
    Cert.encode ~encode_state:A.Connectivity.encode w l;
    (Bitenc.length_bits w, Bytes.to_string (Bitenc.to_bytes w))
  in
  let bits1, bytes1 = enc label in
  let bits2, bytes2 = enc label in
  check "deterministic" true (bits1 = bits2 && bytes1 = bytes2);
  check "nonempty" true (bits1 > 0);
  (* more transported records => strictly more bits *)
  let bigger =
    { label with Cert.transported = label.Cert.transported @ label.Cert.transported }
  in
  check "monotone" true (fst (enc bigger) > bits1)

(* ------------------------------------------------------------------ *)

let verifier_singleton () =
  (* a lone vertex simply evaluates the property on itself *)
  let view = { S.ev_id = 42; ev_degree = 0; ev_labels = [] } in
  check "singleton connected" true (V.verify ~max_lanes:4 view = Ok ());
  let module VK = Lcp_cert.Verifier.Make (K3) in
  check "singleton has no K3" true (VK.verify ~max_lanes:4 view <> Ok ())

let verifier_rejects_garbage () =
  (* structurally broken labels must produce a rejection, not an exception *)
  let st = C.v_state (iface [ 0 ] [ (0, 5) ] [ (0, 5) ]) in
  let info =
    { Cert.node_id = 1; lanes = [ 99 ]; t_in = [ (99, 5) ];
      t_out = [ (99, 5) ]; state = st }
  in
  let frame =
    Cert.T_frame
      {
        member = (info, Cert.KE);
        merged = info;
        is_tree_root = true;
        member_real = [ true ];
        children = [];
      }
  in
  let label =
    {
      Cert.frames = [ frame ];
      global_ptr = { ST.target = 5; parent = None };
      accept_state = true;
      transported = [];
    }
  in
  let view = { S.ev_id = 5; ev_degree = 1; ev_labels = [ label ] } in
  match V.verify ~max_lanes:4 view with
  | Ok () -> Alcotest.fail "garbage accepted"
  | Error m -> check "lane bound mentioned" true (String.length m > 0)

let verifier_depth_cap () =
  let st = C.v_state (iface [ 0 ] [ (0, 5) ] [ (0, 5) ]) in
  let info =
    { Cert.node_id = 1; lanes = [ 0 ]; t_in = [ (0, 5) ]; t_out = [ (0, 5) ];
      state = st }
  in
  let frame =
    Cert.T_frame
      {
        member = (info, Cert.KE);
        merged = info;
        is_tree_root = false;
        member_real = [ true ];
        children = [];
      }
  in
  let deep = List.init 20 (fun _ -> frame) in
  let label =
    {
      Cert.frames = deep;
      global_ptr = { ST.target = 5; parent = Some (1, 6) };
      accept_state = true;
      transported = [];
    }
  in
  let view = { S.ev_id = 6; ev_degree = 1; ev_labels = [ label ] } in
  match V.verify ~max_lanes:4 view with
  | Ok () -> Alcotest.fail "overly deep stack accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* end-to-end with the new algebras *)

let certify_clique () =
  (* a triangle with a pendant tail: pathwidth 2, contains K3 *)
  let g = G.of_edges ~n:5 [ (0, 1); (0, 2); (1, 2); (2, 3); (3, 4) ] in
  let cfg = PLS.Config.random_ids rng g in
  let scheme = T1k3.edge_scheme ~k:2 () in
  (match scheme.S.es_prove cfg with
  | None -> Alcotest.fail "K3 prover declined"
  | Some labels ->
      check "K3 accepted" true (S.accepted (S.run_edge cfg scheme labels)));
  (* and declined on a triangle-free instance *)
  let cfg2 = PLS.Config.random_ids rng (Gen.cycle 8) in
  check "no K3 declined" true (scheme.S.es_prove cfg2 = None)

let certify_diameter () =
  (* P5 has diameter 4 *)
  let cfg = PLS.Config.random_ids rng (Gen.path 5) in
  let scheme = T1diam.edge_scheme ~k:1 () in
  (match scheme.S.es_prove cfg with
  | None -> Alcotest.fail "diameter prover declined"
  | Some labels ->
      check "diam accepted" true (S.accepted (S.run_edge cfg scheme labels)));
  let cfg2 = PLS.Config.random_ids rng (Gen.path 7) in
  check "diam 6 > 4 declined" true (scheme.S.es_prove cfg2 = None)

let theorem1_edge_congestion () =
  (* each real edge carries at most h(k+1) transported records *)
  let g, ivs = Gen.random_pathwidth rng ~n:40 ~k:2 () in
  let rep = Lcp_interval.Representation.of_pairs g ivs in
  let cfg = PLS.Config.random_ids rng g in
  match T1conn.P.prepare ~rep cfg with
  | Error m -> Alcotest.fail m
  | Ok art ->
      let bound = Lcp_lanes.Bounds.h (Lcp_interval.Representation.width rep) in
      EM.bindings art.T1conn.P.labels
      |> List.iter (fun (_, l) ->
             check "record count bounded" true
               (List.length l.Cert.transported <= bound))

(* full certificate labelings survive a round trip through actual bits *)
let roundtrip_labels =
  qcheck ~count:20 "certificate bit round-trip (connectivity)"
    (arb_pw_graph ~max_k:2 ~max_n:25)
    (fun (k, g, ivs) ->
      let rep = Lcp_interval.Representation.of_pairs g ivs in
      let cfg = PLS.Config.random_ids rng g in
      let scheme = T1conn.edge_scheme ~rep:(fun _ -> Some rep) ~k () in
      match scheme.S.es_prove cfg with
      | None -> false
      | Some labels ->
          List.for_all
            (fun (_, l) ->
              let w = Bitenc.writer () in
              Cert.encode ~encode_state:A.Connectivity.encode w l;
              let r = Bitenc.reader_of_writer w in
              let l' =
                Cert.decode ~decode_state:A.Connectivity.decode r
              in
              (* decoded labels must verify and re-encode identically *)
              let w2 = Bitenc.writer () in
              Cert.encode ~encode_state:A.Connectivity.encode w2 l';
              l = l'
              && Bytes.to_string (Bitenc.to_bytes w)
                 = Bytes.to_string (Bitenc.to_bytes w2))
            (EM.bindings labels))

let roundtrip_verifies () =
  (* decode the bits, then run the verifier on the decoded labels *)
  let g = Gen.cycle 14 in
  let cfg = PLS.Config.random_ids rng g in
  let scheme = T1conn.edge_scheme ~k:2 () in
  let labels = Option.get (scheme.S.es_prove cfg) in
  let decoded =
    EM.bindings labels
    |> List.map (fun (e, l) ->
           let w = Bitenc.writer () in
           Cert.encode ~encode_state:A.Connectivity.encode w l;
           (e, Cert.decode ~decode_state:A.Connectivity.decode
                 (Bitenc.reader_of_writer w)))
    |> EM.of_list
  in
  check "decoded labels verify" true
    (S.accepted (S.run_edge cfg scheme decoded))

let suite =
  ( "core",
    [
      test "compose base states" compose_base_states;
      test "compose bridge (f_B)" compose_bridge;
      test "compose parent (f_P)" compose_parent;
      test "compose accepts" compose_accepts;
      test "certificate encoding" encode_label;
      test "verifier: singleton" verifier_singleton;
      test "verifier: garbage rejected" verifier_rejects_garbage;
      test "verifier: depth cap (Obs 5.5)" verifier_depth_cap;
      test "certify clique" certify_clique;
      test "certify diameter" certify_diameter;
      test "transported records within h(w)" theorem1_edge_congestion;
      roundtrip_labels;
      test "decoded bits verify" roundtrip_verifies;
    ] )

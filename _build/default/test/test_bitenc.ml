(* Unit and property tests for the bit-exact encoder. *)

open Test_util
module B = Lcp_util.Bitenc

let roundtrip_bits () =
  let w = B.writer () in
  B.bit w true;
  B.bit w false;
  B.bits w ~width:5 19;
  B.bits w ~width:12 4095;
  check_int "length" (1 + 1 + 5 + 12) (B.length_bits w);
  let r = B.reader_of_writer w in
  check "b1" true (B.read_bit r);
  check "b2" false (B.read_bit r);
  check_int "5 bits" 19 (B.read_bits r ~width:5);
  check_int "12 bits" 4095 (B.read_bits r ~width:12)

let roundtrip_varint () =
  let values = [ 0; 1; 5; 127; 128; 300; 16383; 16384; 123456789 ] in
  let w = B.writer () in
  List.iter (B.varint w) values;
  let r = B.reader_of_writer w in
  List.iter (fun v -> check_int "varint" v (B.read_varint r)) values

let varint_size_matches () =
  List.iter
    (fun v ->
      let w = B.writer () in
      B.varint w v;
      check_int (Printf.sprintf "size %d" v) (B.varint_size v)
        (B.length_bits w))
    [ 0; 1; 127; 128; 16383; 16384; 1 lsl 30 ]

let varint_logarithmic () =
  (* varint of x uses O(log x) bits *)
  List.iter
    (fun bits ->
      let x = (1 lsl bits) - 1 in
      check "log size" true (B.varint_size x <= 8 * ((bits / 7) + 1)))
    [ 7; 14; 21; 28; 35; 42 ]

let empty_writer () =
  let w = B.writer () in
  check_int "empty" 0 (B.length_bits w);
  check_int "bytes" 0 (Bytes.length (B.to_bytes w))

let out_of_data () =
  let w = B.writer () in
  B.bit w true;
  let r = B.reader_of_writer w in
  ignore (B.read_bit r);
  Alcotest.check_raises "eof" (Invalid_argument "Bitenc.read_bit: out of data")
    (fun () -> ignore (B.read_bit r))

let prop_varint_roundtrip =
  qcheck "varint roundtrip" QCheck.(int_bound 1_000_000_000) (fun x ->
      let w = B.writer () in
      B.varint w x;
      let r = B.reader_of_writer w in
      B.read_varint r = x)

let prop_bit_sequence =
  qcheck "bit sequence roundtrip"
    QCheck.(list bool)
    (fun bits ->
      let w = B.writer () in
      List.iter (B.bit w) bits;
      let r = B.reader_of_writer w in
      List.for_all (fun b -> B.read_bit r = b) bits)

let suite =
  ( "bitenc",
    [
      test "roundtrip bits" roundtrip_bits;
      test "roundtrip varint" roundtrip_varint;
      test "varint_size matches writer" varint_size_matches;
      test "varint is logarithmic" varint_logarithmic;
      test "empty writer" empty_writer;
      test "reading past the end fails" out_of_data;
      prop_varint_roundtrip;
      prop_bit_sequence;
    ] )

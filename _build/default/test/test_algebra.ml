(* Tests for the property algebras (Prop 2.4 / 6.1 machinery): every
   algebra must agree with its direct oracle, both when run linearly over a
   graph and when evaluated over a hierarchical decomposition. *)

open Test_util
module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module Tr = Lcp_lanewidth.Trace
module Bld = Lcp_lanewidth.Builder
module A = Lcp_algebra

module VC2 = A.Vertex_cover.Make (struct let budget = 2 end)
module VC0 = A.Vertex_cover.Make (struct let budget = 0 end)
module IS3 = A.Independent_set.Make (struct let target = 3 end)
module DS2 = A.Dominating_set.Make (struct let budget = 2 end)
module DS1 = A.Dominating_set.Make (struct let budget = 1 end)
module MD2 = A.Degree.Max_degree (struct let d = 2 end)
module R2 = A.Degree.Regular (struct let d = 2 end)
module Col2 = A.Colorable.Make (struct let q = 2 end)
module K3 = A.Clique.Make (struct let size = 3 end)
module K4 = A.Clique.Make (struct let size = 4 end)
module Diam2 = A.Diameter.Make (struct let d = 2 end)
module Diam3 = A.Diameter.Make (struct let d = 3 end)

(* (name, algebra, oracle, lane cap for hierarchy evaluation) *)
let catalogue : (string * (module A.Algebra_sig.S) * (G.t -> bool) * int) list =
  [
    ("connected", (module A.Connectivity), A.Connectivity.oracle, 99);
    ("acyclic", (module A.Acyclicity), A.Acyclicity.oracle, 99);
    ("bipartite", (module A.Bipartite), A.Bipartite.oracle, 99);
    ("2colorable-set", (module Col2), Col2.oracle, 3);
    ("3colorable", (module A.Colorable.Three), A.Colorable.Three.oracle, 2);
    ("matching", (module A.Matching), A.Matching.oracle, 3);
    ("vc<=2", (module VC2), VC2.oracle, 3);
    ("vc<=0", (module VC0), VC0.oracle, 3);
    ("is>=3", (module IS3), IS3.oracle, 3);
    ("ds<=2", (module DS2), DS2.oracle, 2);
    ("ds<=1", (module DS1), DS1.oracle, 2);
    ("maxdeg<=2", (module MD2), MD2.oracle, 99);
    ("2regular", (module R2), R2.oracle, 99);
    ("hamcycle", (module A.Hamiltonian.Cycle_alg), A.Hamiltonian.Cycle_alg.oracle, 3);
    ("hampath", (module A.Hamiltonian.Path_alg), A.Hamiltonian.Path_alg.oracle, 3);
    ("trianglefree", (module A.Triangle_free), A.Triangle_free.oracle, 99);
    ( "is_path",
      (module A.Combinators.Is_path_graph),
      A.Combinators.Is_path_graph.oracle,
      99 );
    ( "is_cycle",
      (module A.Combinators.Is_cycle_graph),
      A.Combinators.Is_cycle_graph.oracle,
      99 );
    ("clique>=3", (module K3), K3.oracle, 99);
    ("clique>=4", (module K4), K4.oracle, 99);
    ("diameter<=2", (module Diam2), Diam2.oracle, 3);
    ("diameter<=3", (module Diam3), Diam3.oracle, 3);
  ]

(* exhaustive: every algebra decides exactly its oracle on all graphs with
   up to 4 vertices (plus named families), via the linear sweep *)
let exhaustive_small (name, (module Alg : A.Algebra_sig.S), oracle, _) =
  test ("sweep = oracle: " ^ name) (fun () ->
      let module L = A.Lift.Make (Alg) in
      List.iter
        (fun g ->
          check
            (Printf.sprintf "%s on %s" name (G.to_string g))
            (oracle g) (L.decide_graph g))
        (small_graphs @ List.map snd named_families))

(* the same through hierarchical decompositions of random traces *)
let via_hierarchy (name, (module Alg : A.Algebra_sig.S), oracle, kcap) =
  qcheck ~count:80
    ("hierarchy = oracle: " ^ name)
    (arb_trace ~max_k:(min kcap 4) ~max_ops:18)
    (fun tr ->
      let module L = A.Lift.Make (Alg) in
      let g = Tr.eval tr in
      let h = Bld.of_trace tr in
      L.holds h = oracle g)

let slot_independence () =
  (* states must not depend on which integers name the slots: evaluate the
     same graph under shifted vertex numberings *)
  let module L = A.Lift.Make (A.Connectivity) in
  List.iter
    (fun (name, g) ->
      let perm = Array.init (G.n g) (fun i -> G.n g - 1 - i) in
      let g' = G.relabel g perm in
      check (name ^ " relabel-invariant") true
        (L.decide_graph g = L.decide_graph g'))
    named_families

let combinators () =
  let module NotConn = A.Combinators.Not (A.Connectivity) in
  let module L = A.Lift.Make (NotConn) in
  check "not connected" true (L.decide_graph (G.disjoint_union (Gen.path 2) (Gen.path 2)));
  check "not (not connected)" false (L.decide_graph (Gen.path 4));
  let module OrPC =
    A.Combinators.Or (A.Combinators.Is_path_graph) (A.Combinators.Is_cycle_graph)
  in
  let module L2 = A.Lift.Make (OrPC) in
  check "path or cycle on P5" true (L2.decide_graph (Gen.path 5));
  check "path or cycle on C5" true (L2.decide_graph (Gen.cycle 5));
  check "path or cycle on star" false (L2.decide_graph (Gen.star 3))

let state_encoding_deterministic () =
  (* encoding a state twice gives identical bits *)
  let module L = A.Lift.Make (A.Bipartite) in
  ignore L.decide_graph;
  let g = Gen.cycle 6 in
  let st =
    G.fold_edges
      (fun (u, v) st -> A.Bipartite.add_edge st u v)
      g
      (G.fold_vertices (fun v st -> A.Bipartite.introduce st v) g A.Bipartite.empty)
  in
  let enc () =
    let w = Lcp_util.Bitenc.writer () in
    A.Bipartite.encode w st;
    Bytes.to_string (Lcp_util.Bitenc.to_bytes w)
  in
  check "deterministic" true (enc () = enc ())

let connectivity_closed_cap () =
  (* the closed-component counter saturates at 2 but the answer stays right *)
  let module L = A.Lift.Make (A.Connectivity) in
  let g3 =
    G.disjoint_union (Gen.path 2) (G.disjoint_union (Gen.path 2) (Gen.path 2))
  in
  check "three components rejected" false (L.decide_graph g3)

let vertex_cover_budgets () =
  (* vc(star_n) = 1, vc(path_5) = 2, vc(C6) = 3 *)
  let module VC1 = A.Vertex_cover.Make (struct let budget = 1 end) in
  let module VC3 = A.Vertex_cover.Make (struct let budget = 3 end) in
  let module L1 = A.Lift.Make (VC1) in
  let module L2 = A.Lift.Make (VC2) in
  let module L3 = A.Lift.Make (VC3) in
  check "star vc<=1" true (L1.decide_graph (Gen.star 6));
  check "P5 vc<=1" false (L1.decide_graph (Gen.path 5));
  check "P5 vc<=2" true (L2.decide_graph (Gen.path 5));
  check "C6 vc<=2" false (L2.decide_graph (Gen.cycle 6));
  check "C6 vc<=3" true (L3.decide_graph (Gen.cycle 6))

let hamiltonicity_specifics () =
  let module LC = A.Lift.Make (A.Hamiltonian.Cycle_alg) in
  let module LP = A.Lift.Make (A.Hamiltonian.Path_alg) in
  check "C7 ham cycle" true (LC.decide_graph (Gen.cycle 7));
  check "P7 no ham cycle" false (LC.decide_graph (Gen.path 7));
  check "P7 ham path" true (LP.decide_graph (Gen.path 7));
  check "C7 ham path" true (LP.decide_graph (Gen.cycle 7));
  check "star no ham path" false (LP.decide_graph (Gen.star 3));
  check "grid23 ham cycle" true (LC.decide_graph (Gen.grid 2 3));
  check "K23 no ham cycle" false
    (LC.decide_graph (Gen.complete_bipartite 2 3));
  check "K23 ham path" true (LP.decide_graph (Gen.complete_bipartite 2 3))

let clique_vs_triangle_free =
  qcheck ~count:100 "K3 containment = not triangle-free"
    (arb_trace ~max_k:4 ~max_ops:16)
    (fun tr ->
      let g = Tr.eval tr in
      let module LK = A.Lift.Make (K3) in
      let module LT = A.Lift.Make (A.Triangle_free) in
      LK.decide_graph g = not (LT.decide_graph g))

let diameter_specifics () =
  let module L2 = A.Lift.Make (Diam2) in
  check "star diam 2" true (L2.decide_graph (Gen.star 7));
  check "P4 diam 3 > 2" false (L2.decide_graph (Gen.path 4));
  check "C5 diam 2" true (L2.decide_graph (Gen.cycle 5));
  check "C6 diam 3 > 2" false (L2.decide_graph (Gen.cycle 6));
  check "disconnected rejected" false
    (L2.decide_graph (G.disjoint_union (Gen.path 2) (Gen.path 2)));
  check "K4 diam 1 <= 2" true (L2.decide_graph (Gen.complete 4))

let suite =
  ( "algebra",
    List.map exhaustive_small catalogue
    @ List.map via_hierarchy catalogue
    @ [
        test "slot independence" slot_independence;
        test "combinators" combinators;
        test "state encoding deterministic" state_encoding_deterministic;
        test "connectivity closed cap" connectivity_closed_cap;
        test "vertex cover budgets" vertex_cover_budgets;
        test "hamiltonicity specifics" hamiltonicity_specifics;
        clique_vs_triangle_free;
        test "diameter specifics" diameter_specifics;
      ] )

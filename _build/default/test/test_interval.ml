(* Tests for intervals, interval representations, path decompositions,
   pathwidth computation, and interval coloring (Obs 4.3). *)

open Test_util
module I = Lcp_interval.Interval
module Rep = Lcp_interval.Representation
module PD = Lcp_interval.Path_decomposition
module PW = Lcp_interval.Pathwidth
module IC = Lcp_interval.Interval_coloring
module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen

let interval_basics () =
  let a = I.make 1 4 and b = I.make 5 7 and c = I.make 3 5 in
  check "a before b" true (I.strictly_before a b);
  check "not b before a" false (I.strictly_before b a);
  check "a meets c" true (I.intersects a c);
  check "b meets c" true (I.intersects b c);
  check "a misses b" false (I.intersects a b);
  check "mem" true (I.mem 3 a);
  check "hull" true (I.equal (I.hull a b) (I.make 1 7));
  check "hull_list" true (I.equal (I.hull_list [ a; b; c ]) (I.make 1 7));
  check "empty rejected" true
    (try
       ignore (I.make 5 2);
       false
     with Invalid_argument _ -> true)

(* the paper's Figure 1: interval representation of the 6-cycle *)
let six_cycle_representation () =
  let g = Gen.cycle 6 in
  let rep = PW.exact_interval_representation g in
  check_int "width 3 = pathwidth 2 + 1" 3 (Rep.width rep)

let representation_validation () =
  let g = Gen.path 3 in
  let good = [| I.make 0 1; I.make 1 2; I.make 2 3 |] in
  check "valid" true (Rep.validate g good = Ok ());
  let bad = [| I.make 0 0; I.make 1 2; I.make 2 3 |] in
  check "invalid" true (Rep.validate g bad <> Ok ());
  check "make raises" true
    (try
       ignore (Rep.make g bad);
       false
     with Invalid_argument _ -> true)

let width_by_sweep () =
  let ivs = [| I.make 0 5; I.make 1 2; I.make 2 3; I.make 6 7 |] in
  check_int "width" 3 (Rep.width_of_intervals ivs);
  check_int "empty" 0 (Rep.width_of_intervals [||])

let restrict_and_hull () =
  let g = Gen.path 4 in
  let rep =
    Rep.make g [| I.make 0 1; I.make 1 2; I.make 2 3; I.make 3 4 |]
  in
  let sub, back = Rep.restrict rep [ 1; 2 ] in
  check_int "sub width" 2 (Rep.width sub);
  Alcotest.(check (array int)) "back" [| 1; 2 |] back;
  check "hull" true (I.equal (Rep.hull_of rep [ 0; 2 ]) (I.make 0 3))

let path_decomposition_conversions () =
  List.iter
    (fun (name, g) ->
      if Lcp_graph.Traversal.is_connected g && G.n g <= 12 then begin
        let rep = PW.exact_interval_representation g in
        let pd = PD.of_interval_representation rep in
        check (name ^ " pd valid") true
          (PD.validate g (PD.bags pd) = Ok ());
        check (name ^ " widths agree") true (PD.width pd + 1 <= Rep.width rep);
        let rep2 = PD.to_interval_representation g pd in
        check (name ^ " width preserved") true
          (Rep.width rep2 <= Rep.width rep)
      end)
    named_families

let pd_validation_failures () =
  let g = Gen.path 3 in
  check "missing vertex" true
    (PD.validate g [| [ 0; 1 ] |] <> Ok ());
  check "edge uncovered" true
    (PD.validate g [| [ 0 ]; [ 1 ]; [ 2 ] |] <> Ok ());
  check "non-contiguous" true
    (PD.validate g [| [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] |] <> Ok ());
  check "ok" true (PD.validate g [| [ 0; 1 ]; [ 1; 2 ] |] = Ok ())

let exact_pathwidth_values () =
  check_int "P1" 0 (PW.exact (Gen.path 1));
  check_int "P6" 1 (PW.exact (Gen.path 6));
  check_int "C6" 2 (PW.exact (Gen.cycle 6));
  check_int "star" 1 (PW.exact (Gen.star 5));
  check_int "K4" 3 (PW.exact (Gen.complete 4));
  check_int "K5" 4 (PW.exact (Gen.complete 5));
  check_int "caterpillar" 1 (PW.exact (Gen.caterpillar ~spine:4 ~legs:2));
  check_int "ladder" 2 (PW.exact (Gen.ladder 5));
  check_int "grid33" 3 (PW.exact (Gen.grid 3 3));
  check_int "K23" 2 (PW.exact (Gen.complete_bipartite 2 3));
  check_int "btree3" 2 (PW.exact (Gen.binary_tree ~depth:3))

let layout_interval_rep () =
  List.iter
    (fun (name, g) ->
      if G.n g <= 12 then begin
        let pw, order = PW.exact_layout g in
        check_int (name ^ " vs matches")
          pw
          (PW.vertex_separation_of_layout g order);
        let rep = PW.interval_representation_of_layout g order in
        check_int (name ^ " width = pw+1") (pw + 1) (Rep.width rep)
      end)
    named_families

let heuristic_sanity () =
  List.iter
    (fun (name, g) ->
      if G.n g <= 12 then begin
        let rep = PW.heuristic_interval_representation g in
        check (name ^ " heuristic valid") true
          (Rep.validate g (Rep.intervals rep) = Ok ());
        check (name ^ " heuristic >= exact") true
          (Rep.width rep >= PW.exact g + 1)
      end)
    named_families;
  (* the heuristic is exact on paths *)
  check_int "heuristic path" 2
    (Rep.width (PW.heuristic_interval_representation (Gen.path 12)))

let coloring_basic () =
  let ivs =
    [| I.make 0 3; I.make 1 2; I.make 4 6; I.make 5 8; I.make 9 9 |]
  in
  let lane, lanes = IC.color ivs in
  check_int "lanes = width" 2 lanes;
  check "valid" true (IC.is_valid_coloring ivs lane)

let prop_coloring =
  let arb =
    QCheck.(
      make
        ~print:(fun ivs ->
          String.concat ","
            (List.map (fun (l, r) -> Printf.sprintf "[%d,%d]" l r) ivs))
        (Gen.list_size (Gen.int_range 1 30)
           (Gen.map
              (fun (a, b) -> (min a b, max a b))
              (Gen.pair (Gen.int_bound 40) (Gen.int_bound 40)))))
  in
  qcheck ~count:300 "greedy coloring uses exactly width lanes" arb (fun pairs ->
      let ivs = Array.of_list (List.map (fun (l, r) -> I.make l r) pairs) in
      let lane, lanes = IC.color ivs in
      IC.is_valid_coloring ivs lane
      && lanes = Rep.width_of_intervals ivs)

let prop_exact_pw_upper =
  qcheck ~count:60 "exact pathwidth <= generator k"
    (arb_pw_graph ~max_k:3 ~max_n:14)
    (fun (k, g, _) -> PW.exact g <= k)

let prop_layout_rep_valid =
  qcheck ~count:60 "layout interval representation is valid"
    (arb_pw_graph ~max_k:3 ~max_n:14)
    (fun (_, g, _) ->
      let rep = PW.exact_interval_representation g in
      Rep.validate g (Rep.intervals rep) = Ok ())

module TD = Lcp_interval.Tree_decomposition
module TW = Lcp_interval.Treewidth

let treewidth_values () =
  check_int "P6" 1 (TW.exact (Gen.path 6));
  check_int "C6" 2 (TW.exact (Gen.cycle 6));
  check_int "star" 1 (TW.exact (Gen.star 6));
  check_int "K4" 3 (TW.exact (Gen.complete 4));
  check_int "K5" 4 (TW.exact (Gen.complete 5));
  check_int "K23" 2 (TW.exact (Gen.complete_bipartite 2 3));
  check_int "grid33" 3 (TW.exact (Gen.grid 3 3));
  check_int "ladder" 2 (TW.exact (Gen.ladder 5));
  check_int "btree3" 1 (TW.exact (Gen.binary_tree ~depth:3));
  check_int "diamond" 2 (TW.exact Gen.diamond)

let tree_decomposition_validity () =
  List.iter
    (fun (name, g) ->
      if G.n g <= 12 then begin
        let td = TW.exact_decomposition g in
        check (name ^ " valid")
          true
          (TD.validate g ~bags:(td.TD.bags) ~edges:td.TD.edges = Ok ());
        check_int (name ^ " width = tw") (TW.exact g) (TD.width td)
      end)
    named_families

let tree_decomposition_failures () =
  let g = Gen.cycle 4 in
  (* missing edge coverage *)
  check "edge uncovered" true
    (TD.validate g
       ~bags:[| [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] |]
       ~edges:[ (0, 1); (1, 2) ]
     <> Ok ());
  (* disconnected vertex subtree *)
  check "subtree disconnected" true
    (TD.validate g
       ~bags:[| [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 0 ] |]
       ~edges:[ (0, 1); (1, 2); (2, 3) ]
     <> Ok ());
  (* a valid one *)
  check "valid C4 decomposition" true
    (TD.validate g
       ~bags:[| [ 0; 1; 3 ]; [ 1; 2; 3 ] |]
       ~edges:[ (0, 1) ]
     = Ok ());
  (* bag graph with a cycle is rejected *)
  check "cyclic bag graph" true
    (TD.validate g
       ~bags:[| [ 0; 1; 3 ]; [ 1; 2; 3 ]; [ 1; 3 ] |]
       ~edges:[ (0, 1); (1, 2); (2, 0) ]
     <> Ok ())

let prop_tw_le_pw =
  qcheck ~count:50 "treewidth <= pathwidth"
    (arb_pw_graph ~max_k:3 ~max_n:13)
    (fun (_, g, _) -> TW.exact g <= PW.exact g)

let prop_exact_td_valid =
  qcheck ~count:50 "exact tree decomposition is valid with width = tw"
    (arb_pw_graph ~max_k:3 ~max_n:13)
    (fun (_, g, _) ->
      let td = TW.exact_decomposition g in
      TD.validate g ~bags:td.TD.bags ~edges:td.TD.edges = Ok ()
      && TD.width td = TW.exact g)

let path_to_tree_decomposition () =
  let g = Gen.cycle 6 in
  let rep = PW.exact_interval_representation g in
  let pd = Lcp_interval.Path_decomposition.of_interval_representation rep in
  let td = TD.of_path_decomposition pd in
  check "pd as td valid" true
    (TD.validate g ~bags:td.TD.bags ~edges:td.TD.edges = Ok ());
  check "width preserved" true (TD.width td <= Rep.width rep - 1)

let suite =
  ( "interval",
    [
      test "interval basics" interval_basics;
      test "six-cycle representation (Fig 1)" six_cycle_representation;
      test "representation validation" representation_validation;
      test "width by sweep" width_by_sweep;
      test "restrict and hull" restrict_and_hull;
      test "path decomposition conversions" path_decomposition_conversions;
      test "pd validation failures" pd_validation_failures;
      test "exact pathwidth values" exact_pathwidth_values;
      test "layout representations" layout_interval_rep;
      test "heuristic sanity" heuristic_sanity;
      test "coloring basics" coloring_basic;
      prop_coloring;
      prop_exact_pw_upper;
      prop_layout_rep_valid;
      test "treewidth values" treewidth_values;
      test "tree decompositions valid on families" tree_decomposition_validity;
      test "tree decomposition failures" tree_decomposition_failures;
      prop_tw_le_pw;
      prop_exact_td_valid;
      test "path decomposition as tree decomposition" path_to_tree_decomposition;
    ] )
